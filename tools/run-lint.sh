#!/usr/bin/env bash
# Run geoanon_lint (the project's determinism/privacy/layering lint,
# tools/lint/) over the default tree: src/, tests/, bench/, tools/.
#
# Usage:
#   tools/run-lint.sh [build-dir] [--json] [--check] [--rules=a,b,...]
#                     [--dot=FILE] [-- extra geoanon_lint args]
#
# The build dir defaults to ./build and must contain the geoanon_lint
# binary (target: geoanon_lint). Builds it on demand when a CMake cache is
# present. geoanon_lint flags (--json, --check, --rules=, --dot=) are
# forwarded wherever they appear; everything after `--` passes through
# verbatim. Exits nonzero on any finding; suppress individual findings in
# source with `// geoanon-lint: allow(<rule>) -- <reason>` (see DESIGN.md
# sections 12–13 for the rule list and suppression grammar).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="build"
PASS=()
while [[ $# -gt 0 && "$1" != "--" ]]; do
  case "$1" in
    --json|--check|--rules=*|--dot=*)
      PASS+=("$1")
      ;;
    --*)
      echo "run-lint: unknown option $1" >&2
      exit 2
      ;;
    *)
      BUILD_DIR="$1"
      ;;
  esac
  shift
done
[[ $# -gt 0 && "$1" == "--" ]] && shift

BIN="$BUILD_DIR/tools/geoanon_lint"
if [[ ! -x "$BIN" ]]; then
  if [[ -f "$BUILD_DIR/CMakeCache.txt" ]]; then
    echo "run-lint: building geoanon_lint in $BUILD_DIR" >&2
    cmake --build "$BUILD_DIR" --target geoanon_lint
  else
    echo "run-lint: $BIN not found. Configure first: cmake --preset default" >&2
    exit 2
  fi
fi

exec "$BIN" ${PASS+"${PASS[@]}"} "$@"
