#!/usr/bin/env bash
# Run geoanon_lint (the project's determinism/ordering lint, tools/lint/)
# over the default tree: src/, bench/, tools/.
#
# Usage:
#   tools/run-lint.sh [build-dir] [-- extra geoanon_lint args]
#
# The build dir defaults to ./build and must contain the geoanon_lint
# binary (target: geoanon_lint). Builds it on demand when a CMake cache is
# present. Exits nonzero on any finding; suppress individual findings in
# source with `// geoanon-lint: allow(<rule>) -- <reason>` (see DESIGN.md
# section 12 for the rule list and suppression grammar).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="build"
if [[ $# -gt 0 && "$1" != "--" ]]; then
  BUILD_DIR="$1"
  shift
fi
[[ $# -gt 0 && "$1" == "--" ]] && shift

BIN="$BUILD_DIR/tools/geoanon_lint"
if [[ ! -x "$BIN" ]]; then
  if [[ -f "$BUILD_DIR/CMakeCache.txt" ]]; then
    echo "run-lint: building geoanon_lint in $BUILD_DIR" >&2
    cmake --build "$BUILD_DIR" --target geoanon_lint
  else
    echo "run-lint: $BIN not found. Configure first: cmake --preset default" >&2
    exit 2
  fi
fi

exec "$BIN" "$@"
