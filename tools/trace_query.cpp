// trace_query — inspect Chrome traces written by the geoanon flight recorder
// (quickstart --trace, SweepRunner trace_dir, or ScenarioRunner directly).
//
// Usage:
//   trace_query [MODE...] trace.json
//
// Modes (default: --summary):
//   --check          validate the file against the trace schema; exit 0/1.
//   --summary        run header, event counts by type, flight totals.
//   --undelivered    every application packet that never arrived, with its
//                    reconstructed hop chain and drop cause ("why did
//                    packet N die", for all N at once).
//   --packet=UID     full event-by-event life of one packet uid (decimal or
//                    0x hex).
//   --worst=N        the N delivered flows with the highest latency.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/flight.hpp"
#include "obs/trace_read.hpp"
#include "util/cli.hpp"

using namespace geoanon;

namespace {

bool read_file(const std::string& path, std::string& out) {
    std::ifstream f(path, std::ios::binary);
    if (!f) return false;
    std::ostringstream ss;
    ss << f.rdbuf();
    out = ss.str();
    return true;
}

const char* status_name(obs::Flight::Status s) {
    switch (s) {
        case obs::Flight::Status::kDelivered: return "delivered";
        case obs::Flight::Status::kDropped: return "dropped";
        case obs::Flight::Status::kInFlight: return "in-flight";
    }
    return "?";
}

void print_hop_chain(const obs::Flight& f) {
    std::printf("    hops:");
    for (const auto n : f.hop_chain) std::printf(" %u", n);
    std::printf("\n");
}

void print_flight_line(const obs::Flight& f) {
    std::printf("  uid 0x%016" PRIx64 "  flow %u seq %u  %s", f.uid, f.flow, f.seq,
                status_name(f.status));
    if (f.status != obs::Flight::Status::kDelivered)
        std::printf(" (%s)", obs::drop_cause_name(f.cause));
    std::printf("  t=[%.3f, %.3f]s  %zu events\n", f.first.to_seconds(),
                f.last.to_seconds(), f.events.size());
    print_hop_chain(f);
}

void print_packet(const obs::Flight& f) {
    print_flight_line(f);
    for (const obs::Event& e : f.events) {
        std::printf("    %12.6fs  #%-8" PRIu64 " %-18s node=%-4d cause=%-14s "
                    "bytes=%-4u detail=0x%" PRIx64 "\n",
                    e.t.to_seconds(), e.id, obs::event_type_name(e.type),
                    static_cast<int>(e.node), obs::drop_cause_name(e.cause), e.bytes,
                    e.detail);
    }
}

void print_summary(const obs::LoadedTrace& trace, const obs::FlightIndex& index) {
    std::printf("scheme=%s seed=%" PRIu64 " nodes=%u sim=%.0fs  events=%zu evicted=%" PRIu64
                "\n\n",
                trace.meta.scheme.c_str(), trace.meta.seed, trace.meta.num_nodes,
                trace.meta.sim_seconds, trace.events.size(), trace.meta.evicted);

    std::map<std::string, std::uint64_t> by_type;
    for (const obs::Event& e : trace.events) ++by_type[obs::event_type_name(e.type)];
    std::printf("events by type:\n");
    for (const auto& [name, n] : by_type)
        std::printf("  %-20s %" PRIu64 "\n", name.c_str(), n);

    std::size_t data = 0, delivered = 0, dropped = 0, in_flight = 0;
    for (const obs::Flight& f : index.flights()) {
        if (!f.is_data) continue;
        ++data;
        switch (f.status) {
            case obs::Flight::Status::kDelivered: ++delivered; break;
            case obs::Flight::Status::kDropped: ++dropped; break;
            case obs::Flight::Status::kInFlight: ++in_flight; break;
        }
    }
    std::printf("\nflights: %zu total (%zu data: %zu delivered, %zu dropped, "
                "%zu in-flight)\n",
                index.flights().size(), data, delivered, dropped, in_flight);
}

}  // namespace

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv);
    if (args.positionals().size() != 1) {
        std::fprintf(stderr,
                     "usage: %s [--check] [--summary] [--undelivered] "
                     "[--packet=UID] [--worst=N] trace.json\n",
                     args.program().c_str());
        return 2;
    }
    const std::string& path = args.positionals()[0];

    std::string text;
    if (!read_file(path, text)) {
        std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
        return 2;
    }

    obs::LoadedTrace trace;
    std::string error;
    if (!obs::load_chrome_trace(text, trace, error)) {
        std::fprintf(stderr, "%s: FAIL %s\n", path.c_str(), error.c_str());
        return 1;
    }
    if (args.get("check", false)) {
        std::printf("%s: OK (%zu events)\n", path.c_str(), trace.events.size());
        return 0;
    }

    const obs::FlightIndex index(trace.events);
    bool acted = false;

    if (args.has("packet")) {
        acted = true;
        const std::string s = args.get("packet", std::string{});
        const std::uint64_t uid = std::strtoull(s.c_str(), nullptr, 0);
        const obs::Flight* f = index.find(uid);
        if (!f) {
            std::fprintf(stderr, "error: no events for uid %s\n", s.c_str());
            return 1;
        }
        print_packet(*f);
    }
    if (args.get("undelivered", false)) {
        acted = true;
        const auto lost = index.undelivered_data();
        std::printf("%zu undelivered data packets:\n", lost.size());
        for (const obs::Flight* f : lost) print_flight_line(*f);
    }
    if (args.has("worst")) {
        acted = true;
        const auto n = static_cast<std::size_t>(args.get("worst", std::int64_t{10}));
        std::printf("worst-latency delivered flows:\n");
        for (const obs::Flight* f : index.worst_latency(n)) {
            std::printf("  uid 0x%016" PRIx64 "  flow %u seq %u  %.2f ms\n", f->uid,
                        f->flow, f->seq, f->latency_ms());
            print_hop_chain(*f);
        }
    }
    if (!acted || args.get("summary", false)) print_summary(trace, index);
    return 0;
}
