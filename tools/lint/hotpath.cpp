// GL030 hot-path allocation: inside functions annotated `// geoanon: hot`,
// flag operator new, make_unique/make_shared, std::function construction,
// unreserved local vectors, and container growth inside loops. The hot set is
// opt-in per function definition (the annotation must sit at the definition,
// not the declaration — the pass is per-file). ROADMAP item 1 (100k–1M node
// kernel) is the reason this discipline exists; DESIGN.md §13 documents it.

#include <algorithm>

#include "internal.hpp"

namespace geoanon::lint::internal {

namespace {

bool has_reserve(const std::vector<Token>& toks, const FunctionBody& fn,
                 const std::string& name) {
    for (std::size_t i = fn.open + 1; i + 2 < fn.close; ++i) {
        if (toks[i].is_ident && toks[i].text == name && toks[i + 1].text == "." &&
            toks[i + 2].text == "reserve")
            return true;
    }
    return false;
}

void check_hot_function(const std::string& path, const std::vector<Token>& toks,
                        const FunctionBody& fn, std::vector<Finding>& out) {
    const std::string where = " in hot function '" + fn.name + "'";
    for (std::size_t i = fn.open + 1; i < fn.close; ++i) {
        const Token& t = toks[i];
        if (!t.is_ident) continue;

        if (t.text == "new") {
            out.push_back({Rule::kHotAlloc, path, t.line,
                           "operator new" + where +
                               ": per-event heap allocation; hoist the buffer "
                               "or use an arena"});
        } else if (t.text == "make_unique" || t.text == "make_shared") {
            out.push_back({Rule::kHotAlloc, path, t.line,
                           t.text + where +
                               ": per-event heap allocation; pool or reuse the "
                               "object"});
        } else if (t.text == "function" && i >= 2 && toks[i - 1].text == ":" &&
                   toks[i - 2].text == ":" && i >= 3 &&
                   toks[i - 3].text == "std") {
            out.push_back({Rule::kHotAlloc, path, t.line,
                           "std::function" + where +
                               ": type-erased callables allocate; take a "
                               "template parameter or a bound member instead"});
        } else if (t.text == "vector" && i + 1 < fn.close &&
                   toks[i + 1].text == "<") {
            // Local vector declaration without a later reserve().
            const std::size_t close = match_angle(toks, i + 1);
            if (close >= fn.close) continue;
            std::size_t j = close + 1;
            while (j < fn.close &&
                   (toks[j].text == "&" || toks[j].text == "*" ||
                    toks[j].text == "const"))
                ++j;
            if (j >= fn.close || !toks[j].is_ident) continue;
            // A reference binding is not an allocation.
            bool is_ref = false;
            for (std::size_t k = close + 1; k < j; ++k)
                if (toks[k].text == "&") is_ref = true;
            if (is_ref) continue;
            const std::string& name = toks[j].text;
            if (!has_reserve(toks, fn, name)) {
                out.push_back({Rule::kHotAlloc, path, toks[j].line,
                               "local vector '" + name + "'" + where +
                                   " never calls reserve(): growth reallocates "
                                   "per event; reserve to the known bound"});
            }
            i = j;
        } else if ((t.text == "for" || t.text == "while") && i + 1 < fn.close &&
                   toks[i + 1].text == "(") {
            // Container growth inside the loop body on a receiver that is
            // never reserved in this function.
            const std::size_t hclose = match_bracket(toks, i + 1, "(", ")");
            if (hclose >= fn.close) continue;
            std::size_t body_b = hclose + 1, body_e;
            if (body_b < fn.close && toks[body_b].text == "{") {
                body_e = match_bracket(toks, body_b, "{", "}");
            } else {
                body_e = body_b;
                int depth = 0;
                while (body_e < fn.close) {
                    const std::string& u = toks[body_e].text;
                    if (u == "(" || u == "[" || u == "{") ++depth;
                    else if (u == ")" || u == "]" || u == "}") --depth;
                    else if (u == ";" && depth == 0) break;
                    ++body_e;
                }
            }
            if (body_e >= fn.close) continue;
            for (std::size_t k = body_b; k < body_e; ++k) {
                if (!toks[k].is_ident) continue;
                const std::string& m = toks[k].text;
                if (m != "push_back" && m != "emplace_back" && m != "insert")
                    continue;
                if (k < body_b + 2 || toks[k - 1].text != "." ||
                    !toks[k - 2].is_ident)
                    continue;
                const std::string& recv = toks[k - 2].text;
                if (has_reserve(toks, fn, recv)) continue;
                out.push_back({Rule::kHotAlloc, path, toks[k].line,
                               "'" + recv + "." + m + "' inside a loop" + where +
                                   " without reserve(): amortized growth still "
                                   "reallocates on the per-event path"});
            }
        }
    }
}

}  // namespace

void check_hotpath(const std::string& path, const std::vector<Token>& toks,
                   const std::vector<Annotation>& anns,
                   std::vector<Finding>& out) {
    std::vector<const Annotation*> hot;
    for (const Annotation& a : anns)
        if (a.role == Role::kHot) hot.push_back(&a);
    if (hot.empty()) return;

    const std::vector<FunctionBody> fns = find_functions(toks);
    for (const Annotation* a : hot) {
        const FunctionBody* best = nullptr;
        for (const FunctionBody& fn : fns) {
            if (fn.name != a->symbol || fn.line < a->line) continue;
            if (!best || fn.line < best->line) best = &fn;
        }
        if (best) check_hot_function(path, toks, *best, out);
    }
}

}  // namespace geoanon::lint::internal
