#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace geoanon::lint {

/// Project-specific determinism and privacy rules clang-tidy cannot express.
/// Rule IDs are stable (they appear in suppression comments, CI output, and
/// the JSON schema); new rules append, existing IDs never renumber.
/// DESIGN.md §12 documents the determinism rules, §13 the semantic passes.
enum class Rule {
    kSuppression,    ///< GL000: malformed / reason-less suppression comment
    kWallClock,      ///< GL001: wall-clock time source outside allowed blocks
    kAmbientRng,     ///< GL002: rand()/std::random_device outside util/rng
    kUnseededEngine, ///< GL003: default-constructed <random> engine
    kUnorderedIter,  ///< GL004: iteration over unordered container state
    kPointerKey,     ///< GL005: pointer-keyed ordered container
    kFloatAccum,     ///< GL006: float arithmetic/state (stats must be double)
    kPrivacyTaint,   ///< GL010: identity/position source reaches a wire sink
    kLayerDag,       ///< GL020: include edge climbs the layer DAG
    kHotAlloc,       ///< GL030: heap allocation inside a `geoanon: hot` path
};

inline constexpr Rule kAllRules[] = {
    Rule::kSuppression,    Rule::kWallClock,  Rule::kAmbientRng,
    Rule::kUnseededEngine, Rule::kUnorderedIter, Rule::kPointerKey,
    Rule::kFloatAccum,     Rule::kPrivacyTaint,  Rule::kLayerDag,
    Rule::kHotAlloc,
};

const char* rule_id(Rule r);    ///< "GL001"
const char* rule_name(Rule r);  ///< "wallclock" — the name suppressions use
const char* rule_summary(Rule r);
bool rule_from_name(const std::string& name, Rule& out);

struct Finding {
    Finding() = default;
    Finding(Rule r, std::string f, std::size_t l, std::string m)
        : rule(r), file(std::move(f)), line(l), message(std::move(m)) {}

    Rule rule{Rule::kSuppression};
    std::string file;
    std::size_t line{0};
    std::string message;
    // GL010 extras: the source→sink chain. Empty / zero for other rules.
    std::string taint_source;        ///< "<tag>:<symbol>" that introduced taint
    std::size_t taint_source_line{0};///< line where the taint entered this path
    std::string taint_sink;          ///< "<tag>:<symbol>" boundary it reached
    // GL020 extras: the offending layer edge. Empty for other rules.
    std::string layer_from;
    std::string layer_to;
};

/// One source file, content already loaded — the scanner never touches the
/// filesystem, so tests feed it strings directly.
struct FileInput {
    std::string path;
    std::string content;
};

/// Which rules a scan reports. An empty `enabled` set means all rules.
/// Filtering happens after suppression handling, so `--rules=` narrows the
/// report without changing what suppressions are legal.
struct ScanOptions {
    std::set<Rule> enabled;
    bool rule_enabled(Rule r) const { return enabled.empty() || enabled.count(r) > 0; }
};

/// Names declared in `content` with an unordered container type
/// (std::unordered_map / std::unordered_set, multimap/multiset variants).
std::set<std::string> unordered_decls(const std::string& content);

/// Scan one file. `extra_unordered` carries names declared unordered
/// elsewhere but iterated here (in practice: the sibling header of a .cpp).
/// The GL010 symbol index is built from this file alone; use scan_files for
/// cross-file annotation resolution.
std::vector<Finding> scan_file(const FileInput& in,
                               const std::set<std::string>& extra_unordered = {});

/// Scan a set of files, resolving each foo.cpp against a foo.hpp / foo.h
/// sibling in the same directory when present, and building the GL010 symbol
/// index (sources/sanitizers/sinks plus derived sources) across the whole
/// set. Findings are sorted by (file, line, rule) so output is stable
/// regardless of input order.
std::vector<Finding> scan_files(const std::vector<FileInput>& files);
std::vector<Finding> scan_files(const std::vector<FileInput>& files,
                                const ScanOptions& opts);

/// Graphviz DOT rendering of the layer-level include graph of the src/ files
/// in `files` (GL020's view). Violating edges are drawn red. Deterministic:
/// nodes and edges are emitted in sorted order.
std::string layer_dot(const std::vector<FileInput>& files);

std::string to_text(const std::vector<Finding>& findings);

/// JSON schema version of to_json output. History: 1 = {rule_id, rule, file,
/// line, message}; 2 adds top-level "schema_version" and the optional
/// per-finding taint_source / taint_source_line / taint_sink / layer_from /
/// layer_to fields.
inline constexpr std::uint64_t kJsonSchemaVersion = 2;

/// Stable schema: {"tool","schema_version","version","count","findings":
/// [{"rule_id","rule","file","line","message", optional taint/layer keys}]}.
std::string to_json(const std::vector<Finding>& findings);

/// Self-validation of to_json output (the `--check` flag): parses `json` with
/// a dependency-free parser and verifies the schema above, including
/// schema_version == kJsonSchemaVersion and count == findings.length. On
/// failure returns false and, when `error` is non-null, a one-line reason.
bool validate_findings_json(const std::string& json, std::string* error);

}  // namespace geoanon::lint
