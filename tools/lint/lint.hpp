#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace geoanon::lint {

/// Project-specific determinism rules clang-tidy cannot express. Rule IDs
/// are stable (they appear in suppression comments, CI output, and the JSON
/// schema); new rules append, existing IDs never renumber. DESIGN.md §12
/// documents each rule's rationale.
enum class Rule {
    kSuppression,    ///< GL000: malformed / reason-less suppression comment
    kWallClock,      ///< GL001: wall-clock time source outside allowed blocks
    kAmbientRng,     ///< GL002: rand()/std::random_device outside util/rng
    kUnseededEngine, ///< GL003: default-constructed <random> engine
    kUnorderedIter,  ///< GL004: iteration over unordered container state
    kPointerKey,     ///< GL005: pointer-keyed ordered container
    kFloatAccum,     ///< GL006: float arithmetic/state (stats must be double)
};

inline constexpr Rule kAllRules[] = {
    Rule::kSuppression,    Rule::kWallClock,  Rule::kAmbientRng,
    Rule::kUnseededEngine, Rule::kUnorderedIter, Rule::kPointerKey,
    Rule::kFloatAccum,
};

const char* rule_id(Rule r);    ///< "GL001"
const char* rule_name(Rule r);  ///< "wallclock" — the name suppressions use
const char* rule_summary(Rule r);
bool rule_from_name(const std::string& name, Rule& out);

struct Finding {
    Rule rule{Rule::kSuppression};
    std::string file;
    std::size_t line{0};
    std::string message;
};

/// One source file, content already loaded — the scanner never touches the
/// filesystem, so tests feed it strings directly.
struct FileInput {
    std::string path;
    std::string content;
};

/// Names declared in `content` with an unordered container type
/// (std::unordered_map / std::unordered_set, multimap/multiset variants).
std::set<std::string> unordered_decls(const std::string& content);

/// Scan one file. `extra_unordered` carries names declared unordered
/// elsewhere but iterated here (in practice: the sibling header of a .cpp).
std::vector<Finding> scan_file(const FileInput& in,
                               const std::set<std::string>& extra_unordered = {});

/// Scan a set of files, resolving each foo.cpp against a foo.hpp / foo.h
/// sibling in the same directory when present. Findings are sorted by
/// (file, line, rule) so output is stable regardless of input order.
std::vector<Finding> scan_files(const std::vector<FileInput>& files);

std::string to_text(const std::vector<Finding>& findings);
/// Stable schema: {"tool","version","count","findings":[{"rule_id","rule",
/// "file","line","message"}]}.
std::string to_json(const std::vector<Finding>& findings);

}  // namespace geoanon::lint
