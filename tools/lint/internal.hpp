#pragma once

// Shared internals of geoanon_lint: the comment/string splitter, tokenizer,
// suppression parser, and the symbol-annotation index the semantic passes
// (GL010 privacy-taint, GL020 layer-dag, GL030 hot-alloc) are built on.
// Nothing here is part of the public lint API (lint.hpp); the split exists so
// taint.cpp / layers.cpp / hotpath.cpp can share one tokenizer without
// re-exporting it to callers.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace geoanon::lint::internal {

// ---------------------------------------------------------------------------
// Source splitting and tokenization (defined in lint.cpp)
// ---------------------------------------------------------------------------

/// Per input line: the code text (comments and literal contents blanked) and
/// the comment text (for suppression and annotation directives).
struct SourceLine {
    std::string code;
    std::string comment;
};

std::vector<SourceLine> split_source(const std::string& src);

struct Token {
    std::string text;
    std::size_t line{0};  // 1-based
    bool is_ident{false};
};

std::vector<Token> tokenize(const std::vector<SourceLine>& lines);

std::string trim(const std::string& s);

/// Index of the token closing the bracket opened at `open` (toks[open] must
/// be the opener). Returns toks.size() when unbalanced.
std::size_t match_bracket(const std::vector<Token>& toks, std::size_t open,
                          const char* opener, const char* closer);

/// Matches the `>` closing a template argument list opened at toks[open].
std::size_t match_angle(const std::vector<Token>& toks, std::size_t open);

// ---------------------------------------------------------------------------
// Suppressions (defined in lint.cpp)
// ---------------------------------------------------------------------------

struct Suppressions {
    // line -> rules allowed on that line and the next one
    std::map<std::size_t, std::set<Rule>> line_allow;
    // rule -> list of [begin, end] line ranges
    std::map<Rule, std::vector<std::pair<std::size_t, std::size_t>>> blocks;
    std::vector<Finding> errors;

    bool allowed(Rule r, std::size_t line) const;
};

Suppressions parse_suppressions(const std::string& path,
                                const std::vector<SourceLine>& lines);

// ---------------------------------------------------------------------------
// `// geoanon:` symbol annotations (defined in taint.cpp)
//
// Grammar (one directive per comment, bound to the declaration that starts on
// the same or a following line):
//   // geoanon: source(<tag>)     — value-producing privacy source
//   // geoanon: sanitizer(<tag>)  — sanctioned transform; its result is clean
//   // geoanon: sink(<tag>)       — wire/export boundary (function or field)
//   // geoanon: hot               — per-event hot path (GL030 applies inside)
// A comment starting `geoanon:` that does not parse is a GL000 finding, same
// contract as malformed suppressions.
// ---------------------------------------------------------------------------

enum class Role { kSource, kSanitizer, kSink, kHot };

struct Annotation {
    Role role{Role::kSource};
    std::string tag;       // "node-id", "wire", ... (empty for hot)
    std::string symbol;    // declared name the annotation bound to
    bool is_function{false};
    std::size_t line{0};   // line of the annotation comment
};

/// Parse the annotations of one file. Malformed directives are appended to
/// `errors` as GL000 findings.
std::vector<Annotation> parse_annotations(const std::string& path,
                                          const std::vector<SourceLine>& lines,
                                          const std::vector<Token>& toks,
                                          std::vector<Finding>& errors);

/// The cross-file symbol index GL010 runs against. Name-based: the lint is a
/// token-level tool, so two unrelated symbols sharing an annotated name share
/// the role (documented in DESIGN.md §13 as the accepted imprecision).
struct TaintIndex {
    std::map<std::string, Annotation> source_fns;    // tainted when called
    std::map<std::string, Annotation> source_fields; // tainted when read
    std::set<std::string> sanitizers;                // call spans are clean
    std::map<std::string, Annotation> sink_fns;      // tainted args = finding
    std::map<std::string, Annotation> sink_fields;   // tainted writes = finding
};

void index_annotations(const std::vector<Annotation>& anns, TaintIndex& idx);

// ---------------------------------------------------------------------------
// Function discovery (defined in taint.cpp)
// ---------------------------------------------------------------------------

struct FunctionBody {
    std::string name;
    std::size_t name_tok{0};  // token index of the name
    std::size_t open{0};      // token index of the body '{'
    std::size_t close{0};     // token index of the matching '}'
    std::size_t line{0};      // line of the name token
};

/// All function definitions (token spans of their bodies) in a file.
std::vector<FunctionBody> find_functions(const std::vector<Token>& toks);

// ---------------------------------------------------------------------------
// Passes
// ---------------------------------------------------------------------------

/// GL010: intra-procedural source/sanitizer/sink dataflow over every function
/// body in the file, against the (possibly cross-file) index.
void check_taint(const std::string& path, const std::vector<Token>& toks,
                 const TaintIndex& idx, std::vector<Finding>& out);

/// Derived sources: a function whose `return` expression is tainted under the
/// current index becomes a source itself (tag "derived"). One fixpoint step;
/// returns true when the index grew.
bool add_derived_sources(const std::vector<Token>& toks, TaintIndex& idx);

/// GL030: allocation discipline inside `// geoanon: hot` functions.
void check_hotpath(const std::string& path, const std::vector<Token>& toks,
                   const std::vector<Annotation>& anns, std::vector<Finding>& out);

/// GL020: layer audit of one file's quoted includes (src/-relative paths).
void check_layers(const FileInput& in, std::vector<Finding>& out);

}  // namespace geoanon::lint::internal
