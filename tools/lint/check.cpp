// --check self-validation: re-parse the JSON the tool just emitted and verify
// it against the documented schema. util/json.hpp is emitter-only, so this
// carries a small recursive-descent parser for the JSON subset to_json
// produces (objects, arrays, strings with escapes, non-negative integers,
// booleans, null). Mirrors the trace_query --check discipline: the tool
// proves its own output parses before CI consumes it.

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>

#include "lint.hpp"

namespace geoanon::lint {

namespace {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
    Kind kind{Kind::kNull};
    bool boolean{false};
    std::uint64_t number{0};
    std::string str;
    std::vector<ValuePtr> array;
    std::map<std::string, ValuePtr> object;
};

struct Parser {
    const std::string& s;
    std::size_t pos{0};
    std::string error;

    explicit Parser(const std::string& text) : s(text) {}

    bool fail(const std::string& why) {
        if (error.empty())
            error = why + " at offset " + std::to_string(pos);
        return false;
    }

    void skip_ws() {
        while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                                  s[pos] == '\n' || s[pos] == '\r'))
            ++pos;
    }

    bool parse_string(std::string& out) {
        if (pos >= s.size() || s[pos] != '"') return fail("expected string");
        ++pos;
        out.clear();
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos];
            if (c == '\\') {
                if (pos + 1 >= s.size()) return fail("truncated escape");
                char e = s[pos + 1];
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': {
                        if (pos + 5 >= s.size()) return fail("truncated \\u");
                        unsigned code = 0;
                        for (int k = 0; k < 4; ++k) {
                            char h = s[pos + 2 + k];
                            code <<= 4;
                            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
                            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
                            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
                            else return fail("bad \\u digit");
                        }
                        // Emitted escapes are control characters; encode as
                        // UTF-8 without surrogate handling (to_json never
                        // emits surrogates).
                        if (code < 0x80) {
                            out += char(code);
                        } else if (code < 0x800) {
                            out += char(0xC0 | (code >> 6));
                            out += char(0x80 | (code & 0x3F));
                        } else {
                            out += char(0xE0 | (code >> 12));
                            out += char(0x80 | ((code >> 6) & 0x3F));
                            out += char(0x80 | (code & 0x3F));
                        }
                        pos += 4;
                        break;
                    }
                    default:
                        return fail("unknown escape");
                }
                pos += 2;
            } else {
                out += c;
                ++pos;
            }
        }
        if (pos >= s.size()) return fail("unterminated string");
        ++pos;  // closing quote
        return true;
    }

    ValuePtr parse_value() {
        skip_ws();
        if (pos >= s.size()) {
            fail("unexpected end of input");
            return nullptr;
        }
        char c = s[pos];
        auto v = std::make_shared<Value>();
        if (c == '"') {
            v->kind = Value::Kind::kString;
            if (!parse_string(v->str)) return nullptr;
            return v;
        }
        if (c == '{') {
            v->kind = Value::Kind::kObject;
            ++pos;
            skip_ws();
            if (pos < s.size() && s[pos] == '}') { ++pos; return v; }
            while (true) {
                skip_ws();
                std::string key;
                if (!parse_string(key)) return nullptr;
                skip_ws();
                if (pos >= s.size() || s[pos] != ':') {
                    fail("expected ':' in object");
                    return nullptr;
                }
                ++pos;
                ValuePtr member = parse_value();
                if (!member) return nullptr;
                if (v->object.count(key)) {
                    fail("duplicate key '" + key + "'");
                    return nullptr;
                }
                v->object[key] = member;
                skip_ws();
                if (pos < s.size() && s[pos] == ',') { ++pos; continue; }
                if (pos < s.size() && s[pos] == '}') { ++pos; return v; }
                fail("expected ',' or '}' in object");
                return nullptr;
            }
        }
        if (c == '[') {
            v->kind = Value::Kind::kArray;
            ++pos;
            skip_ws();
            if (pos < s.size() && s[pos] == ']') { ++pos; return v; }
            while (true) {
                ValuePtr elem = parse_value();
                if (!elem) return nullptr;
                v->array.push_back(elem);
                skip_ws();
                if (pos < s.size() && s[pos] == ',') { ++pos; continue; }
                if (pos < s.size() && s[pos] == ']') { ++pos; return v; }
                fail("expected ',' or ']' in array");
                return nullptr;
            }
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            v->kind = Value::Kind::kNumber;
            std::uint64_t n = 0;
            while (pos < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[pos]))) {
                n = n * 10 + std::uint64_t(s[pos] - '0');
                ++pos;
            }
            v->number = n;
            return v;
        }
        if (s.compare(pos, 4, "true") == 0) {
            v->kind = Value::Kind::kBool;
            v->boolean = true;
            pos += 4;
            return v;
        }
        if (s.compare(pos, 5, "false") == 0) {
            v->kind = Value::Kind::kBool;
            pos += 5;
            return v;
        }
        if (s.compare(pos, 4, "null") == 0) {
            pos += 4;
            return v;
        }
        fail("unexpected character");
        return nullptr;
    }
};

bool set_error(std::string* error, const std::string& why) {
    if (error) *error = why;
    return false;
}

const Value* get(const Value& obj, const std::string& key) {
    auto it = obj.object.find(key);
    return it == obj.object.end() ? nullptr : it->second.get();
}

bool require_string(const Value& obj, const std::string& key,
                    const std::string& ctx, std::string* error) {
    const Value* v = get(obj, key);
    if (!v) return set_error(error, ctx + ": missing key '" + key + "'");
    if (v->kind != Value::Kind::kString)
        return set_error(error, ctx + ": '" + key + "' is not a string");
    return true;
}

bool require_number(const Value& obj, const std::string& key,
                    const std::string& ctx, std::string* error) {
    const Value* v = get(obj, key);
    if (!v) return set_error(error, ctx + ": missing key '" + key + "'");
    if (v->kind != Value::Kind::kNumber)
        return set_error(error, ctx + ": '" + key + "' is not a number");
    return true;
}

}  // namespace

bool validate_findings_json(const std::string& json, std::string* error) {
    Parser p(json);
    ValuePtr root = p.parse_value();
    if (root) p.skip_ws();
    if (!root || p.pos != json.size()) {
        return set_error(error, root ? "trailing garbage after JSON document"
                                     : "parse error: " + p.error);
    }
    if (root->kind != Value::Kind::kObject)
        return set_error(error, "top level is not an object");

    if (!require_string(*root, "tool", "top level", error)) return false;
    if (get(*root, "tool")->str != "geoanon_lint")
        return set_error(error, "tool is not \"geoanon_lint\"");

    if (!require_number(*root, "schema_version", "top level", error))
        return false;
    if (get(*root, "schema_version")->number != kJsonSchemaVersion)
        return set_error(error,
                         "schema_version is " +
                             std::to_string(get(*root, "schema_version")->number) +
                             ", expected " + std::to_string(kJsonSchemaVersion));

    if (!require_number(*root, "version", "top level", error)) return false;
    if (!require_number(*root, "count", "top level", error)) return false;

    const Value* findings = get(*root, "findings");
    if (!findings) return set_error(error, "missing key 'findings'");
    if (findings->kind != Value::Kind::kArray)
        return set_error(error, "'findings' is not an array");
    if (get(*root, "count")->number != findings->array.size())
        return set_error(error, "count does not match findings length");

    // Known rule ids, for the per-finding rule_id check.
    std::set<std::string> ids;
    for (Rule r : kAllRules) ids.insert(rule_id(r));

    for (std::size_t i = 0; i < findings->array.size(); ++i) {
        const Value& f = *findings->array[i];
        const std::string ctx = "findings[" + std::to_string(i) + "]";
        if (f.kind != Value::Kind::kObject)
            return set_error(error, ctx + " is not an object");
        for (const char* key : {"rule_id", "rule", "file", "message"})
            if (!require_string(f, key, ctx, error)) return false;
        if (!require_number(f, "line", ctx, error)) return false;
        if (!ids.count(get(f, "rule_id")->str))
            return set_error(error, ctx + ": unknown rule_id '" +
                                        get(f, "rule_id")->str + "'");
        // Optional extras must have the right types when present.
        for (const char* key :
             {"taint_source", "taint_sink", "layer_from", "layer_to"}) {
            const Value* v = get(f, key);
            if (v && v->kind != Value::Kind::kString)
                return set_error(error, ctx + ": '" + std::string(key) +
                                            "' is not a string");
        }
        if (const Value* v = get(f, "taint_source_line"))
            if (v->kind != Value::Kind::kNumber)
                return set_error(error, ctx + ": 'taint_source_line' is not a "
                                            "number");
        // Unknown keys are a schema drift signal: reject them.
        static const std::set<std::string> known = {
            "rule_id", "rule", "file", "line", "message",
            "taint_source", "taint_source_line", "taint_sink",
            "layer_from", "layer_to"};
        for (const auto& [key, value] : f.object) {
            (void)value;
            if (!known.count(key))
                return set_error(error, ctx + ": unknown key '" + key + "'");
        }
    }
    return true;
}

}  // namespace geoanon::lint
