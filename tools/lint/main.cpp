// geoanon_lint — project-specific determinism & concurrency lint.
//
// Usage:
//   geoanon_lint [--json] [--root=DIR] [path...]
//
// Paths (files or directories, default: src bench tools) are resolved
// relative to --root (default: cwd). Directories are walked recursively for
// .cpp/.hpp/.h sources. Exit 0 = clean, 1 = findings, 2 = usage/IO error.
//
// The rules, their IDs, and the suppression syntax are documented in
// DESIGN.md §12.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using geoanon::lint::FileInput;

namespace {

bool is_source(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

bool load(const fs::path& root, const fs::path& file, std::vector<FileInput>& out) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "geoanon_lint: cannot read %s\n", file.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    // Report paths relative to the root so output and suppressions are
    // machine-independent.
    std::error_code ec;
    fs::path rel = fs::relative(file, root, ec);
    out.push_back({ec ? file.generic_string() : rel.generic_string(), ss.str()});
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    bool json = false;
    fs::path root = fs::current_path();
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--root=", 0) == 0) {
            root = arg.substr(7);
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: geoanon_lint [--json] [--root=DIR] [path...]\n");
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "geoanon_lint: unknown option %s\n", arg.c_str());
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) paths = {"src", "bench", "tools"};

    std::vector<FileInput> files;
    for (const std::string& p : paths) {
        const fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : root / p;
        std::error_code ec;
        if (fs::is_directory(abs, ec)) {
            std::vector<fs::path> found;
            for (const auto& ent : fs::recursive_directory_iterator(abs, ec)) {
                if (ent.is_regular_file() && is_source(ent.path()))
                    found.push_back(ent.path());
            }
            std::sort(found.begin(), found.end());
            for (const fs::path& f : found)
                if (!load(root, f, files)) return 2;
        } else if (fs::is_regular_file(abs, ec)) {
            if (!load(root, abs, files)) return 2;
        } else {
            std::fprintf(stderr, "geoanon_lint: no such file or directory: %s\n",
                         abs.c_str());
            return 2;
        }
    }

    const std::vector<geoanon::lint::Finding> findings =
        geoanon::lint::scan_files(files);
    const std::string out = json ? geoanon::lint::to_json(findings)
                                 : geoanon::lint::to_text(findings);
    std::fputs(out.c_str(), stdout);
    if (json) std::fputc('\n', stdout);
    return findings.empty() ? 0 : 1;
}
