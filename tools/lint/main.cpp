// geoanon_lint — project-specific determinism, privacy, and layering lint.
//
// Usage:
//   geoanon_lint [--json] [--check] [--rules=a,b,...] [--dot=FILE]
//                [--root=DIR] [path...]
//
// Paths (files or directories, default: src tests bench tools) are resolved
// relative to --root (default: cwd). Directories are walked recursively for
// .cpp/.hpp/.h sources. Exit 0 = clean, 1 = findings, 2 = usage/IO error.
//
// --rules=  comma-separated rule names (e.g. privacy-taint,layer-dag) limits
//           the report to those rules; default is all rules.
// --dot=F   additionally write the GL020 layer-level include graph of the
//           scanned src/ files to F as Graphviz DOT.
// --check   after emitting --json output, re-parse it and validate the
//           schema; exit 2 with a diagnostic on mismatch. Implies --json.
//
// The rules, their IDs, and the suppression syntax are documented in
// DESIGN.md §12 (determinism) and §13 (taint / layers / hot paths).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using geoanon::lint::FileInput;

namespace {

bool is_source(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

bool load(const fs::path& root, const fs::path& file, std::vector<FileInput>& out) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "geoanon_lint: cannot read %s\n", file.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    // Report paths relative to the root so output and suppressions are
    // machine-independent.
    std::error_code ec;
    fs::path rel = fs::relative(file, root, ec);
    out.push_back({ec ? file.generic_string() : rel.generic_string(), ss.str()});
    return true;
}

bool parse_rules(const std::string& spec, geoanon::lint::ScanOptions& opts) {
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos) comma = spec.size();
        const std::string name = spec.substr(pos, comma - pos);
        if (!name.empty()) {
            geoanon::lint::Rule r;
            if (!geoanon::lint::rule_from_name(name, r)) {
                std::fprintf(stderr, "geoanon_lint: unknown rule '%s'\n",
                             name.c_str());
                return false;
            }
            opts.enabled.insert(r);
        }
        pos = comma + 1;
    }
    if (opts.enabled.empty()) {
        std::fprintf(stderr, "geoanon_lint: --rules= names no rules\n");
        return false;
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    bool json = false;
    bool check = false;
    fs::path root = fs::current_path();
    std::string dot_file;
    geoanon::lint::ScanOptions opts;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--check") {
            check = json = true;
        } else if (arg.rfind("--root=", 0) == 0) {
            root = arg.substr(7);
        } else if (arg.rfind("--rules=", 0) == 0) {
            if (!parse_rules(arg.substr(8), opts)) return 2;
        } else if (arg.rfind("--dot=", 0) == 0) {
            dot_file = arg.substr(6);
            if (dot_file.empty()) {
                std::fprintf(stderr, "geoanon_lint: --dot= needs a file\n");
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: geoanon_lint [--json] [--check] [--rules=a,b,...]\n"
                "                    [--dot=FILE] [--root=DIR] [path...]\n");
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "geoanon_lint: unknown option %s\n", arg.c_str());
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) paths = {"src", "tests", "bench", "tools"};

    std::vector<FileInput> files;
    for (const std::string& p : paths) {
        const fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : root / p;
        std::error_code ec;
        if (fs::is_directory(abs, ec)) {
            std::vector<fs::path> found;
            for (const auto& ent : fs::recursive_directory_iterator(abs, ec)) {
                if (ent.is_regular_file() && is_source(ent.path()))
                    found.push_back(ent.path());
            }
            std::sort(found.begin(), found.end());
            for (const fs::path& f : found)
                if (!load(root, f, files)) return 2;
        } else if (fs::is_regular_file(abs, ec)) {
            if (!load(root, abs, files)) return 2;
        } else {
            std::fprintf(stderr, "geoanon_lint: no such file or directory: %s\n",
                         abs.c_str());
            return 2;
        }
    }

    if (!dot_file.empty()) {
        std::ofstream out(dot_file, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "geoanon_lint: cannot write %s\n",
                         dot_file.c_str());
            return 2;
        }
        out << geoanon::lint::layer_dot(files);
    }

    const std::vector<geoanon::lint::Finding> findings =
        geoanon::lint::scan_files(files, opts);
    const std::string out = json ? geoanon::lint::to_json(findings)
                                 : geoanon::lint::to_text(findings);
    if (check) {
        std::string err;
        if (!geoanon::lint::validate_findings_json(out, &err)) {
            std::fprintf(stderr, "geoanon_lint: --check failed: %s\n",
                         err.c_str());
            return 2;
        }
    }
    std::fputs(out.c_str(), stdout);
    if (json) std::fputc('\n', stdout);
    return findings.empty() ? 0 : 1;
}
