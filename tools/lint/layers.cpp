// GL020 layer-DAG audit: parse the quoted includes of src/ files and enforce
// the engine layering documented in DESIGN.md §13. Includes are parsed from
// the raw content (the code/comment splitter blanks string literals, which
// would erase the include path), one directive per line, which matches how
// the codebase formats includes.
//
// The layer model is the *empirical* one the code obeys, not the naive
// directory chain: src/net splits into a "wire" sublayer (types.hpp,
// packet.hpp, codec.*) that sits below phy/mac — that split is what makes the
// stack a DAG at all (frames carry packets, so phy/mac need the wire types,
// while net/node orchestrates mac and phy above them).

#include <algorithm>
#include <map>
#include <tuple>

#include "internal.hpp"

namespace geoanon::lint {

namespace internal {

namespace {

struct LayerInfo {
    const char* name;
    int rank;
};

// Edges must point to a strictly lower rank (or stay inside one layer).
// Equal-rank siblings (sim/crypto/mobility, fault/analysis) may not include
// each other: they are independent by design.
constexpr LayerInfo kLayers[] = {
    {"util", 0},
    {"sim", 1},      {"crypto", 1},   {"mobility", 1},
    {"wire", 2},
    {"obs", 3},
    {"phy", 4},
    {"mac", 5},
    {"net", 6},
    {"routing", 7},
    {"core", 8},
    {"fault", 9},    {"analysis", 9},  {"adversary", 9},
    {"workload", 10},
    {"experiment", 11},
};

int rank_of(const std::string& layer) {
    for (const LayerInfo& l : kLayers)
        if (layer == l.name) return l.rank;
    return -1;
}

/// The wire sublayer of src/net: the passive packet/frame/codec types.
bool is_wire(const std::string& src_rel) {
    return src_rel == "net/types.hpp" || src_rel == "net/packet.hpp" ||
           src_rel == "net/codec.hpp" || src_rel == "net/codec.cpp";
}

/// Layer of a src/-relative path ("net/packet.hpp" -> "wire",
/// "core/agfw.cpp" -> "core"); "" when the top directory is not a layer.
std::string layer_of(const std::string& src_rel) {
    if (is_wire(src_rel)) return "wire";
    const std::size_t slash = src_rel.find('/');
    if (slash == std::string::npos) return "";
    const std::string dir = src_rel.substr(0, slash);
    return rank_of(dir) >= 0 ? dir : "";
}

struct Include {
    std::string path;  // the quoted include target
    std::size_t line;  // 1-based
};

std::vector<Include> parse_includes(const std::string& content) {
    std::vector<Include> out;
    std::size_t pos = 0, line = 1;
    while (pos <= content.size()) {
        std::size_t eol = content.find('\n', pos);
        if (eol == std::string::npos) eol = content.size();
        std::string l = trim(content.substr(pos, eol - pos));
        if (!l.empty() && l[0] == '#') {
            l = trim(l.substr(1));
            if (l.rfind("include", 0) == 0) {
                l = trim(l.substr(std::string("include").size()));
                if (l.size() >= 2 && l.front() == '"') {
                    const std::size_t close = l.find('"', 1);
                    if (close != std::string::npos)
                        out.push_back({l.substr(1, close - 1), line});
                }
            }
        }
        pos = eol + 1;
        ++line;
    }
    return out;
}

/// src/-relative path of a scanned file, or "" when the file is outside src/.
std::string src_rel(const std::string& path) {
    if (path.rfind("src/", 0) == 0) return path.substr(4);
    return "";
}

}  // namespace

void check_layers(const FileInput& in, std::vector<Finding>& out) {
    const std::string rel = src_rel(in.path);
    if (rel.empty()) return;
    const std::string from = layer_of(rel);
    if (from.empty()) return;
    const int from_rank = rank_of(from);

    for (const Include& inc : parse_includes(in.content)) {
        const std::string to = layer_of(inc.path);
        if (to.empty() || to == from) continue;  // system/self-layer include
        const int to_rank = rank_of(to);
        if (to_rank < from_rank) continue;
        Finding f;
        f.rule = Rule::kLayerDag;
        f.file = in.path;
        f.line = inc.line;
        f.layer_from = from;
        f.layer_to = to;
        f.message = "#include \"" + inc.path + "\" climbs the layer DAG: " +
                    from + " (rank " + std::to_string(from_rank) +
                    ") may only include layers below it, but " + to +
                    " has rank " + std::to_string(to_rank) +
                    (to_rank == from_rank
                         ? " (equal-rank siblings are independent by design)"
                         : "") +
                    "; see DESIGN.md \xc2\xa7" "13";
        out.push_back(std::move(f));
    }
}

}  // namespace internal

std::string layer_dot(const std::vector<FileInput>& files) {
    using internal::parse_includes;
    // Aggregate layer-level edges with file-level include counts.
    std::map<std::pair<std::string, std::string>, std::size_t> edges;
    std::set<std::string> present;
    for (const FileInput& f : files) {
        const std::string rel = internal::src_rel(f.path);
        if (rel.empty()) continue;
        const std::string from = internal::layer_of(rel);
        if (from.empty()) continue;
        present.insert(from);
        for (const internal::Include& inc : parse_includes(f.content)) {
            const std::string to = internal::layer_of(inc.path);
            if (to.empty()) continue;
            present.insert(to);
            if (to != from) ++edges[{from, to}];
        }
    }

    std::string dot;
    dot += "// geoanon_lint --dot: layer-level include graph of src/.\n";
    dot += "// Edges must point to strictly lower ranks; red edges violate\n";
    dot += "// the DAG (GL020). Ranks are the DESIGN.md \xc2\xa7" "13 table.\n";
    dot += "digraph geoanon_layers {\n";
    dot += "  rankdir=BT;\n";
    dot += "  node [shape=box, fontname=\"Helvetica\"];\n";
    for (const std::string& l : present) {
        dot += "  \"" + l + "\" [label=\"" + l + "\\nrank " +
               std::to_string(internal::rank_of(l)) + "\"];\n";
    }
    for (const auto& [edge, count] : edges) {
        const bool bad = internal::rank_of(edge.second) >= internal::rank_of(edge.first);
        dot += "  \"" + edge.first + "\" -> \"" + edge.second + "\" [label=\"" +
               std::to_string(count) + "\"" +
               (bad ? ", color=red, penwidth=2.0" : "") + "];\n";
    }
    dot += "}\n";
    return dot;
}

}  // namespace geoanon::lint
