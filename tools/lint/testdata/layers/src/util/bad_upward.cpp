// GL020 canary: a deliberate upward include the layer-DAG pass MUST flag.
//
// CI runs `geoanon_lint --rules=layer-dag --root=tools/lint/testdata/layers
// src` and asserts exit code 1. GL020 only applies to paths that start with
// "src/", so under the repo root this file's path
// (tools/lint/testdata/layers/...) keeps it inert in default scans; scoping
// --root to this directory makes the path "src/util/bad_upward.cpp" and the
// violation visible. The real src/ tree is a clean DAG, so this canary is
// what proves the pass can still fail.

#include "core/agfw.hpp"  // util (rank 0) including core (rank 8): upward edge
