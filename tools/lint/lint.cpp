#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <tuple>

#include "internal.hpp"
#include "util/json.hpp"

namespace geoanon::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule metadata
// ---------------------------------------------------------------------------

struct RuleInfo {
    Rule rule;
    const char* id;
    const char* name;
    const char* summary;
};

constexpr RuleInfo kRuleInfo[] = {
    {Rule::kSuppression, "GL000", "suppression",
     "suppression comment is malformed or missing a reason"},
    {Rule::kWallClock, "GL001", "wallclock",
     "wall-clock time source in deterministic code"},
    {Rule::kAmbientRng, "GL002", "ambient-rng",
     "ambient randomness outside util/rng"},
    {Rule::kUnseededEngine, "GL003", "unseeded-engine",
     "default-constructed <random> engine"},
    {Rule::kUnorderedIter, "GL004", "unordered-iter",
     "iteration over unordered container"},
    {Rule::kPointerKey, "GL005", "pointer-key",
     "pointer-keyed ordered container"},
    {Rule::kFloatAccum, "GL006", "float-accum",
     "float arithmetic/state in simulation or stats path"},
    {Rule::kPrivacyTaint, "GL010", "privacy-taint",
     "identity/position source reaches a wire or export sink unsanitized"},
    {Rule::kLayerDag, "GL020", "layer-dag",
     "include edge climbs the documented layer DAG"},
    {Rule::kHotAlloc, "GL030", "hot-alloc",
     "heap allocation inside a `geoanon: hot` per-event path"},
};

const RuleInfo& info(Rule r) {
    for (const RuleInfo& ri : kRuleInfo)
        if (ri.rule == r) return ri;
    return kRuleInfo[0];
}

}  // namespace

namespace internal {

// ---------------------------------------------------------------------------
// Source splitting: per line, the code text (comments and literal contents
// blanked out) and the comment text (for suppression directives). Handles
// line/block comments, string and char literals with escapes, and raw
// strings R"delim(...)delim".
// ---------------------------------------------------------------------------

std::vector<SourceLine> split_source(const std::string& src) {
    std::vector<SourceLine> lines(1);
    enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
    State st = State::kCode;
    std::string raw_delim;  // for raw strings: the )delim" terminator
    std::size_t i = 0;
    const std::size_t n = src.size();

    auto code = [&lines]() -> std::string& { return lines.back().code; };
    auto comment = [&lines]() -> std::string& { return lines.back().comment; };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            if (st == State::kLineComment) st = State::kCode;
            // Unterminated ordinary literals do not span lines; reset so a
            // stray quote cannot swallow the rest of the file.
            if (st == State::kString || st == State::kChar) st = State::kCode;
            lines.emplace_back();
            ++i;
            continue;
        }
        switch (st) {
            case State::kCode:
                if (c == '/' && i + 1 < n && src[i + 1] == '/') {
                    st = State::kLineComment;
                    i += 2;
                } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
                    st = State::kBlockComment;
                    i += 2;
                } else if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
                           (i == 0 || (!std::isalnum(static_cast<unsigned char>(src[i - 1])) &&
                                       src[i - 1] != '_'))) {
                    std::size_t j = i + 2;
                    std::string d;
                    while (j < n && src[j] != '(' && src[j] != '\n') d += src[j++];
                    if (j < n && src[j] == '(') {
                        raw_delim = ")" + d + "\"";
                        st = State::kRawString;
                        code() += "\"\"";  // keep a placeholder token
                        i = j + 1;
                    } else {
                        code() += c;
                        ++i;
                    }
                } else if (c == '"') {
                    st = State::kString;
                    code() += '"';
                    ++i;
                } else if (c == '\'') {
                    st = State::kChar;
                    code() += '\'';
                    ++i;
                } else {
                    code() += c;
                    ++i;
                }
                break;
            case State::kLineComment:
                comment() += c;
                ++i;
                break;
            case State::kBlockComment:
                if (c == '*' && i + 1 < n && src[i + 1] == '/') {
                    st = State::kCode;
                    i += 2;
                } else {
                    comment() += c;
                    ++i;
                }
                break;
            case State::kString:
                if (c == '\\' && i + 1 < n) {
                    i += 2;
                } else if (c == '"') {
                    st = State::kCode;
                    code() += '"';
                    ++i;
                } else {
                    ++i;
                }
                break;
            case State::kChar:
                if (c == '\\' && i + 1 < n) {
                    i += 2;
                } else if (c == '\'') {
                    st = State::kCode;
                    code() += '\'';
                    ++i;
                } else {
                    ++i;
                }
                break;
            case State::kRawString:
                if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
                    st = State::kCode;
                    i += raw_delim.size();
                } else {
                    ++i;
                }
                break;
        }
    }
    return lines;
}

// ---------------------------------------------------------------------------
// Tokenizer over the blanked code text.
// ---------------------------------------------------------------------------

std::vector<Token> tokenize(const std::vector<SourceLine>& lines) {
    std::vector<Token> toks;
    for (std::size_t ln = 0; ln < lines.size(); ++ln) {
        const std::string& s = lines[ln].code;
        std::size_t i = 0;
        while (i < s.size()) {
            const unsigned char c = static_cast<unsigned char>(s[i]);
            if (std::isspace(c)) {
                ++i;
                continue;
            }
            Token t;
            t.line = ln + 1;
            if (std::isalpha(c) || c == '_') {
                while (i < s.size()) {
                    const unsigned char d = static_cast<unsigned char>(s[i]);
                    if (!std::isalnum(d) && d != '_') break;
                    t.text += s[i++];
                }
                t.is_ident = true;
            } else if (std::isdigit(c)) {
                while (i < s.size()) {
                    const unsigned char d = static_cast<unsigned char>(s[i]);
                    if (!std::isalnum(d) && d != '.' && d != '\'') break;
                    t.text += s[i++];
                }
            } else {
                t.text = s[i++];
            }
            toks.push_back(std::move(t));
        }
    }
    return toks;
}

std::string trim(const std::string& s) {
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

std::size_t match_bracket(const std::vector<Token>& toks, std::size_t open,
                          const char* opener, const char* closer) {
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].text == opener) ++depth;
        else if (toks[i].text == closer && --depth == 0) return i;
    }
    return toks.size();
}

std::size_t match_angle(const std::vector<Token>& toks, std::size_t open) {
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        const std::string& t = toks[i].text;
        if (t == "<") ++depth;
        else if (t == ">" && --depth == 0) return i;
        else if (t == ";" && depth == 1) return toks.size();
    }
    return toks.size();
}

// ---------------------------------------------------------------------------
// Suppression directives — "allow" covers its own line and the next one,
// "begin-allow"/"end-allow" bracket a region. Examples (using real rule
// names; the list is comma-separated):
//   geoanon-lint: allow(wallclock) -- doc example, not an active suppression
//   geoanon-lint: begin-allow(wallclock, float-accum) -- doc example
//   geoanon-lint: end-allow(wallclock, float-accum)
// A directive without a parseable rule list, with an unknown rule name, or
// (for allow/begin-allow) without a nonempty reason after "--" is itself a
// GL000 finding: every suppression must say why.
// ---------------------------------------------------------------------------

bool Suppressions::allowed(Rule r, std::size_t line) const {
    for (std::size_t l : {line, line > 0 ? line - 1 : 0}) {
        const auto it = line_allow.find(l);
        if (it != line_allow.end() && it->second.count(r)) return true;
    }
    const auto bit = blocks.find(r);
    if (bit != blocks.end()) {
        for (const auto& [b, e] : bit->second)
            if (line >= b && line <= e) return true;
    }
    return false;
}

Suppressions parse_suppressions(const std::string& path,
                                const std::vector<SourceLine>& lines) {
    Suppressions sup;
    // rule -> stack of open begin-allow lines
    std::map<Rule, std::vector<std::size_t>> open;

    for (std::size_t ln = 0; ln < lines.size(); ++ln) {
        const std::string& c = lines[ln].comment;
        const std::size_t pos = c.find("geoanon-lint:");
        if (pos == std::string::npos) continue;
        const std::size_t line = ln + 1;
        auto bad = [&](const std::string& why) {
            sup.errors.push_back(
                {Rule::kSuppression, path, line, "bad suppression: " + why});
        };

        std::string rest = trim(c.substr(pos + std::string("geoanon-lint:").size()));
        std::string verb;
        for (const char* v : {"begin-allow", "end-allow", "allow"}) {
            if (rest.rfind(v, 0) == 0) {
                verb = v;
                rest = rest.substr(verb.size());
                break;
            }
        }
        if (verb.empty()) {
            bad("expected allow(...), begin-allow(...), or end-allow(...)");
            continue;
        }
        rest = trim(rest);
        if (rest.empty() || rest[0] != '(') {
            bad(verb + " needs a (rule, ...) list");
            continue;
        }
        const std::size_t close = rest.find(')');
        if (close == std::string::npos) {
            bad("unterminated rule list");
            continue;
        }
        std::set<Rule> rules;
        std::string list = rest.substr(1, close - 1);
        bool ok = true;
        std::size_t start = 0;
        while (start <= list.size()) {
            std::size_t comma = list.find(',', start);
            if (comma == std::string::npos) comma = list.size();
            const std::string name = trim(list.substr(start, comma - start));
            Rule r;
            if (name.empty() || !rule_from_name(name, r)) {
                bad("unknown rule '" + name + "'");
                ok = false;
                break;
            }
            rules.insert(r);
            if (comma == list.size()) break;
            start = comma + 1;
        }
        if (!ok || rules.empty()) {
            if (ok) bad("empty rule list");
            continue;
        }
        rest = trim(rest.substr(close + 1));

        if (verb == "end-allow") {
            for (Rule r : rules) {
                auto& st = open[r];
                if (st.empty()) {
                    bad(std::string("end-allow(") + rule_name(r) +
                        ") without matching begin-allow");
                    continue;
                }
                sup.blocks[r].emplace_back(st.back(), line);
                st.pop_back();
            }
            continue;
        }

        // allow / begin-allow: demand "-- reason".
        if (rest.rfind("--", 0) != 0 || trim(rest.substr(2)).empty()) {
            bad(verb + " must carry a reason: \"-- <why this is safe>\"");
            continue;
        }
        if (verb == "allow") {
            sup.line_allow[line].insert(rules.begin(), rules.end());
        } else {
            for (Rule r : rules) open[r].push_back(line);
        }
    }
    for (const auto& [r, st] : open) {
        for (std::size_t line : st)
            sup.errors.push_back({Rule::kSuppression, path, line,
                                  std::string("begin-allow(") + rule_name(r) +
                                      ") never closed by end-allow"});
    }
    return sup;
}

}  // namespace internal

using internal::SourceLine;
using internal::Suppressions;
using internal::Token;
using internal::match_angle;
using internal::match_bracket;
using internal::split_source;
using internal::tokenize;

namespace {

// ---------------------------------------------------------------------------
// Token-level rules (GL001–GL006)
// ---------------------------------------------------------------------------

bool contains(const std::string& haystack, const char* needle) {
    return haystack.find(needle) != std::string::npos;
}

constexpr const char* kWallClockIdents[] = {
    "system_clock",  "steady_clock", "high_resolution_clock",
    "gettimeofday",  "clock_gettime", "timespec_get",
};
constexpr const char* kAmbientRngIdents[] = {
    "rand", "srand", "random_device", "drand48", "lrand48",
    "mrand48", "random_shuffle",
};
constexpr const char* kRandomEngines[] = {
    "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "ranlux24", "ranlux48", "knuth_b",
};
constexpr const char* kUnorderedTypes[] = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset",
};
constexpr const char* kOrderedTypes[] = {"map", "set", "multimap", "multiset"};

bool is_any(const Token& t, const auto& list) {
    if (!t.is_ident) return false;
    for (const char* w : list)
        if (t.text == w) return true;
    return false;
}

void check_wallclock(const std::string& path, const std::vector<Token>& toks,
                     std::vector<Finding>& out) {
    for (const Token& t : toks) {
        if (is_any(t, kWallClockIdents)) {
            out.push_back({Rule::kWallClock, path, t.line,
                           t.text + ": wall-clock reads break run reproducibility; "
                           "derive timing from SimTime, or suppress in a measured "
                           "perf block"});
        }
    }
}

void check_ambient_rng(const std::string& path, const std::vector<Token>& toks,
                       std::vector<Finding>& out) {
    if (contains(path, "util/rng")) return;  // the one sanctioned RNG home
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (!is_any(t, kAmbientRngIdents)) continue;
        // `rand`/`srand` only as a call or address-of, not substrings of
        // member names (the tokenizer already guarantees whole identifiers;
        // still require a call-ish context to dodge local vars named rand).
        if (t.text == "rand" || t.text == "srand") {
            const bool call = i + 1 < toks.size() && toks[i + 1].text == "(";
            if (!call) continue;
            // skip member calls like obj.rand() which are project code
            if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->")) continue;
        }
        out.push_back({Rule::kAmbientRng, path, t.line,
                       t.text + ": nondeterministic randomness; all streams must "
                       "fork from util::Rng and the scenario seed"});
    }
}

void check_unseeded_engine(const std::string& path, const std::vector<Token>& toks,
                           std::vector<Finding>& out) {
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!is_any(toks[i], kRandomEngines)) continue;
        const std::size_t line = toks[i].line;
        std::size_t j = i + 1;
        // `std::mt19937 name ;|{}|()`  or temporary `std::mt19937{}` / `()`.
        if (j < toks.size() && toks[j].is_ident) ++j;  // declared name
        if (j >= toks.size()) continue;
        const std::string& a = toks[j].text;
        const bool empty_pair =
            (a == "{" || a == "(") && j + 1 < toks.size() &&
            toks[j + 1].text == (a == "{" ? "}" : ")");
        if (a == ";" || empty_pair) {
            out.push_back({Rule::kUnseededEngine, path, line,
                           toks[i].text + " constructed without a seed: engine "
                           "state would come from the default constant, hiding "
                           "the missing seed plumbing"});
        }
    }
}

void check_pointer_key(const std::string& path, const std::vector<Token>& toks,
                       std::vector<Finding>& out) {
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (!(toks[i].text == "std" && toks[i + 1].text == ":" &&
              toks[i + 2].text == ":"))
            continue;
        const std::size_t ty = i + 3;
        if (!is_any(toks[ty], kOrderedTypes)) continue;
        if (ty + 1 >= toks.size() || toks[ty + 1].text != "<") continue;
        const std::size_t close = match_angle(toks, ty + 1);
        if (close == toks.size()) continue;
        // Key type: tokens up to the first top-level comma (or the close).
        int depth = 0;
        bool pointer = false;
        for (std::size_t k = ty + 1; k < close; ++k) {
            const std::string& t = toks[k].text;
            if (t == "<" || t == "(") ++depth;
            else if (t == ">" || t == ")") --depth;
            else if (t == "," && depth == 1) break;
            else if (t == "*" && depth == 1) pointer = true;
        }
        if (pointer) {
            out.push_back({Rule::kPointerKey, path, toks[ty].line,
                           "std::" + toks[ty].text + " keyed by a pointer: "
                           "ordering follows allocation addresses, which differ "
                           "run to run"});
        }
    }
}

void check_float(const std::string& path, const std::vector<Token>& toks,
                 std::vector<Finding>& out) {
    for (const Token& t : toks) {
        if (t.is_ident && t.text == "float") {
            out.push_back({Rule::kFloatAccum, path, t.line,
                           "float narrows accumulations and shifts stats between "
                           "platforms; simulation and stats state is double"});
        }
    }
}

void collect_unordered_decls(const std::vector<Token>& toks,
                             std::set<std::string>& names) {
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!is_any(toks[i], kUnorderedTypes)) continue;
        if (i + 1 >= toks.size() || toks[i + 1].text != "<") continue;
        std::size_t close = match_angle(toks, i + 1);
        if (close == toks.size()) continue;
        std::size_t j = close + 1;
        while (j < toks.size() &&
               (toks[j].text == "&" || toks[j].text == "*" || toks[j].text == "const"))
            ++j;
        if (j < toks.size() && toks[j].is_ident) names.insert(toks[j].text);
    }
}

void check_unordered_iter(const std::string& path, const std::vector<Token>& toks,
                          const std::set<std::string>& names,
                          std::vector<Finding>& out) {
    if (names.empty()) return;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        // (a) range-for whose range expression names an unordered container.
        if (toks[i].is_ident && toks[i].text == "for" && i + 1 < toks.size() &&
            toks[i + 1].text == "(") {
            const std::size_t close = match_bracket(toks, i + 1, "(", ")");
            if (close == toks.size()) continue;
            // top-level ':' (ignore '::')
            std::size_t colon = toks.size();
            int depth = 0;
            for (std::size_t k = i + 1; k < close; ++k) {
                const std::string& t = toks[k].text;
                if (t == "(" || t == "[" || t == "{") ++depth;
                else if (t == ")" || t == "]" || t == "}") --depth;
                else if (t == ":" && depth == 1 &&
                         (k + 1 >= close || toks[k + 1].text != ":") &&
                         (k == 0 || toks[k - 1].text != ":")) {
                    colon = k;
                    break;
                }
            }
            if (colon == toks.size()) continue;
            for (std::size_t k = colon + 1; k < close; ++k) {
                if (toks[k].is_ident && names.count(toks[k].text)) {
                    out.push_back(
                        {Rule::kUnorderedIter, path, toks[i].line,
                         "range-for over unordered container '" + toks[k].text +
                             "': iteration order is hash-layout dependent; sort "
                             "before emitting, use a deterministic container, or "
                             "suppress if order provably cannot escape"});
                    break;
                }
            }
        }
        // (b) explicit iterator walk: name.begin() / name.cbegin().
        if (toks[i].is_ident && names.count(toks[i].text) && i + 2 < toks.size() &&
            toks[i + 1].text == "." &&
            (toks[i + 2].text == "begin" || toks[i + 2].text == "cbegin")) {
            out.push_back({Rule::kUnorderedIter, path, toks[i].line,
                           "iterator walk over unordered container '" + toks[i].text +
                               "': iteration order is hash-layout dependent"});
        }
    }
}

/// Shared per-file scan against a caller-provided taint index. Runs every
/// pass, applies suppressions, and appends GL000 annotation/suppression
/// errors.
std::vector<Finding> scan_file_indexed(const FileInput& in,
                                       const std::set<std::string>& extra_unordered,
                                       const internal::TaintIndex& idx) {
    const std::vector<SourceLine> lines = split_source(in.content);
    const std::vector<Token> toks = tokenize(lines);
    const Suppressions sup = internal::parse_suppressions(in.path, lines);

    std::set<std::string> unordered = extra_unordered;
    collect_unordered_decls(toks, unordered);

    std::vector<Finding> annotation_errors;
    const std::vector<internal::Annotation> anns =
        internal::parse_annotations(in.path, lines, toks, annotation_errors);

    std::vector<Finding> raw;
    check_wallclock(in.path, toks, raw);
    check_ambient_rng(in.path, toks, raw);
    check_unseeded_engine(in.path, toks, raw);
    check_unordered_iter(in.path, toks, unordered, raw);
    check_pointer_key(in.path, toks, raw);
    check_float(in.path, toks, raw);
    internal::check_taint(in.path, toks, idx, raw);
    internal::check_hotpath(in.path, toks, anns, raw);
    internal::check_layers(in, raw);

    std::vector<Finding> out;
    for (Finding& f : raw)
        if (!sup.allowed(f.rule, f.line)) out.push_back(std::move(f));
    out.insert(out.end(), sup.errors.begin(), sup.errors.end());
    out.insert(out.end(), annotation_errors.begin(), annotation_errors.end());
    return out;
}

/// Build the cross-file GL010 index: explicit annotations first, then the
/// derived-source fixpoint (a function whose return value is tainted becomes
/// a source itself; bounded iterations keep pathological cycles cheap).
internal::TaintIndex build_index(
    const std::vector<std::pair<const FileInput*, std::vector<Token>>>& tokenized) {
    internal::TaintIndex idx;
    std::vector<Finding> sink_errors;  // reported by the per-file scan instead
    for (const auto& [file, toks] : tokenized) {
        const std::vector<SourceLine> lines = split_source(file->content);
        const auto anns =
            internal::parse_annotations(file->path, lines, toks, sink_errors);
        internal::index_annotations(anns, idx);
    }
    for (int round = 0; round < 3; ++round) {
        bool grew = false;
        for (const auto& [file, toks] : tokenized)
            grew = internal::add_derived_sources(toks, idx) || grew;
        if (!grew) break;
    }
    return idx;
}

}  // namespace

const char* rule_id(Rule r) { return info(r).id; }
const char* rule_name(Rule r) { return info(r).name; }
const char* rule_summary(Rule r) { return info(r).summary; }

bool rule_from_name(const std::string& name, Rule& out) {
    for (const RuleInfo& ri : kRuleInfo) {
        if (name == ri.name || name == ri.id) {
            out = ri.rule;
            return true;
        }
    }
    return false;
}

std::set<std::string> unordered_decls(const std::string& content) {
    std::set<std::string> names;
    collect_unordered_decls(tokenize(split_source(content)), names);
    return names;
}

std::vector<Finding> scan_file(const FileInput& in,
                               const std::set<std::string>& extra_unordered) {
    // Single-file entry point: the taint index sees this file alone, so
    // annotation fixtures stay self-contained (tests rely on this).
    const std::vector<SourceLine> lines = split_source(in.content);
    std::vector<Token> toks = tokenize(lines);
    std::vector<std::pair<const FileInput*, std::vector<Token>>> tokenized;
    tokenized.emplace_back(&in, std::move(toks));
    const internal::TaintIndex idx = build_index(tokenized);
    return scan_file_indexed(in, extra_unordered, idx);
}

std::vector<Finding> scan_files(const std::vector<FileInput>& files) {
    return scan_files(files, ScanOptions{});
}

std::vector<Finding> scan_files(const std::vector<FileInput>& files,
                                const ScanOptions& opts) {
    // Sibling-header resolution: for dir/foo.cpp, names declared unordered in
    // dir/foo.hpp (or .h) are hazards in foo.cpp too — members declared in
    // the class header are iterated in the implementation file.
    std::map<std::string, const FileInput*> by_path;
    for (const FileInput& f : files) by_path[f.path] = &f;

    // Tokenize once; the GL010 index and the per-file passes share the work.
    std::vector<std::pair<const FileInput*, std::vector<Token>>> tokenized;
    tokenized.reserve(files.size());
    for (const FileInput& f : files)
        tokenized.emplace_back(&f, tokenize(split_source(f.content)));
    const internal::TaintIndex idx = build_index(tokenized);

    std::vector<Finding> all;
    for (const FileInput& f : files) {
        std::set<std::string> extra;
        const std::size_t dot = f.path.rfind(".cpp");
        if (dot != std::string::npos && dot == f.path.size() - 4) {
            for (const char* ext : {".hpp", ".h"}) {
                const auto it = by_path.find(f.path.substr(0, dot) + ext);
                if (it != by_path.end()) {
                    const std::set<std::string> names =
                        unordered_decls(it->second->content);
                    extra.insert(names.begin(), names.end());
                }
            }
        }
        std::vector<Finding> fs = scan_file_indexed(f, extra, idx);
        all.insert(all.end(), fs.begin(), fs.end());
    }
    std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
        return std::tie(a.file, a.line, a.rule, a.message) <
               std::tie(b.file, b.line, b.rule, b.message);
    });
    if (!opts.enabled.empty()) {
        std::vector<Finding> kept;
        for (Finding& f : all)
            if (opts.rule_enabled(f.rule)) kept.push_back(std::move(f));
        all = std::move(kept);
    }
    return all;
}

std::string to_text(const std::vector<Finding>& findings) {
    std::string out;
    for (const Finding& f : findings) {
        out += f.file + ":" + std::to_string(f.line) + ": [" + rule_id(f.rule) +
               "/" + rule_name(f.rule) + "] " + f.message + "\n";
    }
    out += std::to_string(findings.size()) + " finding(s)\n";
    return out;
}

std::string to_json(const std::vector<Finding>& findings) {
    util::JsonWriter w;
    w.begin_object();
    w.key("tool").value("geoanon_lint");
    w.key("schema_version").value(kJsonSchemaVersion);
    w.key("version").value(kJsonSchemaVersion);
    w.key("count").value(static_cast<std::uint64_t>(findings.size()));
    w.key("findings").begin_array();
    for (const Finding& f : findings) {
        w.begin_object();
        w.key("rule_id").value(rule_id(f.rule));
        w.key("rule").value(rule_name(f.rule));
        w.key("file").value(f.file);
        w.key("line").value(static_cast<std::uint64_t>(f.line));
        w.key("message").value(f.message);
        if (!f.taint_source.empty()) {
            w.key("taint_source").value(f.taint_source);
            w.key("taint_source_line")
                .value(static_cast<std::uint64_t>(f.taint_source_line));
            w.key("taint_sink").value(f.taint_sink);
        }
        if (!f.layer_from.empty()) {
            w.key("layer_from").value(f.layer_from);
            w.key("layer_to").value(f.layer_to);
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
}

}  // namespace geoanon::lint
