// GL010 privacy-taint: intra-procedural source/sanitizer/sink dataflow over
// the token stream, plus the `// geoanon:` annotation grammar and the
// function-body discovery shared with the GL030 hot-path pass.
//
// The analysis is deliberately name-based (no types, no overload resolution):
// an annotated symbol name carries its role everywhere it appears. That is
// the right trade for a dependency-free token-level tool — the cost is
// occasional over-tainting, which only matters when it reaches a sink, where
// a reasoned suppression documents the exception. DESIGN.md §13 spells out
// the model.

#include <algorithm>

#include "internal.hpp"

namespace geoanon::lint::internal {

namespace {

bool is_keyword(const std::string& t) {
    for (const char* k : {"if", "for", "while", "switch", "return", "do", "else",
                          "try", "catch", "case", "sizeof", "new", "delete",
                          "throw", "co_return", "co_await"})
        if (t == k) return true;
    return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Annotation parsing
// ---------------------------------------------------------------------------

std::vector<Annotation> parse_annotations(const std::string& path,
                                          const std::vector<SourceLine>& lines,
                                          const std::vector<Token>& toks,
                                          std::vector<Finding>& errors) {
    std::vector<Annotation> anns;
    for (std::size_t ln = 0; ln < lines.size(); ++ln) {
        const std::string c = trim(lines[ln].comment);
        if (c.rfind("geoanon:", 0) != 0) continue;
        std::string rest = trim(c.substr(std::string("geoanon:").size()));
        // "geoanon::" in prose (a namespace mention) is not an annotation.
        if (!rest.empty() && rest[0] == ':') continue;
        const std::size_t line = ln + 1;
        auto bad = [&](const std::string& why) {
            errors.push_back(
                {Rule::kSuppression, path, line, "bad geoanon annotation: " + why});
        };

        Annotation a;
        a.line = line;
        if (rest == "hot") {
            a.role = Role::kHot;
        } else {
            Role role;
            std::string verb;
            if (rest.rfind("source", 0) == 0) { role = Role::kSource; verb = "source"; }
            else if (rest.rfind("sanitizer", 0) == 0) { role = Role::kSanitizer; verb = "sanitizer"; }
            else if (rest.rfind("sink", 0) == 0) { role = Role::kSink; verb = "sink"; }
            else {
                bad("expected source(<tag>), sanitizer(<tag>), sink(<tag>), or hot");
                continue;
            }
            rest = trim(rest.substr(verb.size()));
            if (rest.size() < 2 || rest.front() != '(') {
                bad(verb + " needs a (<tag>)");
                continue;
            }
            const std::size_t close = rest.find(')');
            if (close == std::string::npos) {
                bad("unterminated tag");
                continue;
            }
            a.role = role;
            a.tag = trim(rest.substr(1, close - 1));
            if (a.tag.empty()) {
                bad(verb + " tag must be nonempty");
                continue;
            }
        }

        // Bind to the declaration starting at this line (trailing-comment
        // form) or the nearest following code. The declared name is the
        // identifier before the first '(' outside template brackets
        // (function), or the last identifier before '=' / ';' / '{' (field).
        std::size_t t0 = 0;
        while (t0 < toks.size() && toks[t0].line < line) ++t0;
        int angle = 0;
        std::size_t first_paren = toks.size(), stop = toks.size();
        for (std::size_t i = t0; i < toks.size() && i < t0 + 160; ++i) {
            const std::string& t = toks[i].text;
            if (t == "<") ++angle;
            else if (t == ">") angle = std::max(0, angle - 1);
            else if (angle == 0 && t == "(" && first_paren == toks.size()) first_paren = i;
            else if (angle == 0 && (t == ";" || t == "{" || t == "=")) {
                stop = i;
                break;
            }
        }
        const bool is_fn = first_paren < stop;
        std::size_t name_tok = toks.size();
        if (is_fn) {
            if (first_paren > t0 && toks[first_paren - 1].is_ident &&
                !is_keyword(toks[first_paren - 1].text))
                name_tok = first_paren - 1;
        } else {
            for (std::size_t i = t0; i < stop && i < toks.size(); ++i)
                if (toks[i].is_ident && !is_keyword(toks[i].text)) name_tok = i;
        }
        if (name_tok == toks.size()) {
            bad("annotation does not bind to a declaration");
            continue;
        }
        a.symbol = toks[name_tok].text;
        a.is_function = is_fn;
        anns.push_back(std::move(a));
    }
    return anns;
}

void index_annotations(const std::vector<Annotation>& anns, TaintIndex& idx) {
    for (const Annotation& a : anns) {
        switch (a.role) {
            case Role::kSource:
                (a.is_function ? idx.source_fns : idx.source_fields)
                    .emplace(a.symbol, a);
                break;
            case Role::kSanitizer:
                idx.sanitizers.insert(a.symbol);
                break;
            case Role::kSink:
                (a.is_function ? idx.sink_fns : idx.sink_fields).emplace(a.symbol, a);
                break;
            case Role::kHot:
                break;  // consumed by check_hotpath
        }
    }
}

// ---------------------------------------------------------------------------
// Function discovery
// ---------------------------------------------------------------------------

std::vector<FunctionBody> find_functions(const std::vector<Token>& toks) {
    std::vector<FunctionBody> fns;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].text != "(") continue;
        if (i == 0 || !toks[i - 1].is_ident || is_keyword(toks[i - 1].text)) continue;
        const std::size_t close = match_bracket(toks, i, "(", ")");
        if (close >= toks.size()) continue;
        // After the parameter list: qualifiers, a trailing return type, or a
        // constructor initializer list may precede the body brace.
        std::size_t j = close + 1;
        bool body = false;
        for (std::size_t steps = 0; j < toks.size() && steps < 64; ++steps) {
            const std::string& t = toks[j].text;
            if (t == "{") {
                body = true;
                break;
            }
            if (t == ";") break;  // declaration only
            if (t == "const" || t == "noexcept" || t == "override" ||
                t == "final" || t == "mutable" || t == "-" || t == ">" ||
                t == "&" || t == "*" || t == "," || t == "<" || toks[j].is_ident) {
                ++j;
                continue;
            }
            if (t == ":") {  // ctor initializer list (":" but not "::")
                if (j + 1 < toks.size() && toks[j + 1].text == ":") {
                    j += 2;
                    continue;
                }
                ++j;
                // Walk initializers: ident ( ... ) / ident { ... } , ...
                while (j < toks.size()) {
                    const std::string& u = toks[j].text;
                    if (u == "(") { j = match_bracket(toks, j, "(", ")") + 1; continue; }
                    if (u == "{") {
                        // Brace init of a member vs the body: a body brace
                        // follows ')' or '}' of the previous initializer.
                        if (j > 0 && toks[j - 1].is_ident) {
                            j = match_bracket(toks, j, "{", "}") + 1;
                            continue;
                        }
                        body = true;
                        break;
                    }
                    if (u == ";") break;
                    ++j;
                }
                break;
            }
            break;  // anything else: not a definition
        }
        if (!body || j >= toks.size()) continue;
        const std::size_t body_close = match_bracket(toks, j, "{", "}");
        if (body_close >= toks.size()) continue;
        FunctionBody f;
        f.name = toks[i - 1].text;
        f.name_tok = i - 1;
        f.open = j;
        f.close = body_close;
        f.line = toks[i - 1].line;
        fns.push_back(std::move(f));
        i = j;  // resume inside the body: member functions of classes nest
    }
    return fns;
}

// ---------------------------------------------------------------------------
// Statement segmentation and the taint engine
// ---------------------------------------------------------------------------

namespace {

struct Stmt {
    std::size_t b{0}, e{0};  // token range [b, e)
    bool in_lambda{false};   // any enclosing block is a lambda body
};

/// Split a function body (open/close are the body braces) into linear
/// statements. Block braces (control flow, lambda bodies) are boundaries;
/// initializer braces stay inside their statement. Paren depth is tracked per
/// block so `;` inside `for (...)` headers or argument lists do not split.
std::vector<Stmt> split_statements(const std::vector<Token>& toks,
                                   std::size_t open, std::size_t close) {
    std::vector<Stmt> stmts;
    std::vector<bool> lambda_stack;  // one entry per open block
    int pdepth = 0;
    std::vector<int> saved_pdepth;
    std::size_t b = open + 1;

    auto in_lambda = [&] {
        for (bool l : lambda_stack)
            if (l) return true;
        return false;
    };
    auto flush = [&](std::size_t e) {
        if (e > b) stmts.push_back({b, e, in_lambda()});
        b = e + 1;
    };

    for (std::size_t i = open + 1; i < close; ++i) {
        const std::string& t = toks[i].text;
        if (t == "(" || t == "[") {
            ++pdepth;
        } else if (t == ")" || t == "]") {
            pdepth = std::max(0, pdepth - 1);
        } else if (t == ";" && pdepth == 0) {
            flush(i);
        } else if (t == "{") {
            const std::string prev = i > 0 ? toks[i - 1].text : "";
            const bool prev_ident = i > 0 && toks[i - 1].is_ident;
            const bool block_keyword =
                prev == "else" || prev == "do" || prev == "try";
            if (!block_keyword && pdepth == 0 &&
                (prev_ident || prev == ">" || prev == "," || prev == "(" ||
                 prev == "=")) {
                // Initializer brace: keep it inside the current statement.
                const std::size_t m = match_bracket(toks, i, "{", "}");
                if (m >= close) break;
                i = m;
                continue;
            }
            // Block brace. Lambda if the intro traces back to a ']'.
            bool lambda = prev == "]";
            if (prev == ")") {
                // Find the '(' this ')' closes, scanning backwards.
                int d = 0;
                for (std::size_t k = i - 1; k > open; --k) {
                    if (toks[k].text == ")") ++d;
                    else if (toks[k].text == "(" && --d == 0) {
                        lambda = k > 0 && toks[k - 1].text == "]";
                        break;
                    }
                }
            }
            if (pdepth != 0 && !lambda && !block_keyword && prev != ")") {
                // Brace inside parens that is not a lambda body: an aggregate
                // literal argument. Keep it in-statement.
                const std::size_t m = match_bracket(toks, i, "{", "}");
                if (m >= close) break;
                i = m;
                continue;
            }
            flush(i);
            lambda_stack.push_back(lambda);
            saved_pdepth.push_back(pdepth);
            pdepth = 0;
        } else if (t == "}") {
            flush(i);
            if (!lambda_stack.empty()) {
                lambda_stack.pop_back();
                pdepth = saved_pdepth.back();
                saved_pdepth.pop_back();
            }
        }
    }
    flush(close);
    return stmts;
}

/// What taints a name: where the value originally came from.
struct TaintInfo {
    std::string source;  // "<tag>:<symbol>"
    std::size_t line{0};
};

/// Scan an expression span for taint. Sanitizer call spans are skipped — the
/// sanctioned transform launders its arguments. Returns the first cause.
bool expr_tainted(const std::vector<Token>& toks, std::size_t b, std::size_t e,
                  const TaintIndex& idx,
                  const std::map<std::string, TaintInfo>& vars, TaintInfo& cause) {
    for (std::size_t i = b; i < e; ++i) {
        if (!toks[i].is_ident) continue;
        const std::string& t = toks[i].text;
        const bool called = i + 1 < e && toks[i + 1].text == "(";
        if (idx.sanitizers.count(t) && called) {
            const std::size_t close = match_bracket(toks, i + 1, "(", ")");
            if (close >= e) return false;  // rest of expr is inside the call
            i = close;
            continue;
        }
        if (called) {
            const auto sf = idx.source_fns.find(t);
            if (sf != idx.source_fns.end()) {
                cause = {sf->second.tag + ":" + t, toks[i].line};
                return true;
            }
        }
        const auto fld = idx.source_fields.find(t);
        if (fld != idx.source_fields.end()) {
            cause = {fld->second.tag + ":" + t, toks[i].line};
            return true;
        }
        const auto var = vars.find(t);
        if (var != vars.end()) {
            cause = var->second;
            return true;
        }
    }
    return false;
}

/// Index of the assignment '=' of a statement at paren depth 0, or `e` when
/// the statement has none. Comparison and compound-lookalike operators are
/// excluded (the tokenizer splits '==' into two '=' tokens).
std::size_t find_assign(const std::vector<Token>& toks, std::size_t b,
                        std::size_t e) {
    int depth = 0;
    for (std::size_t i = b; i < e; ++i) {
        const std::string& t = toks[i].text;
        if (t == "(" || t == "[") ++depth;
        else if (t == ")" || t == "]") depth = std::max(0, depth - 1);
        else if (t == "=" && depth == 0) {
            if (i + 1 < e && toks[i + 1].text == "=") { ++i; continue; }  // ==
            if (i > b) {
                const std::string& p = toks[i - 1].text;
                if (p == "=" || p == "<" || p == ">" || p == "!") continue;
            }
            return i;
        }
    }
    return e;
}

const Annotation* sink_field_written(const std::vector<Token>& toks,
                                     std::size_t lhs_b, std::size_t lhs_e,
                                     const TaintIndex& idx) {
    // The written field is the last identifier of the left-hand side.
    for (std::size_t i = lhs_e; i > lhs_b; --i) {
        if (toks[i - 1].is_ident) {
            const auto it = idx.sink_fields.find(toks[i - 1].text);
            return it != idx.sink_fields.end() ? &it->second : nullptr;
        }
    }
    return nullptr;
}

void report_leak(const std::string& path, std::size_t line,
                 const TaintInfo& cause, const std::string& sink_kind,
                 const Annotation& sink, std::vector<Finding>& out) {
    Finding f;
    f.rule = Rule::kPrivacyTaint;
    f.file = path;
    f.line = line;
    f.taint_source = cause.source;
    f.taint_source_line = cause.line;
    f.taint_sink = sink.tag + ":" + sink.symbol;
    f.message = "value derived from source '" + cause.source + "' (line " +
                std::to_string(cause.line) + ") reaches " + sink_kind + " '" +
                sink.symbol + "' (sink tag '" + sink.tag +
                "') without passing a sanitizer";
    out.push_back(std::move(f));
}

/// Run the taint engine over one function body. When `out` is null the call
/// only answers whether a non-lambda `return` expression is tainted (the
/// derived-source probe).
bool analyze_function(const std::string& path, const std::vector<Token>& toks,
                      const FunctionBody& fn, const TaintIndex& idx,
                      std::vector<Finding>* out) {
    const std::vector<Stmt> stmts = split_statements(toks, fn.open, fn.close);
    std::map<std::string, TaintInfo> vars;
    bool returns_tainted = false;

    for (const Stmt& s : stmts) {
        const std::size_t eq = find_assign(toks, s.b, s.e);
        TaintInfo cause;

        if (eq < s.e) {
            const bool rhs_tainted =
                expr_tainted(toks, eq + 1, s.e, idx, vars, cause);
            // Compound assignment (a += b): the old value stays mixed in, so
            // an untainted RHS does not clear the target.
            const bool compound =
                eq > s.b && !toks[eq - 1].is_ident &&
                std::string("+-*/%&|^").find(toks[eq - 1].text) != std::string::npos;
            // Written name: last identifier before the '=' (field of a
            // pointer/member chain, or the declared/assigned variable).
            std::string target;
            for (std::size_t i = eq; i > s.b; --i) {
                if (toks[i - 1].is_ident && !is_keyword(toks[i - 1].text)) {
                    target = toks[i - 1].text;
                    break;
                }
            }
            if (rhs_tainted) {
                if (out) {
                    if (const Annotation* sink =
                            sink_field_written(toks, s.b, eq, idx))
                        report_leak(path, toks[eq].line, cause, "wire field",
                                    *sink, *out);
                }
                if (!target.empty()) vars[target] = cause;
            } else if (!compound && !target.empty()) {
                vars.erase(target);  // overwritten with a clean value
            }
        } else {
            // Declaration with brace initializer: `vector<Id> ring{expr}`.
            std::size_t brace = s.e;
            int depth = 0;
            for (std::size_t i = s.b; i < s.e; ++i) {
                const std::string& t = toks[i].text;
                if (t == "(" || t == "[") ++depth;
                else if (t == ")" || t == "]") depth = std::max(0, depth - 1);
                else if (t == "{" && depth == 0 && i > s.b &&
                         toks[i - 1].is_ident && !is_keyword(toks[i - 1].text)) {
                    brace = i;
                    break;
                }
            }
            if (brace < s.e &&
                expr_tainted(toks, brace, s.e, idx, vars, cause)) {
                vars[toks[brace - 1].text] = cause;
            } else if (toks[s.b].is_ident && toks[s.b].text == "return" &&
                       !s.in_lambda &&
                       expr_tainted(toks, s.b + 1, s.e, idx, vars, cause)) {
                returns_tainted = true;
            } else if (expr_tainted(toks, s.b, s.e, idx, vars, cause)) {
                // Statement-level call with tainted input. Receiver-object
                // tainting: `payload.u64(node_.id())` taints `payload` (an
                // unannotated builder absorbing sensitive bytes), unless the
                // statement is a plain free call.
                if (toks[s.b].is_ident && !is_keyword(toks[s.b].text) &&
                    s.b + 1 < s.e &&
                    (toks[s.b + 1].text == "." || toks[s.b + 1].text == "-")) {
                    vars.emplace(toks[s.b].text, cause);
                }
            }
        }

        if (!out) continue;

        // Sink calls anywhere in the statement: annotated sink functions with
        // tainted arguments, and container writes into sink fields
        // (push_back / emplace_back / insert / assign).
        for (std::size_t i = s.b; i < s.e; ++i) {
            if (!toks[i].is_ident) continue;
            const std::string& t = toks[i].text;
            if (i + 1 >= s.e || toks[i + 1].text != "(") continue;
            const std::size_t close = match_bracket(toks, i + 1, "(", ")");
            if (close > s.e) continue;
            TaintInfo arg_cause;
            const auto sf = idx.sink_fns.find(t);
            if (sf != idx.sink_fns.end() &&
                expr_tainted(toks, i + 2, close, idx, vars, arg_cause)) {
                report_leak(path, toks[i].line, arg_cause, "sink call",
                            sf->second, *out);
            }
            if ((t == "push_back" || t == "emplace_back" || t == "insert" ||
                 t == "assign") &&
                i >= s.b + 2 && toks[i - 1].text == "." &&
                toks[i - 2].is_ident) {
                const auto fld = idx.sink_fields.find(toks[i - 2].text);
                if (fld != idx.sink_fields.end() &&
                    expr_tainted(toks, i + 2, close, idx, vars, arg_cause)) {
                    report_leak(path, toks[i].line, arg_cause, "wire field",
                                fld->second, *out);
                }
            }
            i = close;
        }
    }
    return returns_tainted;
}

}  // namespace

void check_taint(const std::string& path, const std::vector<Token>& toks,
                 const TaintIndex& idx, std::vector<Finding>& out) {
    if (idx.source_fns.empty() && idx.source_fields.empty()) return;
    for (const FunctionBody& fn : find_functions(toks))
        analyze_function(path, toks, fn, idx, &out);
}

bool add_derived_sources(const std::vector<Token>& toks, TaintIndex& idx) {
    if (idx.source_fns.empty() && idx.source_fields.empty()) return false;
    bool grew = false;
    for (const FunctionBody& fn : find_functions(toks)) {
        if (idx.source_fns.count(fn.name) || idx.sanitizers.count(fn.name))
            continue;
        if (analyze_function("", toks, fn, idx, nullptr)) {
            Annotation a;
            a.role = Role::kSource;
            a.tag = "derived";
            a.symbol = fn.name;
            a.is_function = true;
            a.line = fn.line;
            idx.source_fns.emplace(fn.name, std::move(a));
            grew = true;
        }
    }
    return grew;
}

}  // namespace geoanon::lint::internal
