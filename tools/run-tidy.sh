#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy at the repo root) over the library
# sources, using the compile database from a configured build tree.
#
# Usage:
#   tools/run-tidy.sh [build-dir] [-- extra clang-tidy args]
#
# The build dir defaults to ./build and must contain compile_commands.json
# (the top-level CMakeLists sets CMAKE_EXPORT_COMPILE_COMMANDS).
#
# Exits 0 with a notice when clang-tidy is not installed, so the same script
# is safe to call from environments that only ship GCC (the sanitizer CI leg,
# the dev container); the dedicated CI job installs clang-tidy and gets the
# real run. Any warning is an error (.clang-tidy sets WarningsAsErrors: '*').
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="build"
if [[ $# -gt 0 && "$1" != "--" ]]; then
  BUILD_DIR="$1"
  shift
fi
[[ $# -gt 0 && "$1" == "--" ]] && shift

TIDY="${CLANG_TIDY:-}"
if [[ -z "$TIDY" ]]; then
  for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" > /dev/null 2>&1; then
      TIDY="$cand"
      break
    fi
  done
fi
if [[ -z "$TIDY" ]]; then
  echo "run-tidy: clang-tidy not found on PATH; skipping (install clang-tidy or set CLANG_TIDY)." >&2
  exit 0
fi

DB="$BUILD_DIR/compile_commands.json"
if [[ ! -f "$DB" ]]; then
  echo "run-tidy: $DB not found. Configure first: cmake --preset default" >&2
  exit 2
fi

# Library + harness sources; generated and third-party code is excluded by
# construction (everything we own lives under src/, fuzz/, examples/, tools/).
mapfile -t FILES < <(find src fuzz examples tools -name '*.cpp' | sort)

# .clang-tidy already sets WarningsAsErrors: '*'; the explicit flag makes the
# gate independent of config drift so CI fails on any warning regardless.
echo "run-tidy: $TIDY over ${#FILES[@]} files (db: $DB)"
FAILED=0
for f in "${FILES[@]}"; do
  if ! "$TIDY" -p "$BUILD_DIR" --quiet --warnings-as-errors='*' "$@" "$f"; then
    echo "run-tidy: FAILED $f" >&2
    FAILED=1
  fi
done

if [[ "$FAILED" -ne 0 ]]; then
  echo "run-tidy: issues found (see above)." >&2
  exit 1
fi
echo "run-tidy: clean."
