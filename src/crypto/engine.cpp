#include "crypto/engine.hpp"

#include <cassert>
#include <stdexcept>

#include "crypto/sha256.hpp"

namespace geoanon::crypto {

namespace {
constexpr std::uint32_t kTrapdoorMagic = 0x54524150;  // "TRAP"
constexpr std::uint64_t kPseudonymMask = (1ULL << 48) - 1;

util::Bytes uid_prp_key(std::uint64_t seed) {
    util::ByteWriter w;
    w.u64(seed);
    Sha256 h;
    h.update(w.data());
    h.update("geoanon-uid-prp");
    const Sha256::Digest d = h.finish();
    return util::Bytes(d.begin(), d.end());
}
}  // namespace

CryptoEngine::CryptoEngine(std::uint64_t seed)
    : uid_prp_(uid_prp_key(seed), /*block_bytes=*/8) {}

std::uint64_t CryptoEngine::anonymize_uid(std::uint64_t uid) const {
    std::array<std::uint8_t, 8> block;
    for (int i = 0; i < 8; ++i)
        block[i] = static_cast<std::uint8_t>(uid >> (56 - 8 * i));
    const util::Bytes out = uid_prp_.encrypt(block);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | out[static_cast<std::size_t>(i)];
    return v;
}

Pseudonym CryptoEngine::make_pseudonym(NodeIdNum id, std::uint64_t pr) const {
    util::ByteWriter w;
    w.u64(pr);
    w.u64(id);
    Pseudonym n = sha256_u64(w.data()) & kPseudonymMask;
    // 0 is the reserved last-attempt marker; remap deterministically.
    if (n == kLastAttemptPseudonym) n = 1;
    return n;
}

// ---------------------------------------------------------------------------
// RealCryptoEngine
// ---------------------------------------------------------------------------

RealCryptoEngine::RealCryptoEngine(std::uint64_t seed, std::size_t modulus_bits)
    : CryptoEngine(seed), rng_(seed), modulus_bits_(modulus_bits), ca_(rng_, modulus_bits) {}

void RealCryptoEngine::register_node(NodeIdNum id) {
    if (nodes_.contains(id)) return;
    NodeMaterial m;
    m.keys = rsa_generate(rng_, modulus_bits_);
    m.cert = ca_.issue(id, m.keys.pub);
    nodes_.emplace(id, std::move(m));
}

bool RealCryptoEngine::has_node(NodeIdNum id) const { return nodes_.contains(id); }

const Certificate& RealCryptoEngine::certificate_of(NodeIdNum id) const {
    return nodes_.at(id).cert;
}

const RsaKeyPair& RealCryptoEngine::keys_of(NodeIdNum id) const {
    return nodes_.at(id).keys;
}

util::Bytes RealCryptoEngine::make_trapdoor(NodeIdNum dest,
                                            std::span<const std::uint8_t> payload,
                                            util::Rng& rng) {
    const auto& dest_material = nodes_.at(dest);
    util::ByteWriter w;
    w.u32(kTrapdoorMagic);
    w.bytes(payload);
    auto ct = rsa_encrypt(dest_material.keys.pub, rng, w.data());
    if (!ct) throw std::length_error("trapdoor payload exceeds one RSA block");
    return std::move(*ct);
}

std::optional<util::Bytes> RealCryptoEngine::try_open_trapdoor(
    NodeIdNum self, std::span<const std::uint8_t> trapdoor) {
    auto it = nodes_.find(self);
    if (it == nodes_.end()) return std::nullopt;
    auto pt = rsa_decrypt(it->second.keys.priv, trapdoor);
    if (!pt) return std::nullopt;
    util::ByteReader r(*pt);
    auto magic = r.u32();
    if (!magic || *magic != kTrapdoorMagic) return std::nullopt;
    return r.bytes();
}

util::Bytes RealCryptoEngine::encrypt_for(NodeIdNum dest,
                                          std::span<const std::uint8_t> plaintext,
                                          util::Rng& rng) {
    const auto& pub = nodes_.at(dest).keys.pub;
    const std::size_t chunk = pub.modulus_bytes() - 11;
    util::ByteWriter w;
    const std::size_t blocks = (plaintext.size() + chunk - 1) / chunk;
    w.u32(static_cast<std::uint32_t>(blocks));
    w.u32(static_cast<std::uint32_t>(plaintext.size()));
    for (std::size_t i = 0; i < blocks; ++i) {
        const std::size_t off = i * chunk;
        const std::size_t len = std::min(chunk, plaintext.size() - off);
        auto ct = rsa_encrypt(pub, rng, plaintext.subspan(off, len));
        w.bytes(*ct);  // cannot fail: len <= chunk
    }
    return w.take();
}

std::optional<util::Bytes> RealCryptoEngine::try_decrypt(
    NodeIdNum self, std::span<const std::uint8_t> ct) {
    auto it = nodes_.find(self);
    if (it == nodes_.end()) return std::nullopt;
    util::ByteReader r(ct);
    auto blocks = r.u32();
    auto total = r.u32();
    if (!blocks || !total) return std::nullopt;
    util::Bytes out;
    for (std::uint32_t i = 0; i < *blocks; ++i) {
        auto block = r.bytes();
        if (!block) return std::nullopt;
        auto pt = rsa_decrypt(it->second.keys.priv, *block);
        if (!pt) return std::nullopt;
        out.insert(out.end(), pt->begin(), pt->end());
    }
    if (out.size() != *total) return std::nullopt;
    return out;
}

util::Bytes RealCryptoEngine::als_index(NodeIdNum updater, NodeIdNum requester) const {
    util::ByteWriter w;
    w.bytes(nodes_.at(requester).keys.pub.serialize());
    w.u64(updater);
    w.u64(requester);
    const auto digest = Sha256::hash(w.data());
    return util::Bytes(digest.begin(), digest.begin() + kAlsIndexBytes);
}

std::vector<RsaPublicKey> RealCryptoEngine::ring_keys(
    std::span<const NodeIdNum> ring) const {
    std::vector<RsaPublicKey> keys;
    keys.reserve(ring.size());
    for (NodeIdNum id : ring) keys.push_back(nodes_.at(id).keys.pub);
    return keys;
}

util::Bytes RealCryptoEngine::ring_sign_msg(NodeIdNum signer,
                                            std::span<const NodeIdNum> ring,
                                            std::span<const std::uint8_t> msg,
                                            util::Rng& rng) {
    const auto keys = ring_keys(ring);
    std::size_t signer_index = keys.size();
    for (std::size_t i = 0; i < ring.size(); ++i) {
        if (ring[i] == signer) {
            signer_index = i;
            break;
        }
    }
    assert(signer_index < keys.size() && "signer must be a ring member");
    const RingSignature sig =
        ring_sign(msg, keys, signer_index, nodes_.at(signer).keys.priv, rng);
    return sig.serialize();
}

bool RealCryptoEngine::ring_verify_msg(std::span<const NodeIdNum> ring,
                                       std::span<const std::uint8_t> msg,
                                       std::span<const std::uint8_t> sig_bytes) {
    for (NodeIdNum id : ring)
        if (!nodes_.contains(id)) return false;
    util::ByteReader r(sig_bytes);
    auto sig = RingSignature::deserialize(r);
    if (!sig) return false;
    return ring_verify(msg, ring_keys(ring), *sig);
}

std::size_t RealCryptoEngine::ring_signature_bytes(std::size_t members) const {
    // Mirrors RingSignature::serialize() with the common-domain block width.
    const std::size_t block = ((modulus_bits_ + 64 + 15) / 16) * 2;
    return 4 + (4 + block) + 4 + members * (4 + block);
}

std::size_t RealCryptoEngine::certificate_bytes() const {
    // u64 id + length-prefixed key (n: 4+k bytes, e=65537: 4+3 bytes) + sig.
    const std::size_t k = modulus_bits_ / 8;
    return 8 + (4 + (4 + k + 4 + 3)) + (4 + k);
}

// ---------------------------------------------------------------------------
// ModeledCryptoEngine
// ---------------------------------------------------------------------------

ModeledCryptoEngine::ModeledCryptoEngine(std::uint64_t seed, std::size_t modulus_bits)
    : CryptoEngine(seed), seed_(seed), modulus_bits_(modulus_bits) {}

void ModeledCryptoEngine::register_node(NodeIdNum id) { nodes_[id] = true; }

bool ModeledCryptoEngine::has_node(NodeIdNum id) const { return nodes_.contains(id); }

util::Bytes ModeledCryptoEngine::node_secret(NodeIdNum id) const {
    util::ByteWriter w;
    w.u64(seed_);
    w.u64(id);
    const auto digest = Sha256::hash(w.data());
    return util::Bytes(digest.begin(), digest.end());
}

util::Bytes ModeledCryptoEngine::make_trapdoor(NodeIdNum dest,
                                               std::span<const std::uint8_t> payload,
                                               util::Rng& rng) {
    const std::size_t size = trapdoor_bytes();
    // Layout: nonce(8) || E_dest(magic(4) || payload(len-prefixed) || pad).
    util::ByteWriter inner;
    inner.u32(kTrapdoorMagic);
    inner.bytes(payload);
    util::Bytes body = inner.take();
    if (body.size() + 8 > size)
        throw std::length_error("trapdoor payload exceeds modeled trapdoor size");
    body.resize(size - 8, 0);

    const std::uint64_t nonce = rng.next_u64();
    util::ByteWriter key;
    key.bytes(node_secret(dest));
    key.u64(nonce);
    const util::Bytes stream = sha256_keystream(key.data(), body.size());
    for (std::size_t i = 0; i < body.size(); ++i) body[i] ^= stream[i];

    util::ByteWriter out;
    out.u64(nonce);
    out.raw(body);
    return out.take();
}

std::optional<util::Bytes> ModeledCryptoEngine::try_open_trapdoor(
    NodeIdNum self, std::span<const std::uint8_t> trapdoor) {
    if (!nodes_.contains(self) || trapdoor.size() != trapdoor_bytes()) return std::nullopt;
    util::ByteReader r(trapdoor);
    const auto nonce = r.u64();
    if (!nonce) return std::nullopt;
    auto body = r.raw(r.remaining());
    util::ByteWriter key;
    key.bytes(node_secret(self));
    key.u64(*nonce);
    const util::Bytes stream = sha256_keystream(key.data(), body->size());
    for (std::size_t i = 0; i < body->size(); ++i) (*body)[i] ^= stream[i];

    util::ByteReader inner(*body);
    auto magic = inner.u32();
    if (!magic || *magic != kTrapdoorMagic) return std::nullopt;
    return inner.bytes();
}

util::Bytes ModeledCryptoEngine::encrypt_for(NodeIdNum dest,
                                             std::span<const std::uint8_t> plaintext,
                                             util::Rng& rng) {
    // Same nonce+keystream trick, arbitrary length; size matches the real
    // engine's block expansion so byte-overhead measurements agree.
    const std::size_t k = modulus_bits_ / 8;
    const std::size_t chunk = k - 11;
    const std::size_t blocks = (plaintext.size() + chunk - 1) / chunk;
    const std::size_t real_size = 4 + 4 + blocks * (4 + k);

    util::ByteWriter inner;
    inner.u32(kTrapdoorMagic);
    inner.bytes(plaintext);
    util::Bytes body = inner.take();
    body.resize(std::max(body.size(), real_size - 8), 0);

    const std::uint64_t nonce = rng.next_u64();
    util::ByteWriter key;
    key.bytes(node_secret(dest));
    key.u64(nonce);
    const util::Bytes stream = sha256_keystream(key.data(), body.size());
    for (std::size_t i = 0; i < body.size(); ++i) body[i] ^= stream[i];

    util::ByteWriter out;
    out.u64(nonce);
    out.raw(body);
    return out.take();
}

std::optional<util::Bytes> ModeledCryptoEngine::try_decrypt(
    NodeIdNum self, std::span<const std::uint8_t> ct) {
    if (!nodes_.contains(self) || ct.size() < 8) return std::nullopt;
    util::ByteReader r(ct);
    const auto nonce = r.u64();
    auto body = r.raw(r.remaining());
    util::ByteWriter key;
    key.bytes(node_secret(self));
    key.u64(*nonce);
    const util::Bytes stream = sha256_keystream(key.data(), body->size());
    for (std::size_t i = 0; i < body->size(); ++i) (*body)[i] ^= stream[i];

    util::ByteReader inner(*body);
    auto magic = inner.u32();
    if (!magic || *magic != kTrapdoorMagic) return std::nullopt;
    return inner.bytes();
}

util::Bytes ModeledCryptoEngine::als_index(NodeIdNum updater, NodeIdNum requester) const {
    util::ByteWriter w;
    w.u64(seed_);
    w.str("als-index");
    w.u64(updater);
    w.u64(requester);
    const auto digest = Sha256::hash(w.data());
    return util::Bytes(digest.begin(), digest.begin() + kAlsIndexBytes);
}

util::Bytes ModeledCryptoEngine::ring_sign_msg(NodeIdNum signer,
                                               std::span<const NodeIdNum> ring,
                                               std::span<const std::uint8_t> msg,
                                               util::Rng& rng) {
    (void)rng;
    // Token: MAC over (seed, ring, msg) that verifies iff the claimed ring
    // and message match; the signer id is intentionally NOT bound (signer
    // ambiguity). Padded to the real signature's wire size.
    Sha256 h;
    util::ByteWriter w;
    w.u64(seed_);
    for (NodeIdNum id : ring) w.u64(id);
    h.update(w.data());
    h.update(msg);
    const auto digest = h.finish();

    // A real forger would not know `signer`'s key; the modeled engine only
    // issues tokens for registered members, preserving the semantics.
    if (!nodes_.contains(signer)) return {};
    bool member = false;
    for (NodeIdNum id : ring) member = member || id == signer;
    if (!member) return {};

    util::Bytes out(ring_signature_bytes(ring.size()), 0);
    std::copy(digest.begin(), digest.end(), out.begin());
    return out;
}

bool ModeledCryptoEngine::ring_verify_msg(std::span<const NodeIdNum> ring,
                                          std::span<const std::uint8_t> msg,
                                          std::span<const std::uint8_t> sig) {
    if (sig.size() != ring_signature_bytes(ring.size()) || sig.size() < Sha256::kDigestSize)
        return false;
    Sha256 h;
    util::ByteWriter w;
    w.u64(seed_);
    for (NodeIdNum id : ring) w.u64(id);
    h.update(w.data());
    h.update(msg);
    const auto digest = h.finish();
    return util::bytes_equal({sig.data(), Sha256::kDigestSize},
                             {digest.data(), Sha256::kDigestSize});
}

std::size_t ModeledCryptoEngine::ring_signature_bytes(std::size_t members) const {
    const std::size_t block = ((modulus_bits_ + 64 + 15) / 16) * 2;
    return 4 + (4 + block) + 4 + members * (4 + block);
}

std::size_t ModeledCryptoEngine::certificate_bytes() const {
    const std::size_t k = modulus_bits_ / 8;
    return 8 + (4 + (4 + k + 4 + 3)) + (4 + k);
}

}  // namespace geoanon::crypto
