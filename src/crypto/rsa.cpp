#include "crypto/rsa.hpp"

#include "crypto/sha256.hpp"

namespace geoanon::crypto {

util::Bytes RsaPublicKey::serialize() const {
    util::ByteWriter w;
    w.bytes(n.to_bytes_be());
    w.bytes(e.to_bytes_be());
    return w.take();
}

std::optional<RsaPublicKey> RsaPublicKey::deserialize(util::ByteReader& reader) {
    auto nb = reader.bytes();
    auto eb = reader.bytes();
    if (!nb || !eb) return std::nullopt;
    RsaPublicKey pub;
    pub.n = Bignum::from_bytes_be(*nb);
    pub.e = Bignum::from_bytes_be(*eb);
    if (pub.n.is_zero() || pub.e.is_zero()) return std::nullopt;
    return pub;
}

std::uint64_t RsaPublicKey::fingerprint() const {
    const auto ser = serialize();
    return sha256_u64(ser);
}

RsaKeyPair rsa_generate(util::Rng& rng, std::size_t modulus_bits) {
    const std::size_t prime_bits = modulus_bits / 2;
    const Bignum e{65537};
    while (true) {
        Bignum p = Bignum::random_prime(rng, prime_bits);
        Bignum q = Bignum::random_prime(rng, modulus_bits - prime_bits);
        if (p == q) continue;
        const Bignum n = Bignum::mul(p, q);
        if (n.bit_length() != modulus_bits) continue;
        const Bignum phi =
            Bignum::mul(Bignum::sub(p, Bignum{1}), Bignum::sub(q, Bignum{1}));
        auto d = Bignum::modinv(e, phi);
        if (!d) continue;  // e not coprime with phi; regenerate
        RsaKeyPair kp;
        kp.pub = {n, e};
        kp.priv = {n, e, *d, std::move(p), std::move(q)};
        return kp;
    }
}

Bignum rsa_public_op(const RsaPublicKey& pub, const Bignum& x) {
    return Bignum::powmod(x, pub.e, pub.n);
}

Bignum rsa_private_op(const RsaPrivateKey& priv, const Bignum& y) {
    return Bignum::powmod(y, priv.d, priv.n);
}

std::optional<util::Bytes> rsa_encrypt(const RsaPublicKey& pub, util::Rng& rng,
                                       std::span<const std::uint8_t> msg) {
    const std::size_t k = pub.modulus_bytes();
    if (k < 11 || msg.size() > k - 11) return std::nullopt;

    util::Bytes block(k, 0);
    block[0] = 0x00;
    block[1] = 0x02;
    const std::size_t pad_len = k - 3 - msg.size();
    for (std::size_t i = 0; i < pad_len; ++i)
        block[2 + i] = static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    block[2 + pad_len] = 0x00;
    std::copy(msg.begin(), msg.end(), block.begin() + static_cast<std::ptrdiff_t>(3 + pad_len));

    const Bignum m = Bignum::from_bytes_be(block);
    const Bignum c = rsa_public_op(pub, m);
    return c.to_bytes_be(k);
}

std::optional<util::Bytes> rsa_decrypt(const RsaPrivateKey& priv,
                                       std::span<const std::uint8_t> ciphertext) {
    const std::size_t k = (priv.n.bit_length() + 7) / 8;
    if (ciphertext.size() != k) return std::nullopt;
    const Bignum c = Bignum::from_bytes_be(ciphertext);
    if (Bignum::cmp(c, priv.n) >= 0) return std::nullopt;
    const util::Bytes block = rsa_private_op(priv, c).to_bytes_be(k);

    if (block.size() < 11 || block[0] != 0x00 || block[1] != 0x02) return std::nullopt;
    std::size_t sep = 2;
    while (sep < block.size() && block[sep] != 0x00) ++sep;
    if (sep == block.size() || sep < 10) return std::nullopt;  // >= 8 pad bytes
    return util::Bytes(block.begin() + static_cast<std::ptrdiff_t>(sep + 1), block.end());
}

namespace {
util::Bytes signature_block(std::size_t k, std::span<const std::uint8_t> msg) {
    const auto digest = Sha256::hash(msg);
    // Truncate the digest when the modulus is too small to carry all 32
    // bytes plus the minimum padding (only hit by small test keys; the
    // paper's 512-bit keys carry the full digest).
    const std::size_t digest_len = std::min(Sha256::kDigestSize, k - 11);
    util::Bytes block(k, 0xFF);
    block[0] = 0x00;
    block[1] = 0x01;
    block[k - digest_len - 1] = 0x00;
    std::copy(digest.begin(), digest.begin() + static_cast<std::ptrdiff_t>(digest_len),
              block.begin() + static_cast<std::ptrdiff_t>(k - digest_len));
    return block;
}
}  // namespace

util::Bytes rsa_sign(const RsaPrivateKey& priv, std::span<const std::uint8_t> msg) {
    const std::size_t k = (priv.n.bit_length() + 7) / 8;
    const Bignum m = Bignum::from_bytes_be(signature_block(k, msg));
    return rsa_private_op(priv, m).to_bytes_be(k);
}

bool rsa_verify(const RsaPublicKey& pub, std::span<const std::uint8_t> msg,
                std::span<const std::uint8_t> signature) {
    const std::size_t k = pub.modulus_bytes();
    if (signature.size() != k) return false;
    const Bignum s = Bignum::from_bytes_be(signature);
    if (Bignum::cmp(s, pub.n) >= 0) return false;
    const util::Bytes recovered = rsa_public_op(pub, s).to_bytes_be(k);
    const util::Bytes expected = signature_block(k, msg);
    return util::bytes_equal(recovered, expected);
}

}  // namespace geoanon::crypto
