#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "crypto/rsa.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace geoanon::crypto {

/// Rivest–Shamir–Tauman ring signature ("How to leak a secret", ASIACRYPT
/// 2001) over RSA, as required by the authenticated ANT (§3.1.2): the signer
/// is provably one of the ring members but indistinguishable among them,
/// giving the (k+1)-anonymous neighbor table.
///
/// Construction: each member's RSA permutation f_i is extended to a common
/// domain [0, 2^b) (b > every modulus size); the x_i values are chained with
/// a keyed Feistel permutation E_k, where k = SHA-256(ring || message); the
/// ring equation C_{k,v}(y_1..y_r) = v closes iff one x was computed with a
/// member's private key.
struct RingSignature {
    util::Bytes v;                   ///< glue value, block_bytes wide
    std::vector<util::Bytes> xs;     ///< one x_i per ring member, block_bytes wide
    std::size_t block_bytes{0};      ///< common-domain width in bytes

    std::size_t ring_size() const { return xs.size(); }
    /// Wire size of the signature itself (certificates are counted separately
    /// by the protocol layer).
    std::size_t size_bytes() const { return v.size() + xs.size() * block_bytes; }

    util::Bytes serialize() const;
    static std::optional<RingSignature> deserialize(util::ByteReader& reader);
};

/// Common-domain width for a ring: max modulus bits + 64 slack bits, rounded
/// up so the Feistel halves are byte-aligned.
std::size_t ring_block_bytes(const std::vector<RsaPublicKey>& ring);

/// Sign `msg` as ring member `signer_index` (whose public key must equal
/// priv.public_key()). The ring must have at least one member.
RingSignature ring_sign(std::span<const std::uint8_t> msg,
                        const std::vector<RsaPublicKey>& ring, std::size_t signer_index,
                        const RsaPrivateKey& priv, util::Rng& rng);

/// Verify a ring signature against the exact ring used for signing (order
/// matters: the ring serialization keys the combining cipher).
bool ring_verify(std::span<const std::uint8_t> msg, const std::vector<RsaPublicKey>& ring,
                 const RingSignature& sig);

}  // namespace geoanon::crypto
