#pragma once

#include <cstdint>
#include <optional>

#include "crypto/rsa.hpp"
#include "util/bytes.hpp"

namespace geoanon::crypto {

/// Minimal X.509 stand-in: binds a node identity to an RSA public key with a
/// CA signature. The paper assumes every legitimate node holds such a
/// certificate from an external CA (§3.2, §4).
struct Certificate {
    std::uint64_t subject_id{0};
    RsaPublicKey subject_key;
    util::Bytes ca_signature;

    /// The byte string the CA signs (id + key, canonical encoding).
    util::Bytes to_be_signed() const;
    util::Bytes serialize() const;
    static std::optional<Certificate> deserialize(util::ByteReader& reader);
    /// Serialized wire size — what a ring-signed hello pays per attached cert.
    std::size_t size_bytes() const { return serialize().size(); }
};

/// Toy certification authority. Simulation-global; nodes obtain certificates
/// out of band before entering the network, per the paper's key-management
/// assumption.
class CertificateAuthority {
  public:
    /// Deterministic CA key from `rng`; `modulus_bits` also sizes node keys
    /// issued through issue().
    CertificateAuthority(util::Rng& rng, std::size_t modulus_bits);

    const RsaPublicKey& public_key() const { return keys_.pub; }
    std::size_t modulus_bits() const { return modulus_bits_; }

    /// Sign a certificate binding `subject_id` to `subject_key`.
    Certificate issue(std::uint64_t subject_id, const RsaPublicKey& subject_key) const;

    /// Check the CA signature on a certificate.
    bool verify(const Certificate& cert) const;

  private:
    RsaKeyPair keys_;
    std::size_t modulus_bits_;
};

}  // namespace geoanon::crypto
