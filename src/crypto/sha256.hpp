#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/bytes.hpp"

namespace geoanon::crypto {

/// FIPS 180-4 SHA-256. This is the repo's only collision-resistant hash; it
/// backs pseudonym generation (§3.1.1: n = hash(pr, id)), ring-signature key
/// derivation, certificate signing, and the Feistel round function.
class Sha256 {
  public:
    static constexpr std::size_t kDigestSize = 32;
    using Digest = std::array<std::uint8_t, kDigestSize>;

    Sha256();

    /// Absorb more input; may be called any number of times before finish().
    void update(std::span<const std::uint8_t> data);
    void update(std::string_view s);

    /// Finalize and return the digest. The object must not be reused after.
    Digest finish();

    /// One-shot convenience.
    static Digest hash(std::span<const std::uint8_t> data);
    static Digest hash(std::string_view s);

  private:
    void process_block(const std::uint8_t* block);

    std::array<std::uint32_t, 8> state_;
    std::uint64_t total_len_{0};
    std::array<std::uint8_t, 64> buf_{};
    std::size_t buf_len_{0};
};

/// Expandable keyed keystream built from SHA-256 in counter mode:
/// block_i = SHA256(key || i). Used as a PRG/stream-cipher by the modeled
/// crypto engine and by the Feistel round function.
util::Bytes sha256_keystream(std::span<const std::uint8_t> key, std::size_t n_bytes);

/// First 8 bytes of SHA-256 as a big-endian u64 (cheap content fingerprints).
std::uint64_t sha256_u64(std::span<const std::uint8_t> data);

}  // namespace geoanon::crypto
