#pragma once

#include <cstdint>
#include <optional>

#include "crypto/bignum.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace geoanon::crypto {

/// RSA public key (n, e). The paper's evaluation uses 512-bit moduli; the
/// trapdoor in an AGFW header is one RSA block (<= 64 bytes, §5).
struct RsaPublicKey {
    Bignum n;
    Bignum e;

    std::size_t modulus_bits() const { return n.bit_length(); }
    std::size_t modulus_bytes() const { return (modulus_bits() + 7) / 8; }

    /// Stable serialized form (length-prefixed n and e) for certificates.
    util::Bytes serialize() const;
    static std::optional<RsaPublicKey> deserialize(util::ByteReader& reader);

    /// SHA-256-based 64-bit key fingerprint; used as a map key.
    std::uint64_t fingerprint() const;

    bool operator==(const RsaPublicKey& o) const { return n == o.n && e == o.e; }
};

/// RSA private key. Keeps p/q only for debugging/tests; all private
/// operations use d directly (no CRT — speed is irrelevant at 512 bits).
struct RsaPrivateKey {
    Bignum n;
    Bignum e;
    Bignum d;
    Bignum p;
    Bignum q;

    RsaPublicKey public_key() const { return {n, e}; }
};

struct RsaKeyPair {
    RsaPublicKey pub;
    RsaPrivateKey priv;
};

/// Generate an RSA key pair with a modulus of exactly `modulus_bits` bits
/// (e = 65537). Deterministic given the RNG state.
RsaKeyPair rsa_generate(util::Rng& rng, std::size_t modulus_bits);

/// Raw trapdoor permutation x -> x^e mod n. Requires x < n.
Bignum rsa_public_op(const RsaPublicKey& pub, const Bignum& x);
/// Raw inverse permutation y -> y^d mod n. Requires y < n.
Bignum rsa_private_op(const RsaPrivateKey& priv, const Bignum& y);

/// PKCS#1-v1.5-style type-2 encryption: random nonzero padding, one block.
/// Message must be at most modulus_bytes - 11; returns nullopt if too long.
std::optional<util::Bytes> rsa_encrypt(const RsaPublicKey& pub, util::Rng& rng,
                                       std::span<const std::uint8_t> msg);

/// Inverse of rsa_encrypt. Returns nullopt when the padding does not check
/// out — the trapdoor-opening test AGFW relies on (§3.2).
std::optional<util::Bytes> rsa_decrypt(const RsaPrivateKey& priv,
                                       std::span<const std::uint8_t> ciphertext);

/// PKCS#1-v1.5-style type-1 signature over SHA-256 of msg.
util::Bytes rsa_sign(const RsaPrivateKey& priv, std::span<const std::uint8_t> msg);
bool rsa_verify(const RsaPublicKey& pub, std::span<const std::uint8_t> msg,
                std::span<const std::uint8_t> signature);

}  // namespace geoanon::crypto
