#include "crypto/cert.hpp"

namespace geoanon::crypto {

util::Bytes Certificate::to_be_signed() const {
    util::ByteWriter w;
    w.u64(subject_id);
    w.bytes(subject_key.serialize());
    return w.take();
}

util::Bytes Certificate::serialize() const {
    util::ByteWriter w;
    w.u64(subject_id);
    w.bytes(subject_key.serialize());
    w.bytes(ca_signature);
    return w.take();
}

std::optional<Certificate> Certificate::deserialize(util::ByteReader& reader) {
    Certificate cert;
    auto id = reader.u64();
    if (!id) return std::nullopt;
    cert.subject_id = *id;
    auto key_bytes = reader.bytes();
    if (!key_bytes) return std::nullopt;
    util::ByteReader key_reader(*key_bytes);
    auto key = RsaPublicKey::deserialize(key_reader);
    if (!key) return std::nullopt;
    cert.subject_key = std::move(*key);
    auto sig = reader.bytes();
    if (!sig) return std::nullopt;
    cert.ca_signature = std::move(*sig);
    return cert;
}

CertificateAuthority::CertificateAuthority(util::Rng& rng, std::size_t modulus_bits)
    : keys_(rsa_generate(rng, modulus_bits)), modulus_bits_(modulus_bits) {}

Certificate CertificateAuthority::issue(std::uint64_t subject_id,
                                        const RsaPublicKey& subject_key) const {
    Certificate cert;
    cert.subject_id = subject_id;
    cert.subject_key = subject_key;
    cert.ca_signature = rsa_sign(keys_.priv, cert.to_be_signed());
    return cert;
}

bool CertificateAuthority::verify(const Certificate& cert) const {
    return rsa_verify(keys_.pub, cert.to_be_signed(), cert.ca_signature);
}

}  // namespace geoanon::crypto
