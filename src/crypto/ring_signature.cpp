#include "crypto/ring_signature.hpp"

#include <cassert>

#include "crypto/feistel.hpp"
#include "crypto/sha256.hpp"

namespace geoanon::crypto {

namespace {

/// Extended trapdoor permutation g_i over [0, 2^b) (RST section 3.1):
/// split m = q*n + r; apply f(r) = r^e mod n when the whole coset fits below
/// 2^b, otherwise act as the identity on the top sliver.
Bignum apply_g(const RsaPublicKey& pub, const Bignum& m, const Bignum& two_b) {
    auto [q, r] = Bignum::divmod(m, pub.n);
    const Bignum coset_end = Bignum::mul(Bignum::add(q, Bignum{1}), pub.n);
    if (Bignum::cmp(coset_end, two_b) <= 0)
        return Bignum::add(Bignum::mul(q, pub.n), rsa_public_op(pub, r));
    return m;
}

/// Inverse of apply_g using the member's private key.
Bignum invert_g(const RsaPrivateKey& priv, const Bignum& y, const Bignum& two_b) {
    const RsaPublicKey pub = priv.public_key();
    auto [q, r] = Bignum::divmod(y, pub.n);
    const Bignum coset_end = Bignum::mul(Bignum::add(q, Bignum{1}), pub.n);
    if (Bignum::cmp(coset_end, two_b) <= 0)
        return Bignum::add(Bignum::mul(q, pub.n), rsa_private_op(priv, r));
    return y;
}

util::Bytes xor_bytes(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
    assert(a.size() == b.size());
    util::Bytes out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
    return out;
}

/// Cipher key binds the message and the exact ring (order-sensitive).
util::Bytes combining_key(std::span<const std::uint8_t> msg,
                          const std::vector<RsaPublicKey>& ring) {
    Sha256 h;
    h.update(msg);
    for (const auto& pub : ring) {
        const auto ser = pub.serialize();
        h.update(ser);
    }
    const auto digest = h.finish();
    return util::Bytes(digest.begin(), digest.end());
}

}  // namespace

std::size_t ring_block_bytes(const std::vector<RsaPublicKey>& ring) {
    std::size_t max_bits = 0;
    for (const auto& pub : ring) max_bits = std::max(max_bits, pub.modulus_bits());
    const std::size_t b_bits = max_bits + 64;
    // Round up to a multiple of 16 bits so Feistel halves are whole bytes.
    return ((b_bits + 15) / 16) * 2;
}

util::Bytes RingSignature::serialize() const {
    util::ByteWriter w;
    w.u32(static_cast<std::uint32_t>(block_bytes));
    w.bytes(v);
    w.u32(static_cast<std::uint32_t>(xs.size()));
    for (const auto& x : xs) w.bytes(x);
    return w.take();
}

std::optional<RingSignature> RingSignature::deserialize(util::ByteReader& reader) {
    RingSignature sig;
    auto bb = reader.u32();
    if (!bb) return std::nullopt;
    sig.block_bytes = *bb;
    auto v = reader.bytes();
    if (!v) return std::nullopt;
    sig.v = std::move(*v);
    auto count = reader.u32();
    if (!count) return std::nullopt;
    sig.xs.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
        auto x = reader.bytes();
        if (!x) return std::nullopt;
        sig.xs.push_back(std::move(*x));
    }
    return sig;
}

RingSignature ring_sign(std::span<const std::uint8_t> msg,
                        const std::vector<RsaPublicKey>& ring, std::size_t signer_index,
                        const RsaPrivateKey& priv, util::Rng& rng) {
    assert(!ring.empty() && signer_index < ring.size());
    assert(ring[signer_index] == priv.public_key());

    const std::size_t block = ring_block_bytes(ring);
    const Bignum two_b = Bignum::shl(Bignum{1}, block * 8);
    const FeistelPermutation cipher(combining_key(msg, ring), block);
    const std::size_t r = ring.size();

    // Random x_i (and thus y_i = g_i(x_i)) for everyone but the signer.
    std::vector<util::Bytes> xs(r);
    std::vector<util::Bytes> ys(r);
    for (std::size_t i = 0; i < r; ++i) {
        if (i == signer_index) continue;
        const Bignum x = Bignum::random_below(rng, two_b);
        xs[i] = x.to_bytes_be(block);
        ys[i] = apply_g(ring[i], x, two_b).to_bytes_be(block);
    }

    // Random glue value v; walk the ring equation z_i = E_k(z_{i-1} XOR y_i)
    // forward to the signer's slot and backward from z_r = v, then solve for
    // the signer's y.
    const util::Bytes v = Bignum::random_below(rng, two_b).to_bytes_be(block);

    util::Bytes z_before = v;  // z_{signer_index} counting slots 0..r-1 forward
    for (std::size_t i = 0; i < signer_index; ++i)
        z_before = cipher.encrypt(xor_bytes(z_before, ys[i]));

    util::Bytes z_after = v;  // value that must come out after the signer slot
    for (std::size_t i = r; i-- > signer_index + 1;)
        z_after = xor_bytes(cipher.decrypt(z_after), ys[i]);

    // Need E_k(z_before XOR y_s) = z_after  =>  y_s = D_k(z_after) XOR z_before.
    const util::Bytes y_s = xor_bytes(cipher.decrypt(z_after), z_before);
    const Bignum x_s = invert_g(priv, Bignum::from_bytes_be(y_s), two_b);
    xs[signer_index] = x_s.to_bytes_be(block);

    RingSignature sig;
    sig.v = v;
    sig.xs = std::move(xs);
    sig.block_bytes = block;
    return sig;
}

bool ring_verify(std::span<const std::uint8_t> msg, const std::vector<RsaPublicKey>& ring,
                 const RingSignature& sig) {
    if (ring.empty() || sig.xs.size() != ring.size()) return false;
    const std::size_t block = ring_block_bytes(ring);
    if (sig.block_bytes != block || sig.v.size() != block) return false;
    for (const auto& x : sig.xs)
        if (x.size() != block) return false;

    const Bignum two_b = Bignum::shl(Bignum{1}, block * 8);
    const FeistelPermutation cipher(combining_key(msg, ring), block);

    util::Bytes z = sig.v;
    for (std::size_t i = 0; i < ring.size(); ++i) {
        const Bignum y = apply_g(ring[i], Bignum::from_bytes_be(sig.xs[i]), two_b);
        z = cipher.encrypt(xor_bytes(z, y.to_bytes_be(block)));
    }
    return util::bytes_equal(z, sig.v);
}

}  // namespace geoanon::crypto
