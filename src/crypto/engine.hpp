#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>

#include "crypto/cert.hpp"
#include "crypto/feistel.hpp"
#include "crypto/ring_signature.hpp"
#include "crypto/rsa.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace geoanon::crypto {

/// Numeric node identity as used by the crypto layer.
using NodeIdNum = std::uint64_t;

/// 48-bit pseudonym (MAC-address sized, §5). Value 0 is reserved as the
/// "last forwarding attempt" marker (§3.2) and is never generated.
using Pseudonym = std::uint64_t;
inline constexpr Pseudonym kLastAttemptPseudonym = 0;

/// Modeled CPU costs for cryptographic operations, charged as processing
/// delays inside the simulator. Defaults follow §5 of the paper (portable
/// computer, RSA-512: 0.5 ms public-key encryption, 8.5 ms decryption).
struct CryptoCosts {
    util::SimTime pk_encrypt{util::SimTime::micros(500)};
    util::SimTime pk_decrypt{util::SimTime::micros(8500)};
    util::SimTime sym_op{util::SimTime::micros(10)};
    util::SimTime hash_op{util::SimTime::micros(5)};

    /// Ring signing: one private-key op for the signer's slot plus one
    /// public-key op per other member, plus the symmetric chain.
    util::SimTime ring_sign(std::size_t members) const {
        return pk_decrypt + pk_encrypt * static_cast<std::int64_t>(members > 0 ? members - 1 : 0) +
               sym_op * static_cast<std::int64_t>(members + 1);
    }
    /// Ring verification: one public-key op per member plus the chain.
    util::SimTime ring_verify(std::size_t members) const {
        return pk_encrypt * static_cast<std::int64_t>(members) +
               sym_op * static_cast<std::int64_t>(members + 1);
    }
};

/// Cryptographic services consumed by the anonymous routing stack.
///
/// Two implementations:
///  - RealCryptoEngine runs the actual RSA/ring-signature math (used in unit
///    and integration tests — proves the constructions work end to end);
///  - ModeledCryptoEngine fabricates opaque tokens with the right sizes and
///    opening semantics but O(hash) cost (used in the large Figure-1 sweeps,
///    where the paper-accurate *time* cost is charged via costs(), exactly
///    like ns-2 charged a modeled processing delay rather than doing RSA).
class CryptoEngine {
  public:
    virtual ~CryptoEngine() = default;

    /// Create keys/certificates for a node. Must be called before any other
    /// operation naming this id. Idempotent.
    virtual void register_node(NodeIdNum id) = 0;
    virtual bool has_node(NodeIdNum id) const = 0;

    /// §3.1.1: n = hash(pr, id) truncated to 48 bits; never returns the
    /// reserved value 0. Cheap in both engines (it is just a hash).
    // geoanon: sanitizer(pseudonym)
    Pseudonym make_pseudonym(NodeIdNum id, std::uint64_t pr) const;

    /// Keyed 64-bit pseudorandom permutation over data-packet uids. AGFW
    /// builds uids as (source id << 32 | counter), which guarantees global
    /// uniqueness but would leak the data source's identity on every wire
    /// frame (including the ACKs that echo uids back). Passing the raw uid
    /// through a PRP keeps uniqueness exactly (bijective) while making the
    /// layout unrecoverable without the engine key. Deterministic in the
    /// engine seed; consumes no Rng draws.
    // geoanon: sanitizer(uid-prp)
    std::uint64_t anonymize_uid(std::uint64_t uid) const;

    // --- Trapdoors (§3.2) -------------------------------------------------
    /// Build a trapdoor only `dest` can open, carrying `payload`
    /// (source id/location/tag in AGFW). Fixed-size output (trapdoor_bytes()).
    // geoanon: sanitizer(trapdoor)
    virtual util::Bytes make_trapdoor(NodeIdNum dest, std::span<const std::uint8_t> payload,
                                      util::Rng& rng) = 0;
    /// Attempt to open; payload iff `self` is the intended destination.
    virtual std::optional<util::Bytes> try_open_trapdoor(
        NodeIdNum self, std::span<const std::uint8_t> trapdoor) = 0;
    virtual std::size_t trapdoor_bytes() const = 0;

    // --- Public-key encryption for ALS (§3.3) ------------------------------
    /// Multi-block public-key encryption of arbitrary-length plaintext.
    // geoanon: sanitizer(pk-encrypt)
    virtual util::Bytes encrypt_for(NodeIdNum dest, std::span<const std::uint8_t> plaintext,
                                    util::Rng& rng) = 0;
    virtual std::optional<util::Bytes> try_decrypt(NodeIdNum self,
                                                   std::span<const std::uint8_t> ct) = 0;

    // --- ALS row index (§3.3) ----------------------------------------------
    /// Deterministic fixed-size index E_{K_B}(A,B): computable by anyone who
    /// holds B's certificate (which is exactly the paper's stated exposure
    /// risk for the indexed ALS variant), equal at updater and requester.
    // geoanon: sanitizer(als-index)
    virtual util::Bytes als_index(NodeIdNum updater, NodeIdNum requester) const = 0;
    static constexpr std::size_t kAlsIndexBytes = 16;

    // --- Ring signatures (§3.1.2) -------------------------------------------
    /// Sign as `signer` (which must appear in `ring`). Returns the serialized
    /// signature. A sanitizer for the *signer* identity only: the ring member
    /// list itself still rides the wire in cleartext (the paper's §3.1.2
    /// anonymity-set design — see the suppression at the hello builder).
    // geoanon: sanitizer(ring-sig)
    virtual util::Bytes ring_sign_msg(NodeIdNum signer, std::span<const NodeIdNum> ring,
                                      std::span<const std::uint8_t> msg, util::Rng& rng) = 0;
    virtual bool ring_verify_msg(std::span<const NodeIdNum> ring,
                                 std::span<const std::uint8_t> msg,
                                 std::span<const std::uint8_t> sig) = 0;
    /// Wire size of a ring signature for `members` ring members.
    virtual std::size_t ring_signature_bytes(std::size_t members) const = 0;
    /// Wire size of one attached certificate.
    virtual std::size_t certificate_bytes() const = 0;

    const CryptoCosts& costs() const { return costs_; }
    CryptoCosts& costs() { return costs_; }

  protected:
    /// The seed keys the uid permutation; both engines forward their own seed
    /// so a whole simulation shares one uid keyspace.
    explicit CryptoEngine(std::uint64_t seed);

    CryptoCosts costs_;

  private:
    FeistelPermutation uid_prp_;
};

/// Engine doing the real math; key sizes configurable so tests can trade
/// security bits for speed (the paper uses 512).
class RealCryptoEngine final : public CryptoEngine {
  public:
    explicit RealCryptoEngine(std::uint64_t seed, std::size_t modulus_bits = 512);

    void register_node(NodeIdNum id) override;
    bool has_node(NodeIdNum id) const override;

    util::Bytes make_trapdoor(NodeIdNum dest, std::span<const std::uint8_t> payload,
                              util::Rng& rng) override;
    std::optional<util::Bytes> try_open_trapdoor(
        NodeIdNum self, std::span<const std::uint8_t> trapdoor) override;
    std::size_t trapdoor_bytes() const override { return modulus_bits_ / 8; }

    util::Bytes encrypt_for(NodeIdNum dest, std::span<const std::uint8_t> plaintext,
                            util::Rng& rng) override;
    std::optional<util::Bytes> try_decrypt(NodeIdNum self,
                                           std::span<const std::uint8_t> ct) override;

    util::Bytes als_index(NodeIdNum updater, NodeIdNum requester) const override;

    util::Bytes ring_sign_msg(NodeIdNum signer, std::span<const NodeIdNum> ring,
                              std::span<const std::uint8_t> msg, util::Rng& rng) override;
    bool ring_verify_msg(std::span<const NodeIdNum> ring, std::span<const std::uint8_t> msg,
                         std::span<const std::uint8_t> sig) override;
    std::size_t ring_signature_bytes(std::size_t members) const override;
    std::size_t certificate_bytes() const override;

    /// Direct access for tests and the adversary-free examples.
    const CertificateAuthority& ca() const { return ca_; }
    const Certificate& certificate_of(NodeIdNum id) const;
    const RsaKeyPair& keys_of(NodeIdNum id) const;

  private:
    std::vector<RsaPublicKey> ring_keys(std::span<const NodeIdNum> ring) const;

    util::Rng rng_;
    std::size_t modulus_bits_;
    CertificateAuthority ca_;
    struct NodeMaterial {
        RsaKeyPair keys;
        Certificate cert;
    };
    std::unordered_map<NodeIdNum, NodeMaterial> nodes_;
};

/// Cheap engine with identical observable semantics and wire sizes. Tokens
/// are keystream-encrypted blobs; only the registered destination id opens
/// them. Suitable for the big simulation sweeps.
class ModeledCryptoEngine final : public CryptoEngine {
  public:
    explicit ModeledCryptoEngine(std::uint64_t seed, std::size_t modulus_bits = 512);

    void register_node(NodeIdNum id) override;
    bool has_node(NodeIdNum id) const override;

    util::Bytes make_trapdoor(NodeIdNum dest, std::span<const std::uint8_t> payload,
                              util::Rng& rng) override;
    std::optional<util::Bytes> try_open_trapdoor(
        NodeIdNum self, std::span<const std::uint8_t> trapdoor) override;
    std::size_t trapdoor_bytes() const override { return modulus_bits_ / 8; }

    util::Bytes encrypt_for(NodeIdNum dest, std::span<const std::uint8_t> plaintext,
                            util::Rng& rng) override;
    std::optional<util::Bytes> try_decrypt(NodeIdNum self,
                                           std::span<const std::uint8_t> ct) override;

    util::Bytes als_index(NodeIdNum updater, NodeIdNum requester) const override;

    util::Bytes ring_sign_msg(NodeIdNum signer, std::span<const NodeIdNum> ring,
                              std::span<const std::uint8_t> msg, util::Rng& rng) override;
    bool ring_verify_msg(std::span<const NodeIdNum> ring, std::span<const std::uint8_t> msg,
                         std::span<const std::uint8_t> sig) override;
    std::size_t ring_signature_bytes(std::size_t members) const override;
    std::size_t certificate_bytes() const override;

  private:
    util::Bytes node_secret(NodeIdNum id) const;

    std::uint64_t seed_;
    std::size_t modulus_bits_;
    std::unordered_map<NodeIdNum, bool> nodes_;
};

}  // namespace geoanon::crypto
