#include "crypto/bignum.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace geoanon::crypto {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}

void Bignum::trim() {
    while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

Bignum::Bignum(std::uint64_t v) {
    if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
    if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

Bignum Bignum::from_bytes_be(std::span<const std::uint8_t> bytes) {
    Bignum out;
    out.limbs_.assign((bytes.size() + 3) / 4, 0);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        // byte i (big-endian) contributes to bit position 8*(size-1-i)
        const std::size_t byte_from_lsb = bytes.size() - 1 - i;
        out.limbs_[byte_from_lsb / 4] |=
            static_cast<std::uint32_t>(bytes[i]) << (8 * (byte_from_lsb % 4));
    }
    out.trim();
    return out;
}

util::Bytes Bignum::to_bytes_be(std::size_t width) const {
    util::Bytes out(width, 0);
    for (std::size_t i = 0; i < width; ++i) {
        const std::size_t byte_from_lsb = width - 1 - i;
        const std::size_t limb = byte_from_lsb / 4;
        if (limb < limbs_.size())
            out[i] = static_cast<std::uint8_t>(limbs_[limb] >> (8 * (byte_from_lsb % 4)));
    }
    return out;
}

std::optional<Bignum> Bignum::from_hex(std::string_view hex) {
    std::string padded(hex);
    if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
    auto bytes = util::from_hex(padded);
    if (!bytes) return std::nullopt;
    return from_bytes_be(*bytes);
}

std::string Bignum::to_hex() const {
    if (is_zero()) return "0";
    std::string s = util::to_hex(to_bytes_be());
    const std::size_t nz = s.find_first_not_of('0');
    return nz == std::string::npos ? "0" : s.substr(nz);
}

std::size_t Bignum::bit_length() const {
    if (limbs_.empty()) return 0;
    return (limbs_.size() - 1) * 32 +
           (32 - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

bool Bignum::bit(std::size_t i) const {
    const std::size_t limb = i / 32;
    if (limb >= limbs_.size()) return false;
    return (limbs_[limb] >> (i % 32)) & 1u;
}

std::uint64_t Bignum::low_u64() const {
    std::uint64_t v = limbs_.empty() ? 0 : limbs_[0];
    if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
    return v;
}

int Bignum::cmp(const Bignum& a, const Bignum& b) {
    if (a.limbs_.size() != b.limbs_.size())
        return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
        if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
    }
    return 0;
}

Bignum Bignum::add(const Bignum& a, const Bignum& b) {
    Bignum out;
    const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
    out.limbs_.resize(n + 1, 0);
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t s = carry;
        if (i < a.limbs_.size()) s += a.limbs_[i];
        if (i < b.limbs_.size()) s += b.limbs_[i];
        out.limbs_[i] = static_cast<std::uint32_t>(s);
        carry = s >> 32;
    }
    out.limbs_[n] = static_cast<std::uint32_t>(carry);
    out.trim();
    return out;
}

Bignum Bignum::sub(const Bignum& a, const Bignum& b) {
    assert(cmp(a, b) >= 0 && "Bignum::sub requires a >= b");
    Bignum out;
    out.limbs_.resize(a.limbs_.size(), 0);
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
        std::int64_t d = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
        if (i < b.limbs_.size()) d -= b.limbs_[i];
        if (d < 0) {
            d += static_cast<std::int64_t>(kBase);
            borrow = 1;
        } else {
            borrow = 0;
        }
        out.limbs_[i] = static_cast<std::uint32_t>(d);
    }
    out.trim();
    return out;
}

Bignum Bignum::mul(const Bignum& a, const Bignum& b) {
    if (a.is_zero() || b.is_zero()) return Bignum{};
    Bignum out;
    out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
    for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
        std::uint64_t carry = 0;
        const std::uint64_t ai = a.limbs_[i];
        for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
            const std::uint64_t cur =
                static_cast<std::uint64_t>(out.limbs_[i + j]) + ai * b.limbs_[j] + carry;
            out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
        }
        std::size_t k = i + b.limbs_.size();
        while (carry != 0) {
            const std::uint64_t cur = static_cast<std::uint64_t>(out.limbs_[k]) + carry;
            out.limbs_[k] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
            ++k;
        }
    }
    out.trim();
    return out;
}

Bignum Bignum::shl(const Bignum& a, std::size_t bits) {
    if (a.is_zero() || bits == 0) {
        Bignum out = a;
        return out;
    }
    const std::size_t limb_shift = bits / 32;
    const std::size_t bit_shift = bits % 32;
    Bignum out;
    out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
    for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
        const std::uint64_t v = static_cast<std::uint64_t>(a.limbs_[i]) << bit_shift;
        out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
        out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
    }
    out.trim();
    return out;
}

Bignum Bignum::shr(const Bignum& a, std::size_t bits) {
    const std::size_t limb_shift = bits / 32;
    const std::size_t bit_shift = bits % 32;
    if (limb_shift >= a.limbs_.size()) return Bignum{};
    Bignum out;
    out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
    for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
        std::uint64_t v = static_cast<std::uint64_t>(a.limbs_[i + limb_shift]) >> bit_shift;
        if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size())
            v |= static_cast<std::uint64_t>(a.limbs_[i + limb_shift + 1]) << (32 - bit_shift);
        out.limbs_[i] = static_cast<std::uint32_t>(v);
    }
    out.trim();
    return out;
}

std::pair<Bignum, Bignum> Bignum::divmod(const Bignum& num, const Bignum& den) {
    assert(!den.is_zero() && "division by zero");
    if (cmp(num, den) < 0) return {Bignum{}, num};

    // Single-limb divisor: simple schoolbook short division.
    if (den.limbs_.size() == 1) {
        const std::uint64_t d = den.limbs_[0];
        Bignum q;
        q.limbs_.assign(num.limbs_.size(), 0);
        std::uint64_t rem = 0;
        for (std::size_t i = num.limbs_.size(); i-- > 0;) {
            const std::uint64_t cur = (rem << 32) | num.limbs_[i];
            q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
            rem = cur % d;
        }
        q.trim();
        return {std::move(q), Bignum{rem}};
    }

    // Knuth TAOCP Vol.2 Algorithm D (base 2^32).
    const int shift = std::countl_zero(den.limbs_.back());
    const Bignum u = shl(num, static_cast<std::size_t>(shift));
    const Bignum v = shl(den, static_cast<std::size_t>(shift));
    const std::size_t n = v.limbs_.size();
    std::vector<std::uint32_t> un = u.limbs_;
    un.push_back(0);  // classic Algorithm D high guard digit
    const std::size_t m = un.size() - n;  // quotient has up to m limbs

    Bignum q;
    q.limbs_.assign(m, 0);
    const std::uint64_t v_hi = v.limbs_[n - 1];
    const std::uint64_t v_lo = v.limbs_[n - 2];

    for (std::size_t j = m; j-- > 0;) {
        const std::uint64_t numerator =
            (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
        std::uint64_t qhat = numerator / v_hi;
        std::uint64_t rhat = numerator % v_hi;
        while (qhat >= kBase || qhat * v_lo > ((rhat << 32) | un[j + n - 2])) {
            --qhat;
            rhat += v_hi;
            if (rhat >= kBase) break;
        }

        // Multiply-subtract qhat * v from un[j .. j+n].
        std::int64_t borrow = 0;
        std::uint64_t carry = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t p = qhat * v.limbs_[i] + carry;
            carry = p >> 32;
            std::int64_t t = static_cast<std::int64_t>(un[i + j]) -
                             static_cast<std::int64_t>(p & 0xFFFFFFFFULL) - borrow;
            if (t < 0) {
                t += static_cast<std::int64_t>(kBase);
                borrow = 1;
            } else {
                borrow = 0;
            }
            un[i + j] = static_cast<std::uint32_t>(t);
        }
        std::int64_t t = static_cast<std::int64_t>(un[j + n]) -
                         static_cast<std::int64_t>(carry) - borrow;
        if (t < 0) {
            // qhat was one too large: add back.
            t += static_cast<std::int64_t>(kBase);
            --qhat;
            std::uint64_t c = 0;
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint64_t s =
                    static_cast<std::uint64_t>(un[i + j]) + v.limbs_[i] + c;
                un[i + j] = static_cast<std::uint32_t>(s);
                c = s >> 32;
            }
            t += static_cast<std::int64_t>(c);
            t &= static_cast<std::int64_t>(0xFFFFFFFFLL);
        }
        un[j + n] = static_cast<std::uint32_t>(t);
        q.limbs_[j] = static_cast<std::uint32_t>(qhat);
    }
    q.trim();

    Bignum r;
    r.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
    r.trim();
    r = shr(r, static_cast<std::size_t>(shift));
    return {std::move(q), std::move(r)};
}

Bignum Bignum::mulmod(const Bignum& a, const Bignum& b, const Bignum& m) {
    return mod(mul(a, b), m);
}

Bignum Bignum::powmod(const Bignum& base, const Bignum& exp, const Bignum& m) {
    assert(!m.is_zero());
    if (m == Bignum{1}) return Bignum{};
    Bignum result{1};
    Bignum b = mod(base, m);
    const std::size_t bits = exp.bit_length();
    for (std::size_t i = bits; i-- > 0;) {
        result = mulmod(result, result, m);
        if (exp.bit(i)) result = mulmod(result, b, m);
    }
    return result;
}

Bignum Bignum::gcd(Bignum a, Bignum b) {
    while (!b.is_zero()) {
        Bignum r = mod(a, b);
        a = std::move(b);
        b = std::move(r);
    }
    return a;
}

std::optional<Bignum> Bignum::modinv(const Bignum& a, const Bignum& m) {
    // Extended Euclid with coefficients tracked as (value, negative?) pairs
    // so we can stay in unsigned arithmetic.
    Bignum old_r = mod(a, m), r = m;
    Bignum old_s{1}, s{};
    bool old_s_neg = false, s_neg = false;

    while (!r.is_zero()) {
        auto [q, rem] = divmod(old_r, r);
        old_r = std::move(r);
        r = std::move(rem);

        // new_s = old_s - q * s  (signed)
        Bignum qs = mul(q, s);
        Bignum new_s;
        bool new_s_neg;
        if (old_s_neg == s_neg) {
            if (cmp(old_s, qs) >= 0) {
                new_s = sub(old_s, qs);
                new_s_neg = old_s_neg;
            } else {
                new_s = sub(qs, old_s);
                new_s_neg = !old_s_neg;
            }
        } else {
            new_s = add(old_s, qs);
            new_s_neg = old_s_neg;
        }
        old_s = std::move(s);
        old_s_neg = s_neg;
        s = std::move(new_s);
        s_neg = new_s_neg;
    }

    if (!(old_r == Bignum{1})) return std::nullopt;  // not coprime
    if (old_s_neg) return sub(m, mod(old_s, m));
    return mod(old_s, m);
}

Bignum Bignum::random_below(util::Rng& rng, const Bignum& bound) {
    assert(!bound.is_zero());
    const std::size_t bits = bound.bit_length();
    while (true) {
        Bignum candidate;
        candidate.limbs_.assign((bits + 31) / 32, 0);
        for (auto& limb : candidate.limbs_)
            limb = static_cast<std::uint32_t>(rng.next_u64());
        // Mask excess bits in the top limb.
        const std::size_t excess = candidate.limbs_.size() * 32 - bits;
        if (excess > 0) candidate.limbs_.back() >>= excess;
        candidate.trim();
        if (cmp(candidate, bound) < 0) return candidate;
    }
}

Bignum Bignum::random_bits(util::Rng& rng, std::size_t bits) {
    assert(bits > 0);
    Bignum out;
    out.limbs_.assign((bits + 31) / 32, 0);
    for (auto& limb : out.limbs_) limb = static_cast<std::uint32_t>(rng.next_u64());
    const std::size_t excess = out.limbs_.size() * 32 - bits;
    if (excess > 0) out.limbs_.back() >>= excess;
    out.limbs_.back() |= 1u << ((bits - 1) % 32);  // force top bit
    out.trim();
    return out;
}

bool Bignum::is_probable_prime(const Bignum& n, util::Rng& rng, int rounds) {
    if (n.bit_length() <= 1) return false;  // 0, 1
    static const std::uint32_t kSmallPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19, 23, 29,
                                                 31, 37, 41, 43, 47, 53, 59, 61, 67, 71};
    for (std::uint32_t p : kSmallPrimes) {
        const Bignum bp{p};
        if (n == bp) return true;
        if (mod(n, bp).is_zero()) return false;
    }

    // n - 1 = d * 2^s
    const Bignum n_minus_1 = sub(n, Bignum{1});
    Bignum d = n_minus_1;
    std::size_t s = 0;
    while (!d.is_odd()) {
        d = shr(d, 1);
        ++s;
    }

    auto witness = [&](const Bignum& a) {
        Bignum x = powmod(a, d, n);
        if (x == Bignum{1} || x == n_minus_1) return false;  // not a witness
        for (std::size_t i = 1; i < s; ++i) {
            x = mulmod(x, x, n);
            if (x == n_minus_1) return false;
        }
        return true;  // composite witness found
    };

    if (witness(Bignum{2})) return false;
    const Bignum upper = sub(n, Bignum{3});  // bases in [2, n-2]
    for (int i = 0; i < rounds; ++i) {
        const Bignum a = add(random_below(rng, upper), Bignum{2});
        if (witness(a)) return false;
    }
    return true;
}

Bignum Bignum::random_prime(util::Rng& rng, std::size_t bits) {
    assert(bits >= 8);
    while (true) {
        Bignum candidate = random_bits(rng, bits);
        // Force second-highest bit (product of two such primes has 2*bits
        // bits) and make odd.
        candidate = add(candidate, Bignum{candidate.is_odd() ? 0u : 1u});
        if (!candidate.bit(bits - 2)) candidate = add(candidate, shl(Bignum{1}, bits - 2));
        if (!candidate.bit(bits - 1)) candidate = add(candidate, shl(Bignum{1}, bits - 1));
        if (candidate.bit_length() != bits) continue;  // carry overflowed; retry
        if (is_probable_prime(candidate, rng, 16)) return candidate;
    }
}

}  // namespace geoanon::crypto
