#include "crypto/feistel.hpp"

#include <cassert>

#include "crypto/sha256.hpp"

namespace geoanon::crypto {

FeistelPermutation::FeistelPermutation(util::Bytes key, std::size_t block_bytes)
    : key_(std::move(key)), block_bytes_(block_bytes) {
    assert(block_bytes_ >= 2 && block_bytes_ % 2 == 0);
}

util::Bytes FeistelPermutation::round_function(int round,
                                               std::span<const std::uint8_t> half) const {
    // F(round, R) = first half_size bytes of SHA-256-CTR(key || round || R).
    util::ByteWriter w;
    w.bytes(key_);
    w.u32(static_cast<std::uint32_t>(round));
    w.bytes(half);
    const util::Bytes seed = w.take();
    return sha256_keystream(seed, half.size());
}

util::Bytes FeistelPermutation::encrypt(std::span<const std::uint8_t> block) const {
    assert(block.size() == block_bytes_);
    const std::size_t h = block_bytes_ / 2;
    util::Bytes left(block.begin(), block.begin() + static_cast<std::ptrdiff_t>(h));
    util::Bytes right(block.begin() + static_cast<std::ptrdiff_t>(h), block.end());
    for (int round = 0; round < kRounds; ++round) {
        const util::Bytes f = round_function(round, right);
        for (std::size_t i = 0; i < h; ++i) left[i] ^= f[i];
        std::swap(left, right);
    }
    // Undo the final swap so decrypt can run rounds in reverse symmetrically.
    std::swap(left, right);
    util::Bytes out = std::move(left);
    out.insert(out.end(), right.begin(), right.end());
    return out;
}

util::Bytes FeistelPermutation::decrypt(std::span<const std::uint8_t> block) const {
    assert(block.size() == block_bytes_);
    const std::size_t h = block_bytes_ / 2;
    util::Bytes left(block.begin(), block.begin() + static_cast<std::ptrdiff_t>(h));
    util::Bytes right(block.begin() + static_cast<std::ptrdiff_t>(h), block.end());
    for (int round = kRounds - 1; round >= 0; --round) {
        const util::Bytes f = round_function(round, right);
        for (std::size_t i = 0; i < h; ++i) left[i] ^= f[i];
        std::swap(left, right);
    }
    std::swap(left, right);
    util::Bytes out = std::move(left);
    out.insert(out.end(), right.begin(), right.end());
    return out;
}

}  // namespace geoanon::crypto
