#pragma once

#include <cstddef>

#include "util/bytes.hpp"

namespace geoanon::crypto {

/// Keyed pseudorandom permutation over fixed-size byte blocks, built as an
/// 8-round balanced Feistel network with SHA-256 as the round function.
///
/// This is the symmetric cipher E_k required by the Rivest–Shamir–Tauman
/// ring-signature combining function, which needs an *invertible* keyed
/// primitive over the common domain (a hash alone would not do).
class FeistelPermutation {
  public:
    static constexpr int kRounds = 8;

    /// `block_bytes` must be even and >= 2 (balanced halves).
    FeistelPermutation(util::Bytes key, std::size_t block_bytes);

    std::size_t block_bytes() const { return block_bytes_; }

    /// Permute a block forward. `block.size()` must equal block_bytes().
    util::Bytes encrypt(std::span<const std::uint8_t> block) const;
    /// Inverse permutation.
    util::Bytes decrypt(std::span<const std::uint8_t> block) const;

  private:
    util::Bytes round_function(int round, std::span<const std::uint8_t> half) const;

    util::Bytes key_;
    std::size_t block_bytes_;
};

}  // namespace geoanon::crypto
