#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace geoanon::crypto {

/// Arbitrary-precision unsigned integer with 32-bit little-endian limbs.
///
/// Implements exactly what RSA-512 and the RST ring signature need: compare,
/// add/sub, schoolbook multiply, Knuth Algorithm D division, square-and-
/// multiply modexp, extended-Euclid modular inverse, and Miller–Rabin.
/// Values are always normalized (no leading zero limbs; zero == empty).
class Bignum {
  public:
    Bignum() = default;
    explicit Bignum(std::uint64_t v);

    /// Big-endian byte import/export (the wire format used by RSA blocks).
    static Bignum from_bytes_be(std::span<const std::uint8_t> bytes);
    /// Export as exactly `width` big-endian bytes (zero-padded). If the value
    /// needs more than `width` bytes the result is truncated modulo 2^(8w),
    /// so callers must size `width` from bit_length().
    util::Bytes to_bytes_be(std::size_t width) const;
    util::Bytes to_bytes_be() const { return to_bytes_be(byte_length()); }

    static std::optional<Bignum> from_hex(std::string_view hex);
    std::string to_hex() const;

    bool is_zero() const { return limbs_.empty(); }
    bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
    /// Number of significant bits; 0 for zero.
    std::size_t bit_length() const;
    std::size_t byte_length() const { return (bit_length() + 7) / 8; }
    bool bit(std::size_t i) const;
    /// Low 64 bits of the value.
    std::uint64_t low_u64() const;

    // Comparison: -1, 0, +1.
    static int cmp(const Bignum& a, const Bignum& b);
    bool operator==(const Bignum& o) const { return cmp(*this, o) == 0; }
    bool operator<(const Bignum& o) const { return cmp(*this, o) < 0; }
    bool operator<=(const Bignum& o) const { return cmp(*this, o) <= 0; }
    bool operator>(const Bignum& o) const { return cmp(*this, o) > 0; }
    bool operator>=(const Bignum& o) const { return cmp(*this, o) >= 0; }

    static Bignum add(const Bignum& a, const Bignum& b);
    /// Requires a >= b.
    static Bignum sub(const Bignum& a, const Bignum& b);
    static Bignum mul(const Bignum& a, const Bignum& b);
    static Bignum shl(const Bignum& a, std::size_t bits);
    static Bignum shr(const Bignum& a, std::size_t bits);

    /// Knuth Algorithm D. Divisor must be nonzero. Returns {quotient, remainder}.
    static std::pair<Bignum, Bignum> divmod(const Bignum& num, const Bignum& den);
    static Bignum mod(const Bignum& a, const Bignum& m) { return divmod(a, m).second; }

    /// (a * b) mod m.
    static Bignum mulmod(const Bignum& a, const Bignum& b, const Bignum& m);
    /// base^exp mod m via left-to-right square-and-multiply. m must be > 0.
    static Bignum powmod(const Bignum& base, const Bignum& exp, const Bignum& m);

    /// gcd(a, b).
    static Bignum gcd(Bignum a, Bignum b);
    /// Modular inverse of a mod m (m > 1); nullopt when gcd(a, m) != 1.
    static std::optional<Bignum> modinv(const Bignum& a, const Bignum& m);

    /// Uniform value in [0, bound) via rejection sampling. bound must be > 0.
    static Bignum random_below(util::Rng& rng, const Bignum& bound);
    /// Uniform value with exactly `bits` bits (top bit forced to 1).
    static Bignum random_bits(util::Rng& rng, std::size_t bits);

    /// Miller–Rabin with `rounds` random bases (plus a base-2 round).
    static bool is_probable_prime(const Bignum& n, util::Rng& rng, int rounds = 32);
    /// Random prime with exactly `bits` bits (top two bits set so products of
    /// two such primes have exactly 2*bits bits, as RSA keygen wants).
    static Bignum random_prime(util::Rng& rng, std::size_t bits);

  private:
    void trim();
    std::vector<std::uint32_t> limbs_;  // little-endian base 2^32
};

}  // namespace geoanon::crypto
