#include "adversary/eavesdropper.hpp"

#include <algorithm>
#include <vector>

#include "util/bytes.hpp"

namespace geoanon::adversary {

Eavesdropper::Eavesdropper(ObservationFeed& feed, std::size_t node_count, Params params)
    : feed_(feed), node_count_(node_count), params_(params) {
    feed_.subscribe([this](const phy::Frame& f, const util::Vec2& /*pos*/, double t) {
        observe(f, t);
    });
}

void Eavesdropper::identity_sighting(net::NodeId victim, double t_seconds) {
    ++identity_sightings_;
    windows_[victim].insert(static_cast<std::int64_t>(t_seconds / params_.window_seconds));
}

void Eavesdropper::observe(const phy::Frame& frame, double t) {
    ++frames_observed_;
    const bool has_real_src = frame.src != net::kBroadcastAddr;

    // A frame with a persistent source MAC localizes its owner outright.
    if (has_real_src) identity_sighting(feed_.mac_owner(frame.src), t);

    if (frame.type != phy::Frame::Type::kData || !frame.payload) return;
    const net::Packet& pkt = *frame.payload;

    switch (pkt.type) {
        case net::PacketType::kGpsrHello:
            identity_sighting(pkt.src_id, t);
            break;
        case net::PacketType::kGpsrData:
            // Cleartext (src, dst) identities ride every GPSR data packet;
            // the sender is at the transmit position, linkable immediately.
            identity_sighting(pkt.src_id, t);
            break;
        case net::PacketType::kAgfwHello: {
            // Pseudonym + location: unlinkable unless this pseudonym was
            // previously bound to a MAC via the §3.2 correlation attack.
            auto it = pseudonym_to_mac_.find(pkt.hello_pseudonym);
            if (it != pseudonym_to_mac_.end()) {
                identity_sighting(feed_.mac_owner(it->second), t);
            } else {
                ++pseudonym_sightings_;
            }
            break;
        }
        case net::PacketType::kAgfwData: {
            // §3.2 attack: this uid was previously addressed to pseudonym n;
            // whoever relays it now owned n. Works only when the relay leaks
            // a real MAC source address.
            auto prev = uid_to_pseudonym_.find(pkt.uid);
            if (prev != uid_to_pseudonym_.end() && has_real_src &&
                !pseudonym_to_mac_.contains(prev->second)) {
                pseudonym_to_mac_[prev->second] = frame.src;
                ++mac_pseudonym_links_;
            }
            if (pkt.next_hop_pseudonym != 0)
                uid_to_pseudonym_[pkt.uid] = pkt.next_hop_pseudonym;
            ++pseudonym_sightings_;
            break;
        }
        case net::PacketType::kLocUpdate:
        case net::PacketType::kLocRequest:
        case net::PacketType::kLocReply:
            // Plain DLM exposes identity+location pairs; ALS does not.
            // Updates/replies carry (subject id, subject location) together;
            // plain requests tie the requester id to the transmit position.
            // A bare subject id in a request (the heterogeneous fallback)
            // reveals interest in a node but attaches no location.
            if (pkt.type != net::PacketType::kLocRequest &&
                pkt.ls_subject != net::kInvalidNode)
                identity_sighting(pkt.ls_subject, t);
            if (pkt.src_id != net::kInvalidNode) identity_sighting(pkt.src_id, t);
            // §3.3 dictionary attack on the fixed indexed-ALS row index.
            if (!pkt.ls_index.empty() && !index_dictionary_.empty()) {
                auto hit = index_dictionary_.find(util::to_hex(pkt.ls_index));
                if (hit != index_dictionary_.end()) {
                    ++index_linkages_;
                    relationships_.insert(hit->second);
                }
            }
            break;
        default:
            break;
    }
}

Eavesdropper::Report Eavesdropper::report(double total_seconds) const {
    Report r;
    r.frames_observed = frames_observed_;
    r.identity_sightings = identity_sightings_;
    r.pseudonym_sightings = pseudonym_sightings_;
    r.mac_pseudonym_links = mac_pseudonym_links_;
    r.nodes_ever_localized = windows_.size();
    r.index_linkages = index_linkages_;
    r.relationship_pairs_learned = relationships_.size();

    const double total_windows =
        std::max(1.0, total_seconds / params_.window_seconds);
    // Summation order must not follow hash layout: float addition is not
    // associative, and mean_tracking_coverage lands in result JSON.
    std::vector<std::size_t> window_counts;
    window_counts.reserve(windows_.size());
    // geoanon-lint: allow(unordered-iter) -- order erased by the sort below
    for (const auto& [node, wins] : windows_)
        window_counts.push_back(wins.size());
    std::sort(window_counts.begin(), window_counts.end());
    double coverage_sum = 0.0;
    for (const std::size_t wins : window_counts)
        coverage_sum += static_cast<double>(wins) / total_windows;
    r.mean_tracking_coverage =
        node_count_ > 0 ? coverage_sum / static_cast<double>(node_count_) : 0.0;
    return r;
}

}  // namespace geoanon::adversary
