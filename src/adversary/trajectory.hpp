#pragma once

#include <cstdint>
#include <vector>

#include "adversary/linker.hpp"
#include "adversary/observation.hpp"

namespace geoanon::adversary {

/// Offline attack configuration: linker strength plus scoring resolution.
struct AttackParams {
    LinkerParams linker{};
    /// Bucket size of the anonymity-set-over-time series.
    double window_s{30.0};
};

/// The offline attack's output, scored against ground truth. Every field is
/// a pure function of the observation log, so identical runs produce
/// byte-identical reports (and JSON) regardless of --jobs or host.
struct AttackReport {
    std::uint64_t hello_observations{0};
    std::uint64_t tracklets{0};
    std::uint64_t chains{0};
    std::uint64_t candidate_pairs{0};
    std::uint64_t links_made{0};
    std::uint64_t links_correct{0};

    /// Fraction of committed links that join two tracklets of one node.
    double link_precision{0.0};
    /// Fraction of ground-truth adjacent same-node tracklet pairs that ended
    /// up in the same chain. Silence gaps the linker refuses to bridge land
    /// in the denominator — that loss IS the countermeasure working.
    double link_recall{0.0};
    /// Mean over nodes of the best single chain's coverage: the time span of
    /// the node's own sightings inside one chain whose majority owner is the
    /// node, divided by the run length. "How continuously can the attacker
    /// follow someone under one reconstructed identity."
    double tracking_success_rate{0.0};
    /// Anonymity set of a pseudonym change: gate-passing predecessor count
    /// at each committed link (1 = the change was unambiguous).
    double mean_anonymity_set{0.0};
    double max_anonymity_set{0.0};
    /// Mean distance from a reconstructed chain's sightings to the majority
    /// owner's true (interpolated) track — contamination from wrong links.
    double mean_path_error_m{0.0};
    /// Per-window mean anonymity set (window_s buckets over the run; 0 =
    /// no pseudonym change was linked in that window).
    std::vector<double> anonymity_over_time;
};

/// Run pseudonym linking + trajectory reconstruction over a recorded
/// observation log and score the result. Ground truth (Observation::
/// true_sender) is consumed here and only here — strictly for scoring; the
/// linker input type cannot carry it.
AttackReport run_attack(const std::vector<Observation>& observations,
                        const AttackParams& params, double total_seconds);
AttackReport run_attack(const ObservationFeed& feed, const AttackParams& params,
                        double total_seconds);

}  // namespace geoanon::adversary
