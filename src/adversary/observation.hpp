#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "net/types.hpp"
#include "phy/channel.hpp"
#include "util/vec2.hpp"

namespace geoanon::adversary {

/// What kind of handle a recorded transmission exposed to the observer.
enum class ObservationKind : std::uint8_t {
    kHello,  ///< beacon with a linkable handle (pseudonym or cleartext id)
    kData,   ///< payload-bearing frame (position only, no sender handle)
    kOther,  ///< control frames (RTS/CTS/MAC-ACK), ALS traffic, etc.
};

/// One snooped transmission, compacted for offline analysis. The attack-
/// visible part is (time, transmit position, handle); the true sender id is
/// carried alongside strictly for scoring the attack's output against
/// ground truth and must never influence a linking decision (GL010 guards
/// the linker entry point).
struct Observation {
    double t_s{0.0};
    util::Vec2 pos{};
    ObservationKind kind{ObservationKind::kOther};
    /// Linking handle for kHello observations: the AGFW hello pseudonym, or
    /// a cleartext GPSR beacon identity folded into a disjoint handle space
    /// (a stable identity is just a pseudonym that never rotates). 0 for
    /// non-hello observations.
    std::uint64_t handle{0};
    // geoanon: source(node-id)
    net::NodeId true_sender{net::kInvalidNode};  ///< ground truth; scoring only
};

/// Cleartext identities share the handle space with pseudonyms via a high
/// tag bit (CryptoEngine pseudonyms are full-width hash outputs, but the
/// tag keeps the two families disjoint by construction).
inline std::uint64_t identity_handle(net::NodeId id) {
    return (1ULL << 62) | static_cast<std::uint64_t>(id);
}

/// The single snoop-registration path for every adversary component: one
/// audit tap on the channel fans out to frame subscribers (the legacy
/// Eavesdropper) and, when recording is on, appends a compact Observation
/// per transmission for the offline linking/trajectory attack.
///
/// Also owns the shared ground-truth MAC→NodeId mapping (scoring only).
class ObservationFeed {
  public:
    struct Params {
        /// Keep the per-transmission Observation log (required by
        /// run_attack). Off = dispatch-only feed.
        bool record{true};
        /// Cap on retained observations (0 = unbounded). Overflow is counted
        /// in observations_dropped(), never silent.
        std::size_t max_observations{0};
    };

    using GroundTruthFn = std::function<net::NodeId(net::MacAddr)>;
    /// Subscriber: (frame, transmit position, time in seconds).
    using FrameFn = std::function<void(const phy::Frame&, const util::Vec2&, double)>;

    ObservationFeed(phy::Channel& channel, GroundTruthFn mac_owner, Params params);
    ObservationFeed(phy::Channel& channel, GroundTruthFn mac_owner)
        : ObservationFeed(channel, std::move(mac_owner), Params{}) {}

    /// Register an online frame consumer. Subscribers run in registration
    /// order, after the observation (if any) is recorded.
    void subscribe(FrameFn fn) { subscribers_.push_back(std::move(fn)); }

    /// Ground truth for scoring: the node that owns a (persistent) MAC
    /// address. Never available to attack passes.
    // geoanon: source(node-id)
    net::NodeId mac_owner(net::MacAddr mac) const { return ground_truth_(mac); }

    const std::vector<Observation>& observations() const { return observations_; }
    std::uint64_t frames_seen() const { return frames_seen_; }
    std::uint64_t observations_dropped() const { return observations_dropped_; }

  private:
    void on_frame(const phy::Frame& frame, const util::Vec2& pos,
                  net::NodeId true_sender, double t_s);

    Params params_;
    GroundTruthFn ground_truth_;
    std::vector<FrameFn> subscribers_;
    std::vector<Observation> observations_;
    std::uint64_t frames_seen_{0};
    std::uint64_t observations_dropped_{0};
};

}  // namespace geoanon::adversary
