#include "adversary/observation.hpp"

namespace geoanon::adversary {

ObservationFeed::ObservationFeed(phy::Channel& channel, GroundTruthFn mac_owner,
                                 Params params)
    : params_(params), ground_truth_(std::move(mac_owner)) {
    channel.add_audit_snoop([this, &channel](const phy::Frame& f, const util::Vec2& pos,
                                             net::NodeId true_sender) {
        on_frame(f, pos, true_sender, channel.simulator().now().to_seconds());
    });
}

void ObservationFeed::on_frame(const phy::Frame& frame, const util::Vec2& pos,
                               net::NodeId true_sender, double t_s) {
    ++frames_seen_;

    if (params_.record) {
        if (params_.max_observations != 0 &&
            observations_.size() >= params_.max_observations) {
            ++observations_dropped_;
        } else {
            Observation o;
            o.t_s = t_s;
            o.pos = pos;
            o.true_sender = true_sender;
            if (frame.type == phy::Frame::Type::kData && frame.payload) {
                switch (frame.payload->type) {
                    case net::PacketType::kAgfwHello:
                        o.kind = ObservationKind::kHello;
                        o.handle = frame.payload->hello_pseudonym;
                        break;
                    case net::PacketType::kGpsrHello:
                        // A cleartext beacon identity is a handle that never
                        // rotates — fold it in so the same linker covers the
                        // no-anonymity baseline.
                        o.kind = ObservationKind::kHello;
                        o.handle = identity_handle(frame.payload->src_id);
                        break;
                    case net::PacketType::kAgfwData:
                    case net::PacketType::kGpsrData:
                        o.kind = ObservationKind::kData;
                        break;
                    default:
                        o.kind = ObservationKind::kOther;
                        break;
                }
            }
            observations_.push_back(o);
        }
    }

    for (const FrameFn& fn : subscribers_) fn(frame, pos, t_s);
}

}  // namespace geoanon::adversary
