#include "adversary/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

namespace geoanon::adversary {

namespace {

/// Majority element of a small owner list (ties -> smaller id). The list is
/// consumed (sorted in place).
net::NodeId majority(std::vector<net::NodeId>& owners) {
    if (owners.empty()) return net::kInvalidNode;
    std::sort(owners.begin(), owners.end());
    net::NodeId best = owners.front();
    std::size_t best_count = 0;
    for (std::size_t i = 0; i < owners.size();) {
        std::size_t j = i;
        while (j < owners.size() && owners[j] == owners[i]) ++j;
        if (j - i > best_count) {
            best_count = j - i;
            best = owners[i];
        }
        i = j;
    }
    return best;
}

/// One node's true track, rebuilt from its own sightings: piecewise-linear
/// interpolation between beacons, clamped at the ends.
struct TrueTrack {
    std::vector<double> t;
    std::vector<util::Vec2> p;

    util::Vec2 at(double when) const {
        const auto it = std::lower_bound(t.begin(), t.end(), when);
        if (it == t.begin()) return p.front();
        if (it == t.end()) return p.back();
        const auto i = static_cast<std::size_t>(it - t.begin());
        const double span = t[i] - t[i - 1];
        if (span <= 0.0) return p[i];
        const double a = (when - t[i - 1]) / span;
        return {p[i - 1].x + (p[i].x - p[i - 1].x) * a,
                p[i - 1].y + (p[i].y - p[i - 1].y) * a};
    }
};

}  // namespace

AttackReport run_attack(const ObservationFeed& feed, const AttackParams& params,
                        double total_seconds) {
    return run_attack(feed.observations(), params, total_seconds);
}

AttackReport run_attack(const std::vector<Observation>& observations,
                        const AttackParams& params, double total_seconds) {
    AttackReport rep;

    // Split each hello observation into the attack-visible sighting and the
    // scoring-only ground truth. HelloSighting cannot carry the true sender,
    // so the linker below decides on (time, position, handle) alone.
    std::vector<HelloSighting> sightings;
    std::vector<net::NodeId> truth;
    for (const Observation& o : observations) {
        if (o.kind != ObservationKind::kHello || o.handle == 0) continue;
        sightings.push_back({o.t_s, o.pos, o.handle});
        truth.push_back(o.true_sender);
    }
    rep.hello_observations = sightings.size();
    if (sightings.empty()) return rep;
    if (total_seconds <= 0.0) {
        for (const HelloSighting& s : sightings)
            total_seconds = std::max(total_seconds, s.t_s);
    }
    total_seconds = std::max(total_seconds, 1e-9);

    LinkerParams lp = params.linker;
    if (lp.max_speed_mps <= 0.0) lp.max_speed_mps = 20.0;
    const LinkResult linked = link_pseudonyms(sightings, lp);

    rep.tracklets = linked.tracklets.size();
    rep.chains = linked.chains.size();
    rep.candidate_pairs = linked.candidate_pairs;
    rep.links_made = linked.links.size();

    // Carry the ground truth through the linker's canonical sort.
    std::vector<net::NodeId> owner(linked.sightings.size(), net::kInvalidNode);
    for (std::size_t i = 0; i < linked.sightings.size(); ++i)
        owner[i] = truth[linked.original_index[i]];

    // Per-tracklet owner (majority over its sightings; one node in practice,
    // pseudonyms are per-node hash outputs).
    const auto n = static_cast<std::uint32_t>(linked.tracklets.size());
    std::vector<net::NodeId> tracklet_owner(n, net::kInvalidNode);
    for (std::uint32_t t = 0; t < n; ++t) {
        const Tracklet& tk = linked.tracklets[t];
        std::vector<net::NodeId> owners(owner.begin() + tk.first,
                                        owner.begin() + tk.first + tk.count);
        tracklet_owner[t] = majority(owners);
    }

    // Link precision.
    for (const Link& l : linked.links) {
        if (tracklet_owner[l.from] != net::kInvalidNode &&
            tracklet_owner[l.from] == tracklet_owner[l.to])
            ++rep.links_correct;
    }
    rep.link_precision =
        rep.links_made > 0
            ? static_cast<double>(rep.links_correct) / static_cast<double>(rep.links_made)
            : 0.0;

    // Recall: of the ground-truth adjacent tracklet pairs of each node, how
    // many landed in one chain? std::map keeps the node iteration sorted so
    // float accumulation order is fixed.
    std::map<net::NodeId, std::vector<std::uint32_t>> tracklets_of;
    for (std::uint32_t t = 0; t < n; ++t) {
        if (tracklet_owner[t] != net::kInvalidNode)
            tracklets_of[tracklet_owner[t]].push_back(t);
    }
    std::uint64_t truth_pairs = 0, truth_pairs_chained = 0;
    for (auto& [node, ts] : tracklets_of) {
        std::sort(ts.begin(), ts.end(), [&](std::uint32_t x, std::uint32_t y) {
            return std::tie(linked.tracklets[x].t_begin, x) <
                   std::tie(linked.tracklets[y].t_begin, y);
        });
        for (std::size_t i = 1; i < ts.size(); ++i) {
            ++truth_pairs;
            if (linked.chain_of[ts[i - 1]] == linked.chain_of[ts[i]])
                ++truth_pairs_chained;
        }
    }
    rep.link_recall = truth_pairs > 0 ? static_cast<double>(truth_pairs_chained) /
                                            static_cast<double>(truth_pairs)
                                      : 0.0;

    // True tracks (scoring only), then per-chain majority owner.
    std::map<net::NodeId, TrueTrack> tracks;
    for (std::size_t i = 0; i < linked.sightings.size(); ++i) {
        if (owner[i] == net::kInvalidNode) continue;
        tracks[owner[i]].t.push_back(linked.sightings[i].t_s);
        tracks[owner[i]].p.push_back(linked.sightings[i].pos);
    }
    for (auto& [node, tr] : tracks) {
        std::vector<std::size_t> idx(tr.t.size());
        for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
        std::sort(idx.begin(), idx.end(), [&](std::size_t x, std::size_t y) {
            return std::tie(tr.t[x], x) < std::tie(tr.t[y], y);
        });
        TrueTrack sorted;
        sorted.t.reserve(idx.size());
        sorted.p.reserve(idx.size());
        for (const std::size_t i : idx) {
            sorted.t.push_back(tr.t[i]);
            sorted.p.push_back(tr.p[i]);
        }
        tr = std::move(sorted);
    }

    const auto chain_count = static_cast<std::uint32_t>(linked.chains.size());
    std::vector<net::NodeId> chain_owner(chain_count, net::kInvalidNode);
    for (std::uint32_t c = 0; c < chain_count; ++c) {
        std::vector<net::NodeId> owners;
        for (const std::uint32_t t : linked.chains[c].tracklets) {
            const Tracklet& tk = linked.tracklets[t];
            owners.insert(owners.end(), owner.begin() + tk.first,
                          owner.begin() + tk.first + tk.count);
        }
        chain_owner[c] = majority(owners);
    }

    // Tracking success + path error, per chain in chain order (fixed float
    // accumulation order).
    std::map<net::NodeId, double> best_span;
    double error_sum = 0.0;
    std::uint64_t error_count = 0;
    for (std::uint32_t c = 0; c < chain_count; ++c) {
        const net::NodeId v = chain_owner[c];
        if (v == net::kInvalidNode) continue;
        const TrueTrack& track = tracks[v];
        double own_first = 0.0, own_last = 0.0;
        bool any_own = false;
        for (const std::uint32_t t : linked.chains[c].tracklets) {
            const Tracklet& tk = linked.tracklets[t];
            for (std::uint32_t i = tk.first; i < tk.first + tk.count; ++i) {
                const HelloSighting& s = linked.sightings[i];
                error_sum += util::distance(s.pos, track.at(s.t_s));
                ++error_count;
                if (owner[i] != v) continue;
                if (!any_own) {
                    own_first = own_last = s.t_s;
                    any_own = true;
                } else {
                    own_first = std::min(own_first, s.t_s);
                    own_last = std::max(own_last, s.t_s);
                }
            }
        }
        if (any_own) {
            double& span = best_span[v];
            span = std::max(span, own_last - own_first);
        }
    }
    rep.mean_path_error_m =
        error_count > 0 ? error_sum / static_cast<double>(error_count) : 0.0;

    // Mean over the nodes that beaconed at all (tracks' keys).
    if (!tracks.empty()) {
        double sum = 0.0;
        for (const auto& [node, tr] : tracks) {
            const auto it = best_span.find(node);
            sum += (it != best_span.end() ? it->second : 0.0) / total_seconds;
        }
        rep.tracking_success_rate = sum / static_cast<double>(tracks.size());
    }

    // Anonymity-set statistics over the committed links.
    const std::size_t windows = static_cast<std::size_t>(
        std::max(1.0, std::ceil(total_seconds / std::max(params.window_s, 1e-9))));
    std::vector<double> win_sum(windows, 0.0);
    std::vector<std::uint64_t> win_count(windows, 0);
    double anon_sum = 0.0;
    for (const Link& l : linked.links) {
        const auto cand = static_cast<double>(l.candidates);
        anon_sum += cand;
        rep.max_anonymity_set = std::max(rep.max_anonymity_set, cand);
        auto w = static_cast<std::size_t>(l.t_s / params.window_s);
        w = std::min(w, windows - 1);
        win_sum[w] += cand;
        ++win_count[w];
    }
    rep.mean_anonymity_set =
        rep.links_made > 0 ? anon_sum / static_cast<double>(rep.links_made) : 0.0;
    rep.anonymity_over_time.resize(windows, 0.0);
    for (std::size_t w = 0; w < windows; ++w) {
        if (win_count[w] > 0)
            rep.anonymity_over_time[w] = win_sum[w] / static_cast<double>(win_count[w]);
    }
    return rep;
}

}  // namespace geoanon::adversary
