#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

#include "adversary/observation.hpp"
#include "net/packet.hpp"
#include "net/types.hpp"
#include "phy/channel.hpp"

namespace geoanon::adversary {

/// Passive global eavesdropper implementing the paper's threat model (§2):
/// it observes every transmission (with the transmitter's position — a
/// sniffer near the sender learns as much), reads all cleartext header
/// fields, and tries to link *identities* to *locations*.
///
/// Identity handles it can exploit:
///  - cleartext node ids in GPSR hellos/data and plain-DLM messages;
///  - persistent MAC addresses (a stable handle == an identity);
///  - §3.2's correlation attack: consecutive hops of one packet share the
///    trapdoor (modeled by uid), so a frame carrying a real MAC address that
///    relays a packet previously addressed to pseudonym n binds n to that
///    MAC — and thereafter every hello under n localizes that MAC's owner.
///
/// Against full AGFW (anonymous MAC + pseudonyms) none of these fire, which
/// is exactly §4's claim; the report quantifies it.
///
/// Observations arrive through the shared ObservationFeed (one snoop
/// registration for every adversary component); the feed also supplies the
/// scoring-only MAC→NodeId ground truth.
class Eavesdropper {
  public:
    struct Params {
        double window_seconds{10.0};  ///< tracking-coverage bucket size
    };

    Eavesdropper(ObservationFeed& feed, std::size_t node_count, Params params);
    Eavesdropper(ObservationFeed& feed, std::size_t node_count)
        : Eavesdropper(feed, node_count, Params{}) {}

    struct Report {
        std::uint64_t frames_observed{0};
        /// Observations where an identity handle was tied to a location.
        std::uint64_t identity_sightings{0};
        /// Observations exposing only an unlinkable pseudonym.
        std::uint64_t pseudonym_sightings{0};
        /// Successful §3.2 pseudonym->MAC bindings.
        std::uint64_t mac_pseudonym_links{0};
        std::uint64_t nodes_ever_localized{0};
        /// Successful §3.3 index-dictionary matches on observed ALS queries:
        /// each reveals an (updater, requester) relationship.
        std::uint64_t index_linkages{0};
        std::uint64_t relationship_pairs_learned{0};
        /// Mean over nodes of (windows with an identity-linked sighting) /
        /// (total windows) — "how continuously can I track people".
        double mean_tracking_coverage{0.0};
    };

    /// §3.3's stated exposure risk for the indexed ALS: "the index part
    /// E_{K_B}(A,B) is a fixed block of data, a sophisticated attacker may
    /// find a matching identity ... by collecting enough certificates or
    /// computing it exhaustively". Install the attacker's precomputed
    /// dictionary: hex(index) -> (updater A, requester B). Observed LREQ
    /// indices that match reveal *who queries whom* (not locations).
    void set_index_dictionary(
        std::unordered_map<std::string, std::pair<net::NodeId, net::NodeId>> dict) {
        index_dictionary_ = std::move(dict);
    }

    /// Compute the report for a run that covered [0, total_seconds].
    Report report(double total_seconds) const;

  private:
    void observe(const phy::Frame& frame, double t_seconds);
    void identity_sighting(net::NodeId victim, double t_seconds);

    ObservationFeed& feed_;
    std::size_t node_count_;
    Params params_;

    std::uint64_t frames_observed_{0};
    std::uint64_t identity_sightings_{0};
    std::uint64_t pseudonym_sightings_{0};
    std::uint64_t mac_pseudonym_links_{0};

    /// victim -> windows in which the adversary localized it.
    std::unordered_map<net::NodeId, std::set<std::int64_t>> windows_;
    /// §3.2 correlation state: packet uid -> pseudonym it was addressed to.
    std::unordered_map<std::uint64_t, std::uint64_t> uid_to_pseudonym_;
    /// pseudonyms bound to a real MAC address (identity handle).
    std::unordered_map<std::uint64_t, net::MacAddr> pseudonym_to_mac_;
    /// §3.3 index dictionary and the relationships it has revealed.
    std::unordered_map<std::string, std::pair<net::NodeId, net::NodeId>> index_dictionary_;
    std::uint64_t index_linkages_{0};
    std::set<std::pair<net::NodeId, net::NodeId>> relationships_;
};

}  // namespace geoanon::adversary
