#include "adversary/linker.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

namespace geoanon::adversary {

namespace {

/// Link plausibility gate: could the owner of predecessor `a` physically
/// have produced successor `b`? Fills the implied-speed cost on success.
bool gate(const Tracklet& a, const Tracklet& b, const LinkerParams& p, double& cost) {
    const double gap = b.t_begin - a.t_end;
    if (gap <= 0.0 || gap > p.max_gap_s) return false;
    const double dist = util::distance(a.p_end, b.p_begin);
    if (dist > p.max_speed_mps * gap + p.slack_m) return false;
    cost = dist / gap;
    return true;
}

/// Candidate predecessor→successor pair, ordered by plausibility. The full
/// tuple tie-break keeps the global matching independent of enumeration
/// order (and therefore deterministic across platforms).
struct Pair {
    double cost;
    double gap;
    std::uint32_t from;
    std::uint32_t to;

    bool operator<(const Pair& o) const {
        return std::tie(cost, gap, from, to) < std::tie(o.cost, o.gap, o.from, o.to);
    }
};

}  // namespace

LinkResult link_pseudonyms(std::vector<HelloSighting> sightings,
                           const LinkerParams& params) {
    LinkResult r;

    // Canonical order: handle-major, time-minor, with position and input
    // index breaking any remaining ties. Every tracklet becomes one
    // contiguous run.
    std::vector<std::uint32_t> order(sightings.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::uint32_t x, std::uint32_t y) {
        const HelloSighting& a = sightings[x];
        const HelloSighting& b = sightings[y];
        return std::tie(a.handle, a.t_s, a.pos.x, a.pos.y, x) <
               std::tie(b.handle, b.t_s, b.pos.x, b.pos.y, y);
    });
    r.sightings.reserve(sightings.size());
    r.original_index = order;
    for (const std::uint32_t i : order) r.sightings.push_back(sightings[i]);

    // Tracklets: maximal same-handle runs. A handle reappearing after any
    // silence still belongs to the same tracklet — the attacker links equal
    // handles for free, which is exactly what makes slow rotation weak.
    for (std::uint32_t i = 0; i < r.sightings.size();) {
        std::uint32_t j = i;
        while (j < r.sightings.size() && r.sightings[j].handle == r.sightings[i].handle)
            ++j;
        Tracklet t;
        t.handle = r.sightings[i].handle;
        t.first = i;
        t.count = j - i;
        t.t_begin = r.sightings[i].t_s;
        t.t_end = r.sightings[j - 1].t_s;
        t.p_begin = r.sightings[i].pos;
        t.p_end = r.sightings[j - 1].pos;
        r.tracklets.push_back(t);
        i = j;
    }
    const auto n = static_cast<std::uint32_t>(r.tracklets.size());

    // Tracklet scan orders. by_begin drives successor processing; by_end
    // gives a binary-searchable window of plausible predecessors.
    std::vector<std::uint32_t> by_begin(n), by_end(n);
    for (std::uint32_t i = 0; i < n; ++i) by_begin[i] = by_end[i] = i;
    std::sort(by_begin.begin(), by_begin.end(), [&](std::uint32_t x, std::uint32_t y) {
        return std::tie(r.tracklets[x].t_begin, x) < std::tie(r.tracklets[y].t_begin, y);
    });
    std::sort(by_end.begin(), by_end.end(), [&](std::uint32_t x, std::uint32_t y) {
        return std::tie(r.tracklets[x].t_end, x) < std::tie(r.tracklets[y].t_end, y);
    });
    std::vector<double> end_times(n);
    for (std::uint32_t i = 0; i < n; ++i) end_times[i] = r.tracklets[by_end[i]].t_end;

    std::vector<std::uint32_t> succ(n, n), pred(n, n);
    // Ambiguity per successor: gate-passing predecessors, availability
    // ignored — the information-theoretic anonymity set of the change.
    std::vector<std::uint32_t> pred_count(n, 0);

    if (params.global_matching) {
        // Strong attacker: enumerate every gate-passing pair, then commit
        // links globally in cost order so a cheap link is never preempted by
        // an earlier greedy mistake elsewhere.
        std::vector<Pair> pairs;
        for (std::uint32_t bi = 0; bi < n; ++bi) {
            const std::uint32_t b = by_begin[bi];
            const Tracklet& tb = r.tracklets[b];
            const auto lo = std::lower_bound(end_times.begin(), end_times.end(),
                                             tb.t_begin - params.max_gap_s);
            for (auto it = lo; it != end_times.end() && *it < tb.t_begin; ++it) {
                const std::uint32_t a = by_end[static_cast<std::size_t>(
                    it - end_times.begin())];
                double cost = 0.0;
                if (!gate(r.tracklets[a], tb, params, cost)) continue;
                ++r.candidate_pairs;
                ++pred_count[b];
                pairs.push_back({cost, tb.t_begin - r.tracklets[a].t_end, a, b});
            }
        }
        std::sort(pairs.begin(), pairs.end());
        for (const Pair& p : pairs) {
            if (succ[p.from] != n || pred[p.to] != n) continue;
            succ[p.from] = p.to;
            pred[p.to] = p.from;
            r.links.push_back({p.from, p.to, r.tracklets[p.to].t_begin,
                               std::max<std::uint32_t>(pred_count[p.to], 1)});
        }
    } else {
        // Weak attacker: take successors in time order and give each the
        // best predecessor still available — an online nearest-neighbor
        // tracker with no lookahead.
        for (std::uint32_t bi = 0; bi < n; ++bi) {
            const std::uint32_t b = by_begin[bi];
            const Tracklet& tb = r.tracklets[b];
            double best_cost = std::numeric_limits<double>::infinity();
            double best_gap = 0.0;
            std::uint32_t best = n;
            const auto lo = std::lower_bound(end_times.begin(), end_times.end(),
                                             tb.t_begin - params.max_gap_s);
            for (auto it = lo; it != end_times.end() && *it < tb.t_begin; ++it) {
                const std::uint32_t a = by_end[static_cast<std::size_t>(
                    it - end_times.begin())];
                double cost = 0.0;
                if (!gate(r.tracklets[a], tb, params, cost)) continue;
                ++r.candidate_pairs;
                ++pred_count[b];
                if (succ[a] != n) continue;  // already consumed by an earlier B
                const double gap = tb.t_begin - r.tracklets[a].t_end;
                if (std::tie(cost, gap, a) < std::tie(best_cost, best_gap, best)) {
                    best_cost = cost;
                    best_gap = gap;
                    best = a;
                }
            }
            if (best == n) continue;
            succ[best] = b;
            pred[b] = best;
            r.links.push_back({best, b, tb.t_begin,
                               std::max<std::uint32_t>(pred_count[b], 1)});
        }
    }
    // Reported in decision-time order for either attacker.
    std::sort(r.links.begin(), r.links.end(), [](const Link& x, const Link& y) {
        return std::tie(x.t_s, x.from, x.to) < std::tie(y.t_s, y.from, y.to);
    });

    // Chains: follow successor pointers from every head (no predecessor),
    // heads visited in (t_begin, idx) order so chain ids are deterministic.
    r.chain_of.assign(n, 0);
    for (std::uint32_t bi = 0; bi < n; ++bi) {
        const std::uint32_t head = by_begin[bi];
        if (pred[head] != n) continue;
        const auto chain_id = static_cast<std::uint32_t>(r.chains.size());
        Chain c;
        for (std::uint32_t t = head; t != n; t = succ[t]) {
            c.tracklets.push_back(t);
            r.chain_of[t] = chain_id;
        }
        r.chains.push_back(std::move(c));
    }
    return r;
}

}  // namespace geoanon::adversary
