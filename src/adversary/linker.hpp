#pragma once

#include <cstdint>
#include <vector>

#include "util/vec2.hpp"

namespace geoanon::adversary {

/// What a passive observer reads off one beacon: time, transmit position,
/// handle. Ground truth is deliberately absent from this type — linking
/// decisions cannot consume what the struct does not carry.
struct HelloSighting {
    double t_s{0.0};
    util::Vec2 pos{};
    std::uint64_t handle{0};
};

/// Attacker strength knobs for the pseudonym-linking pass.
struct LinkerParams {
    /// Physical speed bound the attacker assumes; a candidate link implying
    /// a faster movement is rejected. 0 = take the scenario's max speed.
    double max_speed_mps{0.0};
    /// Position allowance on top of max_speed * gap (beacon jitter, GPS
    /// error, the distance covered inside one beacon interval).
    double slack_m{50.0};
    /// Longest silence the attacker will bridge. Gaps beyond this (deep
    /// mix-zone traversals) always break the chain.
    double max_gap_s{30.0};
    /// Strong attacker: collect every gate-passing (predecessor, successor)
    /// pair and commit them globally in cost order, so a cheap link is never
    /// lost to an earlier greedy mistake. false = weak attacker that scans
    /// tracklets in time order and takes the best predecessor available at
    /// that moment.
    bool global_matching{true};
};

/// A maximal same-handle run of sightings (one pseudonym's lifetime). With
/// per-hello rotation every tracklet is a single beacon; timed rotation and
/// cleartext identities produce long tracklets.
struct Tracklet {
    std::uint64_t handle{0};
    std::uint32_t first{0};  ///< index of first sighting (sorted order)
    std::uint32_t count{0};
    double t_begin{0.0};
    double t_end{0.0};
    util::Vec2 p_begin{};
    util::Vec2 p_end{};
};

/// One candidate identity: a chain of tracklets the attacker believes belong
/// to the same node.
struct Chain {
    std::vector<std::uint32_t> tracklets;  ///< indices, time order
};

/// A committed predecessor→successor link plus the ambiguity the attacker
/// faced at that decision (how many gate-passing successors the predecessor
/// had — the anonymity set of the change).
struct Link {
    std::uint32_t from{0};  ///< tracklet index
    std::uint32_t to{0};
    double t_s{0.0};        ///< decision time (successor's first beacon)
    std::uint32_t candidates{1};
};

struct LinkResult {
    /// Sightings in canonical order (sorted by handle, then time, then
    /// position — so every tracklet is the contiguous run [first,
    /// first+count)); tracklet indices refer to this vector.
    std::vector<HelloSighting> sightings;
    /// canonical index -> index in the caller's input vector, so callers can
    /// carry parallel per-sighting data (ground truth) through the sort.
    std::vector<std::uint32_t> original_index;
    std::vector<Tracklet> tracklets;
    std::vector<Chain> chains;
    /// tracklet index -> chain index.
    std::vector<std::uint32_t> chain_of;
    std::vector<Link> links;
    std::uint64_t candidate_pairs{0};  ///< gate-passing pairs considered
};

/// Stitch successive pseudonyms into candidate identities by spatio-temporal
/// continuity (max-speed gating + greedy or global matching). Deterministic:
/// identical input yields an identical LinkResult on every run and platform.
// geoanon: sink(attack-decision)
LinkResult link_pseudonyms(std::vector<HelloSighting> sightings, const LinkerParams& params);

}  // namespace geoanon::adversary
