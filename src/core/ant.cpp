#include "core/ant.hpp"

#include <algorithm>

namespace geoanon::core {

void AnonymousNeighborTable::insert(const Entry& e) {
    for (auto& existing : entries_) {
        if (existing.n == e.n) {
            if (e.ts >= existing.ts) existing = e;
            return;
        }
    }
    if (entries_.size() >= params_.max_entries) {
        // Evict the stalest entry.
        auto oldest = std::min_element(
            entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.ts < b.ts; });
        *oldest = e;
        return;
    }
    entries_.push_back(e);
}

void AnonymousNeighborTable::purge(SimTime now) {
    std::erase_if(entries_, [this, now](const Entry& e) { return stale(e, now); });
}

void AnonymousNeighborTable::erase(Pseudonym n) {
    std::erase_if(entries_, [n](const Entry& e) { return e.n == n; });
}

Vec2 AnonymousNeighborTable::predicted_position(const Entry& e, SimTime now) const {
    if (!params_.use_velocity) return e.loc;
    const double age_s = std::max(0.0, (now - e.ts).to_seconds());
    return e.loc + e.velocity * age_s;
}

std::optional<AnonymousNeighborTable::Entry> AnonymousNeighborTable::best_next_hop(
    const Vec2& my_pos, const Vec2& dst_loc, SimTime now,
    const std::vector<Pseudonym>& exclude) const {
    const double my_dist = util::distance(my_pos, dst_loc);
    const Entry* best = nullptr;
    double best_score = my_dist;  // must beat staying put

    for (const Entry& e : entries_) {
        if (stale(e, now)) continue;
        if (std::find(exclude.begin(), exclude.end(), e.n) != exclude.end()) continue;
        const double age_s = std::max(0.0, (now - e.ts).to_seconds());
        const double d = util::distance(predicted_position(e, now), dst_loc);
        // §3.1.1: prefer fresher positions — penalize by how far the node
        // may have strayed since it reported this position.
        const double score = d + params_.staleness_penalty_mps * age_s;
        if (score < best_score) {
            best_score = score;
            best = &e;
        }
    }
    if (best == nullptr) return std::nullopt;
    return *best;
}

}  // namespace geoanon::core
