#include "core/planar.hpp"

#include <algorithm>
#include <cmath>

namespace geoanon::core {

std::vector<AnonymousNeighborTable::Entry> rng_planarize(
    const Vec2& self, const std::vector<AnonymousNeighborTable::Entry>& neighbors) {
    std::vector<AnonymousNeighborTable::Entry> kept;
    kept.reserve(neighbors.size());
    for (const auto& v : neighbors) {
        const double d_uv = util::distance(self, v.loc);
        bool witnessed = false;
        for (const auto& w : neighbors) {
            if (w.n == v.n) continue;
            const double d_uw = util::distance(self, w.loc);
            const double d_vw = util::distance(v.loc, w.loc);
            if (std::max(d_uw, d_vw) < d_uv) {
                witnessed = true;
                break;
            }
        }
        if (!witnessed) kept.push_back(v);
    }
    return kept;
}

double ccw_angle(const Vec2& self, const Vec2& ref_dir, const Vec2& b) {
    const Vec2 to_b = b - self;
    const double ref_angle = std::atan2(ref_dir.y, ref_dir.x);
    const double b_angle = std::atan2(to_b.y, to_b.x);
    double delta = b_angle - ref_angle;
    const double two_pi = 2.0 * M_PI;
    while (delta < 0.0) delta += two_pi;
    while (delta >= two_pi) delta -= two_pi;
    return delta;
}

std::optional<AnonymousNeighborTable::Entry> right_hand_next(
    const Vec2& self, const Vec2& came_from,
    const std::vector<AnonymousNeighborTable::Entry>& planar,
    const std::vector<Pseudonym>& exclude) {
    const Vec2 incoming = came_from - self;  // direction back along the arrival edge
    const AnonymousNeighborTable::Entry* best = nullptr;
    double best_angle = 0.0;
    for (const auto& e : planar) {
        if (std::find(exclude.begin(), exclude.end(), e.n) != exclude.end()) continue;
        // Strictly positive angle: never pick the reverse edge first; it can
        // still be chosen when it is the only remaining edge (angle 2*pi
        // epsilon handling below).
        double angle = ccw_angle(self, incoming, e.loc);
        if (angle < 1e-9) angle = 2.0 * M_PI;  // reverse edge: last resort
        if (best == nullptr || angle < best_angle) {
            best = &e;
            best_angle = angle;
        }
    }
    if (best == nullptr) return std::nullopt;
    return *best;
}

}  // namespace geoanon::core
