#pragma once

#include <optional>
#include <vector>

#include "core/ant.hpp"
#include "util/vec2.hpp"

namespace geoanon::core {

using util::Vec2;

/// Planar-graph helpers for perimeter-mode recovery — the extension §6 of
/// the paper defers to future work ("recovery strategies like perimeter
/// forwarding [GPSR] could be applied ... it should not be difficult to
/// extend the scheme").
///
/// The ANT gives positions under pseudonyms, so planarization runs over
/// pseudonym entries exactly as GPSR runs over neighbor ids. One physical
/// neighbor may appear as several close-by entries; the Relative
/// Neighborhood Graph simply keeps the freshest useful edges, which
/// preserves the right-hand traversal in practice (see tests and
/// bench/ablation_perimeter).

/// Relative Neighborhood Graph filter: keep the edge (self, v) iff there is
/// no witness w among the neighbors with
///   max(d(self, w), d(v, w)) < d(self, v).
/// The result is a (locally computed) planar subgraph when positions are
/// accurate — the same construction GPSR uses.
std::vector<AnonymousNeighborTable::Entry> rng_planarize(
    const Vec2& self, const std::vector<AnonymousNeighborTable::Entry>& neighbors);

/// Counterclockwise angle of b around `self`, measured from direction `ref`
/// (radians in [0, 2*pi)).
double ccw_angle(const Vec2& self, const Vec2& ref_dir, const Vec2& b);

/// Right-hand rule: the first planar neighbor counterclockwise from the
/// incoming direction (the edge the packet arrived on, or the line toward
/// the destination when entering perimeter mode). `exclude` skips pseudonyms
/// (e.g. our own); returns nullopt when no usable neighbor exists.
std::optional<AnonymousNeighborTable::Entry> right_hand_next(
    const Vec2& self, const Vec2& came_from,
    const std::vector<AnonymousNeighborTable::Entry>& planar,
    const std::vector<Pseudonym>& exclude);

}  // namespace geoanon::core
