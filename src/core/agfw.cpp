#include "core/agfw.hpp"

#include "net/codec.hpp"

#include "core/planar.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/bytes.hpp"
#include "util/retry.hpp"

namespace geoanon::core {

using routing::kAgfwAckBytes;
using routing::kAgfwDataHeaderBytes;
using routing::kAgfwHelloBaseBytes;
using routing::kCertReferenceBytes;
using util::ByteWriter;
using util::SimTime;

namespace {
/// Fill in the derived ANT silence window: k missed hello intervals plus
/// the jitter bound, unless the caller pinned silence_timeout explicitly.
AnonymousNeighborTable::Params ant_params_for(const AgfwAgent::Params& p) {
    AnonymousNeighborTable::Params ap = p.ant;
    if (ap.silence_timeout == SimTime::zero() && p.ant_silence_hellos > 0)
        ap.silence_timeout = p.hello_interval * p.ant_silence_hellos + p.hello_jitter;
    return ap;
}

/// Canonical byte encoding of the hello body — what the ring signature
/// covers: ⟨HELLO, n, loc, ts⟩.
util::Bytes hello_signing_bytes(const Packet& pkt) {
    ByteWriter w;
    w.u64(pkt.hello_pseudonym);
    w.f64(pkt.hello_loc.x);
    w.f64(pkt.hello_loc.y);
    w.u64(static_cast<std::uint64_t>(pkt.hello_ts.ns()));
    return w.take();
}
}  // namespace

AgfwAgent::AgfwAgent(net::Node& node, Params params, crypto::CryptoEngine& engine,
                     std::vector<crypto::NodeIdNum> ring_universe, LocateFn locate,
                     DeliverFn deliver)
    : node_(node),
      params_(params),
      engine_(engine),
      ring_universe_(std::move(ring_universe)),
      locate_(std::move(locate)),
      deliver_(std::move(deliver)),
      pseudonyms_(engine, node.id(), node.rng()),
      ant_(ant_params_for(params)) {
    // Per-node silence phase for the virtual-pseudonym-change policy. Drawn
    // only when that policy is active so every other configuration consumes
    // the exact same RNG stream as before the policy existed.
    const PseudonymPolicy& pol = params_.pseudonym_policy;
    if (pol.kind == PseudonymPolicy::Kind::kVirtualMixZone &&
        pol.vpc_period > SimTime::zero()) {
        vpc_phase_ = SimTime::nanos(node_.rng().uniform_int(0, pol.vpc_period.ns() - 1));
    }
}

std::string AgfwAgent::name() const {
    return params_.use_net_ack ? "agfw-ack" : "agfw-noack";
}

void AgfwAgent::enable_location_service(routing::LocationService::Mode mode,
                                        routing::GridMap grid,
                                        routing::LocationService::Params ls_params,
                                        std::vector<NodeId> contacts) {
    routing::LocationService::Hooks hooks;
    hooks.route = [this](std::shared_ptr<Packet> pkt) { route_packet(std::move(pkt)); };
    hooks.local_broadcast = [this](std::shared_ptr<Packet> pkt) {
        auto copy = net::clone_packet(*pkt);
        copy->next_hop_pseudonym = crypto::kLastAttemptPseudonym;
        stats_.control_bytes += copy->wire_bytes;
        node_.mac().send_broadcast(std::move(copy));
    };
    hooks.my_position = [this] { return node_.position(); };
    hooks.my_id = node_.id();
    hooks.sim = &node_.sim();
    hooks.rng = &node_.rng();
    hooks.engine = &engine_;
    hooks.charge = [this](SimTime cost, std::function<void()> done) {
        charge(cost, std::move(done));
    };
    hooks.is_up = [this] { return node_.up(); };
    ls_ = std::make_unique<routing::LocationService>(mode, grid, ls_params,
                                                     std::move(hooks));
    ls_->set_contacts(std::move(contacts));
}

void AgfwAgent::charge(SimTime cost, std::function<void()> done) {
    if (params_.charge_crypto_costs && cost > SimTime::zero()) {
        node_.sim().after(cost, std::move(done));
    } else {
        done();
    }
}

bool AgfwAgent::in_last_hop_region(const Vec2& dst_loc) const {
    return util::distance(node_.position(), dst_loc) <=
           node_.radio().phy_params().range_m;
}

void AgfwAgent::mark_seen(std::uint64_t uid) { seen_[uid] = node_.sim().now(); }

void AgfwAgent::purge_soft_state() {
    const SimTime now = node_.sim().now();
    std::erase_if(seen_, [&](const auto& kv) {
        return now - kv.second > params_.seen_ttl;
    });
    std::erase_if(blacklist_, [&](const auto& kv) { return kv.second <= now; });
}

std::vector<Pseudonym> AgfwAgent::active_blacklist() const {
    std::vector<Pseudonym> out;
    out.reserve(blacklist_.size());
    const SimTime now = node_.sim().now();
    // geoanon-lint: allow(unordered-iter) -- order erased by the sort below
    for (const auto& [n, expiry] : blacklist_)
        if (expiry > now) out.push_back(n);
    std::sort(out.begin(), out.end());
    return out;
}

void AgfwAgent::start() {
    const SimTime phase =
        SimTime::nanos(node_.rng().uniform_int(0, params_.hello_interval.ns()));
    hello_timer_.start(node_.sim(), params_.hello_interval, phase,
                       [this] { send_hello(); });
    if (ls_) ls_->start();
}

// ---------------------------------------------------------------------------
// ANT: hello beacons
// ---------------------------------------------------------------------------

void AgfwAgent::on_node_restart() {
    // Reboot: every piece of volatile protocol state is gone. Cumulative
    // stats survive — they model the experimenter's counters, not node RAM.
    ant_.clear();
    seen_.clear();
    blacklist_.clear();
    // geoanon-lint: allow(unordered-iter) -- cancel() only marks event ids; cancellation order cannot reach any output
    for (auto& [uid, p] : pending_) node_.sim().cancel(p.timer);
    pending_.clear();
    ack_batch_.clear();
    if (ack_flush_event_ != sim::kInvalidEvent) {
        node_.sim().cancel(ack_flush_event_);
        ack_flush_event_ = sim::kInvalidEvent;
    }
    known_certs_.clear();
    loc_cache_.clear();
    if (ls_) ls_->reset();
}

bool AgfwAgent::policy_silent(SimTime now) const {
    const PseudonymPolicy& pol = params_.pseudonym_policy;
    switch (pol.kind) {
        case PseudonymPolicy::Kind::kMixZone:
            return pol.in_zone(node_.position());
        case PseudonymPolicy::Kind::kVirtualMixZone: {
            if (pol.vpc_period <= SimTime::zero()) return false;
            const std::int64_t phase =
                (now.ns() + vpc_phase_.ns()) % pol.vpc_period.ns();
            return phase < pol.vpc_silence.ns();
        }
        default:
            return false;
    }
}

// geoanon: hot
void AgfwAgent::send_hello() {
    if (!node_.up()) return;  // crashed: the hello timer keeps ticking idly
    purge_soft_state();
    ant_.purge(node_.sim().now());

    const SimTime now = node_.sim().now();
    if (policy_silent(now)) {
        // Mix-zone / VPC silence: skip this beacon entirely. Per-hello
        // rotation below then guarantees the first post-silence beacon
        // carries a pseudonym never seen before the gap (the "swap").
        ++stats_.hello_suppressed;
        return;
    }

    // geoanon-lint: allow(hot-alloc) -- packets are immutable shared-ownership objects by design; a packet arena is ROADMAP item 1, not a per-call fix
    auto pkt = net::make_packet();
    pkt->type = net::PacketType::kAgfwHello;
    if (params_.pseudonym_policy.kind == PseudonymPolicy::Kind::kTimed &&
        rotated_once_ && now - last_rotation_ < params_.pseudonym_policy.rotate_interval) {
        // Timed policy: deliberately weak — keep announcing the current
        // pseudonym until it ages out (the linkable end of the frontier).
        pkt->hello_pseudonym = pseudonyms_.current();
    } else {
        pkt->hello_pseudonym = pseudonyms_.rotate();
        ++stats_.pseudonym_rotations;
        last_rotation_ = now;
        rotated_once_ = true;
        GEOANON_TRACE(node_.sim(), .type = obs::EventType::kPseudonymRotated,
                      .node = node_.id(), .detail = pkt->hello_pseudonym);
    }
    // geoanon-lint: allow(privacy-taint) -- §3.1: the hello's cleartext location IS the routable information; anonymity comes from the pseudonym, not from hiding position
    pkt->hello_loc = node_.position();
    // geoanon-lint: allow(privacy-taint) -- §3.1.1 motion hint, same by-design exposure as hello_loc
    if (params_.send_velocity_hint) pkt->hello_velocity = node_.velocity();
    pkt->hello_ts = node_.sim().now();

    SimTime cost = SimTime::zero();
    if (params_.authenticated_hello) {
        // Ring = self + k distinct others, randomly drawn from all valid
        // users (§3.1.2), shuffled so the signer's slot is not positional.
        const std::size_t want = std::min(params_.ring_k, ring_universe_.size() - 1);
        std::vector<crypto::NodeIdNum> ring;
        ring.reserve(want + 1);
        ring.push_back(node_.id());
        while (ring.size() < want + 1) {
            const auto pick = ring_universe_[static_cast<std::size_t>(
                node_.rng().uniform_int(0, static_cast<std::int64_t>(ring_universe_.size()) - 1))];
            if (std::find(ring.begin(), ring.end(), pick) == ring.end())
                ring.push_back(pick);
        }
        for (std::size_t i = ring.size(); i > 1; --i) {
            const auto j = static_cast<std::size_t>(
                node_.rng().uniform_int(0, static_cast<std::int64_t>(i) - 1));
            std::swap(ring[i - 1], ring[j]);
        }
        const auto msg = hello_signing_bytes(*pkt);
        pkt->auth = engine_.ring_sign_msg(node_.id(), ring, msg, node_.rng());
        // geoanon-lint: allow(privacy-taint) -- §3.1.2: the ring member list is the anonymity set and must be cleartext for verifiers; the signer hides among k+1 members
        pkt->ring_members = std::move(ring);
        cost = engine_.costs().ring_sign(pkt->ring_members.size());
    }

    // Canonical encoding covers everything except full-certificate
    // attachment, which replaces each 4-byte reference with the whole cert.
    pkt->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*pkt));
    if (params_.authenticated_hello && !params_.certs_by_reference) {
        pkt->wire_bytes += static_cast<std::uint32_t>(
            pkt->ring_members.size() *
            (engine_.certificate_bytes() - kCertReferenceBytes));
    }

    charge(cost, [this, pkt] {
        ++stats_.hello_sent;
        stats_.control_bytes += pkt->wire_bytes;
        GEOANON_TRACE(node_.sim(), .type = obs::EventType::kHelloSent,
                      .node = node_.id(), .bytes = pkt->wire_bytes,
                      .detail = pkt->hello_pseudonym);
        node_.mac().send_broadcast(pkt);
    });
}

void AgfwAgent::handle_hello(const PacketPtr& pkt) {
    if (!params_.authenticated_hello || pkt->auth.empty()) {
        if (params_.authenticated_hello) {
            ++stats_.hello_rejected;  // unauthenticated hello in auth mode
            return;
        }
        admit_hello(pkt);
        return;
    }

    // §4 cert-by-reference: fetch (and thereafter cache) unknown certificates.
    if (params_.certs_by_reference) {
        std::size_t unknown = 0;
        for (const auto id : pkt->ring_members) {
            if (!known_certs_.contains(id)) {
                known_certs_.emplace(id, true);
                ++unknown;
            }
        }
        if (unknown > 0) {
            stats_.cert_fetches += unknown;
            stats_.control_bytes += unknown * engine_.certificate_bytes();
        }
    }

    const SimTime cost = engine_.costs().ring_verify(pkt->ring_members.size());
    charge(cost, [this, pkt] {
        const auto msg = hello_signing_bytes(*pkt);
        if (engine_.ring_verify_msg(pkt->ring_members, msg, pkt->auth)) {
            ++stats_.hello_verified;
            admit_hello(pkt);
        } else {
            ++stats_.hello_rejected;
        }
    });
}

void AgfwAgent::admit_hello(const PacketPtr& pkt) {
    AnonymousNeighborTable::Entry e;
    e.n = pkt->hello_pseudonym;
    e.loc = pkt->hello_loc;
    e.velocity = pkt->hello_velocity;
    e.ts = pkt->hello_ts;
    e.expires = node_.sim().now() + params_.ant.ttl;
    ant_.insert(e);
}

// ---------------------------------------------------------------------------
// AGFW data path
// ---------------------------------------------------------------------------

void AgfwAgent::send_data(NodeId dst, net::FlowId flow, std::uint32_t seq,
                          net::Bytes body) {
    if (!node_.up()) return;  // a crashed node originates nothing
    ++stats_.app_sent;
    auto proceed = [this, dst, flow, seq,
                    body = std::move(body)](std::optional<Vec2> loc) mutable {
        if (!loc) {
            ++stats_.drop_no_location;
            GEOANON_TRACE(node_.sim(), .type = obs::EventType::kNetDrop,
                          .cause = obs::DropCause::kNoLocation, .node = node_.id(),
                          .flow = flow, .seq = seq, .detail = dst);
            return;
        }
        // Trapdoor = E_{KU_d}(src, loc_s, tag_d) — §3.2.
        ByteWriter payload;
        payload.u64(node_.id());
        const Vec2 my_loc = node_.position();
        payload.f64(my_loc.x);
        payload.f64(my_loc.y);
        payload.u64(0x54524150444F4F52ULL);  // tag_d: "you are the destination"

        auto pkt = net::make_packet();
        pkt->type = net::PacketType::kAgfwData;
        pkt->flow = flow;
        pkt->seq = seq;
        pkt->created_at = node_.sim().now();
        pkt->uid = fresh_uid();
        pkt->dst_loc = *loc;
        pkt->trapdoor = engine_.make_trapdoor(dst, payload.data(), node_.rng());
        pkt->body = std::move(body);
        pkt->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*pkt));
        GEOANON_TRACE(node_.sim(), .type = obs::EventType::kAppSend, .node = node_.id(),
                      .uid = pkt->uid, .flow = pkt->flow, .seq = pkt->seq,
                      .bytes = pkt->wire_bytes);

        charge(engine_.costs().pk_encrypt, [this, pkt] {
            mark_seen(pkt->uid);
            if (!forward_with_recovery(pkt)) {
                if (in_last_hop_region(pkt->dst_loc)) {
                    last_attempt(pkt);
                } else {
                    ++stats_.drop_no_route;
                    GEOANON_TRACE(node_.sim(), .type = obs::EventType::kNetDrop,
                                  .cause = obs::DropCause::kNoRoute, .node = node_.id(),
                                  .uid = pkt->uid, .flow = pkt->flow, .seq = pkt->seq);
                }
            }
        });
    };

    if (ls_) {
        if (auto it = loc_cache_.find(dst);
            it != loc_cache_.end() &&
            node_.sim().now() - it->second.second <= params_.loc_cache_ttl) {
            proceed(it->second.first);
            return;
        }
        ls_->resolve(dst, [this, dst, cb = std::move(proceed)](
                              std::optional<Vec2> loc) mutable {
            if (loc) loc_cache_[dst] = {*loc, node_.sim().now()};
            cb(loc);
        });
    } else {
        proceed(locate_(dst));
    }
}

void AgfwAgent::route_packet(std::shared_ptr<Packet> pkt) {
    if (!node_.up()) return;  // e.g. an LS retry timer firing while down
    PacketPtr p(std::move(pkt));
    // The originator may itself be the responsible server / requester.
    if (ls_ && ls_->handle(p)) return;
    mark_seen(p->uid);
    if (!forward_with_recovery(p)) {
        if (ls_ && ls_->handle_stuck(p)) return;
        ++stats_.drop_no_route;
        GEOANON_TRACE(node_.sim(), .type = obs::EventType::kNetDrop,
                      .cause = obs::DropCause::kNoRoute, .node = node_.id(),
                      .uid = p->uid);
    }
}

bool AgfwAgent::try_forward(const PacketPtr& pkt, std::vector<Pseudonym> exclude) {
    ant_.purge(node_.sim().now());
    for (Pseudonym n : active_blacklist()) exclude.push_back(n);
    // Never bounce a packet straight back to ourselves.
    exclude.push_back(pseudonyms_.current());
    exclude.push_back(pseudonyms_.previous());

    const auto next =
        ant_.best_next_hop(node_.position(), pkt->dst_loc, node_.sim().now(), exclude);
    if (!next) return false;

    auto copy = net::clone_packet(*pkt);
    copy->next_hop_pseudonym = next->n;
    copy->hops = static_cast<std::uint16_t>(pkt->hops + 1);
    // Greedy forwarding always leaves (or exits) perimeter mode.
    if (copy->perimeter_mode) {
        copy->perimeter_mode = false;
        copy->perimeter_hops = 0;
        copy->perimeter_entry = Vec2{};
        copy->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*copy));
    }
    ++stats_.forwarded;
    GEOANON_TRACE(node_.sim(), .type = obs::EventType::kNetForward, .node = node_.id(),
                  .uid = copy->uid, .flow = copy->flow, .seq = copy->seq,
                  .bytes = copy->wire_bytes, .detail = next->n);

    if (params_.use_net_ack) {
        register_pending(copy, next->n, node_.position(), /*was_perimeter=*/false);
    } else {
        broadcast_copy(copy, /*retransmission=*/false);
    }
    return true;
}

bool AgfwAgent::try_perimeter(const PacketPtr& pkt, const Vec2& came_from,
                              std::vector<Pseudonym> exclude) {
    if (!params_.enable_perimeter) return false;
    if (pkt->perimeter_hops >= params_.perimeter_hop_limit) {
        ++stats_.perimeter_ttl_drops;
        return false;
    }
    ant_.purge(node_.sim().now());
    for (Pseudonym n : active_blacklist()) exclude.push_back(n);
    exclude.push_back(pseudonyms_.current());
    exclude.push_back(pseudonyms_.previous());

    const Vec2 me = node_.position();
    // A pseudonym is only answered while it is one of the owner's two latest
    // (§3.1.1), i.e. for about two hello intervals. Unlike greedy — whose
    // staleness penalty steers away from old entries — the right-hand rule
    // has no freshness notion, so filter hard before planarizing.
    const SimTime now = node_.sim().now();
    const SimTime name_lifetime = params_.hello_interval * 2;
    std::vector<AnonymousNeighborTable::Entry> live;
    live.reserve(ant_.entries().size());
    for (const auto& e : ant_.entries())
        if (now - e.ts <= name_lifetime) live.push_back(e);

    const auto planar = rng_planarize(me, live);
    const auto next = right_hand_next(me, came_from, planar, exclude);
    if (!next) return false;

    auto copy = net::clone_packet(*pkt);
    if (!pkt->perimeter_mode) {
        ++stats_.perimeter_entries;
        copy->perimeter_mode = true;
        copy->perimeter_entry = me;
    }
    copy->prev_hop_loc = me;
    copy->perimeter_hops = static_cast<std::uint16_t>(pkt->perimeter_hops + 1);
    copy->hops = static_cast<std::uint16_t>(pkt->hops + 1);
    copy->next_hop_pseudonym = next->n;
    copy->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*copy));
    ++stats_.forwarded;
    ++stats_.perimeter_forwards;
    GEOANON_TRACE(node_.sim(), .type = obs::EventType::kNetForward, .node = node_.id(),
                  .uid = copy->uid, .flow = copy->flow, .seq = copy->seq,
                  .bytes = copy->wire_bytes, .detail = next->n);

    if (params_.use_net_ack) {
        register_pending(copy, next->n, came_from, /*was_perimeter=*/true);
    } else {
        broadcast_copy(copy, /*retransmission=*/false);
    }
    return true;
}

bool AgfwAgent::forward_with_recovery(const PacketPtr& pkt) {
    if (pkt->perimeter_mode) {
        // GPSR's recovery rule: return to greedy once we are strictly closer
        // to the destination than where the packet entered perimeter mode.
        const double here = util::distance(node_.position(), pkt->dst_loc);
        const double entry = util::distance(pkt->perimeter_entry, pkt->dst_loc);
        if (here < entry && try_forward(pkt)) {
            ++stats_.perimeter_recoveries;
            return true;
        }
        return try_perimeter(pkt, pkt->prev_hop_loc);
    }
    if (try_forward(pkt)) return true;
    // Enter perimeter mode using the line toward the destination as the
    // right-hand reference (GPSR's entry rule).
    return try_perimeter(pkt, pkt->dst_loc);
}

void AgfwAgent::register_pending(const std::shared_ptr<Packet>& copy, Pseudonym next,
                                 const Vec2& came_from, bool was_perimeter) {
    PendingAck pending;
    pending.copy = copy;
    pending.next_hop = next;
    pending.tried.push_back(next);
    pending.came_from = came_from;
    pending.was_perimeter = was_perimeter;
    // Keep reroute budget across re-chosen next hops for this uid.
    if (auto it = pending_.find(copy->uid); it != pending_.end()) {
        pending.reroutes = it->second.reroutes;
        pending.tried.insert(pending.tried.end(), it->second.tried.begin(),
                             it->second.tried.end());
        node_.sim().cancel(it->second.timer);
        pending_.erase(it);
    }
    pending_.emplace(copy->uid, std::move(pending));
    broadcast_copy(copy, /*retransmission=*/false);
    arm_ack_timer(copy->uid);
}

void AgfwAgent::broadcast_copy(const std::shared_ptr<Packet>& copy, bool retransmission) {
    if (retransmission) {
        ++stats_.retransmissions;
        GEOANON_TRACE(node_.sim(), .type = obs::EventType::kNetRetransmit,
                      .node = node_.id(), .uid = copy->uid, .flow = copy->flow,
                      .seq = copy->seq, .bytes = copy->wire_bytes);
    }
    stats_.data_bytes += copy->wire_bytes;
    node_.mac().send_broadcast(copy);
}

void AgfwAgent::arm_ack_timer(std::uint64_t uid) {
    auto it = pending_.find(uid);
    if (it == pending_.end()) return;
    // Optional exponential backoff: premature retransmissions under
    // contention feed the very collisions that delayed the ACK. Shares the
    // util::RetryPolicy schedule with LocationService reissues; doubling
    // from ack_timeout, capped at 16x, jitter-free (the MAC layer already
    // decorrelates broadcasts), which is bit-identical to the historical
    // shift-based schedule.
    const util::RetryPolicy::Params backoff{.initial = params_.ack_timeout,
                                            .multiplier = 2.0,
                                            .cap = params_.ack_timeout * 16,
                                            .jitter = 0.0};
    const SimTime timeout =
        params_.ack_backoff
            ? util::RetryPolicy::delay(backoff, it->second.attempts + 1, node_.rng())
            : params_.ack_timeout;
    it->second.timer =
        node_.sim().after(timeout, [this, uid] { on_ack_timeout(uid); });
}

void AgfwAgent::on_ack_timeout(std::uint64_t uid) {
    auto it = pending_.find(uid);
    if (it == pending_.end()) return;
    PendingAck& p = it->second;
    p.timer = sim::kInvalidEvent;

    if (p.attempts < params_.ack_retries) {
        ++p.attempts;
        broadcast_copy(p.copy, /*retransmission=*/true);
        arm_ack_timer(uid);
        return;
    }

    // This next hop is unreachable: blacklist it, drop its ANT entries, and
    // try an alternate neighbor (bounded).
    blacklist_[p.next_hop] = node_.sim().now() + params_.blacklist_ttl;
    ant_.erase(p.next_hop);
    if (p.reroutes < params_.reroute_limit) {
        ++p.reroutes;
        auto pkt = p.copy;
        const std::vector<Pseudonym> exclude = p.tried;
        const Vec2 came_from = p.came_from;
        const bool was_perimeter = p.was_perimeter;
        // try_forward()/try_perimeter() inherit reroutes/tried from the
        // surviving map entry via register_pending().
        if (try_forward(pkt, exclude)) return;
        if (try_perimeter(pkt, was_perimeter ? came_from : pkt->dst_loc, exclude)) return;
    }
    pending_.erase(uid);
    ++stats_.drop_unreachable;
    GEOANON_TRACE(node_.sim(), .type = obs::EventType::kNetDrop,
                  .cause = obs::DropCause::kUnreachable, .node = node_.id(),
                  .uid = uid);
}

void AgfwAgent::resolve_ack(std::uint64_t uid, bool implicit) {
    auto it = pending_.find(uid);
    if (it == pending_.end()) return;
    node_.sim().cancel(it->second.timer);
    pending_.erase(it);
    if (implicit)
        ++stats_.implicit_acks;
    else
        ++stats_.explicit_acks_received;
    GEOANON_TRACE(node_.sim(), .type = obs::EventType::kAckReceived, .node = node_.id(),
                  .uid = uid, .detail = implicit ? 1u : 0u);
}

void AgfwAgent::send_ack(std::uint64_t uid) {
    if (params_.ack_aggregation > SimTime::zero()) {
        // §3.2: batch several acknowledgments into one packet.
        ack_batch_.push_back(uid);
        if (ack_flush_event_ == sim::kInvalidEvent) {
            ack_flush_event_ = node_.sim().after(params_.ack_aggregation,
                                                 [this] { flush_ack_batch(); });
        }
        return;
    }
    ack_batch_.push_back(uid);
    flush_ack_batch();
}

void AgfwAgent::flush_ack_batch() {
    ack_flush_event_ = sim::kInvalidEvent;
    if (ack_batch_.empty()) return;
    auto ack = net::make_packet();
    ack->type = net::PacketType::kAgfwAck;
    ack->ack_uids = std::move(ack_batch_);
    ack_batch_.clear();
    ack->uid = fresh_uid();
    ack->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*ack));
    ++stats_.acks_sent;
    stats_.control_bytes += ack->wire_bytes;
    for (const std::uint64_t uid : ack->ack_uids) {
        GEOANON_TRACE(node_.sim(), .type = obs::EventType::kAckSent, .node = node_.id(),
                      .uid = uid, .bytes = ack->wire_bytes, .detail = ack->uid);
    }
    node_.mac().send_broadcast(std::move(ack));
}

void AgfwAgent::last_attempt(const PacketPtr& pkt) {
    auto copy = net::clone_packet(*pkt);
    copy->next_hop_pseudonym = crypto::kLastAttemptPseudonym;
    copy->hops = static_cast<std::uint16_t>(pkt->hops + 1);
    ++stats_.last_attempts;
    stats_.data_bytes += copy->wire_bytes;
    GEOANON_TRACE(node_.sim(), .type = obs::EventType::kLastAttempt, .node = node_.id(),
                  .uid = copy->uid, .flow = copy->flow, .seq = copy->seq,
                  .bytes = copy->wire_bytes);
    node_.mac().send_broadcast(std::move(copy));
}

void AgfwAgent::attempt_trapdoor(const PacketPtr& pkt, std::function<void(bool)> done) {
    ++stats_.trapdoor_attempts;
    GEOANON_TRACE(node_.sim(), .type = obs::EventType::kTrapdoorAttempt,
                  .node = node_.id(), .uid = pkt->uid, .flow = pkt->flow,
                  .seq = pkt->seq);
    charge(engine_.costs().pk_decrypt, [this, pkt, done = std::move(done)] {
        const auto payload = engine_.try_open_trapdoor(node_.id(), pkt->trapdoor);
        if (payload) {
            ++stats_.trapdoor_opens;
            GEOANON_TRACE(node_.sim(), .type = obs::EventType::kTrapdoorOpen,
                          .node = node_.id(), .uid = pkt->uid, .flow = pkt->flow,
                          .seq = pkt->seq);
        }
        done(payload.has_value());
    });
}

void AgfwAgent::deliver_local(const PacketPtr& pkt) {
    ++stats_.delivered;
    GEOANON_TRACE(node_.sim(), .type = obs::EventType::kNetDeliver, .node = node_.id(),
                  .uid = pkt->uid, .flow = pkt->flow, .seq = pkt->seq,
                  .bytes = pkt->wire_bytes);
    if (deliver_) deliver_(node_.id(), *pkt);
}

void AgfwAgent::on_packet(const PacketPtr& pkt, MacAddr /*src*/) {
    if (!node_.up()) return;  // radio gates this too; belt and braces
    switch (pkt->type) {
        case net::PacketType::kAgfwHello:
            handle_hello(pkt);
            return;
        case net::PacketType::kAgfwAck:
            for (std::uint64_t uid : pkt->ack_uids)
                resolve_ack(uid, /*implicit=*/false);
            return;
        case net::PacketType::kAgfwData:
        case net::PacketType::kLocUpdate:
        case net::PacketType::kLocRequest:
        case net::PacketType::kLocReply:
        case net::PacketType::kLocReplicate:
        case net::PacketType::kLocDigest:
            break;
        default:
            return;  // GPSR traffic in a mixed network: not ours
    }

    // Implicit/piggybacked ACK (§3.2): overhearing the next hop relaying the
    // same uid onward proves it took custody.
    if (params_.use_net_ack && !pseudonyms_.is_mine(pkt->next_hop_pseudonym) &&
        pending_.contains(pkt->uid)) {
        resolve_ack(pkt->uid, /*implicit=*/true);
    }

    if (pseudonyms_.is_mine(pkt->next_hop_pseudonym)) {
        handle_committed(pkt);
    } else if (pkt->next_hop_pseudonym == crypto::kLastAttemptPseudonym) {
        handle_last_attempt(pkt);
    }
    // Otherwise: committed to someone else — discard (Algorithm 3.2).
}

void AgfwAgent::handle_committed(const PacketPtr& pkt) {
    if (seen(pkt->uid)) {
        // We already processed this packet; our ACK (or forwarded copy) was
        // lost — re-acknowledge explicitly.
        if (params_.use_net_ack) send_ack(pkt->uid);
        return;
    }

    // Location-service packets ride the same anonymous forwarding.
    if (pkt->type != net::PacketType::kAgfwData) {
        mark_seen(pkt->uid);
        if (params_.use_net_ack) send_ack(pkt->uid);
        if (ls_ && ls_->handle(pkt)) return;
        if (!forward_with_recovery(pkt)) {
            if (ls_ && ls_->handle_stuck(pkt)) return;
            ++stats_.stop_no_route;
            GEOANON_TRACE(node_.sim(), .type = obs::EventType::kNetStuck,
                          .node = node_.id(), .uid = pkt->uid);
        }
        return;
    }

    // Algorithm 3.2, committed-forwarder branch.
    if (in_last_hop_region(pkt->dst_loc)) {
        mark_seen(pkt->uid);
        // Decrypting takes 8.5 ms — acknowledge custody first.
        if (params_.use_net_ack) send_ack(pkt->uid);
        attempt_trapdoor(pkt, [this, pkt](bool opened) {
            if (opened) {
                deliver_local(pkt);
            } else if (!try_forward(pkt)) {
                last_attempt(pkt);
            }
        });
        return;
    }

    if (forward_with_recovery(pkt)) {
        mark_seen(pkt->uid);
        // Piggybacked ACK: the forwarded broadcast we just queued doubles as
        // the acknowledgment the previous hop overhears.
        if (params_.use_net_ack && !params_.piggyback_acks) send_ack(pkt->uid);
    } else {
        // Stuck mid-path: do not ACK — the previous hop's timeout will pick
        // an alternate relay (its reroute budget is the recovery §6 defers).
        ++stats_.stop_no_route;
        GEOANON_TRACE(node_.sim(), .type = obs::EventType::kNetStuck,
                      .node = node_.id(), .uid = pkt->uid, .flow = pkt->flow,
                      .seq = pkt->seq);
    }
}

void AgfwAgent::handle_last_attempt(const PacketPtr& pkt) {
    if (seen(pkt->uid)) return;

    if (pkt->type != net::PacketType::kAgfwData) {
        // LS assist/replication copies: consume via the LS, never re-route.
        if (ls_) {
            mark_seen(pkt->uid);
            ls_->handle(pkt);
        }
        return;
    }

    mark_seen(pkt->uid);
    attempt_trapdoor(pkt, [this, pkt](bool opened) {
        if (opened) {
            if (params_.use_net_ack) send_ack(pkt->uid);
            deliver_local(pkt);
        }
        // else: discard (Algorithm 3.2).
    });
}

void AgfwAgent::on_mac_tx_done(const PacketPtr& /*pkt*/, MacAddr /*dst*/,
                               bool /*success*/) {
    // All AGFW transmissions are broadcasts; reliability lives at the
    // network layer (NL-ACK), so MAC completion carries no signal here.
}

void AgfwAgent::publish_metrics(obs::MetricsRegistry& reg) const {
    reg.add("agfw.app_sent", stats_.app_sent);
    reg.add("agfw.delivered", stats_.delivered);
    reg.add("agfw.forwarded", stats_.forwarded);
    reg.add("agfw.retransmissions", stats_.retransmissions);
    reg.add("agfw.drop_no_route", stats_.drop_no_route);
    reg.add("agfw.drop_unreachable", stats_.drop_unreachable);
    reg.add("agfw.drop_no_location", stats_.drop_no_location);
    reg.add("agfw.stop_no_route", stats_.stop_no_route);
    reg.add("agfw.last_attempts", stats_.last_attempts);
    reg.add("agfw.trapdoor_attempts", stats_.trapdoor_attempts);
    reg.add("agfw.trapdoor_opens", stats_.trapdoor_opens);
    reg.add("agfw.acks_sent", stats_.acks_sent);
    reg.add("agfw.implicit_acks", stats_.implicit_acks);
    reg.add("agfw.explicit_acks_received", stats_.explicit_acks_received);
    reg.add("agfw.hello_sent", stats_.hello_sent);
    reg.add("agfw.hello_verified", stats_.hello_verified);
    reg.add("agfw.hello_rejected", stats_.hello_rejected);
    reg.add("agfw.hello_suppressed", stats_.hello_suppressed);
    reg.add("agfw.pseudonym_rotations", stats_.pseudonym_rotations);
    reg.add("agfw.cert_fetches", stats_.cert_fetches);
    reg.add("agfw.control_bytes", stats_.control_bytes);
    reg.add("agfw.data_bytes", stats_.data_bytes);
    reg.add("agfw.perimeter_entries", stats_.perimeter_entries);
    reg.add("agfw.perimeter_forwards", stats_.perimeter_forwards);
    reg.add("agfw.perimeter_recoveries", stats_.perimeter_recoveries);
    reg.add("agfw.perimeter_ttl_drops", stats_.perimeter_ttl_drops);
    if (ls_) ls_->publish_metrics(reg);
}

}  // namespace geoanon::core
