#pragma once

#include <cstddef>
#include <vector>

#include "mobility/mobility.hpp"
#include "util/time.hpp"
#include "util/vec2.hpp"

namespace geoanon::core {

/// A circular silent region (mix zone). Nodes inside it suppress their hello
/// beacons; per-hello pseudonym rotation then guarantees the first beacon
/// after the zone carries a pseudonym the observer never saw entering it.
struct MixZone {
    util::Vec2 center{};
    double radius_m{0.0};

    bool contains(const util::Vec2& p) const {
        return util::distance(p, center) <= radius_m;
    }
};

/// When (and how often) an AGFW node changes the pseudonym on its hellos —
/// the countermeasure axis of the adversary experiments (Amro 2018's mix
/// zones and virtual pseudonym change, plus the paper's native per-hello
/// rotation and a deliberately weak timed rotation as frontier endpoints).
///
/// Semantics (see DESIGN.md §16):
///  - kPerHello: the paper's §3.1.1 rule — a fresh pseudonym on every hello.
///    Baseline; byte-identical to pre-policy behavior.
///  - kTimed: reuse the current pseudonym for rotate_interval before
///    rotating. Cheaper on ANT churn, trivially linkable — the weak end.
///  - kMixZone: per-hello rotation everywhere, plus hello silence inside the
///    configured zones. The silence gap breaks spatio-temporal continuity;
///    the rotation across it is the pseudonym swap.
///  - kVirtualMixZone: per-hello rotation plus periodic unsynchronized
///    silence (vpc_silence every vpc_period, phase drawn per node) — a mix
///    zone every node carries with it, independent of geography.
///
/// Only hellos are suppressed while silent: data forwarding continues, so
/// the cost of a policy is stale-ANT routing damage, not a traffic outage.
struct PseudonymPolicy {
    enum class Kind : std::uint8_t { kPerHello, kTimed, kMixZone, kVirtualMixZone };

    Kind kind{Kind::kPerHello};

    /// kTimed: minimum age of the current pseudonym before the next hello
    /// rotates it.
    util::SimTime rotate_interval{util::SimTime::seconds(30.0)};

    /// kMixZone: the silent regions.
    std::vector<MixZone> zones;

    /// kVirtualMixZone: every vpc_period a node falls silent for
    /// vpc_silence. Phases are per-node (drawn from the node's seeded RNG)
    /// so the network never goes quiet all at once.
    util::SimTime vpc_period{util::SimTime::seconds(60.0)};
    util::SimTime vpc_silence{util::SimTime::seconds(6.0)};

    bool in_zone(const util::Vec2& p) const {
        for (const MixZone& z : zones)
            if (z.contains(p)) return true;
        return false;
    }

    /// Evenly spaced zone centers across the area: `count` circles of
    /// `radius_m` on the horizontal midline (the paper's 1500x300 strip
    /// makes a single row the natural layout). Deterministic.
    static std::vector<MixZone> grid_layout(const mobility::Area& area,
                                            std::size_t count, double radius_m) {
        std::vector<MixZone> zones;
        zones.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            const double x =
                area.width * (static_cast<double>(i) + 0.5) / static_cast<double>(count);
            zones.push_back({{x, area.height * 0.5}, radius_m});
        }
        return zones;
    }

    static const char* kind_name(Kind k) {
        switch (k) {
            case Kind::kPerHello: return "per-hello";
            case Kind::kTimed: return "timed";
            case Kind::kMixZone: return "mix-zone";
            case Kind::kVirtualMixZone: return "virtual-pc";
        }
        return "?";
    }
};

}  // namespace geoanon::core
