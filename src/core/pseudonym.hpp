#pragma once

#include <array>

#include "crypto/engine.hpp"
#include "util/rng.hpp"

namespace geoanon::core {

using crypto::Pseudonym;

/// Manages a node's own rotating pseudonyms (§3.1.1).
///
/// A fresh pseudonym n = hash(pr, id) is generated for every hello message;
/// the node memorizes its *two latest* pseudonyms and accepts packets
/// addressed to either — the paper's rule for bridging a forwarder that
/// picked the pre-rotation table entry.
class PseudonymManager {
  public:
    PseudonymManager(const crypto::CryptoEngine& engine, crypto::NodeIdNum id,
                     util::Rng& rng)
        : engine_(engine), id_(id), rng_(rng) {
        rotate();
    }

    /// Generate and adopt a fresh pseudonym; the previous one stays valid.
    // geoanon: sanitizer(pseudonym)
    Pseudonym rotate() {
        previous_ = current_;
        current_ = engine_.make_pseudonym(id_, rng_.next_u64());
        return current_;
    }

    Pseudonym current() const { return current_; }
    Pseudonym previous() const { return previous_; }

    /// Accept packets addressed to either of the two latest pseudonyms.
    bool is_mine(Pseudonym n) const {
        return n != crypto::kLastAttemptPseudonym && (n == current_ || n == previous_);
    }

  private:
    const crypto::CryptoEngine& engine_;
    crypto::NodeIdNum id_;
    util::Rng& rng_;
    Pseudonym current_{crypto::kLastAttemptPseudonym};
    Pseudonym previous_{crypto::kLastAttemptPseudonym};
};

}  // namespace geoanon::core
