#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "crypto/engine.hpp"
#include "util/time.hpp"
#include "util/vec2.hpp"

namespace geoanon::core {

using crypto::Pseudonym;
using util::SimTime;
using util::Vec2;

/// Anonymous Neighbor Table (§3.1).
///
/// Entries are keyed by pseudonym, not identity, so one physical neighbor
/// appears as several entries as it rotates pseudonyms — intentionally
/// uncorrelatable by the receiver. Forwarding must therefore weigh position
/// *freshness* against raw geographic progress (§3.1.1): a stale "best"
/// position may belong to a node that has long moved away.
class AnonymousNeighborTable {
  public:
    struct Entry {
        Pseudonym n{0};
        Vec2 loc{};
        Vec2 velocity{};  ///< optional motion hint from the hello
        SimTime ts{};     ///< sender timestamp of the hello
        SimTime expires{};
    };

    struct Params {
        SimTime ttl{SimTime::seconds(4.5)};
        /// Position-uncertainty growth rate: an entry aged `a` seconds is
        /// treated as `staleness_penalty_mps * a` metres worse than it looks.
        /// Set to 0 to ablate freshness-aware forwarding.
        double staleness_penalty_mps{10.0};
        /// Dead-reckon entry positions with the velocity hint when present.
        bool use_velocity{true};
        std::size_t max_entries{256};
        /// Silence-based purge: an entry whose hello is older than this is
        /// treated as a dead neighbor regardless of its announced lifetime —
        /// a node that stops beaconing (crash, jam, departure) must not be
        /// selected for its full advertised ttl. Zero disables; AgfwAgent
        /// derives it from k missed hello intervals when left at zero.
        SimTime silence_timeout{};
    };

    explicit AnonymousNeighborTable(Params params) : params_(params) {}

    /// Insert/update an entry from a hello. A repeated pseudonym (same
    /// neighbor, no rotation yet) refreshes in place.
    void insert(const Entry& e);

    /// Drop expired entries (called from the hello tick).
    void purge(SimTime now);

    /// Remove every entry carrying pseudonym `n` (e.g. after repeated
    /// network-layer ACK failures to that pseudonym).
    void erase(Pseudonym n);

    /// Drop every entry (node reboot: the table is volatile state).
    void clear() { entries_.clear(); }

    /// Entry expired — or silent past the silence window (see Params).
    bool stale(const Entry& e, SimTime now) const {
        return e.expires <= now ||
               (params_.silence_timeout > SimTime{} &&
                now - e.ts >= params_.silence_timeout);
    }

    /// Best next hop toward `dst_loc` per the freshness-aware greedy rule.
    /// Only entries making positive effective progress from `my_pos`
    /// qualify; entries in `exclude` are skipped. Returns nullopt at a local
    /// maximum.
    std::optional<Entry> best_next_hop(const Vec2& my_pos, const Vec2& dst_loc,
                                       SimTime now,
                                       const std::vector<Pseudonym>& exclude = {}) const;

    /// Effective position of an entry at `now` (dead-reckoned when enabled).
    Vec2 predicted_position(const Entry& e, SimTime now) const;

    std::size_t size() const { return entries_.size(); }
    const std::vector<Entry>& entries() const { return entries_; }
    const Params& params() const { return params_; }

  private:
    Params params_;
    std::vector<Entry> entries_;
};

}  // namespace geoanon::core
