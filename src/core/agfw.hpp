#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/ant.hpp"
#include "core/pseudonym.hpp"
#include "core/pseudonym_policy.hpp"
#include "crypto/engine.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "routing/location_service.hpp"
#include "routing/wire.hpp"
#include "sim/simulator.hpp"

namespace geoanon::core {

using net::MacAddr;
using net::NodeId;
using net::Packet;
using net::PacketPtr;
using util::Vec2;

/// Anonymous Greedy Forwarding agent — the paper's scheme (§3).
///
/// - ANT (§3.1): pseudonymous hello beacons, optionally ring-signed for the
///   (k+1)-anonymous authenticated table.
/// - AGFW (§3.2): data header ⟨DATA, loc_d, n, trapdoor⟩; every transmission
///   is a local broadcast with no MAC addresses; only nodes inside the
///   last-hop region attempt the trapdoor; a stuck last-hop forwarder emits
///   the "last forwarding attempt" with n = 0. Reliability (the AGFW-ACK
///   variant of Figure 1) comes from broadcast network-layer ACKs, with
///   the forwarded copy itself acting as an implicit/piggybacked ACK.
/// - ALS (§3.3): optional anonymous location service; Figure-1 runs use the
///   perfect-location oracle instead, exactly as the paper's evaluation did.
class AgfwAgent final : public net::RoutingAgent {
  public:
    struct Params {
        util::SimTime hello_interval{util::SimTime::seconds(1.5)};
        util::SimTime hello_jitter{util::SimTime::seconds(0.5)};
        AnonymousNeighborTable::Params ant{};
        /// ANT silence-based purge, in missed hello intervals: a neighbor
        /// whose newest hello is older than this many intervals (plus the
        /// jitter bound) is treated as crashed even if its announced entry
        /// lifetime has not elapsed. Matches §3.1.1's rule that only a
        /// node's two latest pseudonyms are answered. 0 disables; ignored
        /// when ant.silence_timeout is set explicitly.
        int ant_silence_hellos{2};

        /// false reproduces the paper's "simple form of AGFW with no packet
        /// acknowledgment" curve.
        bool use_net_ack{true};
        util::SimTime ack_timeout{util::SimTime::millis(40)};
        /// Double the retransmit timeout on every attempt. On by default:
        /// fixed timers amplify congestion hotspots into retransmission
        /// storms (see bench/ablation_ack for the comparison).
        bool ack_backoff{true};
        /// Rebroadcasts to the same next hop before rerouting. One retry +
        /// quick rerouting beats hammering a dead pseudonym.
        int ack_retries{1};
        int reroute_limit{3};  ///< alternate next hops after ACK failure
        /// Rely on the overheard forwarded copy as an implicit ACK when the
        /// committed forwarder immediately relays (§3.2's piggybacking).
        bool piggyback_acks{true};
        /// §3.2: an ACK "does not necessarily acknowledge only one received
        /// packet at a time". Non-zero: collect uids for this long and send
        /// them as one ACK packet. Zero (default): acknowledge immediately.
        util::SimTime ack_aggregation{util::SimTime::zero()};

        /// Ring-signed hellos (§3.1.2): authenticated, (k+1)-anonymous ANT.
        bool authenticated_hello{false};
        std::size_t ring_k{4};  ///< k other signers besides the sender
        /// Send certificates by reference, fetching unknown ones once (§4).
        bool certs_by_reference{true};

        /// When and how often hellos change their pseudonym — the
        /// countermeasure axis of the adversary experiments (DESIGN.md §16).
        /// The default (per-hello rotation) is the paper's §3.1.1 behavior
        /// and is bit-identical to the pre-policy code path.
        PseudonymPolicy pseudonym_policy{};

        /// Charge the modeled crypto CPU delays (§5: 0.5 ms / 8.5 ms).
        bool charge_crypto_costs{true};
        /// Attach a velocity hint to hellos (§3.1.1 predictable motion).
        bool send_velocity_hint{true};

        util::SimTime seen_ttl{util::SimTime::seconds(10.0)};
        util::SimTime blacklist_ttl{util::SimTime::seconds(5.0)};
        /// ALS result cache TTL (per-packet queries would flood the grid).
        util::SimTime loc_cache_ttl{util::SimTime::seconds(8.0)};

        /// Perimeter-mode recovery at greedy local maxima — the extension §6
        /// leaves to future work. Off by default (the paper's AGFW drops at
        /// dead ends); bench/ablation_perimeter measures the gain.
        bool enable_perimeter{false};
        /// Safety TTL for a face traversal (perimeter hops per packet).
        int perimeter_hop_limit{32};
    };

    struct Stats {
        std::uint64_t app_sent{0};
        std::uint64_t delivered{0};
        std::uint64_t forwarded{0};          ///< data broadcasts (first copies)
        std::uint64_t retransmissions{0};    ///< NL-ACK driven rebroadcasts
        std::uint64_t drop_no_route{0};      ///< greedy local maximum
        std::uint64_t drop_unreachable{0};   ///< NL-ACK + reroutes exhausted
        std::uint64_t drop_no_location{0};
        std::uint64_t stop_no_route{0};      ///< committed relay stuck (diag)
        std::uint64_t last_attempts{0};
        std::uint64_t trapdoor_attempts{0};
        std::uint64_t trapdoor_opens{0};
        std::uint64_t acks_sent{0};
        std::uint64_t implicit_acks{0};
        std::uint64_t explicit_acks_received{0};
        std::uint64_t hello_sent{0};
        std::uint64_t hello_verified{0};
        std::uint64_t hello_rejected{0};
        /// Hello slots skipped by the pseudonym policy (mix-zone / VPC
        /// silence) — the visibility cost of the countermeasure.
        std::uint64_t hello_suppressed{0};
        std::uint64_t pseudonym_rotations{0};
        std::uint64_t cert_fetches{0};       ///< unknown ring certs fetched (§4)
        std::uint64_t control_bytes{0};      ///< hellos + ACKs + cert traffic
        std::uint64_t data_bytes{0};
        std::uint64_t perimeter_entries{0};  ///< greedy failures recovered into
        std::uint64_t perimeter_forwards{0};
        std::uint64_t perimeter_recoveries{0};  ///< returned to greedy closer to D
        std::uint64_t perimeter_ttl_drops{0};
    };

    using DeliverFn = std::function<void(NodeId, const Packet&)>;
    using LocateFn = std::function<std::optional<Vec2>(NodeId)>;

    /// `ring_universe` lists all valid user identities the sender may draw
    /// ring members from (§3.1.2: "randomly select k public keys among all
    /// valid users").
    AgfwAgent(net::Node& node, Params params, crypto::CryptoEngine& engine,
              std::vector<crypto::NodeIdNum> ring_universe, LocateFn locate,
              DeliverFn deliver);

    /// Attach the anonymous location service (§3.3) in place of the oracle.
    void enable_location_service(routing::LocationService::Mode mode,
                                 routing::GridMap grid,
                                 routing::LocationService::Params ls_params,
                                 std::vector<NodeId> contacts);
    routing::LocationService* location_service() { return ls_.get(); }

    void start() override;
    void send_data(NodeId dst, net::FlowId flow, std::uint32_t seq, net::Bytes body) override;
    void on_packet(const PacketPtr& pkt, MacAddr src) override;
    void on_mac_tx_done(const PacketPtr& pkt, MacAddr dst, bool success) override;
    void on_node_restart() override;
    std::string name() const override;

    /// Geo-route an already-built packet toward pkt->dst_loc (location
    /// service traffic; also used by tests).
    void route_packet(std::shared_ptr<Packet> pkt);

    const Stats& stats() const { return stats_; }
    /// Fold this agent's counters (and its location service's, when one is
    /// attached) into the run metrics (agfw.*, ls.*).
    void publish_metrics(obs::MetricsRegistry& reg) const;
    const AnonymousNeighborTable& ant() const { return ant_; }
    const PseudonymManager& pseudonyms() const { return pseudonyms_; }
    const Params& params() const { return params_; }

  private:
    struct PendingAck {
        std::shared_ptr<Packet> copy;  ///< exact packet to rebroadcast
        Pseudonym next_hop{0};
        int attempts{0};
        int reroutes{0};
        std::vector<Pseudonym> tried;
        sim::EventId timer{sim::kInvalidEvent};
        /// Right-hand-rule reference for rerouting perimeter packets.
        Vec2 came_from{};
        bool was_perimeter{false};
    };

    void send_hello();
    /// Is the pseudonym policy holding this node's beacon right now (inside
    /// a mix zone, or in a virtual-pseudonym-change silence slot)?
    bool policy_silent(util::SimTime now) const;
    void handle_hello(const PacketPtr& pkt);
    void admit_hello(const PacketPtr& pkt);
    void handle_committed(const PacketPtr& pkt);
    void handle_last_attempt(const PacketPtr& pkt);
    void attempt_trapdoor(const PacketPtr& pkt, std::function<void(bool)> done);
    void deliver_local(const PacketPtr& pkt);

    /// Greedy-forward `pkt` to a fresh next hop; returns false at local max.
    bool try_forward(const PacketPtr& pkt, std::vector<Pseudonym> exclude = {});
    /// Perimeter-mode forwarding (right-hand rule over the RNG-planarized
    /// ANT). `came_from` is the incoming edge reference: the destination
    /// line when entering, the previous hop's position when continuing.
    bool try_perimeter(const PacketPtr& pkt, const Vec2& came_from,
                       std::vector<Pseudonym> exclude = {});
    /// Greedy with perimeter fallback (the §6 extension when enabled).
    bool forward_with_recovery(const PacketPtr& pkt);
    void register_pending(const std::shared_ptr<Packet>& copy, Pseudonym next,
                          const Vec2& came_from, bool was_perimeter);
    void broadcast_copy(const std::shared_ptr<Packet>& copy, bool retransmission);
    void arm_ack_timer(std::uint64_t uid);
    void on_ack_timeout(std::uint64_t uid);
    void resolve_ack(std::uint64_t uid, bool implicit);
    void send_ack(std::uint64_t uid);
    void flush_ack_batch();
    void last_attempt(const PacketPtr& pkt);

    bool in_last_hop_region(const Vec2& dst_loc) const;
    bool seen(std::uint64_t uid) const { return seen_.contains(uid); }
    void mark_seen(std::uint64_t uid);
    void purge_soft_state();
    std::vector<Pseudonym> active_blacklist() const;
    void charge(util::SimTime cost, std::function<void()> done);
    /// Globally unique data-packet uid. The (id, counter) pair guarantees
    /// uniqueness across sources; the PRP hides that layout on the wire —
    /// raw (id << 32 | counter) uids would name the data source on every
    /// frame, and on every ACK that echoes the uid back (GL010's headline
    /// finding before this sanitized).
    std::uint64_t fresh_uid() {
        return engine_.anonymize_uid(
            (static_cast<std::uint64_t>(node_.id()) << 32) | next_uid_++);
    }

    net::Node& node_;
    Params params_;
    crypto::CryptoEngine& engine_;
    std::vector<crypto::NodeIdNum> ring_universe_;
    LocateFn locate_;
    DeliverFn deliver_;

    PseudonymManager pseudonyms_;
    AnonymousNeighborTable ant_;
    sim::PeriodicTimer hello_timer_;
    /// Pseudonym-policy state: when the pseudonym last rotated (kTimed) and
    /// this node's silence phase (kVirtualMixZone; drawn from the node RNG
    /// only when that policy is active, so other configs' RNG streams are
    /// untouched).
    util::SimTime last_rotation_{};
    util::SimTime vpc_phase_{};
    bool rotated_once_{false};

    std::unordered_map<std::uint64_t, util::SimTime> seen_;
    std::unordered_map<Pseudonym, util::SimTime> blacklist_;  // value: expiry
    std::unordered_map<std::uint64_t, PendingAck> pending_;
    /// Aggregated-ACK batch (ack_aggregation > 0).
    std::vector<std::uint64_t> ack_batch_;
    sim::EventId ack_flush_event_{sim::kInvalidEvent};
    /// Certificates this node already holds (§4 cert-by-reference model).
    std::unordered_map<crypto::NodeIdNum, bool> known_certs_;

    std::unique_ptr<routing::LocationService> ls_;
    /// ALS result cache: dst -> (location, resolved-at).
    std::unordered_map<NodeId, std::pair<Vec2, util::SimTime>> loc_cache_;
    std::uint32_t next_uid_{1};
    Stats stats_;
};

}  // namespace geoanon::core
