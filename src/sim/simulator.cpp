#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace geoanon::sim {

EventId Simulator::at(SimTime t, Callback cb) {
    const EventId id = next_id_++;
    if (t < now_) t = now_;
    heap_.push(Event{t, next_seq_++, id, std::move(cb)});
    live_.push_back(true);  // ids are sequential: live_[id - 1]
    peak_pending_ = std::max(peak_pending_, pending_events());
    return id;
}

void Simulator::cancel(EventId id) {
    if (id == kInvalidEvent || id - 1 >= live_.size() || !live_[id - 1]) return;
    cancelled_.insert(id);
}

bool Simulator::pop_runnable(Event& out, SimTime end) {
    while (!heap_.empty()) {
        if (heap_.top().time > end) return false;
        // priority_queue::top() is const; move out via const_cast on the
        // callback only after we have committed to popping this event.
        out = std::move(const_cast<Event&>(heap_.top()));
        heap_.pop();
        live_[out.id - 1] = false;
        if (auto it = cancelled_.find(out.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        return true;
    }
    return false;
}

void Simulator::run_until(SimTime end) {
    stopped_ = false;
    Event ev;
    while (!stopped_ && pop_runnable(ev, end)) {
        now_ = ev.time;
        ++processed_;
        ev.cb();
    }
    if (!stopped_ && now_ < end) now_ = end;
}

void Simulator::run() { run_until(SimTime::max()); }

void PeriodicTimer::start(Simulator& sim, SimTime period, SimTime first_delay,
                          std::function<void()> tick) {
    stop();
    sim_ = &sim;
    period_ = period;
    tick_ = std::move(tick);
    arm(first_delay);
}

void PeriodicTimer::arm(SimTime delay) {
    pending_ = sim_->after(delay, [this] {
        pending_ = kInvalidEvent;
        // Re-arm before ticking so the callback may stop() the timer.
        arm(period_);
        tick_();
    });
}

void PeriodicTimer::stop() {
    if (sim_ != nullptr && pending_ != kInvalidEvent) sim_->cancel(pending_);
    pending_ = kInvalidEvent;
    sim_ = nullptr;
}

}  // namespace geoanon::sim
