#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <utility>

namespace geoanon::sim {

QueueKind Simulator::default_queue_kind() {
    return std::getenv("GEOANON_HEAP_QUEUE") != nullptr ? QueueKind::kBinaryHeap
                                                        : QueueKind::kTimerWheel;
}

Simulator::Simulator(QueueKind kind) : kind_(kind) {
    for (Level& level : wheel_) {
        level.head.fill(kNil);
        level.bits.fill(0);
    }
}

// geoanon: hot
std::uint32_t Simulator::allocate_record() {
    const std::uint32_t idx = free_head_;
    if (idx == kNil) return grow_slab();
    free_head_ = slab_[idx].next;
    return idx;
}

std::uint32_t Simulator::grow_slab() {
    slab_.emplace_back();
    return static_cast<std::uint32_t>(slab_.size() - 1);
}

// geoanon: hot
void Simulator::free_record(std::uint32_t idx) {
    Record& rec = slab_[idx];
    rec.cb.reset();
    rec.next = free_head_;
    free_head_ = idx;
}

// geoanon: hot
EventId Simulator::schedule(SimTime t, Callback cb) {
    const EventId id = next_id_++;
    if (t < now_) t = now_;
    const std::uint32_t idx = allocate_record();
    Record& rec = slab_[idx];
    rec.time_ns = t.ns();
    rec.id = id;
    rec.cb = std::move(cb);
    live_.push_back(true);  // ids are sequential: live_[id - 1]
    enqueue(idx);
    ++pending_;
    peak_pending_ = std::max(peak_pending_, pending_);
    return id;
}

void Simulator::cancel(EventId id) {
    if (id == kInvalidEvent || id - 1 >= live_.size() || !live_[id - 1]) return;
    live_[id - 1] = false;
    --pending_;
    // The record itself stays queued as a zombie and is retired (freed
    // without firing) when the pop path reaches it.
}

// geoanon: hot
void Simulator::enqueue(std::uint32_t idx) {
    if (kind_ == QueueKind::kBinaryHeap) {
        heap_.push_back(idx);
        std::push_heap(heap_.begin(), heap_.end(),
                       [this](std::uint32_t a, std::uint32_t b) { return earlier(b, a); });
        return;
    }
    wheel_insert(idx);
}

// geoanon: hot
void Simulator::wheel_insert(std::uint32_t idx, bool bulk) {
    const std::int64_t tick = slab_[idx].time_ns >> kGranularityBits;
    // At or behind the wheel cursor (same tick as the cursor, or earlier:
    // run_until can clamp now_ behind an already-advanced cursor): the event
    // belongs to the active list, ahead of everything still in the wheel.
    if (tick <= wheel_tick_) {
        active_push(idx, bulk);
        return;
    }
    // Absolute-time slot indexing: the level is the highest byte in which
    // the event's tick differs from the cursor's. Everything at that level
    // shares the higher bytes with the cursor, so the slot is strictly ahead
    // of the cursor's position in that level and will be found by the
    // forward scan — no modular wrap to reason about.
    const auto diff = static_cast<std::uint64_t>(tick ^ wheel_tick_);
    const int level = (63 - std::countl_zero(diff)) / kLevelBits;
    if (level >= kLevels) {
        overflow_.push_back(idx);  // geoanon-lint: allow(hot-alloc) -- rare far-future events; amortized by vector growth
        return;
    }
    wheel_place(level, static_cast<int>((tick >> (level * kLevelBits)) & (kSlots - 1)), idx);
}

// geoanon: hot
void Simulator::wheel_place(int level, int slot, std::uint32_t idx) {
    Level& lv = wheel_[static_cast<std::size_t>(level)];
    slab_[idx].next = lv.head[static_cast<std::size_t>(slot)];
    lv.head[static_cast<std::size_t>(slot)] = idx;
    lv.bits[static_cast<std::size_t>(slot >> 6)] |= std::uint64_t{1} << (slot & 63);
    ++wheel_count_;
}

// geoanon: hot
void Simulator::active_push(std::uint32_t idx, bool bulk) {
    const Record& rec = slab_[idx];
    const QEntry e{rec.time_ns, rec.id, idx};
    if (bulk) {
        // Refill path: append now, sort once in active_commit().
        active_.push_back(e);  // geoanon-lint: allow(hot-alloc) -- capacity reached at peak concurrency, then reused
        active_dirty_ = true;
        return;
    }
    // Live schedule into the current tick (rare relative to refills): ordered
    // insert keeps the descending sort so pops stay pop_back().
    active_.insert(std::upper_bound(active_.begin(), active_.end(), e, LaterOnTop{}),
                   e);  // geoanon-lint: allow(hot-alloc) -- capacity reached at peak concurrency, then reused
}

// geoanon: hot
void Simulator::active_commit() {
    if (!active_dirty_) return;
    std::sort(active_.begin(), active_.end(), LaterOnTop{});
    active_dirty_ = false;
}

// geoanon: hot
std::uint32_t Simulator::active_pop() {
    const std::uint32_t idx = active_.back().idx;
    active_.pop_back();
    return idx;
}

namespace {
/// First set bit at position >= from in a 256-bit occupancy map, or -1.
int find_bit(const std::array<std::uint64_t, 4>& bits, int from) {
    int word = from >> 6;
    std::uint64_t w = bits[static_cast<std::size_t>(word)] & (~std::uint64_t{0} << (from & 63));
    while (true) {
        if (w != 0) return word * 64 + std::countr_zero(w);
        if (++word == 4) return -1;
        w = bits[static_cast<std::size_t>(word)];
    }
}
}  // namespace

// Advance the wheel cursor to the next occupied slot and move its events
// into the active list (directly for level 0; by cascading re-insertion for
// higher levels). Returns false when wheel and overflow are both empty.
// All inserts below are bulk (unsorted appends); active_commit() sorts once
// on every path that returns true, restoring the descending invariant.
// geoanon: hot
bool Simulator::wheel_refill() {
    while (true) {
        // A cascade (or overflow redistribution) may have fed events whose
        // tick equals the new cursor straight into active_ — done if so.
        if (!active_.empty()) {
            active_commit();
            return true;
        }
        bool cascaded = false;
        for (int level = 0; level < kLevels; ++level) {
            const int base =
                static_cast<int>((wheel_tick_ >> (level * kLevelBits)) & (kSlots - 1));
            // Level 0's own slot is always drained into active_ already
            // (inserts at the cursor tick go straight there), so scanning
            // from `base` inclusive is safe; higher levels scan strictly
            // ahead because the cursor's slot there holds the lower levels.
            const int from = level == 0 ? base : base + 1;
            if (from >= kSlots) continue;
            Level& lv = wheel_[static_cast<std::size_t>(level)];
            const int slot = find_bit(lv.bits, from);
            if (slot < 0) continue;
            std::uint32_t head = lv.head[static_cast<std::size_t>(slot)];
            lv.head[static_cast<std::size_t>(slot)] = kNil;
            lv.bits[static_cast<std::size_t>(slot >> 6)] &=
                ~(std::uint64_t{1} << (slot & 63));
            if (level == 0) {
                wheel_tick_ = (wheel_tick_ & ~std::int64_t{kSlots - 1}) | slot;
            } else {
                // Jump the cursor to the start of this higher-level slot
                // (lower digits zeroed) and cascade its list: each event
                // re-inserts at a lower level, or into active_ if it sits
                // exactly at the new cursor tick.
                const int shift = (level + 1) * kLevelBits;
                wheel_tick_ = ((wheel_tick_ >> shift) << shift) |
                              (static_cast<std::int64_t>(slot) << (level * kLevelBits));
            }
            while (head != kNil) {
                const std::uint32_t next = slab_[head].next;
                // The list hops across the slab; overlap the next record's
                // (likely cold) line with this one's re-insert.
                if (next != kNil) __builtin_prefetch(&slab_[next]);
                --wheel_count_;
                wheel_insert(head, /*bulk=*/true);
                head = next;
            }
            if (level == 0) {
                active_commit();
                return true;
            }
            cascaded = true;
            break;  // restart the scan at level 0 from the advanced cursor
        }
        if (cascaded) continue;
        // Wheel fully drained: redistribute the overflow bucket (if any)
        // with the cursor jumped to its earliest event, which then lands at
        // level 0 or directly in active_ — guaranteed progress.
        if (overflow_.empty()) return false;
        std::size_t min_at = 0;
        for (std::size_t i = 1; i < overflow_.size(); ++i) {
            if (earlier(overflow_[i], overflow_[min_at])) min_at = i;
        }
        wheel_tick_ = slab_[overflow_[min_at]].time_ns >> kGranularityBits;
        // Compact in place: events still beyond the horizon keep their slot,
        // now-representable ones move into the wheel (or active_).
        std::size_t keep = 0;
        for (const std::uint32_t idx : overflow_) {
            const std::int64_t tick = slab_[idx].time_ns >> kGranularityBits;
            const auto diff = static_cast<std::uint64_t>(tick ^ wheel_tick_);
            if (diff != 0 && (63 - std::countl_zero(diff)) / kLevelBits >= kLevels) {
                overflow_[keep++] = idx;
            } else {
                wheel_insert(idx, /*bulk=*/true);
            }
        }
        overflow_.resize(keep);
    }
}

// geoanon: hot
bool Simulator::next_event(SimTime end, SimTime& t, Callback& cb) {
    while (true) {
        std::uint32_t idx = kNil;
        if (kind_ == QueueKind::kBinaryHeap) {
            if (heap_.empty()) return false;
            if (slab_[heap_.front()].time_ns > end.ns()) return false;
            std::pop_heap(heap_.begin(), heap_.end(),
                          [this](std::uint32_t a, std::uint32_t b) { return earlier(b, a); });
            idx = heap_.back();
            heap_.pop_back();
        } else {
            if (active_.empty() && !wheel_refill()) return false;
            if (active_.back().time_ns > end.ns()) return false;
            idx = active_pop();
            // Start pulling the next event's record in while this one runs;
            // the slab is large enough at 10k+ nodes that the dependent load
            // would otherwise miss.
            if (!active_.empty()) __builtin_prefetch(&slab_[active_.back().idx]);
        }
        Record& rec = slab_[idx];
        if (!live_[rec.id - 1]) {
            free_record(idx);  // cancelled: retire the zombie and keep looking
            continue;
        }
        live_[rec.id - 1] = false;
        t = SimTime::nanos(rec.time_ns);
        // Move the callback out and free the record BEFORE invoking: the
        // callback may schedule new events, growing the slab.
        cb = std::move(rec.cb);
        free_record(idx);
        return true;
    }
}

void Simulator::run_until(SimTime end) {
    stopped_ = false;
    SimTime t;
    Callback cb;
    while (!stopped_ && next_event(end, t, cb)) {
        now_ = t;
        --pending_;
        ++processed_;
        cb();
        cb.reset();
    }
    if (!stopped_ && now_ < end) now_ = end;
}

void Simulator::run() { run_until(SimTime::max()); }

void PeriodicTimer::start(Simulator& sim, SimTime period, SimTime first_delay,
                          std::function<void()> tick) {
    stop();
    sim_ = &sim;
    period_ = period;
    jitter_ = SimTime::zero();
    jitter_rng_ = nullptr;
    tick_ = std::move(tick);
    arm(first_delay);
}

void PeriodicTimer::start(Simulator& sim, SimTime period, SimTime first_delay,
                          SimTime jitter, util::Rng& rng, std::function<void()> tick) {
    stop();
    sim_ = &sim;
    period_ = period;
    jitter_ = jitter;
    jitter_rng_ = &rng;
    tick_ = std::move(tick);
    arm(first_delay);
}

void PeriodicTimer::arm(SimTime delay) {
    if (jitter_rng_ != nullptr && jitter_ > SimTime::zero()) {
        delay += SimTime::nanos(
            jitter_rng_->uniform_int(std::int64_t{0}, jitter_.ns()));
    }
    pending_ = sim_->after(delay, [this] {
        pending_ = kInvalidEvent;
        // Re-arm before ticking so the callback may stop() the timer.
        arm(period_);
        tick_();
    });
}

void PeriodicTimer::stop() {
    if (sim_ != nullptr && pending_ != kInvalidEvent) sim_->cancel(pending_);
    pending_ = kInvalidEvent;
    sim_ = nullptr;
}

}  // namespace geoanon::sim
