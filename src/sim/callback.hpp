#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace geoanon::sim {

/// Move-only type-erased callable with small-buffer optimization.
///
/// Every event in the kernel carries one of these. std::function is the wrong
/// tool on that path: it is copyable (so captured state must be copyable),
/// and libstdc++'s 16-byte inline buffer spills the typical simulator lambda
/// (a `this` pointer plus two or three words of context) to the heap — one
/// malloc/free pair per scheduled event. Callback inlines captures up to
/// kInlineBytes and supports move-only state (PacketPtr, pooled buffers), so
/// steady-state scheduling allocates nothing.
class Callback {
  public:
    /// Inline capture budget. Sized for the largest hot-path lambda in the
    /// tree (Channel's end-of-airtime event: 3 words of context plus a
    /// pooled-slot index); anything bigger falls back to one heap node.
    /// Chosen so a whole event record stays at 80 bytes.
    static constexpr std::size_t kInlineBytes = 40;

    Callback() noexcept = default;

    template <typename F>
        requires(!std::is_same_v<std::decay_t<F>, Callback> &&
                 std::is_invocable_r_v<void, std::decay_t<F>&>)
    Callback(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(void*) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
            invoke_ = [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); };
            relocate_ = [](void* src, void* dst) noexcept {
                Fn* fn = std::launder(reinterpret_cast<Fn*>(src));
                if (dst != nullptr) ::new (dst) Fn(std::move(*fn));
                fn->~Fn();
            };
        } else {
            ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
            invoke_ = [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); };
            relocate_ = [](void* src, void* dst) noexcept {
                Fn** slot = std::launder(reinterpret_cast<Fn**>(src));
                if (dst != nullptr) {
                    ::new (dst) Fn*(*slot);  // pointer itself is trivially destructible
                } else {
                    delete *slot;
                }
            };
        }
    }

    Callback(Callback&& o) noexcept : invoke_(o.invoke_), relocate_(o.relocate_) {
        if (relocate_ != nullptr) o.relocate_(o.storage_, storage_);
        o.invoke_ = nullptr;
        o.relocate_ = nullptr;
    }

    Callback& operator=(Callback&& o) noexcept {
        if (this != &o) {
            reset();
            invoke_ = o.invoke_;
            relocate_ = o.relocate_;
            if (relocate_ != nullptr) o.relocate_(o.storage_, storage_);
            o.invoke_ = nullptr;
            o.relocate_ = nullptr;
        }
        return *this;
    }

    Callback(const Callback&) = delete;
    Callback& operator=(const Callback&) = delete;

    ~Callback() { reset(); }

    void operator()() { invoke_(storage_); }

    explicit operator bool() const noexcept { return invoke_ != nullptr; }

    void reset() noexcept {
        if (relocate_ != nullptr) relocate_(storage_, nullptr);
        invoke_ = nullptr;
        relocate_ = nullptr;
    }

  private:
    using Invoke = void (*)(void*);
    /// Move-construct the callable from src into dst and destroy src;
    /// dst == nullptr destroys only.
    using Relocate = void (*)(void* src, void* dst) noexcept;

    Invoke invoke_{nullptr};
    Relocate relocate_{nullptr};
    alignas(void*) unsigned char storage_[kInlineBytes];
};

}  // namespace geoanon::sim
