#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace geoanon::obs {
class TraceRecorder;
}  // namespace geoanon::obs

namespace geoanon::sim {

using util::SimTime;

/// Handle for a scheduled event; usable with Simulator::cancel().
/// Value 0 is never issued and acts as "no event".
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Single-threaded discrete-event simulator.
///
/// Events scheduled for the same timestamp run in FIFO order of scheduling,
/// which (together with the integer SimTime clock and seeded RNGs) makes every
/// run bit-reproducible. Callbacks may freely schedule and cancel further
/// events, including at the current time.
class Simulator {
  public:
    using Callback = std::function<void()>;

    /// Current simulation time. Monotonically non-decreasing.
    SimTime now() const { return now_; }

    /// Schedule `cb` at absolute time `t` (clamped to now if in the past).
    EventId at(SimTime t, Callback cb);

    /// Schedule `cb` after relative delay `d` from now. Saturates at
    /// SimTime::max(): after run() drains the queue the clock sits at the
    /// "infinitely far" sentinel, and now_ + d must not overflow (UB).
    EventId after(SimTime d, Callback cb) {
        const SimTime t =
            SimTime::max() - now_ < d ? SimTime::max() : now_ + d;
        return at(t, std::move(cb));
    }

    /// Cancel a pending event. Cancelling an already-fired or invalid id is a
    /// harmless no-op (common when a timer races its own completion) and does
    /// not perturb pending-event accounting.
    void cancel(EventId id);

    /// Run until the queue drains or `end` is reached; the clock is advanced
    /// to `end` even if the queue drains earlier (so periodic measurements
    /// relative to now() behave intuitively).
    void run_until(SimTime end);

    /// Run until the queue drains or stop() is called.
    void run();

    /// Request that the run loop exits after the current callback.
    void stop() { stopped_ = true; }

    /// Observability hook: when non-null, every layer holding this simulator
    /// records typed events through the GEOANON_TRACE macro (src/obs/). Left
    /// null (the default), tracing costs one pointer load + branch per site.
    /// The recorder is owned by the caller and must outlive the run.
    obs::TraceRecorder* trace() const { return trace_; }
    void set_trace(obs::TraceRecorder* recorder) { trace_ = recorder; }

    std::uint64_t events_processed() const { return processed_; }
    /// Events scheduled and neither fired nor cancelled. cancelled_ only ever
    /// holds ids still in the heap (cancel() checks liveness), so the
    /// difference cannot underflow even when cancels outlive their events.
    std::size_t pending_events() const { return heap_.size() - cancelled_.size(); }
    /// High-water mark of pending_events() over the simulator's lifetime.
    std::size_t peak_pending() const { return peak_pending_; }

  private:
    struct Event {
        SimTime time;
        std::uint64_t seq;  // tie-break: FIFO among same-time events
        EventId id;
        Callback cb;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    bool pop_runnable(Event& out, SimTime end);

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::unordered_set<EventId> cancelled_;
    /// live_[id - 1] is true while event `id` sits in the heap. Ids are
    /// issued sequentially, so this is a dense bitmap, not a hash set.
    std::vector<bool> live_;
    SimTime now_{SimTime::zero()};
    std::uint64_t next_seq_{0};
    EventId next_id_{1};
    std::uint64_t processed_{0};
    std::size_t peak_pending_{0};
    bool stopped_{false};
    obs::TraceRecorder* trace_{nullptr};
};

/// Repeating timer bound to a Simulator. Calls `tick` every `period`
/// (optionally with uniform jitter in [0, jitter]) until stopped or destroyed.
class PeriodicTimer {
  public:
    PeriodicTimer() = default;
    PeriodicTimer(const PeriodicTimer&) = delete;
    PeriodicTimer& operator=(const PeriodicTimer&) = delete;
    ~PeriodicTimer() { stop(); }

    /// Start ticking. `first_delay` offsets the initial tick (use a random
    /// phase to desynchronize beacons across nodes).
    void start(Simulator& sim, SimTime period, SimTime first_delay,
               std::function<void()> tick);
    void stop();
    bool running() const { return sim_ != nullptr; }

  private:
    void arm(SimTime delay);

    Simulator* sim_{nullptr};
    SimTime period_{};
    std::function<void()> tick_;
    EventId pending_{kInvalidEvent};
};

}  // namespace geoanon::sim
