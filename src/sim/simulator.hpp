#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/callback.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace geoanon::obs {
class TraceRecorder;
}  // namespace geoanon::obs

namespace geoanon::sim {

using util::SimTime;

/// Handle for a scheduled event; usable with Simulator::cancel().
/// Value 0 is never issued and acts as "no event".
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Event-queue kernel selection. The timer wheel is the production kernel;
/// the binary heap is the pre-wheel kernel kept as a differential baseline
/// (bench/scaling_grid --differential) and escape hatch, selectable per
/// process with the GEOANON_HEAP_QUEUE environment variable — mirroring
/// GEOANON_BRUTE_FORCE_CHANNEL for the spatial index. Both kernels pop
/// events in exactly (time, id) order, so every run is bit-identical
/// between them.
enum class QueueKind {
    kTimerWheel,
    kBinaryHeap,
};

/// Single-threaded discrete-event simulator.
///
/// Events scheduled for the same timestamp run in FIFO order of scheduling,
/// which (together with the integer SimTime clock and seeded RNGs) makes every
/// run bit-reproducible. Callbacks may freely schedule and cancel further
/// events, including at the current time.
///
/// Internally events live in a slab arena with freelist reuse (steady-state
/// scheduling performs zero heap allocations), ordered by a hierarchical
/// timer wheel: 6 levels of 256 slots over 2^9 ns ticks cover ~4 simulated
/// years; anything farther (e.g. the SimTime::max() saturation sentinel)
/// waits in an overflow bucket that is redistributed when the wheel drains
/// down to it. FIFO among same-time events falls out of the (time, id)
/// ordering: ids are issued sequentially, so the id doubles as the legacy
/// `seq` tie-break counter.
class Simulator {
  public:
    using Callback = sim::Callback;

    /// Kernel for new simulators: the timer wheel, unless GEOANON_HEAP_QUEUE
    /// is set in the environment.
    static QueueKind default_queue_kind();

    explicit Simulator(QueueKind kind = default_queue_kind());

    QueueKind queue_kind() const { return kind_; }

    /// Current simulation time. Monotonically non-decreasing.
    SimTime now() const { return now_; }

    /// Schedule `f` at absolute time `t` (clamped to now if in the past).
    /// Perfect-forwarded so the Callback materializes directly in the
    /// schedule() parameter — no intermediate moves on the hot path.
    template <typename F>
    EventId at(SimTime t, F&& f) {
        return schedule(t, Callback(std::forward<F>(f)));
    }

    /// Schedule `f` after relative delay `d` from now. Saturates at
    /// SimTime::max(): after run() drains the queue the clock sits at the
    /// "infinitely far" sentinel, and now_ + d must not overflow (UB).
    template <typename F>
    EventId after(SimTime d, F&& f) {
        const SimTime t =
            SimTime::max() - now_ < d ? SimTime::max() : now_ + d;
        return schedule(t, Callback(std::forward<F>(f)));
    }

    /// Cancel a pending event. Cancelling an already-fired or invalid id is a
    /// harmless no-op (common when a timer races its own completion) and does
    /// not perturb pending-event accounting.
    void cancel(EventId id);

    /// Run until the queue drains or `end` is reached; the clock is advanced
    /// to `end` even if the queue drains earlier (so periodic measurements
    /// relative to now() behave intuitively).
    void run_until(SimTime end);

    /// Run until the queue drains or stop() is called.
    void run();

    /// Request that the run loop exits after the current callback.
    void stop() { stopped_ = true; }

    /// Observability hook: when non-null, every layer holding this simulator
    /// records typed events through the GEOANON_TRACE macro (src/obs/). Left
    /// null (the default), tracing costs one pointer load + branch per site.
    /// The recorder is owned by the caller and must outlive the run.
    obs::TraceRecorder* trace() const { return trace_; }
    void set_trace(obs::TraceRecorder* recorder) { trace_ = recorder; }

    std::uint64_t events_processed() const { return processed_; }
    /// Events scheduled and neither fired nor cancelled. Maintained as a
    /// single counter: at() increments, firing decrements, and cancel()
    /// decrements exactly once per live event (liveness is the dense live_
    /// bitmap, so double cancels and cancels of fired ids are no-ops).
    std::size_t pending_events() const { return pending_; }
    /// High-water mark of pending_events() over the simulator's lifetime.
    std::size_t peak_pending() const { return peak_pending_; }

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;
    /// Wheel geometry: tick = 2^9 ns (~0.5 us), 256 slots per level, 6
    /// levels. Level l slots are 2^(9 + 8l) ns wide; together the levels
    /// span 2^57 ns. Events farther out than that from the wheel's current
    /// position go to the overflow bucket. The granularity was swept
    /// empirically (8..12 bits) on the 10k-timer churn bench: finer ticks
    /// shrink the per-tick active list (cheaper sorts) until refill overhead
    /// dominates; 9 was the plateau.
    static constexpr int kGranularityBits = 9;
    static constexpr int kLevelBits = 8;
    static constexpr int kSlots = 1 << kLevelBits;
    static constexpr int kLevels = 6;

    /// Arena-allocated event record. `next` chains wheel-slot freelists and
    /// bucket lists; list order is irrelevant because (time_ns, id) is a
    /// total order.
    struct Record {
        std::int64_t time_ns{0};
        EventId id{0};
        std::uint32_t next{kNil};
        Callback cb;
    };

    struct Level {
        std::array<std::uint32_t, kSlots> head;
        std::array<std::uint64_t, kSlots / 64> bits;
    };

    /// Active-list entry with the ordering key inlined so sorts and ordered
    /// inserts compare contiguous 24-byte entries instead of dereferencing
    /// scattered slab records.
    struct QEntry {
        std::int64_t time_ns;
        EventId id;
        std::uint32_t idx;
    };
    /// Strict (time, id) "a fires after b": sorting with it puts the latest
    /// event first and the next event to fire at the back.
    struct LaterOnTop {
        bool operator()(const QEntry& a, const QEntry& b) const {
            if (a.time_ns != b.time_ns) return a.time_ns > b.time_ns;
            return a.id > b.id;
        }
    };

    EventId schedule(SimTime t, Callback cb);
    std::uint32_t allocate_record();
    std::uint32_t grow_slab();
    void free_record(std::uint32_t idx);
    bool earlier(std::uint32_t a, std::uint32_t b) const {
        const Record& ra = slab_[a];
        const Record& rb = slab_[b];
        if (ra.time_ns != rb.time_ns) return ra.time_ns < rb.time_ns;
        return ra.id < rb.id;
    }

    void enqueue(std::uint32_t idx);
    /// `bulk` marks inserts made inside wheel_refill: events landing in
    /// active_ are appended unsorted and sorted once before the refill
    /// returns, instead of paying an ordered insert each.
    void wheel_insert(std::uint32_t idx, bool bulk = false);
    void wheel_place(int level, int slot, std::uint32_t idx);
    bool wheel_refill();
    void active_push(std::uint32_t idx, bool bulk);
    /// Sort bulk-appended entries (no-op when none were).
    void active_commit();
    std::uint32_t active_pop();

    /// Pop the next runnable event with time <= end into (t, cb); retires
    /// cancelled records along the way. Returns false when drained past end.
    bool next_event(SimTime end, SimTime& t, Callback& cb);

    QueueKind kind_;

    // Arena ---------------------------------------------------------------
    std::vector<Record> slab_;
    std::uint32_t free_head_{kNil};

    // Timer-wheel kernel --------------------------------------------------
    std::array<Level, kLevels> wheel_;
    /// Events at the wheel's current position, sorted descending by
    /// (time, id): the next event to fire is always at the back, so a pop
    /// is pop_back(). Refills append the drained slot unsorted and sort
    /// once (active_dirty_); live schedules into the current tick do an
    /// ordered insert. Both beat a binary heap here because the list is
    /// small (one tick's worth of events) and contiguous.
    std::vector<QEntry> active_;
    bool active_dirty_{false};
    /// Beyond-horizon events (notably SimTime::max() sentinels), unsorted;
    /// redistributed when the wheel drains down to them.
    std::vector<std::uint32_t> overflow_;
    std::int64_t wheel_tick_{0};
    std::size_t wheel_count_{0};

    // Binary-heap kernel (GEOANON_HEAP_QUEUE) ------------------------------
    std::vector<std::uint32_t> heap_;

    /// live_[id - 1] is true while event `id` is scheduled and not
    /// cancelled. Ids are issued sequentially, so this is a dense bitmap,
    /// not a hash set; cancel() flips the bit and the pop path lazily
    /// retires the record.
    std::vector<bool> live_;
    SimTime now_{SimTime::zero()};
    EventId next_id_{1};
    std::uint64_t processed_{0};
    std::size_t pending_{0};
    std::size_t peak_pending_{0};
    bool stopped_{false};
    obs::TraceRecorder* trace_{nullptr};
};

/// Repeating timer bound to a Simulator. Calls `tick` every `period`
/// (optionally with uniform jitter in [0, jitter] added per tick) until
/// stopped or destroyed.
class PeriodicTimer {
  public:
    PeriodicTimer() = default;
    PeriodicTimer(const PeriodicTimer&) = delete;
    PeriodicTimer& operator=(const PeriodicTimer&) = delete;
    ~PeriodicTimer() { stop(); }

    /// Start ticking. `first_delay` offsets the initial tick (use a random
    /// phase to desynchronize beacons across nodes).
    void start(Simulator& sim, SimTime period, SimTime first_delay,
               std::function<void()> tick);

    /// Start ticking with per-tick jitter: every arm (including the first)
    /// adds a uniform draw from [0, jitter] on top of its nominal delay.
    /// Deterministic for a given `rng` seed; a zero jitter draws no RNG at
    /// all, so enabling the knob at zero cannot perturb replay.
    void start(Simulator& sim, SimTime period, SimTime first_delay, SimTime jitter,
               util::Rng& rng, std::function<void()> tick);

    void stop();
    bool running() const { return sim_ != nullptr; }

  private:
    void arm(SimTime delay);

    Simulator* sim_{nullptr};
    SimTime period_{};
    SimTime jitter_{};
    util::Rng* jitter_rng_{nullptr};
    std::function<void()> tick_;
    EventId pending_{kInvalidEvent};
};

}  // namespace geoanon::sim
