#include "net/codec.hpp"

#include <bit>

#include "util/bytes.hpp"

namespace geoanon::net::codec {

using util::ByteReader;
using util::Bytes;
using util::ByteWriter;

namespace {

// Flags byte (AGFW and location-service packets).
constexpr std::uint8_t kFlagVelocity = 0x01;   // hello carries a velocity hint
constexpr std::uint8_t kFlagAuth = 0x02;       // hello is ring-signed
constexpr std::uint8_t kFlagPerimeter = 0x04;  // packet is in perimeter mode
constexpr std::uint8_t kFlagAssist = 0x08;     // one-hop LS assist copy
constexpr std::uint8_t kFlagAnonymous = 0x10;  // ALS (vs plain DLM) row format

/// Trace trailer (tests only): flow, seq, created_at, uid, hops.
constexpr std::size_t kTraceTrailerBytes = 4 + 4 + 8 + 8 + 2;

void put_u48(ByteWriter& w, std::uint64_t v) {
    for (int shift = 40; shift >= 0; shift -= 8)
        w.u8(static_cast<std::uint8_t>(v >> shift));
}

std::optional<std::uint64_t> get_u48(ByteReader& r) {
    std::uint64_t v = 0;
    for (int i = 0; i < 6; ++i) {
        auto b = r.u8();
        if (!b) return std::nullopt;
        v = (v << 8) | *b;
    }
    return v;
}

void put_vec(ByteWriter& w, const Vec2& v) {
    w.f64(v.x);
    w.f64(v.y);
}

std::optional<Vec2> get_vec(ByteReader& r) {
    auto x = r.f64();
    auto y = r.f64();
    if (!x || !y) return std::nullopt;
    return Vec2{*x, *y};
}

/// Velocity hints travel quantized to two f32 (8 bytes).
// geoanon-lint: begin-allow(float-accum) -- deliberate IEEE-754 binary32 wire quantization; the value is widened back to double immediately on decode and never accumulated as float
void put_velocity(ByteWriter& w, const Vec2& v) {
    w.u32(std::bit_cast<std::uint32_t>(static_cast<float>(v.x)));
    w.u32(std::bit_cast<std::uint32_t>(static_cast<float>(v.y)));
}

std::optional<Vec2> get_velocity(ByteReader& r) {
    auto x = r.u32();
    auto y = r.u32();
    if (!x || !y) return std::nullopt;
    return Vec2{static_cast<double>(std::bit_cast<float>(*x)),
                static_cast<double>(std::bit_cast<float>(*y))};
}
// geoanon-lint: end-allow(float-accum)

bool has_velocity(const Packet& p) {
    return p.hello_velocity.x != 0.0 || p.hello_velocity.y != 0.0;
}

bool is_plain_ls(const Packet& p) { return p.ls_subject != kInvalidNode; }

void put_perimeter(ByteWriter& w, const Packet& p) {
    put_vec(w, p.perimeter_entry);
    put_vec(w, p.prev_hop_loc);
    w.u16(p.perimeter_hops);
}

bool get_perimeter(ByteReader& r, Packet& p) {
    auto entry = get_vec(r);
    auto prev = get_vec(r);
    auto hops = r.u16();
    if (!entry || !prev || !hops) return false;
    p.perimeter_mode = true;
    p.perimeter_entry = *entry;
    p.prev_hop_loc = *prev;
    p.perimeter_hops = *hops;
    return true;
}

}  // namespace

Bytes encode(const Packet& p, bool include_trace) {
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(p.type));

    switch (p.type) {
        case PacketType::kGpsrHello:
            w.u32(p.src_id);
            put_vec(w, p.hello_loc);
            w.u64(static_cast<std::uint64_t>(p.hello_ts.ns()));
            break;

        case PacketType::kGpsrData:
            w.u32(p.src_id);
            w.u32(p.dst_id);
            put_vec(w, p.dst_loc);
            w.raw(p.body);
            break;

        case PacketType::kAgfwHello: {
            std::uint8_t flags = 0;
            if (has_velocity(p)) flags |= kFlagVelocity;
            if (!p.auth.empty()) flags |= kFlagAuth;
            w.u8(flags);
            put_u48(w, p.hello_pseudonym);
            put_vec(w, p.hello_loc);
            w.u64(static_cast<std::uint64_t>(p.hello_ts.ns()));
            if (flags & kFlagVelocity) put_velocity(w, p.hello_velocity);
            if (flags & kFlagAuth) {
                w.u16(static_cast<std::uint16_t>(p.auth.size()));
                w.raw(p.auth);
                w.u16(static_cast<std::uint16_t>(p.ring_members.size()));
                // Certificate references (§4): 4-byte serials.
                for (auto id : p.ring_members) w.u32(static_cast<std::uint32_t>(id));
            }
            break;
        }

        case PacketType::kAgfwData: {
            std::uint8_t flags = 0;
            if (p.perimeter_mode) flags |= kFlagPerimeter;
            w.u8(flags);
            put_vec(w, p.dst_loc);
            put_u48(w, p.next_hop_pseudonym);
            if (p.perimeter_mode) put_perimeter(w, p);
            w.u16(static_cast<std::uint16_t>(p.trapdoor.size()));
            w.raw(p.trapdoor);
            w.raw(p.body);
            break;
        }

        case PacketType::kAgfwAck:
            w.u16(static_cast<std::uint16_t>(p.ack_uids.size()));
            for (std::uint64_t uid : p.ack_uids) w.u64(uid);
            break;

        case PacketType::kLocUpdate:
        case PacketType::kLocReplicate: {
            std::uint8_t flags = 0;
            if (!is_plain_ls(p)) flags |= kFlagAnonymous;
            if (p.ls_assist) flags |= kFlagAssist;
            if (p.perimeter_mode) flags |= kFlagPerimeter;
            w.u8(flags);
            put_u48(w, p.next_hop_pseudonym);
            w.u32(p.grid);
            put_vec(w, p.dst_loc);
            if (p.perimeter_mode) put_perimeter(w, p);
            if (is_plain_ls(p)) {
                w.u32(p.ls_subject);
                put_vec(w, p.ls_subject_loc);
                w.u64(static_cast<std::uint64_t>(p.created_at.ns()));
            } else {
                w.raw(p.ls_payload);
            }
            break;
        }

        case PacketType::kLocRequest: {
            std::uint8_t flags = 0;
            if (!is_plain_ls(p)) flags |= kFlagAnonymous;
            if (p.ls_assist) flags |= kFlagAssist;
            if (p.perimeter_mode) flags |= kFlagPerimeter;
            w.u8(flags);
            put_u48(w, p.next_hop_pseudonym);
            w.u32(p.grid);
            put_vec(w, p.dst_loc);
            if (p.perimeter_mode) put_perimeter(w, p);
            put_vec(w, p.requester_loc);
            w.u64(p.ls_query_id);
            if (is_plain_ls(p)) {
                w.u32(p.ls_subject);
                w.u32(p.src_id);
            } else {
                // Indexed ALS sends E_{K_B}(A,B); index-free sends length 0.
                w.u16(static_cast<std::uint16_t>(p.ls_index.size()));
                w.raw(p.ls_index);
            }
            break;
        }

        case PacketType::kLocReply: {
            std::uint8_t flags = 0;
            const bool plain = p.ls_subject != kInvalidNode;
            if (!plain) flags |= kFlagAnonymous;
            if (p.ls_assist) flags |= kFlagAssist;
            if (p.perimeter_mode) flags |= kFlagPerimeter;
            w.u8(flags);
            put_u48(w, p.next_hop_pseudonym);
            w.u32(p.grid);
            put_vec(w, p.dst_loc);
            if (p.perimeter_mode) put_perimeter(w, p);
            w.u64(p.ls_query_id);
            if (plain) {
                w.u32(p.dst_id);
                w.u32(p.ls_subject);
                put_vec(w, p.ls_subject_loc);
            } else {
                w.raw(p.ls_payload);
            }
            break;
        }

        case PacketType::kLocDigest: {
            // Anti-entropy digest: (key hash, expiry) summaries only — never
            // a location, payload, or cleartext identity. One-hop broadcast,
            // so no perimeter block.
            std::uint8_t flags = kFlagAnonymous;
            if (p.ls_assist) flags |= kFlagAssist;
            w.u8(flags);
            put_u48(w, p.next_hop_pseudonym);
            w.u32(p.grid);
            put_vec(w, p.dst_loc);
            w.u16(static_cast<std::uint16_t>(p.ls_digest.size()));
            for (const auto& row : p.ls_digest) {
                w.u64(row.key_hash);
                w.u64(row.expires_ns);
            }
            break;
        }
    }

    if (include_trace) {
        w.u32(p.flow);
        w.u32(p.seq);
        w.u64(static_cast<std::uint64_t>(p.created_at.ns()));
        w.u64(p.uid);
        w.u16(p.hops);
    }
    return w.take();
}

std::size_t encoded_size(const Packet& p) { return encode(p, false).size(); }

const char* decode_error_name(DecodeError e) {
    switch (e) {
        case DecodeError::kOk: return "ok";
        case DecodeError::kEmpty: return "empty";
        case DecodeError::kBadType: return "bad-type";
        case DecodeError::kTruncated: return "truncated";
        case DecodeError::kBadLength: return "bad-length";
        case DecodeError::kTrailingBytes: return "trailing-bytes";
    }
    return "?";
}

namespace {

DecodeResult fail(DecodeError e) { return DecodeResult{std::nullopt, e}; }

/// Validates a u16-prefixed blob: the declared length must fit in what
/// remains of the frame *before* any read happens, so an oversized length
/// field is classified kBadLength (not kTruncated) and can never trigger an
/// over-read.
std::optional<Bytes> get_blob_u16(ByteReader& r, DecodeError& err) {
    auto len = r.u16();
    if (!len) {
        err = DecodeError::kTruncated;
        return std::nullopt;
    }
    if (*len > r.remaining()) {
        err = DecodeError::kBadLength;
        return std::nullopt;
    }
    return r.raw(*len);
}

}  // namespace

DecodeResult decode_ex(std::span<const std::uint8_t> wire, bool include_trace) {
    if (wire.empty()) return fail(DecodeError::kEmpty);

    std::span<const std::uint8_t> base = wire;
    std::span<const std::uint8_t> trailer;
    if (include_trace) {
        if (wire.size() < kTraceTrailerBytes + 1) return fail(DecodeError::kTruncated);
        base = wire.subspan(0, wire.size() - kTraceTrailerBytes);
        trailer = wire.subspan(wire.size() - kTraceTrailerBytes);
    }

    ByteReader r(base);
    auto type_raw = r.u8();
    if (!type_raw) return fail(DecodeError::kTruncated);
    if (*type_raw > static_cast<std::uint8_t>(PacketType::kLocDigest))
        return fail(DecodeError::kBadType);

    Packet p;
    p.type = static_cast<PacketType>(*type_raw);

    switch (p.type) {
        case PacketType::kGpsrHello: {
            auto id = r.u32();
            auto loc = get_vec(r);
            auto ts = r.u64();
            if (!id || !loc || !ts) return fail(DecodeError::kTruncated);
            p.src_id = *id;
            p.hello_loc = *loc;
            p.hello_ts = util::SimTime::nanos(static_cast<std::int64_t>(*ts));
            break;
        }
        case PacketType::kGpsrData: {
            auto src = r.u32();
            auto dst = r.u32();
            auto loc = get_vec(r);
            if (!src || !dst || !loc) return fail(DecodeError::kTruncated);
            p.src_id = *src;
            p.dst_id = *dst;
            p.dst_loc = *loc;
            auto body = r.raw(r.remaining());
            p.body = std::move(*body);
            break;
        }
        case PacketType::kAgfwHello: {
            auto flags = r.u8();
            auto n = get_u48(r);
            auto loc = get_vec(r);
            auto ts = r.u64();
            if (!flags || !n || !loc || !ts) return fail(DecodeError::kTruncated);
            p.hello_pseudonym = *n;
            p.hello_loc = *loc;
            p.hello_ts = util::SimTime::nanos(static_cast<std::int64_t>(*ts));
            if (*flags & kFlagVelocity) {
                auto v = get_velocity(r);
                if (!v) return fail(DecodeError::kTruncated);
                p.hello_velocity = *v;
            }
            if (*flags & kFlagAuth) {
                DecodeError err = DecodeError::kOk;
                auto auth = get_blob_u16(r, err);
                if (!auth) return fail(err);
                p.auth = std::move(*auth);
                auto count = r.u16();
                if (!count) return fail(DecodeError::kTruncated);
                // Each ring member is a 4-byte certificate serial; reject a
                // count the remaining bytes cannot possibly satisfy before
                // allocating anything.
                if (static_cast<std::size_t>(*count) * 4 > r.remaining())
                    return fail(DecodeError::kBadLength);
                p.ring_members.reserve(*count);
                for (std::uint16_t i = 0; i < *count; ++i) {
                    auto ref = r.u32();
                    if (!ref) return fail(DecodeError::kTruncated);
                    p.ring_members.push_back(*ref);
                }
            }
            break;
        }
        case PacketType::kAgfwData: {
            auto flags = r.u8();
            auto loc = get_vec(r);
            auto n = get_u48(r);
            if (!flags || !loc || !n) return fail(DecodeError::kTruncated);
            p.dst_loc = *loc;
            p.next_hop_pseudonym = *n;
            if ((*flags & kFlagPerimeter) && !get_perimeter(r, p))
                return fail(DecodeError::kTruncated);
            DecodeError err = DecodeError::kOk;
            auto td = get_blob_u16(r, err);
            if (!td) return fail(err);
            p.trapdoor = std::move(*td);
            auto body = r.raw(r.remaining());
            p.body = std::move(*body);
            break;
        }
        case PacketType::kAgfwAck: {
            auto count = r.u16();
            if (!count) return fail(DecodeError::kTruncated);
            // 8 bytes per acknowledged uid.
            if (static_cast<std::size_t>(*count) * 8 > r.remaining())
                return fail(DecodeError::kBadLength);
            p.ack_uids.reserve(*count);
            for (std::uint16_t i = 0; i < *count; ++i) {
                auto uid = r.u64();
                if (!uid) return fail(DecodeError::kTruncated);
                p.ack_uids.push_back(*uid);
            }
            break;
        }
        case PacketType::kLocUpdate:
        case PacketType::kLocReplicate:
        case PacketType::kLocRequest:
        case PacketType::kLocReply:
        case PacketType::kLocDigest: {
            auto flags = r.u8();
            auto n = get_u48(r);
            auto grid = r.u32();
            auto loc = get_vec(r);
            if (!flags || !n || !grid || !loc) return fail(DecodeError::kTruncated);
            p.next_hop_pseudonym = *n;
            p.grid = *grid;
            p.dst_loc = *loc;
            p.ls_assist = (*flags & kFlagAssist) != 0;
            const bool anonymous = (*flags & kFlagAnonymous) != 0;
            if ((*flags & kFlagPerimeter) && !get_perimeter(r, p))
                return fail(DecodeError::kTruncated);

            if (p.type == PacketType::kLocUpdate || p.type == PacketType::kLocReplicate) {
                if (anonymous) {
                    auto payload = r.raw(r.remaining());
                    p.ls_payload = std::move(*payload);
                } else {
                    auto subject = r.u32();
                    auto sloc = get_vec(r);
                    auto ts = r.u64();
                    if (!subject || !sloc || !ts) return fail(DecodeError::kTruncated);
                    p.ls_subject = *subject;
                    p.ls_subject_loc = *sloc;
                    p.created_at = util::SimTime::nanos(static_cast<std::int64_t>(*ts));
                }
            } else if (p.type == PacketType::kLocRequest) {
                auto rloc = get_vec(r);
                auto qid = r.u64();
                if (!rloc || !qid) return fail(DecodeError::kTruncated);
                p.requester_loc = *rloc;
                p.ls_query_id = *qid;
                if (anonymous) {
                    DecodeError err = DecodeError::kOk;
                    auto idx = get_blob_u16(r, err);
                    if (!idx) return fail(err);
                    p.ls_index = std::move(*idx);
                } else {
                    auto subject = r.u32();
                    auto src = r.u32();
                    if (!subject || !src) return fail(DecodeError::kTruncated);
                    p.ls_subject = *subject;
                    p.src_id = *src;
                }
            } else if (p.type == PacketType::kLocDigest) {
                auto count = r.u16();
                if (!count) return fail(DecodeError::kTruncated);
                // 16 bytes per digest row.
                if (static_cast<std::size_t>(*count) * 16 > r.remaining())
                    return fail(DecodeError::kBadLength);
                p.ls_digest.reserve(*count);
                for (std::uint16_t i = 0; i < *count; ++i) {
                    auto key_hash = r.u64();
                    auto expires = r.u64();
                    if (!key_hash || !expires) return fail(DecodeError::kTruncated);
                    p.ls_digest.push_back({*key_hash, *expires});
                }
            } else {  // kLocReply
                auto qid = r.u64();
                if (!qid) return fail(DecodeError::kTruncated);
                p.ls_query_id = *qid;
                if (anonymous) {
                    auto payload = r.raw(r.remaining());
                    p.ls_payload = std::move(*payload);
                } else {
                    auto dst = r.u32();
                    auto subject = r.u32();
                    auto sloc = get_vec(r);
                    if (!dst || !subject || !sloc) return fail(DecodeError::kTruncated);
                    p.dst_id = *dst;
                    p.ls_subject = *subject;
                    p.ls_subject_loc = *sloc;
                }
            }
            break;
        }
    }

    if (r.remaining() != 0) return fail(DecodeError::kTrailingBytes);

    if (include_trace) {
        ByteReader tr(trailer);
        const auto flow = tr.u32();
        const auto seq = tr.u32();
        const auto created = tr.u64();
        const auto uid = tr.u64();
        const auto hops = tr.u16();
        if (!flow || !seq || !created || !uid || !hops)
            return fail(DecodeError::kTruncated);  // unreachable: sized above
        p.flow = *flow;
        p.seq = *seq;
        p.created_at = util::SimTime::nanos(static_cast<std::int64_t>(*created));
        p.uid = *uid;
        p.hops = *hops;
    }
    p.wire_bytes = static_cast<std::uint32_t>(base.size());
    return DecodeResult{std::move(p), DecodeError::kOk};
}

std::optional<Packet> decode(std::span<const std::uint8_t> wire, bool include_trace) {
    return decode_ex(wire, include_trace).packet;
}

}  // namespace geoanon::net::codec
