#pragma once

#include <memory>
#include <string>

#include "mac/mac80211.hpp"
#include "mobility/mobility.hpp"
#include "net/packet.hpp"
#include "net/types.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace geoanon::net {

class Node;

/// A network-layer routing agent bound to one node. Implementations:
/// GpsrGreedyAgent (baseline) and AgfwAgent (the paper's scheme).
class RoutingAgent {
  public:
    virtual ~RoutingAgent() = default;

    /// Begin protocol operation (hello beaconing, location updates, ...).
    virtual void start() = 0;

    /// Application send: deliver `body` to the node with identity `dst`.
    /// How much of (identity, location) goes on the air depends on the agent.
    virtual void send_data(NodeId dst, FlowId flow, std::uint32_t seq, Bytes body) = 0;

    /// A frame's payload arrived from the MAC (src is the transmitter's MAC
    /// address — the broadcast address in anonymous mode).
    virtual void on_packet(const PacketPtr& pkt, MacAddr src) = 0;

    /// MAC finished a transmission we requested (unicast: ACK outcome).
    virtual void on_mac_tx_done(const PacketPtr& pkt, MacAddr dst, bool success) = 0;

    /// The node rebooted after a crash (fault injection): wipe all volatile
    /// protocol state — neighbor tables, pending retransmissions, caches —
    /// exactly what a real reboot loses. Cumulative statistics survive.
    virtual void on_node_restart() {}

    virtual std::string name() const = 0;
};

/// One mobile node: mobility + radio + MAC + routing agent, glued together.
class Node {
  public:
    Node(sim::Simulator& sim, phy::Channel& channel, NodeId id,
         std::unique_ptr<mobility::MobilityModel> mobility, mac::MacParams mac_params,
         util::Rng rng);

    // geoanon: source(node-id)
    NodeId id() const { return id_; }
    MacAddr mac_addr() const { return mac_.address(); }
    /// The position the node *believes* (its GPS fix): true position plus
    /// the injected GPS error, when one is set. The radio always uses the
    /// true physical position (see the constructor).
    // geoanon: source(gps)
    util::Vec2 position() const {
        const util::Vec2 p = radio_.position();
        return gps_error_ ? p + gps_error_(sim_.now()) : p;
    }
    // geoanon: source(gps)
    util::Vec2 true_position() const { return radio_.position(); }
    // geoanon: source(gps)
    util::Vec2 velocity() const { return radio_.velocity(); }

    sim::Simulator& sim() { return sim_; }
    mac::Mac80211& mac() { return mac_; }
    const mac::Mac80211& mac() const { return mac_; }
    phy::Radio& radio() { return radio_; }
    const phy::Radio& radio() const { return radio_; }
    util::Rng& rng() { return rng_; }
    mobility::MobilityModel& mobility() { return *mobility_; }

    /// Install the routing agent and wire MAC callbacks to it.
    void set_agent(std::unique_ptr<RoutingAgent> agent);
    RoutingAgent& agent() { return *agent_; }
    bool has_agent() const { return agent_ != nullptr; }

    /// Crash / recover (fault injection). Down: the MAC flushes its queue
    /// and refuses sends, the radio decodes nothing — a silent halt; the
    /// node keeps moving (a rebooting device still moves). Up again: the
    /// agent's volatile state is wiped via on_node_restart().
    void set_up(bool up);
    bool up() const { return up_; }

    /// GPS error model (fault injection): offset added to position() as a
    /// function of the current time; nullptr restores perfect fixes.
    using GpsErrorFn = std::function<util::Vec2(util::SimTime)>;
    void set_gps_error(GpsErrorFn fn) { gps_error_ = std::move(fn); }

  private:
    sim::Simulator& sim_;
    NodeId id_;
    std::unique_ptr<mobility::MobilityModel> mobility_;
    util::Rng rng_;
    phy::Radio radio_;
    mac::Mac80211 mac_;
    std::unique_ptr<RoutingAgent> agent_;
    GpsErrorFn gps_error_;
    bool up_{true};
};

}  // namespace geoanon::net
