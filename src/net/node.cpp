#include "net/node.hpp"

namespace geoanon::net {

namespace {
/// Unique per-node MAC address derived from the identity (never 0 or the
/// broadcast address).
MacAddr mac_addr_for(NodeId id) { return static_cast<MacAddr>(id) + 1; }
}  // namespace

Node::Node(sim::Simulator& sim, phy::Channel& channel, NodeId id,
           std::unique_ptr<mobility::MobilityModel> mobility, mac::MacParams mac_params,
           util::Rng rng)
    : sim_(sim),
      id_(id),
      mobility_(std::move(mobility)),
      rng_(rng),
      radio_(sim, channel, *mobility_),
      mac_(sim, radio_, mac_addr_for(id), mac_params, rng_.fork()) {
    radio_.set_trace_node(id_);
    mac_.set_trace_node(id_);
}

void Node::set_up(bool up) {
    if (up == up_) return;
    up_ = up;
    if (!up) {
        mac_.set_enabled(false);
        radio_.set_enabled(false);
    } else {
        radio_.set_enabled(true);
        mac_.set_enabled(true);
        if (agent_) agent_->on_node_restart();
    }
}

void Node::set_agent(std::unique_ptr<RoutingAgent> agent) {
    agent_ = std::move(agent);
    mac_.set_rx_handler(
        [this](const PacketPtr& pkt, MacAddr src) { agent_->on_packet(pkt, src); });
    mac_.set_tx_done_handler([this](const PacketPtr& pkt, MacAddr dst, bool ok) {
        agent_->on_mac_tx_done(pkt, dst, ok);
    });
}

}  // namespace geoanon::net
