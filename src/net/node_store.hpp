#pragma once

#include <cstddef>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "net/node.hpp"

namespace geoanon::net {

/// Chunked arena owning every node in a Network. Nodes are constructed in
/// place in fixed-size blocks, so
///   - addresses are stable for the lifetime of the store (Node is neither
///     movable nor copyable: its Radio, MAC and agent hold back-references,
///     and the channel keeps a Radio* per registration),
///   - node `i` lives at a computable offset — the store is indexed by
///     NodeId with no per-node pointer chase through a unique_ptr array,
///   - a 100k–1M-node population costs one allocation per kBlockSize nodes
///     instead of one per node, and neighbors in id order are neighbors in
///     memory.
class NodeStore {
  public:
    /// Nodes per block. 64 keeps each block comfortably inside a few pages
    /// while amortizing allocator traffic 64x.
    static constexpr std::size_t kBlockSize = 64;

    NodeStore() = default;
    NodeStore(const NodeStore&) = delete;
    NodeStore& operator=(const NodeStore&) = delete;
    ~NodeStore() {
        // Destroy in reverse construction order, then release the raw blocks.
        for (std::size_t i = size_; i-- > 0;) slot(i)->~Node();
        for (Node* block : blocks_) std::allocator<Node>().deallocate(block, kBlockSize);
    }

    /// Construct a node in place; its address never changes afterwards.
    template <typename... Args>
    Node& emplace(Args&&... args) {
        if (size_ == blocks_.size() * kBlockSize)
            blocks_.push_back(std::allocator<Node>().allocate(kBlockSize));
        Node* p = slot(size_);
        ::new (static_cast<void*>(p)) Node(std::forward<Args>(args)...);
        ++size_;
        return *p;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    Node& operator[](std::size_t i) { return *slot(i); }
    const Node& operator[](std::size_t i) const { return *slot(i); }
    /// Bounds-checked access (mirrors the std::vector::at the store replaced).
    Node& at(std::size_t i) {
        if (i >= size_) throw std::out_of_range("NodeStore::at");
        return *slot(i);
    }
    const Node& at(std::size_t i) const {
        if (i >= size_) throw std::out_of_range("NodeStore::at");
        return *slot(i);
    }

    /// Forward iterator yielding Node& in id order.
    template <bool Const>
    class Iter {
      public:
        using Store = std::conditional_t<Const, const NodeStore, NodeStore>;
        using value_type = Node;
        using reference = std::conditional_t<Const, const Node&, Node&>;
        using pointer = std::conditional_t<Const, const Node*, Node*>;
        using difference_type = std::ptrdiff_t;
        using iterator_category = std::forward_iterator_tag;

        Iter() = default;
        Iter(Store* store, std::size_t i) : store_(store), i_(i) {}
        reference operator*() const { return (*store_)[i_]; }
        pointer operator->() const { return &(*store_)[i_]; }
        Iter& operator++() {
            ++i_;
            return *this;
        }
        Iter operator++(int) {
            Iter tmp = *this;
            ++i_;
            return tmp;
        }
        bool operator==(const Iter&) const = default;

      private:
        Store* store_{nullptr};
        std::size_t i_{0};
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, size_}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, size_}; }

  private:
    Node* slot(std::size_t i) const { return blocks_[i / kBlockSize] + i % kBlockSize; }

    std::vector<Node*> blocks_;
    std::size_t size_{0};
};

}  // namespace geoanon::net
