#pragma once

#include <optional>

#include "net/packet.hpp"

namespace geoanon::net {

/// Reference wire format for network-layer packets.
///
/// The simulator forwards structured Packet objects for speed, carrying an
/// explicit `wire_bytes` size used for airtime and overhead accounting. This
/// codec is the ground truth behind those numbers: `encode()` produces the
/// canonical on-air byte string and `encoded_size()` is asserted (in tests)
/// to equal the accounting the agents perform. `decode()` round-trips every
/// routable field and rejects malformed input, so the format is actually
/// implementable — not just counted.
///
/// Format notes:
///  - locations are two f64 coordinates (16 bytes); timestamps are u64 ns;
///  - pseudonyms travel as 48-bit values (6 bytes), the size of a MAC
///    address (§5 of the paper);
///  - a 1-byte flags field on AGFW data/hello carries the velocity-hint and
///    perimeter-mode bits;
///  - trapdoor and ring-signature blobs carry u16 length prefixes; the app
///    body is the frame remainder.
namespace codec {

/// Serialize to the canonical on-air representation. Supports every
/// PacketType the agents transmit; accounting-only fields (flow, seq,
/// created_at, uid, hops) are carried in a trace trailer ONLY when
/// `include_trace` is set (used by tests; real deployments would not send
/// them — uid exists on the air implicitly as the trapdoor bits, §3.2).
// geoanon: sink(air)
util::Bytes encode(const Packet& pkt, bool include_trace = false);

/// Size of encode(pkt, false) without materializing it.
std::size_t encoded_size(const Packet& pkt);

/// Why a decode rejected its input. Every malformed frame maps to exactly
/// one of these; the fuzz harness and the regression tests assert on them.
enum class DecodeError : std::uint8_t {
    kOk = 0,
    kEmpty,          ///< zero-length input (no type byte)
    kBadType,        ///< type byte outside the PacketType range
    kTruncated,      ///< ran out of bytes mid-field
    kBadLength,      ///< a length/count field exceeds the bytes that remain
    kTrailingBytes,  ///< fixed-layout packet followed by extra bytes
};

/// Human-readable name for a DecodeError (stable; used in fuzz output).
const char* decode_error_name(DecodeError e);

/// Parse outcome: `packet` is engaged iff `error == kOk`.
struct DecodeResult {
    std::optional<Packet> packet;
    DecodeError error{DecodeError::kOk};
};

/// Parse a canonical byte string, reporting why malformed input was
/// rejected. Never reads out of bounds and never throws: any structural
/// error (truncation, bad type, inconsistent lengths) yields a diagnostic.
DecodeResult decode_ex(std::span<const std::uint8_t> wire,
                       bool include_trace = false);

/// Parse a canonical byte string. Returns nullopt on any structural error
/// (truncation, bad type, inconsistent lengths).
std::optional<Packet> decode(std::span<const std::uint8_t> wire,
                             bool include_trace = false);

}  // namespace codec

}  // namespace geoanon::net
