#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/node.hpp"
#include "net/node_store.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace geoanon::net {

/// Container owning the simulator, the channel, and all nodes. Also provides
/// the "perfect location service" oracle the paper's Figure-1 experiments use
/// in place of ALS (§5.1: the simulation focuses on the routing part).
class Network {
  public:
    Network(phy::PhyParams phy_params, std::uint64_t seed);

    sim::Simulator& sim() { return sim_; }
    phy::Channel& channel() { return channel_; }
    util::Rng& rng() { return rng_; }

    /// Create a node with sequential id (0, 1, 2, ...).
    Node& add_node(std::unique_ptr<mobility::MobilityModel> mobility,
                   mac::MacParams mac_params);

    Node& node(NodeId id) { return nodes_.at(id); }
    const Node& node(NodeId id) const { return nodes_.at(id); }
    std::size_t size() const { return nodes_.size(); }
    NodeStore& nodes() { return nodes_; }
    const NodeStore& nodes() const { return nodes_; }

    /// Location oracle: the true current position of `id`.
    util::Vec2 true_position(NodeId id) const;

    /// Start all installed agents.
    void start_agents();

    /// Install (or remove, with nullptr) the trace recorder every layer
    /// records into through the simulator hook.
    void set_trace(obs::TraceRecorder* recorder) { sim_.set_trace(recorder); }

    /// Fold channel + all radio/MAC counters into the run metrics (phy.*,
    /// mac.*). Agents publish their own layer prefixes separately.
    void publish_metrics(obs::MetricsRegistry& reg) const;

  private:
    util::Rng rng_;
    sim::Simulator sim_;
    phy::Channel channel_;
    /// Chunked arena: nodes are contiguous in id order with stable addresses
    /// (FaultInjector, InvariantChecker and obs taps hold Node/Radio
    /// references across the whole run).
    NodeStore nodes_;
};

}  // namespace geoanon::net
