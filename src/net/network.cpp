#include "net/network.hpp"

#include "obs/metrics.hpp"

namespace geoanon::net {

Network::Network(phy::PhyParams phy_params, std::uint64_t seed)
    : rng_(seed), channel_(sim_, phy_params) {}

Node& Network::add_node(std::unique_ptr<mobility::MobilityModel> mobility,
                        mac::MacParams mac_params) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    return nodes_.emplace(sim_, channel_, id, std::move(mobility), mac_params, rng_.fork());
}

util::Vec2 Network::true_position(NodeId id) const {
    // Routed through the radio's EngineState row: same value as asking the
    // mobility model (bit-identical evaluation), but served from the cached
    // motion leg.
    return nodes_.at(id).true_position();
}

void Network::start_agents() {
    for (auto& n : nodes_)
        if (n.has_agent()) n.agent().start();
}

void Network::publish_metrics(obs::MetricsRegistry& reg) const {
    channel_.publish_metrics(reg);
    for (const auto& n : nodes_) {
        n.radio().publish_metrics(reg);
        n.mac().publish_metrics(reg);
    }
}

}  // namespace geoanon::net
