#pragma once

#include <cstdint>
#include <memory>

#include "net/types.hpp"
#include "util/bytes.hpp"
#include "util/time.hpp"
#include "util/vec2.hpp"

namespace geoanon::net {

using util::Bytes;
using util::SimTime;
using util::Vec2;

/// Network-layer message kinds across all protocols in the repo.
enum class PacketType : std::uint8_t {
    // Plain geographic routing (GPSR baseline)
    kGpsrHello,
    kGpsrData,
    // Anonymous geographic routing (the paper's scheme)
    kAgfwHello,  ///< §3.1 ANT hello: ⟨HELLO, n, loc, ts⟩ (+ optional ring sig)
    kAgfwData,   ///< §3.2 ⟨DATA, loc_d, n, trapdoor⟩
    kAgfwAck,    ///< §3.2 network-layer acknowledgment (local broadcast)
    // Location service (plain DLM and anonymous ALS variants share types)
    kLocUpdate,   ///< RLU: remote location update towards the home grid
    kLocRequest,  ///< LREQ
    kLocReply,    ///< LREP
    kLocReplicate,  ///< one-hop server-side replication inside the home grid
    kLocDigest,     ///< anti-entropy store digest among in-grid replicas
};

/// One network-layer packet. Deliberately a kitchen-sink struct: the
/// simulator keeps fields structured (instead of serializing) for speed and
/// debuggability, while `wire_bytes` carries the exact on-air size each
/// protocol accounts for (crypto attachments included).
///
/// Immutable after creation; passed by shared_ptr. A forwarder that needs to
/// change routing fields (next-hop pseudonym, hop count) copies the packet.
struct Packet {
    PacketType type{PacketType::kGpsrData};

    // --- accounting / tracing (not on the air) --------------------------
    FlowId flow{0};
    std::uint32_t seq{0};           ///< per-flow application sequence number
    SimTime created_at{};           ///< for end-to-end latency
    std::uint16_t hops{0};          ///< incremented per network-layer hop
    /// Unique per end-to-end packet; survives forwarding copies. Used for
    /// network-layer dedup/implicit-ACK and by the eavesdropper to correlate
    /// consecutive hops ("same trapdoor" correlation, §3.2). Echoed on the
    /// air in ACKs and exported in traces — identity material must pass
    /// CryptoEngine::anonymize_uid before landing here.
    // geoanon: sink(wire)
    std::uint64_t uid{0};

    // --- geographic routing fields (cleartext on the air, §4) -----------
    Vec2 dst_loc{};                 ///< destination location loc_d

    // --- plain (identity-bearing) fields: GPSR / plain DLM only ---------
    // geoanon: sink(wire)
    NodeId src_id{kInvalidNode};
    // geoanon: sink(wire)
    NodeId dst_id{kInvalidNode};

    // --- anonymous fields: AGFW / ANT / ALS ------------------------------
    std::uint64_t next_hop_pseudonym{0};  ///< n; 0 = "last forwarding attempt"
    Bytes trapdoor;                        ///< §3.2 destination trapdoor

    // --- hello fields (kGpsrHello carries id, kAgfwHello pseudonym) ------
    std::uint64_t hello_pseudonym{0};
    // geoanon: sink(wire)
    Vec2 hello_loc{};
    // geoanon: sink(wire)
    Vec2 hello_velocity{};          ///< optional motion hint (§3.1.1)
    SimTime hello_ts{};
    Bytes auth;                     ///< ring signature bytes (authenticated ANT)
    /// Ring member identities (as certificate references, §4); needed by the
    /// verifier to reconstruct the ring.
    // geoanon: sink(wire)
    std::vector<std::uint64_t> ring_members;

    // --- network-layer ACK fields ----------------------------------------
    /// uids being acknowledged; §3.2 allows one ACK to cover several
    /// received packets (aggregation window in AgfwAgent::Params).
    // geoanon: sink(wire)
    std::vector<std::uint64_t> ack_uids;

    // --- location service fields ------------------------------------------
    std::uint32_t grid{0};          ///< ssa(target): home grid index
    Bytes ls_index;                 ///< ALS: E_{K_B}(A,B) row index
    Bytes ls_payload;               ///< ALS: E_{K_B}(A, loc_A, ts)
    // geoanon: sink(wire)
    NodeId ls_subject{kInvalidNode};  ///< plain DLM: subject identity
    // geoanon: sink(wire)
    Vec2 ls_subject_loc{};          ///< plain DLM: subject location
    // geoanon: sink(wire)
    Vec2 requester_loc{};           ///< LREQ: where to send the LREP (loc_B)
    std::uint64_t ls_query_id{0};   ///< matches LREP to LREQ at the requester
    /// Anti-entropy digest row (kLocDigest): a hash of the stored row's key
    /// and its expiry. Hashes of encrypted indexes / public subject ids only —
    /// a digest never carries a location or a cleartext identity.
    struct LsDigestRow {
        std::uint64_t key_hash{0};
        std::uint64_t expires_ns{0};
        friend bool operator==(const LsDigestRow&, const LsDigestRow&) = default;
    };
    // geoanon: sink(wire)
    std::vector<LsDigestRow> ls_digest;
    /// Set on one-hop assist/last-resort copies of LS packets so receivers
    /// only consume or drop them (never re-route: loop prevention).
    bool ls_assist{false};

    // --- perimeter recovery (extension; the paper's §6 future work) ------
    bool perimeter_mode{false};
    Vec2 perimeter_entry{};       ///< L_p: where greedy forwarding failed
    Vec2 prev_hop_loc{};          ///< previous hop's position (right-hand rule)
    std::uint16_t perimeter_hops{0};  ///< safety TTL for the face traversal

    // --- app payload -------------------------------------------------------
    Bytes body;

    /// Exact on-air network-layer size in bytes (headers + crypto blobs +
    /// payload), set by the protocol that builds the packet.
    std::uint32_t wire_bytes{0};
};

using PacketPtr = std::shared_ptr<const Packet>;

namespace pool_detail {

/// Thread-local freelist of fixed-size blocks backing allocate_shared
/// packets. allocate_shared<Packet> makes exactly one allocation (control
/// block + Packet fused), always of the same size; the first allocation
/// fixes the size class and every retired block is kept for reuse, so
/// steady-state packet traffic does zero heap allocations for envelopes.
/// Requests of any other size (there are none in practice) fall through to
/// operator new untouched.
struct FreeList {
    void* head{nullptr};
    std::size_t block_bytes{0};
    ~FreeList() {
        while (head != nullptr) {
            void* next = *static_cast<void**>(head);
            ::operator delete(head);
            head = next;
        }
    }
};

inline FreeList& free_list() {
    thread_local FreeList fl;
    return fl;
}

// geoanon: hot
inline void* pool_alloc(std::size_t bytes) {
    FreeList& fl = free_list();
    if (fl.block_bytes == 0) fl.block_bytes = bytes;
    if (bytes == fl.block_bytes && fl.head != nullptr) {
        void* p = fl.head;
        fl.head = *static_cast<void**>(p);
        return p;
    }
    // geoanon-lint: allow(hot-alloc) -- cold miss: only until the freelist reaches the peak live packet count
    return ::operator new(bytes);
}

// geoanon: hot
inline void pool_free(void* p, std::size_t bytes) noexcept {
    FreeList& fl = free_list();
    if (bytes == fl.block_bytes) {
        *static_cast<void**>(p) = fl.head;
        fl.head = p;
        return;
    }
    ::operator delete(p);
}

template <typename T>
struct PoolAllocator {
    using value_type = T;
    PoolAllocator() = default;
    template <typename U>
    PoolAllocator(const PoolAllocator<U>&) {}  // NOLINT(google-explicit-constructor)
    T* allocate(std::size_t n) {
        static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                      "freelist blocks carry default new alignment only");
        return static_cast<T*>(pool_alloc(n * sizeof(T)));
    }
    void deallocate(T* p, std::size_t n) noexcept { pool_free(p, n * sizeof(T)); }
    friend bool operator==(const PoolAllocator&, const PoolAllocator&) { return true; }
};

}  // namespace pool_detail

/// Build a fresh packet from the pool (the protocols' replacement for
/// make_shared<Packet>). Field defaults match value-initialization, so this
/// is a drop-in swap; pooling changes only where the memory comes from,
/// never the simulation outcome.
inline std::shared_ptr<Packet> make_packet() {
    return std::allocate_shared<Packet>(pool_detail::PoolAllocator<Packet>{});
}

/// Copy-for-modification helper (forwarders stamp a new next hop); pooled
/// like make_packet().
inline std::shared_ptr<Packet> clone_packet(const Packet& p) {
    return std::allocate_shared<Packet>(pool_detail::PoolAllocator<Packet>{}, p);
}

}  // namespace geoanon::net
