#pragma once

#include <cstdint>

namespace geoanon::net {

/// Node identity — the "real" identity the anonymity machinery hides.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFF;

/// Link-layer address. GPSR mode uses per-node unique addresses; AGFW mode
/// sends every frame to/from the broadcast address (§3.2: no MAC source or
/// destination addresses are exposed).
using MacAddr = std::uint64_t;
inline constexpr MacAddr kBroadcastAddr = 0xFFFFFFFFFFFFULL;

/// Flow identity for metric accounting (not carried on the air).
using FlowId = std::uint32_t;

}  // namespace geoanon::net
