#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "net/network.hpp"
#include "phy/channel.hpp"
#include "util/time.hpp"

namespace geoanon::analysis {

/// Runtime checker for the paper-level protocol invariants (§3–§4), hooked
/// into the simulator as a passive channel tap plus a periodic state sweep.
/// It never mutates protocol state, so enabling it cannot change a run's
/// outcome — only observe it.
///
/// Checked on every transmission:
///  - anonymity (§3.2/§4): no cleartext node identity rides an anonymous
///    frame outside the trapdoor, and no real MAC address is exposed;
///  - addressing (§3.1.1): a committed next-hop pseudonym was actually
///    announced in a hello within the ANT freshness window (and, softly,
///    still is one of the owner's two latest — rotation races are counted
///    separately, not as violations, because a sender may legitimately pick
///    a pre-rotation table entry);
///  - reliability (§3.2): a network-layer ACK only acknowledges uids that
///    were previously transmitted as data;
///  - wire discipline: every packet re-encodes through the reference codec
///    and the canonical encoding never exceeds the accounted wire size.
///
/// Checked on every sweep: ANT entries expire within the freshness window
/// and expired entries do not outlive a purge cycle.
///
/// Violations are structured counters (not assertions) so tests can demand
/// `counters().violations() == 0` while ablation experiments — which break
/// anonymity on purpose — can assert the checker *sees* the breakage.
class InvariantChecker {
  public:
    struct Params {
        /// The run is an anonymous-routing (AGFW) run: identities and
        /// pseudonym discipline are enforced. False for GPSR baselines,
        /// where only the wire-discipline checks apply.
        bool expect_anonymous{true};
        /// §3.2: broadcast frames hide the transmitter MAC. Matches
        /// ScenarioConfig::anonymous_mac (ablations turn it off).
        bool expect_anonymous_mac{true};
        /// Location-service packets must use the anonymous row format
        /// (false when the plain-DLM ablation is configured).
        bool expect_anonymous_ls{true};
        /// ANT freshness window (AnonymousNeighborTable::Params::ttl).
        util::SimTime ant_ttl{util::SimTime::seconds(4.5)};
        /// Hello/purge cadence; bounds how long an expired entry may linger.
        util::SimTime hello_interval{util::SimTime::seconds(1.5)};
        /// Extra allowance on the announce-age check. The checker observes
        /// packets at *transmission* time, but the freshness rule governs
        /// *commit* time: a frame can sit in a saturated 50-deep interface
        /// queue for seconds before airing, plus NL-ACK retransmissions and
        /// reroutes of queued packets. The slack absorbs that bounded lag
        /// while still catching genuinely broken purging.
        util::SimTime target_age_slack{util::SimTime::seconds(5.0)};
        /// Period of the ANT state sweep.
        util::SimTime sweep_period{util::SimTime::seconds(1.0)};
        /// Re-encode every observed packet through the reference codec.
        bool check_codec{true};
    };

    struct Counters {
        // --- volume (context for the violation rates) --------------------
        std::uint64_t frames_checked{0};
        std::uint64_t packets_checked{0};
        std::uint64_t ant_entries_checked{0};
        std::uint64_t sweeps{0};

        // --- violations ---------------------------------------------------
        /// Cleartext node identity on an anonymous frame (src, dst, or
        /// location-service subject outside the encrypted row).
        std::uint64_t cleartext_identity{0};
        /// Real (non-broadcast) MAC address on a frame in anonymous mode.
        std::uint64_t mac_address_exposed{0};
        /// AGFW data frame with an empty trapdoor.
        std::uint64_t missing_trapdoor{0};
        /// Committed next-hop pseudonym never announced in any hello.
        std::uint64_t unknown_pseudonym{0};
        /// Committed next-hop pseudonym older than the ANT freshness window.
        std::uint64_t stale_pseudonym_target{0};
        /// ANT entry promising to outlive the freshness window.
        std::uint64_t overlong_ant_ttl{0};
        /// Expired ANT entry that survived past a purge cycle.
        std::uint64_t stale_ant_entry{0};
        /// ACK naming a uid that never travelled as data.
        std::uint64_t ack_without_delivery{0};
        /// Observed packet the reference codec rejects.
        std::uint64_t codec_reject{0};
        /// Canonical encoding larger than the accounted wire size.
        std::uint64_t wire_size_mismatch{0};

        // --- informational (not violations) ------------------------------
        /// Target pseudonym announced in-window but no longer one of the
        /// owner's two latest (legitimate rotation race, §3.1.1).
        std::uint64_t rotated_out_targets{0};
        /// §3.2 "last forwarding attempt" frames (pseudonym 0).
        std::uint64_t last_attempt_frames{0};
        /// §3.3 heterogeneous-fallback requests/replies naming a (public)
        /// subject id in the clear — the designed privacy/robustness trade,
        /// not a leak. Updates are different: see cleartext_identity.
        std::uint64_t plain_ls_fallbacks{0};

        /// Sum of all violation counters.
        std::uint64_t violations() const {
            return cleartext_identity + mac_address_exposed + missing_trapdoor +
                   unknown_pseudonym + stale_pseudonym_target + overlong_ant_ttl +
                   stale_ant_entry + ack_without_delivery + codec_reject +
                   wire_size_mismatch;
        }
    };

    InvariantChecker(net::Network& network, Params params);

    /// Install the channel tap and schedule the periodic sweep. Call once,
    /// before the simulation runs.
    void attach();

    const Counters& counters() const { return counters_; }
    const Params& params() const { return params_; }

  private:
    struct Announce {
        net::NodeId owner{net::kInvalidNode};
        util::SimTime at{};
    };

    void on_frame(const phy::Frame& frame);
    void check_packet(const net::Packet& pkt);
    void check_pseudonym_target(const net::Packet& pkt);
    void record_hello(const net::Packet& pkt);
    void sweep();

    net::Network& network_;
    Params params_;
    Counters counters_;
    bool attached_{false};

    /// pseudonym -> who announced it, and when (latest announce wins).
    std::unordered_map<std::uint64_t, Announce> announced_;
    /// uids observed on the air as data/location-service packets.
    std::unordered_set<std::uint64_t> data_uids_;
};

}  // namespace geoanon::analysis
