#include "analysis/invariant_checker.hpp"

#include "core/agfw.hpp"
#include "net/codec.hpp"

namespace geoanon::analysis {

using net::Packet;
using net::PacketType;
using util::SimTime;

namespace {

/// The agents are installed behind the RoutingAgent interface; the checker
/// inspects AGFW-specific state (ANT, pseudonym manager) where present.
const core::AgfwAgent* as_agfw(net::Node& node) {
    if (!node.has_agent()) return nullptr;
    return dynamic_cast<const core::AgfwAgent*>(&node.agent());
}

bool is_anonymous_type(PacketType t) {
    switch (t) {
        case PacketType::kAgfwHello:
        case PacketType::kAgfwData:
        case PacketType::kAgfwAck:
            return true;
        default:
            return false;
    }
}

bool is_ls_type(PacketType t) {
    switch (t) {
        case PacketType::kLocUpdate:
        case PacketType::kLocRequest:
        case PacketType::kLocReply:
        case PacketType::kLocReplicate:
        case PacketType::kLocDigest:
            return true;
        default:
            return false;
    }
}

}  // namespace

InvariantChecker::InvariantChecker(net::Network& network, Params params)
    : network_(network), params_(params) {}

void InvariantChecker::attach() {
    if (attached_) return;
    attached_ = true;
    network_.channel().add_snoop(
        [this](const phy::Frame& frame, const util::Vec2& /*tx_pos*/) {
            on_frame(frame);
        });
    network_.sim().after(params_.sweep_period, [this] { sweep(); });
}

void InvariantChecker::on_frame(const phy::Frame& frame) {
    ++counters_.frames_checked;

    if (params_.expect_anonymous && params_.expect_anonymous_mac) {
        // §3.2: every AGFW frame is a broadcast with no MAC addresses. RTS/
        // CTS never appear because anonymous mode cannot address a handshake.
        if (frame.src != net::kBroadcastAddr || frame.dst != net::kBroadcastAddr)
            ++counters_.mac_address_exposed;
    }

    if (frame.type != phy::Frame::Type::kData || !frame.payload) return;
    check_packet(*frame.payload);
}

void InvariantChecker::check_packet(const Packet& pkt) {
    ++counters_.packets_checked;

    if (params_.check_codec) {
        // Wire discipline: whatever the agents put on the air must survive
        // the reference codec, and the canonical encoding can never exceed
        // the wire size the protocol accounted for (it may be smaller when
        // full certificates are attached by value).
        const auto wire = net::codec::encode(pkt, /*include_trace=*/false);
        if (!net::codec::decode_ex(wire).packet)
            ++counters_.codec_reject;
        if (pkt.wire_bytes != 0 && wire.size() > pkt.wire_bytes)
            ++counters_.wire_size_mismatch;
    }

    if (params_.expect_anonymous) {
        // §3.2/§4: the sender's identity travels only inside the trapdoor
        // (or the encrypted ALS row) — never in a cleartext header field.
        // The plain-DLM location-service ablation legitimately carries
        // identities, so LS packets are only held to this when the run is
        // configured for the anonymous row format.
        if (is_anonymous_type(pkt.type) &&
            (pkt.src_id != net::kInvalidNode || pkt.dst_id != net::kInvalidNode))
            ++counters_.cleartext_identity;
        if (is_ls_type(pkt.type) && params_.expect_anonymous_ls) {
            if (pkt.src_id != net::kInvalidNode || pkt.dst_id != net::kInvalidNode)
                ++counters_.cleartext_identity;
            if (pkt.ls_subject != net::kInvalidNode) {
                // An anonymous updater must publish encrypted rows only; a
                // subject id on an update/replication is a leak. On requests
                // and replies it is the §3.3 heterogeneous fallback, which
                // names a public target by design.
                if (pkt.type == PacketType::kLocUpdate ||
                    pkt.type == PacketType::kLocReplicate)
                    ++counters_.cleartext_identity;
                else
                    ++counters_.plain_ls_fallbacks;
            }
        }
        if (pkt.type == PacketType::kGpsrHello || pkt.type == PacketType::kGpsrData)
            // Identity-bearing GPSR traffic has no business in an anonymous run.
            ++counters_.cleartext_identity;
    }

    switch (pkt.type) {
        case PacketType::kAgfwHello:
            record_hello(pkt);
            break;
        case PacketType::kAgfwData:
            if (pkt.trapdoor.empty()) ++counters_.missing_trapdoor;
            data_uids_.insert(pkt.uid);
            check_pseudonym_target(pkt);
            break;
        case PacketType::kAgfwAck:
            // §3.2: an acknowledgment only follows a received data packet, so
            // every acked uid must have been on the air before.
            for (const std::uint64_t uid : pkt.ack_uids)
                if (!data_uids_.contains(uid)) ++counters_.ack_without_delivery;
            break;
        case PacketType::kLocUpdate:
        case PacketType::kLocRequest:
        case PacketType::kLocReply:
        case PacketType::kLocReplicate:
        case PacketType::kLocDigest:
            data_uids_.insert(pkt.uid);
            if (params_.expect_anonymous) check_pseudonym_target(pkt);
            break;
        default:
            break;
    }
}

void InvariantChecker::record_hello(const Packet& pkt) {
    // The announcer has just rotated, so the announced pseudonym is some
    // node's current one; remember the owner for the two-latest check.
    Announce a;
    a.at = network_.sim().now();
    for (auto& node : network_.nodes()) {
        if (const auto* agent = as_agfw(node);
            agent && agent->pseudonyms().current() == pkt.hello_pseudonym) {
            a.owner = node.id();
            break;
        }
    }
    announced_[pkt.hello_pseudonym] = a;
}

void InvariantChecker::check_pseudonym_target(const Packet& pkt) {
    if (!params_.expect_anonymous) return;
    const std::uint64_t n = pkt.next_hop_pseudonym;
    if (n == 0) {  // §3.2 "last forwarding attempt"
        ++counters_.last_attempt_frames;
        return;
    }
    const auto it = announced_.find(n);
    if (it == announced_.end()) {
        // Forwarders may only address pseudonyms learned from hellos
        // (§3.1.1); a fabricated pseudonym is a protocol violation.
        ++counters_.unknown_pseudonym;
        return;
    }
    const SimTime age = network_.sim().now() - it->second.at;
    if (age > params_.ant_ttl + params_.target_age_slack) {
        // The sender's ANT must have expired this entry long ago.
        ++counters_.stale_pseudonym_target;
        return;
    }
    // Soft check: is the target still one of the owner's two latest (§3.1.1)?
    // A miss is a legitimate rotation race — the packet will go unanswered
    // and the NL-ACK machinery reroutes — so it is informational only.
    if (it->second.owner != net::kInvalidNode &&
        it->second.owner < network_.size()) {
        const auto* agent = as_agfw(network_.node(it->second.owner));
        if (agent && !agent->pseudonyms().is_mine(n))
            ++counters_.rotated_out_targets;
    }
}

void InvariantChecker::sweep() {
    ++counters_.sweeps;
    const SimTime now = network_.sim().now();
    // An expired entry may linger until the owner's next hello tick purges
    // it; anything older than a full purge cycle (plus slack) means the
    // purge path is broken.
    const SimTime purge_slack = params_.hello_interval * 2;

    for (auto& node : network_.nodes()) {
        // A crashed node runs no purge tick; its frozen table is not live
        // protocol state (it is wiped on recovery) and is not audited.
        if (!node.up()) continue;
        const auto* agent = as_agfw(node);
        if (!agent) continue;
        for (const auto& e : agent->ant().entries()) {
            ++counters_.ant_entries_checked;
            if (e.expires - now > params_.ant_ttl) ++counters_.overlong_ant_ttl;
            if (now - e.expires > purge_slack) ++counters_.stale_ant_entry;
        }
    }
    network_.sim().after(params_.sweep_period, [this] { sweep(); });
}

}  // namespace geoanon::analysis
