#include "mac/mac80211.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace geoanon::mac {

using phy::Frame;

Mac80211::Mac80211(sim::Simulator& sim, phy::Radio& radio, net::MacAddr addr,
                   MacParams params, Rng rng)
    : sim_(sim), radio_(radio), addr_(addr), params_(params), rng_(rng),
      cw_(params.cw_min) {
    radio_.set_mac_hooks([this] { on_channel_busy(); }, [this] { on_channel_idle(); },
                         [this](const Frame& f) { on_frame(f); });
}

SimTime Mac80211::data_airtime(const net::PacketPtr& pkt) const {
    return radio_.phy_params().airtime(pkt->wire_bytes + params_.data_header_bytes);
}

SimTime Mac80211::rts_nav(const net::PacketPtr& pkt) const {
    const auto& phy = radio_.phy_params();
    return params_.sifs + phy.airtime(params_.cts_bytes) + params_.sifs +
           data_airtime(pkt) + params_.sifs + phy.airtime(params_.ack_bytes);
}

void Mac80211::set_enabled(bool enabled) {
    if (enabled == enabled_) return;
    enabled_ = enabled;
    if (enabled) return;
    // Crash semantics: lose the interface queue without notifying the
    // network layer, abandon any exchange in progress, and forget the
    // contention and dedup state a rebooted interface would not have.
    for (const TxItem& item : queue_) {
        GEOANON_TRACE(sim_, .type = obs::EventType::kMacDrop,
                      .cause = obs::DropCause::kNodeDown, .node = trace_node_,
                      .uid = item.pkt ? item.pkt->uid : 0);
    }
    queue_.clear();
    if (access_event_ != sim::kInvalidEvent) {
        sim_.cancel(access_event_);
        access_event_ = sim::kInvalidEvent;
    }
    if (timeout_event_ != sim::kInvalidEvent) {
        sim_.cancel(timeout_event_);
        timeout_event_ = sim::kInvalidEvent;
    }
    if (nav_wake_event_ != sim::kInvalidEvent) {
        sim_.cancel(nav_wake_event_);
        nav_wake_event_ = sim::kInvalidEvent;
    }
    phase_ = Phase::kIdle;
    cw_ = params_.cw_min;
    backoff_slots_ = -1;
    nav_until_ = SimTime{};
    in_flight_ = phy::Frame{};
    last_rx_seq_.clear();
}

bool Mac80211::enqueue(TxItem item) {
    if (!enabled_) return false;
    if (queue_.size() >= params_.queue_limit) {
        ++stats_.drop_queue_full;
        GEOANON_TRACE(sim_, .type = obs::EventType::kMacDrop,
                      .cause = obs::DropCause::kQueueFull, .node = trace_node_,
                      .uid = item.pkt ? item.pkt->uid : 0);
        if (tx_done_handler_) tx_done_handler_(item.pkt, item.dst, false);
        return false;
    }
    item.seq = next_seq_++;
    GEOANON_TRACE(sim_, .type = obs::EventType::kMacEnqueue, .node = trace_node_,
                  .uid = item.pkt ? item.pkt->uid : 0, .seq = item.seq,
                  .detail = item.dst);
    queue_.push_back(std::move(item));
    try_begin_access();
    return true;
}

bool Mac80211::send_unicast(net::PacketPtr pkt, net::MacAddr dst) {
    assert(dst != net::kBroadcastAddr);
    ++stats_.unicast_accepted;
    return enqueue(TxItem{std::move(pkt), dst, 0});
}

bool Mac80211::send_broadcast(net::PacketPtr pkt) {
    ++stats_.broadcast_accepted;
    return enqueue(TxItem{std::move(pkt), net::kBroadcastAddr, 0});
}

bool Mac80211::medium_busy() const {
    return radio_.energy_busy() || sim_.now() < nav_until_;
}

void Mac80211::update_nav(SimTime until) {
    if (until > nav_until_) {
        // NAV extension while counting down acts like physical busy.
        freeze_backoff();
        nav_until_ = until;
    }
}

void Mac80211::try_begin_access() {
    if (phase_ != Phase::kIdle) return;
    if (queue_.empty()) return;
    if (access_event_ != sim::kInvalidEvent) return;
    if (medium_busy()) {
        // Physical busy resolves via on_channel_idle(); NAV-only busy needs
        // a wake-up of our own.
        if (!radio_.energy_busy() && nav_wake_event_ == sim::kInvalidEvent) {
            nav_wake_event_ = sim_.at(nav_until_, [this] {
                nav_wake_event_ = sim::kInvalidEvent;
                try_begin_access();
            });
        }
        return;
    }
    if (backoff_slots_ < 0)
        backoff_slots_ = static_cast<int>(rng_.uniform_int(0, cw_));
    access_difs_end_ = sim_.now() + params_.difs;
    access_event_ = sim_.after(params_.difs + params_.slot * backoff_slots_,
                               [this] { on_access_won(); });
}

void Mac80211::freeze_backoff() {
    if (access_event_ == sim::kInvalidEvent) return;
    sim_.cancel(access_event_);
    access_event_ = sim::kInvalidEvent;
    if (backoff_slots_ > 0 && sim_.now() > access_difs_end_) {
        const auto consumed = static_cast<int>((sim_.now() - access_difs_end_).ns() /
                                               params_.slot.ns());
        backoff_slots_ = std::max(0, backoff_slots_ - consumed);
    }
}

void Mac80211::on_channel_busy() { freeze_backoff(); }

void Mac80211::on_channel_idle() { try_begin_access(); }

void Mac80211::on_access_won() {
    access_event_ = sim::kInvalidEvent;
    backoff_slots_ = -1;  // fully consumed; redraw next time
    transmit_head();
}

void Mac80211::transmit_head() {
    assert(!queue_.empty());
    const TxItem& item = queue_.front();
    const auto& phy = radio_.phy_params();

    if (item.dst == net::kBroadcastAddr) {
        Frame f;
        f.type = Frame::Type::kData;
        f.src = params_.anonymous_source ? net::kBroadcastAddr : addr_;
        f.dst = net::kBroadcastAddr;
        f.seq = item.seq;
        f.payload = item.pkt;
        f.wire_bytes = item.pkt->wire_bytes + params_.data_header_bytes;
        ++stats_.data_sent;
        start_frame(std::move(f), Phase::kTxData);
        return;
    }

    if (params_.use_rtscts) {
        Frame f;
        f.type = Frame::Type::kRts;
        f.src = addr_;
        f.dst = item.dst;
        f.nav = rts_nav(item.pkt);
        f.wire_bytes = params_.rts_bytes;
        ++stats_.rts_sent;
        start_frame(std::move(f), Phase::kTxRts);
    } else {
        Frame f;
        f.type = Frame::Type::kData;
        f.src = addr_;
        f.dst = item.dst;
        f.nav = params_.sifs + phy.airtime(params_.ack_bytes);
        f.seq = item.seq;
        f.retry = item.retries > 0;
        f.payload = item.pkt;
        f.wire_bytes = item.pkt->wire_bytes + params_.data_header_bytes;
        ++stats_.data_sent;
        start_frame(std::move(f), Phase::kTxData);
    }
}

void Mac80211::start_frame(Frame frame, Phase phase) {
    phase_ = phase;
    in_flight_ = frame;
    const SimTime air = radio_.phy_params().airtime(frame.wire_bytes);
    radio_.start_tx(frame);
    sim_.after(air, [this] { on_tx_end(); });
}

void Mac80211::on_tx_end() {
    const auto& phy = radio_.phy_params();
    switch (phase_) {
        case Phase::kTxRts:
            phase_ = Phase::kWaitCts;
            timeout_event_ = sim_.after(
                params_.sifs + phy.airtime(params_.cts_bytes) + params_.timeout_slack,
                [this] { on_timeout(); });
            break;
        case Phase::kTxData:
            if (in_flight_.dst == net::kBroadcastAddr) {
                finish_head(true);
            } else {
                phase_ = Phase::kWaitAck;
                timeout_event_ = sim_.after(
                    params_.sifs + phy.airtime(params_.ack_bytes) + params_.timeout_slack,
                    [this] { on_timeout(); });
            }
            break;
        case Phase::kTxCts:
        case Phase::kTxAck:
            phase_ = Phase::kIdle;
            try_begin_access();
            break;
        default:
            break;  // stray completion after state change; ignore
    }
}

void Mac80211::on_timeout() {
    timeout_event_ = sim::kInvalidEvent;
    assert(phase_ == Phase::kWaitCts || phase_ == Phase::kWaitAck);
    phase_ = Phase::kIdle;
    TxItem& item = queue_.front();
    ++item.retries;
    ++stats_.retries;
    if (item.retries > params_.retry_limit) {
        ++stats_.unicast_drop_retry;
        GEOANON_TRACE(sim_, .type = obs::EventType::kMacDrop,
                      .cause = obs::DropCause::kMacRetry, .node = trace_node_,
                      .uid = item.pkt ? item.pkt->uid : 0, .seq = item.seq);
        finish_head(false);
        return;
    }
    cw_ = std::min(cw_ * 2 + 1, params_.cw_max);
    backoff_slots_ = -1;  // redraw from the doubled window
    try_begin_access();
}

void Mac80211::finish_head(bool success) {
    TxItem item = std::move(queue_.front());
    queue_.pop_front();
    if (success && item.dst != net::kBroadcastAddr) ++stats_.unicast_delivered;
    cw_ = params_.cw_min;
    backoff_slots_ = -1;
    phase_ = Phase::kIdle;
    if (tx_done_handler_) tx_done_handler_(item.pkt, item.dst, success);
    try_begin_access();
}

void Mac80211::respond_after_sifs(Frame frame, Phase phase) {
    phase_ = phase;  // blocks our own access until the response is out
    sim_.after(params_.sifs, [this, frame = std::move(frame), phase] {
        if (phase_ != phase) return;  // state changed under us; abort response
        if (radio_.transmitting()) {  // should not happen; stay safe
            phase_ = Phase::kIdle;
            try_begin_access();
            return;
        }
        if (frame.type == Frame::Type::kCts) ++stats_.cts_sent;
        if (frame.type == Frame::Type::kAck) ++stats_.ack_sent;
        start_frame(frame, phase);
    });
}

void Mac80211::on_frame(const Frame& f) {
    if (!enabled_) return;  // crashed interface (the radio gates this too)
    const bool for_me = f.dst == addr_;
    const bool broadcast = f.dst == net::kBroadcastAddr;

    if (!for_me && !broadcast) {
        // Virtual carrier sensing from overheard frames.
        if (f.nav > SimTime::zero()) update_nav(sim_.now() + f.nav);
        return;
    }

    switch (f.type) {
        case Frame::Type::kRts: {
            if (!for_me) break;
            if (phase_ != Phase::kIdle || sim_.now() < nav_until_) break;
            Frame cts;
            cts.type = Frame::Type::kCts;
            cts.src = addr_;
            cts.dst = f.src;
            const SimTime cts_air = radio_.phy_params().airtime(params_.cts_bytes);
            cts.nav = f.nav > params_.sifs + cts_air ? f.nav - params_.sifs - cts_air
                                                     : SimTime::zero();
            cts.wire_bytes = params_.cts_bytes;
            respond_after_sifs(std::move(cts), Phase::kTxCts);
            break;
        }
        case Frame::Type::kCts: {
            if (!for_me || phase_ != Phase::kWaitCts) break;
            sim_.cancel(timeout_event_);
            timeout_event_ = sim::kInvalidEvent;
            // SIFS, then the DATA frame of the pending head item.
            phase_ = Phase::kTxData;  // reserve state through the SIFS gap
            sim_.after(params_.sifs, [this] {
                if (phase_ != Phase::kTxData || queue_.empty()) return;
                const TxItem& item = queue_.front();
                Frame data;
                data.type = Frame::Type::kData;
                data.src = addr_;
                data.dst = item.dst;
                data.nav = params_.sifs + radio_.phy_params().airtime(params_.ack_bytes);
                data.seq = item.seq;
                data.retry = item.retries > 0;
                data.payload = item.pkt;
                data.wire_bytes = item.pkt->wire_bytes + params_.data_header_bytes;
                ++stats_.data_sent;
                start_frame(std::move(data), Phase::kTxData);
            });
            break;
        }
        case Frame::Type::kData: {
            // Deliver upstream, deduplicating MAC retransmissions.
            bool duplicate = false;
            if (!broadcast) {
                auto it = last_rx_seq_.find(f.src);
                duplicate = f.retry && it != last_rx_seq_.end() && it->second == f.seq;
                last_rx_seq_[f.src] = f.seq;
            }
            if (duplicate) {
                ++stats_.rx_duplicates;
            } else {
                ++stats_.rx_delivered;
                if (rx_handler_ && f.payload) rx_handler_(f.payload, f.src);
            }
            if (for_me) {
                if (phase_ != Phase::kIdle) break;  // cannot ACK mid-exchange
                Frame ack;
                ack.type = Frame::Type::kAck;
                ack.src = addr_;
                ack.dst = f.src;
                ack.wire_bytes = params_.ack_bytes;
                respond_after_sifs(std::move(ack), Phase::kTxAck);
            }
            break;
        }
        case Frame::Type::kAck: {
            if (!for_me || phase_ != Phase::kWaitAck) break;
            sim_.cancel(timeout_event_);
            timeout_event_ = sim::kInvalidEvent;
            finish_head(true);
            break;
        }
    }
}

void Mac80211::publish_metrics(obs::MetricsRegistry& reg) const {
    reg.add("mac.unicast_accepted", stats_.unicast_accepted);
    reg.add("mac.broadcast_accepted", stats_.broadcast_accepted);
    reg.add("mac.unicast_delivered", stats_.unicast_delivered);
    reg.add("mac.unicast_drop_retry", stats_.unicast_drop_retry);
    reg.add("mac.drop_queue_full", stats_.drop_queue_full);
    reg.add("mac.rts_sent", stats_.rts_sent);
    reg.add("mac.cts_sent", stats_.cts_sent);
    reg.add("mac.data_sent", stats_.data_sent);
    reg.add("mac.ack_sent", stats_.ack_sent);
    reg.add("mac.retries", stats_.retries);
    reg.add("mac.rx_delivered", stats_.rx_delivered);
    reg.add("mac.rx_duplicates", stats_.rx_duplicates);
}

}  // namespace geoanon::mac
