#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "net/packet.hpp"
#include "net/types.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace geoanon::mac {

using util::Rng;
using util::SimTime;

/// IEEE 802.11 DCF parameters. Defaults are 802.11 DSSS (the ns-2 CMU
/// defaults used by the paper): 20 us slot, 10 us SIFS, 50 us DIFS,
/// CW 31..1023, short retry limit 7.
struct MacParams {
    SimTime slot{SimTime::micros(20)};
    SimTime sifs{SimTime::micros(10)};
    SimTime difs{SimTime::micros(50)};
    int cw_min{31};
    int cw_max{1023};
    int retry_limit{7};
    /// Unicast exchanges use RTS/CTS virtual carrier sensing when true —
    /// the behavior Figure 1(b) attributes GPSR's high-density latency to.
    bool use_rtscts{true};
    std::uint32_t rts_bytes{20};
    std::uint32_t cts_bytes{14};
    std::uint32_t ack_bytes{14};
    /// MAC header + FCS added to every DATA frame.
    std::uint32_t data_header_bytes{28};
    /// Extra margin on CTS/ACK timeouts (propagation + rx/tx turnaround).
    SimTime timeout_slack{SimTime::micros(25)};
    /// Interface queue length (drop-tail beyond this; ns-2 default 50).
    std::size_t queue_limit{50};
    /// §3.2: anonymous senders must not expose their MAC address; broadcast
    /// frames then carry the broadcast address in the source field too.
    bool anonymous_source{false};
};

struct MacStats {
    std::uint64_t unicast_accepted{0};
    std::uint64_t broadcast_accepted{0};
    std::uint64_t unicast_delivered{0};    ///< MAC ACK received
    std::uint64_t unicast_drop_retry{0};   ///< exceeded retry limit
    std::uint64_t drop_queue_full{0};
    std::uint64_t rts_sent{0};
    std::uint64_t cts_sent{0};
    std::uint64_t data_sent{0};            ///< DATA frames on air (incl. retries)
    std::uint64_t ack_sent{0};
    std::uint64_t retries{0};
    std::uint64_t rx_delivered{0};         ///< DATA passed to the network layer
    std::uint64_t rx_duplicates{0};
};

/// Event-driven IEEE 802.11 DCF MAC entity.
///
/// Unicast: DIFS + backoff, then RTS/CTS/DATA/ACK (or DATA/ACK when RTS/CTS
/// is disabled) with exponential backoff and a retry limit, NAV honored from
/// overheard frames. Broadcast: DIFS + backoff, then DATA — no handshake, no
/// recovery — exactly the asymmetry §5 of the paper builds on: AGFW's local
/// broadcasts skip the RTS/CTS latency but inherit hidden-terminal losses.
class Mac80211 {
  public:
    /// Upstream delivery: network packet + transmitter's MAC address (the
    /// broadcast address in anonymous mode).
    using RxHandler = std::function<void(const net::PacketPtr&, net::MacAddr src)>;
    /// Outcome of a send: for unicast, true iff the MAC ACK arrived; for
    /// broadcast, true when the frame went on the air.
    using TxDoneHandler =
        std::function<void(const net::PacketPtr&, net::MacAddr dst, bool success)>;

    Mac80211(sim::Simulator& sim, phy::Radio& radio, net::MacAddr addr, MacParams params,
             Rng rng);

    void set_rx_handler(RxHandler h) { rx_handler_ = std::move(h); }
    void set_tx_done_handler(TxDoneHandler h) { tx_done_handler_ = std::move(h); }

    /// Queue a packet; returns false (and counts a drop) when the interface
    /// queue is full.
    bool send_unicast(net::PacketPtr pkt, net::MacAddr dst);
    bool send_broadcast(net::PacketPtr pkt);

    net::MacAddr address() const { return addr_; }
    const MacStats& stats() const { return stats_; }
    std::size_t queue_length() const { return queue_.size(); }

    /// Node id used for trace attribution only (the MAC address is the
    /// broadcast address in anonymous mode, so it can't serve as identity).
    void set_trace_node(net::NodeId id) { trace_node_ = id; }

    /// Fold this interface's counters into the run metrics (mac.*).
    void publish_metrics(obs::MetricsRegistry& reg) const;

    /// Fault injection: disabling models a crashed interface — the queue is
    /// flushed without tx-done notifications (silent halt), any exchange in
    /// progress is abandoned, and sends are refused until re-enabled.
    void set_enabled(bool enabled);
    bool enabled() const { return enabled_; }

  private:
    enum class Phase {
        kIdle,      ///< no exchange in progress (may be contending)
        kTxRts,
        kWaitCts,
        kTxData,
        kWaitAck,
        kTxCts,     ///< responding with CTS
        kTxAck,     ///< responding with ACK
    };

    struct TxItem {
        net::PacketPtr pkt;
        net::MacAddr dst;
        int retries{0};
        /// MAC sequence number, fixed at enqueue time so retransmissions
        /// carry the same seq (receiver-side dedup depends on it).
        std::uint32_t seq{0};
    };

    bool enqueue(TxItem item);
    bool medium_busy() const;
    void try_begin_access();
    void freeze_backoff();
    void on_channel_busy();
    void on_channel_idle();
    void on_access_won();
    void transmit_head();
    void start_frame(phy::Frame frame, Phase phase);
    void on_tx_end();
    void on_timeout();
    void finish_head(bool success);
    void on_frame(const phy::Frame& f);
    void respond_after_sifs(phy::Frame frame, Phase phase);
    void update_nav(SimTime until);

    SimTime rts_nav(const net::PacketPtr& pkt) const;
    SimTime data_airtime(const net::PacketPtr& pkt) const;

    sim::Simulator& sim_;
    phy::Radio& radio_;
    net::MacAddr addr_;
    MacParams params_;
    Rng rng_;

    RxHandler rx_handler_;
    TxDoneHandler tx_done_handler_;

    std::deque<TxItem> queue_;
    Phase phase_{Phase::kIdle};
    bool enabled_{true};
    net::NodeId trace_node_{net::kInvalidNode};
    int cw_;
    int backoff_slots_{-1};
    SimTime access_difs_end_{};        ///< when the DIFS of the pending access ends
    sim::EventId access_event_{sim::kInvalidEvent};
    sim::EventId timeout_event_{sim::kInvalidEvent};
    sim::EventId nav_wake_event_{sim::kInvalidEvent};
    SimTime nav_until_{};
    std::uint32_t next_seq_{1};
    phy::Frame in_flight_;             ///< frame currently being transmitted
    MacStats stats_;

    /// Receiver-side dedup of MAC-level retransmissions: last seq per source.
    std::unordered_map<net::MacAddr, std::uint32_t> last_rx_seq_;
};

}  // namespace geoanon::mac
