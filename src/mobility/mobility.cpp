#include "mobility/mobility.hpp"

#include <algorithm>
#include <cassert>

namespace geoanon::mobility {

RandomWaypoint::RandomWaypoint(Area area, Vec2 start, Params params, Rng rng)
    : area_(area), params_(params), rng_(rng) {
    assert(params_.min_speed_mps > 0.0 && params_.max_speed_mps >= params_.min_speed_mps);
    // First leg starts moving immediately (no initial pause), matching the
    // common ns-2 setdest behaviour.
    const Vec2 to = area_.random_point(rng_);
    const double speed = rng_.uniform(params_.min_speed_mps, params_.max_speed_mps);
    const double dist = util::distance(start, to);
    Segment s;
    s.start = SimTime::zero();
    s.move_start = SimTime::zero();
    s.end = SimTime::zero() + SimTime::seconds(dist / speed);
    s.from = start;
    s.to = to;
    segments_.push_back(s);
}

void RandomWaypoint::extend_to(SimTime t) {
    while (segments_.back().end < t) {
        const Segment& prev = segments_.back();
        Segment s;
        s.start = prev.end;
        s.move_start = prev.end + params_.pause;
        s.from = prev.to;
        s.to = area_.random_point(rng_);
        const double speed = rng_.uniform(params_.min_speed_mps, params_.max_speed_mps);
        const double dist = util::distance(s.from, s.to);
        s.end = s.move_start + SimTime::seconds(dist / speed);
        segments_.push_back(s);
    }
}

const RandomWaypoint::Segment& RandomWaypoint::segment_for(SimTime t) {
    extend_to(t);
    // Binary search for the segment containing t (segments tile [0, inf)).
    auto it = std::upper_bound(segments_.begin(), segments_.end(), t,
                               [](SimTime v, const Segment& s) { return v < s.end; });
    if (it == segments_.end()) it = segments_.end() - 1;
    return *it;
}

// position_at/velocity_at evaluate through the same sample_* helpers the
// EngineState SoA tables use, so the cached fast path and the virtual-call
// path are bit-identical by construction.
Vec2 RandomWaypoint::position_at(SimTime t) {
    const Segment& s = segment_for(t);
    return sample_position(MotionSample{s.start, s.move_start, s.end, s.from, s.to}, t);
}

Vec2 RandomWaypoint::velocity_at(SimTime t) {
    const Segment& s = segment_for(t);
    return sample_velocity(MotionSample{s.start, s.move_start, s.end, s.from, s.to}, t);
}

bool RandomWaypoint::motion_at(SimTime t, MotionSample& out) {
    const Segment& s = segment_for(t);
    out = MotionSample{s.start, s.move_start, s.end, s.from, s.to};
    return true;
}

std::vector<Vec2> uniform_placement(const Area& area, std::size_t count, Rng& rng) {
    std::vector<Vec2> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) out.push_back(area.random_point(rng));
    return out;
}

}  // namespace geoanon::mobility
