#pragma once

#include <memory>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"
#include "util/vec2.hpp"

namespace geoanon::mobility {

using util::Rng;
using util::SimTime;
using util::Vec2;

/// Rectangular simulation area with origin (0,0); the paper uses 1500 x 300 m.
struct Area {
    double width{1500.0};
    double height{300.0};

    bool contains(const Vec2& p) const {
        return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= height;
    }
    Vec2 center() const { return {width / 2.0, height / 2.0}; }
    Vec2 random_point(Rng& rng) const {
        return {rng.uniform(0.0, width), rng.uniform(0.0, height)};
    }
};

/// One piecewise-linear motion leg, snapshotted for cache-friendly
/// re-evaluation outside the model: the node pauses at `from` until
/// `move_start`, then travels linearly to `to`, arriving at `end`. The
/// sample answers queries for any t in [start, end); at or past `end` it is
/// stale and the caller must fetch a fresh one.
///
/// phy::EngineState keeps these in structure-of-arrays rows so the hello
/// sweep and grid queries evaluate positions from contiguous memory instead
/// of a virtual call + segment binary search per node per query.
struct MotionSample {
    SimTime start{};       // sample valid from here
    SimTime move_start{};  // travel begins (== start when not pausing)
    SimTime end{};         // arrival at `to`; stale at and after this time
    Vec2 from{};
    Vec2 to{};
};

/// Evaluate a sample exactly as RandomWaypoint::position_at always has.
/// Shared by the model and the SoA fast path so the two are bit-identical by
/// construction (same expressions, same operation order — floating point is
/// not associative, so duplicating the formula would risk drift).
inline Vec2 sample_position(const MotionSample& s, SimTime t) {
    if (t <= s.move_start) return s.from;
    const double travel = (s.end - s.move_start).to_seconds();
    if (travel <= 0.0 || t >= s.end) return s.to;
    const double frac = (t - s.move_start).to_seconds() / travel;
    return s.from + (s.to - s.from) * frac;
}

/// Companion of sample_position for velocities (zero while paused).
inline Vec2 sample_velocity(const MotionSample& s, SimTime t) {
    if (t <= s.move_start || t >= s.end) return {};
    const double travel = (s.end - s.move_start).to_seconds();
    if (travel <= 0.0) return {};
    return (s.to - s.from) / travel;
}

/// Position-over-time model for one node. Implementations must be
/// deterministic functions of their seed; queries may come in any time order.
class MobilityModel {
  public:
    virtual ~MobilityModel() = default;
    /// Node position at simulation time `t` (t >= 0).
    virtual Vec2 position_at(SimTime t) = 0;
    /// Velocity vector at `t` (zero when paused); lets forwarding strategies
    /// exploit predictable motion (§3.1.1).
    virtual Vec2 velocity_at(SimTime t) = 0;
    /// Fill `out` with the motion leg containing `t` and return true, or
    /// return false if the model cannot describe itself piecewise-linearly
    /// (callers then fall back to per-query position_at). Models that return
    /// true guarantee sample_position(out, u) == position_at(u) for every u
    /// in [out.start, out.end).
    virtual bool motion_at(SimTime t, MotionSample& out) {
        (void)t;
        (void)out;
        return false;
    }
};

/// Node that never moves.
class StationaryMobility final : public MobilityModel {
  public:
    explicit StationaryMobility(Vec2 pos) : pos_(pos) {}
    Vec2 position_at(SimTime) override { return pos_; }
    Vec2 velocity_at(SimTime) override { return {}; }
    bool motion_at(SimTime, MotionSample& out) override {
        // One degenerate leg covering all of time: from == to pins the
        // position and zeroes the velocity.
        out = MotionSample{SimTime::zero(), SimTime::zero(), SimTime::max(), pos_, pos_};
        return true;
    }

  private:
    Vec2 pos_;
};

/// Random-waypoint mobility (the CMU/ns-2 model the paper uses): pick a
/// uniform destination in the area and a uniform speed in [min,max], travel
/// there in a straight line, pause, repeat. Trajectory segments are generated
/// lazily and cached so arbitrary-time queries stay O(log n).
class RandomWaypoint final : public MobilityModel {
  public:
    struct Params {
        double min_speed_mps{1.0};
        double max_speed_mps{20.0};  // paper: up to 20 m/s
        SimTime pause{SimTime::seconds(60.0)};  // paper: 60 s pause
    };

    RandomWaypoint(Area area, Vec2 start, Params params, Rng rng);

    Vec2 position_at(SimTime t) override;
    Vec2 velocity_at(SimTime t) override;
    bool motion_at(SimTime t, MotionSample& out) override;

  private:
    /// One leg: pause at `from` until move_start, then travel to `to`,
    /// arriving at end_time.
    struct Segment {
        SimTime start;       // segment begins (pause begins)
        SimTime move_start;  // travel begins
        SimTime end;         // arrival at `to`
        Vec2 from;
        Vec2 to;
    };

    void extend_to(SimTime t);
    const Segment& segment_for(SimTime t);

    Area area_;
    Params params_;
    Rng rng_;
    std::vector<Segment> segments_;
};

/// Uniformly place `count` nodes in `area` (deterministic in rng).
std::vector<Vec2> uniform_placement(const Area& area, std::size_t count, Rng& rng);

}  // namespace geoanon::mobility
