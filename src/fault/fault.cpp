#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace geoanon::fault {

namespace {
/// Time a recovered node is watched for re-warming before the sample is
/// censored (dropped) — long enough for several hello rounds.
constexpr double kRecoveryWatchS = 30.0;
constexpr double kRecoveryPollS = 0.25;

/// Uniform double in [0, 1) from one SplitMix64 draw.
double to_unit(std::uint64_t u) { return (u >> 11) * 0x1.0p-53; }
}  // namespace

FaultInjector::FaultInjector(net::Network& network, FaultPlan plan)
    : network_(network),
      plan_(std::move(plan)),
      churn_rng_(util::SplitMix64(plan_.seed).next()),
      chan_rng_(util::SplitMix64(plan_.seed ^ 0x6A09E667F3BCC908ULL).next()),
      down_(network.size(), false),
      crash_cause_(network.size(), CrashCause::kScheduled) {}

void FaultInjector::arm() {
    auto& sim = network_.sim();
    for (const auto& c : plan_.crashes)
        sim.at(c.at, [this, c] { crash_node(c.node, c.duration); });
    for (const auto& o : plan_.als_outages)
        sim.at(o.at, [this, o] { trigger_als_outage(o); });
    for (const auto& f : plan_.server_flaps) {
        ++stats_.faults_injected;
        GEOANON_TRACE(sim, .type = obs::EventType::kFaultFired, .node = f.target,
                      .detail = static_cast<std::uint64_t>(obs::FaultKind::kServerFlap));
        // Self-rescheduling cycle driver; owned by flap_drivers_, not by its
        // own captures (same no-cycle idiom as the recovery watchers).
        auto drive = std::make_shared<std::function<void()>>();
        flap_drivers_.push_back(drive);
        auto* raw = drive.get();
        *drive = [this, f, raw] {
            const SimTime now = network_.sim().now();
            if (f.stop > SimTime{} && now >= f.stop) return;
            flap_once(f);
            if (f.period > SimTime{}) network_.sim().after(f.period, *raw);
        };
        sim.at(f.start, *raw);
    }
    if (plan_.churn) schedule_churn_arrival();
    if (plan_.gps_noise) install_gps_noise();
    install_drop_model();
}

void FaultInjector::crash_node(NodeId node, SimTime duration, CrashCause cause) {
    if (node >= network_.size() || down_[node]) return;
    down_[node] = true;
    crash_cause_[node] = cause;
    ++down_count_;
    ++stats_.node_crashes;
    ++stats_.faults_injected;
    GEOANON_TRACE(network_.sim(), .type = obs::EventType::kFaultFired, .node = node,
                  .detail = static_cast<std::uint64_t>(obs::FaultKind::kCrash));
    network_.node(node).set_up(false);
    if (duration > SimTime{})
        network_.sim().after(duration, [this, node] { recover_node(node); });
}

void FaultInjector::recover_node(NodeId node) {
    if (!down_[node]) return;
    down_[node] = false;
    --down_count_;
    ++stats_.node_recoveries;
    GEOANON_TRACE(network_.sim(), .type = obs::EventType::kFaultFired, .node = node,
                  .detail = static_cast<std::uint64_t>(obs::FaultKind::kRecover));
    network_.node(node).set_up(true);
    watch_recovery(node, network_.sim().now(), crash_cause_[node]);
}

util::Sampler& FaultInjector::recovery_sampler(CrashCause cause) {
    switch (cause) {
        case CrashCause::kChurn: return stats_.recovery_churn_s;
        case CrashCause::kAlsOutage: return stats_.recovery_outage_s;
        case CrashCause::kServerFlap: return stats_.recovery_flap_s;
        case CrashCause::kScheduled: break;
    }
    return stats_.recovery_crash_s;
}

void FaultInjector::watch_recovery(NodeId node, SimTime recovered_at,
                                   CrashCause cause) {
    if (!recovered_probe_) return;
    // Self-rescheduling poll: recovery latency is "recovered → routing state
    // warm again" per the agent probe. Crashing again, or staying cold past
    // the watch window, censors the sample.
    // Owned here, not by the closure itself — a self-capturing shared_ptr
    // would be a reference cycle (function object owning itself).
    auto poll = std::make_shared<std::function<void()>>();
    recovery_watchers_.push_back(poll);
    auto* raw = poll.get();
    *poll = [this, node, recovered_at, cause, raw] {
        if (down_[node]) return;
        const SimTime now = network_.sim().now();
        if (recovered_probe_(node)) {
            stats_.recovery_s.add((now - recovered_at).to_seconds());
            recovery_sampler(cause).add((now - recovered_at).to_seconds());
            return;
        }
        if ((now - recovered_at).to_seconds() >= kRecoveryWatchS) return;
        network_.sim().after(SimTime::seconds(kRecoveryPollS), *raw);
    };
    network_.sim().after(SimTime::seconds(kRecoveryPollS), *raw);
}

void FaultInjector::schedule_churn_arrival() {
    const auto& c = *plan_.churn;
    auto& sim = network_.sim();
    const SimTime gap =
        SimTime::seconds(churn_rng_.exponential(1.0 / c.crash_rate_per_s));
    const SimTime t = std::max(sim.now(), c.start) + gap;
    if (c.stop > SimTime{} && t > c.stop) return;
    sim.at(t, [this] { churn_arrival(); });
}

void FaultInjector::churn_arrival() {
    const auto& c = *plan_.churn;
    schedule_churn_arrival();
    if (c.max_concurrent_down > 0 && down_count_ >= c.max_concurrent_down) {
        ++stats_.churn_skipped;
        return;
    }
    std::vector<NodeId> up;
    for (NodeId id = 0; id < static_cast<NodeId>(network_.size()); ++id)
        if (!down_[id]) up.push_back(id);
    if (up.empty()) {
        ++stats_.churn_skipped;
        return;
    }
    const NodeId victim = up[static_cast<std::size_t>(
        churn_rng_.uniform_int(0, static_cast<std::int64_t>(up.size()) - 1))];
    const SimTime dur = SimTime::seconds(
        churn_rng_.uniform(c.min_down.to_seconds(), c.max_down.to_seconds()));
    crash_node(victim, dur, CrashCause::kChurn);
}

void FaultInjector::trigger_als_outage(const FaultPlan::AlsOutage& outage) {
    if (!home_center_) return;  // no grid in this scenario; outage is a no-op
    const Vec2 center = home_center_(outage.target);
    bool any = false;
    for (NodeId id = 0; id < static_cast<NodeId>(network_.size()); ++id) {
        if (down_[id]) continue;
        if (util::distance(network_.node(id).true_position(), center) <=
            outage.radius_m) {
            crash_node(id, outage.duration, CrashCause::kAlsOutage);
            any = true;
        }
    }
    if (any) {
        ++stats_.als_outages;
        GEOANON_TRACE(network_.sim(), .type = obs::EventType::kFaultFired,
                      .node = outage.target,
                      .detail = static_cast<std::uint64_t>(obs::FaultKind::kAlsOutage));
    }
}

void FaultInjector::flap_once(const FaultPlan::ServerFlap& flap) {
    if (!home_center_) return;  // no grid in this scenario; flap is a no-op
    const Vec2 center = home_center_(flap.target);
    bool any = false;
    for (NodeId id = 0; id < static_cast<NodeId>(network_.size()); ++id) {
        if (down_[id]) continue;
        if (util::distance(network_.node(id).true_position(), center) <=
            flap.radius_m) {
            crash_node(id, flap.down_time, CrashCause::kServerFlap);
            any = true;
        }
    }
    if (any) ++stats_.server_flap_cycles;
}

void FaultInjector::install_gps_noise() {
    const FaultPlan::GpsNoise g = *plan_.gps_noise;
    ++stats_.faults_injected;
    GEOANON_TRACE(network_.sim(), .type = obs::EventType::kFaultFired,
                  .detail = static_cast<std::uint64_t>(obs::FaultKind::kGpsNoise));
    for (auto& node : network_.nodes()) {
        const NodeId id = node.id();
        // Deterministic at any query time: the offset is a pure function of
        // (seed, node, epoch index) — Rng streams can't be sampled at
        // arbitrary times without perturbing replay.
        node.set_gps_error([g, id, seed = plan_.seed](SimTime now) -> Vec2 {
            if (now < g.start) return {};
            if (g.stop > SimTime{} && now >= g.stop) return {};
            const std::uint64_t epoch =
                static_cast<std::uint64_t>(now.ns() / g.epoch.ns());
            util::SplitMix64 sm(seed ^ (0x9E3779B97F4A7C15ULL * (id + 1)) ^
                                (0xDA942042E4DD58B5ULL * (epoch + 1)));
            const double u1 = to_unit(sm.next());
            const double u2 = to_unit(sm.next());
            // Box–Muller: (dx, dy) iid N(0, sigma_m).
            const double r = g.sigma_m * std::sqrt(-2.0 * std::log(1.0 - u1));
            const double th = 2.0 * std::numbers::pi * u2;
            return Vec2{r * std::cos(th), r * std::sin(th)};
        });
    }
}

void FaultInjector::install_drop_model() {
    if (!plan_.gilbert_elliott && plan_.jams.empty() && plan_.partitions.empty())
        return;
    if (plan_.gilbert_elliott) {
        ++stats_.faults_injected;
        GEOANON_TRACE(network_.sim(), .type = obs::EventType::kFaultFired,
                      .detail = static_cast<std::uint64_t>(obs::FaultKind::kLossBurst));
    }
    stats_.faults_injected += plan_.jams.size();
    for (std::size_t i = 0; i < plan_.jams.size(); ++i) {
        GEOANON_TRACE(network_.sim(), .type = obs::EventType::kFaultFired,
                      .detail = static_cast<std::uint64_t>(obs::FaultKind::kJam));
    }
    stats_.faults_injected += plan_.partitions.size();
    for (std::size_t i = 0; i < plan_.partitions.size(); ++i) {
        GEOANON_TRACE(network_.sim(), .type = obs::EventType::kFaultFired,
                      .detail = static_cast<std::uint64_t>(obs::FaultKind::kPartition));
    }
    network_.channel().set_drop_model(
        [this](const phy::Frame&, const Vec2& tx_pos, const Vec2& rx_pos) {
            return should_drop(tx_pos, rx_pos);
        });
}

bool FaultInjector::jam_active(const Vec2& rx_pos, SimTime now) const {
    for (const auto& j : plan_.jams) {
        if (now < j.start) continue;
        if (j.stop > SimTime{} && now >= j.stop) continue;
        if (util::distance(rx_pos, j.center) <= j.radius_m) return true;
    }
    return false;
}

bool FaultInjector::partition_active(const Vec2& tx_pos, const Vec2& rx_pos,
                                     SimTime now) const {
    for (const auto& p : plan_.partitions) {
        if (now < p.start) continue;
        if (p.heal > SimTime{} && now >= p.heal) continue;
        if ((tx_pos.x < p.boundary_x_m) != (rx_pos.x < p.boundary_x_m)) return true;
    }
    return false;
}

bool FaultInjector::should_drop(const Vec2& tx_pos, const Vec2& rx_pos) {
    const SimTime now = network_.sim().now();
    if (partition_active(tx_pos, rx_pos, now)) {
        ++stats_.frames_lost_partition;
        return true;
    }
    if (jam_active(rx_pos, now)) {
        ++stats_.frames_lost_jam;
        return true;
    }
    if (plan_.gilbert_elliott) {
        const auto& ge = *plan_.gilbert_elliott;
        if (now >= ge.start && (ge.stop == SimTime{} || now < ge.stop)) {
            advance_ge_chain(now);
            const double p = ge_bad_ ? ge.loss_bad : ge.loss_good;
            if (p > 0.0 && chan_rng_.bernoulli(p)) {
                ++stats_.frames_lost_loss_burst;
                return true;
            }
        }
    }
    return false;
}

void FaultInjector::publish_metrics(obs::MetricsRegistry& reg) const {
    reg.add("fault.faults_injected", stats_.faults_injected);
    reg.add("fault.node_crashes", stats_.node_crashes);
    reg.add("fault.node_recoveries", stats_.node_recoveries);
    reg.add("fault.als_outages", stats_.als_outages);
    reg.add("fault.churn_skipped", stats_.churn_skipped);
    reg.add("fault.server_flap_cycles", stats_.server_flap_cycles);
    reg.add("fault.frames_lost_loss_burst", stats_.frames_lost_loss_burst);
    reg.add("fault.frames_lost_jam", stats_.frames_lost_jam);
    reg.add("fault.frames_lost_partition", stats_.frames_lost_partition);
    reg.observe_all("fault.recovery_s", stats_.recovery_s);
    reg.observe_all("fault.recovery_crash_s", stats_.recovery_crash_s);
    reg.observe_all("fault.recovery_churn_s", stats_.recovery_churn_s);
    reg.observe_all("fault.recovery_outage_s", stats_.recovery_outage_s);
    reg.observe_all("fault.recovery_flap_s", stats_.recovery_flap_s);
}

void FaultInjector::advance_ge_chain(SimTime now) {
    const auto& ge = *plan_.gilbert_elliott;
    if (ge_next_ == SimTime{}) {
        ge_bad_ = false;
        ge_next_ = ge.start + SimTime::seconds(chan_rng_.exponential(ge.mean_good_s));
    }
    while (ge_next_ <= now) {
        ge_bad_ = !ge_bad_;
        ge_next_ = ge_next_ + SimTime::seconds(chan_rng_.exponential(
                                  ge_bad_ ? ge.mean_bad_s : ge.mean_good_s));
    }
}

}  // namespace geoanon::fault
