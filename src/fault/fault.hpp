#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/network.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"
#include "util/vec2.hpp"

namespace geoanon::fault {

using net::NodeId;
using util::SimTime;
using util::Vec2;

/// Declarative fault schedule for a scenario run. Everything here is
/// deterministic given `seed`: the same plan against the same scenario
/// replays the same crashes, bursts, and position errors.
///
/// Convention: a `stop` left at SimTime{} means "until the end of the run".
struct FaultPlan {
    /// Seed for the injector's own randomness (churn arrivals, burst dwell
    /// times). Independent of the scenario seed so fault schedules can be
    /// varied while traffic and mobility stay fixed.
    std::uint64_t seed{1};

    /// One scheduled crash: the node halts silently at `at` (no goodbye on
    /// the air), recovers with wiped protocol state after `duration`.
    /// duration == SimTime{} means the node stays down forever.
    struct NodeCrash {
        NodeId node{net::kInvalidNode};
        SimTime at{};
        SimTime duration{};
    };
    std::vector<NodeCrash> crashes;

    /// Random churn: crash arrivals form a Poisson process at
    /// `crash_rate_per_s`; each victim is drawn uniformly from the currently
    /// up nodes and stays down uniform[min_down, max_down].
    struct Churn {
        double crash_rate_per_s{0.1};
        SimTime start{};
        SimTime stop{};
        SimTime min_down{SimTime::seconds(5.0)};
        SimTime max_down{SimTime::seconds(20.0)};
        /// Cap on simultaneously-down nodes (a 20%-churn scenario caps at
        /// nodes/5); arrivals beyond the cap are skipped, not queued.
        int max_concurrent_down{0};  ///< 0 = no cap
    };
    std::optional<Churn> churn;

    /// Gilbert–Elliott two-state burst-loss channel impairment, layered on
    /// every link: the channel dwells exponentially in a good state (loss
    /// probability loss_good) and a bad state (loss_bad). Losses consume the
    /// frame for every receiver-local decode independently; the medium is
    /// still occupied (carrier sense and collisions behave normally).
    struct GilbertElliott {
        SimTime start{};
        SimTime stop{};
        double mean_good_s{2.0};
        double mean_bad_s{0.3};
        double loss_good{0.0};
        double loss_bad{0.8};
    };
    std::optional<GilbertElliott> gilbert_elliott;

    /// Jammed region: any receiver inside the circle decodes nothing while
    /// the jammer is active (transmitters inside still radiate — their
    /// frames are lost only at jammed receivers).
    struct Jam {
        Vec2 center{};
        double radius_m{150.0};
        SimTime start{};
        SimTime stop{};
    };
    std::vector<Jam> jams;

    /// GPS error: every node's self-reported position (hellos, location
    /// updates, greedy decisions) is offset by a per-node, per-epoch draw
    /// from N(0, sigma_m) on each axis. The true physical position — what
    /// the radio propagation model uses — is unaffected.
    struct GpsNoise {
        double sigma_m{15.0};
        SimTime epoch{SimTime::seconds(1.0)};
        SimTime start{};
        SimTime stop{};
    };
    std::optional<GpsNoise> gps_noise;

    /// ALS server-grid outage: at `at`, crash every node currently inside
    /// `radius_m` of `target`'s home-grid center — the nodes that could be
    /// serving (or replicating) the target's location rows.
    struct AlsOutage {
        NodeId target{net::kInvalidNode};
        SimTime at{};
        SimTime duration{SimTime::seconds(30.0)};
        double radius_m{200.0};
    };
    std::vector<AlsOutage> als_outages;

    /// Network partition: while active, no frame crosses the vertical line
    /// x = boundary_x_m (enforced in the channel drop model, like Jam — the
    /// medium is still occupied, only cross-boundary decodes die). Align the
    /// boundary with a grid column edge to split home grids cleanly.
    struct Partition {
        double boundary_x_m{0.0};
        SimTime start{};
        /// Absolute heal time; SimTime{} = the split never heals.
        SimTime heal{};
    };
    std::vector<Partition> partitions;

    /// Server flap: every `period`, crash each currently-up node within
    /// `radius_m` of `target`'s home-grid center for `down_time` — rapid
    /// up/down cycling of the replica set, the pathological failover load.
    struct ServerFlap {
        NodeId target{net::kInvalidNode};
        SimTime start{};
        SimTime stop{};
        SimTime period{SimTime::seconds(4.0)};
        SimTime down_time{SimTime::seconds(2.0)};
        double radius_m{200.0};
    };
    std::vector<ServerFlap> server_flaps;

    bool empty() const {
        return crashes.empty() && !churn && !gilbert_elliott && jams.empty() &&
               !gps_noise && als_outages.empty() && partitions.empty() &&
               server_flaps.empty();
    }
};

/// Executes a FaultPlan against a Network: schedules crashes/recoveries,
/// installs the channel drop model, injects GPS error, and measures recovery
/// latency (crash-end → the node's routing state is warm again, via an
/// agent-specific probe).
///
/// Construct after the network is fully built, call arm() before sim.run().
class FaultInjector {
  public:
    /// Fault class that caused a crash; keys the per-class recovery-latency
    /// samplers so "how fast does the grid heal after an outage" can be told
    /// apart from ordinary churn recovery.
    enum class CrashCause : std::uint8_t { kScheduled, kChurn, kAlsOutage, kServerFlap };

    struct Stats {
        std::uint64_t faults_injected{0};   ///< crash events + impairment windows
        std::uint64_t node_crashes{0};
        std::uint64_t node_recoveries{0};
        std::uint64_t als_outages{0};       ///< outage events (≥1 node crashed)
        std::uint64_t churn_skipped{0};     ///< arrivals over max_concurrent_down
        std::uint64_t server_flap_cycles{0};  ///< flap cycles that downed ≥1 node
        std::uint64_t frames_lost_loss_burst{0};
        std::uint64_t frames_lost_jam{0};
        std::uint64_t frames_lost_partition{0};
        util::Sampler recovery_s;           ///< crash-end → probe-true latency
        // Per-class breakdown of recovery_s (same samples, keyed by cause).
        util::Sampler recovery_crash_s;
        util::Sampler recovery_churn_s;
        util::Sampler recovery_outage_s;
        util::Sampler recovery_flap_s;
    };

    FaultInjector(net::Network& network, FaultPlan plan);

    /// Probe that reports whether a node's routing state has re-warmed after
    /// recovery (e.g. its neighbor table is non-empty again). Optional; when
    /// unset, recovery latency is not measured.
    void set_recovered_probe(std::function<bool(NodeId)> probe) {
        recovered_probe_ = std::move(probe);
    }
    /// Maps a node id to its home-grid center (for AlsOutage targeting).
    /// Optional; AlsOutage entries are ignored without it.
    void set_home_center(std::function<Vec2(NodeId)> fn) {
        home_center_ = std::move(fn);
    }

    /// Schedule every fault in the plan and install the channel drop model.
    void arm();

    /// Crash `node` now; auto-recover after `duration` (SimTime{} = never).
    /// `cause` keys the per-class recovery-latency sampler.
    void crash_node(NodeId node, SimTime duration,
                    CrashCause cause = CrashCause::kScheduled);

    bool is_down(NodeId node) const { return down_[node]; }
    int down_count() const { return down_count_; }
    const Stats& stats() const { return stats_; }
    /// Fold the injector's counters into the run metrics (fault.*), plus the
    /// fault.recovery_s histogram.
    void publish_metrics(obs::MetricsRegistry& reg) const;

  private:
    bool should_drop(const Vec2& tx_pos, const Vec2& rx_pos);
    void advance_ge_chain(SimTime now);
    void recover_node(NodeId node);
    void watch_recovery(NodeId node, SimTime crashed_until, CrashCause cause);
    void schedule_churn_arrival();
    void churn_arrival();
    void trigger_als_outage(const FaultPlan::AlsOutage& outage);
    void flap_once(const FaultPlan::ServerFlap& flap);
    void install_gps_noise();
    void install_drop_model();
    bool jam_active(const Vec2& rx_pos, SimTime now) const;
    bool partition_active(const Vec2& tx_pos, const Vec2& rx_pos, SimTime now) const;
    util::Sampler& recovery_sampler(CrashCause cause);

    net::Network& network_;
    FaultPlan plan_;
    util::Rng churn_rng_;
    util::Rng chan_rng_;

    std::vector<bool> down_;
    /// Cause of each node's most recent crash (valid while down / recovering).
    std::vector<CrashCause> crash_cause_;
    int down_count_{0};

    // Gilbert–Elliott chain state, advanced lazily at each decode decision.
    bool ge_bad_{false};
    SimTime ge_next_{};

    std::function<bool(NodeId)> recovered_probe_;
    std::function<Vec2(NodeId)> home_center_;
    /// Self-rescheduling recovery-watch polls; owned here (not by their own
    /// captures) so the injector is leak-free.
    std::vector<std::shared_ptr<std::function<void()>>> recovery_watchers_;
    /// Self-rescheduling server-flap cycle drivers (same ownership idiom).
    std::vector<std::shared_ptr<std::function<void()>>> flap_drivers_;
    Stats stats_;
};

}  // namespace geoanon::fault
