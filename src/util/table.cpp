#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace geoanon::util {

std::string fmt_double(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

TablePrinter& TablePrinter::row() {
    rows_.emplace_back();
    return *this;
}

TablePrinter& TablePrinter::cell(const std::string& value) {
    if (rows_.empty()) rows_.emplace_back();
    rows_.back().push_back(value);
    return *this;
}

TablePrinter& TablePrinter::cell(double value, int precision) {
    return cell(fmt_double(value, precision));
}

TablePrinter& TablePrinter::cell(long long value) { return cell(std::to_string(value)); }

std::string TablePrinter::to_string() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string>& cells, std::string& out) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string& v = c < cells.size() ? cells[c] : std::string{};
            out += "| ";
            out.append(widths[c] - v.size(), ' ');
            out += v;
            out += ' ';
        }
        out += "|\n";
    };

    std::string out;
    emit_row(headers_, out);
    for (std::size_t c = 0; c < widths.size(); ++c) {
        out += "|";
        out.append(widths[c] + 2, '-');
    }
    out += "|\n";
    for (const auto& row : rows_) emit_row(row, out);
    return out;
}

void TablePrinter::print() const {
    const std::string s = to_string();
    std::fwrite(s.data(), 1, s.size(), stdout);
    std::fflush(stdout);
}

}  // namespace geoanon::util
