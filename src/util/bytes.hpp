#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace geoanon::util {

using Bytes = std::vector<std::uint8_t>;

/// Append-only big-endian serializer used for message bodies and for feeding
/// structured data into hashes/ciphers deterministically.
class ByteWriter {
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /// IEEE-754 bit pattern, big-endian — exact round trip.
    void f64(double v);
    void raw(std::span<const std::uint8_t> data);
    /// Length-prefixed (u32) byte string.
    void bytes(std::span<const std::uint8_t> data);
    void str(std::string_view s);

    const Bytes& data() const { return buf_; }
    Bytes take() { return std::move(buf_); }

  private:
    Bytes buf_;
};

/// Bounds-checked reader matching ByteWriter's encoding. All getters return
/// nullopt on underflow rather than throwing; a failed read leaves the cursor
/// unspecified, so callers should bail out on the first nullopt.
class ByteReader {
  public:
    explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

    std::optional<std::uint8_t> u8();
    std::optional<std::uint16_t> u16();
    std::optional<std::uint32_t> u32();
    std::optional<std::uint64_t> u64();
    std::optional<double> f64();
    std::optional<Bytes> raw(std::size_t n);
    /// Reads a u32 length prefix then that many bytes.
    std::optional<Bytes> bytes();
    std::optional<std::string> str();

    std::size_t remaining() const { return data_.size() - pos_; }

  private:
    std::span<const std::uint8_t> data_;
    std::size_t pos_{0};
};

/// Lowercase hex encoding of a byte span.
std::string to_hex(std::span<const std::uint8_t> data);

/// Parses lowercase/uppercase hex; nullopt on odd length or bad digit.
std::optional<Bytes> from_hex(std::string_view hex);

/// Constant-time-ish equality (length leak only); fine for a simulator.
bool bytes_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

}  // namespace geoanon::util
