#pragma once

#include <algorithm>
#include <cstdint>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace geoanon::util {

/// Deterministic capped exponential backoff with seeded jitter.
///
/// Shared retry schedule for every protocol that re-sends after a timeout
/// (LocationService query reissues, AGFW ack retries). Centralizing the
/// schedule fixes two classes of bug the ad-hoc versions had:
///
///  - synchronized retry storms: with a fixed reissue interval, every
///    requester that queried a now-dark server grid retries in lockstep and
///    slams the recovering grid with a wavefront. Jitter (drawn from the
///    HOST node's seeded Rng, so runs stay bit-reproducible) decorrelates
///    the retries;
///  - unbounded doubling: the cap keeps the worst-case delay meaningful on
///    long outages instead of backing off past the experiment horizon.
///
/// The schedule for 1-based attempt `a` is
///
///     delay(a) = min(initial * multiplier^(a-1), cap) * (1 + jitter * u)
///
/// with u ~ Uniform[0,1) from the caller's Rng. `jitter == 0` draws nothing
/// from the Rng, so callers that need a bit-identical legacy schedule (AGFW
/// ack backoff) can adopt the policy without perturbing existing runs.
class RetryPolicy {
  public:
    struct Params {
        /// Delay before the first retry (attempt 1).
        SimTime initial{SimTime::seconds(1.0)};
        /// Geometric growth factor per attempt.
        double multiplier{2.0};
        /// Upper bound on the un-jittered delay; zero means uncapped.
        SimTime cap{};
        /// Fractional jitter on top of the capped delay (0 = deterministic).
        double jitter{0.0};
    };

    /// Delay to wait after the `attempt`-th send (1-based) before retrying.
    /// Jitter, when enabled, consumes exactly one uniform from `rng`.
    static SimTime delay(const Params& p, int attempt, Rng& rng) {
        double ns = static_cast<double>(std::max<std::int64_t>(p.initial.ns(), 0));
        for (int i = 1; i < attempt; ++i) ns *= p.multiplier;
        if (p.cap.ns() > 0) ns = std::min(ns, static_cast<double>(p.cap.ns()));
        if (p.jitter > 0.0) ns *= 1.0 + p.jitter * rng.uniform01();
        return SimTime::nanos(static_cast<std::int64_t>(ns));
    }
};

}  // namespace geoanon::util
