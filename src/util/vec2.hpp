#pragma once

#include <cmath>

namespace geoanon::util {

/// A 2-D point/vector in metres. Value type; used for node positions,
/// velocities and grid geometry throughout the simulator.
struct Vec2 {
    double x{0.0};
    double y{0.0};

    constexpr Vec2() = default;
    constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

    constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
    constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
    constexpr Vec2& operator+=(const Vec2& o) {
        x += o.x;
        y += o.y;
        return *this;
    }
    constexpr Vec2& operator-=(const Vec2& o) {
        x -= o.x;
        y -= o.y;
        return *this;
    }
    constexpr bool operator==(const Vec2& o) const { return x == o.x && y == o.y; }

    /// Squared Euclidean length; avoids the sqrt when only comparisons matter.
    constexpr double length_sq() const { return x * x + y * y; }
    double length() const { return std::sqrt(length_sq()); }

    /// Unit vector in the same direction; returns {0,0} for the zero vector.
    Vec2 normalized() const {
        const double len = length();
        return len > 0.0 ? Vec2{x / len, y / len} : Vec2{};
    }
};

inline constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

/// Euclidean distance between two points.
inline double distance(const Vec2& a, const Vec2& b) { return (a - b).length(); }

/// Squared distance; prefer for nearest-neighbor comparisons.
inline constexpr double distance_sq(const Vec2& a, const Vec2& b) {
    return (a - b).length_sq();
}

}  // namespace geoanon::util
