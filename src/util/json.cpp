#include "util/json.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "util/log.hpp"

namespace geoanon::util {

void JsonWriter::separate() {
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (!depth_counts_.empty() && depth_counts_.back()++ > 0) out_ += ',';
}

JsonWriter& JsonWriter::begin_object() {
    separate();
    out_ += '{';
    depth_counts_.push_back(0);
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    depth_counts_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    separate();
    out_ += '[';
    depth_counts_.push_back(0);
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    depth_counts_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
    separate();
    out_ += '"';
    out_ += json_escape(k);
    out_ += "\":";
    after_key_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
    separate();
    out_ += '"';
    out_ += json_escape(v);
    out_ += '"';
    return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
    separate();
    char buf[40];
    // %.17g round-trips every finite double and formats identically for
    // identical bit patterns — the byte-stability the sweep contract needs.
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ += buf;
    return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
    separate();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out_ += buf;
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
    separate();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRId64, v);
    out_ += buf;
    return *this;
}

JsonWriter& JsonWriter::value(bool v) {
    separate();
    out_ += v ? "true" : "false";
    return *this;
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) {
        log_error("cannot open %s for writing", path.c_str());
        return false;
    }
    f << content << '\n';
    return static_cast<bool>(f);
}

}  // namespace geoanon::util
