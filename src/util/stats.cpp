#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace geoanon::util {

void RunningStat::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::ci95_half_width() const {
    if (n_ < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStat::merge(const RunningStat& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
        *this = o;
        return;
    }
    const double delta = o.mean_ - mean_;
    const auto n = static_cast<double>(n_ + o.n_);
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(o.n_) / n;
    mean_ = (mean_ * static_cast<double>(n_) + o.mean_ * static_cast<double>(o.n_)) / n;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
    n_ += o.n_;
}

void Sampler::add(double x) {
    samples_.push_back(x);
    dirty_ = true;
}

double Sampler::mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
}

double Sampler::min() const {
    if (samples_.empty()) return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double Sampler::max() const {
    if (samples_.empty()) return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

void Sampler::ensure_sorted() const {
    if (dirty_ || sorted_.size() != samples_.size()) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        dirty_ = false;
    }
}

double Sampler::percentile(double p) const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    const double clamped = std::clamp(p, 0.0, 100.0);
    const auto rank = static_cast<std::size_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(sorted_.size())));
    const std::size_t idx = rank == 0 ? 0 : rank - 1;
    return sorted_[std::min(idx, sorted_.size() - 1)];
}

}  // namespace geoanon::util
