#include "util/bytes.hpp"

#include <bit>
#include <cstring>

namespace geoanon::util {

void ByteWriter::u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
    for (int shift = 24; shift >= 0; shift -= 8)
        buf_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void ByteWriter::u64(std::uint64_t v) {
    for (int shift = 56; shift >= 0; shift -= 8)
        buf_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    raw(data);
}

void ByteWriter::str(std::string_view s) {
    bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

std::optional<std::uint8_t> ByteReader::u8() {
    if (remaining() < 1) return std::nullopt;
    return data_[pos_++];
}

std::optional<std::uint16_t> ByteReader::u16() {
    if (remaining() < 2) return std::nullopt;
    std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
}

std::optional<std::uint32_t> ByteReader::u32() {
    if (remaining() < 4) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
}

std::optional<std::uint64_t> ByteReader::u64() {
    if (remaining() < 8) return std::nullopt;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 8;
    return v;
}

std::optional<double> ByteReader::f64() {
    auto v = u64();
    if (!v) return std::nullopt;
    return std::bit_cast<double>(*v);
}

std::optional<Bytes> ByteReader::raw(std::size_t n) {
    if (remaining() < n) return std::nullopt;
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
}

std::optional<Bytes> ByteReader::bytes() {
    auto len = u32();
    if (!len) return std::nullopt;
    return raw(*len);
}

std::optional<std::string> ByteReader::str() {
    auto b = bytes();
    if (!b) return std::nullopt;
    return std::string(b->begin(), b->end());
}

std::string to_hex(std::span<const std::uint8_t> data) {
    static constexpr char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(data.size() * 2);
    for (std::uint8_t b : data) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xF]);
    }
    return out;
}

namespace {
int hex_digit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}
}  // namespace

std::optional<Bytes> from_hex(std::string_view hex) {
    if (hex.size() % 2 != 0) return std::nullopt;
    Bytes out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = hex_digit(hex[i]);
        const int lo = hex_digit(hex[i + 1]);
        if (hi < 0 || lo < 0) return std::nullopt;
        out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return out;
}

bool bytes_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
    if (a.size() != b.size()) return false;
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
    return acc == 0;
}

}  // namespace geoanon::util
