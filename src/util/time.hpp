#pragma once

#include <cstdint>
#include <compare>

namespace geoanon::util {

/// Simulation time as a strong type over signed 64-bit nanoseconds.
///
/// All scheduling in the discrete-event kernel uses SimTime, which makes runs
/// bit-reproducible for a given seed (no floating-point accumulation drift).
class SimTime {
  public:
    constexpr SimTime() = default;

    static constexpr SimTime nanos(std::int64_t ns) { return SimTime{ns}; }
    static constexpr SimTime micros(std::int64_t us) { return SimTime{us * 1'000}; }
    static constexpr SimTime millis(std::int64_t ms) { return SimTime{ms * 1'000'000}; }
    static constexpr SimTime seconds(double s) {
        return SimTime{static_cast<std::int64_t>(s * 1e9)};
    }
    /// Largest representable time; used as an "infinitely far" sentinel.
    static constexpr SimTime max() { return SimTime{INT64_MAX}; }
    static constexpr SimTime zero() { return SimTime{0}; }

    constexpr std::int64_t ns() const { return ns_; }
    constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
    constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }

    constexpr SimTime operator+(SimTime o) const { return SimTime{ns_ + o.ns_}; }
    constexpr SimTime operator-(SimTime o) const { return SimTime{ns_ - o.ns_}; }
    constexpr SimTime& operator+=(SimTime o) {
        ns_ += o.ns_;
        return *this;
    }
    constexpr SimTime operator*(std::int64_t k) const { return SimTime{ns_ * k}; }
    constexpr auto operator<=>(const SimTime&) const = default;

  private:
    constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}
    std::int64_t ns_{0};
};

namespace literals {
constexpr SimTime operator""_s(unsigned long long v) {
    return SimTime::nanos(static_cast<std::int64_t>(v) * 1'000'000'000);
}
constexpr SimTime operator""_ms(unsigned long long v) {
    return SimTime::millis(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_us(unsigned long long v) {
    return SimTime::micros(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ns(unsigned long long v) {
    return SimTime::nanos(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace geoanon::util
