#pragma once

#include <cstdint>
#include <limits>

namespace geoanon::util {

/// SplitMix64 — used to expand a single user seed into engine state.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
  public:
    explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

    constexpr std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/// xoshiro256** — the simulator's deterministic random engine.
/// Satisfies UniformRandomBitGenerator so it can drive <random> distributions,
/// but we provide allocation-free helpers for the common cases.
class Rng {
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9A0BE53C1FE43D2CULL) { reseed(seed); }

    void reseed(std::uint64_t seed) {
        SplitMix64 sm(seed);
        for (auto& s : s_) s = sm.next();
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

    result_type operator()() { return next_u64(); }

    std::uint64_t next_u64();

    /// Uniform double in [0, 1).
    double uniform01();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Exponentially distributed value with the given mean (> 0).
    double exponential(double mean);

    /// True with probability p (clamped to [0,1]).
    bool bernoulli(double p);

    /// Derive an independent child stream (for per-node RNGs).
    Rng fork();

  private:
    std::uint64_t s_[4]{};
};

}  // namespace geoanon::util
