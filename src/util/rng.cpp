#include "util/rng.hpp"

#include <cmath>

namespace geoanon::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform01() {
    // 53 high-quality bits -> [0,1) double, the canonical xoshiro recipe.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
    // Rejection sampling to kill modulo bias.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return lo + static_cast<std::int64_t>(v % span);
}

double Rng::exponential(double mean) {
    double u = uniform01();
    // Guard against log(0).
    while (u <= 0.0) u = uniform01();
    return -mean * std::log(u);
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

Rng Rng::fork() {
    Rng child;
    SplitMix64 sm(next_u64());
    for (auto& s : child.s_) s = sm.next();
    return child;
}

}  // namespace geoanon::util
