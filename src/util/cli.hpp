#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace geoanon::util {

/// Minimal `--key=value` / `--flag` command-line parser for the examples and
/// benches. Unknown arguments are collected as positionals.
class CliArgs {
  public:
    CliArgs(int argc, char** argv);

    bool has(const std::string& key) const { return values_.contains(key); }
    std::string get(const std::string& key, const std::string& dflt) const;
    double get(const std::string& key, double dflt) const;
    std::int64_t get(const std::string& key, std::int64_t dflt) const;
    bool get(const std::string& key, bool dflt) const;

    const std::vector<std::string>& positionals() const { return positionals_; }
    const std::string& program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> positionals_;
};

}  // namespace geoanon::util
