#include "util/log.hpp"

#include <atomic>
#include <cstdio>

#include "util/thread_annotations.hpp"

namespace geoanon::util {

namespace {
// Atomic so concurrent SweepRunner workers can log while another thread
// adjusts the threshold without a lock on the fast (filtered-out) path.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// One message is three stream writes (tag, body, newline); the mutex keeps
// concurrent SweepRunner workers from interleaving them mid-line.
Mutex g_stream_mu;

const char* tag(LogLevel level) {
    switch (level) {
        case LogLevel::kTrace: return "TRACE";
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO ";
        case LogLevel::kWarn: return "WARN ";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF  ";
    }
    return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void vlog(LogLevel level, const char* fmt, va_list args) {
    if (level < g_level.load(std::memory_order_relaxed)) return;
    const MutexLock lock(g_stream_mu);
    std::fprintf(stderr, "[%s] ", tag(level));
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}

void log(LogLevel level, const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    vlog(level, fmt, args);
    va_end(args);
}

}  // namespace geoanon::util
