#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace geoanon::util {

/// Minimal ordered JSON emitter. Keys appear in call order and numbers are
/// formatted via a fixed printf recipe, so two semantically equal documents
/// are byte-identical — which is what the sweep determinism contract
/// (`--jobs 1` vs `--jobs 8`) and the trace-export contract compare.
class JsonWriter {
  public:
    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();
    JsonWriter& key(const std::string& k);
    JsonWriter& value(const std::string& v);
    JsonWriter& value(const char* v);
    JsonWriter& value(double v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(bool v);

    const std::string& str() const { return out_; }

  private:
    void separate();
    std::string out_;
    /// One entry per open container: count of elements emitted so far.
    std::vector<std::size_t> depth_counts_;
    bool after_key_{false};
};

std::string json_escape(const std::string& s);

/// Write `content` to `path`; returns false (and logs) on failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace geoanon::util
