#include "util/cli.hpp"

#include <cstdlib>

namespace geoanon::util {

CliArgs::CliArgs(int argc, char** argv) {
    if (argc > 0) program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.starts_with("--")) {
            const auto eq = arg.find('=');
            if (eq == std::string::npos) {
                values_[arg.substr(2)] = "true";
            } else {
                values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
            }
        } else {
            positionals_.push_back(arg);
        }
    }
}

std::string CliArgs::get(const std::string& key, const std::string& dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
}

double CliArgs::get(const std::string& key, double dflt) const {
    auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    // strtod over atof: atof is UB on out-of-range input and reports no
    // errors (cert-err34-c); malformed values fall back to the default.
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    return end == it->second.c_str() ? dflt : v;
}

std::int64_t CliArgs::get(const std::string& key, std::int64_t dflt) const {
    auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    char* end = nullptr;
    const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
    return end == it->second.c_str() ? dflt : v;
}

bool CliArgs::get(const std::string& key, bool dflt) const {
    auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    return it->second != "false" && it->second != "0" && it->second != "no";
}

}  // namespace geoanon::util
