#include "util/cli.hpp"

#include <cstdlib>

namespace geoanon::util {

CliArgs::CliArgs(int argc, char** argv) {
    if (argc > 0) program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) == 0) {
            const auto eq = arg.find('=');
            if (eq == std::string::npos) {
                values_[arg.substr(2)] = "true";
            } else {
                values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
            }
        } else {
            positionals_.push_back(arg);
        }
    }
}

std::string CliArgs::get(const std::string& key, const std::string& dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
}

double CliArgs::get(const std::string& key, double dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atof(it->second.c_str());
}

std::int64_t CliArgs::get(const std::string& key, std::int64_t dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atoll(it->second.c_str());
}

bool CliArgs::get(const std::string& key, bool dflt) const {
    auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    return it->second != "false" && it->second != "0" && it->second != "no";
}

}  // namespace geoanon::util
