#pragma once

#include <cstdarg>
#include <string>

namespace geoanon::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Process-wide log threshold; messages below it are dropped cheaply.
/// The simulator defaults to kWarn so large sweeps stay quiet.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging to stderr with a level tag. The threshold check is
/// atomic (lock-free when filtered out) and emission is serialized by a
/// mutex, so concurrent SweepRunner workers may log without tearing
/// (ordering between threads is best-effort).
void log(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

inline void log_trace(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
inline void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
inline void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
inline void log_warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
inline void log_error(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

void vlog(LogLevel level, const char* fmt, va_list args);

inline void log_trace(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    vlog(LogLevel::kTrace, fmt, args);
    va_end(args);
}
inline void log_debug(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    vlog(LogLevel::kDebug, fmt, args);
    va_end(args);
}
inline void log_info(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    vlog(LogLevel::kInfo, fmt, args);
    va_end(args);
}
inline void log_warn(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    vlog(LogLevel::kWarn, fmt, args);
    va_end(args);
}
inline void log_error(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    vlog(LogLevel::kError, fmt, args);
    va_end(args);
}

}  // namespace geoanon::util
