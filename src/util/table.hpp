#pragma once

#include <string>
#include <vector>

namespace geoanon::util {

/// Right-aligned ASCII table printer used by the benchmark harnesses so every
/// figure/table reproduction prints in the same, diff-friendly format.
class TablePrinter {
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /// Begin a new row; subsequent cell() calls fill it left to right.
    TablePrinter& row();
    TablePrinter& cell(const std::string& value);
    TablePrinter& cell(double value, int precision = 3);
    TablePrinter& cell(long long value);
    TablePrinter& cell(int value) { return cell(static_cast<long long>(value)); }
    TablePrinter& cell(std::size_t value) { return cell(static_cast<long long>(value)); }

    /// Render the whole table to a string (headers, separator, rows).
    std::string to_string() const;
    /// Render and write to stdout.
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with a fixed number of decimals (helper for benches).
std::string fmt_double(double v, int precision = 3);

}  // namespace geoanon::util
