#pragma once

#include <mutex>

// Clang -Wthread-safety capability annotations, no-ops on GCC (which has no
// analysis; the macros expand to nothing so the same headers build
// everywhere). Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
//
// libstdc++'s std::mutex carries no capability attributes, so annotating
// members with GEOANON_GUARDED_BY only type-checks against the util::Mutex /
// util::MutexLock wrappers below — use those, not raw std::mutex, in any
// type that shares state across SweepRunner workers.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define GEOANON_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef GEOANON_THREAD_ANNOTATION
#define GEOANON_THREAD_ANNOTATION(x)
#endif

#define GEOANON_CAPABILITY(x) GEOANON_THREAD_ANNOTATION(capability(x))
#define GEOANON_SCOPED_CAPABILITY GEOANON_THREAD_ANNOTATION(scoped_lockable)
#define GEOANON_GUARDED_BY(x) GEOANON_THREAD_ANNOTATION(guarded_by(x))
#define GEOANON_PT_GUARDED_BY(x) GEOANON_THREAD_ANNOTATION(pt_guarded_by(x))
#define GEOANON_REQUIRES(...) \
    GEOANON_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GEOANON_ACQUIRE(...) \
    GEOANON_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GEOANON_RELEASE(...) \
    GEOANON_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GEOANON_TRY_ACQUIRE(...) \
    GEOANON_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define GEOANON_EXCLUDES(...) GEOANON_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define GEOANON_RETURN_CAPABILITY(x) GEOANON_THREAD_ANNOTATION(lock_returned(x))
#define GEOANON_NO_THREAD_SAFETY_ANALYSIS \
    GEOANON_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace geoanon::util {

/// std::mutex with capability annotations so clang can check GUARDED_BY
/// contracts. Zero overhead: the wrapper is a plain forwarding layer.
class GEOANON_CAPABILITY("mutex") Mutex {
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() GEOANON_ACQUIRE() { mu_.lock(); }
    void unlock() GEOANON_RELEASE() { mu_.unlock(); }
    bool try_lock() GEOANON_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    std::mutex mu_;
};

/// RAII lock for util::Mutex (std::lock_guard is invisible to the analysis).
class GEOANON_SCOPED_CAPABILITY MutexLock {
  public:
    explicit MutexLock(Mutex& mu) GEOANON_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() GEOANON_RELEASE() { mu_.unlock(); }
    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& mu_;
};

}  // namespace geoanon::util
