#pragma once

#include <cstddef>
#include <vector>

namespace geoanon::util {

/// Streaming mean/variance/min/max via Welford's algorithm.
/// O(1) memory; use Sampler when percentiles are needed.
class RunningStat {
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /// Sample variance (n-1 denominator); 0 when fewer than two samples.
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /// Half-width of the ~95% normal-approximation confidence interval.
    double ci95_half_width() const;

    /// Merge another accumulator into this one (parallel Welford).
    void merge(const RunningStat& o);

  private:
    std::size_t n_{0};
    double mean_{0.0};
    double m2_{0.0};
    double min_{0.0};
    double max_{0.0};
    double sum_{0.0};
};

/// Stores all samples for exact percentiles; use for latency distributions.
class Sampler {
  public:
    void add(double x);
    std::size_t count() const { return samples_.size(); }
    double mean() const;
    double min() const;
    double max() const;
    /// Exact percentile by nearest-rank on the sorted samples, p in [0,100].
    /// Returns 0 for an empty sampler.
    double percentile(double p) const;
    double median() const { return percentile(50.0); }
    const std::vector<double>& samples() const { return samples_; }

  private:
    void ensure_sorted() const;
    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool dirty_{false};
};

}  // namespace geoanon::util
