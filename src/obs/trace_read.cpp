#include "obs/trace_read.hpp"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace geoanon::obs {

const JsonValue* JsonValue::find(const std::string& key) const {
    for (const auto& [k, v] : object)
        if (k == key) return &v;
    return nullptr;
}

namespace {

class Parser {
  public:
    Parser(const std::string& text, std::string& error) : text_(text), error_(error) {}

    bool run(JsonValue& out) {
        skip_ws();
        if (!value(out)) return false;
        skip_ws();
        if (pos_ != text_.size()) return fail("trailing garbage");
        return true;
    }

  private:
    bool fail(const char* msg) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%s at offset %zu", msg, pos_);
        error_ = buf;
        return false;
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r'))
            ++pos_;
    }

    bool literal(const char* word) {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0) return fail("bad literal");
        pos_ += n;
        return true;
    }

    bool value(JsonValue& out) {
        if (pos_ >= text_.size()) return fail("unexpected end of input");
        switch (text_[pos_]) {
            case '{': return object(out);
            case '[': return array(out);
            case '"':
                out.kind = JsonValue::Kind::kString;
                return string(out.string);
            case 't':
                out.kind = JsonValue::Kind::kBool;
                out.boolean = true;
                return literal("true");
            case 'f':
                out.kind = JsonValue::Kind::kBool;
                out.boolean = false;
                return literal("false");
            case 'n':
                out.kind = JsonValue::Kind::kNull;
                return literal("null");
            default: return number(out);
        }
    }

    bool object(JsonValue& out) {
        out.kind = JsonValue::Kind::kObject;
        ++pos_;  // '{'
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skip_ws();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected key");
            if (!string(key)) return false;
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
            ++pos_;
            skip_ws();
            JsonValue v;
            if (!value(v)) return false;
            out.object.emplace_back(std::move(key), std::move(v));
            skip_ws();
            if (pos_ >= text_.size()) return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool array(JsonValue& out) {
        out.kind = JsonValue::Kind::kArray;
        ++pos_;  // '['
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skip_ws();
            JsonValue v;
            if (!value(v)) return false;
            out.array.push_back(std::move(v));
            skip_ws();
            if (pos_ >= text_.size()) return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool string(std::string& out) {
        ++pos_;  // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) return fail("bad escape");
                switch (text_[pos_]) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'u': {
                        if (pos_ + 4 >= text_.size()) return fail("bad \\u escape");
                        unsigned cp = 0;
                        for (int i = 1; i <= 4; ++i) {
                            const char h = text_[pos_ + i];
                            cp <<= 4;
                            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
                            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
                            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
                            else return fail("bad \\u escape");
                        }
                        pos_ += 4;
                        // The exporter only emits \u00xx for control bytes.
                        if (cp > 0xff) return fail("unsupported \\u escape");
                        out += static_cast<char>(cp);
                        break;
                    }
                    default: return fail("bad escape");
                }
                ++pos_;
                continue;
            }
            out += c;
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool number(JsonValue& out) {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) return fail("expected value");
        char* end = nullptr;
        const std::string tok = text_.substr(start, pos_ - start);
        out.kind = JsonValue::Kind::kNumber;
        out.number = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0') return fail("bad number");
        out.number_raw = tok;
        return true;
    }

    const std::string& text_;
    std::string& error_;
    std::size_t pos_{0};
};

bool schema_fail(std::string& error, std::size_t index, const char* msg) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "traceEvents[%zu]: %s", index, msg);
    error = buf;
    return false;
}

/// Fetch a numeric member as uint64; false if absent / not a number /
/// negative / fractional.
bool get_u64(const JsonValue& obj, const char* key, std::uint64_t& out) {
    const JsonValue* v = obj.find(key);
    if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return false;
    // Exact path: a plain unsigned integer token is re-parsed from source so
    // values above 2^53 (full 64-bit uids) survive the double in `number`.
    const std::string& raw = v->number_raw;
    if (!raw.empty() &&
        raw.find_first_not_of("0123456789") == std::string::npos) {
        errno = 0;
        char* end = nullptr;
        const unsigned long long u = std::strtoull(raw.c_str(), &end, 10);
        if (errno != 0 || end == nullptr || *end != '\0') return false;
        out = u;
        return true;
    }
    if (v->number < 0) return false;
    out = static_cast<std::uint64_t>(v->number);
    if (static_cast<double>(out) != v->number) return false;
    return true;
}

}  // namespace

bool parse_json(const std::string& text, JsonValue& out, std::string& error) {
    return Parser(text, error).run(out);
}

bool load_chrome_trace(const std::string& text, LoadedTrace& out, std::string& error) {
    JsonValue root;
    if (!parse_json(text, root, error)) return false;
    if (root.kind != JsonValue::Kind::kObject) {
        error = "top level is not an object";
        return false;
    }

    const JsonValue* other = root.find("otherData");
    if (other == nullptr || other->kind != JsonValue::Kind::kObject) {
        error = "missing otherData object";
        return false;
    }
    if (const JsonValue* s = other->find("scheme");
        s != nullptr && s->kind == JsonValue::Kind::kString)
        out.meta.scheme = s->string;
    std::uint64_t u = 0;
    if (get_u64(*other, "seed", u)) out.meta.seed = u;
    if (get_u64(*other, "num_nodes", u)) out.meta.num_nodes = static_cast<std::uint32_t>(u);
    if (const JsonValue* s = other->find("sim_seconds");
        s != nullptr && s->kind == JsonValue::Kind::kNumber)
        out.meta.sim_seconds = s->number;
    if (get_u64(*other, "evicted", u)) out.meta.evicted = u;

    const JsonValue* evs = root.find("traceEvents");
    if (evs == nullptr || evs->kind != JsonValue::Kind::kArray) {
        error = "missing traceEvents array";
        return false;
    }

    out.events.clear();
    out.events.reserve(evs->array.size());
    std::uint64_t prev_id = 0;
    for (std::size_t i = 0; i < evs->array.size(); ++i) {
        const JsonValue& je = evs->array[i];
        if (je.kind != JsonValue::Kind::kObject) return schema_fail(error, i, "not an object");

        Event e;
        const JsonValue* name = je.find("name");
        if (name == nullptr || name->kind != JsonValue::Kind::kString)
            return schema_fail(error, i, "missing name");
        if (!event_type_from_name(name->string.c_str(), e.type))
            return schema_fail(error, i, "unknown event type");

        const JsonValue* ph = je.find("ph");
        if (ph == nullptr || ph->kind != JsonValue::Kind::kString || ph->string != "i")
            return schema_fail(error, i, "ph is not \"i\"");

        const JsonValue* ts = je.find("ts");
        if (ts == nullptr || ts->kind != JsonValue::Kind::kNumber || ts->number < 0)
            return schema_fail(error, i, "bad ts");
        e.t = SimTime::nanos(static_cast<std::int64_t>(ts->number * 1000.0));

        const JsonValue* tid = je.find("tid");
        if (tid == nullptr || tid->kind != JsonValue::Kind::kNumber)
            return schema_fail(error, i, "bad tid");
        e.node = tid->number < 0 ? net::kInvalidNode
                                 : static_cast<net::NodeId>(tid->number);

        const JsonValue* args = je.find("args");
        if (args == nullptr || args->kind != JsonValue::Kind::kObject)
            return schema_fail(error, i, "missing args");
        if (!get_u64(*args, "id", e.id) || e.id == 0)
            return schema_fail(error, i, "bad args.id");
        if (e.id <= prev_id) return schema_fail(error, i, "ids not strictly increasing");
        prev_id = e.id;
        if (!get_u64(*args, "uid", e.uid)) return schema_fail(error, i, "bad args.uid");
        std::uint64_t tmp = 0;
        if (!get_u64(*args, "flow", tmp)) return schema_fail(error, i, "bad args.flow");
        e.flow = static_cast<net::FlowId>(tmp);
        if (!get_u64(*args, "seq", tmp)) return schema_fail(error, i, "bad args.seq");
        e.seq = static_cast<std::uint32_t>(tmp);
        if (!get_u64(*args, "bytes", tmp)) return schema_fail(error, i, "bad args.bytes");
        e.bytes = static_cast<std::uint32_t>(tmp);

        const JsonValue* cause = args->find("cause");
        if (cause == nullptr || cause->kind != JsonValue::Kind::kString)
            return schema_fail(error, i, "missing args.cause");
        if (!drop_cause_from_name(cause->string.c_str(), e.cause))
            return schema_fail(error, i, "unknown drop cause");

        const JsonValue* detail = args->find("detail");
        if (detail == nullptr || detail->kind != JsonValue::Kind::kString ||
            detail->string.rfind("0x", 0) != 0)
            return schema_fail(error, i, "bad args.detail");
        char* end = nullptr;
        e.detail = std::strtoull(detail->string.c_str() + 2, &end, 16);
        if (end == nullptr || *end != '\0') return schema_fail(error, i, "bad args.detail");

        out.events.push_back(e);
    }
    return true;
}

}  // namespace geoanon::obs
