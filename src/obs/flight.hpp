#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"

namespace geoanon::obs {

/// Reconstructed life of one packet uid: every event that mentioned it, in
/// record order, condensed into a status, a hop chain, and a drop cause.
struct Flight {
    enum class Status : std::uint8_t {
        kDelivered,  ///< at least one kNetDeliver
        kDropped,    ///< explicit drop event, or a derived terminal cause
        kInFlight,   ///< still pending when the trace ended
    };

    std::uint64_t uid{0};
    net::FlowId flow{0};
    std::uint32_t seq{0};
    bool is_data{false};  ///< originated by the application (kAppSend seen)

    Status status{Status::kInFlight};
    /// For kDropped: the last explicit drop cause, or a derived one
    /// (kLastAttemptUnanswered / kNextHopSilent / kRelayStuck) when the
    /// flight just went silent. kNone only while genuinely in flight.
    DropCause cause{DropCause::kNone};
    net::NodeId origin{net::kInvalidNode};
    net::NodeId end_node{net::kInvalidNode};  ///< deliver/drop/last-custody node
    SimTime first{};
    SimTime last{};

    /// Nodes that took custody, in order: origin, then each forwarder, then
    /// the delivering node. Consecutive duplicates collapsed.
    std::vector<net::NodeId> hop_chain;
    /// Every event mentioning this uid, sorted by id. Per-hop causality —
    /// which receptions collided, which retransmissions fired — reads
    /// directly off this list.
    std::vector<Event> events;

    double latency_ms() const { return (last - first).to_millis(); }
};

/// Indexes a trace's events by packet uid and derives one Flight per uid.
/// Events with uid 0 (hellos, pseudonym rotations, faults) are not indexed.
class FlightIndex {
  public:
    explicit FlightIndex(const std::vector<Event>& events);

    const std::vector<Flight>& flights() const { return flights_; }
    const Flight* find(std::uint64_t uid) const;

    /// Application data flights that never reached a destination, in uid
    /// order — the "why did packet N die" work list.
    std::vector<const Flight*> undelivered_data() const;
    /// Delivered data flights sorted by descending latency, capped at n.
    std::vector<const Flight*> worst_latency(std::size_t n) const;

  private:
    std::vector<Flight> flights_;  ///< sorted by uid
    std::unordered_map<std::uint64_t, std::size_t> by_uid_;
};

}  // namespace geoanon::obs
