#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace geoanon::obs {

/// Minimal recursive-descent JSON value — just enough to read back the
/// Chrome trace export (and to validate third-party edits of it). Objects
/// keep insertion order; numbers stay double (uint64 details travel as hex
/// strings precisely so this stays lossless).
struct JsonValue {
    enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind{Kind::kNull};
    bool boolean{false};
    double number{0.0};
    /// Raw source token of a kNumber. `number` is a double and silently
    /// rounds integers above 2^53 (packet uids are full 64-bit PRP outputs);
    /// exact u64 extraction re-parses this instead.
    std::string number_raw;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /// First member with this key, or nullptr. O(members).
    const JsonValue* find(const std::string& key) const;
};

/// Parse `text`; returns false and sets `error` (with offset) on malformed
/// input. Trailing garbage after the top-level value is an error.
bool parse_json(const std::string& text, JsonValue& out, std::string& error);

/// A Chrome-trace file decoded back into typed events.
struct LoadedTrace {
    TraceMeta meta;
    std::vector<Event> events;  ///< in file (= id) order
};

/// Decode and schema-check a Chrome trace produced by to_chrome_trace_json.
/// On any violation — missing key, wrong type, unknown event/cause name,
/// non-monotonic ids — returns false with a one-line diagnostic in `error`.
bool load_chrome_trace(const std::string& text, LoadedTrace& out, std::string& error);

}  // namespace geoanon::obs
