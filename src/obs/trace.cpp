#include "obs/trace.hpp"

#include <algorithm>
#include <cstring>

#include "util/log.hpp"

namespace geoanon::obs {

const char* event_type_name(EventType t) {
    switch (t) {
        case EventType::kAppSend: return "app_send";
        case EventType::kMacEnqueue: return "mac_enqueue";
        case EventType::kMacDrop: return "mac_drop";
        case EventType::kPhyTx: return "phy_tx";
        case EventType::kPhyRx: return "phy_rx";
        case EventType::kPhyDrop: return "phy_drop";
        case EventType::kNetForward: return "net_forward";
        case EventType::kNetRetransmit: return "net_retransmit";
        case EventType::kLastAttempt: return "last_attempt";
        case EventType::kNetStuck: return "net_stuck";
        case EventType::kNetDrop: return "net_drop";
        case EventType::kNetDeliver: return "net_deliver";
        case EventType::kTrapdoorAttempt: return "trapdoor_attempt";
        case EventType::kTrapdoorOpen: return "trapdoor_open";
        case EventType::kAckSent: return "ack_sent";
        case EventType::kAckReceived: return "ack_received";
        case EventType::kHelloSent: return "hello_sent";
        case EventType::kPseudonymRotated: return "pseudonym_rotated";
        case EventType::kLsQuery: return "ls_query";
        case EventType::kLsReply: return "ls_reply";
        case EventType::kLsHandoff: return "ls_handoff";
        case EventType::kLsReadRepair: return "ls_read_repair";
        case EventType::kFaultFired: return "fault_fired";
    }
    return "?";
}

const char* drop_cause_name(DropCause c) {
    switch (c) {
        case DropCause::kNone: return "none";
        case DropCause::kNoRoute: return "no_route";
        case DropCause::kUnreachable: return "unreachable";
        case DropCause::kNoLocation: return "no_location";
        case DropCause::kMacRetry: return "mac_retry";
        case DropCause::kQueueFull: return "queue_full";
        case DropCause::kCollision: return "collision";
        case DropCause::kImpaired: return "impaired";
        case DropCause::kNodeDown: return "node_down";
        case DropCause::kLastAttemptUnanswered: return "last_attempt_unanswered";
        case DropCause::kNextHopSilent: return "next_hop_silent";
        case DropCause::kRelayStuck: return "relay_stuck";
    }
    return "?";
}

bool event_type_from_name(const char* name, EventType& out) {
    for (const EventType t : kAllEventTypes) {
        if (std::strcmp(name, event_type_name(t)) == 0) {
            out = t;
            return true;
        }
    }
    return false;
}

bool drop_cause_from_name(const char* name, DropCause& out) {
    for (const DropCause c : kAllDropCauses) {
        if (std::strcmp(name, drop_cause_name(c)) == 0) {
            out = c;
            return true;
        }
    }
    return false;
}

TraceRecorder::TraceRecorder(TraceParams params) : params_(params) {
    if (params_.shard_capacity == 0) params_.shard_capacity = 1;
}

void TraceRecorder::record(SimTime now, Event e) {
    if (!enabled_) return;
    const util::MutexLock lock(mu_);
    e.t = now;
    e.id = next_id_++;

    const std::size_t shard_idx =
        e.node == net::kInvalidNode ? 0 : static_cast<std::size_t>(e.node) + 1;
    if (shard_idx >= shards_.size()) shards_.resize(shard_idx + 1);
    Shard& shard = shards_[shard_idx];

    if (shard.ring.size() < params_.shard_capacity) {
        shard.ring.push_back(e);
    } else {
        shard.ring[shard.head] = e;
        shard.head = (shard.head + 1) % params_.shard_capacity;
        ++evicted_;
    }

    if (params_.mirror_stderr) {
        util::log_trace("t=%.9f node=%d %s uid=%llu flow=%u seq=%u cause=%s "
                        "detail=0x%llx",
                        e.t.to_seconds(),
                        e.node == net::kInvalidNode ? -1 : static_cast<int>(e.node),
                        event_type_name(e.type),
                        static_cast<unsigned long long>(e.uid), e.flow, e.seq,
                        drop_cause_name(e.cause),
                        static_cast<unsigned long long>(e.detail));
    }
}

std::vector<Event> TraceRecorder::events() const {
    const util::MutexLock lock(mu_);
    std::vector<Event> out;
    std::size_t total = 0;
    for (const Shard& s : shards_) total += s.ring.size();
    out.reserve(total);
    for (const Shard& s : shards_) out.insert(out.end(), s.ring.begin(), s.ring.end());
    std::sort(out.begin(), out.end(),
              [](const Event& a, const Event& b) { return a.id < b.id; });
    return out;
}

}  // namespace geoanon::obs
