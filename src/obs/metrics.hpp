#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.hpp"
#include "util/thread_annotations.hpp"

namespace geoanon::obs {

/// One observed distribution: O(1) running moments (RunningStat) plus the
/// full sample set for exact percentiles (Sampler).
class Histogram {
  public:
    void observe(double x) {
        stat_.add(x);
        sampler_.add(x);
    }
    /// Fold a whole Sampler in (e.g. a layer-owned latency sampler).
    void observe_all(const util::Sampler& s) {
        for (const double x : s.samples()) observe(x);
    }

    const util::RunningStat& stat() const { return stat_; }
    const util::Sampler& sampler() const { return sampler_; }

  private:
    util::RunningStat stat_;
    util::Sampler sampler_;
};

/// Point-in-time copy of a registry, sorted by name — the deterministic
/// form stored in ScenarioResult and serialized to JSON.
struct MetricsSnapshot {
    struct Hist {
        std::string name;
        std::uint64_t count{0};
        double mean{0.0};
        double min{0.0};
        double max{0.0};
        double p50{0.0};
        double p95{0.0};
        double p99{0.0};
    };

    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<Hist> histograms;

    /// Counter lookup; 0 when absent (snapshots never store zero-defaults).
    std::uint64_t counter(const std::string& name) const;
};

/// Name-keyed counters/gauges/histograms every layer publishes into at the
/// end of a run (Channel, Mac80211, agents, LocationService, FaultInjector
/// each expose publish_metrics(MetricsRegistry&)). Names are dotted
/// layer-prefixed strings ("mac.retries", "agfw.drop_unreachable"); the
/// std::map keeps snapshots sorted and therefore byte-stable in JSON.
///
/// Thread-safe: all maps sit behind mu_ (clang -Wthread-safety checked), so
/// concurrent SweepRunner workers — or the future sharded simulator — can
/// publish into one registry. Determinism is unaffected: counters commute,
/// and snapshots are name-sorted regardless of publish order.
class MetricsRegistry {
  public:
    void add(const std::string& name, std::uint64_t delta);
    void set_gauge(const std::string& name, double v);
    void observe(const std::string& name, double x);
    /// Fold a layer-owned sampler into the named histogram.
    void observe_all(const std::string& name, const util::Sampler& s);

    /// Counter value; 0 when never touched.
    std::uint64_t counter(const std::string& name) const;

    MetricsSnapshot snapshot() const;

  private:
    mutable util::Mutex mu_;
    std::map<std::string, std::uint64_t> counters_ GEOANON_GUARDED_BY(mu_);
    std::map<std::string, double> gauges_ GEOANON_GUARDED_BY(mu_);
    std::map<std::string, Histogram> hists_ GEOANON_GUARDED_BY(mu_);
};

}  // namespace geoanon::obs
