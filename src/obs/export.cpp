#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/json.hpp"

namespace geoanon::obs {

namespace {
/// Chrome trace "cat" — lets Perfetto filter by layer.
const char* category(EventType t) {
    switch (t) {
        case EventType::kPhyTx:
        case EventType::kPhyRx:
        case EventType::kPhyDrop:
            return "phy";
        case EventType::kMacEnqueue:
        case EventType::kMacDrop:
            return "mac";
        case EventType::kAppSend:
        case EventType::kNetForward:
        case EventType::kNetRetransmit:
        case EventType::kNetStuck:
        case EventType::kNetDrop:
        case EventType::kNetDeliver:
            return "net";
        case EventType::kHelloSent:
        case EventType::kPseudonymRotated:
            return "ant";
        case EventType::kLastAttempt:
        case EventType::kTrapdoorAttempt:
        case EventType::kTrapdoorOpen:
        case EventType::kAckSent:
        case EventType::kAckReceived:
            return "agfw";
        case EventType::kLsQuery:
        case EventType::kLsReply:
            return "ls";
        case EventType::kFaultFired:
            return "fault";
    }
    return "?";
}

std::string hex64(std::uint64_t v) {
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "0x%" PRIx64, v);
    return buf;
}
}  // namespace

std::string to_chrome_trace_json(const std::vector<Event>& events, const TraceMeta& meta) {
    util::JsonWriter w;
    w.begin_object();
    w.key("displayTimeUnit").value("ms");
    w.key("otherData").begin_object();
    w.key("scheme").value(meta.scheme);
    w.key("seed").value(meta.seed);
    w.key("num_nodes").value(static_cast<std::uint64_t>(meta.num_nodes));
    w.key("sim_seconds").value(meta.sim_seconds);
    w.key("recorded").value(static_cast<std::uint64_t>(events.size()));
    w.key("evicted").value(meta.evicted);
    w.end_object();
    w.key("traceEvents").begin_array();
    for (const Event& e : events) {
        w.begin_object();
        w.key("name").value(event_type_name(e.type));
        w.key("cat").value(category(e.type));
        w.key("ph").value("i");
        // Chrome trace ts is microseconds; SimTime is integer ns, so ns/1e3
        // is exact in double for any plausible run length.
        w.key("ts").value(static_cast<double>(e.t.ns()) / 1000.0);
        w.key("pid").value(static_cast<std::uint64_t>(0));
        w.key("tid").value(e.node == net::kInvalidNode
                               ? static_cast<std::int64_t>(-1)
                               : static_cast<std::int64_t>(e.node));
        w.key("s").value("t");
        w.key("args").begin_object();
        w.key("id").value(e.id);
        w.key("uid").value(e.uid);
        w.key("flow").value(static_cast<std::uint64_t>(e.flow));
        w.key("seq").value(static_cast<std::uint64_t>(e.seq));
        w.key("bytes").value(static_cast<std::uint64_t>(e.bytes));
        w.key("cause").value(drop_cause_name(e.cause));
        w.key("detail").value(hex64(e.detail));
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
}

std::string to_frame_log(const std::vector<Event>& events) {
    std::string out;
    out.reserve(events.size() / 4 * 64);
    char line[128];
    for (const Event& e : events) {
        const char* dir = nullptr;
        switch (e.type) {
            case EventType::kPhyTx: dir = "TX  "; break;
            case EventType::kPhyRx: dir = "RX  "; break;
            case EventType::kPhyDrop: dir = "DROP"; break;
            default: continue;
        }
        std::snprintf(line, sizeof(line),
                      "%14.9f %s node=%-4d uid=%020" PRIu64 " bytes=%-4u %s\n",
                      e.t.to_seconds(), dir,
                      e.node == net::kInvalidNode ? -1 : static_cast<int>(e.node),
                      e.uid, e.bytes,
                      e.cause == DropCause::kNone ? "" : drop_cause_name(e.cause));
        out += line;
    }
    return out;
}

}  // namespace geoanon::obs
