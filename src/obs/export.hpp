#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace geoanon::obs {

/// Run identity stamped into the trace header ("otherData") so a trace file
/// is self-describing when it lands in Perfetto or trace_query.
struct TraceMeta {
    std::string scheme;  ///< "agfw" / "gpsr" / ...
    std::uint64_t seed{0};
    std::uint32_t num_nodes{0};
    double sim_seconds{0.0};
    std::uint64_t evicted{0};  ///< events lost to ring eviction
};

/// Serialize events (already in id order) as Chrome trace-event JSON —
/// loadable in Perfetto / chrome://tracing. Instant events (ph "i"), ts in
/// microseconds, pid 0, tid = node id (-1 for unattributed events). All
/// numbers use JsonWriter's fixed formatting: same events in, same bytes out.
// geoanon: sink(trace)
std::string to_chrome_trace_json(const std::vector<Event>& events, const TraceMeta& meta);

/// Render phy-layer events (kPhyTx/kPhyRx/kPhyDrop) as a pcap-style text
/// frame log, one line per frame event: time, direction, node, uid, bytes.
// geoanon: sink(trace)
std::string to_frame_log(const std::vector<Event>& events);

}  // namespace geoanon::obs
