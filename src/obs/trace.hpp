#pragma once

#include <cstdint>
#include <vector>

#include "net/types.hpp"
#include "util/thread_annotations.hpp"
#include "util/time.hpp"

namespace geoanon::obs {

using util::SimTime;

/// Typed event taxonomy — one enumerator per observable protocol action.
/// Layer prefixes: App (workload), Mac (interface queue), Phy (air), Net
/// (routing custody), plus AGFW/ANT/ALS/fault specifics. See DESIGN.md §11.
enum class EventType : std::uint8_t {
    kAppSend,          ///< packet originated at the application layer
    kMacEnqueue,       ///< accepted into the interface queue
    kMacDrop,          ///< interface drop (queue full / retry limit / crash)
    kPhyTx,            ///< frame on the air (detail = frame type)
    kPhyRx,            ///< frame decoded intact at a radio
    kPhyDrop,          ///< in-range reception lost (collision / impaired / down)
    kNetForward,       ///< custody committed to a next hop (detail = pseudonym/MAC)
    kNetRetransmit,    ///< NL-ACK timeout rebroadcast of the same copy
    kLastAttempt,      ///< AGFW last forwarding attempt broadcast (n = 0)
    kNetStuck,         ///< committed relay found no next hop (prev hop reroutes)
    kNetDrop,          ///< packet abandoned (cause says why)
    kNetDeliver,       ///< delivered to the application at this node
    kTrapdoorAttempt,  ///< in the last-hop region: trying to open the trapdoor
    kTrapdoorOpen,     ///< trapdoor opened — this node is the destination
    kAckSent,          ///< NL-ACK transmitted covering this uid (detail = batch)
    kAckReceived,      ///< pending entry resolved (detail 1 = implicit)
    kHelloSent,        ///< ANT/GPSR hello beacon (detail = pseudonym or id)
    kPseudonymRotated, ///< new current pseudonym (detail = n)
    kLsQuery,          ///< location query sent (detail = query id)
    kLsReply,          ///< location reply served (detail = query id)
    kLsHandoff,        ///< replica left server radius, handed rows off (detail = grid)
    kLsReadRepair,     ///< served row re-replicated to in-grid peers (detail = query id)
    kFaultFired,       ///< fault injector action (detail = FaultKind)
};

/// Why a packet (or reception) died. kNone for non-drop events. The three
/// derived causes are assigned by the flight reconstructor, not recorded:
/// they describe flights that end without an explicit drop event.
enum class DropCause : std::uint8_t {
    kNone,
    kNoRoute,       ///< greedy local maximum, no perimeter exit
    kUnreachable,   ///< NL-ACK retries + reroutes exhausted
    kNoLocation,    ///< location service could not resolve the destination
    kMacRetry,      ///< unicast MAC retry limit (GPSR reroutes exhausted)
    kQueueFull,     ///< interface queue drop-tail
    kCollision,     ///< reception corrupted by overlapping energy
    kImpaired,      ///< drop model (loss burst / jamming) killed the decode
    kNodeDown,      ///< frame reached a crashed radio / flushed dead queue
    // Derived by FlightIndex for flights with no terminal event:
    kLastAttemptUnanswered,  ///< final broadcast, no trapdoor opened it
    kNextHopSilent,          ///< committed copy sent; nobody took custody
    kRelayStuck,             ///< last custody holder reported kNetStuck
};

/// Detail codes carried by EventType::kFaultFired.
enum class FaultKind : std::uint64_t {
    kCrash = 1,
    kRecover = 2,
    kAlsOutage = 3,
    kLossBurst = 4,
    kJam = 5,
    kGpsNoise = 6,
    kPartition = 7,
    kServerFlap = 8,
};

/// Every enumerator, for exhaustive iteration (name round-trips, schema
/// validation, docs generation).
inline constexpr EventType kAllEventTypes[] = {
    EventType::kAppSend,         EventType::kMacEnqueue,
    EventType::kMacDrop,         EventType::kPhyTx,
    EventType::kPhyRx,           EventType::kPhyDrop,
    EventType::kNetForward,      EventType::kNetRetransmit,
    EventType::kLastAttempt,     EventType::kNetStuck,
    EventType::kNetDrop,         EventType::kNetDeliver,
    EventType::kTrapdoorAttempt, EventType::kTrapdoorOpen,
    EventType::kAckSent,         EventType::kAckReceived,
    EventType::kHelloSent,       EventType::kPseudonymRotated,
    EventType::kLsQuery,         EventType::kLsReply,
    EventType::kLsHandoff,       EventType::kLsReadRepair,
    EventType::kFaultFired,
};
inline constexpr DropCause kAllDropCauses[] = {
    DropCause::kNone,          DropCause::kNoRoute,
    DropCause::kUnreachable,   DropCause::kNoLocation,
    DropCause::kMacRetry,      DropCause::kQueueFull,
    DropCause::kCollision,     DropCause::kImpaired,
    DropCause::kNodeDown,      DropCause::kLastAttemptUnanswered,
    DropCause::kNextHopSilent, DropCause::kRelayStuck,
};

const char* event_type_name(EventType t);
const char* drop_cause_name(DropCause c);
/// Inverse lookups for trace decoding; return false on unknown names.
bool event_type_from_name(const char* name, EventType& out);
bool drop_cause_from_name(const char* name, DropCause& out);

/// One recorded event. Field order matters: recording sites use designated
/// initializers over the prefix (type .. detail); t and id are assigned by
/// the recorder. uid 0 means "no packet attached" (e.g. hellos, faults).
struct Event {
    EventType type{EventType::kAppSend};
    DropCause cause{DropCause::kNone};
    net::NodeId node{net::kInvalidNode};
    std::uint64_t uid{0};
    net::FlowId flow{0};
    std::uint32_t seq{0};
    std::uint32_t bytes{0};
    /// Type-specific payload: pseudonym / MAC addr / frame type / query id /
    /// FaultKind. Exported as a hex string (pseudonyms exceed 2^53).
    std::uint64_t detail{0};

    SimTime t{};          ///< assigned at record time
    std::uint64_t id{0};  ///< global monotonic id; 0 = never recorded
};

struct TraceParams {
    bool enabled{false};
    /// Ring capacity per shard (shard = node + 1; shard 0 holds events with
    /// no node attribution). Oldest events in a shard are evicted first.
    std::size_t shard_capacity{1 << 14};
    /// Mirror every event to stderr through util::log_trace (needs the log
    /// level lowered to kTrace; for interactive debugging only).
    bool mirror_stderr{false};
};

/// Bounded, per-node-sharded ring buffer of Events.
///
/// Each simulator is single-threaded, so one global monotonic id gives a
/// total order over all events of a run; sorting the shard union by id
/// reconstructs exact record order. Ids are deterministic for a fixed
/// (config, seed) — the export built on them is byte-stable.
///
/// The shard state sits behind mu_ (clang -Wthread-safety checked) so a
/// recorder outlives any thread confinement assumption: SweepRunner workers
/// each own a recorder today, but the sharded in-run simulator (ROADMAP
/// item 2) will fan events in from several threads. enabled_ is NOT guarded:
/// it is a setup-time switch that must not be toggled while workers record.
class TraceRecorder {
  public:
    explicit TraceRecorder(TraceParams params = {});

    /// Append one event (no-op while disabled). Called through GEOANON_TRACE.
    void record(SimTime now, Event e);

    /// Runtime gate, independent of the simulator hook being installed.
    void set_enabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    std::uint64_t recorded() const {
        const util::MutexLock lock(mu_);
        return next_id_ - 1;
    }
    std::uint64_t evicted() const {
        const util::MutexLock lock(mu_);
        return evicted_;
    }
    const TraceParams& params() const { return params_; }

    /// All retained events, sorted by id (record order). O(n log n).
    std::vector<Event> events() const;

  private:
    struct Shard {
        std::vector<Event> ring;
        std::size_t head{0};  ///< next eviction slot once the ring is full
    };

    TraceParams params_;
    bool enabled_{true};
    mutable util::Mutex mu_;
    std::uint64_t next_id_ GEOANON_GUARDED_BY(mu_){1};
    std::uint64_t evicted_ GEOANON_GUARDED_BY(mu_){0};
    /// index: node + 1 (0 = unattributed)
    std::vector<Shard> shards_ GEOANON_GUARDED_BY(mu_);
};

}  // namespace geoanon::obs

/// Record an event through a Simulator reference. Compiles to one pointer
/// load and branch when tracing is off: the Event is only constructed (and
/// the arguments only evaluated) after the trace pointer tests non-null.
/// Usage:
///   GEOANON_TRACE(sim, .type = obs::EventType::kAppSend, .node = id,
///                 .uid = pkt->uid, .flow = pkt->flow, .seq = pkt->seq);
#define GEOANON_TRACE(sim, ...)                                                \
    do {                                                                       \
        if (::geoanon::obs::TraceRecorder* gtr_ = (sim).trace())               \
            gtr_->record((sim).now(), ::geoanon::obs::Event{__VA_ARGS__});     \
    } while (0)
