#include "obs/metrics.hpp"

namespace geoanon::obs {

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
    for (const auto& [k, v] : counters)
        if (k == name) return v;
    return 0;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& [name, v] : counters_) snap.counters.emplace_back(name, v);
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, v] : gauges_) snap.gauges.emplace_back(name, v);
    snap.histograms.reserve(hists_.size());
    for (const auto& [name, h] : hists_) {
        MetricsSnapshot::Hist out;
        out.name = name;
        out.count = h.stat().count();
        out.mean = h.stat().mean();
        out.min = h.stat().min();
        out.max = h.stat().max();
        out.p50 = h.sampler().percentile(50);
        out.p95 = h.sampler().percentile(95);
        out.p99 = h.sampler().percentile(99);
        snap.histograms.push_back(std::move(out));
    }
    return snap;
}

}  // namespace geoanon::obs
