#include "obs/metrics.hpp"

namespace geoanon::obs {

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
    for (const auto& [k, v] : counters)
        if (k == name) return v;
    return 0;
}

void MetricsRegistry::add(const std::string& name, std::uint64_t delta) {
    const util::MutexLock lock(mu_);
    counters_[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double v) {
    const util::MutexLock lock(mu_);
    gauges_[name] = v;
}

void MetricsRegistry::observe(const std::string& name, double x) {
    const util::MutexLock lock(mu_);
    hists_[name].observe(x);
}

void MetricsRegistry::observe_all(const std::string& name, const util::Sampler& s) {
    const util::MutexLock lock(mu_);
    hists_[name].observe_all(s);
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
    const util::MutexLock lock(mu_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    const util::MutexLock lock(mu_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& [name, v] : counters_) snap.counters.emplace_back(name, v);
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, v] : gauges_) snap.gauges.emplace_back(name, v);
    snap.histograms.reserve(hists_.size());
    for (const auto& [name, h] : hists_) {
        MetricsSnapshot::Hist out;
        out.name = name;
        out.count = h.stat().count();
        out.mean = h.stat().mean();
        out.min = h.stat().min();
        out.max = h.stat().max();
        out.p50 = h.sampler().percentile(50);
        out.p95 = h.sampler().percentile(95);
        out.p99 = h.sampler().percentile(99);
        snap.histograms.push_back(std::move(out));
    }
    return snap;
}

}  // namespace geoanon::obs
