#include "obs/flight.hpp"

#include <algorithm>

namespace geoanon::obs {

namespace {
/// Events that change which node holds (or releases) custody of the packet.
bool is_custody(EventType t) {
    switch (t) {
        case EventType::kAppSend:
        case EventType::kNetForward:
        case EventType::kNetRetransmit:
        case EventType::kLastAttempt:
        case EventType::kNetStuck:
        case EventType::kNetDeliver:
            return true;
        default:
            return false;
    }
}

void derive(Flight& f) {
    const Event* last_drop = nullptr;
    const Event* last_custody = nullptr;
    for (const Event& e : f.events) {
        switch (e.type) {
            case EventType::kAppSend:
                f.is_data = true;
                f.origin = e.node;
                f.flow = e.flow;
                f.seq = e.seq;
                break;
            case EventType::kNetDeliver:
                f.status = Flight::Status::kDelivered;
                f.end_node = e.node;
                break;
            case EventType::kNetDrop:
            case EventType::kMacDrop:
                last_drop = &e;
                break;
            default:
                break;
        }
        if (is_custody(e.type)) {
            last_custody = &e;
            if (f.hop_chain.empty() || f.hop_chain.back() != e.node)
                f.hop_chain.push_back(e.node);
        }
    }
    if (f.status == Flight::Status::kDelivered) {
        f.cause = DropCause::kNone;
        return;
    }
    if (last_drop != nullptr) {
        f.status = Flight::Status::kDropped;
        f.cause = last_drop->cause;
        f.end_node = last_drop->node;
        return;
    }
    // No deliver, no explicit drop: the flight went silent. Name the death
    // from the last custody event — these are real protocol outcomes (an
    // unanswered last attempt, a committed copy nobody picked up), not
    // missing instrumentation.
    if (last_custody == nullptr) return;  // only phy/ack echoes: leave in-flight
    f.end_node = last_custody->node;
    switch (last_custody->type) {
        case EventType::kLastAttempt:
            f.status = Flight::Status::kDropped;
            f.cause = DropCause::kLastAttemptUnanswered;
            break;
        case EventType::kNetStuck:
            f.status = Flight::Status::kDropped;
            f.cause = DropCause::kRelayStuck;
            break;
        case EventType::kNetForward:
        case EventType::kNetRetransmit:
            f.status = Flight::Status::kDropped;
            f.cause = DropCause::kNextHopSilent;
            break;
        default:
            break;  // kAppSend only: still queued below the net layer
    }
}
}  // namespace

FlightIndex::FlightIndex(const std::vector<Event>& events) {
    for (const Event& e : events) {
        if (e.uid == 0) continue;
        auto [it, fresh] = by_uid_.try_emplace(e.uid, flights_.size());
        if (fresh) {
            flights_.emplace_back();
            flights_.back().uid = e.uid;
        }
        flights_[it->second].events.push_back(e);
    }
    for (Flight& f : flights_) {
        std::sort(f.events.begin(), f.events.end(),
                  [](const Event& a, const Event& b) { return a.id < b.id; });
        f.first = f.events.front().t;
        f.last = f.events.back().t;
        derive(f);
    }
    std::sort(flights_.begin(), flights_.end(),
              [](const Flight& a, const Flight& b) { return a.uid < b.uid; });
    by_uid_.clear();
    for (std::size_t i = 0; i < flights_.size(); ++i) by_uid_[flights_[i].uid] = i;
}

const Flight* FlightIndex::find(std::uint64_t uid) const {
    const auto it = by_uid_.find(uid);
    return it == by_uid_.end() ? nullptr : &flights_[it->second];
}

std::vector<const Flight*> FlightIndex::undelivered_data() const {
    std::vector<const Flight*> out;
    for (const Flight& f : flights_)
        if (f.is_data && f.status != Flight::Status::kDelivered) out.push_back(&f);
    return out;
}

std::vector<const Flight*> FlightIndex::worst_latency(std::size_t n) const {
    std::vector<const Flight*> out;
    for (const Flight& f : flights_)
        if (f.is_data && f.status == Flight::Status::kDelivered) out.push_back(&f);
    std::sort(out.begin(), out.end(), [](const Flight* a, const Flight* b) {
        const double la = a->latency_ms(), lb = b->latency_ms();
        if (la != lb) return la > lb;
        return a->uid < b->uid;
    });
    if (out.size() > n) out.resize(n);
    return out;
}

}  // namespace geoanon::obs
