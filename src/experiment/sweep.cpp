#include "experiment/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>

#include "util/json.hpp"
#include "util/table.hpp"

namespace geoanon::experiment {

std::string Axis::label(std::size_t i) const {
    if (i < labels.size()) return labels[i];
    const double v = values.at(i);
    if (v == static_cast<double>(static_cast<long long>(v)))
        return std::to_string(static_cast<long long>(v));
    return util::fmt_double(v, 3);
}

Axis Axis::nodes(const std::vector<std::size_t>& counts) {
    Axis a;
    a.name = "nodes";
    for (std::size_t n : counts) a.values.push_back(static_cast<double>(n));
    a.apply = [](workload::ScenarioConfig& cfg, double v) {
        cfg.num_nodes = static_cast<std::size_t>(v);
    };
    return a;
}

Axis Axis::schemes(const std::vector<workload::Scheme>& schemes) {
    Axis a;
    a.name = "scheme";
    for (workload::Scheme s : schemes) {
        a.values.push_back(static_cast<double>(static_cast<int>(s)));
        a.labels.push_back(workload::scheme_name(s));
    }
    a.apply = [](workload::ScenarioConfig& cfg, double v) {
        cfg.scheme = static_cast<workload::Scheme>(static_cast<int>(v));
    };
    return a;
}

Axis Axis::numeric(std::string name, std::vector<double> values,
                   std::function<void(workload::ScenarioConfig&, double)> apply) {
    Axis a;
    a.name = std::move(name);
    a.values = std::move(values);
    a.apply = std::move(apply);
    return a;
}

Axis Axis::variants(std::string name, std::vector<std::string> labels,
                    std::function<void(workload::ScenarioConfig&, double)> apply) {
    Axis a;
    a.name = std::move(name);
    a.labels = std::move(labels);
    for (std::size_t i = 0; i < a.labels.size(); ++i)
        a.values.push_back(static_cast<double>(i));
    a.apply = std::move(apply);
    return a;
}

std::size_t SweepSpec::num_points() const {
    std::size_t n = 1;
    for (const Axis& a : axes) n *= a.values.size();
    return n;
}

std::vector<std::size_t> SweepSpec::point_coords(std::size_t p) const {
    // Row-major, first axis slowest: invert from the last axis backwards.
    std::vector<std::size_t> coords(axes.size(), 0);
    for (std::size_t i = axes.size(); i-- > 0;) {
        const std::size_t extent = axes[i].values.size();
        coords[i] = p % extent;
        p /= extent;
    }
    return coords;
}

workload::ScenarioConfig SweepSpec::config_for(std::size_t point,
                                               std::size_t seed_slot) const {
    workload::ScenarioConfig cfg = base;
    const auto coords = point_coords(point);
    for (std::size_t i = 0; i < axes.size(); ++i) {
        if (axes[i].apply) axes[i].apply(cfg, axes[i].values[coords[i]]);
    }
    cfg.seed = seed_base + seed_slot;
    return cfg;
}

double PointRecord::mean(
    const std::function<double(const workload::ScenarioResult&)>& f) const {
    if (runs.empty()) return 0.0;
    double sum = 0.0;
    for (const RunRecord& r : runs) sum += f(r.result);
    return sum / static_cast<double>(runs.size());
}

SweepRunner::SweepRunner(SweepSpec spec, Options options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

std::vector<PointRecord> SweepRunner::run() {
    const std::size_t points = spec_.num_points();
    const std::size_t seeds = spec_.seeds_per_point;
    const std::size_t total = points * seeds;

    // Pre-size the result grid so workers write disjoint slots and the
    // merged output is in spec order no matter who finishes first.
    std::vector<PointRecord> out(points);
    for (std::size_t p = 0; p < points; ++p) {
        out[p].index = p;
        const auto coords = spec_.point_coords(p);
        for (std::size_t i = 0; i < spec_.axes.size(); ++i) {
            out[p].values.push_back(spec_.axes[i].values[coords[i]]);
            out[p].labels.push_back(spec_.axes[i].label(coords[i]));
        }
        out[p].runs.resize(seeds);
    }
    if (total == 0) return out;

    if (!options_.trace_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options_.trace_dir, ec);
    }

    std::size_t jobs = options_.jobs != 0 ? options_.jobs
                                          : std::max(1u, std::thread::hardware_concurrency());
    jobs = std::min(jobs, total);

    std::atomic<std::size_t> next{0};
    ProgressState progress;
    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= total) return;
            const std::size_t point = i / seeds;
            const std::size_t slot = i % seeds;
            workload::ScenarioConfig cfg = spec_.config_for(point, slot);
            if (!options_.trace_dir.empty()) cfg.trace.enabled = true;
            workload::ScenarioRunner runner(cfg);
            out[point].runs[slot] = RunRecord{cfg.seed, runner.run()};
            if (!options_.trace_dir.empty()) {
                char name[64];
                std::snprintf(name, sizeof name, "point%04zu_seed%llu.trace.json", point,
                              static_cast<unsigned long long>(cfg.seed));
                util::write_text_file(options_.trace_dir + "/" + name,
                                      runner.chrome_trace_json());
            }
            // Count and report under one lock so callbacks observe strictly
            // increasing `finished` values.
            const util::MutexLock lock(progress.mu);
            const std::size_t finished = ++progress.done;
            if (options_.on_progress) options_.on_progress(finished, total);
        }
    };

    if (jobs == 1) {
        worker();
        return out;
    }
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    return out;
}

}  // namespace geoanon::experiment
