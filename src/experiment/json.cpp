#include "experiment/json.hpp"

namespace geoanon::experiment {

void result_to_json(JsonWriter& w, const workload::ScenarioResult& r, bool include_perf) {
    w.begin_object();
    w.key("app_sent").value(r.app_sent);
    w.key("app_delivered").value(r.app_delivered);
    w.key("delivery_fraction").value(r.delivery_fraction);
    w.key("avg_latency_ms").value(r.avg_latency_ms);
    w.key("p50_latency_ms").value(r.p50_latency_ms);
    w.key("p95_latency_ms").value(r.p95_latency_ms);
    w.key("avg_hops").value(r.avg_hops);

    w.key("mac_collisions").value(r.mac_collisions);
    w.key("mac_retries").value(r.mac_retries);
    w.key("mac_drop_retry").value(r.mac_drop_retry);
    w.key("rts_sent").value(r.rts_sent);
    w.key("data_frames").value(r.data_frames);
    w.key("transmissions").value(r.transmissions);

    w.key("drop_no_route").value(r.drop_no_route);
    w.key("drop_unreachable").value(r.drop_unreachable);
    w.key("drop_no_location").value(r.drop_no_location);
    w.key("nl_retransmissions").value(r.nl_retransmissions);
    w.key("last_attempts").value(r.last_attempts);
    w.key("trapdoor_attempts").value(r.trapdoor_attempts);
    w.key("trapdoor_opens").value(r.trapdoor_opens);
    w.key("acks_sent").value(r.acks_sent);
    w.key("implicit_acks").value(r.implicit_acks);
    w.key("hello_sent").value(r.hello_sent);
    w.key("hello_suppressed").value(r.hello_suppressed);
    w.key("pseudonym_rotations").value(r.pseudonym_rotations);
    w.key("cert_fetches").value(r.cert_fetches);
    w.key("control_bytes").value(r.control_bytes);
    w.key("data_bytes").value(r.data_bytes);
    w.key("perimeter_entries").value(r.perimeter_entries);
    w.key("perimeter_recoveries").value(r.perimeter_recoveries);
    w.key("perimeter_forwards").value(r.perimeter_forwards);

    w.key("ls").begin_object();
    w.key("updates_sent").value(r.ls.updates_sent);
    w.key("update_bytes").value(r.ls.update_bytes);
    w.key("queries_sent").value(r.ls.queries_sent);
    w.key("query_bytes").value(r.ls.query_bytes);
    w.key("replies_sent").value(r.ls.replies_sent);
    w.key("reply_bytes").value(r.ls.reply_bytes);
    w.key("replications").value(r.ls.replications);
    w.key("store_hits").value(r.ls.store_hits);
    w.key("store_misses").value(r.ls.store_misses);
    w.key("resolved_ok").value(r.ls.resolved_ok);
    w.key("resolved_fail").value(r.ls.resolved_fail);
    w.key("decrypt_attempts").value(r.ls.decrypt_attempts);
    w.key("query_reissues").value(r.ls.query_reissues);
    w.key("query_fallbacks").value(r.ls.query_fallbacks);
    w.key("late_replies").value(r.ls.late_replies);
    w.key("pending_wiped").value(r.ls.pending_wiped);
    w.key("store_expired").value(r.ls.store_expired);
    w.key("digests_sent").value(r.ls.digests_sent);
    w.key("digest_bytes").value(r.ls.digest_bytes);
    w.key("repairs_sent").value(r.ls.repairs_sent);
    w.key("handoffs").value(r.ls.handoffs);
    w.key("read_repairs").value(r.ls.read_repairs);
    w.key("duplicates_suppressed").value(r.ls.duplicates_suppressed);
    w.key("stale_reads").value(r.ls.stale_reads);
    w.end_object();

    w.key("adversary").begin_object();
    w.key("frames_observed").value(r.adversary.frames_observed);
    w.key("identity_sightings").value(r.adversary.identity_sightings);
    w.key("pseudonym_sightings").value(r.adversary.pseudonym_sightings);
    w.key("mac_pseudonym_links").value(r.adversary.mac_pseudonym_links);
    w.key("nodes_ever_localized").value(r.adversary.nodes_ever_localized);
    w.key("index_linkages").value(r.adversary.index_linkages);
    w.key("relationship_pairs_learned").value(r.adversary.relationship_pairs_learned);
    w.key("mean_tracking_coverage").value(r.adversary.mean_tracking_coverage);
    w.end_object();

    w.key("attack").begin_object();
    w.key("hello_observations").value(r.attack.hello_observations);
    w.key("tracklets").value(r.attack.tracklets);
    w.key("chains").value(r.attack.chains);
    w.key("candidate_pairs").value(r.attack.candidate_pairs);
    w.key("links_made").value(r.attack.links_made);
    w.key("links_correct").value(r.attack.links_correct);
    w.key("link_precision").value(r.attack.link_precision);
    w.key("link_recall").value(r.attack.link_recall);
    w.key("tracking_success_rate").value(r.attack.tracking_success_rate);
    w.key("mean_anonymity_set").value(r.attack.mean_anonymity_set);
    w.key("max_anonymity_set").value(r.attack.max_anonymity_set);
    w.key("mean_path_error_m").value(r.attack.mean_path_error_m);
    w.key("anonymity_over_time").begin_array();
    for (const double v : r.attack.anonymity_over_time) w.value(v);
    w.end_array();
    w.end_object();

    w.key("invariants").begin_object();
    w.key("frames_checked").value(r.invariants.frames_checked);
    w.key("packets_checked").value(r.invariants.packets_checked);
    w.key("ant_entries_checked").value(r.invariants.ant_entries_checked);
    w.key("sweeps").value(r.invariants.sweeps);
    w.key("cleartext_identity").value(r.invariants.cleartext_identity);
    w.key("mac_address_exposed").value(r.invariants.mac_address_exposed);
    w.key("missing_trapdoor").value(r.invariants.missing_trapdoor);
    w.key("unknown_pseudonym").value(r.invariants.unknown_pseudonym);
    w.key("stale_pseudonym_target").value(r.invariants.stale_pseudonym_target);
    w.key("overlong_ant_ttl").value(r.invariants.overlong_ant_ttl);
    w.key("stale_ant_entry").value(r.invariants.stale_ant_entry);
    w.key("ack_without_delivery").value(r.invariants.ack_without_delivery);
    w.key("codec_reject").value(r.invariants.codec_reject);
    w.key("wire_size_mismatch").value(r.invariants.wire_size_mismatch);
    w.key("rotated_out_targets").value(r.invariants.rotated_out_targets);
    w.key("last_attempt_frames").value(r.invariants.last_attempt_frames);
    w.key("plain_ls_fallbacks").value(r.invariants.plain_ls_fallbacks);
    w.end_object();

    w.key("resilience").begin_object();
    w.key("faults_injected").value(r.resilience.faults_injected);
    w.key("node_crashes").value(r.resilience.node_crashes);
    w.key("node_recoveries").value(r.resilience.node_recoveries);
    w.key("als_outages").value(r.resilience.als_outages);
    w.key("frames_lost_node_down").value(r.resilience.frames_lost_node_down);
    w.key("frames_lost_loss_burst").value(r.resilience.frames_lost_loss_burst);
    w.key("frames_lost_jam").value(r.resilience.frames_lost_jam);
    w.key("frames_lost_partition").value(r.resilience.frames_lost_partition);
    w.key("server_flap_cycles").value(r.resilience.server_flap_cycles);
    w.key("ls_pending_wiped").value(r.resilience.ls_pending_wiped);
    w.key("recoveries_measured").value(r.resilience.recoveries_measured);
    w.key("recovery_latency_p50_s").value(r.resilience.recovery_latency_p50_s);
    w.key("recovery_latency_p95_s").value(r.resilience.recovery_latency_p95_s);
    w.key("recovery_outage_p95_s").value(r.resilience.recovery_outage_p95_s);
    w.key("recovery_flap_p95_s").value(r.resilience.recovery_flap_p95_s);
    w.end_object();

    // Full registry snapshot: already name-sorted (std::map), so the block
    // is byte-stable for identical runs.
    w.key("metrics").begin_object();
    w.key("counters").begin_object();
    for (const auto& [name, v] : r.metrics.counters) w.key(name).value(v);
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, v] : r.metrics.gauges) w.key(name).value(v);
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& h : r.metrics.histograms) {
        w.key(h.name).begin_object();
        w.key("count").value(h.count);
        w.key("mean").value(h.mean);
        w.key("min").value(h.min);
        w.key("max").value(h.max);
        w.key("p50").value(h.p50);
        w.key("p95").value(h.p95);
        w.key("p99").value(h.p99);
        w.end_object();
    }
    w.end_object();
    w.end_object();

    w.key("events_processed").value(r.events_processed);
    w.key("peak_queue_depth").value(static_cast<std::uint64_t>(r.perf.peak_queue_depth));

    if (include_perf) {
        w.key("perf").begin_object();
        w.key("wall_seconds").value(r.perf.wall_seconds);
        w.key("events_per_sec").value(r.perf.events_per_sec);
        w.end_object();
    }
    w.end_object();
}

std::string result_to_json(const workload::ScenarioResult& r, bool include_perf) {
    JsonWriter w;
    result_to_json(w, r, include_perf);
    return w.str();
}

std::string sweep_to_json(const std::string& bench_name, const SweepSpec& spec,
                          const std::vector<PointRecord>& points, bool include_perf) {
    JsonWriter w;
    w.begin_object();
    w.key("bench").value(bench_name);
    w.key("axes").begin_array();
    for (const Axis& a : spec.axes) {
        w.begin_object();
        w.key("name").value(a.name);
        w.key("values").begin_array();
        for (const double v : a.values) w.value(v);
        w.end_array();
        if (!a.labels.empty()) {
            w.key("labels").begin_array();
            for (const std::string& l : a.labels) w.value(l);
            w.end_array();
        }
        w.end_object();
    }
    w.end_array();
    w.key("seeds_per_point").value(static_cast<std::uint64_t>(spec.seeds_per_point));
    w.key("seed_base").value(spec.seed_base);
    w.key("points").begin_array();
    for (const PointRecord& pt : points) {
        w.begin_object();
        w.key("point").value(static_cast<std::uint64_t>(pt.index));
        w.key("coords").begin_object();
        for (std::size_t i = 0; i < spec.axes.size(); ++i)
            w.key(spec.axes[i].name).value(pt.values[i]);
        w.end_object();
        w.key("labels").begin_object();
        for (std::size_t i = 0; i < spec.axes.size(); ++i)
            w.key(spec.axes[i].name).value(pt.labels[i]);
        w.end_object();
        w.key("runs").begin_array();
        for (const RunRecord& run : pt.runs) {
            w.begin_object();
            w.key("seed").value(run.seed);
            w.key("result");
            result_to_json(w, run.result, include_perf);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
}

}  // namespace geoanon::experiment
