#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "experiment/sweep.hpp"
#include "workload/scenario.hpp"

namespace geoanon::experiment {

/// Minimal ordered JSON emitter. Keys appear in call order and numbers are
/// formatted via a fixed printf recipe, so two semantically equal documents
/// are byte-identical — which is what the sweep determinism contract
/// (`--jobs 1` vs `--jobs 8`) and the channel equivalence tests compare.
class JsonWriter {
  public:
    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();
    JsonWriter& key(const std::string& k);
    JsonWriter& value(const std::string& v);
    JsonWriter& value(const char* v);
    JsonWriter& value(double v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(bool v);

    const std::string& str() const { return out_; }

  private:
    void separate();
    std::string out_;
    /// One entry per open container: count of elements emitted so far.
    std::vector<std::size_t> depth_counts_;
    bool after_key_{false};
};

std::string json_escape(const std::string& s);

/// Serialize every deterministic field of a ScenarioResult. With
/// `include_perf`, the host-side perf block (wall-clock, events/sec, peak
/// queue depth) is appended; leave it off when comparing runs for equality
/// or emitting byte-stable sweep trajectories.
void result_to_json(JsonWriter& w, const workload::ScenarioResult& r, bool include_perf);
std::string result_to_json(const workload::ScenarioResult& r, bool include_perf = false);

/// The common BENCH_*.json schema shared by all SweepRunner benches:
/// { "bench": ..., "axes": [{name, values, labels}...], "seeds_per_point",
///   "seed_base", "points": [{point, coords:{axis: value...},
///   labels:{axis: label...}, runs: [{seed, result}...]}...] }
std::string sweep_to_json(const std::string& bench_name, const SweepSpec& spec,
                          const std::vector<PointRecord>& points,
                          bool include_perf = false);

/// Write `content` to `path`; returns false (and logs) on failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace geoanon::experiment
