#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "experiment/sweep.hpp"
#include "util/json.hpp"
#include "workload/scenario.hpp"

namespace geoanon::experiment {

// The emitter moved to util/json.hpp so the obs exporters can share it;
// re-exported here for existing callers.
using util::JsonWriter;
using util::json_escape;
using util::write_text_file;

/// Serialize every deterministic field of a ScenarioResult. With
/// `include_perf`, the host-side perf block (wall-clock, events/sec, peak
/// queue depth) is appended; leave it off when comparing runs for equality
/// or emitting byte-stable sweep trajectories.
void result_to_json(JsonWriter& w, const workload::ScenarioResult& r, bool include_perf);
std::string result_to_json(const workload::ScenarioResult& r, bool include_perf = false);

/// The common BENCH_*.json schema shared by all SweepRunner benches:
/// { "bench": ..., "axes": [{name, values, labels}...], "seeds_per_point",
///   "seed_base", "points": [{point, coords:{axis: value...},
///   labels:{axis: label...}, runs: [{seed, result}...]}...] }
std::string sweep_to_json(const std::string& bench_name, const SweepSpec& spec,
                          const std::vector<PointRecord>& points,
                          bool include_perf = false);

}  // namespace geoanon::experiment
