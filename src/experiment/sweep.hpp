#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_annotations.hpp"
#include "workload/scenario.hpp"

namespace geoanon::experiment {

/// One swept dimension: a named list of values, each applied to a
/// ScenarioConfig by `apply`. Values are doubles so every axis (node counts,
/// churn fractions, enum indices) shares one representation; `labels`, when
/// non-empty, carries the human-readable name per value (e.g. scheme names).
struct Axis {
    std::string name;
    std::vector<double> values;
    std::vector<std::string> labels;
    std::function<void(workload::ScenarioConfig&, double)> apply;

    /// Display label for value i: labels[i] when present, else the number.
    std::string label(std::size_t i) const;

    /// Node-count axis: sets num_nodes only; combine with a custom axis to
    /// co-scale area or traffic.
    static Axis nodes(const std::vector<std::size_t>& counts);
    /// Scheme axis; values are enum indices, labels are scheme_name().
    static Axis schemes(const std::vector<workload::Scheme>& schemes);
    /// General numeric axis.
    static Axis numeric(std::string name, std::vector<double> values,
                        std::function<void(workload::ScenarioConfig&, double)> apply);
    /// Labelled variant axis: values are 0..n-1, labels name each variant.
    static Axis variants(std::string name, std::vector<std::string> labels,
                         std::function<void(workload::ScenarioConfig&, double)> apply);
};

/// Declarative sweep: a base ScenarioConfig crossed with the cartesian
/// product of the axes, each grid point repeated `seeds_per_point` times with
/// seeds seed_base, seed_base + 1, ... Expansion order is row-major with the
/// first axis slowest — the "spec order" every consumer (tables, JSON,
/// equivalence tests) sees regardless of execution schedule.
struct SweepSpec {
    workload::ScenarioConfig base;
    std::vector<Axis> axes;
    std::size_t seeds_per_point{1};
    std::uint64_t seed_base{1000};

    std::size_t num_points() const;
    std::size_t num_runs() const { return num_points() * seeds_per_point; }
    /// Per-axis value indices of flattened point `p`.
    std::vector<std::size_t> point_coords(std::size_t p) const;
    /// Base config with every axis value applied, then the seed slot's seed.
    workload::ScenarioConfig config_for(std::size_t point, std::size_t seed_slot) const;
};

/// One executed run of a sweep point.
struct RunRecord {
    std::uint64_t seed{0};
    workload::ScenarioResult result;
};

/// All runs of one grid point, in seed order.
struct PointRecord {
    std::size_t index{0};
    std::vector<double> values;       ///< axis value per axis
    std::vector<std::string> labels;  ///< axis label per axis
    std::vector<RunRecord> runs;

    /// Mean of an extracted metric over this point's runs.
    double mean(const std::function<double(const workload::ScenarioResult&)>& f) const;
};

/// Expands a SweepSpec and executes every run on a std::thread pool. Each run
/// is fully self-contained — its own Simulator, Channel, and RNG streams —
/// so per-run determinism is untouched by parallelism, and results are
/// merged back in spec order: output is identical for any worker count.
class SweepRunner {
  public:
    struct Options {
        std::size_t jobs{1};  ///< worker threads; 0 = hardware_concurrency
        /// Called after each completed run (serialized); for progress bars.
        std::function<void(std::size_t done, std::size_t total)> on_progress;
        /// When non-empty: force tracing on for every run and write one
        /// Chrome trace per run to `<trace_dir>/point%04zu_seed%llu.trace.json`.
        /// File names depend only on grid position, and each trace only on
        /// its own run, so artifacts are byte-identical for any `jobs`.
        std::string trace_dir;
    };

    explicit SweepRunner(SweepSpec spec) : SweepRunner(std::move(spec), Options{}) {}
    SweepRunner(SweepSpec spec, Options options);

    /// Execute the whole grid. Deterministic output order (spec order).
    std::vector<PointRecord> run();

    const SweepSpec& spec() const { return spec_; }

  private:
    /// Completion state shared by the worker pool during run(). The result
    /// grid itself needs no lock (workers write disjoint pre-sized slots);
    /// only the progress counter and callback are cross-thread, and the
    /// annotations let clang -Wthread-safety enforce that contract.
    struct ProgressState {
        util::Mutex mu;
        std::size_t done GEOANON_GUARDED_BY(mu){0};
    };

    SweepSpec spec_;
    Options options_;
};

}  // namespace geoanon::experiment
