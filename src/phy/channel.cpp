#include "phy/channel.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace geoanon::phy {

namespace {
std::uint64_t frame_uid(const Frame& f) { return f.payload ? f.payload->uid : 0; }
}  // namespace

Radio::Radio(sim::Simulator& sim, Channel& channel, PositionFn position)
    : sim_(sim), channel_(channel) {
    index_ = channel_.register_radio(this, std::move(position));
}

Radio::Radio(sim::Simulator& sim, Channel& channel, mobility::MobilityModel& model)
    : sim_(sim), channel_(channel) {
    index_ = channel_.register_radio(this, &model);
}

const PhyParams& Radio::phy_params() const { return channel_.params(); }

Vec2 Radio::position() const { return channel_.state_.position(index_, sim_.now()); }

Vec2 Radio::velocity() const { return channel_.state_.velocity(index_, sim_.now()); }

void Radio::set_enabled(bool enabled) { channel_.state_.set_up(index_, enabled); }

bool Radio::enabled() const { return channel_.state_.up(index_); }

void Radio::set_mac_hooks(std::function<void()> on_busy, std::function<void()> on_idle,
                          std::function<void(const Frame&)> on_rx) {
    on_busy_ = std::move(on_busy);
    on_idle_ = std::move(on_idle);
    on_rx_ = std::move(on_rx);
}

void Radio::start_tx(const Frame& frame) {
    assert(!transmitting_ && "half-duplex radio already transmitting");
    ++stats_.frames_sent;
    channel_.start_tx(this, frame);
}

void Radio::begin_own_tx() {
    transmitting_ = true;
    // Half-duplex: transmitting corrupts everything we were receiving.
    for (auto& [id, rx] : receptions_) {
        if (!rx.corrupted) {
            rx.corrupted = true;
            channel_.note_collision();
            ++stats_.frames_corrupted;
        }
    }
    ++energy_count_;
    if (energy_count_ == 1 && on_busy_) on_busy_();
}

void Radio::end_own_tx() {
    transmitting_ = false;
    --energy_count_;
    if (energy_count_ == 0 && on_idle_) on_idle_();
}

void Radio::energy_start(std::uint64_t tx_id, bool decodable, const Frame& frame) {
    // New energy corrupts every ongoing reception here.
    for (auto& [id, rx] : receptions_) {
        if (!rx.corrupted) {
            rx.corrupted = true;
            channel_.note_collision();
            ++stats_.frames_corrupted;
        }
    }
    const bool clear = energy_count_ == 0 && !transmitting_;
    ++energy_count_;
    if (decodable) {
        Reception rx;
        rx.frame = frame;
        rx.corrupted = !clear;
        if (rx.corrupted) {
            channel_.note_collision();
            ++stats_.frames_corrupted;
        }
        receptions_.emplace_back(tx_id, std::move(rx));
    }
    if (energy_count_ == 1 && on_busy_) on_busy_();
}

void Radio::energy_end(std::uint64_t tx_id) {
    --energy_count_;
    auto it = std::find_if(receptions_.begin(), receptions_.end(),
                           [tx_id](const auto& e) { return e.first == tx_id; });
    if (it != receptions_.end()) {
        const bool ok = !it->second.corrupted && !transmitting_;
        Frame frame = std::move(it->second.frame);
        receptions_.erase(it);
        if (ok) {
            if (!enabled()) {
                ++stats_.frames_missed_down;
                GEOANON_TRACE(sim_, .type = obs::EventType::kPhyDrop,
                              .cause = obs::DropCause::kNodeDown, .node = trace_node_,
                              .uid = frame_uid(frame), .bytes = frame.wire_bytes,
                              .detail = static_cast<std::uint64_t>(frame.type));
            } else {
                ++stats_.frames_delivered;
                channel_.note_delivery();
                GEOANON_TRACE(sim_, .type = obs::EventType::kPhyRx, .node = trace_node_,
                              .uid = frame_uid(frame), .bytes = frame.wire_bytes,
                              .detail = static_cast<std::uint64_t>(frame.type));
                if (on_rx_) on_rx_(frame);
            }
        } else {
            GEOANON_TRACE(sim_, .type = obs::EventType::kPhyDrop,
                          .cause = obs::DropCause::kCollision, .node = trace_node_,
                          .uid = frame_uid(frame), .bytes = frame.wire_bytes,
                          .detail = static_cast<std::uint64_t>(frame.type));
        }
    }
    if (energy_count_ == 0 && on_idle_) on_idle_();
}

Channel::Channel(sim::Simulator& sim, PhyParams params) : sim_(sim), params_(params) {
    brute_force_ = params_.brute_force || std::getenv("GEOANON_BRUTE_FORCE_CHANNEL") != nullptr;
    const double slack_m =
        params_.grid_max_speed_mps * params_.grid_rebucket_interval.to_seconds();
    cell_m_ = std::max(1.0, params_.cs_range_m + slack_m);
}

void Channel::set_snoop(SnoopFn snoop) {
    if (!snoop) {
        if (has_primary_tap_) {
            taps_.erase(taps_.begin());
            has_primary_tap_ = false;
        }
        return;
    }
    if (has_primary_tap_) {
        taps_.front() = std::move(snoop);
    } else {
        taps_.insert(taps_.begin(), std::move(snoop));
        has_primary_tap_ = true;
    }
}

Channel::Cell Channel::cell_of(const Vec2& p) const {
    return Cell{static_cast<std::int32_t>(std::floor(p.x / cell_m_)),
                static_cast<std::int32_t>(std::floor(p.y / cell_m_))};
}

std::uint64_t Channel::cell_key(Cell c) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.x)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.y));
}

EngineState::Index Channel::register_radio(Radio* radio, EngineState::PositionFn fn) {
    const EngineState::Index idx = state_.add_row(std::move(fn));
    finish_register(radio);
    return idx;
}

EngineState::Index Channel::register_radio(Radio* radio, mobility::MobilityModel* model) {
    const EngineState::Index idx = state_.add_row(model);
    finish_register(radio);
    return idx;
}

void Channel::finish_register(Radio* radio) {
    radios_.push_back(radio);
    assert(radios_.size() == state_.size() && "state rows mirror registration order");
    // Don't sample the new row's position here: a PositionFn may close over
    // a not-yet-constructed owner. The radio stays a candidate for every
    // query until the next sweep places it in a bucket.
    unbucketed_.push_back(static_cast<std::uint32_t>(radios_.size() - 1));
}

void Channel::rebucket_if_stale() {
    const SimTime now = sim_.now();
    if (swept_once_ && now - last_sweep_ < params_.grid_rebucket_interval) return;
    swept_once_ = true;
    last_sweep_ = now;
    // Cache-linear sweep over the SoA rows: position legs, cell coords and
    // bucketed flags are all contiguous arrays in EngineState.
    for (std::size_t i = 0; i < radios_.size(); ++i) {
        const auto idx = static_cast<EngineState::Index>(i);
        const Cell c = cell_of(state_.position(idx, now));
        if (state_.bucketed(idx)) {
            const Cell prev{state_.cell_x(idx), state_.cell_y(idx)};
            if (c == prev) continue;
            auto& old_bucket = buckets_[cell_key(prev)];
            old_bucket.erase(
                std::find(old_bucket.begin(), old_bucket.end(), static_cast<std::uint32_t>(i)));
        }
        state_.set_cell(idx, c.x, c.y);
        state_.set_bucketed(idx, true);
        buckets_[cell_key(c)].push_back(static_cast<std::uint32_t>(i));
    }
    unbucketed_.clear();
}

void Channel::deliver_from(Radio* /*sender*/, const Frame& frame, const Vec2& sender_pos,
                           std::uint64_t tx_id, Radio* receiver, const Vec2& rx_pos,
                           std::uint32_t slot) {
    const double d = util::distance(sender_pos, rx_pos);
    if (d > params_.cs_range_m) return;
    bool decodable = d <= params_.range_m;
    if (decodable && drop_ && drop_(frame, sender_pos, rx_pos)) {
        decodable = false;
        ++stats_.impaired;
        GEOANON_TRACE(sim_, .type = obs::EventType::kPhyDrop,
                      .cause = obs::DropCause::kImpaired, .node = receiver->trace_node_,
                      .uid = frame_uid(frame), .bytes = frame.wire_bytes,
                      .detail = static_cast<std::uint64_t>(frame.type));
    }
    // Indexed access, not a cached reference: energy_start can re-enter
    // start_tx through MAC hooks, and a nested acquire may grow tx_slots_.
    tx_slots_[slot].affected.push_back(receiver);
    receiver->energy_start(tx_id, decodable, frame);
}

// geoanon: hot
std::uint32_t Channel::acquire_tx_slot() {
    if (tx_free_ != kNilSlot) {
        const std::uint32_t slot = tx_free_;
        tx_free_ = tx_slots_[slot].next_free;
        return slot;
    }
    return grow_tx_slots();
}

std::uint32_t Channel::grow_tx_slots() {
    // Cold path: only as many slots exist as the peak number of concurrent
    // transmissions ever reached; after warm-up every tx reuses one.
    tx_slots_.emplace_back();
    return static_cast<std::uint32_t>(tx_slots_.size() - 1);
}

// geoanon: hot
void Channel::release_tx_slot(std::uint32_t slot) {
    tx_slots_[slot].affected.clear();  // keeps capacity for the next reuse
    tx_slots_[slot].next_free = tx_free_;
    tx_free_ = slot;
}

// geoanon: hot
void Channel::start_tx(Radio* sender, const Frame& frame) {
    ++stats_.transmissions;
    const std::uint64_t tx_id = next_tx_id_++;
    const SimTime now = sim_.now();
    const Vec2 sender_pos = state_.position(sender->index_, now);
    GEOANON_TRACE(sim_, .type = obs::EventType::kPhyTx, .node = sender->trace_node_,
                  .uid = frame_uid(frame), .bytes = frame.wire_bytes,
                  .detail = static_cast<std::uint64_t>(frame.type));
    for (const auto& tap : taps_) tap(frame, sender_pos);
    for (const auto& tap : audit_taps_) tap(frame, sender_pos, sender->trace_node_);
    const SimTime airtime = params_.airtime(frame.wire_bytes);

    sender->begin_own_tx();

    // Reception membership is decided at transmission start. Both paths
    // visit candidates in registration order, so MAC callbacks (and the
    // events they schedule) fire in the same FIFO order either way. The
    // reception set lives in a pooled slot so the end-of-airtime closure
    // captures 28 bytes (inline in sim::Callback) and steady-state
    // transmissions allocate nothing.
    const std::uint32_t slot = acquire_tx_slot();
    if (brute_force_) {
        // Validation path only (every radio is a candidate), so the full
        // upper bound is the right reservation.
        tx_slots_[slot].affected.reserve(radios_.empty() ? 0 : radios_.size() - 1);
        for (std::size_t i = 0; i < radios_.size(); ++i) {
            Radio* r = radios_[i];
            if (r == sender) continue;
            deliver_from(sender, frame, sender_pos, tx_id, r,
                         state_.position(static_cast<EngineState::Index>(i), now), slot);
        }
    } else {
        rebucket_if_stale();
        candidates_.clear();
        const Cell center = cell_of(sender_pos);
        for (std::int32_t dx = -1; dx <= 1; ++dx) {
            for (std::int32_t dy = -1; dy <= 1; ++dy) {
                const auto it = buckets_.find(cell_key({center.x + dx, center.y + dy}));
                if (it == buckets_.end()) continue;
                // geoanon-lint: allow(hot-alloc) -- candidates_ is member scratch: capacity persists across calls, so growth amortizes to zero over the run
                candidates_.insert(candidates_.end(), it->second.begin(), it->second.end());
            }
        }
        // geoanon-lint: allow(hot-alloc) -- member scratch, see above
        candidates_.insert(candidates_.end(), unbucketed_.begin(), unbucketed_.end());
        std::sort(candidates_.begin(), candidates_.end());
        tx_slots_[slot].affected.reserve(candidates_.size());
        for (const std::uint32_t idx : candidates_) {
            Radio* r = radios_[idx];
            if (r == sender) continue;
            deliver_from(sender, frame, sender_pos, tx_id, r,
                         state_.position(idx, now), slot);
        }
    }

    sim_.after(airtime, [this, sender, tx_id, slot] {
        sender->end_own_tx();
        // Indexed loop with a fresh tx_slots_ lookup each pass: energy_end
        // (via the MAC's on_idle hook) can start a new transmission, which
        // may acquire a slot and grow the pool mid-loop.
        for (std::size_t k = 0; k < tx_slots_[slot].affected.size(); ++k) {
            tx_slots_[slot].affected[k]->energy_end(tx_id);
        }
        release_tx_slot(slot);
    });
}

void Radio::publish_metrics(obs::MetricsRegistry& reg) const {
    reg.add("phy.frames_sent", stats_.frames_sent);
    reg.add("phy.frames_delivered", stats_.frames_delivered);
    reg.add("phy.frames_corrupted", stats_.frames_corrupted);
    reg.add("phy.frames_missed_down", stats_.frames_missed_down);
}

void Channel::publish_metrics(obs::MetricsRegistry& reg) const {
    reg.add("phy.transmissions", stats_.transmissions);
    reg.add("phy.deliveries", stats_.deliveries);
    reg.add("phy.collisions", stats_.collisions);
    reg.add("phy.impaired", stats_.impaired);
}

}  // namespace geoanon::phy
