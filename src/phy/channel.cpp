#include "phy/channel.hpp"

#include <cassert>

namespace geoanon::phy {

Radio::Radio(sim::Simulator& sim, Channel& channel, PositionFn position)
    : sim_(sim), channel_(channel), position_(std::move(position)) {
    channel_.register_radio(this);
}

const PhyParams& Radio::phy_params() const { return channel_.params(); }

void Radio::set_mac_hooks(std::function<void()> on_busy, std::function<void()> on_idle,
                          std::function<void(const Frame&)> on_rx) {
    on_busy_ = std::move(on_busy);
    on_idle_ = std::move(on_idle);
    on_rx_ = std::move(on_rx);
}

void Radio::start_tx(const Frame& frame) {
    assert(!transmitting_ && "half-duplex radio already transmitting");
    ++stats_.frames_sent;
    channel_.start_tx(this, frame);
}

void Radio::begin_own_tx() {
    transmitting_ = true;
    // Half-duplex: transmitting corrupts everything we were receiving.
    for (auto& [id, rx] : receptions_) {
        if (!rx.corrupted) {
            rx.corrupted = true;
            channel_.note_collision();
            ++stats_.frames_corrupted;
        }
    }
    ++energy_count_;
    if (energy_count_ == 1 && on_busy_) on_busy_();
}

void Radio::end_own_tx() {
    transmitting_ = false;
    --energy_count_;
    if (energy_count_ == 0 && on_idle_) on_idle_();
}

void Radio::energy_start(std::uint64_t tx_id, bool decodable, const Frame& frame) {
    // New energy corrupts every ongoing reception here.
    for (auto& [id, rx] : receptions_) {
        if (!rx.corrupted) {
            rx.corrupted = true;
            channel_.note_collision();
            ++stats_.frames_corrupted;
        }
    }
    const bool clear = energy_count_ == 0 && !transmitting_;
    ++energy_count_;
    if (decodable) {
        Reception rx;
        rx.frame = frame;
        rx.corrupted = !clear;
        if (rx.corrupted) {
            channel_.note_collision();
            ++stats_.frames_corrupted;
        }
        receptions_.emplace(tx_id, std::move(rx));
    }
    if (energy_count_ == 1 && on_busy_) on_busy_();
}

void Radio::energy_end(std::uint64_t tx_id) {
    --energy_count_;
    auto it = receptions_.find(tx_id);
    if (it != receptions_.end()) {
        const bool ok = !it->second.corrupted && !transmitting_;
        Frame frame = std::move(it->second.frame);
        receptions_.erase(it);
        if (ok) {
            if (!enabled_) {
                ++stats_.frames_missed_down;
            } else {
                ++stats_.frames_delivered;
                channel_.note_delivery();
                if (on_rx_) on_rx_(frame);
            }
        }
    }
    if (energy_count_ == 0 && on_idle_) on_idle_();
}

void Channel::start_tx(Radio* sender, const Frame& frame) {
    ++stats_.transmissions;
    const std::uint64_t tx_id = next_tx_id_++;
    const Vec2 sender_pos = sender->position();
    if (snoop_) snoop_(frame, sender_pos);
    for (const auto& tap : taps_) tap(frame, sender_pos);
    const SimTime airtime = params_.airtime(frame.wire_bytes);

    sender->begin_own_tx();

    // Reception membership is decided at transmission start.
    std::vector<Radio*> affected;
    for (Radio* r : radios_) {
        if (r == sender) continue;
        const Vec2 rx_pos = r->position();
        const double d = util::distance(sender_pos, rx_pos);
        if (d <= params_.cs_range_m) {
            bool decodable = d <= params_.range_m;
            if (decodable && drop_ && drop_(frame, sender_pos, rx_pos)) {
                decodable = false;
                ++stats_.impaired;
            }
            affected.push_back(r);
            r->energy_start(tx_id, decodable, frame);
        }
    }

    sim_.after(airtime, [this, sender, affected = std::move(affected), tx_id] {
        sender->end_own_tx();
        for (Radio* r : affected) r->energy_end(tx_id);
    });
}

}  // namespace geoanon::phy
