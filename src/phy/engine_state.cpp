#include "phy/engine_state.hpp"

#include <utility>

namespace geoanon::phy {

EngineState::Index EngineState::append_common() {
    const auto idx = static_cast<Index>(mode_.size());
    mode_.push_back(Mode::kClosure);
    model_.push_back(nullptr);
    fn_.emplace_back();
    // seg_end == seg_start == 0 marks the leg stale, so the first lookup
    // refreshes (every query time t satisfies t >= seg_end).
    seg_start_ns_.push_back(0);
    move_start_ns_.push_back(0);
    seg_end_ns_.push_back(0);
    from_x_.push_back(0.0);
    from_y_.push_back(0.0);
    to_x_.push_back(0.0);
    to_y_.push_back(0.0);
    up_.push_back(1);
    cell_x_.push_back(0);
    cell_y_.push_back(0);
    bucketed_.push_back(0);
    return idx;
}

EngineState::Index EngineState::add_row(mobility::MobilityModel* model) {
    const Index idx = append_common();
    mode_[idx] = Mode::kSampled;  // demoted to kDirect on first failed refresh
    model_[idx] = model;
    return idx;
}

EngineState::Index EngineState::add_row(PositionFn fn) {
    const Index idx = append_common();
    mode_[idx] = Mode::kClosure;
    fn_[idx] = std::move(fn);
    return idx;
}

void EngineState::refresh(Index i, SimTime t) {
    mobility::MotionSample s;
    if (model_[i]->motion_at(t, s)) {
        seg_start_ns_[i] = s.start.ns();
        move_start_ns_[i] = s.move_start.ns();
        seg_end_ns_[i] = s.end.ns();
        from_x_[i] = s.from.x;
        from_y_[i] = s.from.y;
        to_x_[i] = s.to.x;
        to_y_[i] = s.to.y;
        return;
    }
    mode_[i] = Mode::kDirect;
}

// geoanon: hot
Vec2 EngineState::position(Index i, SimTime t) {
    if (mode_[i] == Mode::kSampled) {
        // Refresh once when the cached leg goes stale, then evaluate
        // unconditionally: a leg ending exactly at t (arrival instant) is
        // handled inside sample_position, matching position_at's own
        // boundary behaviour.
        if (t.ns() < seg_start_ns_[i] || t.ns() >= seg_end_ns_[i]) refresh(i, t);
        if (mode_[i] == Mode::kSampled) return mobility::sample_position(sample_of(i), t);
    }
    if (mode_[i] == Mode::kDirect) return model_[i]->position_at(t);
    return fn_[i]();
}

// geoanon: hot
Vec2 EngineState::velocity(Index i, SimTime t) {
    if (mode_[i] == Mode::kSampled) {
        if (t.ns() < seg_start_ns_[i] || t.ns() >= seg_end_ns_[i]) refresh(i, t);
        if (mode_[i] == Mode::kSampled) return mobility::sample_velocity(sample_of(i), t);
    }
    if (mode_[i] == Mode::kDirect) return model_[i]->velocity_at(t);
    // Closure rows carry no velocity information; stationary is the only
    // consistent answer (test rigs pin positions).
    return Vec2{};
}

}  // namespace geoanon::phy
