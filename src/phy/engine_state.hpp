#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mobility/mobility.hpp"
#include "util/time.hpp"
#include "util/vec2.hpp"

namespace geoanon::phy {

using util::SimTime;
using util::Vec2;

/// Structure-of-arrays hot state for every radio on a channel: positions
/// (cached piecewise-linear motion legs), radio up/down flags, and grid-cell
/// membership. The Channel's 9-cell query, its rebucket sweep, and every
/// per-frame position lookup read these contiguous arrays instead of chasing
/// a per-node closure -> unique_ptr -> virtual call -> segment binary search
/// chain, which is what makes 100k+-node sweeps cache-feasible.
///
/// Positions are evaluated with mobility::sample_position on legs fetched
/// via MobilityModel::motion_at, so values are bit-identical to calling
/// model->position_at(t) directly (same expressions, same operation order);
/// swapping the Channel onto EngineState cannot change any simulation
/// outcome. Rows are append-only and indexed by registration order — the
/// same order as Channel::radios_ — so indices stay stable for the lifetime
/// of the run (FaultInjector, InvariantChecker and obs taps key off them).
class EngineState {
  public:
    using Index = std::uint32_t;
    using PositionFn = std::function<Vec2()>;

    /// Row whose position comes from a mobility model. The model must
    /// outlive the EngineState. Models that implement motion_at() get the
    /// cached-leg fast path; others are queried per lookup.
    Index add_row(mobility::MobilityModel* model);

    /// Row whose position comes from an arbitrary closure (test rigs, bench
    /// harnesses). Always queried per lookup — correct for any closure, just
    /// not cache-linear.
    Index add_row(PositionFn fn);

    std::size_t size() const { return mode_.size(); }

    /// True position of row `i` at time `t` (refreshes the cached leg when
    /// it has gone stale).
    Vec2 position(Index i, SimTime t);
    Vec2 velocity(Index i, SimTime t);

    // Radio power state (fault injection) ---------------------------------
    void set_up(Index i, bool up) { up_[i] = up ? 1 : 0; }
    bool up(Index i) const { return up_[i] != 0; }

    // Grid-cell membership, written by the Channel's rebucket sweep --------
    void set_cell(Index i, std::int32_t x, std::int32_t y) {
        cell_x_[i] = x;
        cell_y_[i] = y;
    }
    std::int32_t cell_x(Index i) const { return cell_x_[i]; }
    std::int32_t cell_y(Index i) const { return cell_y_[i]; }
    void set_bucketed(Index i, bool b) { bucketed_[i] = b ? 1 : 0; }
    bool bucketed(Index i) const { return bucketed_[i] != 0; }

  private:
    enum class Mode : std::uint8_t {
        kSampled,  ///< model with motion_at(): cached-leg fast path
        kDirect,   ///< model without motion_at(): virtual call per lookup
        kClosure,  ///< PositionFn row
    };

    Index append_common();
    void refresh(Index i, SimTime t);
    mobility::MotionSample sample_of(Index i) const {
        return mobility::MotionSample{SimTime::nanos(seg_start_ns_[i]),
                                      SimTime::nanos(move_start_ns_[i]),
                                      SimTime::nanos(seg_end_ns_[i]),
                                      Vec2{from_x_[i], from_y_[i]},
                                      Vec2{to_x_[i], to_y_[i]}};
    }

    // One entry per row, all parallel (SoA).
    std::vector<Mode> mode_;
    std::vector<mobility::MobilityModel*> model_;
    std::vector<PositionFn> fn_;
    // Cached motion leg: valid for t in [seg_start, seg_end).
    std::vector<std::int64_t> seg_start_ns_;
    std::vector<std::int64_t> move_start_ns_;
    std::vector<std::int64_t> seg_end_ns_;
    std::vector<double> from_x_, from_y_, to_x_, to_y_;
    std::vector<std::uint8_t> up_;
    std::vector<std::int32_t> cell_x_, cell_y_;
    std::vector<std::uint8_t> bucketed_;
};

}  // namespace geoanon::phy
