#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mobility/mobility.hpp"
#include "net/packet.hpp"
#include "net/types.hpp"
#include "phy/engine_state.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"
#include "util/vec2.hpp"

namespace geoanon::obs {
class MetricsRegistry;
}

namespace geoanon::phy {

using util::SimTime;
using util::Vec2;

/// Radio/channel parameters. Defaults follow the paper's setup (250 m nominal
/// range) and the ns-2 CMU defaults it inherited (2 Mb/s WaveLAN, 550 m
/// carrier-sense/interference range, 192 us PLCP preamble+header).
struct PhyParams {
    double range_m{250.0};
    double cs_range_m{550.0};
    double bitrate_bps{2e6};
    SimTime plcp_overhead{SimTime::micros(192)};

    /// Spatial-index tuning. Radios are re-bucketed from their EngineState
    /// position rows at transmission time, at most once per
    /// grid_rebucket_interval; the grid cell size is cs_range_m plus the
    /// farthest a radio can drift between sweeps (grid_max_speed_mps *
    /// interval), so the 9-cell neighborhood query stays exact for any
    /// mobility at or below the speed hint.
    SimTime grid_rebucket_interval{SimTime::millis(250)};
    double grid_max_speed_mps{50.0};

    /// Escape hatch: scan every registered radio per transmission instead of
    /// using the spatial hash grid. Also enabled (for a whole process) by the
    /// GEOANON_BRUTE_FORCE_CHANNEL environment variable.
    bool brute_force{false};

    /// Time on air for a link-layer frame of `bytes` bytes.
    SimTime airtime(std::size_t bytes) const {
        const double tx_s = static_cast<double>(bytes) * 8.0 / bitrate_bps;
        return plcp_overhead + SimTime::seconds(tx_s);
    }
};

/// Link-layer frame envelope as it travels on the air.
struct Frame {
    enum class Type : std::uint8_t { kRts, kCts, kData, kAck };
    Type type{Type::kData};
    net::MacAddr src{net::kBroadcastAddr};
    net::MacAddr dst{net::kBroadcastAddr};
    /// NAV reservation: medium reserved for this long after the frame ends
    /// (virtual carrier sensing; 0 for broadcast frames).
    SimTime nav{};
    std::uint32_t seq{0};
    bool retry{false};
    net::PacketPtr payload;        ///< network packet (kData only)
    std::uint32_t wire_bytes{0};   ///< full MAC frame size on the air
};

class Channel;

/// One node's radio: half-duplex, unit-disk reception, with carrier sensing.
/// The MAC drives it via start_tx() and receives busy/idle/rx callbacks.
///
/// Hot per-radio state (position, up/down, grid cell) lives in the channel's
/// EngineState row keyed by this radio's registration index; the Radio object
/// itself holds only the MAC-facing callbacks and counters.
class Radio {
  public:
    using PositionFn = EngineState::PositionFn;

    struct Stats {
        std::uint64_t frames_sent{0};
        std::uint64_t frames_delivered{0};   ///< received intact
        std::uint64_t frames_corrupted{0};   ///< lost to collision at this radio
        std::uint64_t frames_missed_down{0}; ///< intact but radio was disabled
    };

    /// Closure-positioned radio (test rigs, bench harnesses): `position` is
    /// invoked per lookup.
    Radio(sim::Simulator& sim, Channel& channel, PositionFn position);
    /// Model-positioned radio (production nodes): positions are evaluated
    /// from the EngineState's cached motion legs — same values, no closure
    /// or virtual call on the per-frame path. The model must outlive the
    /// radio.
    Radio(sim::Simulator& sim, Channel& channel, mobility::MobilityModel& model);
    Radio(const Radio&) = delete;
    Radio& operator=(const Radio&) = delete;

    /// MAC hookup. on_busy fires on the 0->1 energy transition, on_idle on
    /// the 1->0 transition, on_rx with every intact decodable frame.
    void set_mac_hooks(std::function<void()> on_busy, std::function<void()> on_idle,
                       std::function<void(const Frame&)> on_rx);

    /// Begin transmitting; the channel computes reception at all radios in
    /// range. Must not be called while already transmitting.
    void start_tx(const Frame& frame);

    bool transmitting() const { return transmitting_; }
    /// Physical carrier sense: any energy (including own transmission).
    bool energy_busy() const { return energy_count_ > 0; }

    /// Fault injection: a disabled radio decodes nothing (intact frames are
    /// counted as frames_missed_down instead of delivered). Energy
    /// bookkeeping continues so channel end-events and carrier-sense state
    /// stay consistent across a crash/recover cycle. The flag lives in the
    /// EngineState up/down row.
    void set_enabled(bool enabled);
    bool enabled() const;

    Vec2 position() const;
    /// Current velocity (zero for closure-positioned radios).
    Vec2 velocity() const;
    /// This radio's EngineState row (== its registration order).
    EngineState::Index index() const { return index_; }
    const Stats& stats() const { return stats_; }
    /// Channel parameters (airtimes, ranges) for the MAC above.
    const PhyParams& phy_params() const;

    /// Node id used for trace attribution only (frame src/dst are broadcast
    /// in anonymous mode, so the radio can't learn it from traffic).
    void set_trace_node(net::NodeId id) { trace_node_ = id; }
    net::NodeId trace_node() const { return trace_node_; }

    /// Fold this radio's counters into the run metrics (phy.frames_*).
    void publish_metrics(obs::MetricsRegistry& reg) const;

  private:
    friend class Channel;

    void energy_start(std::uint64_t tx_id, bool decodable, const Frame& frame);
    void energy_end(std::uint64_t tx_id);
    void begin_own_tx();
    void end_own_tx();

    struct Reception {
        Frame frame;
        bool corrupted{false};
    };

    sim::Simulator& sim_;
    Channel& channel_;
    EngineState::Index index_{0};
    std::function<void()> on_busy_;
    std::function<void()> on_idle_;
    std::function<void(const Frame&)> on_rx_;

    int energy_count_{0};
    bool transmitting_{false};
    net::NodeId trace_node_{net::kInvalidNode};
    /// Concurrent receptions, keyed by tx id. Insertion-ordered (a plain
    /// vector, typically 0-3 entries) so corruption sweeps traverse in the
    /// same order on every standard library, keeping runs reproducible
    /// across platforms, not just within one.
    std::vector<std::pair<std::uint64_t, Reception>> receptions_;
    Stats stats_;
};

/// The shared wireless medium. A frame transmitted by radio S is decodable at
/// every radio within range_m of S (positions sampled at transmission start)
/// unless any other energy — another transmission within cs_range_m, or the
/// receiver's own transmission — overlaps its airtime, in which case all
/// overlapping receptions at that radio are corrupted. Hidden terminals
/// emerge naturally from this rule.
///
/// Reception membership is resolved through a spatial hash grid (cell size
/// cs_range_m plus a mobility slack): a transmission only inspects radios
/// bucketed in the 9 cells around the sender, and radios re-bucket lazily
/// from their EngineState rows at transmission time. The grid is an index,
/// not a model change — candidate radios are visited in registration order
/// and filtered by the exact same distance test as the brute-force scan, so
/// the event stream (and therefore every ScenarioResult) is bit-identical to
/// PhyParams::brute_force mode.
class Channel {
  public:
    struct Stats {
        std::uint64_t transmissions{0};
        std::uint64_t deliveries{0};
        std::uint64_t collisions{0};  ///< corrupted receptions, all radios
        std::uint64_t impaired{0};    ///< in-range receptions killed by the drop model
    };

    Channel(sim::Simulator& sim, PhyParams params);

    const PhyParams& params() const { return params_; }
    const Stats& stats() const { return stats_; }
    sim::Simulator& simulator() { return sim_; }
    /// The SoA hot-state tables (positions, up/down, grid cells) for every
    /// radio registered on this channel, indexed by Radio::index().
    EngineState& state() { return state_; }

    /// Passive global eavesdropper tap: observes every transmission with the
    /// transmitter's true position (a sniffer near the sender learns as
    /// much). Used by the privacy experiments (§4). Taps share one dispatch
    /// list with a documented order: the set_snoop() tap (historical
    /// single-tap API) occupies slot 0 and is ALWAYS dispatched first;
    /// add_snoop() taps follow in registration order. set_snoop(nullptr)
    /// removes only the primary tap; add_snoop taps are unaffected. This
    /// lets the eavesdropper, the invariant checker and the trace recorder
    /// observe the same run side by side with a stable callback order (the
    /// order events land in the trace depends on it).
    using SnoopFn = std::function<void(const Frame&, const Vec2& tx_pos)>;
    void set_snoop(SnoopFn snoop);
    void add_snoop(SnoopFn snoop) { taps_.push_back(std::move(snoop)); }

    /// Audited variant of the snoop tap: additionally reveals the
    /// transmitting node's true id (Radio::trace_node()). This is
    /// ground-truth attribution for *scoring* adversary output — the frame
    /// itself carries no identity in anonymous mode, and attack passes must
    /// never consume the third argument (GL010 guards the consumers). Audit
    /// taps are dispatched after every regular tap, in registration order.
    using AuditSnoopFn =
        std::function<void(const Frame&, const Vec2& tx_pos, net::NodeId true_sender)>;
    void add_audit_snoop(AuditSnoopFn snoop) { audit_taps_.push_back(std::move(snoop)); }

    /// Drop every tap — primary, additional and audit — in one call (test
    /// teardown, scenario reset).
    void clear_snoops() {
        taps_.clear();
        audit_taps_.clear();
        has_primary_tap_ = false;
    }

    /// Receiver-side impairment model (fault injection): return true to make
    /// the frame undecodable at a receiver located at rx_pos. The frame's
    /// energy still occupies the medium there, so carrier sensing, NAV and
    /// collision physics are unaffected — only decoding fails.
    using DropFn = std::function<bool(const Frame&, const Vec2& tx_pos, const Vec2& rx_pos)>;
    void set_drop_model(DropFn drop) { drop_ = std::move(drop); }

    /// True when this channel scans all radios per transmission (config flag
    /// or GEOANON_BRUTE_FORCE_CHANNEL) instead of querying the spatial grid.
    bool brute_force() const { return brute_force_; }

    /// Fold channel-wide counters into the run metrics (phy.transmissions,
    /// phy.deliveries, phy.collisions, phy.impaired).
    void publish_metrics(obs::MetricsRegistry& reg) const;

  private:
    friend class Radio;

    static constexpr std::uint32_t kNilSlot = 0xffffffffu;

    /// Grid cell coordinates (floor of position / cell size; signed so
    /// positions slightly outside the area still bucket correctly).
    struct Cell {
        std::int32_t x{0};
        std::int32_t y{0};
        bool operator==(const Cell&) const = default;
    };

    /// Pooled per-transmission reception set: the end-of-airtime event
    /// captures a slot index instead of a freshly-allocated vector, so
    /// steady-state transmissions do zero heap allocations (the vectors keep
    /// their capacity across reuse).
    struct TxSlot {
        std::vector<Radio*> affected;
        std::uint32_t next_free{kNilSlot};
    };

    EngineState::Index register_radio(Radio* radio, EngineState::PositionFn fn);
    EngineState::Index register_radio(Radio* radio, mobility::MobilityModel* model);
    void finish_register(Radio* radio);
    void start_tx(Radio* sender, const Frame& frame);
    void note_delivery() { ++stats_.deliveries; }
    void note_collision() { ++stats_.collisions; }

    Cell cell_of(const Vec2& p) const;
    static std::uint64_t cell_key(Cell c);
    /// Re-bucket every radio from its EngineState row if the last sweep is
    /// older than grid_rebucket_interval (no-op otherwise). Called at tx time
    /// only, so it schedules nothing and leaves the event stream untouched.
    void rebucket_if_stale();
    void deliver_from(Radio* sender, const Frame& frame, const Vec2& sender_pos,
                      std::uint64_t tx_id, Radio* receiver, const Vec2& rx_pos,
                      std::uint32_t slot);
    std::uint32_t acquire_tx_slot();
    std::uint32_t grow_tx_slots();
    void release_tx_slot(std::uint32_t slot);

    sim::Simulator& sim_;
    PhyParams params_;
    EngineState state_;
    std::vector<Radio*> radios_;
    Stats stats_;
    std::uint64_t next_tx_id_{1};
    std::vector<SnoopFn> taps_;
    std::vector<AuditSnoopFn> audit_taps_;
    bool has_primary_tap_{false};  ///< taps_[0] is the set_snoop slot
    DropFn drop_;
    std::vector<TxSlot> tx_slots_;
    std::uint32_t tx_free_{kNilSlot};

    // Spatial hash grid ---------------------------------------------------
    bool brute_force_{false};
    double cell_m_{1.0};
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets_;
    /// Radios registered since the last sweep; always candidates until the
    /// next sweep buckets them (their position row may not be safely
    /// readable at registration time).
    std::vector<std::uint32_t> unbucketed_;
    bool swept_once_{false};
    SimTime last_sweep_{};
    std::vector<std::uint32_t> candidates_;   ///< per-tx scratch
};

}  // namespace geoanon::phy
