#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adversary/eavesdropper.hpp"
#include "adversary/observation.hpp"
#include "adversary/trajectory.hpp"
#include "analysis/invariant_checker.hpp"
#include "core/agfw.hpp"
#include "crypto/engine.hpp"
#include "fault/fault.hpp"
#include "mobility/mobility.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/gpsr.hpp"
#include "routing/location_service.hpp"
#include "util/stats.hpp"

namespace geoanon::workload {

/// Routing scheme under test — the three curves of Figure 1.
enum class Scheme {
    kGpsrGreedy,  ///< baseline: unicast + RTS/CTS, identity-bearing beacons
    kAgfwAck,     ///< AGFW with the network-layer acknowledgment
    kAgfwNoAck,   ///< "simple form of AGFW with no packet acknowledgment"
};

std::string scheme_name(Scheme s);

/// Full description of one simulation run. Defaults reproduce the paper's
/// setup (§5.1): 1500x300 m, 900 s, 250 m range, RWP <=20 m/s with 60 s
/// pause, 30 CBR flows from 20 senders.
struct ScenarioConfig {
    Scheme scheme{Scheme::kGpsrGreedy};
    std::uint64_t seed{1};

    std::size_t num_nodes{50};
    mobility::Area area{1500.0, 300.0};
    double min_speed_mps{1.0};
    double max_speed_mps{20.0};
    double pause_s{60.0};
    double sim_seconds{900.0};

    std::size_t num_flows{30};
    std::size_t num_senders{20};
    double cbr_pps{4.0};             ///< 64-byte packets at 4/s ~= 2 kb/s CBR
    std::size_t cbr_payload_bytes{64};
    double traffic_start_s{10.0};
    double traffic_stop_s{880.0};

    phy::PhyParams phy{};

    // Crypto / anonymity knobs -------------------------------------------
    bool use_real_crypto{false};      ///< real RSA math (small runs only)
    std::size_t modulus_bits{512};
    bool charge_crypto_costs{true};
    bool authenticated_hello{false};  ///< ring-signed ANT (§3.1.2)
    std::size_t ring_k{4};
    /// §3.2: broadcast frames hide the sender MAC. Turning this off enables
    /// the correlation attack the paper warns about (privacy ablation).
    bool anonymous_mac{true};

    // Location service ----------------------------------------------------
    /// nullopt = perfect location oracle (the paper's Figure-1 setting).
    std::optional<routing::LocationService::Mode> location_service{};
    double ls_cell_m{300.0};
    routing::LocationService::Params ls_params{};

    /// Deterministic fault schedule (crashes, churn, loss bursts, jamming,
    /// GPS error, ALS outages). Empty = no injector is attached at all.
    fault::FaultPlan faults{};

    /// Flight-recorder settings. trace.enabled = false (the default) keeps
    /// every GEOANON_TRACE site down to a null-pointer test.
    obs::TraceParams trace{};

    bool attach_eavesdropper{false};
    /// Record a compact per-transmission observation log and run the offline
    /// pseudonym-linking / trajectory attack at aggregation time (results in
    /// ScenarioResult::attack). Implies the same single snoop tap the
    /// eavesdropper rides; the pseudonym-change countermeasure under test is
    /// configured via agfw.pseudonym_policy.
    bool attach_observer{false};
    /// Offline attack knobs (attacker strength, scoring window). A zero
    /// linker.max_speed_mps is filled in from max_speed_mps — the attacker
    /// is assumed to know the mobility envelope.
    adversary::AttackParams attack{};
    /// Run the protocol invariant checker alongside the scenario (passive;
    /// cannot change the outcome). Results land in ScenarioResult::invariants.
    bool check_invariants{true};

    core::AgfwAgent::Params agfw{};
    routing::GpsrGreedyAgent::Params gpsr{};
};

/// Aggregated outcome of one run.
struct ScenarioResult {
    // Application-level (the paper's two metrics, §5)
    std::uint64_t app_sent{0};
    std::uint64_t app_delivered{0};   ///< unique (flow, seq) at destination
    double delivery_fraction{0.0};
    double avg_latency_ms{0.0};
    double p50_latency_ms{0.0};
    double p95_latency_ms{0.0};
    double avg_hops{0.0};

    // MAC / PHY aggregates
    std::uint64_t mac_collisions{0};
    std::uint64_t mac_retries{0};
    std::uint64_t mac_drop_retry{0};
    std::uint64_t rts_sent{0};
    std::uint64_t data_frames{0};
    std::uint64_t transmissions{0};

    // Agent aggregates
    std::uint64_t drop_no_route{0};
    std::uint64_t drop_unreachable{0};
    std::uint64_t drop_no_location{0};
    std::uint64_t nl_retransmissions{0};
    std::uint64_t last_attempts{0};
    std::uint64_t trapdoor_attempts{0};
    std::uint64_t trapdoor_opens{0};
    std::uint64_t acks_sent{0};
    std::uint64_t implicit_acks{0};
    std::uint64_t hello_sent{0};
    std::uint64_t hello_suppressed{0};
    std::uint64_t pseudonym_rotations{0};
    std::uint64_t cert_fetches{0};
    std::uint64_t control_bytes{0};
    std::uint64_t data_bytes{0};
    std::uint64_t perimeter_entries{0};
    std::uint64_t perimeter_recoveries{0};
    std::uint64_t perimeter_forwards{0};

    // Location service aggregates (when enabled)
    routing::LocationService::Stats ls{};

    /// Everything every layer published into the run's MetricsRegistry,
    /// sorted by name. The named fields above are derived from this snapshot
    /// (see ScenarioRunner::aggregate) and kept for API/JSON stability.
    obs::MetricsSnapshot metrics{};

    // Adversary (when attached)
    adversary::Eavesdropper::Report adversary{};
    /// Offline linking/trajectory attack (when attach_observer is on).
    adversary::AttackReport attack{};

    // Protocol invariant counters (when check_invariants is on)
    analysis::InvariantChecker::Counters invariants{};

    /// Resilience counters (populated when config.faults is non-empty).
    struct Resilience {
        std::uint64_t faults_injected{0};
        std::uint64_t node_crashes{0};
        std::uint64_t node_recoveries{0};
        std::uint64_t als_outages{0};
        /// Packets lost per fault class. Node-down losses are frames that
        /// reached a disabled radio; burst/jam losses are channel drops.
        std::uint64_t frames_lost_node_down{0};
        std::uint64_t frames_lost_loss_burst{0};
        std::uint64_t frames_lost_jam{0};
        std::uint64_t frames_lost_partition{0};
        std::uint64_t server_flap_cycles{0};
        std::uint64_t ls_pending_wiped{0};  ///< queries lost to requester crashes
        /// Recovery latency: crash-end until the node's routing state is
        /// warm again (agent probe). Censored samples are excluded.
        std::uint64_t recoveries_measured{0};
        double recovery_latency_p50_s{0.0};
        double recovery_latency_p95_s{0.0};
        /// Per-class recovery tails: how fast the grid heals after an ALS
        /// outage vs. under sustained server flapping.
        double recovery_outage_p95_s{0.0};
        double recovery_flap_p95_s{0.0};
    };
    Resilience resilience{};

    std::uint64_t events_processed{0};

    /// Host-side execution metrics. The only non-deterministic corner of the
    /// result: wall-clock and throughput vary run to run, so equivalence and
    /// replay comparisons (and the default bench JSON) exclude this block.
    /// peak_queue_depth (simulator high-water mark) IS deterministic.
    struct Perf {
        double wall_seconds{0.0};
        double events_per_sec{0.0};
        std::size_t peak_queue_depth{0};
    };
    Perf perf{};
};

/// Builds the network for a ScenarioConfig, drives the CBR workload, runs
/// the simulation, and aggregates the result.
class ScenarioRunner {
  public:
    explicit ScenarioRunner(ScenarioConfig config);
    ~ScenarioRunner();

    /// Build everything (idempotent; called by run() if needed). Exposed so
    /// tests can inspect/poke the network before running.
    void setup();

    ScenarioResult run();

    net::Network& network() { return *network_; }
    crypto::CryptoEngine& engine() { return *engine_; }
    const ScenarioConfig& config() const { return config_; }
    core::AgfwAgent* agfw_agent(net::NodeId id);
    routing::GpsrGreedyAgent* gpsr_agent(net::NodeId id);
    /// The attached invariant checker (nullptr when check_invariants is off
    /// or setup() has not run yet).
    analysis::InvariantChecker* invariant_checker() { return checker_.get(); }
    /// The attached fault injector (nullptr when config.faults is empty or
    /// setup() has not run yet).
    fault::FaultInjector* fault_injector() { return injector_.get(); }
    /// The flight recorder (nullptr unless config.trace.enabled).
    obs::TraceRecorder* trace_recorder() { return recorder_.get(); }
    /// The shared adversary observation feed (nullptr unless
    /// attach_eavesdropper or attach_observer is set).
    adversary::ObservationFeed* observation_feed() { return feed_.get(); }
    /// Export the recorded trace as deterministic Chrome trace-event JSON.
    /// Empty string when tracing was off.
    std::string chrome_trace_json() const;

  private:
    struct Flow {
        net::FlowId id;
        net::NodeId src;
        net::NodeId dst;
        double start_s;
        std::uint32_t next_seq{0};
    };

    void build_nodes();
    void build_traffic();
    /// One CBR slot for flow `f`: emit a packet (unless the sender is down
    /// or traffic has stopped) and reschedule. Member function instead of a
    /// heap-held closure: the event captures only [this, f], which fits the
    /// simulator's inline callback storage.
    void cbr_tick(std::size_t f);
    void on_delivery(net::NodeId at, const net::Packet& pkt);
    ScenarioResult aggregate();

    ScenarioConfig config_;
    std::unique_ptr<crypto::CryptoEngine> engine_;
    /// Declared before network_: the simulator holds a raw pointer to the
    /// recorder, so it must outlive the network during teardown.
    std::unique_ptr<obs::TraceRecorder> recorder_;
    std::unique_ptr<net::Network> network_;
    /// Single snoop-registration path for all adversary components; created
    /// when either attach_eavesdropper or attach_observer is set.
    std::unique_ptr<adversary::ObservationFeed> feed_;
    std::unique_ptr<adversary::Eavesdropper> eavesdropper_;
    std::unique_ptr<analysis::InvariantChecker> checker_;
    std::unique_ptr<fault::FaultInjector> injector_;
    std::vector<Flow> flows_;
    std::vector<core::AgfwAgent*> agfw_agents_;
    std::vector<routing::GpsrGreedyAgent*> gpsr_agents_;

    // Delivery bookkeeping: unique (flow, seq).
    std::vector<std::vector<bool>> delivered_;
    std::vector<std::uint32_t> sent_per_flow_;
    util::Sampler latency_ms_;
    util::Sampler hops_;
    std::uint64_t app_delivered_{0};
    bool built_{false};
};

}  // namespace geoanon::workload
