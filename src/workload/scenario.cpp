#include "workload/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "obs/export.hpp"

namespace geoanon::workload {

using util::SimTime;

std::string scheme_name(Scheme s) {
    switch (s) {
        case Scheme::kGpsrGreedy: return "gpsr-greedy";
        case Scheme::kAgfwAck: return "agfw-ack";
        case Scheme::kAgfwNoAck: return "agfw-noack";
    }
    return "?";
}

ScenarioRunner::ScenarioRunner(ScenarioConfig config) : config_(std::move(config)) {}
ScenarioRunner::~ScenarioRunner() = default;

core::AgfwAgent* ScenarioRunner::agfw_agent(net::NodeId id) {
    // Agents are created in node-id order, one per node.
    return id < agfw_agents_.size() ? agfw_agents_[id] : nullptr;
}

routing::GpsrGreedyAgent* ScenarioRunner::gpsr_agent(net::NodeId id) {
    return id < gpsr_agents_.size() ? gpsr_agents_[id] : nullptr;
}

void ScenarioRunner::setup() {
    if (built_) return;
    built_ = true;

    if (config_.use_real_crypto) {
        engine_ = std::make_unique<crypto::RealCryptoEngine>(config_.seed * 7919 + 17,
                                                             config_.modulus_bits);
    } else {
        engine_ = std::make_unique<crypto::ModeledCryptoEngine>(config_.seed * 7919 + 17,
                                                                config_.modulus_bits);
    }
    network_ = std::make_unique<net::Network>(config_.phy, config_.seed);
    if (config_.trace.enabled) {
        recorder_ = std::make_unique<obs::TraceRecorder>(config_.trace);
        network_->set_trace(recorder_.get());
    }

    build_nodes();
    build_traffic();

    if (!config_.faults.empty()) {
        injector_ = std::make_unique<fault::FaultInjector>(*network_, config_.faults);
        // Recovery probe: the node's neighbor state has re-warmed (it can
        // route again). Agent-specific because the tables differ.
        injector_->set_recovered_probe([this](net::NodeId id) {
            if (auto* a = agfw_agent(id)) return a->ant().size() > 0;
            if (auto* g = gpsr_agent(id)) return g->neighbor_count() > 0;
            return false;
        });
        const routing::GridMap grid(config_.area, config_.ls_cell_m);
        injector_->set_home_center([grid](net::NodeId id) {
            return grid.center_of(grid.home_grid(id));
        });
        injector_->arm();
    }

    if (config_.check_invariants) {
        analysis::InvariantChecker::Params ip;
        ip.expect_anonymous = config_.scheme != Scheme::kGpsrGreedy;
        ip.expect_anonymous_mac = config_.anonymous_mac;
        ip.expect_anonymous_ls =
            !config_.location_service ||
            *config_.location_service != routing::LocationService::Mode::kPlain;
        ip.ant_ttl = config_.agfw.ant.ttl;
        ip.hello_interval = config_.agfw.hello_interval;
        checker_ = std::make_unique<analysis::InvariantChecker>(*network_, ip);
        checker_->attach();
    }

    if (config_.attach_eavesdropper || config_.attach_observer) {
        // One audit tap feeds every adversary component. MAC address =
        // id + 1 (see net/node.cpp) — scoring-only knowledge.
        adversary::ObservationFeed::Params fp;
        fp.record = config_.attach_observer;
        feed_ = std::make_unique<adversary::ObservationFeed>(
            network_->channel(),
            [](net::MacAddr mac) { return static_cast<net::NodeId>(mac - 1); }, fp);
    }
    if (config_.attach_eavesdropper) {
        eavesdropper_ =
            std::make_unique<adversary::Eavesdropper>(*feed_, network_->size());
        // §3.3: an attacker holding everyone's certificates can precompute
        // every E_{K_B}(A,B) index and match observed ALS queries.
        if (config_.location_service &&
            *config_.location_service != routing::LocationService::Mode::kPlain) {
            std::unordered_map<std::string, std::pair<net::NodeId, net::NodeId>> dict;
            for (std::size_t a = 0; a < config_.num_nodes; ++a) {
                for (std::size_t b = 0; b < config_.num_nodes; ++b) {
                    if (a == b) continue;
                    dict.emplace(util::to_hex(engine_->als_index(a, b)),
                                 std::make_pair(static_cast<net::NodeId>(a),
                                                static_cast<net::NodeId>(b)));
                }
            }
            eavesdropper_->set_index_dictionary(std::move(dict));
        }
    }
}

void ScenarioRunner::build_nodes() {
    const bool agfw = config_.scheme != Scheme::kGpsrGreedy;

    mac::MacParams mac_params;
    mac_params.use_rtscts = !agfw;  // AGFW never unicasts; GPSR uses RTS/CTS
    mac_params.anonymous_source = agfw && config_.anonymous_mac;

    // Everyone is a valid certified user; rings draw from the whole network.
    std::vector<crypto::NodeIdNum> universe;
    universe.reserve(config_.num_nodes);
    for (std::size_t i = 0; i < config_.num_nodes; ++i) {
        engine_->register_node(static_cast<crypto::NodeIdNum>(i));
        universe.push_back(static_cast<crypto::NodeIdNum>(i));
    }

    mobility::RandomWaypoint::Params rwp;
    rwp.min_speed_mps = config_.min_speed_mps;
    rwp.max_speed_mps = config_.max_speed_mps;
    rwp.pause = SimTime::seconds(config_.pause_s);

    auto locate = [this](net::NodeId id) -> std::optional<util::Vec2> {
        return network_->true_position(id);
    };
    auto deliver = [this](net::NodeId at, const net::Packet& pkt) {
        on_delivery(at, pkt);
    };

    for (std::size_t i = 0; i < config_.num_nodes; ++i) {
        const util::Vec2 start = config_.area.random_point(network_->rng());
        auto mob = std::make_unique<mobility::RandomWaypoint>(config_.area, start, rwp,
                                                              network_->rng().fork());
        net::Node& node = network_->add_node(std::move(mob), mac_params);

        if (agfw) {
            core::AgfwAgent::Params ap = config_.agfw;
            ap.use_net_ack = config_.scheme == Scheme::kAgfwAck;
            ap.authenticated_hello = config_.authenticated_hello;
            ap.ring_k = config_.ring_k;
            ap.charge_crypto_costs = config_.charge_crypto_costs;
            auto agent = std::make_unique<core::AgfwAgent>(node, ap, *engine_, universe,
                                                           locate, deliver);
            agfw_agents_.push_back(agent.get());
            node.set_agent(std::move(agent));
        } else {
            auto agent = std::make_unique<routing::GpsrGreedyAgent>(node, config_.gpsr,
                                                                    locate, deliver);
            gpsr_agents_.push_back(agent.get());
            node.set_agent(std::move(agent));
        }
    }
}

void ScenarioRunner::build_traffic() {
    util::Rng traffic_rng(config_.seed ^ 0xC0FFEE123456789AULL);

    // Pick the sending nodes, then assign flows round-robin over them with
    // uniformly random distinct destinations (the paper: 30 CBR flows from
    // 20 sending nodes).
    std::vector<net::NodeId> senders;
    {
        std::vector<net::NodeId> all(config_.num_nodes);
        for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<net::NodeId>(i);
        for (std::size_t i = 0; i < std::min(config_.num_senders, all.size()); ++i) {
            const auto j = static_cast<std::size_t>(
                traffic_rng.uniform_int(static_cast<std::int64_t>(i),
                                        static_cast<std::int64_t>(all.size()) - 1));
            std::swap(all[i], all[j]);
            senders.push_back(all[i]);
        }
    }

    flows_.clear();
    for (std::size_t f = 0; f < config_.num_flows; ++f) {
        Flow flow;
        flow.id = static_cast<net::FlowId>(f);
        flow.src = senders[f % senders.size()];
        do {
            flow.dst = static_cast<net::NodeId>(
                traffic_rng.uniform_int(0, static_cast<std::int64_t>(config_.num_nodes) - 1));
        } while (flow.dst == flow.src);
        flow.start_s = config_.traffic_start_s + traffic_rng.uniform(0.0, 10.0);
        flows_.push_back(flow);
    }

    delivered_.assign(flows_.size(), {});
    sent_per_flow_.assign(flows_.size(), 0);

    // ALS contacts: a node's anticipated requesters are the flow sources
    // that will query it (§3.3: the updater must anticipate its senders).
    if (config_.location_service) {
        std::vector<std::vector<net::NodeId>> contacts(config_.num_nodes);
        for (const Flow& f : flows_) contacts[f.dst].push_back(f.src);

        const routing::GridMap grid(config_.area, config_.ls_cell_m);
        for (std::size_t i = 0; i < config_.num_nodes; ++i) {
            const auto id = static_cast<net::NodeId>(i);
            if (auto* a = agfw_agent(id)) {
                a->enable_location_service(*config_.location_service, grid,
                                           config_.ls_params, contacts[i]);
            } else if (auto* g = gpsr_agent(id)) {
                g->enable_location_service(grid, config_.ls_params);
            }
        }
    }

    // CBR generators: fixed inter-packet gap, self-rescheduling member
    // ticks. Each scheduled event captures only [this, f] (16 bytes, inline
    // in sim::Callback) — no heap-held closures, no self-ownership cycles.
    auto& sim = network_->sim();
    for (std::size_t f = 0; f < flows_.size(); ++f) {
        sim.at(SimTime::seconds(flows_[f].start_s), [this, f] { cbr_tick(f); });
    }
}

void ScenarioRunner::cbr_tick(std::size_t f) {
    auto& sim = network_->sim();
    Flow& flow = flows_[f];
    if (sim.now().to_seconds() > config_.traffic_stop_s) return;
    const SimTime gap = SimTime::seconds(1.0 / config_.cbr_pps);
    if (!network_->node(flow.src).up()) {
        // A crashed sender skips its slots (app offers no load while down)
        // but the generator keeps ticking for its recovery.
        sim.after(gap, [this, f] { cbr_tick(f); });
        return;
    }
    net::Bytes body(config_.cbr_payload_bytes, 0xAB);
    const std::uint32_t seq = flow.next_seq++;
    ++sent_per_flow_[f];
    network_->node(flow.src).agent().send_data(flow.dst, flow.id, seq, std::move(body));
    sim.after(gap, [this, f] { cbr_tick(f); });
}

void ScenarioRunner::on_delivery(net::NodeId at, const net::Packet& pkt) {
    if (pkt.flow >= flows_.size()) return;
    const Flow& flow = flows_[pkt.flow];
    if (at != flow.dst) return;  // delivered to the wrong node (shouldn't happen)
    auto& seen = delivered_[pkt.flow];
    if (pkt.seq >= seen.size()) seen.resize(pkt.seq + 1, false);
    if (seen[pkt.seq]) return;  // duplicate delivery
    seen[pkt.seq] = true;
    ++app_delivered_;
    latency_ms_.add((network_->sim().now() - pkt.created_at).to_millis());
    hops_.add(static_cast<double>(pkt.hops));
}

ScenarioResult ScenarioRunner::run() {
    setup();
    network_->start_agents();
    // geoanon-lint: allow(wallclock) -- host perf measurement; lands only in ScenarioResult::perf, which deterministic JSON omits (include_perf=false)
    const auto wall_start = std::chrono::steady_clock::now();
    network_->sim().run_until(SimTime::seconds(config_.sim_seconds));
    // geoanon-lint: allow(wallclock) -- host perf measurement; see above
    const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - wall_start;
    ScenarioResult r = aggregate();
    r.perf.wall_seconds = wall.count();
    r.perf.events_per_sec =
        wall.count() > 0.0 ? static_cast<double>(r.events_processed) / wall.count() : 0.0;
    return r;
}

ScenarioResult ScenarioRunner::aggregate() {
    // Every layer publishes into one registry; the legacy named fields of
    // ScenarioResult are then *derived* from the registry so the two views
    // can never drift apart.
    obs::MetricsRegistry reg;

    std::uint64_t app_sent = 0;
    for (std::uint32_t s : sent_per_flow_) app_sent += s;
    reg.add("app.sent", app_sent);
    reg.add("app.delivered", app_delivered_);
    reg.observe_all("app.latency_ms", latency_ms_);
    reg.observe_all("app.hops", hops_);

    network_->publish_metrics(reg);  // phy.* + mac.* across all nodes
    for (auto* a : agfw_agents_) a->publish_metrics(reg);   // agfw.* + ls.*
    for (auto* g : gpsr_agents_) g->publish_metrics(reg);   // gpsr.* + ls.*
    if (injector_) injector_->publish_metrics(reg);         // fault.*
    if (recorder_) {
        reg.add("trace.recorded", recorder_->recorded());
        reg.add("trace.evicted", recorder_->evicted());
    }

    ScenarioResult r;
    r.app_sent = reg.counter("app.sent");
    r.app_delivered = reg.counter("app.delivered");
    r.delivery_fraction =
        r.app_sent > 0 ? static_cast<double>(r.app_delivered) / static_cast<double>(r.app_sent)
                       : 0.0;
    r.avg_latency_ms = latency_ms_.mean();
    r.p50_latency_ms = latency_ms_.percentile(50);
    r.p95_latency_ms = latency_ms_.percentile(95);
    r.avg_hops = hops_.mean();

    r.mac_collisions = reg.counter("phy.frames_corrupted");
    r.mac_retries = reg.counter("mac.retries");
    r.mac_drop_retry = reg.counter("mac.unicast_drop_retry");
    r.rts_sent = reg.counter("mac.rts_sent");
    r.data_frames = reg.counter("mac.data_sent");
    r.transmissions = reg.counter("phy.transmissions");

    r.drop_no_route = reg.counter("agfw.drop_no_route") + reg.counter("gpsr.drop_no_route");
    r.drop_unreachable =
        reg.counter("agfw.drop_unreachable") + reg.counter("gpsr.drop_mac");
    r.drop_no_location =
        reg.counter("agfw.drop_no_location") + reg.counter("gpsr.drop_no_location");
    r.nl_retransmissions = reg.counter("agfw.retransmissions");
    r.last_attempts = reg.counter("agfw.last_attempts");
    r.trapdoor_attempts = reg.counter("agfw.trapdoor_attempts");
    r.trapdoor_opens = reg.counter("agfw.trapdoor_opens");
    r.acks_sent = reg.counter("agfw.acks_sent");
    r.implicit_acks = reg.counter("agfw.implicit_acks");
    r.hello_sent = reg.counter("agfw.hello_sent") + reg.counter("gpsr.hello_sent");
    r.hello_suppressed = reg.counter("agfw.hello_suppressed");
    r.pseudonym_rotations = reg.counter("agfw.pseudonym_rotations");
    r.cert_fetches = reg.counter("agfw.cert_fetches");
    r.control_bytes = reg.counter("agfw.control_bytes") + reg.counter("gpsr.control_bytes");
    r.data_bytes = reg.counter("agfw.data_bytes") + reg.counter("gpsr.data_bytes");
    r.perimeter_entries = reg.counter("agfw.perimeter_entries");
    r.perimeter_recoveries = reg.counter("agfw.perimeter_recoveries");
    r.perimeter_forwards = reg.counter("agfw.perimeter_forwards");

    r.ls.updates_sent = reg.counter("ls.updates_sent");
    r.ls.update_bytes = reg.counter("ls.update_bytes");
    r.ls.queries_sent = reg.counter("ls.queries_sent");
    r.ls.query_bytes = reg.counter("ls.query_bytes");
    r.ls.replies_sent = reg.counter("ls.replies_sent");
    r.ls.reply_bytes = reg.counter("ls.reply_bytes");
    r.ls.replications = reg.counter("ls.replications");
    r.ls.store_hits = reg.counter("ls.store_hits");
    r.ls.store_misses = reg.counter("ls.store_misses");
    r.ls.resolved_ok = reg.counter("ls.resolved_ok");
    r.ls.resolved_fail = reg.counter("ls.resolved_fail");
    r.ls.decrypt_attempts = reg.counter("ls.decrypt_attempts");
    r.ls.query_reissues = reg.counter("ls.query_reissues");
    r.ls.query_fallbacks = reg.counter("ls.query_fallbacks");
    r.ls.late_replies = reg.counter("ls.late_replies");
    r.ls.pending_wiped = reg.counter("ls.pending_wiped");
    r.ls.store_expired = reg.counter("ls.store.expired");
    r.ls.digests_sent = reg.counter("ls.replica.digests_sent");
    r.ls.digest_bytes = reg.counter("ls.replica.digest_bytes");
    r.ls.repairs_sent = reg.counter("ls.replica.repairs_sent");
    r.ls.handoffs = reg.counter("ls.replica.handoffs");
    r.ls.read_repairs = reg.counter("ls.replica.read_repairs");
    r.ls.duplicates_suppressed = reg.counter("ls.replica.duplicates_suppressed");
    r.ls.stale_reads = reg.counter("ls.failover.stale_reads");

    if (injector_) {
        const auto& fs = injector_->stats();
        r.resilience.faults_injected = reg.counter("fault.faults_injected");
        r.resilience.node_crashes = reg.counter("fault.node_crashes");
        r.resilience.node_recoveries = reg.counter("fault.node_recoveries");
        r.resilience.als_outages = reg.counter("fault.als_outages");
        r.resilience.server_flap_cycles = reg.counter("fault.server_flap_cycles");
        r.resilience.frames_lost_loss_burst = reg.counter("fault.frames_lost_loss_burst");
        r.resilience.frames_lost_jam = reg.counter("fault.frames_lost_jam");
        r.resilience.frames_lost_partition = reg.counter("fault.frames_lost_partition");
        r.resilience.frames_lost_node_down = reg.counter("phy.frames_missed_down");
        r.resilience.ls_pending_wiped = r.ls.pending_wiped;
        r.resilience.recoveries_measured = fs.recovery_s.count();
        r.resilience.recovery_latency_p50_s = fs.recovery_s.percentile(50);
        r.resilience.recovery_latency_p95_s = fs.recovery_s.percentile(95);
        r.resilience.recovery_outage_p95_s = fs.recovery_outage_s.percentile(95);
        r.resilience.recovery_flap_p95_s = fs.recovery_flap_s.percentile(95);
    }

    if (eavesdropper_) r.adversary = eavesdropper_->report(config_.sim_seconds);
    if (feed_ && config_.attach_observer) {
        adversary::AttackParams ap = config_.attack;
        // The attacker knows the mobility envelope unless pinned explicitly.
        if (ap.linker.max_speed_mps <= 0.0) ap.linker.max_speed_mps = config_.max_speed_mps;
        r.attack = adversary::run_attack(*feed_, ap, config_.sim_seconds);
        reg.add("adv.frames_observed", feed_->frames_seen());
        reg.add("adv.observations_dropped", feed_->observations_dropped());
        reg.add("adv.hello_observations", r.attack.hello_observations);
        reg.add("adv.tracklets", r.attack.tracklets);
        reg.add("adv.chains", r.attack.chains);
        reg.add("adv.links_made", r.attack.links_made);
        reg.add("adv.links_correct", r.attack.links_correct);
        reg.set_gauge("adv.link_precision", r.attack.link_precision);
        reg.set_gauge("adv.link_recall", r.attack.link_recall);
        reg.set_gauge("adv.tracking_success_rate", r.attack.tracking_success_rate);
        reg.set_gauge("adv.mean_anonymity_set", r.attack.mean_anonymity_set);
        reg.set_gauge("adv.mean_path_error_m", r.attack.mean_path_error_m);
    }
    if (checker_) r.invariants = checker_->counters();
    r.events_processed = network_->sim().events_processed();
    r.perf.peak_queue_depth = network_->sim().peak_pending();
    r.metrics = reg.snapshot();
    return r;
}

std::string ScenarioRunner::chrome_trace_json() const {
    if (!recorder_) return {};
    obs::TraceMeta meta;
    meta.scheme = scheme_name(config_.scheme);
    meta.seed = config_.seed;
    meta.num_nodes = config_.num_nodes;
    meta.sim_seconds = config_.sim_seconds;
    meta.evicted = recorder_->evicted();
    return obs::to_chrome_trace_json(recorder_->events(), meta);
}

}  // namespace geoanon::workload
