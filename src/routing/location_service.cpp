#include "routing/location_service.hpp"

#include "net/codec.hpp"

#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/bytes.hpp"

namespace geoanon::routing {

using util::Bytes;
using util::ByteReader;
using util::ByteWriter;

LocationService::LocationService(Mode mode, GridMap grid, Params params, Hooks hooks)
    : mode_(mode), grid_(grid), params_(params), hooks_(std::move(hooks)) {
    assert(hooks_.sim && hooks_.rng && hooks_.route && hooks_.local_broadcast &&
           hooks_.my_position);
    assert((mode_ == Mode::kPlain || hooks_.engine) &&
           "anonymous modes need a crypto engine");
}

void LocationService::charge(SimTime cost, std::function<void()> done) {
    if (params_.charge_crypto_costs && hooks_.charge) {
        hooks_.charge(cost, std::move(done));
    } else {
        done();
    }
}

Bytes LocationService::make_index(NodeId updater, NodeId requester) const {
    return hooks_.engine->als_index(updater, requester);
}

void LocationService::start() {
    const SimTime first =
        params_.first_update_delay +
        SimTime::nanos(hooks_.rng->uniform_int(0, params_.update_jitter.ns()));
    update_timer_.start(*hooks_.sim, params_.update_interval, first,
                        [this] { send_update(); });
}

void LocationService::reset() {
    plain_store_.clear();
    anon_store_.clear();
    stats_.pending_wiped += pending_.size();
    // geoanon-lint: allow(unordered-iter) -- cancel() only marks event ids; cancellation order cannot reach any output
    for (auto& [qid, q] : pending_) hooks_.sim->cancel(q.timeout);
    pending_.clear();
}

void LocationService::send_update() {
    if (hooks_.is_up && !hooks_.is_up()) return;
    const NodeId me = hooks_.my_id;
    const util::Vec2 my_loc = hooks_.my_position();
    const std::uint32_t home = grid_.home_grid(me);

    auto pkt = std::make_shared<Packet>();
    pkt->type = net::PacketType::kLocUpdate;
    pkt->grid = home;
    pkt->dst_loc = grid_.center_of(home);
    pkt->created_at = hooks_.sim->now();
    pkt->uid = hooks_.rng->next_u64();

    if (mode_ == Mode::kPlain) {
        // geoanon-lint: allow(privacy-taint) -- plain DLM baseline: cleartext subject identity is the §3.3 exposure ALS exists to remove; the anonymous mode routes through make_index/encrypt_for instead
        pkt->ls_subject = me;
        // geoanon-lint: allow(privacy-taint) -- plain DLM baseline, see ls_subject above
        pkt->ls_subject_loc = my_loc;
        pkt->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*pkt));
        ++stats_.updates_sent;
        stats_.update_bytes += pkt->wire_bytes;
        hooks_.route(pkt);
        return;
    }

    // Anonymous update: one (index, payload) row per anticipated requester
    // (§3.3 — the updater must anticipate its potential senders).
    if (contacts_.empty()) return;
    ByteWriter rows;
    rows.u32(static_cast<std::uint32_t>(contacts_.size()));
    std::size_t crypto_ops = 0;
    for (NodeId contact : contacts_) {
        ByteWriter plain;
        plain.u64(me);
        plain.f64(my_loc.x);
        plain.f64(my_loc.y);
        plain.u64(static_cast<std::uint64_t>(hooks_.sim->now().ns()));
        const Bytes payload =
            hooks_.engine->encrypt_for(contact, plain.data(), *hooks_.rng);
        rows.bytes(make_index(me, contact));
        rows.bytes(payload);
        ++crypto_ops;
    }
    pkt->ls_payload = rows.take();
    pkt->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*pkt));
    const SimTime cost =
        hooks_.engine->costs().pk_encrypt * static_cast<std::int64_t>(crypto_ops);
    charge(cost, [this, pkt] {
        ++stats_.updates_sent;
        stats_.update_bytes += pkt->wire_bytes;
        hooks_.route(pkt);
    });
}

void LocationService::resolve(NodeId target,
                              std::function<void(std::optional<util::Vec2>)> cb) {
    const std::uint64_t qid =
        (static_cast<std::uint64_t>(hooks_.my_id) << 32) | next_query_id_++;
    PendingQuery q;
    q.target = target;
    q.cb = std::move(cb);
    pending_.emplace(qid, std::move(q));
    send_query(qid);
}

void LocationService::send_query(std::uint64_t qid) {
    auto it = pending_.find(qid);
    if (it == pending_.end()) return;
    PendingQuery& q = it->second;
    if (q.attempts > 0 || q.fallback) ++stats_.query_reissues;
    ++q.attempts;

    auto pkt = std::make_shared<Packet>();
    pkt->type = net::PacketType::kLocRequest;
    pkt->grid = grid_.home_grid(q.target);
    pkt->dst_loc = grid_.center_of(pkt->grid);
    pkt->created_at = hooks_.sim->now();
    // geoanon-lint: allow(privacy-taint) -- LREQ must carry loc_B so the server can geo-route the LREP back (§3.3); the paper accepts this exposure for both DLM and ALS
    pkt->requester_loc = hooks_.my_position();
    pkt->ls_query_id = qid;
    pkt->uid = hooks_.rng->next_u64();

    const bool plain_format = (mode_ == Mode::kPlain) != q.fallback;  // XOR
    if (plain_format) {
        pkt->ls_subject = q.target;
        // Plain DLM exposes the requester; the heterogeneous fallback of an
        // anonymous requester names only the (public) target.
        // geoanon-lint: allow(privacy-taint) -- plain DLM baseline: requester identity on LREQ is the documented exposure; anonymous mode sends ls_index instead
        if (mode_ == Mode::kPlain) pkt->src_id = hooks_.my_id;
    } else if (mode_ == Mode::kAnonymous || q.fallback) {
        pkt->ls_index = make_index(q.target, hooks_.my_id);
    }  // index-free primary: no index, no identity at all
    pkt->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*pkt));

    ++stats_.queries_sent;
    stats_.query_bytes += pkt->wire_bytes;
    GEOANON_TRACE(*hooks_.sim, .type = obs::EventType::kLsQuery, .node = hooks_.my_id,
                  .uid = pkt->uid, .bytes = pkt->wire_bytes, .detail = qid);

    // Register the retry timeout BEFORE routing: route() can deliver the
    // request and its reply synchronously (requester in the home grid, or a
    // one-hop store hit), and on_reply() erases the pending entry — writing
    // q.timeout afterwards would dangle. on_reply cancels the timeout.
    q.timeout = hooks_.sim->after(params_.query_timeout, [this, qid] {
        auto it2 = pending_.find(qid);
        if (it2 == pending_.end()) return;
        if (it2->second.attempts <= params_.query_retries) {
            send_query(qid);
            return;
        }
        const bool can_fallback =
            mode_ != Mode::kPlain || hooks_.engine != nullptr;
        if (!it2->second.fallback && can_fallback) {
            // §3.3 heterogeneous: the target may be running the other
            // service flavor. One more round in the other row format.
            ++stats_.query_fallbacks;
            it2->second.fallback = true;
            it2->second.attempts = 0;
            send_query(qid);
            return;
        }
        auto cb = std::move(it2->second.cb);
        pending_.erase(it2);
        ++stats_.resolved_fail;
        cb(std::nullopt);
    });

    hooks_.route(pkt);
}

bool LocationService::near_home_center(const PacketPtr& pkt) const {
    const util::Vec2 center = grid_.center_of(pkt->grid);
    return util::distance(hooks_.my_position(), center) <= params_.server_radius_m;
}

bool LocationService::handle(const PacketPtr& pkt) {
    switch (pkt->type) {
        case net::PacketType::kLocUpdate:
            if (pkt->ls_assist || near_home_center(pkt)) {
                store_row(pkt);
                return true;
            }
            return false;
        case net::PacketType::kLocRequest:
            if (pkt->ls_assist) {
                answer_request(pkt);  // answer only if we have the row
                return true;
            }
            if (near_home_center(pkt)) {
                serve(pkt);
                return true;
            }
            return false;
        case net::PacketType::kLocReply: {
            const bool mine =
                pending_.contains(pkt->ls_query_id) &&
                (pkt->dst_id == hooks_.my_id || pkt->dst_id == net::kInvalidNode);
            if (mine) {
                on_reply(pkt);
                return true;
            }
            // Addressed to this node but the query is gone: it already timed
            // out (or was wiped by a crash) — the reply merely arrived late.
            if (pkt->dst_id == hooks_.my_id) {
                ++stats_.late_replies;
                return true;
            }
            // Plain replies addressed to someone else keep routing; assist
            // copies die here.
            return pkt->ls_assist;
        }
        case net::PacketType::kLocReplicate:
            store_row(pkt);
            return true;
        default:
            return false;
    }
}

bool LocationService::handle_stuck(const PacketPtr& pkt) {
    switch (pkt->type) {
        case net::PacketType::kLocUpdate:
            store_row(pkt);  // best-effort server of last resort
            return true;
        case net::PacketType::kLocRequest:
            serve(pkt);
            return true;
        case net::PacketType::kLocReply: {
            if (pkt->ls_assist) return true;  // already a last-resort copy
            // Local broadcast: the requester may be in radio range.
            auto copy = net::clone_packet(*pkt);
            copy->ls_assist = true;
            copy->uid = hooks_.rng->next_u64();
            hooks_.local_broadcast(std::move(copy));
            return true;
        }
        default:
            return false;
    }
}

void LocationService::store_row(const PacketPtr& pkt) {
    const SimTime expires = hooks_.sim->now() + params_.entry_ttl;
    bool fresh = false;

    // Dispatch on the ROW's format, not this server's own mode: the paper's
    // heterogeneous update scheme (§3.3) lets privacy-indifferent nodes use
    // plain rows while others stay anonymous, and any server stores both.
    if (pkt->ls_subject != net::kInvalidNode) {
        auto& row = plain_store_[pkt->ls_subject];
        const SimTime ts = pkt->created_at;
        fresh = row.expires == SimTime{} || row.ts < ts;
        if (fresh) row = PlainRow{pkt->ls_subject_loc, ts, expires};
    } else {
        ByteReader r(pkt->ls_payload);
        auto count = r.u32();
        if (!count) return;
        for (std::uint32_t i = 0; i < *count; ++i) {
            auto index = r.bytes();
            auto payload = r.bytes();
            if (!index || !payload) return;
            const std::string key = util::to_hex(*index);
            auto it = anon_store_.find(key);
            if (it == anon_store_.end() || it->second.expires < expires) {
                anon_store_[key] = AnonRow{std::move(*payload), pkt->grid, expires};
                fresh = true;
            }
        }
    }

    // Replicate fresh rows once to in-range neighbors (kLocUpdate arrivals
    // only; replication copies never cascade).
    if (fresh && params_.replicate && pkt->type == net::PacketType::kLocUpdate &&
        !pkt->ls_assist) {
        auto copy = net::clone_packet(*pkt);
        copy->type = net::PacketType::kLocReplicate;
        copy->ls_assist = true;
        copy->uid = hooks_.rng->next_u64();
        hooks_.local_broadcast(std::move(copy));
        ++stats_.replications;
    }
}

void LocationService::answer_request(const PacketPtr& pkt) {
    auto reply = std::make_shared<Packet>();
    reply->type = net::PacketType::kLocReply;
    reply->grid = pkt->grid;
    reply->dst_loc = pkt->requester_loc;
    reply->created_at = hooks_.sim->now();
    reply->ls_query_id = pkt->ls_query_id;
    reply->uid = hooks_.rng->next_u64();

    // Serve according to the REQUEST's format (heterogeneous §3.3).
    if (pkt->ls_subject != net::kInvalidNode) {
        auto it = plain_store_.find(pkt->ls_subject);
        if (it == plain_store_.end() || it->second.expires < hooks_.sim->now()) {
            ++stats_.store_misses;
            return;
        }
        ++stats_.store_hits;
        reply->dst_id = pkt->src_id;
        reply->ls_subject = pkt->ls_subject;
        reply->ls_subject_loc = it->second.loc;
        reply->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*reply));
    } else if (!pkt->ls_index.empty()) {
        const std::string key = util::to_hex(pkt->ls_index);
        auto it = anon_store_.find(key);
        if (it == anon_store_.end() || it->second.expires < hooks_.sim->now()) {
            ++stats_.store_misses;
            return;
        }
        ++stats_.store_hits;
        ByteWriter rows;
        rows.u32(1);
        rows.bytes(it->second.payload);
        reply->ls_payload = rows.take();
        reply->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*reply));
    } else {  // index-free: return every live row of this grid
        ByteWriter rows;
        std::uint32_t count = 0;
        ByteWriter body;
        for (const auto& [key, row] : anon_store_) {
            if (row.grid != pkt->grid || row.expires < hooks_.sim->now()) continue;
            body.bytes(row.payload);
            ++count;
        }
        if (count == 0) {
            ++stats_.store_misses;
            return;
        }
        ++stats_.store_hits;
        rows.u32(count);
        rows.raw(body.data());
        reply->ls_payload = rows.take();
        reply->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*reply));
    }

    ++stats_.replies_sent;
    stats_.reply_bytes += reply->wire_bytes;
    GEOANON_TRACE(*hooks_.sim, .type = obs::EventType::kLsReply, .node = hooks_.my_id,
                  .uid = reply->uid, .bytes = reply->wire_bytes,
                  .detail = reply->ls_query_id);
    hooks_.route(reply);
}

void LocationService::serve(const PacketPtr& pkt) {
    // Indexed/plain lookup, with a one-hop neighbor assist on miss: another
    // nearby in-grid node may hold the row (mobility moves servers around).
    const bool plain_req = pkt->ls_subject != net::kInvalidNode;
    const bool indexed_req = !pkt->ls_index.empty();
    const bool have =
        (plain_req && plain_store_.contains(pkt->ls_subject)) ||
        (indexed_req && anon_store_.contains(util::to_hex(pkt->ls_index))) ||
        (!plain_req && !indexed_req && !anon_store_.empty());
    if (have) {
        answer_request(pkt);
        return;
    }
    if (!pkt->ls_assist) {
        auto copy = net::clone_packet(*pkt);
        copy->ls_assist = true;
        copy->uid = hooks_.rng->next_u64();
        hooks_.local_broadcast(std::move(copy));
    }
    ++stats_.store_misses;
}

void LocationService::on_reply(const PacketPtr& pkt) {
    auto it = pending_.find(pkt->ls_query_id);
    if (it == pending_.end()) return;

    // Plain-subject replies (from our own plain mode, or the heterogeneous
    // fallback) carry the location directly.
    if (pkt->ls_subject != net::kInvalidNode) {
        if (pkt->ls_subject != it->second.target) return;  // stray reply
        auto cb = std::move(it->second.cb);
        hooks_.sim->cancel(it->second.timeout);
        pending_.erase(it);
        ++stats_.resolved_ok;
        cb(pkt->ls_subject_loc);
        return;
    }
    if (!hooks_.engine) return;  // cannot decrypt anonymous rows

    // Anonymous: trial-decrypt rows; match target identity inside.
    const NodeId target = it->second.target;
    ByteReader r(pkt->ls_payload);
    auto count = r.u32();
    if (!count) return;
    std::optional<util::Vec2> found;
    std::size_t attempts = 0;
    for (std::uint32_t i = 0; i < *count && !found; ++i) {
        auto payload = r.bytes();
        if (!payload) break;
        ++attempts;
        auto plain = hooks_.engine->try_decrypt(hooks_.my_id, *payload);
        if (!plain) continue;
        ByteReader pr(*plain);
        auto subject = pr.u64();
        auto x = pr.f64();
        auto y = pr.f64();
        if (subject && x && y && *subject == target) found = util::Vec2{*x, *y};
    }
    stats_.decrypt_attempts += attempts;

    const SimTime cost =
        hooks_.engine->costs().pk_decrypt * static_cast<std::int64_t>(attempts);
    charge(cost, [this, qid = pkt->ls_query_id, found] {
        auto it2 = pending_.find(qid);
        if (it2 == pending_.end()) return;
        if (!found) return;  // wrong rows; keep waiting for another reply
        auto cb = std::move(it2->second.cb);
        hooks_.sim->cancel(it2->second.timeout);
        pending_.erase(it2);
        ++stats_.resolved_ok;
        cb(found);
    });
}

void LocationService::publish_metrics(obs::MetricsRegistry& reg) const {
    reg.add("ls.updates_sent", stats_.updates_sent);
    reg.add("ls.update_bytes", stats_.update_bytes);
    reg.add("ls.queries_sent", stats_.queries_sent);
    reg.add("ls.query_bytes", stats_.query_bytes);
    reg.add("ls.replies_sent", stats_.replies_sent);
    reg.add("ls.reply_bytes", stats_.reply_bytes);
    reg.add("ls.replications", stats_.replications);
    reg.add("ls.store_hits", stats_.store_hits);
    reg.add("ls.store_misses", stats_.store_misses);
    reg.add("ls.resolved_ok", stats_.resolved_ok);
    reg.add("ls.resolved_fail", stats_.resolved_fail);
    reg.add("ls.decrypt_attempts", stats_.decrypt_attempts);
    reg.add("ls.query_reissues", stats_.query_reissues);
    reg.add("ls.query_fallbacks", stats_.query_fallbacks);
    reg.add("ls.late_replies", stats_.late_replies);
    reg.add("ls.pending_wiped", stats_.pending_wiped);
}

}  // namespace geoanon::routing
