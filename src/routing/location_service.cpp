#include "routing/location_service.hpp"

#include "net/codec.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/bytes.hpp"

namespace geoanon::routing {

using util::Bytes;
using util::ByteReader;
using util::ByteWriter;

namespace {

// FNV-1a over store keys for anti-entropy digests. Anonymous keys are hex of
// the encrypted index E_{K_B}(A,B); plain keys are tagged subject ids (the
// subject is already cleartext on DLM updates, so hashing leaks nothing new).
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t anon_key_hash(const std::string& hex_key) {
    return fnv1a(kFnvOffset, reinterpret_cast<const std::uint8_t*>(hex_key.data()),
                 hex_key.size());
}

std::uint64_t plain_key_hash(net::NodeId subject) {
    const std::uint8_t tag = 0x01;  // domain separation from anonymous keys
    std::uint8_t b[4];
    b[0] = static_cast<std::uint8_t>(subject);
    b[1] = static_cast<std::uint8_t>(subject >> 8);
    b[2] = static_cast<std::uint8_t>(subject >> 16);
    b[3] = static_cast<std::uint8_t>(subject >> 24);
    return fnv1a(fnv1a(kFnvOffset, &tag, 1), b, 4);
}

}  // namespace

LocationService::LocationService(Mode mode, GridMap grid, Params params, Hooks hooks)
    : mode_(mode), grid_(grid), params_(params), hooks_(std::move(hooks)) {
    assert(hooks_.sim && hooks_.rng && hooks_.route && hooks_.local_broadcast &&
           hooks_.my_position);
    assert((mode_ == Mode::kPlain || hooks_.engine) &&
           "anonymous modes need a crypto engine");
}

void LocationService::charge(SimTime cost, std::function<void()> done) {
    if (params_.charge_crypto_costs && hooks_.charge) {
        hooks_.charge(cost, std::move(done));
    } else {
        done();
    }
}

Bytes LocationService::make_index(NodeId updater, NodeId requester) const {
    return hooks_.engine->als_index(updater, requester);
}

void LocationService::start() {
    const SimTime first =
        params_.first_update_delay +
        SimTime::nanos(hooks_.rng->uniform_int(0, params_.update_jitter.ns()));
    update_timer_.start(*hooks_.sim, params_.update_interval, first,
                        [this] { send_update(); });
    if (params_.replicate && params_.anti_entropy &&
        params_.digest_interval > SimTime::zero()) {
        // Jittered first tick: co-located replicas must not gossip in phase.
        const SimTime dfirst =
            params_.digest_interval +
            SimTime::nanos(hooks_.rng->uniform_int(0, params_.digest_interval.ns() / 4));
        digest_timer_.start(*hooks_.sim, params_.digest_interval, dfirst,
                            [this] { digest_tick(); });
    }
    if (params_.sweep_interval > SimTime::zero()) {
        sweep_timer_.start(*hooks_.sim, params_.sweep_interval, params_.sweep_interval,
                           [this] { sweep_expired(); });
    }
}

void LocationService::reset() {
    plain_store_.clear();
    anon_store_.clear();
    serving_.clear();
    last_digest_.clear();
    resolved_qids_.clear();
    stats_.pending_wiped += pending_.size();
    // geoanon-lint: allow(unordered-iter) -- cancel() only marks event ids; cancellation order cannot reach any output
    for (auto& [qid, q] : pending_) hooks_.sim->cancel(q.timeout);
    pending_.clear();
}

void LocationService::send_update() {
    if (hooks_.is_up && !hooks_.is_up()) return;
    const NodeId me = hooks_.my_id;
    const util::Vec2 my_loc = hooks_.my_position();
    const std::uint32_t home = grid_.home_grid(me);

    auto pkt = net::make_packet();
    pkt->type = net::PacketType::kLocUpdate;
    pkt->grid = home;
    pkt->dst_loc = grid_.center_of(home);
    pkt->created_at = hooks_.sim->now();
    pkt->uid = hooks_.rng->next_u64();

    if (mode_ == Mode::kPlain) {
        // geoanon-lint: allow(privacy-taint) -- plain DLM baseline: cleartext subject identity is the §3.3 exposure ALS exists to remove; the anonymous mode routes through make_index/encrypt_for instead
        pkt->ls_subject = me;
        // geoanon-lint: allow(privacy-taint) -- plain DLM baseline, see ls_subject above
        pkt->ls_subject_loc = my_loc;
        pkt->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*pkt));
        ++stats_.updates_sent;
        stats_.update_bytes += pkt->wire_bytes;
        hooks_.route(pkt);
        return;
    }

    // Anonymous update: one (index, payload) row per anticipated requester
    // (§3.3 — the updater must anticipate its potential senders).
    if (contacts_.empty()) return;
    ByteWriter rows;
    rows.u32(static_cast<std::uint32_t>(contacts_.size()));
    std::size_t crypto_ops = 0;
    for (NodeId contact : contacts_) {
        ByteWriter plain;
        plain.u64(me);
        plain.f64(my_loc.x);
        plain.f64(my_loc.y);
        plain.u64(static_cast<std::uint64_t>(hooks_.sim->now().ns()));
        const Bytes payload =
            hooks_.engine->encrypt_for(contact, plain.data(), *hooks_.rng);
        rows.bytes(make_index(me, contact));
        rows.bytes(payload);
        ++crypto_ops;
    }
    pkt->ls_payload = rows.take();
    pkt->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*pkt));
    const SimTime cost =
        hooks_.engine->costs().pk_encrypt * static_cast<std::int64_t>(crypto_ops);
    charge(cost, [this, pkt] {
        ++stats_.updates_sent;
        stats_.update_bytes += pkt->wire_bytes;
        hooks_.route(pkt);
    });
}

void LocationService::resolve(NodeId target,
                              std::function<void(std::optional<util::Vec2>)> cb) {
    const std::uint64_t qid =
        (static_cast<std::uint64_t>(hooks_.my_id) << 32) | next_query_id_++;
    PendingQuery q;
    q.target = target;
    q.cb = std::move(cb);
    q.started = hooks_.sim->now();
    pending_.emplace(qid, std::move(q));
    send_query(qid);
}

std::optional<LocationService::QueryFormat>
LocationService::stage_format(std::uint8_t stage) const {
    // Degradation ladder (DESIGN.md §14). Every rung past the first needs
    // the previous one to have timed out; the plain-subject rung of an
    // anonymous requester still never names the requester, and the indexed
    // rung of a plain requester needs key material.
    switch (mode_) {
        case Mode::kAnonymous:
            if (stage == 0) return QueryFormat::kIndexed;
            if (stage == 1) return QueryFormat::kIndexFree;
            if (stage == 2) return QueryFormat::kPlainSubject;
            return std::nullopt;
        case Mode::kAnonymousIndexFree:
            if (stage == 0) return QueryFormat::kIndexFree;
            if (stage == 1) return QueryFormat::kPlainSubject;
            return std::nullopt;
        case Mode::kPlain:
            if (stage == 0) return QueryFormat::kPlainSubject;
            if (stage == 1 && hooks_.engine) return QueryFormat::kIndexed;
            return std::nullopt;
    }
    return std::nullopt;
}

SimTime LocationService::retry_delay(int attempt) {
    const util::RetryPolicy::Params p{.initial = params_.query_timeout,
                                      .multiplier = 2.0,
                                      .cap = params_.query_backoff_cap,
                                      .jitter = params_.query_jitter};
    return util::RetryPolicy::delay(p, attempt, *hooks_.rng);
}

void LocationService::send_query(std::uint64_t qid) {
    auto it = pending_.find(qid);
    if (it == pending_.end()) return;
    PendingQuery& q = it->second;
    if (q.attempts > 0 || q.stage > 0) ++stats_.query_reissues;
    ++q.attempts;

    auto pkt = net::make_packet();
    pkt->type = net::PacketType::kLocRequest;
    pkt->grid = grid_.home_grid(q.target);
    pkt->dst_loc = grid_.center_of(pkt->grid);
    pkt->created_at = hooks_.sim->now();
    // geoanon-lint: allow(privacy-taint) -- LREQ must carry loc_B so the server can geo-route the LREP back (§3.3); the paper accepts this exposure for both DLM and ALS
    pkt->requester_loc = hooks_.my_position();
    pkt->ls_query_id = qid;
    pkt->uid = hooks_.rng->next_u64();

    const QueryFormat fmt = stage_format(q.stage).value_or(QueryFormat::kIndexFree);
    switch (fmt) {
        case QueryFormat::kPlainSubject:
            pkt->ls_subject = q.target;
            // Plain DLM exposes the requester; the ladder's plain rung for
            // an anonymous requester names only the (public) target.
            // geoanon-lint: allow(privacy-taint) -- plain DLM baseline: requester identity on LREQ is the documented exposure; anonymous mode sends ls_index instead
            if (mode_ == Mode::kPlain) pkt->src_id = hooks_.my_id;
            break;
        case QueryFormat::kIndexed:
            pkt->ls_index = make_index(q.target, hooks_.my_id);
            break;
        case QueryFormat::kIndexFree:
            break;  // no index, no identity at all
    }
    pkt->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*pkt));

    ++stats_.queries_sent;
    stats_.query_bytes += pkt->wire_bytes;
    GEOANON_TRACE(*hooks_.sim, .type = obs::EventType::kLsQuery, .node = hooks_.my_id,
                  .uid = pkt->uid, .bytes = pkt->wire_bytes, .detail = qid);

    // Register the retry timeout BEFORE routing: route() can deliver the
    // request and its reply synchronously (requester in the home grid, or a
    // one-hop store hit), and on_reply() erases the pending entry — writing
    // q.timeout afterwards would dangle. on_reply cancels the timeout.
    q.timeout = hooks_.sim->after(retry_delay(q.attempts), [this, qid] {
        auto it2 = pending_.find(qid);
        if (it2 == pending_.end()) return;
        if (it2->second.attempts <= params_.query_retries) {
            send_query(qid);
            return;
        }
        if (stage_format(static_cast<std::uint8_t>(it2->second.stage + 1))) {
            // Next rung of the degradation ladder, with a fresh retry budget.
            ++stats_.query_fallbacks;
            ++it2->second.stage;
            it2->second.attempts = 0;
            send_query(qid);
            return;
        }
        auto cb = std::move(it2->second.cb);
        pending_.erase(it2);
        ++stats_.resolved_fail;
        cb(std::nullopt);
    });

    hooks_.route(pkt);
}

bool LocationService::near_home_center(const PacketPtr& pkt) const {
    const util::Vec2 center = grid_.center_of(pkt->grid);
    return util::distance(hooks_.my_position(), center) <= params_.server_radius_m;
}

bool LocationService::handle(const PacketPtr& pkt) {
    switch (pkt->type) {
        case net::PacketType::kLocUpdate:
            if (pkt->ls_assist || near_home_center(pkt)) {
                store_row(pkt);
                return true;
            }
            return false;
        case net::PacketType::kLocRequest:
            if (pkt->ls_assist) {
                answer_request(pkt);  // answer only if we have the row
                return true;
            }
            if (near_home_center(pkt)) {
                serve(pkt);
                return true;
            }
            return false;
        case net::PacketType::kLocReply: {
            const bool addressed =
                pkt->dst_id == hooks_.my_id || pkt->dst_id == net::kInvalidNode;
            if (addressed && resolved_qids_.contains(pkt->ls_query_id)) {
                // Quorum resolve: any replica may answer, the first reply
                // wins, and the rest are suppressed here by query id.
                ++stats_.duplicates_suppressed;
                return true;
            }
            if (addressed && pending_.contains(pkt->ls_query_id)) {
                on_reply(pkt);
                return true;
            }
            // Addressed to this node but the query is gone: it already timed
            // out (or was wiped by a crash) — the reply merely arrived late.
            if (pkt->dst_id == hooks_.my_id) {
                ++stats_.late_replies;
                return true;
            }
            // Plain replies addressed to someone else keep routing; assist
            // copies die here.
            return pkt->ls_assist;
        }
        case net::PacketType::kLocReplicate:
            store_row(pkt);
            return true;
        case net::PacketType::kLocDigest:
            // One-hop replica gossip: consumed here, never geo-routed.
            if (params_.replicate && params_.anti_entropy && near_home_center(pkt))
                on_digest(pkt);
            return true;
        default:
            return false;
    }
}

bool LocationService::handle_stuck(const PacketPtr& pkt) {
    switch (pkt->type) {
        case net::PacketType::kLocUpdate:
            store_row(pkt);  // best-effort server of last resort
            return true;
        case net::PacketType::kLocRequest:
            serve(pkt);
            return true;
        case net::PacketType::kLocReply: {
            if (pkt->ls_assist) return true;  // already a last-resort copy
            // Local broadcast: the requester may be in radio range.
            auto copy = net::clone_packet(*pkt);
            copy->ls_assist = true;
            copy->uid = hooks_.rng->next_u64();
            hooks_.local_broadcast(std::move(copy));
            return true;
        }
        case net::PacketType::kLocDigest:
            return true;  // gossip is one-hop; a stuck copy just dies
        default:
            return false;
    }
}

void LocationService::store_row(const PacketPtr& pkt) {
    // Anonymous rows inherit the sender's remaining TTL (created_at is the
    // original store/update time on repair and handoff pushes), clamped so a
    // peer can never hand us a row that outlives a fresh local store. This
    // keeps a dead updater's row from being kept alive forever by gossip.
    const SimTime now = hooks_.sim->now();
    const SimTime expires =
        std::min(pkt->created_at + params_.entry_ttl, now + params_.entry_ttl);
    bool fresh = false;

    // Dispatch on the ROW's format, not this server's own mode: the paper's
    // heterogeneous update scheme (§3.3) lets privacy-indifferent nodes use
    // plain rows while others stay anonymous, and any server stores both.
    if (pkt->ls_subject != net::kInvalidNode) {
        auto& row = plain_store_[pkt->ls_subject];
        const SimTime ts = pkt->created_at;
        fresh = row.expires == SimTime{} || row.ts < ts;
        if (fresh) row = PlainRow{pkt->ls_subject_loc, ts, expires};
    } else {
        ByteReader r(pkt->ls_payload);
        auto count = r.u32();
        if (!count) return;
        for (std::uint32_t i = 0; i < *count; ++i) {
            auto index = r.bytes();
            auto payload = r.bytes();
            if (!index || !payload) return;
            const std::string key = util::to_hex(*index);
            auto it = anon_store_.find(key);
            if (it == anon_store_.end() || it->second.expires < expires) {
                anon_store_[key] = AnonRow{std::move(*payload), pkt->grid, expires};
                fresh = true;
            }
        }
    }

    // Replicate fresh rows once to in-range neighbors (kLocUpdate arrivals
    // only; replication copies never cascade).
    if (fresh && params_.replicate && pkt->type == net::PacketType::kLocUpdate &&
        !pkt->ls_assist) {
        auto copy = net::clone_packet(*pkt);
        copy->type = net::PacketType::kLocReplicate;
        copy->ls_assist = true;
        copy->uid = hooks_.rng->next_u64();
        hooks_.local_broadcast(std::move(copy));
        ++stats_.replications;
    }
}

void LocationService::answer_request(const PacketPtr& pkt) {
    const SimTime now = hooks_.sim->now();
    // A row is servable while live, or — last rung of the degradation
    // ladder — while expired by no more than stale_grace (a possibly stale
    // location beats a failed resolve during an outage).
    const auto servable = [&](SimTime expires, bool& stale) {
        if (expires >= now) return true;
        stale = params_.stale_grace > SimTime::zero() &&
                expires + params_.stale_grace >= now;
        return stale;
    };

    auto reply = net::make_packet();
    reply->type = net::PacketType::kLocReply;
    reply->grid = pkt->grid;
    reply->dst_loc = pkt->requester_loc;
    reply->created_at = now;
    reply->ls_query_id = pkt->ls_query_id;
    reply->uid = hooks_.rng->next_u64();

    // Read repair (anti-entropy): when a neighbor asked for help after its
    // own miss, re-replicate what we serve so the asking replica recovers
    // the row without waiting for the next digest round.
    std::vector<std::string> repair_keys;
    std::optional<NodeId> repair_subject;

    // Serve according to the REQUEST's format (heterogeneous §3.3).
    if (pkt->ls_subject != net::kInvalidNode) {
        auto it = plain_store_.find(pkt->ls_subject);
        bool stale = false;
        if (it == plain_store_.end() || !servable(it->second.expires, stale)) {
            ++stats_.store_misses;
            return;
        }
        ++stats_.store_hits;
        if (stale) ++stats_.stale_reads;
        reply->dst_id = pkt->src_id;
        reply->ls_subject = pkt->ls_subject;
        reply->ls_subject_loc = it->second.loc;
        reply->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*reply));
        repair_subject = pkt->ls_subject;
    } else if (!pkt->ls_index.empty()) {
        const std::string key = util::to_hex(pkt->ls_index);
        auto it = anon_store_.find(key);
        bool stale = false;
        if (it == anon_store_.end() || !servable(it->second.expires, stale)) {
            ++stats_.store_misses;
            return;
        }
        ++stats_.store_hits;
        if (stale) ++stats_.stale_reads;
        ByteWriter rows;
        rows.u32(1);
        rows.bytes(it->second.payload);
        reply->ls_payload = rows.take();
        reply->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*reply));
        repair_keys.push_back(key);
    } else {  // index-free: return every servable row of this grid
        ByteWriter rows;
        std::uint32_t count = 0;
        ByteWriter body;
        std::uint64_t stale_rows = 0;
        for (const auto& [key, row] : anon_store_) {
            if (row.grid != pkt->grid) continue;
            bool stale = false;
            if (!servable(row.expires, stale)) continue;
            if (stale) ++stale_rows;
            body.bytes(row.payload);
            repair_keys.push_back(key);
            ++count;
        }
        if (count == 0) {
            ++stats_.store_misses;
            return;
        }
        ++stats_.store_hits;
        stats_.stale_reads += stale_rows;
        rows.u32(count);
        rows.raw(body.data());
        reply->ls_payload = rows.take();
        reply->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*reply));
    }

    ++stats_.replies_sent;
    stats_.reply_bytes += reply->wire_bytes;
    GEOANON_TRACE(*hooks_.sim, .type = obs::EventType::kLsReply, .node = hooks_.my_id,
                  .uid = reply->uid, .bytes = reply->wire_bytes,
                  .detail = reply->ls_query_id);
    hooks_.route(reply);

    if (pkt->ls_assist && params_.replicate && params_.anti_entropy) {
        if (repair_subject) {
            push_plain_row(*repair_subject, plain_store_.at(*repair_subject));
            ++stats_.read_repairs;
        } else if (!repair_keys.empty()) {
            push_anon_rows(pkt->grid, repair_keys);
            stats_.read_repairs += repair_keys.size();
        }
        if (repair_subject || !repair_keys.empty()) {
            GEOANON_TRACE(*hooks_.sim, .type = obs::EventType::kLsReadRepair,
                          .node = hooks_.my_id, .uid = reply->uid,
                          .detail = reply->ls_query_id);
        }
    }
}

void LocationService::serve(const PacketPtr& pkt) {
    // Indexed/plain lookup, with a one-hop neighbor assist on miss: another
    // nearby in-grid node may hold the row (mobility moves servers around).
    const bool plain_req = pkt->ls_subject != net::kInvalidNode;
    const bool indexed_req = !pkt->ls_index.empty();
    const bool have =
        (plain_req && plain_store_.contains(pkt->ls_subject)) ||
        (indexed_req && anon_store_.contains(util::to_hex(pkt->ls_index))) ||
        (!plain_req && !indexed_req && !anon_store_.empty());
    if (have) {
        answer_request(pkt);
        return;
    }
    if (!pkt->ls_assist) {
        auto copy = net::clone_packet(*pkt);
        copy->ls_assist = true;
        copy->uid = hooks_.rng->next_u64();
        hooks_.local_broadcast(std::move(copy));
    }
    ++stats_.store_misses;
}

void LocationService::complete_ok(std::uint64_t qid, util::Vec2 loc) {
    auto it = pending_.find(qid);
    if (it == pending_.end()) return;
    if (it->second.attempts > 1 || it->second.stage > 0) {
        // The primary attempt did not answer: this resolve paid a failover
        // (reissue or ladder rung) — record how long the detour took.
        stats_.failover_latency_ms.add(
            (hooks_.sim->now() - it->second.started).to_millis());
    }
    resolved_qids_[qid] = hooks_.sim->now();
    auto cb = std::move(it->second.cb);
    hooks_.sim->cancel(it->second.timeout);
    pending_.erase(it);
    ++stats_.resolved_ok;
    cb(loc);
}

void LocationService::on_reply(const PacketPtr& pkt) {
    auto it = pending_.find(pkt->ls_query_id);
    if (it == pending_.end()) return;

    // Plain-subject replies (from our own plain mode, or the heterogeneous
    // fallback) carry the location directly.
    if (pkt->ls_subject != net::kInvalidNode) {
        if (pkt->ls_subject != it->second.target) return;  // stray reply
        complete_ok(pkt->ls_query_id, pkt->ls_subject_loc);
        return;
    }
    if (!hooks_.engine) return;  // cannot decrypt anonymous rows

    // Anonymous: trial-decrypt rows; match target identity inside.
    const NodeId target = it->second.target;
    ByteReader r(pkt->ls_payload);
    auto count = r.u32();
    if (!count) return;
    std::optional<util::Vec2> found;
    std::size_t attempts = 0;
    for (std::uint32_t i = 0; i < *count && !found; ++i) {
        auto payload = r.bytes();
        if (!payload) break;
        ++attempts;
        auto plain = hooks_.engine->try_decrypt(hooks_.my_id, *payload);
        if (!plain) continue;
        ByteReader pr(*plain);
        auto subject = pr.u64();
        auto x = pr.f64();
        auto y = pr.f64();
        if (subject && x && y && *subject == target) found = util::Vec2{*x, *y};
    }
    stats_.decrypt_attempts += attempts;

    const SimTime cost =
        hooks_.engine->costs().pk_decrypt * static_cast<std::int64_t>(attempts);
    charge(cost, [this, qid = pkt->ls_query_id, found] {
        if (!found) return;  // wrong rows; keep waiting for another reply
        complete_ok(qid, *found);
    });
}

void LocationService::push_anon_rows(std::uint32_t grid,
                                     const std::vector<std::string>& keys) {
    auto pkt = net::make_packet();
    pkt->type = net::PacketType::kLocReplicate;
    pkt->grid = grid;
    pkt->dst_loc = grid_.center_of(grid);
    pkt->ls_assist = true;
    pkt->uid = hooks_.rng->next_u64();

    ByteWriter rows;
    std::uint32_t count = 0;
    ByteWriter body;
    // Receivers adopt created_at + entry_ttl as the row expiry, so carry the
    // most conservative remaining TTL of the batch — gossip must never
    // extend a row's life beyond what the updater authorized.
    SimTime min_expires = SimTime::max();
    for (const std::string& key : keys) {
        auto it = anon_store_.find(key);
        if (it == anon_store_.end()) continue;
        auto index = util::from_hex(key);
        if (!index) continue;
        body.bytes(*index);
        body.bytes(it->second.payload);
        min_expires = std::min(min_expires, it->second.expires);
        ++count;
    }
    if (count == 0) return;
    pkt->created_at = min_expires - params_.entry_ttl;
    rows.u32(count);
    rows.raw(body.data());
    pkt->ls_payload = rows.take();
    pkt->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*pkt));
    hooks_.local_broadcast(std::move(pkt));
}

void LocationService::push_plain_row(NodeId subject, const PlainRow& row) {
    auto pkt = net::make_packet();
    pkt->type = net::PacketType::kLocReplicate;
    pkt->grid = grid_.home_grid(subject);
    pkt->dst_loc = grid_.center_of(pkt->grid);
    // The original update timestamp rides along so receivers keep the DLM
    // freshness ordering (a repair push must never beat a newer update).
    pkt->created_at = row.ts;
    pkt->ls_assist = true;
    // geoanon-lint: allow(privacy-taint) -- plain DLM baseline: the subject is already cleartext on the row being re-replicated
    pkt->ls_subject = subject;
    // geoanon-lint: allow(privacy-taint) -- plain DLM baseline, see ls_subject above
    pkt->ls_subject_loc = row.loc;
    pkt->uid = hooks_.rng->next_u64();
    pkt->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*pkt));
    hooks_.local_broadcast(std::move(pkt));
}

// Builds and broadcasts this node's anti-entropy digest for `grid`: one
// (key hash, expiry) row per stored entry of that grid. Runs every
// digest_interval on every serving replica, so it must not thrash the heap.
// geoanon: hot
void LocationService::send_digest(std::uint32_t grid) {
    // geoanon-lint: allow(hot-alloc) -- packets are immutable shared-ownership objects by design; a packet arena is ROADMAP item 1, not a per-call fix
    auto pkt = net::make_packet();
    pkt->type = net::PacketType::kLocDigest;
    pkt->grid = grid;
    pkt->dst_loc = grid_.center_of(grid);
    pkt->created_at = hooks_.sim->now();
    pkt->ls_assist = true;
    pkt->uid = hooks_.rng->next_u64();
    pkt->ls_digest.reserve(anon_store_.size() + plain_store_.size());
    for (const auto& [key, row] : anon_store_) {
        if (row.grid != grid) continue;
        pkt->ls_digest.push_back(
            {anon_key_hash(key), static_cast<std::uint64_t>(row.expires.ns())});
    }
    // geoanon-lint: allow(unordered-iter) -- digest rows are an unordered SET compared hash-by-hash at the receiver; wire order cannot reach any decision or output
    for (const auto& [subject, row] : plain_store_) {
        if (grid_.home_grid(subject) != grid) continue;
        pkt->ls_digest.push_back(
            {plain_key_hash(subject), static_cast<std::uint64_t>(row.expires.ns())});
    }
    pkt->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*pkt));
    ++stats_.digests_sent;
    stats_.digest_bytes += pkt->wire_bytes;
    last_digest_[grid] = hooks_.sim->now();
    hooks_.local_broadcast(std::move(pkt));
}

void LocationService::handoff_grid(std::uint32_t grid) {
    // Hinted handoff: this replica drifted out of server_radius_m, so its
    // rows would otherwise be lost to the grid. Push them to whoever is
    // still inside before stepping down (the rows themselves stay until
    // they expire; we just stop serving/gossiping them).
    std::vector<std::string> keys;
    for (const auto& [key, row] : anon_store_)
        if (row.grid == grid) keys.push_back(key);
    if (!keys.empty()) push_anon_rows(grid, keys);
    std::vector<NodeId> subjects;
    // geoanon-lint: allow(unordered-iter) -- collection only; sorted below before anything is emitted
    for (const auto& [subject, row] : plain_store_)
        if (grid_.home_grid(subject) == grid) subjects.push_back(subject);
    std::sort(subjects.begin(), subjects.end());
    for (NodeId subject : subjects) push_plain_row(subject, plain_store_.at(subject));
    if (keys.empty() && subjects.empty()) return;
    ++stats_.handoffs;
    GEOANON_TRACE(*hooks_.sim, .type = obs::EventType::kLsHandoff,
                  .node = hooks_.my_id, .detail = grid);
}

void LocationService::digest_tick() {
    if (hooks_.is_up && !hooks_.is_up()) return;
    const util::Vec2 me = hooks_.my_position();

    // Grids this node holds rows for (plain rows live in their subject's
    // home grid).
    std::set<std::uint32_t> grids;
    for (const auto& [key, row] : anon_store_) grids.insert(row.grid);
    // geoanon-lint: allow(unordered-iter) -- inserts into a std::set; iteration order cannot escape
    for (const auto& [subject, row] : plain_store_)
        grids.insert(grid_.home_grid(subject));

    for (const std::uint32_t g : grids) {
        const bool in_radius =
            util::distance(me, grid_.center_of(g)) <= params_.server_radius_m;
        if (in_radius) {
            serving_.insert(g);
            send_digest(g);
        } else if (serving_.erase(g) > 0) {
            handoff_grid(g);
        }
    }
    // Grids we served but no longer hold rows for need no handoff.
    std::erase_if(serving_, [&](std::uint32_t g) { return !grids.contains(g); });
}

void LocationService::on_digest(const PacketPtr& pkt) {
    const SimTime now = hooks_.sim->now();
    const std::uint32_t g = pkt->grid;
    // Peer rows beat ours only past this margin; without it two replicas
    // whose expiries differ by a transit delay would push at each other
    // every round.
    const SimTime margin = SimTime::seconds(1.0);

    std::unordered_map<std::uint64_t, std::uint64_t> peer;
    peer.reserve(pkt->ls_digest.size());
    for (const auto& row : pkt->ls_digest) peer.emplace(row.key_hash, row.expires_ns);

    // Push rows the sender lacks or holds staler than ours.
    const auto peer_wants = [&](std::uint64_t hash, SimTime expires) {
        if (expires < now) return false;  // nothing to gain from a dead row
        auto it = peer.find(hash);
        return it == peer.end() ||
               SimTime::nanos(static_cast<std::int64_t>(it->second)) + margin < expires;
    };
    std::vector<std::string> keys;
    std::uint64_t known_hashes_here = 0;
    for (const auto& [key, row] : anon_store_) {
        if (row.grid != g) continue;
        if (peer.contains(anon_key_hash(key))) ++known_hashes_here;
        if (peer_wants(anon_key_hash(key), row.expires)) keys.push_back(key);
    }
    std::vector<NodeId> subjects;
    // geoanon-lint: allow(unordered-iter) -- collection only; sorted below before anything is emitted
    for (const auto& [subject, row] : plain_store_) {
        if (grid_.home_grid(subject) != g) continue;
        if (peer.contains(plain_key_hash(subject))) ++known_hashes_here;
        if (peer_wants(plain_key_hash(subject), row.expires)) subjects.push_back(subject);
    }
    std::sort(subjects.begin(), subjects.end());
    if (!keys.empty()) {
        push_anon_rows(g, keys);
        stats_.repairs_sent += keys.size();
    }
    for (NodeId subject : subjects) push_plain_row(subject, plain_store_.at(subject));
    stats_.repairs_sent += subjects.size();

    // The sender advertises rows we have never seen: answer with our own
    // digest (possibly empty — e.g. right after a restart) so the sender
    // pushes them our way. Rate-limited per grid to half a digest interval.
    if (known_hashes_here < peer.size()) {
        auto last = last_digest_.find(g);
        const SimTime gap = SimTime::nanos(params_.digest_interval.ns() / 2);
        if (last == last_digest_.end() || last->second + gap <= now) send_digest(g);
    }
}

void LocationService::sweep_expired() {
    if (hooks_.is_up && !hooks_.is_up()) return;
    const SimTime now = hooks_.sim->now();
    // Keep stale-grace rows servable: only drop past expiry + grace.
    const SimTime horizon = now - params_.stale_grace;
    const std::size_t before = plain_store_.size() + anon_store_.size();
    std::erase_if(plain_store_,
                  [&](const auto& kv) { return kv.second.expires < horizon; });
    std::erase_if(anon_store_,
                  [&](const auto& kv) { return kv.second.expires < horizon; });
    stats_.store_expired += before - (plain_store_.size() + anon_store_.size());
    // Closed-query records only need to outlive straggling quorum replies.
    std::erase_if(resolved_qids_,
                  [&](const auto& kv) { return kv.second + params_.entry_ttl < now; });
}

void LocationService::publish_metrics(obs::MetricsRegistry& reg) const {
    reg.add("ls.updates_sent", stats_.updates_sent);
    reg.add("ls.update_bytes", stats_.update_bytes);
    reg.add("ls.queries_sent", stats_.queries_sent);
    reg.add("ls.query_bytes", stats_.query_bytes);
    reg.add("ls.replies_sent", stats_.replies_sent);
    reg.add("ls.reply_bytes", stats_.reply_bytes);
    reg.add("ls.replications", stats_.replications);
    reg.add("ls.store_hits", stats_.store_hits);
    reg.add("ls.store_misses", stats_.store_misses);
    reg.add("ls.resolved_ok", stats_.resolved_ok);
    reg.add("ls.resolved_fail", stats_.resolved_fail);
    reg.add("ls.decrypt_attempts", stats_.decrypt_attempts);
    reg.add("ls.query_reissues", stats_.query_reissues);
    reg.add("ls.query_fallbacks", stats_.query_fallbacks);
    reg.add("ls.late_replies", stats_.late_replies);
    reg.add("ls.pending_wiped", stats_.pending_wiped);
    reg.add("ls.store.expired", stats_.store_expired);
    reg.add("ls.replica.digests_sent", stats_.digests_sent);
    reg.add("ls.replica.digest_bytes", stats_.digest_bytes);
    reg.add("ls.replica.repairs_sent", stats_.repairs_sent);
    reg.add("ls.replica.handoffs", stats_.handoffs);
    reg.add("ls.replica.read_repairs", stats_.read_repairs);
    reg.add("ls.replica.duplicates_suppressed", stats_.duplicates_suppressed);
    reg.add("ls.failover.stale_reads", stats_.stale_reads);
    reg.observe_all("ls.failover.latency_ms", stats_.failover_latency_ms);
}

}  // namespace geoanon::routing
