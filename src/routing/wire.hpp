#pragma once

#include <cstdint>

namespace geoanon::routing {

/// Reference network-layer header sizes (bytes), matching the canonical wire
/// format in net/codec.{hpp,cpp} exactly — tests/test_codec.cpp asserts the
/// correspondence. Locations are two 8-byte coordinates; identities 4 bytes;
/// pseudonyms 6 bytes (the size of a MAC address, §5); timestamps 8 bytes;
/// AGFW/LS packets carry a 1-byte flags field.

// --- GPSR baseline ---------------------------------------------------------
inline constexpr std::uint32_t kGpsrHelloBytes = 1 + 4 + 16 + 8;        // type,id,loc,ts
inline constexpr std::uint32_t kGpsrDataHeaderBytes = 1 + 4 + 4 + 16;   // type,src,dst,loc_d

// --- AGFW (§3.2) -------------------------------------------------------------
// type,flags,n,loc,ts (+8 velocity hint, + ring signature + cert refs)
inline constexpr std::uint32_t kAgfwHelloBaseBytes = 1 + 1 + 6 + 16 + 8;
// type,flags,loc_d,n,trapdoor-length (+ trapdoor + body)
inline constexpr std::uint32_t kAgfwDataHeaderBytes = 1 + 1 + 16 + 6 + 2;
/// ACK with a single uid: type + u16 count + one uid. Each additional
/// aggregated uid adds 8 bytes.
inline constexpr std::uint32_t kAgfwAckBytes = 1 + 2 + 8;
/// Per-certificate reference when certificates are sent by id (§4).
inline constexpr std::uint32_t kCertReferenceBytes = 4;
/// Extra bytes while a packet traverses a face in perimeter mode:
/// entry point + previous-hop position + perimeter hop count.
inline constexpr std::uint32_t kPerimeterHeaderBytes = 16 + 16 + 2;

// --- Location service (DLM / ALS, §3.3) --------------------------------------
// type,flags,n,grid,loc
inline constexpr std::uint32_t kLocHeaderBytes = 1 + 1 + 6 + 4 + 16;
inline constexpr std::uint32_t kPlainUpdateBytes = kLocHeaderBytes + 4 + 16 + 8;
inline constexpr std::uint32_t kPlainRequestBytes = kLocHeaderBytes + 16 + 8 + 4 + 4;
inline constexpr std::uint32_t kPlainReplyBytes = kLocHeaderBytes + 8 + 4 + 4 + 16;
/// Anti-entropy digest: LS header + u16 row count; each row is a key hash
/// plus an expiry timestamp.
inline constexpr std::uint32_t kLocDigestHeaderBytes = kLocHeaderBytes + 2;
inline constexpr std::uint32_t kLocDigestRowBytes = 8 + 8;

}  // namespace geoanon::routing
