#include "routing/gpsr.hpp"

#include "net/codec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace geoanon::routing {

GpsrGreedyAgent::GpsrGreedyAgent(net::Node& node, Params params, LocateFn locate,
                                 DeliverFn deliver)
    : node_(node),
      params_(params),
      locate_(std::move(locate)),
      deliver_(std::move(deliver)) {}

void GpsrGreedyAgent::enable_location_service(GridMap grid,
                                              LocationService::Params ls_params) {
    LocationService::Hooks hooks;
    hooks.route = [this](std::shared_ptr<Packet> pkt) { route_packet(std::move(pkt)); };
    hooks.local_broadcast = [this](std::shared_ptr<Packet> pkt) {
        stats_.control_bytes += pkt->wire_bytes;
        node_.mac().send_broadcast(std::move(pkt));
    };
    hooks.my_position = [this] { return node_.position(); };
    hooks.my_id = node_.id();
    hooks.sim = &node_.sim();
    hooks.rng = &node_.rng();
    hooks.charge = [this](util::SimTime cost, std::function<void()> done) {
        node_.sim().after(cost, std::move(done));
    };
    hooks.is_up = [this] { return node_.up(); };
    ls_ = std::make_unique<LocationService>(LocationService::Mode::kPlain, grid,
                                            ls_params, std::move(hooks));
}

void GpsrGreedyAgent::start() {
    const util::SimTime phase = util::SimTime::nanos(
        node_.rng().uniform_int(0, params_.hello_interval.ns()));
    hello_timer_.start(node_.sim(), params_.hello_interval, phase,
                       [this] { send_hello(); });
    if (ls_) ls_->start();
}

void GpsrGreedyAgent::on_node_restart() {
    neighbors_.clear();
    reroute_counts_.clear();
    loc_cache_.clear();
    if (ls_) ls_->reset();
}

void GpsrGreedyAgent::send_hello() {
    if (!node_.up()) return;  // crashed: the hello timer keeps ticking idly
    purge_neighbors();
    auto pkt = net::make_packet();
    pkt->type = net::PacketType::kGpsrHello;
    // geoanon-lint: allow(privacy-taint) -- GPSR is the non-anonymous baseline (§2): exposing id+location on hellos is exactly the behavior the paper's scheme is measured against
    pkt->src_id = node_.id();
    // geoanon-lint: allow(privacy-taint) -- GPSR baseline, see src_id above
    pkt->hello_loc = node_.position();
    pkt->hello_ts = node_.sim().now();
    pkt->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*pkt));
    ++stats_.hello_sent;
    stats_.control_bytes += pkt->wire_bytes;
    GEOANON_TRACE(node_.sim(), .type = obs::EventType::kHelloSent, .node = node_.id(),
                  .bytes = pkt->wire_bytes, .detail = node_.id());
    node_.mac().send_broadcast(std::move(pkt));
}

void GpsrGreedyAgent::purge_neighbors() {
    const util::SimTime now = node_.sim().now();
    std::erase_if(neighbors_, [&](const auto& kv) {
        return now - kv.second.ts > params_.neighbor_ttl;
    });
}

const GpsrGreedyAgent::Neighbor* GpsrGreedyAgent::best_neighbor(
    const Vec2& from, const Vec2& dst_loc) const {
    const double my_dist = util::distance(from, dst_loc);
    const Neighbor* best = nullptr;
    NodeId best_id = net::kInvalidNode;
    double best_dist = my_dist;
    const util::SimTime now = node_.sim().now();
    // Ties on distance are broken by the lowest node id so the winner does
    // not depend on hash-map iteration order.
    // geoanon-lint: allow(unordered-iter) -- selection below is order-independent (strict min with id tie-break)
    for (const auto& [id, n] : neighbors_) {
        if (now - n.ts > params_.neighbor_ttl) continue;
        const double d = util::distance(n.loc, dst_loc);
        if (d < best_dist || (d == best_dist && best != nullptr && id < best_id)) {
            best_dist = d;
            best = &n;
            best_id = id;
        }
    }
    return best;
}

void GpsrGreedyAgent::send_data(NodeId dst, net::FlowId flow, std::uint32_t seq,
                                net::Bytes body) {
    if (!node_.up()) return;  // a crashed node originates nothing
    ++stats_.app_sent;
    auto send_with_loc = [this, dst, flow, seq,
                          body = std::move(body)](std::optional<Vec2> loc) mutable {
        if (!loc) {
            ++stats_.drop_no_location;
            GEOANON_TRACE(node_.sim(), .type = obs::EventType::kNetDrop,
                          .cause = obs::DropCause::kNoLocation, .node = node_.id(),
                          .flow = flow, .seq = seq, .detail = dst);
            return;
        }
        auto pkt = net::make_packet();
        pkt->type = net::PacketType::kGpsrData;
        pkt->flow = flow;
        pkt->seq = seq;
        pkt->created_at = node_.sim().now();
        pkt->uid = (static_cast<std::uint64_t>(node_.id()) << 32) | next_uid_++;
        pkt->src_id = node_.id();
        pkt->dst_id = dst;
        pkt->dst_loc = *loc;
        pkt->body = std::move(body);
        pkt->wire_bytes = static_cast<std::uint32_t>(net::codec::encoded_size(*pkt));
        GEOANON_TRACE(node_.sim(), .type = obs::EventType::kAppSend, .node = node_.id(),
                      .uid = pkt->uid, .flow = pkt->flow, .seq = pkt->seq,
                      .bytes = pkt->wire_bytes);
        route_packet(std::move(pkt));
    };

    if (ls_) {
        if (auto it = loc_cache_.find(dst);
            it != loc_cache_.end() &&
            node_.sim().now() - it->second.second <= params_.loc_cache_ttl) {
            send_with_loc(it->second.first);
            return;
        }
        ls_->resolve(dst, [this, dst, cb = std::move(send_with_loc)](
                              std::optional<Vec2> loc) mutable {
            if (loc) loc_cache_[dst] = {*loc, node_.sim().now()};
            cb(loc);
        });
    } else {
        send_with_loc(locate_(dst));
    }
}

void GpsrGreedyAgent::route_packet(std::shared_ptr<Packet> pkt) {
    PacketPtr p(std::move(pkt));
    // The originator may itself be the responsible server — or the requester
    // of a reply it is about to geo-route (it never hears its own frames).
    switch (p->type) {
        case net::PacketType::kLocUpdate:
        case net::PacketType::kLocRequest:
        case net::PacketType::kLocReply:
        case net::PacketType::kLocReplicate:
        case net::PacketType::kLocDigest:
            if (ls_ && ls_->handle(p)) return;
            break;
        default:
            break;
    }
    forward(p);
}

void GpsrGreedyAgent::deliver_local(const PacketPtr& pkt) {
    ++stats_.delivered;
    GEOANON_TRACE(node_.sim(), .type = obs::EventType::kNetDeliver, .node = node_.id(),
                  .uid = pkt->uid, .flow = pkt->flow, .seq = pkt->seq,
                  .bytes = pkt->wire_bytes);
    if (deliver_) deliver_(node_.id(), *pkt);
}

void GpsrGreedyAgent::forward(const PacketPtr& pkt) {
    if (!node_.up()) return;  // e.g. an LS retry timer firing while down
    if (pkt->type == net::PacketType::kGpsrData && pkt->dst_id == node_.id()) {
        deliver_local(pkt);
        return;
    }

    const Vec2 me = node_.position();
    const Neighbor* best = best_neighbor(me, pkt->dst_loc);
    if (best == nullptr) {
        // Greedy local maximum: LS packets get a last-resort serve; data is
        // dropped (no perimeter recovery in this evaluation).
        if (ls_ && ls_->handle_stuck(pkt)) return;
        if (pkt->type == net::PacketType::kGpsrData) {
            ++stats_.drop_no_route;
            GEOANON_TRACE(node_.sim(), .type = obs::EventType::kNetDrop,
                          .cause = obs::DropCause::kNoRoute, .node = node_.id(),
                          .uid = pkt->uid, .flow = pkt->flow, .seq = pkt->seq);
        }
        return;
    }

    auto copy = net::clone_packet(*pkt);
    copy->hops = static_cast<std::uint16_t>(pkt->hops + 1);
    ++stats_.forwarded;
    stats_.data_bytes += copy->wire_bytes;
    GEOANON_TRACE(node_.sim(), .type = obs::EventType::kNetForward, .node = node_.id(),
                  .uid = copy->uid, .flow = copy->flow, .seq = copy->seq,
                  .bytes = copy->wire_bytes, .detail = best->mac);
    node_.mac().send_unicast(std::move(copy), best->mac);
}

void GpsrGreedyAgent::on_packet(const PacketPtr& pkt, MacAddr src) {
    if (!node_.up()) return;  // radio gates this too; belt and braces
    switch (pkt->type) {
        case net::PacketType::kGpsrHello:
            neighbors_[pkt->src_id] = Neighbor{pkt->hello_loc, src, node_.sim().now()};
            break;
        case net::PacketType::kGpsrData:
            if (pkt->dst_id == node_.id())
                deliver_local(pkt);
            else
                forward(pkt);
            break;
        case net::PacketType::kLocUpdate:
        case net::PacketType::kLocRequest:
        case net::PacketType::kLocReply:
        case net::PacketType::kLocReplicate:
        case net::PacketType::kLocDigest:
            if (ls_ && ls_->handle(pkt)) return;
            if (!pkt->ls_assist) forward(pkt);
            break;
        default:
            break;  // AGFW traffic in a mixed network: not ours
    }
}

void GpsrGreedyAgent::on_mac_tx_done(const PacketPtr& pkt, MacAddr dst, bool success) {
    if (dst == net::kBroadcastAddr) return;
    if (success) {
        reroute_counts_.erase(pkt->uid);
        return;
    }
    // The MAC exhausted its retries: assume the neighbor is gone (GPSR's
    // beacon-timeout shortcut) and try the next-best one.
    // geoanon-lint: allow(unordered-iter) -- MAC addresses are unique per node, so at most one entry matches regardless of walk order
    for (auto it = neighbors_.begin(); it != neighbors_.end(); ++it) {
        if (it->second.mac == dst) {
            neighbors_.erase(it);
            break;
        }
    }
    const int attempts = ++reroute_counts_[pkt->uid];
    if (attempts <= params_.reroute_limit) {
        forward(pkt);
    } else {
        reroute_counts_.erase(pkt->uid);
        if (pkt->type == net::PacketType::kGpsrData) {
            ++stats_.drop_mac;
            GEOANON_TRACE(node_.sim(), .type = obs::EventType::kNetDrop,
                          .cause = obs::DropCause::kMacRetry, .node = node_.id(),
                          .uid = pkt->uid, .flow = pkt->flow, .seq = pkt->seq);
        }
    }
}

void GpsrGreedyAgent::publish_metrics(obs::MetricsRegistry& reg) const {
    reg.add("gpsr.app_sent", stats_.app_sent);
    reg.add("gpsr.delivered", stats_.delivered);
    reg.add("gpsr.forwarded", stats_.forwarded);
    reg.add("gpsr.drop_no_route", stats_.drop_no_route);
    reg.add("gpsr.drop_mac", stats_.drop_mac);
    reg.add("gpsr.drop_no_location", stats_.drop_no_location);
    reg.add("gpsr.hello_sent", stats_.hello_sent);
    reg.add("gpsr.control_bytes", stats_.control_bytes);
    reg.add("gpsr.data_bytes", stats_.data_bytes);
    if (ls_) ls_->publish_metrics(reg);
}

}  // namespace geoanon::routing
