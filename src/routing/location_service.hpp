#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/engine.hpp"
#include "net/packet.hpp"
#include "net/types.hpp"
#include "routing/grid.hpp"
#include "routing/wire.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace geoanon::obs {
class MetricsRegistry;
}

namespace geoanon::routing {

using net::NodeId;
using net::Packet;
using net::PacketPtr;
using util::SimTime;

/// Grid-based location service component hosted by a routing agent.
///
/// Modes:
///  - kPlain          — DLM (Xue et al.): updates carry (id, loc) cleartext.
///  - kAnonymous      — the paper's ALS (§3.3): updates carry the row index
///                      E_{K_B}(A,B) and payload E_{K_B}(A, loc_A, ts); one
///                      row per anticipated requester; queries carry the
///                      index, never the requester identity.
///  - kAnonymousIndexFree — §3.3 alternative: the query carries no index and
///                      the server returns every row of the home grid; the
///                      requester trial-decrypts. Stronger requester
///                      anonymity, higher byte and CPU cost.
///
/// Server role: a node acts as a location server for grid G while it is
/// inside G and close to G's center (the update/replication machinery keeps
/// nearby in-grid nodes in sync, so server handover under mobility works).
class LocationService {
  public:
    enum class Mode { kPlain, kAnonymous, kAnonymousIndexFree };

    struct Params {
        SimTime update_interval{SimTime::seconds(10.0)};
        SimTime update_jitter{SimTime::seconds(2.0)};
        /// First update goes out after this delay (neighbor tables warm up).
        SimTime first_update_delay{SimTime::seconds(3.0)};
        SimTime entry_ttl{SimTime::seconds(40.0)};
        SimTime query_timeout{SimTime::seconds(2.0)};
        int query_retries{1};
        /// Replicate stored rows to in-range in-grid neighbors on update.
        bool replicate{true};
        /// Radius around the grid center within which a node serves.
        double server_radius_m{200.0};
        /// Charge modeled crypto CPU costs on ALS operations.
        bool charge_crypto_costs{true};
    };

    /// Agent-provided capabilities; keeps this component agent-agnostic.
    struct Hooks {
        /// Geo-route `pkt` toward pkt->dst_loc through the host agent.
        std::function<void(std::shared_ptr<Packet>)> route;
        /// One-hop local broadcast (replication; anonymous replies).
        std::function<void(std::shared_ptr<Packet>)> local_broadcast;
        // geoanon: source(gps)
        std::function<util::Vec2()> my_position;
        // geoanon: source(node-id)
        NodeId my_id{net::kInvalidNode};
        sim::Simulator* sim{nullptr};
        util::Rng* rng{nullptr};
        /// Required for the anonymous modes.
        crypto::CryptoEngine* engine{nullptr};
        /// Charge a modeled CPU delay then run `done` (may run immediately).
        std::function<void(SimTime, std::function<void()>)> charge;
        /// Host-node liveness; unset means always up. Periodic work (update
        /// beacons) is suppressed while the node is down.
        std::function<bool()> is_up;
    };

    struct Stats {
        std::uint64_t updates_sent{0};
        std::uint64_t update_bytes{0};
        std::uint64_t queries_sent{0};
        std::uint64_t query_bytes{0};
        std::uint64_t replies_sent{0};
        std::uint64_t reply_bytes{0};
        std::uint64_t replications{0};
        std::uint64_t store_hits{0};
        std::uint64_t store_misses{0};
        std::uint64_t resolved_ok{0};
        std::uint64_t resolved_fail{0};
        std::uint64_t decrypt_attempts{0};  ///< index-free trial decryptions
        /// Timeout-path diagnostics: these separate "the reply got lost in
        /// the network" (reissues with replies_sent > 0 somewhere) from "the
        /// server grid is dark" (reissues with no reply traffic at all).
        std::uint64_t query_reissues{0};   ///< timeout-driven re-sends
        std::uint64_t query_fallbacks{0};  ///< heterogeneous-format rounds
        std::uint64_t late_replies{0};     ///< reply for an already-closed query
        std::uint64_t pending_wiped{0};    ///< queries dropped by reset()
    };

    LocationService(Mode mode, GridMap grid, Params params, Hooks hooks);

    /// Anticipated requesters (§3.3: the updater must identify its possible
    /// senders). Ignored in kPlain mode.
    void set_contacts(std::vector<NodeId> contacts) { contacts_ = std::move(contacts); }

    /// Begin periodic location updates.
    void start();

    /// Node reboot: wipe volatile state — stored rows and in-flight queries
    /// (their callbacks are dropped; the senders' own timeouts handle it).
    /// Cumulative stats survive.
    void reset();

    /// Resolve the location of `target`, asynchronously. The callback fires
    /// exactly once with the location or nullopt (timeout after retries).
    void resolve(NodeId target, std::function<void(std::optional<util::Vec2>)> cb);

    /// Offer an incoming location-service packet. Returns true when consumed
    /// (served, stored, or matched to a pending query); false lets the agent
    /// keep geo-routing it.
    bool handle(const PacketPtr& pkt);

    /// The agent could not route this LS packet any closer; serve it here if
    /// at all possible. Returns true when consumed.
    bool handle_stuck(const PacketPtr& pkt);

    const Stats& stats() const { return stats_; }
    /// Fold this service's counters into the run metrics (ls.*).
    void publish_metrics(obs::MetricsRegistry& reg) const;
    Mode mode() const { return mode_; }
    /// Number of rows currently stored at this node (server role).
    std::size_t store_size() const { return plain_store_.size() + anon_store_.size(); }

  private:
    struct PlainRow {
        util::Vec2 loc;
        SimTime ts;
        SimTime expires;
    };
    struct AnonRow {
        util::Bytes payload;
        std::uint32_t grid;
        SimTime expires;
    };
    struct PendingQuery {
        NodeId target;
        std::function<void(std::optional<util::Vec2>)> cb;
        int attempts{0};
        /// Heterogeneous fallback (§3.3): after the primary-format query
        /// exhausts its retries, retry once in the other row format — the
        /// target may run the other service flavor. Anonymous requesters
        /// fall back to plain-subject queries (still without sending their
        /// own identity); plain requesters with key material fall back to
        /// the indexed anonymous query.
        bool fallback{false};
        sim::EventId timeout{sim::kInvalidEvent};
    };

    void send_update();
    void send_query(std::uint64_t query_id);
    void serve(const PacketPtr& pkt);
    void store_row(const PacketPtr& pkt);
    void answer_request(const PacketPtr& pkt);
    void on_reply(const PacketPtr& pkt);
    bool near_home_center(const PacketPtr& pkt) const;
    void charge(SimTime cost, std::function<void()> done);
    util::Bytes make_index(NodeId updater, NodeId requester) const;

    Mode mode_;
    GridMap grid_;
    Params params_;
    Hooks hooks_;
    std::vector<NodeId> contacts_;
    sim::PeriodicTimer update_timer_;

    // Server-side row stores.
    std::map<std::string, AnonRow> anon_store_;   ///< key: hex(index)
    std::unordered_map<NodeId, PlainRow> plain_store_;

    std::unordered_map<std::uint64_t, PendingQuery> pending_;
    std::uint64_t next_query_id_{1};
    Stats stats_;
};

}  // namespace geoanon::routing
