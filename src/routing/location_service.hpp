#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/engine.hpp"
#include "net/packet.hpp"
#include "net/types.hpp"
#include "routing/grid.hpp"
#include "routing/wire.hpp"
#include "sim/simulator.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace geoanon::obs {
class MetricsRegistry;
}

namespace geoanon::routing {

using net::NodeId;
using net::Packet;
using net::PacketPtr;
using util::SimTime;

/// Grid-based location service component hosted by a routing agent.
///
/// Modes:
///  - kPlain          — DLM (Xue et al.): updates carry (id, loc) cleartext.
///  - kAnonymous      — the paper's ALS (§3.3): updates carry the row index
///                      E_{K_B}(A,B) and payload E_{K_B}(A, loc_A, ts); one
///                      row per anticipated requester; queries carry the
///                      index, never the requester identity.
///  - kAnonymousIndexFree — §3.3 alternative: the query carries no index and
///                      the server returns every row of the home grid; the
///                      requester trial-decrypts. Stronger requester
///                      anonymity, higher byte and CPU cost.
///
/// Server role: a node acts as a location server for grid G while it is
/// inside G and close to G's center (the update/replication machinery keeps
/// nearby in-grid nodes in sync, so server handover under mobility works).
class LocationService {
  public:
    enum class Mode { kPlain, kAnonymous, kAnonymousIndexFree };

    struct Params {
        SimTime update_interval{SimTime::seconds(10.0)};
        SimTime update_jitter{SimTime::seconds(2.0)};
        /// First update goes out after this delay (neighbor tables warm up).
        SimTime first_update_delay{SimTime::seconds(3.0)};
        SimTime entry_ttl{SimTime::seconds(40.0)};
        SimTime query_timeout{SimTime::seconds(2.0)};
        int query_retries{1};
        /// Reissue backoff (util::RetryPolicy): the first retry waits
        /// query_timeout, doubling per attempt up to this cap, with
        /// `query_jitter` fractional jitter drawn from the host RNG so
        /// requesters hitting the same dark grid do not retry in lockstep.
        SimTime query_backoff_cap{SimTime::seconds(8.0)};
        double query_jitter{0.25};
        /// Replicate stored rows to in-range in-grid neighbors on update.
        bool replicate{true};
        /// Anti-entropy among in-grid replicas: periodic digest exchange,
        /// push repair of rows a peer lacks, hinted handoff when a server
        /// leaves the radius, and read repair on assisted serves. Only
        /// meaningful with `replicate` on.
        bool anti_entropy{true};
        SimTime digest_interval{SimTime::seconds(5.0)};
        /// Last rung of the degradation ladder: serve a row that expired no
        /// longer than this ago when no live row exists (the requester gets
        /// a possibly stale location instead of a failure). Zero disables.
        SimTime stale_grace{};
        /// Periodic sweep dropping expired rows and closed-query records so
        /// long-running servers do not grow unbounded. Zero disables.
        SimTime sweep_interval{SimTime::seconds(10.0)};
        /// Radius around the grid center within which a node serves.
        double server_radius_m{200.0};
        /// Charge modeled crypto CPU costs on ALS operations.
        bool charge_crypto_costs{true};
    };

    /// Agent-provided capabilities; keeps this component agent-agnostic.
    struct Hooks {
        /// Geo-route `pkt` toward pkt->dst_loc through the host agent.
        std::function<void(std::shared_ptr<Packet>)> route;
        /// One-hop local broadcast (replication; anonymous replies).
        std::function<void(std::shared_ptr<Packet>)> local_broadcast;
        // geoanon: source(gps)
        std::function<util::Vec2()> my_position;
        // geoanon: source(node-id)
        NodeId my_id{net::kInvalidNode};
        sim::Simulator* sim{nullptr};
        util::Rng* rng{nullptr};
        /// Required for the anonymous modes.
        crypto::CryptoEngine* engine{nullptr};
        /// Charge a modeled CPU delay then run `done` (may run immediately).
        std::function<void(SimTime, std::function<void()>)> charge;
        /// Host-node liveness; unset means always up. Periodic work (update
        /// beacons) is suppressed while the node is down.
        std::function<bool()> is_up;
    };

    struct Stats {
        std::uint64_t updates_sent{0};
        std::uint64_t update_bytes{0};
        std::uint64_t queries_sent{0};
        std::uint64_t query_bytes{0};
        std::uint64_t replies_sent{0};
        std::uint64_t reply_bytes{0};
        std::uint64_t replications{0};
        std::uint64_t store_hits{0};
        std::uint64_t store_misses{0};
        std::uint64_t resolved_ok{0};
        std::uint64_t resolved_fail{0};
        std::uint64_t decrypt_attempts{0};  ///< index-free trial decryptions
        /// Timeout-path diagnostics: these separate "the reply got lost in
        /// the network" (reissues with replies_sent > 0 somewhere) from "the
        /// server grid is dark" (reissues with no reply traffic at all).
        std::uint64_t query_reissues{0};   ///< timeout-driven re-sends
        std::uint64_t query_fallbacks{0};  ///< degradation-ladder stage advances
        std::uint64_t late_replies{0};     ///< reply for a query that already failed
        std::uint64_t pending_wiped{0};    ///< queries dropped by reset()
        // Replica-set health (ls.replica.* / ls.failover.* metrics).
        std::uint64_t store_expired{0};    ///< rows dropped by the periodic sweep
        std::uint64_t digests_sent{0};     ///< anti-entropy digests broadcast
        std::uint64_t digest_bytes{0};
        std::uint64_t repairs_sent{0};     ///< rows pushed to repair a peer
        std::uint64_t handoffs{0};         ///< grids handed off on radius exit
        std::uint64_t read_repairs{0};     ///< rows re-replicated on assisted serve
        std::uint64_t duplicates_suppressed{0};  ///< quorum replies after the first
        std::uint64_t stale_reads{0};      ///< expired rows served within grace
        /// Resolve latency (ms) of queries that needed at least one reissue
        /// or ladder stage — i.e. the cost of failing over to a replica.
        util::Sampler failover_latency_ms;
    };

    LocationService(Mode mode, GridMap grid, Params params, Hooks hooks);

    /// Anticipated requesters (§3.3: the updater must identify its possible
    /// senders). Ignored in kPlain mode.
    void set_contacts(std::vector<NodeId> contacts) { contacts_ = std::move(contacts); }

    /// Begin periodic location updates.
    void start();

    /// Node reboot: wipe volatile state — stored rows and in-flight queries
    /// (their callbacks are dropped; the senders' own timeouts handle it).
    /// Cumulative stats survive.
    void reset();

    /// Resolve the location of `target`, asynchronously. The callback fires
    /// exactly once with the location or nullopt (timeout after retries).
    void resolve(NodeId target, std::function<void(std::optional<util::Vec2>)> cb);

    /// Offer an incoming location-service packet. Returns true when consumed
    /// (served, stored, or matched to a pending query); false lets the agent
    /// keep geo-routing it.
    bool handle(const PacketPtr& pkt);

    /// The agent could not route this LS packet any closer; serve it here if
    /// at all possible. Returns true when consumed.
    bool handle_stuck(const PacketPtr& pkt);

    const Stats& stats() const { return stats_; }
    /// Fold this service's counters into the run metrics (ls.*).
    void publish_metrics(obs::MetricsRegistry& reg) const;
    Mode mode() const { return mode_; }
    /// Number of rows currently stored at this node (server role).
    std::size_t store_size() const { return plain_store_.size() + anon_store_.size(); }

  private:
    struct PlainRow {
        util::Vec2 loc;
        SimTime ts;
        SimTime expires;
    };
    struct AnonRow {
        util::Bytes payload;
        std::uint32_t grid;
        SimTime expires;
    };
    /// On-air shape of one query round. The degradation ladder walks a
    /// mode-specific sequence of formats, each with its own retry budget:
    /// §3.3's heterogeneous fallback (the target may run the other service
    /// flavor) generalized with the index-free round as a middle rung — it
    /// needs no per-requester row, so it can hit any replica of the grid.
    enum class QueryFormat : std::uint8_t { kIndexed, kIndexFree, kPlainSubject };

    struct PendingQuery {
        NodeId target;
        std::function<void(std::optional<util::Vec2>)> cb;
        int attempts{0};        ///< sends within the current ladder stage
        std::uint8_t stage{0};  ///< index into the mode's degradation ladder
        SimTime started{};      ///< resolve() time, for failover latency
        sim::EventId timeout{sim::kInvalidEvent};
    };

    void send_update();
    void send_query(std::uint64_t query_id);
    void serve(const PacketPtr& pkt);
    void store_row(const PacketPtr& pkt);
    void answer_request(const PacketPtr& pkt);
    void on_reply(const PacketPtr& pkt);
    bool near_home_center(const PacketPtr& pkt) const;
    void charge(SimTime cost, std::function<void()> done);
    util::Bytes make_index(NodeId updater, NodeId requester) const;
    /// Query format for ladder stage `stage`, or nullopt past the last rung.
    std::optional<QueryFormat> stage_format(std::uint8_t stage) const;
    /// RetryPolicy delay after the `attempt`-th send of the current stage.
    SimTime retry_delay(int attempt);
    /// Close a pending query successfully: cancel the timeout, record the
    /// qid for duplicate suppression, sample failover latency, run the cb.
    void complete_ok(std::uint64_t qid, util::Vec2 loc);

    // Replica-set maintenance (anti-entropy / handoff / sweep).
    void digest_tick();
    void send_digest(std::uint32_t grid);
    void handoff_grid(std::uint32_t grid);
    void on_digest(const PacketPtr& pkt);
    void sweep_expired();
    /// Broadcast the named anonymous rows of `grid` as one kLocReplicate.
    void push_anon_rows(std::uint32_t grid, const std::vector<std::string>& keys);
    /// Broadcast one plain row as a kLocReplicate (preserves its timestamp).
    void push_plain_row(NodeId subject, const PlainRow& row);

    Mode mode_;
    GridMap grid_;
    Params params_;
    Hooks hooks_;
    std::vector<NodeId> contacts_;
    sim::PeriodicTimer update_timer_;
    sim::PeriodicTimer digest_timer_;
    sim::PeriodicTimer sweep_timer_;

    // Server-side row stores.
    std::map<std::string, AnonRow> anon_store_;   ///< key: hex(index)
    std::unordered_map<NodeId, PlainRow> plain_store_;

    /// Grids this node currently serves (was inside server_radius_m at the
    /// last digest tick while holding rows); leaving one triggers handoff.
    std::set<std::uint32_t> serving_;
    /// Per-grid time of the last digest broadcast (reactive-digest limiter).
    std::map<std::uint32_t, SimTime> last_digest_;

    std::unordered_map<std::uint64_t, PendingQuery> pending_;
    /// Recently resolved query ids: replies from further replicas of the
    /// quorum are suppressed (counted, not treated as late). Purged by the
    /// expiry sweep after entry_ttl.
    std::map<std::uint64_t, SimTime> resolved_qids_;
    std::uint64_t next_query_id_{1};
    Stats stats_;
};

}  // namespace geoanon::routing
