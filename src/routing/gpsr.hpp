#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "net/network.hpp"
#include "net/node.hpp"
#include "routing/location_service.hpp"
#include "routing/wire.hpp"
#include "sim/simulator.hpp"

namespace geoanon::routing {

using net::MacAddr;
using net::NodeId;
using net::Packet;
using net::PacketPtr;
using util::Vec2;

/// GPSR-Greedy (Karp & Kung) baseline: periodic identity-bearing hello
/// beacons build a neighbor table; data is unicast hop by hop to the
/// neighbor geographically closest to the destination; packets stuck at a
/// local maximum are dropped (no perimeter mode, matching the paper's
/// evaluation). Unicast rides the 802.11 RTS/CTS/DATA/ACK exchange.
class GpsrGreedyAgent final : public net::RoutingAgent {
  public:
    struct Params {
        util::SimTime hello_interval{util::SimTime::seconds(1.5)};
        util::SimTime hello_jitter{util::SimTime::seconds(0.5)};
        util::SimTime neighbor_ttl{util::SimTime::seconds(4.5)};
        /// How many alternate next hops to try after a MAC-level failure.
        int reroute_limit{3};
        /// Resolved destination locations are reused this long before the
        /// location service is queried again (real GLS-style caching).
        util::SimTime loc_cache_ttl{util::SimTime::seconds(8.0)};
    };

    struct Stats {
        std::uint64_t app_sent{0};
        std::uint64_t delivered{0};       ///< data accepted at this node
        std::uint64_t forwarded{0};
        std::uint64_t drop_no_route{0};   ///< greedy local maximum
        std::uint64_t drop_mac{0};        ///< exhausted MAC retries + reroutes
        std::uint64_t drop_no_location{0};
        std::uint64_t hello_sent{0};
        std::uint64_t control_bytes{0};
        std::uint64_t data_bytes{0};
    };

    /// Delivery callback (self id + the delivered packet).
    using DeliverFn = std::function<void(NodeId, const Packet&)>;
    /// Destination-location oracle; return nullopt when unknown.
    using LocateFn = std::function<std::optional<Vec2>(NodeId)>;

    GpsrGreedyAgent(net::Node& node, Params params, LocateFn locate, DeliverFn deliver);

    /// Replace the oracle with a real grid location service (plain DLM).
    void enable_location_service(GridMap grid, LocationService::Params ls_params);
    LocationService* location_service() { return ls_.get(); }

    void start() override;
    void send_data(NodeId dst, net::FlowId flow, std::uint32_t seq, net::Bytes body) override;
    void on_packet(const PacketPtr& pkt, MacAddr src) override;
    void on_mac_tx_done(const PacketPtr& pkt, MacAddr dst, bool success) override;
    void on_node_restart() override;
    std::string name() const override { return "gpsr-greedy"; }

    /// Geo-route an already-built packet toward pkt->dst_loc (used by the
    /// location service and by tests).
    void route_packet(std::shared_ptr<Packet> pkt);

    std::size_t neighbor_count() const { return neighbors_.size(); }
    const Stats& stats() const { return stats_; }
    /// Fold this agent's counters (and its location service's, when one is
    /// attached) into the run metrics (gpsr.*, ls.*).
    void publish_metrics(obs::MetricsRegistry& reg) const;

  private:
    struct Neighbor {
        Vec2 loc;
        MacAddr mac;
        util::SimTime ts;
    };

    void send_hello();
    void purge_neighbors();
    const Neighbor* best_neighbor(const Vec2& from, const Vec2& dst_loc) const;
    void forward(const PacketPtr& pkt);
    void deliver_local(const PacketPtr& pkt);

    net::Node& node_;
    Params params_;
    LocateFn locate_;
    DeliverFn deliver_;
    std::unordered_map<NodeId, Neighbor> neighbors_;
    /// Alternate-next-hop attempts per packet uid after MAC failures.
    std::unordered_map<std::uint64_t, int> reroute_counts_;
    std::unique_ptr<LocationService> ls_;
    /// Location-service result cache: dst -> (location, resolved-at).
    std::unordered_map<NodeId, std::pair<Vec2, util::SimTime>> loc_cache_;
    sim::PeriodicTimer hello_timer_;
    std::uint32_t next_uid_{1};
    Stats stats_;
};

}  // namespace geoanon::routing
