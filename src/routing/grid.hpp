#pragma once

#include <algorithm>
#include <cstdint>

#include "mobility/mobility.hpp"
#include "util/vec2.hpp"

namespace geoanon::routing {

using util::Vec2;

/// DLM-style partition of the area into square grids (Xue et al.). A node's
/// home grid — where its location servers live — is a public function of its
/// identity: ssa(id) = H(id) mod grid_count (§3.3).
class GridMap {
  public:
    GridMap(mobility::Area area, double cell_m)
        : area_(area),
          cell_(cell_m),
          cols_(static_cast<std::uint32_t>((area.width + cell_m - 1.0) / cell_m)),
          rows_(static_cast<std::uint32_t>((area.height + cell_m - 1.0) / cell_m)) {}

    std::uint32_t grid_count() const { return cols_ * rows_; }
    double cell_size() const { return cell_; }

    /// Grid index containing point `p` (clamped to the area).
    std::uint32_t grid_of(const Vec2& p) const {
        auto clamp = [](double v, double lo, double hi) {
            return v < lo ? lo : (v > hi ? hi : v);
        };
        const auto cx = static_cast<std::uint32_t>(
            clamp(p.x, 0.0, area_.width - 1e-9) / cell_);
        const auto cy = static_cast<std::uint32_t>(
            clamp(p.y, 0.0, area_.height - 1e-9) / cell_);
        return cy * cols_ + cx;
    }

    /// Geometric center of grid `g` (clamped inside the area for edge cells).
    Vec2 center_of(std::uint32_t g) const {
        const std::uint32_t cx = g % cols_;
        const std::uint32_t cy = g / cols_;
        const double x = std::min((cx + 0.5) * cell_, area_.width);
        const double y = std::min((cy + 0.5) * cell_, area_.height);
        return {x, y};
    }

    bool contains(std::uint32_t g, const Vec2& p) const { return grid_of(p) == g; }

    /// ssa(id): the home grid of identity `id` (§3.3). Public knowledge.
    std::uint32_t home_grid(std::uint64_t id) const {
        // Cheap integer mix is enough here; the privacy argument does not
        // rest on this mapping being secret.
        std::uint64_t z = id + 0x9E3779B97F4A7C15ULL;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return static_cast<std::uint32_t>((z ^ (z >> 31)) % grid_count());
    }

  private:
    mobility::Area area_;
    double cell_;
    std::uint32_t cols_;
    std::uint32_t rows_;
};

}  // namespace geoanon::routing
