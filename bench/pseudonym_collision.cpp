// §3.1.1 — pseudonym collision probability.
//
// The paper generates n = hash(pr, id) "to reduce the probability of n
// collisions in the neighborhood" and sizes pseudonyms like MAC addresses
// (48 bits, §5). This bench measures the collision probability among N
// simultaneously-live pseudonyms for several truncation widths and compares
// it with the birthday-bound approximation 1 - exp(-N(N-1) / 2^(b+1)).

#include <cmath>
#include <unordered_set>

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace geoanon;

namespace {

std::uint64_t pseudonym(std::uint64_t id, std::uint64_t pr, unsigned bits) {
    util::ByteWriter w;
    w.u64(pr);
    w.u64(id);
    return crypto::sha256_u64(w.data()) & ((bits >= 64) ? ~0ULL : ((1ULL << bits) - 1));
}

double measure(unsigned bits, std::size_t live, int trials, util::Rng& rng) {
    int collided = 0;
    for (int t = 0; t < trials; ++t) {
        std::unordered_set<std::uint64_t> seen;
        bool hit = false;
        for (std::size_t i = 0; i < live && !hit; ++i)
            hit = !seen.insert(pseudonym(i, rng.next_u64(), bits)).second;
        collided += hit ? 1 : 0;
    }
    return static_cast<double>(collided) / trials;
}

double birthday(unsigned bits, std::size_t live) {
    const double n = static_cast<double>(live);
    return 1.0 - std::exp(-n * (n - 1.0) / std::pow(2.0, bits + 1.0));
}

}  // namespace

int main() {
    std::printf("Pseudonym collision probability vs width (500 trials each)\n");
    std::printf("'live' = simultaneously valid pseudonyms in one radio range\n\n");

    util::Rng rng(20260706);
    util::TablePrinter table({"bits", "live", "measured", "birthday bound"});
    for (unsigned bits : {16u, 24u, 32u, 48u}) {
        for (std::size_t live : {32u, 128u, 512u}) {
            const int trials = 500;
            table.row()
                .cell(static_cast<long long>(bits))
                .cell(static_cast<long long>(live))
                .cell(measure(bits, live, trials, rng), 4)
                .cell(birthday(bits, live), 4);
        }
    }
    table.print();

    std::printf(
        "\nAt the paper's 48-bit (MAC-address sized) pseudonyms, collisions in\n"
        "a neighborhood are negligible even at hundreds of live entries; the\n"
        "16-bit column shows why short pseudonyms would need collision repair.\n");
    return 0;
}
