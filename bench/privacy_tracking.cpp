// §4 security analysis, quantified — what a passive global eavesdropper
// learns under each scheme.
//
// The paper argues AGFW leaves the adversary with locations it cannot tie to
// identities ("it cannot determine who is sending to whom"), and warns
// (§3.2) that exposing real MAC source addresses would let an eavesdropper
// correlate consecutive hops of one packet (same trapdoor) and bind
// pseudonyms to persistent addresses. This bench measures all three cases.

#include "bench_common.hpp"

using namespace geoanon;

namespace {

workload::ScenarioResult run_case(workload::Scheme scheme, bool anonymous_mac,
                                  double seconds) {
    workload::ScenarioConfig cfg = bench::paper_scenario(scheme, 50, seconds, 11);
    cfg.attach_eavesdropper = true;
    cfg.anonymous_mac = anonymous_mac;
    workload::ScenarioRunner runner(cfg);
    return runner.run();
}

}  // namespace

int main() {
    const double seconds = bench::sim_seconds(300.0);
    std::printf("Privacy under a passive global eavesdropper (50 nodes, %.0f s)\n", seconds);
    std::printf("identity sighting = (identity handle, location) pair observed\n");
    std::printf("coverage = mean fraction of 10 s windows a node is localized in\n\n");

    struct Case {
        const char* name;
        workload::Scheme scheme;
        bool anon_mac;
    };
    const Case cases[] = {
        {"gpsr-greedy", workload::Scheme::kGpsrGreedy, true},
        {"agfw-ack", workload::Scheme::kAgfwAck, true},
        {"agfw-ack + MAC leak", workload::Scheme::kAgfwAck, false},
    };

    util::TablePrinter table({"scheme", "frames seen", "identity sightings",
                              "pseudonym sightings", "nodes localized", "coverage",
                              "pseudonym->MAC links"});
    for (const Case& c : cases) {
        const auto r = run_case(c.scheme, c.anon_mac, seconds);
        const auto& adv = r.adversary;
        table.row()
            .cell(c.name)
            .cell(static_cast<long long>(adv.frames_observed))
            .cell(static_cast<long long>(adv.identity_sightings))
            .cell(static_cast<long long>(adv.pseudonym_sightings))
            .cell(static_cast<long long>(adv.nodes_ever_localized))
            .cell(adv.mean_tracking_coverage, 3)
            .cell(static_cast<long long>(adv.mac_pseudonym_links));
    }
    table.print();

    std::printf(
        "\nExpected shape (paper §4): GPSR localizes every node almost\n"
        "continuously; full AGFW yields zero identity-location linkage; the\n"
        "MAC-leak ablation confirms why §3.2 forbids real source addresses.\n");
    return 0;
}
