// §4 security analysis, quantified — what a passive global eavesdropper
// learns under each scheme.
//
// The paper argues AGFW leaves the adversary with locations it cannot tie to
// identities ("it cannot determine who is sending to whom"), and warns
// (§3.2) that exposing real MAC source addresses would let an eavesdropper
// correlate consecutive hops of one packet (same trapdoor) and bind
// pseudonyms to persistent addresses. This bench measures all three cases.

#include "bench_common.hpp"

using namespace geoanon;

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv);
    const double seconds = bench::sim_seconds(300.0);
    std::printf("Privacy under a passive global eavesdropper (50 nodes, %.0f s)\n", seconds);
    std::printf("identity sighting = (identity handle, location) pair observed\n");
    std::printf("coverage = mean fraction of 10 s windows a node is localized in\n\n");

    experiment::SweepSpec spec;
    spec.base = bench::paper_scenario(workload::Scheme::kGpsrGreedy, 50, seconds, 1);
    spec.base.attach_eavesdropper = true;
    // Also run the offline linking attack (DESIGN.md §16) over the same
    // observation feed: GPSR's identity-bearing beacons calibrate it
    // (tracking ~= 1.0 — equal handles link for free), AGFW's per-hello
    // pseudonyms are what it actually has to fight.
    spec.base.attach_observer = true;
    spec.axes = {experiment::Axis::variants(
        "privacy_case", {"gpsr-greedy", "agfw-ack", "agfw-ack + MAC leak"},
        [](workload::ScenarioConfig& cfg, double v) {
            const int c = static_cast<int>(v);
            cfg.scheme = c == 0 ? workload::Scheme::kGpsrGreedy
                                : workload::Scheme::kAgfwAck;
            cfg.anonymous_mac = c != 2;
        })};
    spec.seeds_per_point = 1;
    spec.seed_base = 11;

    const auto points = bench::run_sweep(spec, args);

    util::TablePrinter table({"scheme", "frames seen", "identity sightings",
                              "pseudonym sightings", "nodes localized", "coverage",
                              "pseudonym->MAC links", "tracking", "precision",
                              "anon-set"});
    for (const experiment::PointRecord& pt : points) {
        const auto& adv = pt.runs.front().result.adversary;
        const auto& atk = pt.runs.front().result.attack;
        table.row()
            .cell(pt.labels[0])
            .cell(static_cast<long long>(adv.frames_observed))
            .cell(static_cast<long long>(adv.identity_sightings))
            .cell(static_cast<long long>(adv.pseudonym_sightings))
            .cell(static_cast<long long>(adv.nodes_ever_localized))
            .cell(adv.mean_tracking_coverage, 3)
            .cell(static_cast<long long>(adv.mac_pseudonym_links))
            .cell(atk.tracking_success_rate, 3)
            .cell(atk.link_precision, 3)
            .cell(atk.mean_anonymity_set, 2);
    }
    table.print();

    bench::maybe_write_json(args, "privacy_tracking", spec, points);
    std::printf(
        "\nExpected shape (paper §4): GPSR localizes every node almost\n"
        "continuously; full AGFW yields zero identity-location linkage; the\n"
        "MAC-leak ablation confirms why §3.2 forbids real source addresses.\n"
        "The linking attack tracks GPSR near-perfectly (identity handles link\n"
        "for free); AGFW forces it onto motion-gated guesses — see\n"
        "privacy_frontier for the countermeasure sweep.\n");
    return 0;
}
