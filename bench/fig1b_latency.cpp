// Figure 1(b) — Average end-to-end data packet latency vs network density.
//
// Paper: latencies are comparable while the network has modest density
// (<= 112 nodes in their runs); at high density GPSR-Greedy's latency grows
// sharply (RTS/CTS handshake failures, backoff and retries) while AGFW —
// which never handshakes — stays nearly flat.

#include "bench_common.hpp"

using namespace geoanon;

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv);
    const double seconds = bench::sim_seconds(300.0);
    const int seeds = bench::seed_count(2);
    bench::print_banner("Figure 1(b): end-to-end data packet latency vs number of nodes",
                        seconds, seeds);

    experiment::SweepSpec spec;
    spec.base = bench::paper_scenario(workload::Scheme::kGpsrGreedy, 50, seconds, 1);
    spec.axes = {experiment::Axis::nodes({50, 75, 100, 112, 125, 150}),
                 experiment::Axis::schemes({workload::Scheme::kGpsrGreedy,
                                            workload::Scheme::kAgfwAck})};
    spec.seeds_per_point = static_cast<std::size_t>(seeds);
    spec.seed_base = 1000;

    const auto points = bench::run_sweep(spec, args);

    const auto avg_ms = [](const workload::ScenarioResult& r) { return r.avg_latency_ms; };
    const auto p95_ms = [](const workload::ScenarioResult& r) { return r.p95_latency_ms; };
    util::TablePrinter table({"nodes", "gpsr avg (ms)", "agfw-ack avg (ms)",
                              "gpsr p95 (ms)", "agfw-ack p95 (ms)"});
    for (std::size_t n = 0; n < spec.axes[0].values.size(); ++n) {
        const experiment::PointRecord& gpsr = points[n * 2];
        const experiment::PointRecord& ack = points[n * 2 + 1];
        table.row()
            .cell(static_cast<long long>(spec.axes[0].values[n]))
            .cell(gpsr.mean(avg_ms), 2)
            .cell(ack.mean(avg_ms), 2)
            .cell(gpsr.mean(p95_ms), 2)
            .cell(ack.mean(p95_ms), 2);
    }
    table.print();

    bench::maybe_write_json(args, "fig1b_latency", spec, points);
    std::printf(
        "\nExpected shape (paper): comparable up to ~112 nodes, then a sharp\n"
        "GPSR increase while AGFW stays flat. AGFW pays the 8.5 ms trapdoor\n"
        "decryption only inside the last-hop region, so per-packet crypto\n"
        "does not accumulate along the route.\n");
    return 0;
}
