// Figure 1(b) — Average end-to-end data packet latency vs network density.
//
// Paper: latencies are comparable while the network has modest density
// (<= 112 nodes in their runs); at high density GPSR-Greedy's latency grows
// sharply (RTS/CTS handshake failures, backoff and retries) while AGFW —
// which never handshakes — stays nearly flat.

#include "bench_common.hpp"

using namespace geoanon;

int main() {
    const double seconds = bench::sim_seconds(300.0);
    const int seeds = bench::seed_count(2);
    bench::print_banner("Figure 1(b): end-to-end data packet latency vs number of nodes",
                        seconds, seeds);

    const std::vector<std::size_t> densities{50, 75, 100, 112, 125, 150};
    util::TablePrinter table({"nodes", "gpsr avg (ms)", "agfw-ack avg (ms)",
                              "gpsr p95 (ms)", "agfw-ack p95 (ms)"});

    for (std::size_t nodes : densities) {
        const auto gpsr = bench::run_seeds(workload::Scheme::kGpsrGreedy, nodes, seconds, seeds);
        const auto ack = bench::run_seeds(workload::Scheme::kAgfwAck, nodes, seconds, seeds);
        table.row()
            .cell(static_cast<long long>(nodes))
            .cell(gpsr.latency_ms.mean(), 2)
            .cell(ack.latency_ms.mean(), 2)
            .cell(gpsr.p95_ms.mean(), 2)
            .cell(ack.p95_ms.mean(), 2);
    }
    table.print();

    std::printf(
        "\nExpected shape (paper): comparable up to ~112 nodes, then a sharp\n"
        "GPSR increase while AGFW stays flat. AGFW pays the 8.5 ms trapdoor\n"
        "decryption only inside the last-hop region, so per-packet crypto\n"
        "does not accumulate along the route.\n");
    return 0;
}
