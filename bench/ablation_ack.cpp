// Ablation — network-layer acknowledgment design (DESIGN.md §5).
//
// §3.2 specifies "a network layer acknowledgment could be used" and that it
// "can be piggybacked on a data packet to be sent", but gives no timer
// parameters. This ablation justifies the defaults (40 ms base timeout with
// exponential backoff, one same-hop retry before rerouting, piggybacked/
// implicit ACKs): short fixed timers melt down under contention
// (retransmission storms), extra same-hop retries amplify congestion
// hotspots, and disabling piggybacking pays an explicit ACK per hop.

#include "bench_common.hpp"

using namespace geoanon;

namespace {

workload::ScenarioResult run_variant(util::SimTime ack_timeout, bool backoff, int retries,
                                     bool piggyback, std::size_t nodes, double seconds) {
    workload::ScenarioConfig cfg =
        bench::paper_scenario(workload::Scheme::kAgfwAck, nodes, seconds, 21);
    cfg.agfw.ack_timeout = ack_timeout;
    cfg.agfw.ack_backoff = backoff;
    cfg.agfw.ack_retries = retries;
    cfg.agfw.piggyback_acks = piggyback;
    workload::ScenarioRunner runner(cfg);
    return runner.run();
}

}  // namespace

int main() {
    const double seconds = bench::sim_seconds(180.0);
    std::printf("Ablation: NL-ACK timer and piggybacking (AGFW-ACK, %.0f s)\n\n", seconds);

    struct Variant {
        const char* name;
        util::SimTime timeout;
        bool backoff;
        int retries;
        bool piggyback;
    };
    const Variant variants[] = {
        {"40ms, backoff, 1 retry (default)", util::SimTime::millis(40), true, 1, true},
        {"40ms, backoff, 2 retries", util::SimTime::millis(40), true, 2, true},
        {"40ms, plain, 2 retries", util::SimTime::millis(40), false, 2, true},
        {"15ms, plain, 2 retries", util::SimTime::millis(15), false, 2, true},
        {"40ms, backoff, 1 retry, explicit acks", util::SimTime::millis(40), true, 1, false},
    };

    for (std::size_t nodes : {50u, 150u}) {
        std::printf("--- %zu nodes ---\n", nodes);
        util::TablePrinter table({"variant", "delivery", "latency (ms)", "nl retx",
                                  "acks sent", "implicit acks"});
        for (const Variant& v : variants) {
            const auto r =
                run_variant(v.timeout, v.backoff, v.retries, v.piggyback, nodes, seconds);
            table.row()
                .cell(v.name)
                .cell(r.delivery_fraction, 3)
                .cell(r.avg_latency_ms, 2)
                .cell(static_cast<long long>(r.nl_retransmissions))
                .cell(static_cast<long long>(r.acks_sent))
                .cell(static_cast<long long>(r.implicit_acks));
        }
        table.print();
        std::printf("\n");
    }
    std::printf(
        "Reading: aggressive 15 ms timers inflate retransmissions and sink\n"
        "delivery; extra same-hop retries double latency for nothing; and\n"
        "disabling piggybacking costs delivery too — the extra explicit ACK\n"
        "per hop is pure added channel load.\n");
    return 0;
}
