// §3.3 / §5 — Anonymous Location Service vs plain DLM.
//
// The paper did not simulate ALS, arguing its performance "is expected to be
// similar to the original location service ... with extra message bits and
// limited cryptographic operations involved, one might also expect it to
// elegantly degrade a bit". This bench quantifies that claim: lookup success
// and byte overhead for plain DLM (over GPSR), the indexed ALS, and the
// index-free ALS variant (§3.3's alternative scheme) over AGFW.

#include "bench_common.hpp"

using namespace geoanon;

namespace {

struct Row {
    std::string name;
    workload::ScenarioResult r;
};

Row run_mode(const char* name, workload::Scheme scheme,
             std::optional<routing::LocationService::Mode> mode, double seconds,
             std::uint64_t seed) {
    workload::ScenarioConfig cfg = bench::paper_scenario(scheme, 75, seconds, seed);
    cfg.location_service = mode;
    cfg.traffic_start_s = 25.0;  // let the first updates land
    cfg.cbr_pps = 1.0;           // LS-bound workload, not a saturation test
    workload::ScenarioRunner runner(cfg);
    return Row{name, runner.run()};
}

}  // namespace

int main() {
    const double seconds = bench::sim_seconds(300.0);
    std::printf("Location service comparison: plain DLM vs anonymous ALS (75 nodes)\n");
    std::printf("sim %.0f s, CBR 1 pkt/s per flow; updates every 10 s\n\n", seconds);

    std::vector<Row> rows;
    rows.push_back(run_mode("dlm-plain (gpsr)", workload::Scheme::kGpsrGreedy,
                            routing::LocationService::Mode::kPlain, seconds, 3));
    rows.push_back(run_mode("als-indexed (agfw)", workload::Scheme::kAgfwAck,
                            routing::LocationService::Mode::kAnonymous, seconds, 3));
    rows.push_back(run_mode("als-index-free (agfw)", workload::Scheme::kAgfwAck,
                            routing::LocationService::Mode::kAnonymousIndexFree, seconds, 3));

    util::TablePrinter table({"service", "lookup ok", "lookup fail", "B/update", "B/query",
                              "B/reply", "trial decrypts", "data delivery"});
    for (const Row& row : rows) {
        const auto& ls = row.r.ls;
        auto per = [](std::uint64_t bytes, std::uint64_t count) {
            return count ? static_cast<double>(bytes) / static_cast<double>(count) : 0.0;
        };
        table.row()
            .cell(row.name)
            .cell(static_cast<long long>(ls.resolved_ok))
            .cell(static_cast<long long>(ls.resolved_fail))
            .cell(per(ls.update_bytes, ls.updates_sent), 1)
            .cell(per(ls.query_bytes, ls.queries_sent), 1)
            .cell(per(ls.reply_bytes, ls.replies_sent), 1)
            .cell(static_cast<long long>(ls.decrypt_attempts))
            .cell(row.r.delivery_fraction, 3);
    }
    table.print();

    std::printf(
        "\nExpected shape (paper): ALS succeeds like DLM but pays more bytes\n"
        "per update (one encrypted row per anticipated requester) and per\n"
        "reply; the index-free variant pays the most (whole-bucket replies +\n"
        "trial decryptions) in exchange for requester anonymity.\n");
    return 0;
}
