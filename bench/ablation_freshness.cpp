// Ablation — freshness-aware forwarding in the ANT (§3.1.1).
//
// Because one physical neighbor appears as several uncorrelatable pseudonym
// entries, the paper argues the forwarding decision must weigh freshness,
// and that "forwarding could be better if the node movement is predictable
// (velocity and direction are available with position)". This ablation
// compares raw greedy (penalty 0), the staleness-penalized rule, and the
// velocity-hint dead-reckoning variant at high mobility.

#include "bench_common.hpp"

using namespace geoanon;

namespace {

workload::ScenarioResult run_variant(double penalty_mps, bool velocity, double max_speed,
                                     double seconds) {
    workload::ScenarioConfig cfg =
        bench::paper_scenario(workload::Scheme::kAgfwAck, 75, seconds, 31);
    cfg.max_speed_mps = max_speed;
    cfg.pause_s = 5.0;  // high-churn regime where freshness matters
    cfg.agfw.ant.staleness_penalty_mps = penalty_mps;
    cfg.agfw.ant.use_velocity = velocity;
    cfg.agfw.send_velocity_hint = velocity;
    workload::ScenarioRunner runner(cfg);
    return runner.run();
}

}  // namespace

int main() {
    const double seconds = bench::sim_seconds(180.0);
    std::printf("Ablation: ANT freshness-aware forwarding (75 nodes, pause 5 s, %.0f s)\n\n",
                seconds);

    struct Variant {
        const char* name;
        double penalty;
        bool velocity;
    };
    const Variant variants[] = {
        {"raw greedy (penalty 0)", 0.0, false},
        {"staleness penalty 10 m/s", 10.0, false},
        {"staleness penalty 20 m/s", 20.0, false},
        {"penalty 10 + velocity hint", 10.0, true},
    };

    for (double speed : {5.0, 20.0}) {
        std::printf("--- max speed %.0f m/s ---\n", speed);
        util::TablePrinter table({"variant", "delivery", "latency (ms)", "nl retx",
                                  "unreachable drops"});
        for (const Variant& v : variants) {
            const auto r = run_variant(v.penalty, v.velocity, speed, seconds);
            table.row()
                .cell(v.name)
                .cell(r.delivery_fraction, 3)
                .cell(r.avg_latency_ms, 2)
                .cell(static_cast<long long>(r.nl_retransmissions))
                .cell(static_cast<long long>(r.drop_unreachable));
        }
        table.print();
        std::printf("\n");
    }
    std::printf(
        "Reading: at walking speeds the variants tie; at vehicular speeds the\n"
        "freshness-aware rules cut retransmissions to dead entries (§3.1.1).\n");
    return 0;
}
