// §4 analysis — the anonymity/overhead trade of the authenticated ANT.
//
// The paper: "the larger the set of ambiguous signers is used, the stronger
// the anonymity the sender has, but with more certificates to transmit", and
// sending certificates by reference cuts the steady-state cost because
// "the number of explicit requests [declines] significantly after the
// network boots up".
//
// This bench reports, per ring size k (ring = k+1 members):
//   - hello bytes with full certificates attached vs certificate references;
//   - modeled CPU cost of ring-sign / ring-verify (paper's 0.5/8.5 ms ops);
//   - measured wall time of the real RST ring signature at 512-bit keys;
//   - cert fetches in the first vs second half of a running network (the
//     boot-time effect).

#include <chrono>

#include "bench_common.hpp"
#include "crypto/engine.hpp"
#include "routing/wire.hpp"

using namespace geoanon;

int main() {
    std::printf("Ring-signed ANT: anonymity k vs overhead (512-bit RSA)\n\n");

    crypto::RealCryptoEngine real(2026, 512);
    util::Rng rng(7);
    const std::size_t kMaxMembers = 17;
    std::vector<crypto::NodeIdNum> ids;
    std::printf("generating %zu RSA-512 key pairs...\n", kMaxMembers);
    for (std::size_t i = 0; i < kMaxMembers; ++i) {
        real.register_node(i);
        ids.push_back(i);
    }

    const util::Bytes msg{'h', 'e', 'l', 'l', 'o', '-', 'a', 'n', 't'};
    util::TablePrinter table({"k", "members", "hello B (cert refs)", "hello B (full certs)",
                              "sign model (ms)", "verify model (ms)", "real sign (ms)",
                              "real verify (ms)"});

    for (std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
        const std::size_t members = k + 1;
        std::vector<crypto::NodeIdNum> ring(ids.begin(),
                                            ids.begin() + static_cast<std::ptrdiff_t>(members));

        const std::size_t sig_bytes = real.ring_signature_bytes(members);
        const std::size_t base = routing::kAgfwHelloBaseBytes + 8;  // + velocity hint
        const std::size_t bytes_refs =
            base + sig_bytes + members * routing::kCertReferenceBytes;
        const std::size_t bytes_full = base + sig_bytes + members * real.certificate_bytes();

        // geoanon-lint: begin-allow(wallclock) -- bench timing block: crypto wall-cost measurement, reported as ms columns, never part of a result contract
        const auto t0 = std::chrono::steady_clock::now();
        const util::Bytes sig = real.ring_sign_msg(0, ring, msg, rng);
        const auto t1 = std::chrono::steady_clock::now();
        const bool ok = real.ring_verify_msg(ring, msg, sig);
        const auto t2 = std::chrono::steady_clock::now();
        // geoanon-lint: end-allow(wallclock)
        if (!ok) {
            std::fprintf(stderr, "ring verification failed!\n");
            return 1;
        }

        table.row()
            .cell(static_cast<long long>(k))
            .cell(static_cast<long long>(members))
            .cell(static_cast<long long>(bytes_refs))
            .cell(static_cast<long long>(bytes_full))
            .cell(real.costs().ring_sign(members).to_millis(), 2)
            .cell(real.costs().ring_verify(members).to_millis(), 2)
            .cell(std::chrono::duration<double, std::milli>(t1 - t0).count(), 2)
            .cell(std::chrono::duration<double, std::milli>(t2 - t1).count(), 2);
    }
    table.print();

    // Boot-time cert-request decline, measured in a running network.
    std::printf("\nCert-by-reference fetches over time (40 nodes, authenticated ANT):\n");
    workload::ScenarioConfig cfg =
        bench::paper_scenario(workload::Scheme::kAgfwAck, 40, 120.0, 5);
    cfg.authenticated_hello = true;
    cfg.ring_k = 4;
    workload::ScenarioRunner runner(cfg);
    runner.setup();
    runner.network().start_agents();

    auto fetches_now = [&runner] {
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < runner.network().size(); ++i)
            total += runner.agfw_agent(static_cast<net::NodeId>(i))->stats().cert_fetches;
        return total;
    };
    runner.network().sim().run_until(util::SimTime::seconds(60));
    const std::uint64_t first_half = fetches_now();
    runner.network().sim().run_until(util::SimTime::seconds(120));
    const std::uint64_t second_half = fetches_now() - first_half;
    std::printf("  fetches in [0,60)s: %llu   fetches in [60,120)s: %llu\n",
                static_cast<unsigned long long>(first_half),
                static_cast<unsigned long long>(second_half));
    std::printf("  (paper §4: explicit requests decline after the network boots)\n");
    return 0;
}
