// Resilience under node churn — packet delivery vs fraction of the network
// held down by a crash/recover process.
//
// Not a paper figure: the paper's §5 runs assume a fault-free network. This
// bench quantifies how gracefully AGFW-with-ACK degrades when nodes silently
// halt and return with wiped state, which exercises the ANT silence purge,
// the NL-ACK blacklist/reroute machinery, and recovery re-warming.

#include "bench_common.hpp"
#include "fault/fault.hpp"

using namespace geoanon;

namespace {

/// Churn plan sized to hold roughly `down_fraction` of the network down in
/// steady state: arrivals at rate cap/mean_downtime saturate the cap.
fault::FaultPlan churn_plan(std::size_t num_nodes, double down_fraction,
                            double seconds) {
    fault::FaultPlan plan;
    plan.seed = 77;
    if (down_fraction <= 0.0) return plan;
    fault::FaultPlan::Churn churn;
    churn.min_down = util::SimTime::seconds(5.0);
    churn.max_down = util::SimTime::seconds(20.0);
    churn.max_concurrent_down =
        static_cast<int>(static_cast<double>(num_nodes) * down_fraction + 0.5);
    // Mean downtime 12.5 s; drive arrivals ~2x the refill rate so the cap,
    // not the arrival process, sets the steady-state down fraction.
    churn.crash_rate_per_s = 2.0 * churn.max_concurrent_down / 12.5;
    churn.start = util::SimTime::seconds(15.0);
    churn.stop = util::SimTime::seconds(seconds - 20.0);
    plan.churn = churn;
    return plan;
}

}  // namespace

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv);
    const double seconds = bench::sim_seconds(200.0);
    const int seeds = bench::seed_count(2);
    bench::print_banner("Resilience: AGFW-ACK delivery vs node churn", seconds,
                        seeds);

    experiment::SweepSpec spec;
    spec.base = bench::paper_scenario(workload::Scheme::kAgfwAck, 50, seconds, 1);
    spec.axes = {experiment::Axis::numeric(
        "churn_fraction", {0.0, 0.10, 0.20, 0.30},
        [seconds](workload::ScenarioConfig& cfg, double f) {
            cfg.faults = churn_plan(cfg.num_nodes, f, seconds);
        })};
    spec.seeds_per_point = static_cast<std::size_t>(seeds);
    spec.seed_base = 2000;

    const auto points = bench::run_sweep(spec, args);

    util::TablePrinter table({"churn%", "pdr", "lat-ms", "crashes", "recov-p95-s"});
    for (const experiment::PointRecord& pt : points) {
        table.row()
            .cell(static_cast<long long>(pt.values[0] * 100.0 + 0.5))
            .cell(pt.mean([](const workload::ScenarioResult& r) {
                      return r.delivery_fraction;
                  }),
                  3)
            .cell(pt.mean([](const workload::ScenarioResult& r) {
                      return r.avg_latency_ms;
                  }),
                  1)
            .cell(pt.mean([](const workload::ScenarioResult& r) {
                      return static_cast<double>(r.resilience.node_crashes);
                  }),
                  1)
            .cell(pt.mean([](const workload::ScenarioResult& r) {
                      return r.resilience.recovery_latency_p95_s;
                  }),
                  2);
    }
    table.print();

    bench::maybe_write_json(args, "resilience_churn", spec, points);
    std::printf(
        "\nExpected shape: delivery declines smoothly with churn (no cliff);\n"
        "recovery p95 stays within a few hello intervals of the downtime end.\n");
    return 0;
}
