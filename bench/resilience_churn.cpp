// Resilience under node churn — packet delivery vs fraction of the network
// held down by a crash/recover process.
//
// Not a paper figure: the paper's §5 runs assume a fault-free network. This
// bench quantifies how gracefully AGFW-with-ACK degrades when nodes silently
// halt and return with wiped state, which exercises the ANT silence purge,
// the NL-ACK blacklist/reroute machinery, and recovery re-warming.

#include "bench_common.hpp"
#include "fault/fault.hpp"

using namespace geoanon;

namespace {

/// Churn plan sized to hold roughly `down_fraction` of the network down in
/// steady state: arrivals at rate cap/mean_downtime saturate the cap.
fault::FaultPlan churn_plan(std::size_t num_nodes, double down_fraction,
                            double seconds) {
    fault::FaultPlan plan;
    plan.seed = 77;
    if (down_fraction <= 0.0) return plan;
    fault::FaultPlan::Churn churn;
    churn.min_down = util::SimTime::seconds(5.0);
    churn.max_down = util::SimTime::seconds(20.0);
    churn.max_concurrent_down =
        static_cast<int>(static_cast<double>(num_nodes) * down_fraction + 0.5);
    // Mean downtime 12.5 s; drive arrivals ~2x the refill rate so the cap,
    // not the arrival process, sets the steady-state down fraction.
    churn.crash_rate_per_s = 2.0 * churn.max_concurrent_down / 12.5;
    churn.start = util::SimTime::seconds(15.0);
    churn.stop = util::SimTime::seconds(seconds - 20.0);
    plan.churn = churn;
    return plan;
}

}  // namespace

int main() {
    const double seconds = bench::sim_seconds(200.0);
    const int seeds = bench::seed_count(2);
    bench::print_banner("Resilience: AGFW-ACK delivery vs node churn", seconds,
                        seeds);

    const std::vector<double> fractions{0.0, 0.10, 0.20, 0.30};
    util::TablePrinter table({"churn%", "pdr", "lat-ms", "crashes", "recov-p95-s"});

    for (double f : fractions) {
        util::RunningStat pdr, lat, crashes, p95;
        for (int s = 0; s < seeds; ++s) {
            auto cfg = bench::paper_scenario(
                workload::Scheme::kAgfwAck, 50, seconds,
                2000 + static_cast<std::uint64_t>(s));
            cfg.faults = churn_plan(cfg.num_nodes, f, seconds);
            const auto r = workload::ScenarioRunner(cfg).run();
            pdr.add(r.delivery_fraction);
            lat.add(r.avg_latency_ms);
            crashes.add(static_cast<double>(r.resilience.node_crashes));
            p95.add(r.resilience.recovery_latency_p95_s);
        }
        table.row()
            .cell(static_cast<long long>(f * 100.0 + 0.5))
            .cell(pdr.mean(), 3)
            .cell(lat.mean(), 1)
            .cell(crashes.mean(), 1)
            .cell(p95.mean(), 2);
    }
    table.print();

    std::printf(
        "\nExpected shape: delivery declines smoothly with churn (no cliff);\n"
        "recovery p95 stays within a few hello intervals of the downtime end.\n");
    return 0;
}
