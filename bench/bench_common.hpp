#pragma once

// Shared helpers for the figure/table reproduction benches.
//
// Every sweep bench accepts the unified flags:
//   --jobs=N      - run N scenario workers in parallel (results are merged
//                   in spec order, so output is byte-identical for any N)
//   --json=PATH   - also emit the sweep as the common BENCH_*.json schema
//   --perf        - include wall-clock/events-per-sec in the JSON (breaks
//                   byte-identity across machines; off by default)
//   --trace-dir=D - record every run with the flight recorder and write one
//                   Chrome trace (Perfetto-loadable) per run into D
//   --trace       - shorthand for --trace-dir=traces
//
// Runtime knobs (environment):
//   GEOANON_FULL=1           - run the paper's full 900 s simulations
//   GEOANON_SIM_SECONDS=<s>  - override simulated seconds explicitly
//   GEOANON_SEEDS=<n>        - number of independent seeds to average

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "experiment/json.hpp"
#include "experiment/sweep.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

namespace geoanon::bench {

inline double sim_seconds(double dflt) {
    if (const char* s = std::getenv("GEOANON_SIM_SECONDS")) return std::atof(s);
    if (std::getenv("GEOANON_FULL")) return 900.0;
    return dflt;
}

inline int seed_count(int dflt) {
    if (const char* s = std::getenv("GEOANON_SEEDS")) return std::atoi(s);
    return dflt;
}

/// Configure the paper's §5.1 scenario at a given density and horizon.
inline workload::ScenarioConfig paper_scenario(workload::Scheme scheme,
                                               std::size_t num_nodes, double seconds,
                                               std::uint64_t seed) {
    workload::ScenarioConfig cfg;
    cfg.scheme = scheme;
    cfg.num_nodes = num_nodes;
    cfg.sim_seconds = seconds;
    cfg.traffic_stop_s = seconds - 20.0;
    cfg.seed = seed;
    // Benches measure the protocol, not the checker; keep timing comparable
    // to the pre-checker numbers.
    cfg.check_invariants = false;
    return cfg;
}

inline std::size_t jobs_arg(const util::CliArgs& args) {
    return static_cast<std::size_t>(args.get("jobs", std::int64_t{1}));
}

/// Execute a sweep with the unified --jobs / --trace flags.
inline std::vector<experiment::PointRecord> run_sweep(const experiment::SweepSpec& spec,
                                                      const util::CliArgs& args) {
    experiment::SweepRunner::Options opt;
    opt.jobs = jobs_arg(args);
    if (args.has("trace-dir")) {
        opt.trace_dir = args.get("trace-dir", std::string{});
        if (opt.trace_dir.empty() || opt.trace_dir == "true") opt.trace_dir = "traces";
    } else if (args.get("trace", false)) {
        opt.trace_dir = "traces";
    }
    if (!opt.trace_dir.empty())
        std::printf("tracing every run into %s/\n", opt.trace_dir.c_str());
    return experiment::SweepRunner(spec, opt).run();
}

/// Honor --json=PATH (and --perf) by writing the common sweep schema.
inline void maybe_write_json(const util::CliArgs& args, const std::string& bench_name,
                             const experiment::SweepSpec& spec,
                             const std::vector<experiment::PointRecord>& points) {
    if (!args.has("json")) return;
    const std::string path = args.get("json", std::string{});
    const bool perf = args.get("perf", false);
    if (experiment::write_text_file(
            path, experiment::sweep_to_json(bench_name, spec, points, perf)))
        std::printf("\nwrote %s\n", path.c_str());
}

inline void print_banner(const char* title, double seconds, int seeds) {
    std::printf("%s\n", title);
    std::printf("setup: 1500x300 m, radio 250 m, RWP <=20 m/s pause 60 s, "
                "30 CBR flows / 20 senders, %.0f s sim, %d seed(s)\n",
                seconds, seeds);
    std::printf("(set GEOANON_FULL=1 for the paper's full 900 s runs)\n\n");
}

}  // namespace geoanon::bench
