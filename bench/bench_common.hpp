#pragma once

// Shared helpers for the figure/table reproduction benches.
//
// Runtime knobs (environment):
//   GEOANON_FULL=1           - run the paper's full 900 s simulations
//   GEOANON_SIM_SECONDS=<s>  - override simulated seconds explicitly
//   GEOANON_SEEDS=<n>        - number of independent seeds to average

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

namespace geoanon::bench {

inline double sim_seconds(double dflt) {
    if (const char* s = std::getenv("GEOANON_SIM_SECONDS")) return std::atof(s);
    if (std::getenv("GEOANON_FULL")) return 900.0;
    return dflt;
}

inline int seed_count(int dflt) {
    if (const char* s = std::getenv("GEOANON_SEEDS")) return std::atoi(s);
    return dflt;
}

/// Configure the paper's §5.1 scenario at a given density and horizon.
inline workload::ScenarioConfig paper_scenario(workload::Scheme scheme,
                                               std::size_t num_nodes, double seconds,
                                               std::uint64_t seed) {
    workload::ScenarioConfig cfg;
    cfg.scheme = scheme;
    cfg.num_nodes = num_nodes;
    cfg.sim_seconds = seconds;
    cfg.traffic_stop_s = seconds - 20.0;
    cfg.seed = seed;
    // Benches measure the protocol, not the checker; keep timing comparable
    // to the pre-checker numbers.
    cfg.check_invariants = false;
    return cfg;
}

/// Mean result over several seeds (delivery fraction and latency).
struct SweepPoint {
    util::RunningStat delivery;
    util::RunningStat latency_ms;
    util::RunningStat p95_ms;
    util::RunningStat hops;
};

inline SweepPoint run_seeds(workload::Scheme scheme, std::size_t nodes, double seconds,
                            int seeds) {
    SweepPoint pt;
    for (int s = 0; s < seeds; ++s) {
        workload::ScenarioRunner runner(
            paper_scenario(scheme, nodes, seconds, 1000 + static_cast<std::uint64_t>(s)));
        const auto r = runner.run();
        pt.delivery.add(r.delivery_fraction);
        pt.latency_ms.add(r.avg_latency_ms);
        pt.p95_ms.add(r.p95_latency_ms);
        pt.hops.add(r.avg_hops);
    }
    return pt;
}

inline void print_banner(const char* title, double seconds, int seeds) {
    std::printf("%s\n", title);
    std::printf("setup: 1500x300 m, radio 250 m, RWP <=20 m/s pause 60 s, "
                "30 CBR flows / 20 senders, %.0f s sim, %d seed(s)\n",
                seconds, seeds);
    std::printf("(set GEOANON_FULL=1 for the paper's full 900 s runs)\n\n");
}

}  // namespace geoanon::bench
