// Privacy/overhead frontier: pseudonym-change countermeasures vs the offline
// trajectory-deanonymization attacker (DESIGN.md §16).
//
// Not a paper figure: the paper's §4 analysis stops at "the eavesdropper
// cannot tie locations to identities". This bench quantifies the stronger
// movement-linking threat — an attacker that stitches per-hello pseudonym
// sightings into trajectories with a max-speed gate — and the frontier each
// pseudonym policy buys against it:
//
//   per-hello    fresh pseudonym every ANT (the paper's baseline)
//   timed        pseudonym reused for rotate_interval (deliberately weak:
//                equal handles link for free, calibrating the attack)
//   mix-zone     per-hello rotation + hello silence inside fixed mix zones
//   virtual-pc   per-hello rotation + periodic per-node silent windows
//
// Each policy runs against the weak (online greedy) and strong (global
// matching) attacker. The bench doubles as the CI adversary smoke check: it
// exits nonzero unless both mix-zone and virtual-pc reduce the strong
// attacker's tracking success below the per-hello baseline — the frontier
// must actually move, at an overhead the table quantifies (suppressed hellos,
// delivery delta).

#include "bench_common.hpp"
#include "core/pseudonym_policy.hpp"

using namespace geoanon;

namespace {

core::PseudonymPolicy policy_for(int variant, const mobility::Area& area) {
    core::PseudonymPolicy pol;
    switch (variant) {
        case 0:  // per-hello: the default policy
            break;
        case 1:
            pol.kind = core::PseudonymPolicy::Kind::kTimed;
            pol.rotate_interval = util::SimTime::seconds(30.0);
            break;
        case 2:
            pol.kind = core::PseudonymPolicy::Kind::kMixZone;
            pol.zones = core::PseudonymPolicy::grid_layout(area, 3, 150.0);
            break;
        case 3:
            pol.kind = core::PseudonymPolicy::Kind::kVirtualMixZone;
            pol.vpc_period = util::SimTime::seconds(40.0);
            pol.vpc_silence = util::SimTime::seconds(8.0);
            break;
    }
    return pol;
}

}  // namespace

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv);
    const double seconds = bench::sim_seconds(300.0);
    const int seeds = bench::seed_count(2);
    bench::print_banner(
        "Privacy frontier: pseudonym policy x attacker strength (AGFW-ack)",
        seconds, seeds);
    std::printf("tracking = mean fraction of a node's lifetime its best-matching\n"
                "chain covers; anon-set = mean gate-passing candidates per link\n\n");

    experiment::SweepSpec spec;
    spec.base = bench::paper_scenario(workload::Scheme::kAgfwAck, 50, seconds, 1);
    spec.base.attach_observer = true;
    spec.axes = {
        experiment::Axis::variants(
            "policy", {"per-hello", "timed", "mix-zone", "virtual-pc"},
            [](workload::ScenarioConfig& cfg, double v) {
                cfg.agfw.pseudonym_policy =
                    policy_for(static_cast<int>(v), cfg.area);
            }),
        experiment::Axis::variants(
            "attacker", {"weak", "strong"},
            [](workload::ScenarioConfig& cfg, double v) {
                cfg.attack.linker.global_matching = static_cast<int>(v) == 1;
            }),
    };
    spec.seeds_per_point = static_cast<std::size_t>(seeds);
    spec.seed_base = 9100;

    const auto points = bench::run_sweep(spec, args);

    util::TablePrinter table({"policy", "attacker", "hellos", "suppressed",
                              "tracking", "precision", "anon-set", "path-err-m",
                              "delivery"});
    // Strong-attacker tracking per policy variant, for the frontier gate.
    double strong_tracking[4] = {0.0, 0.0, 0.0, 0.0};
    double strong_delivery[4] = {0.0, 0.0, 0.0, 0.0};
    for (const experiment::PointRecord& pt : points) {
        const int policy = static_cast<int>(pt.values[0]);
        const bool strong = static_cast<int>(pt.values[1]) == 1;
        const double tracking = pt.mean([](const workload::ScenarioResult& r) {
            return r.attack.tracking_success_rate;
        });
        const double delivery = pt.mean([](const workload::ScenarioResult& r) {
            return r.delivery_fraction;
        });
        if (strong) {
            strong_tracking[policy] = tracking;
            strong_delivery[policy] = delivery;
        }
        std::uint64_t hellos = 0, suppressed = 0;
        for (const experiment::RunRecord& run : pt.runs) {
            hellos += run.result.hello_sent;
            suppressed += run.result.hello_suppressed;
        }
        table.row()
            .cell(pt.labels[0])
            .cell(pt.labels[1])
            .cell(static_cast<long long>(hellos))
            .cell(static_cast<long long>(suppressed))
            .cell(tracking, 3)
            .cell(pt.mean([](const workload::ScenarioResult& r) {
                      return r.attack.link_precision;
                  }),
                  3)
            .cell(pt.mean([](const workload::ScenarioResult& r) {
                      return r.attack.mean_anonymity_set;
                  }),
                  2)
            .cell(pt.mean([](const workload::ScenarioResult& r) {
                      return r.attack.mean_path_error_m;
                  }),
                  1)
            .cell(delivery, 3);
    }
    table.print();

    bench::maybe_write_json(args, "privacy_frontier", spec, points);

    std::printf(
        "\nFrontier vs the strong attacker (baseline per-hello tracking %.3f,\n"
        "delivery %.3f):\n",
        strong_tracking[0], strong_delivery[0]);
    const char* names[4] = {"per-hello", "timed", "mix-zone", "virtual-pc"};
    for (int p = 1; p < 4; ++p) {
        std::printf("  %-10s tracking %+.3f, delivery %+.3f\n", names[p],
                    strong_tracking[p] - strong_tracking[0],
                    strong_delivery[p] - strong_delivery[0]);
    }
    std::printf(
        "\nExpected shape: timed reuse makes tracking easier (free links while\n"
        "the pseudonym is held); mix-zone and virtual-pc cut tracking below\n"
        "the per-hello baseline by breaking trajectories at silent windows,\n"
        "paying only the suppressed-hello overhead above.\n");

    // CI gate: the countermeasures must move the frontier.
    bool ok = true;
    for (int p : {2, 3}) {
        if (!(strong_tracking[p] < strong_tracking[0])) {
            std::fprintf(stderr,
                         "FAIL: %s tracking %.3f did not beat per-hello %.3f "
                         "under the strong attacker\n",
                         names[p], strong_tracking[p], strong_tracking[0]);
            ok = false;
        }
    }
    return ok ? 0 : 1;
}
