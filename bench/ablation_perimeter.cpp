// Extension — perimeter-mode recovery (the paper's §6 future work).
//
// "To avoid a simple dead end when local maximum happens, recovery
// strategies like perimeter forwarding [GPSR] could be applied. We consider
// that it should not be difficult to extend the scheme ... It will be our
// future work."
//
// This bench implements that extension (right-hand rule over the
// RNG-planarized anonymous neighbor table) and measures what it buys: in
// sparse networks greedy dead-ends are common and perimeter mode recovers
// them; in dense networks it is nearly inert.

#include "bench_common.hpp"

using namespace geoanon;

namespace {

workload::ScenarioResult run_variant(bool perimeter, std::size_t nodes, double seconds,
                                     std::uint64_t seed) {
    workload::ScenarioConfig cfg =
        bench::paper_scenario(workload::Scheme::kAgfwAck, nodes, seconds, seed);
    cfg.agfw.enable_perimeter = perimeter;
    workload::ScenarioRunner runner(cfg);
    return runner.run();
}

}  // namespace

int main() {
    const double seconds = bench::sim_seconds(180.0);
    const int seeds = bench::seed_count(2);
    std::printf("Extension: AGFW + perimeter recovery vs plain AGFW (greedy only)\n");
    std::printf("sim %.0f s, %d seed(s); sparse densities stress greedy dead ends\n\n",
                seconds, seeds);

    util::TablePrinter table({"nodes", "greedy delivery", "+perimeter delivery",
                              "greedy lat (ms)", "+perimeter lat (ms)", "perim entries",
                              "recoveries"});
    for (std::size_t nodes : {25u, 35u, 50u, 100u}) {
        util::RunningStat d_g, d_p, l_g, l_p;
        std::uint64_t entries = 0, recoveries = 0;
        for (int s = 0; s < seeds; ++s) {
            const auto g = run_variant(false, nodes, seconds, 100 + static_cast<std::uint64_t>(s));
            const auto p = run_variant(true, nodes, seconds, 100 + static_cast<std::uint64_t>(s));
            d_g.add(g.delivery_fraction);
            d_p.add(p.delivery_fraction);
            l_g.add(g.avg_latency_ms);
            l_p.add(p.avg_latency_ms);
            entries += p.perimeter_entries;
            recoveries += p.perimeter_recoveries;
        }
        table.row()
            .cell(static_cast<long long>(nodes))
            .cell(d_g.mean(), 3)
            .cell(d_p.mean(), 3)
            .cell(l_g.mean(), 2)
            .cell(l_p.mean(), 2)
            .cell(static_cast<long long>(entries))
            .cell(static_cast<long long>(recoveries));
    }
    table.print();

    std::printf(
        "\nReading: perimeter mode reliably routes around *contiguous voids*\n"
        "(tests/test_planar.cpp shows a deterministic case), but under random\n"
        "mobility most sparse-network greedy failures are genuine partitions\n"
        "that no face traversal can cross — and the NL-ACK rerouting already\n"
        "skirts transient voids. Net effect at these densities: roughly\n"
        "neutral, which is consistent with the paper's remark that greedy\n"
        "alone has satisfactory delivery at modest densities (§6). Anonymity\n"
        "is unaffected: the perimeter header adds positions, never identities.\n");
    return 0;
}
