// §5 crypto cost table — microbenchmarks of every cryptographic primitive
// the scheme uses, at the paper's parameters (RSA-512, 64-byte trapdoor).
//
// The paper charges 0.5 ms per public-key encryption and 8.5 ms per
// decryption (2005 portable hardware). Modern hardware is faster; the
// simulator charges the paper's numbers via CryptoCosts regardless, so these
// measurements document the real primitive costs alongside the model.

#include <benchmark/benchmark.h>

#include "crypto/engine.hpp"
#include "crypto/feistel.hpp"
#include "crypto/ring_signature.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "util/rng.hpp"

using namespace geoanon;
using namespace geoanon::crypto;

namespace {

/// Shared fixture state: 512-bit keys are expensive to generate, make once.
struct Keys {
    Keys() : rng(42) {
        for (int i = 0; i < 6; ++i) {
            pairs.push_back(rsa_generate(rng, 512));
            ring.push_back(pairs.back().pub);
        }
    }
    util::Rng rng;
    std::vector<RsaKeyPair> pairs;
    std::vector<RsaPublicKey> ring;
};

Keys& keys() {
    static Keys k;
    return k;
}

void BM_Sha256_1KiB(benchmark::State& state) {
    util::Bytes data(1024, 0xAB);
    for (auto _ : state) benchmark::DoNotOptimize(Sha256::hash(data));
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_RsaKeygen512(benchmark::State& state) {
    util::Rng rng(7);
    for (auto _ : state) benchmark::DoNotOptimize(rsa_generate(rng, 512));
}
BENCHMARK(BM_RsaKeygen512)->Unit(benchmark::kMillisecond);

void BM_RsaEncrypt512(benchmark::State& state) {
    auto& k = keys();
    const util::Bytes msg(32, 0x11);
    for (auto _ : state) benchmark::DoNotOptimize(rsa_encrypt(k.pairs[0].pub, k.rng, msg));
}
BENCHMARK(BM_RsaEncrypt512)->Unit(benchmark::kMicrosecond);

void BM_RsaDecrypt512(benchmark::State& state) {
    auto& k = keys();
    const util::Bytes msg(32, 0x11);
    const auto ct = rsa_encrypt(k.pairs[0].pub, k.rng, msg);
    for (auto _ : state) benchmark::DoNotOptimize(rsa_decrypt(k.pairs[0].priv, *ct));
}
BENCHMARK(BM_RsaDecrypt512)->Unit(benchmark::kMicrosecond);

void BM_TrapdoorOpen_Real(benchmark::State& state) {
    // The §3.2 destination test: one RSA decryption + padding/tag check.
    RealCryptoEngine engine(3, 512);
    engine.register_node(1);
    util::Rng rng(5);
    const util::Bytes payload(32, 0x22);
    const auto trapdoor = engine.make_trapdoor(1, payload, rng);
    for (auto _ : state) benchmark::DoNotOptimize(engine.try_open_trapdoor(1, trapdoor));
}
BENCHMARK(BM_TrapdoorOpen_Real)->Unit(benchmark::kMicrosecond);

void BM_TrapdoorOpen_Modeled(benchmark::State& state) {
    ModeledCryptoEngine engine(3, 512);
    engine.register_node(1);
    util::Rng rng(5);
    const util::Bytes payload(32, 0x22);
    const auto trapdoor = engine.make_trapdoor(1, payload, rng);
    for (auto _ : state) benchmark::DoNotOptimize(engine.try_open_trapdoor(1, trapdoor));
}
BENCHMARK(BM_TrapdoorOpen_Modeled)->Unit(benchmark::kMicrosecond);

void BM_RingSign(benchmark::State& state) {
    auto& k = keys();
    const std::size_t members = static_cast<std::size_t>(state.range(0));
    std::vector<RsaPublicKey> ring(k.ring.begin(),
                                   k.ring.begin() + static_cast<std::ptrdiff_t>(members));
    const util::Bytes msg(39, 0x33);  // a hello body
    for (auto _ : state)
        benchmark::DoNotOptimize(ring_sign(msg, ring, 0, k.pairs[0].priv, k.rng));
}
BENCHMARK(BM_RingSign)->Arg(2)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_RingVerify(benchmark::State& state) {
    auto& k = keys();
    const std::size_t members = static_cast<std::size_t>(state.range(0));
    std::vector<RsaPublicKey> ring(k.ring.begin(),
                                   k.ring.begin() + static_cast<std::ptrdiff_t>(members));
    const util::Bytes msg(39, 0x33);
    const auto sig = ring_sign(msg, ring, 0, k.pairs[0].priv, k.rng);
    for (auto _ : state) benchmark::DoNotOptimize(ring_verify(msg, ring, sig));
}
BENCHMARK(BM_RingVerify)->Arg(2)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_FeistelPermutation72B(benchmark::State& state) {
    const FeistelPermutation f(util::Bytes{1, 2, 3, 4}, 72);  // RST common domain
    util::Bytes block(72, 0x44);
    for (auto _ : state) benchmark::DoNotOptimize(f.encrypt(block));
}
BENCHMARK(BM_FeistelPermutation72B);

void BM_PseudonymGeneration(benchmark::State& state) {
    ModeledCryptoEngine engine(3, 512);
    std::uint64_t pr = 0;
    for (auto _ : state) benchmark::DoNotOptimize(engine.make_pseudonym(1, ++pr));
}
BENCHMARK(BM_PseudonymGeneration);

void BM_AlsRowEncrypt(benchmark::State& state) {
    // One anonymous location row: E_{K_B}(A, loc_A, ts), §3.3.
    RealCryptoEngine engine(3, 512);
    engine.register_node(1);
    util::Rng rng(5);
    const util::Bytes row(32, 0x55);
    for (auto _ : state) benchmark::DoNotOptimize(engine.encrypt_for(1, row, rng));
}
BENCHMARK(BM_AlsRowEncrypt)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
