// ALS failover — resolve success and recovery latency vs server-grid outage
// severity, with and without replication.
//
// Not a paper figure: §3.3 assumes the home grid always has a live server.
// This bench quantifies the replica set added on top — a single-grid ALS
// (cell = area width, so every node shares one home grid) is hit with an
// AlsOutage that crashes the inner core of the server region. Unreplicated
// stores lose the row with the crashed server; replicated stores keep copies
// on the surviving outer ring, and anti-entropy re-heals recovered servers.
//
// The bench doubles as the CI failover smoke check: it exits nonzero if any
// run violates a protocol invariant, or if an outage was scheduled and no
// replicated run ever recorded a failover (a failover sample = a resolve
// that needed more than one attempt or a fallback stage and still
// succeeded).

#include "bench_common.hpp"
#include "fault/fault.hpp"

using namespace geoanon;

namespace {

constexpr const char* kFailoverHist = "ls.failover.latency_ms";

const obs::MetricsSnapshot::Hist* find_hist(const workload::ScenarioResult& r,
                                            const std::string& name) {
    for (const auto& h : r.metrics.histograms)
        if (h.name == name) return &h;
    return nullptr;
}

double resolve_success(const workload::ScenarioResult& r) {
    const double total =
        static_cast<double>(r.ls.resolved_ok + r.ls.resolved_fail);
    return total > 0.0 ? static_cast<double>(r.ls.resolved_ok) / total : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv);
    const double seconds = bench::sim_seconds(180.0);
    const int seeds = bench::seed_count(2);
    bench::print_banner("ALS failover: resolve success vs outage severity x replication",
                        seconds, seeds);

    experiment::SweepSpec spec;
    spec.base = bench::paper_scenario(workload::Scheme::kAgfwAck, 40, seconds, 1);
    // This bench is exactly the fault-under-pressure case the checker exists
    // for; re-enable it (paper_scenario turns it off for timing parity).
    spec.base.check_invariants = true;
    spec.base.location_service = routing::LocationService::Mode::kAnonymous;
    // Light offered load: the unreplicated baseline storms with query
    // retries, and a saturated MAC queue would smear every metric here.
    spec.base.num_flows = 12;
    spec.base.num_senders = 8;
    spec.base.cbr_pps = 1.0;
    // Single home grid: one cell spanning the whole 1500 m width, so every
    // node's rows live in the same server region and one outage is total.
    spec.base.ls_cell_m = 1500.0;
    spec.base.ls_params.server_radius_m = 250.0;
    // Updates at 20 s: slow enough that surviving an outage takes the
    // replica set (the subject does not re-advertise right away), fast
    // enough that the unreplicated baseline works in the fault-free column.
    spec.base.ls_params.update_interval = util::SimTime::seconds(20.0);
    spec.base.ls_params.entry_ttl = util::SimTime::seconds(60.0);

    const double outage_at = seconds * 0.25;
    spec.axes = {
        experiment::Axis::numeric(
            "outage_s", {0.0, 45.0, 90.0},
            [outage_at](workload::ScenarioConfig& cfg, double d) {
                if (d <= 0.0) return;
                fault::FaultPlan::AlsOutage outage;
                outage.target = 0;  // single grid: same home center for all
                outage.at = util::SimTime::seconds(outage_at);
                outage.duration = util::SimTime::seconds(d);
                outage.radius_m = 150.0;  // inner core only; outer ring survives
                cfg.faults.als_outages.push_back(outage);
            }),
        experiment::Axis::variants(
            "replication", {"unreplicated", "replicated", "replicated+ae"},
            [](workload::ScenarioConfig& cfg, double v) {
                const int i = static_cast<int>(v);
                cfg.ls_params.replicate = i >= 1;
                cfg.ls_params.anti_entropy = i >= 2;
                cfg.ls_params.stale_grace =
                    i >= 2 ? util::SimTime::seconds(10.0) : util::SimTime{};
            }),
    };
    spec.seeds_per_point = static_cast<std::size_t>(seeds);
    spec.seed_base = 7000;

    const auto points = bench::run_sweep(spec, args);

    util::TablePrinter table({"outage-s", "replication", "resolve", "failovers",
                              "p50-ms", "p99-ms", "stale", "viol"});
    bool invariants_clean = true;
    std::uint64_t replicated_failovers = 0;
    bool outage_scheduled = false;
    for (const experiment::PointRecord& pt : points) {
        std::uint64_t failovers = 0, violations = 0, stale = 0;
        util::Sampler p50s, p99s;
        for (const experiment::RunRecord& run : pt.runs) {
            if (const auto* h = find_hist(run.result, kFailoverHist)) {
                failovers += h->count;
                if (h->count > 0) {
                    p50s.add(h->p50);
                    p99s.add(h->p99);
                }
            }
            violations += run.result.invariants.violations();
            stale += run.result.ls.stale_reads;
        }
        if (violations > 0) invariants_clean = false;
        if (pt.values[0] > 0.0) {
            outage_scheduled = true;
            if (pt.labels[1] != "unreplicated") replicated_failovers += failovers;
        }
        table.row()
            .cell(static_cast<long long>(pt.values[0]))
            .cell(pt.labels[1])
            .cell(pt.mean(resolve_success), 3)
            .cell(static_cast<long long>(failovers))
            .cell(p50s.count() ? p50s.mean() : 0.0, 1)
            .cell(p99s.count() ? p99s.mean() : 0.0, 1)
            .cell(static_cast<long long>(stale))
            .cell(static_cast<long long>(violations));
    }
    table.print();

    bench::maybe_write_json(args, "als_failover", spec, points);

    std::printf(
        "\nExpected shape: unreplicated resolve success collapses with outage\n"
        "duration while replicated stays high; failovers are nonzero exactly\n"
        "when replicas pick up queries the crashed core can no longer serve.\n");

    if (!invariants_clean) {
        std::fprintf(stderr, "FAIL: invariant violations under failover\n");
        return 1;
    }
    if (outage_scheduled && replicated_failovers == 0) {
        std::fprintf(stderr, "FAIL: outages scheduled but no failover was recorded\n");
        return 1;
    }
    return 0;
}
