// Figure 1(a) — End-to-end packet delivery fraction vs network density.
//
// Paper: GPSR-Greedy and AGFW-with-ACK deliver almost identically; the
// simple AGFW without acknowledgments is "not satisfactory" and degrades
// further as more nodes enter the network (collisions, hidden terminals).

#include "bench_common.hpp"

using namespace geoanon;

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv);
    const double seconds = bench::sim_seconds(300.0);
    const int seeds = bench::seed_count(2);
    bench::print_banner("Figure 1(a): packet delivery fraction vs number of nodes",
                        seconds, seeds);

    const std::vector<workload::Scheme> schemes{workload::Scheme::kGpsrGreedy,
                                                workload::Scheme::kAgfwNoAck,
                                                workload::Scheme::kAgfwAck};
    experiment::SweepSpec spec;
    spec.base = bench::paper_scenario(workload::Scheme::kGpsrGreedy, 50, seconds, 1);
    spec.axes = {experiment::Axis::nodes({50, 75, 100, 112, 125, 150}),
                 experiment::Axis::schemes(schemes)};
    spec.seeds_per_point = static_cast<std::size_t>(seeds);
    spec.seed_base = 1000;

    const auto points = bench::run_sweep(spec, args);

    const auto delivery = [](const workload::ScenarioResult& r) {
        return r.delivery_fraction;
    };
    util::TablePrinter table({"nodes", "gpsr-greedy", "agfw-noack", "agfw-ack"});
    for (std::size_t n = 0; n < spec.axes[0].values.size(); ++n) {
        const std::size_t base = n * schemes.size();
        table.row()
            .cell(static_cast<long long>(spec.axes[0].values[n]))
            .cell(points[base + 0].mean(delivery), 3)
            .cell(points[base + 1].mean(delivery), 3)
            .cell(points[base + 2].mean(delivery), 3);
    }
    table.print();

    bench::maybe_write_json(args, "fig1a_delivery", spec, points);
    std::printf(
        "\nExpected shape (paper): agfw-ack ~= gpsr-greedy at every density;\n"
        "agfw-noack well below both and worsening with density.\n");
    return 0;
}
