// Figure 1(a) — End-to-end packet delivery fraction vs network density.
//
// Paper: GPSR-Greedy and AGFW-with-ACK deliver almost identically; the
// simple AGFW without acknowledgments is "not satisfactory" and degrades
// further as more nodes enter the network (collisions, hidden terminals).

#include "bench_common.hpp"

using namespace geoanon;

int main() {
    const double seconds = bench::sim_seconds(300.0);
    const int seeds = bench::seed_count(2);
    bench::print_banner("Figure 1(a): packet delivery fraction vs number of nodes",
                        seconds, seeds);

    const std::vector<std::size_t> densities{50, 75, 100, 112, 125, 150};
    util::TablePrinter table({"nodes", "gpsr-greedy", "agfw-noack", "agfw-ack"});

    for (std::size_t nodes : densities) {
        const auto gpsr = bench::run_seeds(workload::Scheme::kGpsrGreedy, nodes, seconds, seeds);
        const auto noack = bench::run_seeds(workload::Scheme::kAgfwNoAck, nodes, seconds, seeds);
        const auto ack = bench::run_seeds(workload::Scheme::kAgfwAck, nodes, seconds, seeds);
        table.row()
            .cell(static_cast<long long>(nodes))
            .cell(gpsr.delivery.mean(), 3)
            .cell(noack.delivery.mean(), 3)
            .cell(ack.delivery.mean(), 3);
    }
    table.print();

    std::printf(
        "\nExpected shape (paper): agfw-ack ~= gpsr-greedy at every density;\n"
        "agfw-noack well below both and worsening with density.\n");
    return 0;
}
