// Engine scaling — event-kernel throughput, spatial-hash channel vs
// brute-force O(N) scan, and wheel-vs-heap differential validation.
//
// Four measurements, same machine, same seeds:
//
//  0. Kernel microbenchmark: K self-rescheduling timers with 40-byte
//     captures churning through the event queue with no protocol work at
//     all. Run once on the timer-wheel kernel and once on the binary-heap
//     kernel (GEOANON_HEAP_QUEUE's engine), giving the kernel-layer
//     events/sec ratio the timer wheel is accountable for.
//
//  1. Channel microbenchmark: N mobile radios beaconing over a bare Channel
//     (no MAC, no routing), in a sparse wide-area field with unit-disk
//     physics (carrier-sense range == decode range). This isolates the
//     neighbor-query cost the grid replaces: the brute channel visits all N
//     radios per transmission, the grid visits only the 9 surrounding cells.
//     A delivery digest (receiver id folded with the reception timestamp)
//     proves both channels produce the same delivery schedule, not just the
//     same counts. With --sweep=10000,100000,1000000 the same harness runs
//     grid-only at each count (routing off — this is how the 100k and 1M
//     points are measured; brute force at those sizes would be O(N^2)).
//
//  2. Full-scenario sweep: the complete AGFW stack (MAC, crypto, routing,
//     traps) at the base node count, run once per channel with identical
//     seeds. ScenarioResults must be bit-identical; the wall-clock ratio is
//     reported too, and is honest about Amdahl: protocol work shared by both
//     channels bounds the end-to-end gain well below the channel-layer ratio.
//
//  3. --differential: the same full scenario run on the timer-wheel kernel
//     and again on the binary-heap kernel (env toggled in-process between
//     the two serial runs); the deterministic result JSON must be
//     byte-identical. This is the acceptance gate for the kernel swap.
//
// Usage: scaling_grid [--nodes=500] [--seconds=60] [--degree=10] [--seeds=1]
//                     [--kernel-timers=10000] [--kernel-seconds=5]
//                     [--sweep=10000,100000] [--sweep-seconds=5]
//                     [--skip-brute] [--skip-scenario] [--differential]
//                     [--json=BENCH_scaling.json]

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numbers>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mobility/mobility.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

using namespace geoanon;

namespace {

/// Sparse-field parameters for the channel microbenchmark. Degree ~3 is a
/// wide-area sensor-scatter regime: few decodable neighbors, so per-frame
/// reception work is small and the neighbor query dominates — exactly the
/// load the spatial index exists for. Unit-disk physics keeps the energy
/// bookkeeping (shared by both channels) from masking the query cost.
constexpr double kChannelDegree = 3.0;
constexpr double kBeaconHz = 10.0;

// ---- Section 0: event-kernel churn -------------------------------------

struct KernelBenchResult {
    double wall_seconds{0};
    std::uint64_t events{0};
    double events_per_sec{0};
};

/// Self-rescheduling timer with a 40-byte state block — the simulator's
/// inline callback budget, and representative of real closures (a this
/// pointer plus a few ids). Each firing schedules a copy of itself.
struct ChurnTimer {
    sim::Simulator* s;
    util::SimTime period;
    std::uint64_t ctx[3];
    void operator()() { s->after(period, ChurnTimer{*this}); }
};
static_assert(sizeof(ChurnTimer) == 40);

KernelBenchResult run_kernel_bench(sim::QueueKind kind, std::size_t timers,
                                   double seconds) {
    sim::Simulator sim(kind);
    util::Rng rng(7);
    for (std::size_t i = 0; i < timers; ++i) {
        const auto period = util::SimTime::micros(500 + rng.uniform_int(0, 1000));
        sim.after(period, ChurnTimer{&sim, period, {i, i * 31, ~i}});
    }
    // geoanon-lint: begin-allow(wallclock) -- bench timing block: the events/sec column
    const auto t0 = std::chrono::steady_clock::now();
    sim.run_until(util::SimTime::seconds(seconds));
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    // geoanon-lint: end-allow(wallclock)
    KernelBenchResult out;
    out.wall_seconds = wall;
    out.events = sim.events_processed();
    out.events_per_sec = wall > 0.0 ? static_cast<double>(out.events) / wall : 0.0;
    return out;
}

// ---- Section 1: channel microbenchmark ---------------------------------

struct ChannelBenchResult {
    double wall_seconds{0};
    std::uint64_t events{0};
    double events_per_sec{0};
    std::uint64_t transmissions{0};
    std::uint64_t deliveries{0};
    std::uint64_t collisions{0};
    std::uint64_t digest{0};
};

/// Per-radio beacon tick owned by the bench (the scheduled event captures
/// only [this] — no heap-held self-owning closures).
struct BeaconRig {
    sim::Simulator* sim;
    phy::Radio* radio;
    double period;
    void tick() {
        phy::Frame f;
        f.wire_bytes = 100;
        if (!radio->transmitting()) radio->start_tx(f);
        sim->after(util::SimTime::seconds(period), [this] { tick(); });
    }
};

ChannelBenchResult run_channel_bench(bool brute, std::size_t n, double seconds) {
    sim::Simulator sim;
    phy::PhyParams params;
    params.brute_force = brute;
    params.cs_range_m = params.range_m;  // unit disk
    phy::Channel channel(sim, params);

    const double side = std::sqrt(static_cast<double>(n) * std::numbers::pi *
                                  params.range_m * params.range_m / kChannelDegree);
    const mobility::Area area{side, side};
    util::Rng rng(99);

    ChannelBenchResult out;
    std::vector<std::unique_ptr<mobility::RandomWaypoint>> movers;
    std::vector<std::unique_ptr<phy::Radio>> radios;
    movers.reserve(n);
    radios.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        mobility::RandomWaypoint::Params mp;
        mp.min_speed_mps = 1.0;
        mp.max_speed_mps = 20.0;
        mp.pause = util::SimTime::zero();
        movers.push_back(std::make_unique<mobility::RandomWaypoint>(
            area, area.random_point(rng), mp, rng.fork()));
        radios.push_back(std::make_unique<phy::Radio>(sim, channel, *movers.back()));
        radios.back()->set_mac_hooks(nullptr, nullptr, [&out, &sim, i](const phy::Frame&) {
            // Order-sensitive digest: any divergence in who hears what, when,
            // perturbs it.
            out.digest = (out.digest * 1099511628211ull) ^
                         (static_cast<std::uint64_t>(i) * 2654435761ull) ^
                         static_cast<std::uint64_t>(sim.now().ns());
        });
    }
    const double period = 1.0 / kBeaconHz;
    std::vector<BeaconRig> beacons;
    beacons.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        beacons.push_back(BeaconRig{&sim, radios[i].get(), period});
        BeaconRig* rig = &beacons.back();
        sim.at(util::SimTime::seconds(period * static_cast<double>(i) /
                                      static_cast<double>(n)),
               [rig] { rig->tick(); });
    }

    // geoanon-lint: begin-allow(wallclock) -- bench timing block: the speedup column; determinism is asserted on event counts, not wall time
    const auto t0 = std::chrono::steady_clock::now();
    sim.run_until(util::SimTime::seconds(seconds));
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    // geoanon-lint: end-allow(wallclock)
    out.events = sim.events_processed();
    out.events_per_sec =
        out.wall_seconds > 0.0 ? static_cast<double>(out.events) / out.wall_seconds : 0.0;
    out.transmissions = channel.stats().transmissions;
    out.deliveries = channel.stats().deliveries;
    out.collisions = channel.stats().collisions;
    return out;
}

std::vector<std::size_t> parse_sweep(const std::string& spec) {
    std::vector<std::size_t> out;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos) comma = spec.size();
        const std::string tok = spec.substr(pos, comma - pos);
        if (!tok.empty()) out.push_back(static_cast<std::size_t>(std::stoull(tok)));
        pos = comma + 1;
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv);
    const auto nodes = static_cast<std::size_t>(args.get("nodes", std::int64_t{500}));
    const double seconds = args.get("seconds", 60.0);
    const double degree = args.get("degree", 10.0);
    const double pause = args.get("pause", 0.0);
    const double pps = args.get("pps", 4.0);
    const int seeds = static_cast<int>(args.get("seeds", std::int64_t{1}));
    const bool skip_brute = args.has("skip-brute");
    const bool skip_scenario = args.has("skip-scenario");
    const bool differential = args.has("differential");
    const auto kernel_timers =
        static_cast<std::size_t>(args.get("kernel-timers", std::int64_t{10000}));
    const double kernel_seconds = args.get("kernel-seconds", 5.0);
    const std::vector<std::size_t> sweep = parse_sweep(args.get("sweep", std::string{}));
    const double sweep_seconds = args.get("sweep-seconds", 5.0);

    // ---- Section 0: kernel microbenchmark --------------------------------
    std::printf("Kernel microbenchmark: %zu self-rescheduling timers (40 B "
                "captures), %.0f sim-seconds\n\n",
                kernel_timers, kernel_seconds);
    const KernelBenchResult kern_wheel =
        run_kernel_bench(sim::QueueKind::kTimerWheel, kernel_timers, kernel_seconds);
    const KernelBenchResult kern_heap =
        run_kernel_bench(sim::QueueKind::kBinaryHeap, kernel_timers, kernel_seconds);
    const double kern_speedup = kern_heap.events_per_sec > 0.0
                                    ? kern_wheel.events_per_sec / kern_heap.events_per_sec
                                    : 0.0;
    {
        util::TablePrinter table({"kernel", "wall (s)", "events", "events/s"});
        table.row()
            .cell("wheel")
            .cell(kern_wheel.wall_seconds, 3)
            .cell(static_cast<long long>(kern_wheel.events))
            .cell(kern_wheel.events_per_sec, 0);
        table.row()
            .cell("heap")
            .cell(kern_heap.wall_seconds, 3)
            .cell(static_cast<long long>(kern_heap.events))
            .cell(kern_heap.events_per_sec, 0);
        table.print();
        std::printf("\nkernel speedup (wheel/heap): %.2fx\n", kern_speedup);
    }

    // ---- Section 1: channel microbenchmark -------------------------------
    std::printf("\nChannel microbenchmark: %zu mobile radios, %.0f s, "
                "%.0f Hz beacons, mean degree ~%.0f, unit disk\n\n",
                nodes, seconds, kBeaconHz, kChannelDegree);
    const ChannelBenchResult chan_grid = run_channel_bench(false, nodes, seconds);
    ChannelBenchResult chan_brute;
    double chan_speedup = 0.0;
    bool chan_identical = true;
    {
        util::TablePrinter table(
            {"channel", "wall (s)", "events/s", "tx", "rx", "collisions"});
        table.row()
            .cell("grid")
            .cell(chan_grid.wall_seconds, 3)
            .cell(chan_grid.events_per_sec, 0)
            .cell(static_cast<long long>(chan_grid.transmissions))
            .cell(static_cast<long long>(chan_grid.deliveries))
            .cell(static_cast<long long>(chan_grid.collisions));
        if (!skip_brute) {
            chan_brute = run_channel_bench(true, nodes, seconds);
            table.row()
                .cell("brute")
                .cell(chan_brute.wall_seconds, 3)
                .cell(chan_brute.events_per_sec, 0)
                .cell(static_cast<long long>(chan_brute.transmissions))
                .cell(static_cast<long long>(chan_brute.deliveries))
                .cell(static_cast<long long>(chan_brute.collisions));
            chan_speedup = chan_grid.wall_seconds > 0.0
                               ? chan_brute.wall_seconds / chan_grid.wall_seconds
                               : 0.0;
            chan_identical = chan_grid.digest == chan_brute.digest &&
                             chan_grid.transmissions == chan_brute.transmissions &&
                             chan_grid.deliveries == chan_brute.deliveries &&
                             chan_grid.collisions == chan_brute.collisions;
        }
        table.print();
        if (!skip_brute)
            std::printf("\nchannel speedup (brute/grid): %.2fx   "
                        "delivery schedule identical: %s\n",
                        chan_speedup, chan_identical ? "yes" : "NO — INDEX BUG");
    }

    // ---- Node-count sweep (routing off) ----------------------------------
    struct SweepPoint {
        std::size_t nodes;
        ChannelBenchResult r;
    };
    std::vector<SweepPoint> sweep_points;
    if (!sweep.empty()) {
        std::printf("\nNode sweep (grid channel, beacons only, %.0f s each):\n\n",
                    sweep_seconds);
        util::TablePrinter table({"nodes", "wall (s)", "events", "events/s", "tx"});
        for (const std::size_t n : sweep) {
            const ChannelBenchResult r = run_channel_bench(false, n, sweep_seconds);
            sweep_points.push_back({n, r});
            table.row()
                .cell(static_cast<long long>(n))
                .cell(r.wall_seconds, 3)
                .cell(static_cast<long long>(r.events))
                .cell(r.events_per_sec, 0)
                .cell(static_cast<long long>(r.transmissions));
        }
        table.print();
    }

    // ---- Section 2: full-scenario sweep ----------------------------------
    workload::ScenarioConfig base =
        bench::paper_scenario(workload::Scheme::kAgfwAck, nodes, seconds, 1);
    // Square area holding `nodes` at the requested mean neighbor degree.
    const double range = base.phy.range_m;
    const double side = std::sqrt(static_cast<double>(nodes) *
                                  std::numbers::pi * range * range / degree);
    base.area = mobility::Area{side, side};
    // Offered load scales with the network (the paper's 30 fixed flows are a
    // 50-node workload): 0.6 flows and 0.4 senders per node, as in §5.1.
    base.num_flows = nodes * 3 / 5;
    base.num_senders = nodes * 2 / 5;
    base.cbr_pps = pps;
    // Continuously mobile by default: a paused network lets every spatial
    // index look artificially cheap.
    base.pause_s = pause;

    std::vector<experiment::PointRecord> points;
    double scen_speedup = 0.0;
    bool scen_identical = true;
    const auto wall = [](const workload::ScenarioResult& r) { return r.perf.wall_seconds; };
    const auto eps = [](const workload::ScenarioResult& r) { return r.perf.events_per_sec; };
    if (!skip_scenario) {
        std::printf("\nFull-scenario sweep: %zu nodes, %.0f s, %.0fx%.0f m "
                    "(mean degree ~%.0f), %d seed(s)\n\n",
                    nodes, seconds, side, side, degree, seeds);

        experiment::SweepSpec spec;
        spec.base = base;
        spec.axes = {experiment::Axis::variants(
            "channel", skip_brute ? std::vector<std::string>{"grid"}
                                  : std::vector<std::string>{"grid", "brute"},
            [](workload::ScenarioConfig& cfg, double v) {
                cfg.phy.brute_force = static_cast<int>(v) == 1;
            })};
        spec.seeds_per_point = static_cast<std::size_t>(seeds);
        spec.seed_base = 42;

        // Serial on purpose: the two variants share the machine, so parallel
        // execution would skew the wall-clock comparison.
        points = experiment::SweepRunner(spec).run();

        util::TablePrinter table(
            {"channel", "wall (s)", "events/s", "events", "peak queue", "pdr"});
        for (const experiment::PointRecord& pt : points) {
            const auto& r0 = pt.runs.front().result;
            table.row()
                .cell(pt.labels[0])
                .cell(pt.mean(wall), 2)
                .cell(pt.mean(eps), 0)
                .cell(static_cast<long long>(r0.events_processed))
                .cell(static_cast<long long>(r0.perf.peak_queue_depth))
                .cell(r0.delivery_fraction, 3);
        }
        table.print();

        if (!skip_brute) {
            const double grid_wall = points[0].mean(wall);
            const double brute_wall = points[1].mean(wall);
            scen_speedup = grid_wall > 0.0 ? brute_wall / grid_wall : 0.0;
            for (int s = 0; s < seeds; ++s) {
                scen_identical = scen_identical &&
                                 experiment::result_to_json(points[0].runs[s].result) ==
                                     experiment::result_to_json(points[1].runs[s].result);
            }
            std::printf("\nscenario speedup (brute/grid): %.2fx   "
                        "results bit-identical: %s\n",
                        scen_speedup, scen_identical ? "yes" : "NO — INDEX BUG");
        }
    }

    // ---- Section 3: wheel-vs-heap differential ---------------------------
    bool diff_identical = true;
    if (differential) {
        std::printf("\nDifferential: full scenario on timer-wheel vs binary-heap "
                    "kernel (%zu nodes, %.0f s)...\n",
                    nodes, seconds);
        workload::ScenarioConfig diff_cfg = base;
        diff_cfg.seed = 42;
        // The kernel is chosen when each run constructs its Simulator, so
        // toggling the env var between the two serial runs selects it
        // in-process (same binary, same everything else).
        const char* prev = std::getenv("GEOANON_HEAP_QUEUE");
        unsetenv("GEOANON_HEAP_QUEUE");
        const workload::ScenarioResult wheel_res =
            workload::ScenarioRunner(diff_cfg).run();
        setenv("GEOANON_HEAP_QUEUE", "1", 1);
        const workload::ScenarioResult heap_res =
            workload::ScenarioRunner(diff_cfg).run();
        if (prev != nullptr)
            setenv("GEOANON_HEAP_QUEUE", prev, 1);
        else
            unsetenv("GEOANON_HEAP_QUEUE");
        diff_identical = experiment::result_to_json(wheel_res) ==
                         experiment::result_to_json(heap_res);
        std::printf("wheel vs heap results byte-identical: %s\n",
                    diff_identical ? "yes" : "NO — KERNEL BUG");
    }

    if (args.has("json")) {
        experiment::JsonWriter w;
        w.begin_object();
        w.key("bench").value("scaling_grid");
        w.key("nodes").value(static_cast<std::uint64_t>(nodes));
        w.key("seconds").value(seconds);
        w.key("kernel").begin_object();
        w.key("timers").value(static_cast<std::uint64_t>(kernel_timers));
        w.key("sim_seconds").value(kernel_seconds);
        w.key("wheel_events_per_sec").value(kern_wheel.events_per_sec);
        w.key("heap_events_per_sec").value(kern_heap.events_per_sec);
        w.key("events").value(kern_wheel.events);
        w.key("speedup").value(kern_speedup);
        w.end_object();
        w.key("channel").begin_object();
        w.key("mean_degree").value(kChannelDegree);
        w.key("beacon_hz").value(kBeaconHz);
        w.key("grid_wall_seconds").value(chan_grid.wall_seconds);
        w.key("grid_events_per_sec").value(chan_grid.events_per_sec);
        w.key("transmissions").value(chan_grid.transmissions);
        if (!skip_brute) {
            w.key("brute_wall_seconds").value(chan_brute.wall_seconds);
            w.key("speedup").value(chan_speedup);
            w.key("identical").value(chan_identical);
        }
        w.end_object();
        if (!sweep_points.empty()) {
            w.key("node_sweep").begin_array();
            for (const SweepPoint& p : sweep_points) {
                w.begin_object();
                w.key("nodes").value(static_cast<std::uint64_t>(p.nodes));
                w.key("sim_seconds").value(sweep_seconds);
                w.key("wall_seconds").value(p.r.wall_seconds);
                w.key("events").value(p.r.events);
                w.key("events_per_sec").value(p.r.events_per_sec);
                w.key("transmissions").value(p.r.transmissions);
                w.end_object();
            }
            w.end_array();
        }
        if (!skip_scenario) {
            w.key("scenario").begin_object();
            w.key("mean_degree").value(degree);
            w.key("area_side_m").value(side);
            for (const experiment::PointRecord& pt : points) {
                w.key(pt.labels[0]).begin_object();
                w.key("wall_seconds").value(pt.mean(wall));
                w.key("events_per_sec").value(pt.mean(eps));
                w.key("result");
                experiment::result_to_json(w, pt.runs.front().result, /*include_perf=*/true);
                w.end_object();
            }
            if (!skip_brute) {
                w.key("speedup").value(scen_speedup);
                w.key("results_identical").value(scen_identical);
            }
            w.end_object();
        }
        if (differential) {
            w.key("differential").begin_object();
            w.key("results_identical").value(diff_identical);
            w.end_object();
        }
        w.end_object();
        const std::string path = args.get("json", std::string{});
        if (experiment::write_text_file(path, w.str()))
            std::printf("wrote %s\n", path.c_str());
    }
    bool ok = diff_identical;
    if (!skip_brute) ok = ok && chan_identical && scen_identical;
    return ok ? 0 : 1;
}
