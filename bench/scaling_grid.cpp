// Engine scaling — spatial-hash channel vs brute-force O(N) scan.
//
// Two measurements, same machine, same seeds:
//
//  1. Channel microbenchmark: N mobile radios beaconing over a bare Channel
//     (no MAC, no routing), in a sparse wide-area field with unit-disk
//     physics (carrier-sense range == decode range). This isolates the
//     neighbor-query cost the grid replaces: the brute channel visits all N
//     radios per transmission, the grid visits only the 9 surrounding cells.
//     The headline speedup comes from here. A delivery digest (receiver id
//     folded with the reception timestamp) proves both channels produce the
//     same delivery schedule, not just the same counts.
//
//  2. Full-scenario sweep: the complete AGFW stack (MAC, crypto, routing,
//     traps) at the same node count, run once per channel with identical
//     seeds. ScenarioResults must be bit-identical; the wall-clock ratio is
//     reported too, and is honest about Amdahl: protocol work shared by both
//     channels bounds the end-to-end gain well below the channel-layer ratio.
//
// Usage: scaling_grid [--nodes=500] [--seconds=60] [--degree=10] [--seeds=1]
//                     [--skip-brute] [--json=BENCH_scaling.json]

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <numbers>
#include <vector>

#include "bench_common.hpp"
#include "mobility/mobility.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

using namespace geoanon;

namespace {

/// Sparse-field parameters for the channel microbenchmark. Degree ~3 is a
/// wide-area sensor-scatter regime: few decodable neighbors, so per-frame
/// reception work is small and the neighbor query dominates — exactly the
/// load the spatial index exists for. Unit-disk physics keeps the energy
/// bookkeeping (shared by both channels) from masking the query cost.
constexpr double kChannelDegree = 3.0;
constexpr double kBeaconHz = 10.0;

struct ChannelBenchResult {
    double wall_seconds{0};
    std::uint64_t transmissions{0};
    std::uint64_t deliveries{0};
    std::uint64_t collisions{0};
    std::uint64_t digest{0};
};

ChannelBenchResult run_channel_bench(bool brute, std::size_t n, double seconds) {
    sim::Simulator sim;
    phy::PhyParams params;
    params.brute_force = brute;
    params.cs_range_m = params.range_m;  // unit disk
    phy::Channel channel(sim, params);

    const double side = std::sqrt(static_cast<double>(n) * std::numbers::pi *
                                  params.range_m * params.range_m / kChannelDegree);
    const mobility::Area area{side, side};
    util::Rng rng(99);

    ChannelBenchResult out;
    std::vector<std::unique_ptr<mobility::RandomWaypoint>> movers;
    std::vector<std::unique_ptr<phy::Radio>> radios;
    std::vector<std::shared_ptr<std::function<void()>>> beacons;
    for (std::size_t i = 0; i < n; ++i) {
        mobility::RandomWaypoint::Params mp;
        mp.min_speed_mps = 1.0;
        mp.max_speed_mps = 20.0;
        mp.pause = util::SimTime::zero();
        movers.push_back(std::make_unique<mobility::RandomWaypoint>(
            area, area.random_point(rng), mp, rng.fork()));
        auto* mover = movers.back().get();
        radios.push_back(std::make_unique<phy::Radio>(
            sim, channel, [mover, &sim] { return mover->position_at(sim.now()); }));
        radios.back()->set_mac_hooks(nullptr, nullptr, [&out, &sim, i](const phy::Frame&) {
            // Order-sensitive digest: any divergence in who hears what, when,
            // perturbs it.
            out.digest = (out.digest * 1099511628211ull) ^
                         (static_cast<std::uint64_t>(i) * 2654435761ull) ^
                         static_cast<std::uint64_t>(sim.now().ns());
        });
    }
    const double period = 1.0 / kBeaconHz;
    for (std::size_t i = 0; i < n; ++i) {
        auto beacon = std::make_shared<std::function<void()>>();
        phy::Radio* radio = radios[i].get();
        auto* self = beacon.get();
        *self = [&sim, radio, self, period] {
            phy::Frame f;
            f.wire_bytes = 100;
            if (!radio->transmitting()) radio->start_tx(f);
            sim.after(util::SimTime::seconds(period), *self);
        };
        sim.at(util::SimTime::seconds(period * static_cast<double>(i) /
                                      static_cast<double>(n)),
               *self);
        beacons.push_back(beacon);
    }

    // geoanon-lint: begin-allow(wallclock) -- bench timing block: the speedup column; determinism is asserted on event counts, not wall time
    const auto t0 = std::chrono::steady_clock::now();
    sim.run_until(util::SimTime::seconds(seconds));
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    // geoanon-lint: end-allow(wallclock)
    out.transmissions = channel.stats().transmissions;
    out.deliveries = channel.stats().deliveries;
    out.collisions = channel.stats().collisions;
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv);
    const auto nodes = static_cast<std::size_t>(args.get("nodes", std::int64_t{500}));
    const double seconds = args.get("seconds", 60.0);
    const double degree = args.get("degree", 10.0);
    const double pause = args.get("pause", 0.0);
    const double pps = args.get("pps", 4.0);
    const int seeds = static_cast<int>(args.get("seeds", std::int64_t{1}));
    const bool skip_brute = args.has("skip-brute");

    // ---- Section 1: channel microbenchmark -------------------------------
    std::printf("Channel microbenchmark: %zu mobile radios, %.0f s, "
                "%.0f Hz beacons, mean degree ~%.0f, unit disk\n\n",
                nodes, seconds, kBeaconHz, kChannelDegree);
    const ChannelBenchResult chan_grid = run_channel_bench(false, nodes, seconds);
    ChannelBenchResult chan_brute;
    double chan_speedup = 0.0;
    bool chan_identical = true;
    {
        util::TablePrinter table({"channel", "wall (s)", "tx", "rx", "collisions"});
        table.row()
            .cell("grid")
            .cell(chan_grid.wall_seconds, 3)
            .cell(static_cast<long long>(chan_grid.transmissions))
            .cell(static_cast<long long>(chan_grid.deliveries))
            .cell(static_cast<long long>(chan_grid.collisions));
        if (!skip_brute) {
            chan_brute = run_channel_bench(true, nodes, seconds);
            table.row()
                .cell("brute")
                .cell(chan_brute.wall_seconds, 3)
                .cell(static_cast<long long>(chan_brute.transmissions))
                .cell(static_cast<long long>(chan_brute.deliveries))
                .cell(static_cast<long long>(chan_brute.collisions));
            chan_speedup = chan_grid.wall_seconds > 0.0
                               ? chan_brute.wall_seconds / chan_grid.wall_seconds
                               : 0.0;
            chan_identical = chan_grid.digest == chan_brute.digest &&
                             chan_grid.transmissions == chan_brute.transmissions &&
                             chan_grid.deliveries == chan_brute.deliveries &&
                             chan_grid.collisions == chan_brute.collisions;
        }
        table.print();
        if (!skip_brute)
            std::printf("\nchannel speedup (brute/grid): %.2fx   "
                        "delivery schedule identical: %s\n",
                        chan_speedup, chan_identical ? "yes" : "NO — INDEX BUG");
    }

    // ---- Section 2: full-scenario sweep ----------------------------------
    workload::ScenarioConfig base =
        bench::paper_scenario(workload::Scheme::kAgfwAck, nodes, seconds, 1);
    // Square area holding `nodes` at the requested mean neighbor degree.
    const double range = base.phy.range_m;
    const double side = std::sqrt(static_cast<double>(nodes) *
                                  std::numbers::pi * range * range / degree);
    base.area = mobility::Area{side, side};
    // Offered load scales with the network (the paper's 30 fixed flows are a
    // 50-node workload): 0.6 flows and 0.4 senders per node, as in §5.1.
    base.num_flows = nodes * 3 / 5;
    base.num_senders = nodes * 2 / 5;
    base.cbr_pps = pps;
    // Continuously mobile by default: a paused network lets every spatial
    // index look artificially cheap.
    base.pause_s = pause;

    std::printf("\nFull-scenario sweep: %zu nodes, %.0f s, %.0fx%.0f m "
                "(mean degree ~%.0f), %d seed(s)\n\n",
                nodes, seconds, side, side, degree, seeds);

    experiment::SweepSpec spec;
    spec.base = base;
    spec.axes = {experiment::Axis::variants(
        "channel", skip_brute ? std::vector<std::string>{"grid"}
                              : std::vector<std::string>{"grid", "brute"},
        [](workload::ScenarioConfig& cfg, double v) {
            cfg.phy.brute_force = static_cast<int>(v) == 1;
        })};
    spec.seeds_per_point = static_cast<std::size_t>(seeds);
    spec.seed_base = 42;

    // Serial on purpose: the two variants share the machine, so parallel
    // execution would skew the wall-clock comparison.
    const auto points = experiment::SweepRunner(spec).run();

    const auto wall = [](const workload::ScenarioResult& r) { return r.perf.wall_seconds; };
    const auto eps = [](const workload::ScenarioResult& r) { return r.perf.events_per_sec; };
    util::TablePrinter table(
        {"channel", "wall (s)", "events/s", "events", "peak queue", "pdr"});
    for (const experiment::PointRecord& pt : points) {
        const auto& r0 = pt.runs.front().result;
        table.row()
            .cell(pt.labels[0])
            .cell(pt.mean(wall), 2)
            .cell(pt.mean(eps), 0)
            .cell(static_cast<long long>(r0.events_processed))
            .cell(static_cast<long long>(r0.perf.peak_queue_depth))
            .cell(r0.delivery_fraction, 3);
    }
    table.print();

    double scen_speedup = 0.0;
    bool scen_identical = true;
    if (!skip_brute) {
        const double grid_wall = points[0].mean(wall);
        const double brute_wall = points[1].mean(wall);
        scen_speedup = grid_wall > 0.0 ? brute_wall / grid_wall : 0.0;
        for (int s = 0; s < seeds; ++s) {
            scen_identical = scen_identical &&
                             experiment::result_to_json(points[0].runs[s].result) ==
                                 experiment::result_to_json(points[1].runs[s].result);
        }
        std::printf("\nscenario speedup (brute/grid): %.2fx   "
                    "results bit-identical: %s\n",
                    scen_speedup, scen_identical ? "yes" : "NO — INDEX BUG");
    }

    if (args.has("json")) {
        experiment::JsonWriter w;
        w.begin_object();
        w.key("bench").value("scaling_grid");
        w.key("nodes").value(static_cast<std::uint64_t>(nodes));
        w.key("seconds").value(seconds);
        w.key("channel").begin_object();
        w.key("mean_degree").value(kChannelDegree);
        w.key("beacon_hz").value(kBeaconHz);
        w.key("grid_wall_seconds").value(chan_grid.wall_seconds);
        w.key("transmissions").value(chan_grid.transmissions);
        if (!skip_brute) {
            w.key("brute_wall_seconds").value(chan_brute.wall_seconds);
            w.key("speedup").value(chan_speedup);
            w.key("identical").value(chan_identical);
        }
        w.end_object();
        w.key("scenario").begin_object();
        w.key("mean_degree").value(degree);
        w.key("area_side_m").value(side);
        for (const experiment::PointRecord& pt : points) {
            w.key(pt.labels[0]).begin_object();
            w.key("wall_seconds").value(pt.mean(wall));
            w.key("events_per_sec").value(pt.mean(eps));
            w.key("result");
            experiment::result_to_json(w, pt.runs.front().result, /*include_perf=*/true);
            w.end_object();
        }
        if (!skip_brute) {
            w.key("speedup").value(scen_speedup);
            w.key("results_identical").value(scen_identical);
        }
        w.end_object();
        w.end_object();
        const std::string path = args.get("json", std::string{});
        if (experiment::write_text_file(path, w.str()))
            std::printf("wrote %s\n", path.c_str());
    }
    return !skip_brute && !(chan_identical && scen_identical) ? 1 : 0;
}
