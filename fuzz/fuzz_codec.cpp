// Fuzz harness for the packet codec (src/net/codec.cpp) — the one component
// that parses untrusted bytes.
//
// Two build modes share the same property checks:
//
//  - libFuzzer (clang only): configure with -DGEOANON_LIBFUZZER=ON; the
//    harness exports LLVMFuzzerTestOneInput and libFuzzer drives it.
//        ./build/fuzz/fuzz_codec fuzz/corpus_bin/
//  - standalone replayer (default, any compiler): a main() that replays the
//    checked-in hex corpus (fuzz/corpus/*.hex) or any files/directories given
//    on the command line, applying the same properties deterministically.
//    This is what CI and tests/test_codec_fuzz_regressions.cpp exercise, so
//    the corpus is covered even without libFuzzer.
//
// Properties enforced per input:
//  P1  decode_ex never crashes or over-reads (sanitizers catch violations);
//  P2  error and packet agree: packet engaged iff error == kOk;
//  P3  a decoded packet re-encodes, and the re-encoding decodes cleanly;
//  P4  re-encoding is a fixed point: encode(decode(encode(p))) == encode(p).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>

#include "net/codec.hpp"
#include "util/bytes.hpp"

namespace {

using geoanon::net::codec::decode_ex;
using geoanon::net::codec::DecodeError;
using geoanon::net::codec::encode;

/// Returns nullptr if all properties hold, else a description of the failure.
const char* check_one(std::span<const std::uint8_t> wire, bool include_trace) {
    const auto result = decode_ex(wire, include_trace);
    if (result.packet.has_value() != (result.error == DecodeError::kOk))
        return "P2: packet presence disagrees with error code";
    if (!result.packet) return nullptr;  // clean rejection

    const auto once = encode(*result.packet, /*include_trace=*/false);
    const auto again = decode_ex(once, /*include_trace=*/false);
    if (!again.packet) return "P3: re-encoded packet fails to decode";
    const auto twice = encode(*again.packet, /*include_trace=*/false);
    if (twice != once) return "P4: re-encoding is not a fixed point";
    return nullptr;
}

const char* check_both_modes(std::span<const std::uint8_t> wire) {
    if (const char* err = check_one(wire, /*include_trace=*/false)) return err;
    return check_one(wire, /*include_trace=*/true);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    if (const char* err = check_both_modes({data, size})) {
        std::fprintf(stderr, "property violated: %s\n", err);
        std::abort();
    }
    return 0;
}

#ifndef GEOANON_LIBFUZZER

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace {

/// Loads a corpus file: .hex files hold one hex string (whitespace ignored),
/// anything else is treated as raw bytes.
std::vector<std::uint8_t> load_input(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    if (path.extension() == ".hex") {
        std::string hex;
        for (char c : content)
            if (!std::isspace(static_cast<unsigned char>(c))) hex.push_back(c);
        if (auto bytes = geoanon::util::from_hex(hex)) return *bytes;
        std::fprintf(stderr, "%s: invalid hex corpus file\n", path.c_str());
        std::exit(2);
    }
    return {content.begin(), content.end()};
}

int replay_file(const std::filesystem::path& path, int& count) {
    const auto input = load_input(path);
    ++count;
    const auto result = decode_ex(input, /*include_trace=*/false);
    if (const char* err = check_both_modes(input)) {
        std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(), err);
        return 1;
    }
    std::printf("ok   %-40s %4zu bytes -> %s\n", path.filename().c_str(),
                input.size(), geoanon::net::codec::decode_error_name(result.error));
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    namespace fs = std::filesystem;
    std::vector<fs::path> roots;
    for (int i = 1; i < argc; ++i) roots.emplace_back(argv[i]);
    if (roots.empty()) roots.emplace_back(GEOANON_CORPUS_DIR);

    int failures = 0;
    int count = 0;
    for (const auto& root : roots) {
        if (fs::is_directory(root)) {
            std::vector<fs::path> files;
            for (const auto& entry : fs::directory_iterator(root))
                if (entry.is_regular_file()) files.push_back(entry.path());
            std::sort(files.begin(), files.end());
            for (const auto& f : files) failures += replay_file(f, count);
        } else if (fs::exists(root)) {
            failures += replay_file(root, count);
        } else {
            std::fprintf(stderr, "no such corpus input: %s\n", root.c_str());
            return 2;
        }
    }
    std::printf("%d corpus inputs, %d failures\n", count, failures);
    return failures == 0 ? 0 : 1;
}

#endif  // GEOANON_LIBFUZZER
