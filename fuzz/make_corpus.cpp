// Regenerates the checked-in fuzz seed corpus (fuzz/corpus/*.hex).
//
// The corpus has two halves:
//  - valid encodings of every PacketType and flag combination, produced by
//    the codec itself (seeds for mutation-based fuzzing, and regression
//    anchors for the replayer);
//  - deliberately malformed frames — truncated headers, oversized length
//    fields, bad type bytes, trailing garbage — each named after the
//    DecodeError it must map to, which tests/test_codec_fuzz_regressions.cpp
//    asserts.
//
// Usage: make_corpus <output-dir>   (idempotent; overwrites existing files)

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "net/codec.hpp"
#include "util/bytes.hpp"

using geoanon::net::kInvalidNode;
using geoanon::net::Packet;
using geoanon::net::PacketType;
using geoanon::util::Bytes;
using geoanon::util::SimTime;
using geoanon::util::Vec2;

namespace {

std::filesystem::path g_out_dir;
int g_written = 0;

void emit(const std::string& name, const Bytes& wire) {
    const auto path = g_out_dir / (name + ".hex");
    std::ofstream out(path);
    out << geoanon::util::to_hex(wire) << "\n";
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    ++g_written;
}

Packet base_agfw_data() {
    Packet p;
    p.type = PacketType::kAgfwData;
    p.dst_loc = Vec2{812.5, 137.25};
    p.next_hop_pseudonym = 0x0000A1B2C3D4E5ULL;
    p.trapdoor = Bytes{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02};
    p.body = Bytes(16, 0xAB);
    return p;
}

void valid_seeds() {
    using geoanon::net::codec::encode;

    Packet hello;
    hello.type = PacketType::kGpsrHello;
    hello.src_id = 7;
    hello.hello_loc = Vec2{10.0, 20.0};
    hello.hello_ts = SimTime::seconds(1.5);
    emit("valid_gpsr_hello", encode(hello));

    Packet data;
    data.type = PacketType::kGpsrData;
    data.src_id = 3;
    data.dst_id = 9;
    data.dst_loc = Vec2{100.0, 200.0};
    data.body = Bytes(8, 0x5A);
    emit("valid_gpsr_data", encode(data));

    Packet ahello;
    ahello.type = PacketType::kAgfwHello;
    ahello.hello_pseudonym = 0x00001234567890ULL & 0xFFFFFFFFFFFFULL;
    ahello.hello_loc = Vec2{55.5, 66.25};
    ahello.hello_ts = SimTime::seconds(2.0);
    emit("valid_agfw_hello", encode(ahello));

    Packet vhello = ahello;
    vhello.hello_velocity = Vec2{1.5, -2.5};
    emit("valid_agfw_hello_velocity", encode(vhello));

    Packet shello = vhello;
    shello.auth = Bytes(32, 0xC3);
    shello.ring_members = {11, 22, 33, 44, 55};
    emit("valid_agfw_hello_ring_signed", encode(shello));

    emit("valid_agfw_data", encode(base_agfw_data()));

    Packet perim = base_agfw_data();
    perim.perimeter_mode = true;
    perim.perimeter_entry = Vec2{400.0, 150.0};
    perim.prev_hop_loc = Vec2{380.0, 160.0};
    perim.perimeter_hops = 5;
    emit("valid_agfw_data_perimeter", encode(perim));

    // §3.2 "last forwarding attempt": pseudonym 0 broadcast near the target.
    Packet last = base_agfw_data();
    last.next_hop_pseudonym = 0;
    emit("valid_agfw_data_last_attempt", encode(last));

    Packet ack;
    ack.type = PacketType::kAgfwAck;
    ack.ack_uids = {0x1111111111111111ULL, 0x2222222222222222ULL, 3};
    emit("valid_agfw_ack_batch", encode(ack));

    Packet up;
    up.type = PacketType::kLocUpdate;
    up.next_hop_pseudonym = 0x0000F0E1D2C3B4ULL;
    up.grid = 12;
    up.dst_loc = Vec2{900.0, 150.0};
    up.ls_payload = Bytes(24, 0x77);  // anonymous row: E_{K_B}(A, loc_A, ts)
    emit("valid_als_update", encode(up));

    Packet plain_up = up;
    plain_up.ls_payload.clear();
    plain_up.ls_subject = 17;
    plain_up.ls_subject_loc = Vec2{333.0, 111.0};
    plain_up.created_at = SimTime::seconds(4.0);
    emit("valid_dlm_update", encode(plain_up));

    Packet req;
    req.type = PacketType::kLocRequest;
    req.next_hop_pseudonym = 0x00000A0B0C0D0EULL;
    req.grid = 3;
    req.dst_loc = Vec2{450.0, 90.0};
    req.requester_loc = Vec2{100.0, 100.0};
    req.ls_query_id = 42;
    req.ls_index = Bytes(16, 0x3C);  // indexed ALS row E_{K_B}(A,B)
    emit("valid_als_request_indexed", encode(req));

    Packet reqf = req;
    reqf.ls_index.clear();  // index-free variant sends length 0
    emit("valid_als_request_indexfree", encode(reqf));

    Packet rep;
    rep.type = PacketType::kLocReply;
    rep.next_hop_pseudonym = 0x00005566778899ULL;
    rep.grid = 3;
    rep.dst_loc = Vec2{100.0, 100.0};
    rep.ls_query_id = 42;
    rep.ls_payload = Bytes(24, 0x9F);
    emit("valid_als_reply", encode(rep));

    Packet repl = up;
    repl.type = PacketType::kLocReplicate;
    repl.ls_assist = true;
    emit("valid_als_replicate_assist", encode(repl));

    Packet digest;
    digest.type = PacketType::kLocDigest;
    digest.next_hop_pseudonym = 0x0000DEADBEEF01ULL;
    digest.grid = 12;
    digest.dst_loc = Vec2{900.0, 150.0};
    digest.ls_digest = {{0x1122334455667788ULL, 5'000'000'000ULL},
                        {0x99AABBCCDDEEFF00ULL, 9'500'000'000ULL}};
    digest.ls_assist = true;  // digests travel one hop, assist-flagged
    emit("valid_als_digest", encode(digest));

    emit("valid_agfw_data_traced", encode(base_agfw_data(), /*include_trace=*/true));
}

void malformed_seeds() {
    using geoanon::net::codec::encode;

    emit("reject_empty", Bytes{});
    emit("reject_bad_type", Bytes{0xFF, 0x00, 0x01});

    // Truncated headers: every prefix class of an AGFW data frame.
    const Bytes data = encode(base_agfw_data());
    emit("reject_truncated_type_only", Bytes{data[0]});
    emit("reject_truncated_mid_loc", Bytes(data.begin(), data.begin() + 9));
    emit("reject_truncated_mid_pseudonym",
         Bytes(data.begin(), data.begin() + 1 + 1 + 16 + 3));

    // Oversized u16 length fields. Layout of kAgfwData after the 24-byte
    // fixed header (type, flags, loc, n): [td_len u16][trapdoor][body].
    {
        Bytes big = data;
        const std::size_t td_len_at = 1 + 1 + 16 + 6;
        big[td_len_at] = 0xFF;  // claims 65281+ bytes of trapdoor
        big[td_len_at + 1] = 0x01;
        emit("reject_oversized_trapdoor_len", big);
    }
    {
        Packet hello;
        hello.type = PacketType::kAgfwHello;
        hello.hello_pseudonym = 0x42;
        hello.hello_loc = Vec2{1.0, 2.0};
        hello.hello_ts = SimTime::seconds(1.0);
        hello.auth = Bytes(8, 0xAA);
        hello.ring_members = {1, 2, 3};
        Bytes wire = encode(hello);
        const std::size_t auth_len_at = 1 + 1 + 6 + 16 + 8;  // flags..ts
        wire[auth_len_at] = 0xFF;
        wire[auth_len_at + 1] = 0xFF;
        emit("reject_oversized_auth_len", wire);
    }
    {
        Packet ack;
        ack.type = PacketType::kAgfwAck;
        ack.ack_uids = {1};
        Bytes wire = encode(ack);
        wire[1] = 0x7F;  // claims 32513 uids with 8 bytes present
        wire[2] = 0x01;
        emit("reject_oversized_ack_count", wire);
    }

    // Digest whose row count claims more rows than the frame carries.
    {
        Packet digest;
        digest.type = PacketType::kLocDigest;
        digest.next_hop_pseudonym = 0x42;
        digest.grid = 1;
        digest.dst_loc = Vec2{100.0, 100.0};
        digest.ls_digest = {{0xAAULL, 1'000'000'000ULL}};
        Bytes wire = encode(digest);
        const std::size_t count_at = wire.size() - 16 - 2;  // one 16-byte row
        wire[count_at] = 0xFF;
        wire[count_at + 1] = 0xFF;
        emit("reject_oversized_digest_count", wire);
    }

    // Zero-pseudonym (last-hop) frame with a truncated trapdoor: the
    // last-attempt path must still reject cleanly.
    {
        Packet last = base_agfw_data();
        last.next_hop_pseudonym = 0;
        Bytes wire = encode(last);
        wire.resize(1 + 1 + 16 + 6 + 1);  // cut inside td_len
        emit("reject_last_attempt_truncated_len", wire);
    }

    // Fixed-layout packet with trailing garbage.
    {
        Packet hello;
        hello.type = PacketType::kGpsrHello;
        hello.src_id = 1;
        hello.hello_loc = Vec2{0.0, 0.0};
        hello.hello_ts = SimTime::zero();
        Bytes wire = encode(hello);
        wire.push_back(0xEE);
        emit("reject_trailing_bytes", wire);
    }
}

}  // namespace

int main(int argc, char** argv) {
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
        return 2;
    }
    g_out_dir = argv[1];
    std::filesystem::create_directories(g_out_dir);
    valid_seeds();
    malformed_seeds();
    std::printf("wrote %d corpus files to %s\n", g_written, g_out_dir.c_str());
    return 0;
}
