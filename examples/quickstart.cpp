// Quickstart: run the paper's anonymous geographic routing (AGFW + ANT) on a
// 50-node mobile ad hoc network and compare it against the GPSR-Greedy
// baseline on delivery fraction and latency.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart

#include <cstdio>

#include "util/table.hpp"
#include "workload/scenario.hpp"

using namespace geoanon;

int main() {
    std::printf("geoanon quickstart: 50 nodes, 1500x300 m, 120 s, 30 CBR flows\n\n");

    util::TablePrinter table({"scheme", "delivery", "avg latency (ms)", "avg hops",
                              "collisions", "ctrl bytes"});

    for (workload::Scheme scheme : {workload::Scheme::kGpsrGreedy,
                                    workload::Scheme::kAgfwNoAck,
                                    workload::Scheme::kAgfwAck}) {
        workload::ScenarioConfig cfg;
        cfg.scheme = scheme;
        cfg.num_nodes = 50;
        cfg.sim_seconds = 120.0;
        cfg.traffic_stop_s = 110.0;
        cfg.seed = 42;

        workload::ScenarioRunner runner(cfg);
        const workload::ScenarioResult r = runner.run();

        table.row()
            .cell(workload::scheme_name(scheme))
            .cell(r.delivery_fraction, 3)
            .cell(r.avg_latency_ms, 2)
            .cell(r.avg_hops, 2)
            .cell(static_cast<long long>(r.mac_collisions))
            .cell(static_cast<long long>(r.control_bytes));
    }

    table.print();
    std::printf(
        "\nAGFW delivers data without any identity on the air: pseudonymous\n"
        "hellos (ANT), trapdoor-addressed data (AGFW), broadcast MAC frames.\n");
    return 0;
}
