// Quickstart: run the paper's anonymous geographic routing (AGFW + ANT) on a
// 50-node mobile ad hoc network and compare it against the GPSR-Greedy
// baseline on delivery fraction and latency.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
//         ./build/examples/quickstart --trace=out.json   # flight-record the
//         AGFW-ACK run; open out.json in https://ui.perfetto.dev or inspect
//         it with ./build/tools/trace_query

#include <cstdio>

#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

using namespace geoanon;

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv);
    std::string trace_path;
    if (args.has("trace")) {
        trace_path = args.get("trace", std::string{});
        if (trace_path.empty() || trace_path == "true") trace_path = "out.json";
    }

    std::printf("geoanon quickstart: 50 nodes, 1500x300 m, 120 s, 30 CBR flows\n\n");

    util::TablePrinter table({"scheme", "delivery", "avg latency (ms)", "avg hops",
                              "collisions", "ctrl bytes"});

    for (workload::Scheme scheme : {workload::Scheme::kGpsrGreedy,
                                    workload::Scheme::kAgfwNoAck,
                                    workload::Scheme::kAgfwAck}) {
        workload::ScenarioConfig cfg;
        cfg.scheme = scheme;
        cfg.num_nodes = 50;
        cfg.sim_seconds = 120.0;
        cfg.traffic_stop_s = 110.0;
        cfg.seed = 42;
        // Flight-record the headline scheme when --trace is given.
        cfg.trace.enabled =
            !trace_path.empty() && scheme == workload::Scheme::kAgfwAck;

        workload::ScenarioRunner runner(cfg);
        const workload::ScenarioResult r = runner.run();

        table.row()
            .cell(workload::scheme_name(scheme))
            .cell(r.delivery_fraction, 3)
            .cell(r.avg_latency_ms, 2)
            .cell(r.avg_hops, 2)
            .cell(static_cast<long long>(r.mac_collisions))
            .cell(static_cast<long long>(r.control_bytes));

        if (cfg.trace.enabled &&
            util::write_text_file(trace_path, runner.chrome_trace_json())) {
            std::printf("wrote %s (%llu events) — load it in ui.perfetto.dev\n",
                        trace_path.c_str(),
                        static_cast<unsigned long long>(runner.trace_recorder()->recorded()));
        }
    }

    table.print();
    std::printf(
        "\nAGFW delivers data without any identity on the air: pseudonymous\n"
        "hellos (ANT), trapdoor-addressed data (AGFW), broadcast MAC frames.\n");
    return 0;
}
