// density_sweep — reproduce the paper's density experiment at your own scale.
//
// Sweeps network density for any subset of the three schemes and prints
// delivery fraction, latency and the MAC-level causes behind them (RTS/CTS
// retries for GPSR, NL-ACK retransmissions for AGFW).
//
// Usage: density_sweep [--nodes=50,75,100,112,125,150] [--seconds=120]
//                      [--seed=7] [--scheme=all|gpsr|agfw-ack|agfw-noack]

#include <cstdio>
#include <sstream>

#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

using namespace geoanon;

namespace {

std::vector<std::size_t> parse_list(const std::string& csv) {
    std::vector<std::size_t> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) out.push_back(std::stoul(item));
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv);
    const auto densities = parse_list(args.get("nodes", std::string{"50,75,100,112,125,150"}));
    const double seconds = args.get("seconds", 120.0);
    const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{7}));
    const std::string scheme_arg = args.get("scheme", std::string{"all"});

    std::vector<workload::Scheme> schemes;
    if (scheme_arg == "all" || scheme_arg == "gpsr")
        schemes.push_back(workload::Scheme::kGpsrGreedy);
    if (scheme_arg == "all" || scheme_arg == "agfw-noack")
        schemes.push_back(workload::Scheme::kAgfwNoAck);
    if (scheme_arg == "all" || scheme_arg == "agfw-ack")
        schemes.push_back(workload::Scheme::kAgfwAck);
    if (schemes.empty()) {
        std::fprintf(stderr, "unknown --scheme=%s\n", scheme_arg.c_str());
        return 1;
    }

    util::TablePrinter table({"nodes", "scheme", "delivery", "lat (ms)", "p95 (ms)", "hops",
                              "mac retries", "nl retx", "collisions"});
    for (std::size_t nodes : densities) {
        for (workload::Scheme scheme : schemes) {
            workload::ScenarioConfig cfg;
            cfg.scheme = scheme;
            cfg.num_nodes = nodes;
            cfg.sim_seconds = seconds;
            cfg.traffic_stop_s = seconds - 10.0;
            cfg.seed = seed;
            workload::ScenarioRunner runner(cfg);
            const auto r = runner.run();
            table.row()
                .cell(static_cast<long long>(nodes))
                .cell(workload::scheme_name(scheme))
                .cell(r.delivery_fraction, 3)
                .cell(r.avg_latency_ms, 2)
                .cell(r.p95_latency_ms, 2)
                .cell(r.avg_hops, 2)
                .cell(static_cast<long long>(r.mac_retries))
                .cell(static_cast<long long>(r.nl_retransmissions))
                .cell(static_cast<long long>(r.mac_collisions));
        }
    }
    table.print();
    return 0;
}
