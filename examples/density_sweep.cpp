// density_sweep — reproduce the paper's density experiment at your own scale.
//
// Sweeps network density for any subset of the three schemes and prints
// delivery fraction, latency and the MAC-level causes behind them (RTS/CTS
// retries for GPSR, NL-ACK retransmissions for AGFW). The sweep is a
// declarative SweepSpec executed by SweepRunner, so --jobs=N fans the runs
// out over N threads with byte-identical output to a serial run.
//
// Usage: density_sweep [--nodes=50,75,100,112,125,150] [--seconds=120]
//                      [--seed=7] [--seeds=1] [--scheme=all|gpsr|agfw-ack|agfw-noack]
//                      [--jobs=1] [--json=PATH]

#include <cstdio>
#include <sstream>

#include "experiment/json.hpp"
#include "experiment/sweep.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace geoanon;

namespace {

std::vector<std::size_t> parse_list(const std::string& csv) {
    std::vector<std::size_t> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) out.push_back(std::stoul(item));
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv);
    const auto densities = parse_list(args.get("nodes", std::string{"50,75,100,112,125,150"}));
    const double seconds = args.get("seconds", 120.0);
    const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{7}));
    const auto seeds = static_cast<std::size_t>(args.get("seeds", std::int64_t{1}));
    const std::string scheme_arg = args.get("scheme", std::string{"all"});

    std::vector<workload::Scheme> schemes;
    if (scheme_arg == "all" || scheme_arg == "gpsr")
        schemes.push_back(workload::Scheme::kGpsrGreedy);
    if (scheme_arg == "all" || scheme_arg == "agfw-noack")
        schemes.push_back(workload::Scheme::kAgfwNoAck);
    if (scheme_arg == "all" || scheme_arg == "agfw-ack")
        schemes.push_back(workload::Scheme::kAgfwAck);
    if (schemes.empty()) {
        std::fprintf(stderr, "unknown --scheme=%s\n", scheme_arg.c_str());
        return 1;
    }

    experiment::SweepSpec spec;
    spec.base.sim_seconds = seconds;
    spec.base.traffic_stop_s = seconds - 10.0;
    spec.axes = {experiment::Axis::nodes(densities),
                 experiment::Axis::schemes(schemes)};
    spec.seeds_per_point = seeds;
    spec.seed_base = seed;

    experiment::SweepRunner::Options options;
    options.jobs = static_cast<std::size_t>(args.get("jobs", std::int64_t{1}));
    const auto points = experiment::SweepRunner(spec, options).run();

    util::TablePrinter table({"nodes", "scheme", "delivery", "lat (ms)", "p95 (ms)", "hops",
                              "mac retries", "nl retx", "collisions"});
    for (const experiment::PointRecord& pt : points) {
        const auto mean = [&](auto field) {
            return pt.mean([field](const workload::ScenarioResult& r) {
                return static_cast<double>(r.*field);
            });
        };
        table.row()
            .cell(pt.labels[0])
            .cell(pt.labels[1])
            .cell(mean(&workload::ScenarioResult::delivery_fraction), 3)
            .cell(mean(&workload::ScenarioResult::avg_latency_ms), 2)
            .cell(mean(&workload::ScenarioResult::p95_latency_ms), 2)
            .cell(mean(&workload::ScenarioResult::avg_hops), 2)
            .cell(static_cast<long long>(mean(&workload::ScenarioResult::mac_retries)))
            .cell(static_cast<long long>(mean(&workload::ScenarioResult::nl_retransmissions)))
            .cell(static_cast<long long>(mean(&workload::ScenarioResult::mac_collisions)));
    }
    table.print();

    if (args.has("json")) {
        const std::string path = args.get("json", std::string{});
        if (experiment::write_text_file(
                path, experiment::sweep_to_json("density_sweep", spec, points)))
            std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}
