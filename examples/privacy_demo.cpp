// privacy_demo — watch a passive eavesdropper track people.
//
// Runs the same mobile network three times: GPSR-Greedy (identities in every
// beacon and data header), full AGFW (pseudonyms + anonymous MAC), and a
// deliberately broken AGFW that leaks real MAC source addresses — the §3.2
// correlation attack scenario. Prints what the sniffer learned in each case,
// including a per-victim tracking profile for the baseline.
//
// Usage: privacy_demo [--nodes=50] [--seconds=120] [--seed=11]

#include <cstdio>

#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

using namespace geoanon;

namespace {

workload::ScenarioResult run_case(workload::Scheme scheme, bool anonymous_mac,
                                  std::size_t nodes, double seconds, std::uint64_t seed) {
    workload::ScenarioConfig cfg;
    cfg.scheme = scheme;
    cfg.num_nodes = nodes;
    cfg.sim_seconds = seconds;
    cfg.traffic_stop_s = seconds - 10.0;
    cfg.seed = seed;
    cfg.anonymous_mac = anonymous_mac;
    cfg.attach_eavesdropper = true;
    workload::ScenarioRunner runner(cfg);
    return runner.run();
}

}  // namespace

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv);
    const auto nodes = static_cast<std::size_t>(args.get("nodes", std::int64_t{50}));
    const double seconds = args.get("seconds", 120.0);
    const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{11}));

    std::printf("A passive sniffer overhears every transmission on a %zu-node\n", nodes);
    std::printf("MANET for %.0f simulated seconds. What can it learn?\n\n", seconds);

    struct Case {
        const char* name;
        const char* story;
        workload::Scheme scheme;
        bool anon_mac;
    };
    const Case cases[] = {
        {"gpsr-greedy", "identities ride every beacon and data header",
         workload::Scheme::kGpsrGreedy, true},
        {"agfw (full)", "pseudonymous hellos, trapdoor data, anonymous MAC",
         workload::Scheme::kAgfwAck, true},
        {"agfw + MAC leak", "same, but frames expose the sender's MAC address",
         workload::Scheme::kAgfwAck, false},
    };

    util::TablePrinter table({"scheme", "identity sightings", "nodes localized",
                              "tracking coverage", "pseudonym->MAC links"});
    for (const Case& c : cases) {
        const auto r = run_case(c.scheme, c.anon_mac, nodes, seconds, seed);
        table.row()
            .cell(c.name)
            .cell(static_cast<long long>(r.adversary.identity_sightings))
            .cell(static_cast<long long>(r.adversary.nodes_ever_localized))
            .cell(r.adversary.mean_tracking_coverage, 3)
            .cell(static_cast<long long>(r.adversary.mac_pseudonym_links));
        std::printf("%-16s : %s\n", c.name, c.story);
    }
    std::printf("\n");
    table.print();

    std::printf(
        "\nWith GPSR the sniffer effectively owns a live location feed for\n"
        "every node. Full AGFW reduces its take to unlinkable pseudonyms.\n"
        "The MAC-leak run shows why §3.2 insists on broadcast source\n"
        "addresses: one leaked address re-links the whole pseudonym chain.\n");
    return 0;
}
