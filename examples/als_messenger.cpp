// als_messenger — the full anonymous stack, end to end, with real crypto.
//
// Two users ("alice", node 0, and "bob", node 15) on a 20-node static mesh.
// Bob periodically updates the Anonymous Location Service with rows encrypted
// for his anticipated contacts (§3.3); Alice resolves Bob's location through
// ALS — without revealing her identity to the location server or relays —
// then sends him messages via Anonymous Greedy Forwarding with genuine
// RSA-512 trapdoors and, optionally, ring-signed hellos.
//
// Usage: als_messenger [--messages=3] [--authenticated] [--index-free]

#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "core/agfw.hpp"
#include "crypto/engine.hpp"
#include "mobility/mobility.hpp"
#include "net/network.hpp"
#include "util/cli.hpp"

using namespace geoanon;
using core::AgfwAgent;
using net::NodeId;
using util::SimTime;
using util::Vec2;

int main(int argc, char** argv) {
    const util::CliArgs args(argc, argv);
    const int messages = static_cast<int>(args.get("messages", std::int64_t{3}));
    const bool authenticated = args.get("authenticated", false);
    const bool index_free = args.get("index-free", false);

    std::printf("Building a 20-node mesh with genuine RSA-512 credentials");
    std::printf("%s...\n", authenticated ? " and ring-signed hellos" : "");

    net::Network network(phy::PhyParams{}, 99);
    crypto::RealCryptoEngine engine(424242, 512);

    std::vector<Vec2> positions;
    for (int xi = 0; xi < 10; ++xi)
        for (int yi = 0; yi < 2; ++yi)
            positions.push_back(Vec2{75.0 + xi * 150.0, 75.0 + yi * 150.0});

    std::vector<crypto::NodeIdNum> universe;
    for (std::size_t i = 0; i < positions.size(); ++i) {
        engine.register_node(i);
        universe.push_back(i);
    }
    std::printf("issued %zu certificates from the toy CA\n\n", universe.size());

    const NodeId alice = 0, bob = 15;
    mac::MacParams mac_params;
    mac_params.use_rtscts = false;
    mac_params.anonymous_source = true;

    AgfwAgent::Params params;
    params.authenticated_hello = authenticated;
    params.ring_k = 3;

    const routing::GridMap grid(mobility::Area{1500, 300}, 300.0);
    std::vector<AgfwAgent*> agents;
    int received = 0;

    for (const Vec2& pos : positions) {
        net::Node& node = network.add_node(
            std::make_unique<mobility::StationaryMobility>(pos), mac_params);
        auto agent = std::make_unique<AgfwAgent>(
            node, params, engine, universe,
            [](NodeId) -> std::optional<Vec2> { return std::nullopt; },
            [&](NodeId at, const net::Packet& pkt) {
                if (at != bob) return;
                ++received;
                std::printf("[%7.2f s] bob: got message #%u after %u hops: \"%.*s\"\n",
                            network.sim().now().to_seconds(), pkt.seq, pkt.hops,
                            static_cast<int>(pkt.body.size()),
                            reinterpret_cast<const char*>(pkt.body.data()));
            });
        // Everyone anticipates alice and bob as possible contacts (§3.3:
        // updaters must anticipate their potential senders).
        agent->enable_location_service(
            index_free ? routing::LocationService::Mode::kAnonymousIndexFree
                       : routing::LocationService::Mode::kAnonymous,
            grid, routing::LocationService::Params{}, {alice, bob});
        agents.push_back(agent.get());
        node.set_agent(std::move(agent));
    }
    network.start_agents();

    std::printf("warming up: hellos build the anonymous neighbor tables,\n");
    std::printf("everyone pushes encrypted location rows to their home grids...\n");
    network.sim().run_until(SimTime::seconds(20));
    std::printf("[%7.2f s] alice's ANT has %zu pseudonymous entries\n\n",
                network.sim().now().to_seconds(), agents[alice]->ant().size());

    for (int m = 0; m < messages; ++m) {
        const double when = 20.0 + m * 5.0;
        network.sim().at(SimTime::seconds(when), [&, m] {
            std::printf("[%7.2f s] alice -> bob: resolving location via ALS (%s)\n",
                        network.sim().now().to_seconds(),
                        index_free ? "index-free" : "indexed");
            const std::string text = "hello from alice #" + std::to_string(m);
            agents[alice]->send_data(bob, 0, static_cast<std::uint32_t>(m),
                                     net::Bytes(text.begin(), text.end()));
        });
    }
    network.sim().run_until(SimTime::seconds(20.0 + messages * 5.0 + 10.0));

    const auto& ls = agents[alice]->location_service()->stats();
    const auto& st = agents[alice]->stats();
    std::printf("\nsummary: %d/%d messages delivered\n", received, messages);
    std::printf("  alice: ALS queries %llu (ok %llu), data broadcasts %llu\n",
                static_cast<unsigned long long>(ls.queries_sent),
                static_cast<unsigned long long>(ls.resolved_ok),
                static_cast<unsigned long long>(st.forwarded));
    std::printf("  bob:   trapdoor opens %llu\n",
                static_cast<unsigned long long>(agents[bob]->stats().trapdoor_opens));
    std::printf("\nNo identity ever appeared on the air: ALS rows and queries are\n"
                "encrypted/indexed blobs; data packets carry only loc_d, a next-hop\n"
                "pseudonym and an RSA trapdoor that only bob can open.\n");
    return received == messages ? 0 : 1;
}
