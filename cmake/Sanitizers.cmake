# Sanitizer and warning hardening for all geoanon targets.
#
# GEOANON_SANITIZE is a semicolon- or comma-separated list drawn from
# {address, undefined, thread, leak}. The flags are applied globally (compile
# and link) so every target — src/, tests/, bench/, examples/, fuzz/ — runs
# under the same instrumentation. address+undefined compose; thread excludes
# address/leak (the runtimes conflict), which is diagnosed here rather than at
# link time.
#
#   cmake -B build-asan -S . -DGEOANON_SANITIZE="address;undefined"
#   cmake -B build-tsan -S . -DGEOANON_SANITIZE=thread
#
# GEOANON_WERROR=ON promotes warnings to errors (the CI gate).

set(GEOANON_SANITIZE "" CACHE STRING
    "Sanitizers to enable: list of address;undefined;thread;leak")
option(GEOANON_WERROR "Treat compiler warnings as errors" OFF)

if(GEOANON_WERROR)
  add_compile_options(-Werror)
endif()

if(GEOANON_SANITIZE)
  # Accept comma separators too: -DGEOANON_SANITIZE=address,undefined.
  string(REPLACE "," ";" _geoanon_san_list "${GEOANON_SANITIZE}")

  set(_geoanon_san_flags "")
  foreach(_san IN LISTS _geoanon_san_list)
    string(STRIP "${_san}" _san)
    if(_san STREQUAL "address" OR _san STREQUAL "undefined" OR
       _san STREQUAL "thread" OR _san STREQUAL "leak")
      list(APPEND _geoanon_san_flags "-fsanitize=${_san}")
    elseif(_san)
      message(FATAL_ERROR "GEOANON_SANITIZE: unknown sanitizer '${_san}' "
                          "(expected address, undefined, thread, or leak)")
    endif()
  endforeach()

  if("-fsanitize=thread" IN_LIST _geoanon_san_flags AND
     ("-fsanitize=address" IN_LIST _geoanon_san_flags OR
      "-fsanitize=leak" IN_LIST _geoanon_san_flags))
    message(FATAL_ERROR "GEOANON_SANITIZE: thread cannot combine with "
                        "address/leak (incompatible runtimes)")
  endif()

  if(_geoanon_san_flags)
    # Keep frames and symbols so sanitizer reports carry usable stacks.
    list(APPEND _geoanon_san_flags -fno-omit-frame-pointer -g)
    add_compile_options(${_geoanon_san_flags})
    add_link_options(${_geoanon_san_flags})
    # UBSan: any report is a bug; die loudly instead of logging and moving on.
    if("-fsanitize=undefined" IN_LIST _geoanon_san_flags)
      add_compile_options(-fno-sanitize-recover=undefined)
      add_link_options(-fno-sanitize-recover=undefined)
    endif()
    message(STATUS "geoanon: sanitizers enabled: ${GEOANON_SANITIZE}")
  endif()
endif()
