// Self-test suite for tools/geoanon_lint: one positive and one negative
// fixture per rule, suppression-comment handling, JSON output schema, and
// CLI exit codes. Fixtures are in-memory strings fed straight to the
// scanner; only the exit-code tests shell out to the real binary.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint.hpp"

using geoanon::lint::FileInput;
using geoanon::lint::Finding;
using geoanon::lint::Rule;
using geoanon::lint::scan_file;
using geoanon::lint::scan_files;

namespace {

std::vector<Finding> scan(const std::string& path, const std::string& content) {
    return scan_file(FileInput{path, content});
}

bool has_rule(const std::vector<Finding>& fs, Rule r) {
    for (const Finding& f : fs)
        if (f.rule == r) return true;
    return false;
}

std::size_t count_rule(const std::vector<Finding>& fs, Rule r) {
    std::size_t n = 0;
    for (const Finding& f : fs)
        if (f.rule == r) ++n;
    return n;
}

}  // namespace

// ---------------------------------------------------------------------------
// GL001 wallclock
// ---------------------------------------------------------------------------

TEST(LintWallClock, FlagsChronoClocks) {
    const auto fs = scan("src/x.cpp",
                         "void f() { auto t = std::chrono::steady_clock::now(); }\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, Rule::kWallClock);
    EXPECT_EQ(fs[0].line, 1u);
}

TEST(LintWallClock, SimTimeIsClean) {
    const auto fs = scan("src/x.cpp",
                         "SimTime t = sim.now(); auto s = t.to_seconds();\n");
    EXPECT_FALSE(has_rule(fs, Rule::kWallClock));
}

TEST(LintWallClock, CommentAndStringMentionsAreClean) {
    const auto fs = scan("src/x.cpp",
                         "// uses steady_clock? no.\n"
                         "const char* s = \"system_clock\";\n");
    EXPECT_FALSE(has_rule(fs, Rule::kWallClock));
}

// ---------------------------------------------------------------------------
// GL002 ambient-rng
// ---------------------------------------------------------------------------

TEST(LintAmbientRng, FlagsRandAndRandomDevice) {
    const auto fs = scan("src/x.cpp",
                         "int a = rand();\n"
                         "std::random_device rd;\n");
    EXPECT_EQ(count_rule(fs, Rule::kAmbientRng), 2u);
}

TEST(LintAmbientRng, UtilRngIsExemptAndMemberCallsClean) {
    EXPECT_TRUE(scan("src/util/rng.cpp", "int a = rand();\n").empty());
    // A project method named rand() on an object is not libc rand().
    const auto fs = scan("src/x.cpp", "auto v = gen.rand();\n");
    EXPECT_FALSE(has_rule(fs, Rule::kAmbientRng));
}

// ---------------------------------------------------------------------------
// GL003 unseeded-engine
// ---------------------------------------------------------------------------

TEST(LintUnseededEngine, FlagsDefaultConstructed) {
    EXPECT_TRUE(has_rule(scan("src/x.cpp", "std::mt19937 gen;\n"),
                         Rule::kUnseededEngine));
    EXPECT_TRUE(has_rule(scan("src/x.cpp", "std::mt19937 gen{};\n"),
                         Rule::kUnseededEngine));
    EXPECT_TRUE(has_rule(scan("src/x.cpp", "auto g = std::mt19937();\n"),
                         Rule::kUnseededEngine));
}

TEST(LintUnseededEngine, SeededIsClean) {
    const auto fs = scan("src/x.cpp", "std::mt19937 gen(seed);\n"
                                      "std::mt19937_64 g2{0x1234u};\n");
    EXPECT_FALSE(has_rule(fs, Rule::kUnseededEngine));
}

// ---------------------------------------------------------------------------
// GL004 unordered-iter
// ---------------------------------------------------------------------------

TEST(LintUnorderedIter, FlagsRangeForOverUnorderedMember) {
    const auto fs = scan("src/x.cpp",
                         "std::unordered_map<int, int> seen_;\n"
                         "void f() { for (const auto& [k, v] : seen_) emit(k); }\n");
    ASSERT_TRUE(has_rule(fs, Rule::kUnorderedIter));
}

TEST(LintUnorderedIter, FlagsIteratorWalk) {
    const auto fs = scan("src/x.cpp",
                         "std::unordered_set<int> ids_;\n"
                         "void f() { for (auto it = ids_.begin(); it != ids_.end(); ++it) {} }\n");
    EXPECT_TRUE(has_rule(fs, Rule::kUnorderedIter));
}

TEST(LintUnorderedIter, VectorIterationAndLookupsAreClean) {
    const auto fs = scan("src/x.cpp",
                         "std::unordered_map<int, int> seen_;\n"
                         "std::vector<int> v_;\n"
                         "void f() {\n"
                         "  for (int x : v_) use(x);\n"
                         "  auto it = seen_.find(3);\n"
                         "  seen_[4] = 5;\n"
                         "}\n");
    EXPECT_FALSE(has_rule(fs, Rule::kUnorderedIter));
}

TEST(LintUnorderedIter, SiblingHeaderDeclarationsCoverTheCpp) {
    // Member declared unordered in foo.hpp, iterated in foo.cpp: the
    // cross-file resolution in scan_files must connect the two.
    std::vector<FileInput> files;
    files.push_back({"src/a/foo.hpp",
                     "class C { std::unordered_map<int, int> table_; };\n"});
    files.push_back({"src/a/foo.cpp",
                     "void C::dump() { for (const auto& [k, v] : table_) emit(k); }\n"});
    const auto fs = scan_files(files);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, Rule::kUnorderedIter);
    EXPECT_EQ(fs[0].file, "src/a/foo.cpp");
}

// ---------------------------------------------------------------------------
// GL005 pointer-key
// ---------------------------------------------------------------------------

TEST(LintPointerKey, FlagsPointerKeyedOrderedContainers) {
    EXPECT_TRUE(has_rule(scan("src/x.cpp", "std::map<const Node*, int> m_;\n"),
                         Rule::kPointerKey));
    EXPECT_TRUE(has_rule(scan("src/x.cpp", "std::set<Event*> s_;\n"),
                         Rule::kPointerKey));
}

TEST(LintPointerKey, ValueKeysAndPointerValuesAreClean) {
    const auto fs = scan("src/x.cpp",
                         "std::map<std::string, Node*> by_name_;\n"
                         "std::set<std::uint64_t> ids_;\n");
    EXPECT_FALSE(has_rule(fs, Rule::kPointerKey));
}

// ---------------------------------------------------------------------------
// GL006 float-accum
// ---------------------------------------------------------------------------

TEST(LintFloatAccum, FlagsFloatUse) {
    const auto fs = scan("src/x.cpp", "float sum = 0.f;\n");
    EXPECT_TRUE(has_rule(fs, Rule::kFloatAccum));
}

TEST(LintFloatAccum, DoubleIsClean) {
    EXPECT_TRUE(scan("src/x.cpp", "double sum = 0.0; sum += x;\n").empty());
}

// ---------------------------------------------------------------------------
// GL010 privacy-taint
// ---------------------------------------------------------------------------

namespace {

/// Self-contained fixture prelude: one source, one sanitizer, one wire sink
/// field, one sink function — the shapes the real annotations declare in
/// node.hpp / engine.hpp / packet.hpp / codec.hpp.
const char* kTaintPrelude =
    "struct Pkt {\n"
    "  // geoanon: sink(wire)\n"
    "  std::uint64_t uid{0};\n"
    "  // geoanon: sink(wire)\n"
    "  std::vector<std::uint64_t> ack_uids;\n"
    "};\n"
    "// geoanon: source(node-id)\n"
    "std::uint64_t my_id();\n"
    "// geoanon: sanitizer(prp)\n"
    "std::uint64_t scramble(std::uint64_t v);\n"
    "// geoanon: sink(air)\n"
    "void transmit(std::uint64_t v);\n";

std::string taint_fixture(const std::string& body) {
    return std::string(kTaintPrelude) + body;
}

}  // namespace

TEST(LintPrivacyTaint, FlagsDirectSourceToSinkAssignment) {
    const auto fs = scan(
        "src/x.cpp",
        taint_fixture("void f(Pkt& p) { p.uid = my_id(); }\n"));
    ASSERT_EQ(count_rule(fs, Rule::kPrivacyTaint), 1u);
    for (const Finding& f : fs) {
        if (f.rule != Rule::kPrivacyTaint) continue;
        EXPECT_EQ(f.taint_source, "node-id:my_id");
        EXPECT_EQ(f.taint_sink, "wire:uid");
        EXPECT_GT(f.taint_source_line, 0u);
    }
}

TEST(LintPrivacyTaint, FlagsTaintThroughLocalVariable) {
    const auto fs = scan(
        "src/x.cpp",
        taint_fixture("void f(Pkt& p) {\n"
                      "  std::uint64_t v = my_id();\n"
                      "  p.uid = v;\n"
                      "}\n"));
    EXPECT_EQ(count_rule(fs, Rule::kPrivacyTaint), 1u);
}

TEST(LintPrivacyTaint, FlagsSinkFunctionCallAndContainerInsert) {
    const auto fs = scan(
        "src/x.cpp",
        taint_fixture("void f(Pkt& p) {\n"
                      "  transmit(my_id());\n"
                      "  p.ack_uids.push_back(my_id());\n"
                      "}\n"));
    EXPECT_EQ(count_rule(fs, Rule::kPrivacyTaint), 2u);
}

TEST(LintPrivacyTaint, SanitizerCallCleansTheFlow) {
    const auto fs = scan(
        "src/x.cpp",
        taint_fixture("void f(Pkt& p) {\n"
                      "  p.uid = scramble(my_id());\n"
                      "  std::uint64_t v = scramble(my_id());\n"
                      "  transmit(v);\n"
                      "}\n"));
    EXPECT_FALSE(has_rule(fs, Rule::kPrivacyTaint));
}

TEST(LintPrivacyTaint, ReassignmentKillsTaint) {
    const auto fs = scan(
        "src/x.cpp",
        taint_fixture("void f(Pkt& p) {\n"
                      "  std::uint64_t v = my_id();\n"
                      "  v = 7;\n"
                      "  p.uid = v;\n"
                      "}\n"));
    EXPECT_FALSE(has_rule(fs, Rule::kPrivacyTaint));
}

TEST(LintPrivacyTaint, HelperReturningTaintBecomesDerivedSource) {
    // The unfixed fresh_uid() shape: a helper that returns identity-derived
    // bits must propagate taint to its callers via the derived-source
    // fixpoint.
    const auto fs = scan(
        "src/x.cpp",
        taint_fixture("std::uint64_t fresh() { return (my_id() << 32) | 1; }\n"
                      "void f(Pkt& p) { p.uid = fresh(); }\n"));
    ASSERT_EQ(count_rule(fs, Rule::kPrivacyTaint), 1u);
    for (const Finding& f : fs)
        if (f.rule == Rule::kPrivacyTaint)
            EXPECT_EQ(f.taint_source, "derived:fresh");
}

TEST(LintPrivacyTaint, SanitizedHelperIsNotADerivedSource) {
    const auto fs = scan(
        "src/x.cpp",
        taint_fixture(
            "std::uint64_t fresh() { return scramble((my_id() << 32) | 1); }\n"
            "void f(Pkt& p) { p.uid = fresh(); }\n"));
    EXPECT_FALSE(has_rule(fs, Rule::kPrivacyTaint));
}

TEST(LintPrivacyTaint, CrossFileIndexConnectsAnnotationToUse) {
    // Annotations live in one file, the leak in another: scan_files must
    // build the symbol index across the whole set.
    std::vector<FileInput> files;
    files.push_back({"src/a/ids.hpp",
                     "// geoanon: source(node-id)\n"
                     "std::uint64_t my_id();\n"});
    files.push_back({"src/a/pkt.hpp",
                     "struct Pkt {\n"
                     "  // geoanon: sink(wire)\n"
                     "  std::uint64_t uid{0};\n"
                     "};\n"});
    files.push_back({"src/b/leak.cpp",
                     "void f(Pkt& p) { p.uid = my_id(); }\n"});
    const auto fs = scan_files(files);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, Rule::kPrivacyTaint);
    EXPECT_EQ(fs[0].file, "src/b/leak.cpp");
}

TEST(LintPrivacyTaint, SuppressionApplies) {
    const auto fs = scan(
        "src/x.cpp",
        taint_fixture("void f(Pkt& p) {\n"
                      "  // geoanon-lint: allow(privacy-taint) -- fixture reason\n"
                      "  p.uid = my_id();\n"
                      "}\n"));
    EXPECT_FALSE(has_rule(fs, Rule::kPrivacyTaint));
}

// ---------------------------------------------------------------------------
// Annotation grammar (feeds GL010/GL030; errors surface as GL000)
// ---------------------------------------------------------------------------

TEST(LintAnnotation, MalformedAnnotationsAreFindings) {
    // Empty tag.
    EXPECT_TRUE(has_rule(
        scan("src/x.cpp", "// geoanon: source()\nint my_id();\n"),
        Rule::kSuppression));
    // Unknown verb.
    EXPECT_TRUE(has_rule(
        scan("src/x.cpp", "// geoanon: frobnicate(x)\nint my_id();\n"),
        Rule::kSuppression));
}

TEST(LintAnnotation, NamespaceProseIsNotAnAnnotation) {
    // Comments mentioning the geoanon:: namespace must not parse as
    // annotations.
    const auto fs = scan(
        "src/x.cpp", "// geoanon::lint::scan_file drives this pass\nint x;\n");
    EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// GL020 layer-dag
// ---------------------------------------------------------------------------

TEST(LintLayerDag, FlagsUpwardInclude) {
    const auto fs = scan("src/util/helper.cpp",
                         "#include \"core/agfw.hpp\"\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, Rule::kLayerDag);
    EXPECT_EQ(fs[0].layer_from, "util");
    EXPECT_EQ(fs[0].layer_to, "core");
    EXPECT_EQ(fs[0].line, 1u);
}

TEST(LintLayerDag, FlagsEqualRankSiblingInclude) {
    const auto fs = scan("src/crypto/engine.cpp",
                         "#include \"sim/simulator.hpp\"\n");
    EXPECT_TRUE(has_rule(fs, Rule::kLayerDag));
}

TEST(LintLayerDag, DownwardSameLayerAndSystemIncludesAreClean) {
    const auto fs = scan("src/core/agfw.cpp",
                         "#include <vector>\n"
                         "#include \"core/agfw.hpp\"\n"
                         "#include \"crypto/engine.hpp\"\n"
                         "#include \"util/rng.hpp\"\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintLayerDag, WireSublayerSitsBelowPhyAndMac) {
    // phy/mac may include the passive wire types (net/packet.hpp etc.)
    // even though the net *layer* ranks above them.
    EXPECT_TRUE(scan("src/phy/channel.cpp",
                     "#include \"net/packet.hpp\"\n"
                     "#include \"net/codec.hpp\"\n")
                    .empty());
    // But the active net layer (node.hpp) stays off-limits from below.
    EXPECT_TRUE(has_rule(scan("src/phy/channel.cpp",
                              "#include \"net/node.hpp\"\n"),
                         Rule::kLayerDag));
}

TEST(LintLayerDag, OnlySrcPathsAreChecked) {
    EXPECT_TRUE(scan("tests/test_x.cpp",
                     "#include \"core/agfw.hpp\"\n"
                     "#include \"util/rng.hpp\"\n")
                    .empty());
}

TEST(LintLayerDag, DotOutputMarksViolatingEdgesRed) {
    std::vector<FileInput> files;
    files.push_back({"src/util/bad.cpp", "#include \"core/agfw.hpp\"\n"});
    files.push_back({"src/core/fine.cpp", "#include \"util/rng.hpp\"\n"});
    const std::string dot = geoanon::lint::layer_dot(files);
    EXPECT_NE(dot.find("digraph geoanon_layers"), std::string::npos);
    EXPECT_NE(dot.find("\"util\" -> \"core\" [label=\"1\", color=red"),
              std::string::npos);
    EXPECT_NE(dot.find("\"core\" -> \"util\" [label=\"1\"]"),
              std::string::npos);
    // Deterministic: same inputs, same bytes.
    EXPECT_EQ(dot, geoanon::lint::layer_dot(files));
}

// ---------------------------------------------------------------------------
// GL030 hot-alloc
// ---------------------------------------------------------------------------

TEST(LintHotAlloc, FlagsAllocationsInHotFunctions) {
    const auto fs = scan("src/x.cpp",
                         "// geoanon: hot\n"
                         "void pump() {\n"
                         "  int* p = new int(3);\n"
                         "  auto q = std::make_shared<Pkt>();\n"
                         "  std::function<void()> cb;\n"
                         "}\n");
    EXPECT_EQ(count_rule(fs, Rule::kHotAlloc), 3u);
}

TEST(LintHotAlloc, FlagsUnreservedVectorAndLoopGrowth) {
    const auto fs = scan("src/x.cpp",
                         "// geoanon: hot\n"
                         "void pump() {\n"
                         "  std::vector<int> scratch;\n"
                         "  for (int i = 0; i < n; ++i) scratch.push_back(i);\n"
                         "}\n");
    EXPECT_EQ(count_rule(fs, Rule::kHotAlloc), 2u);
}

TEST(LintHotAlloc, ReserveSilencesBothDetectors) {
    const auto fs = scan("src/x.cpp",
                         "// geoanon: hot\n"
                         "void pump() {\n"
                         "  std::vector<int> scratch;\n"
                         "  scratch.reserve(n);\n"
                         "  for (int i = 0; i < n; ++i) scratch.push_back(i);\n"
                         "}\n");
    EXPECT_FALSE(has_rule(fs, Rule::kHotAlloc));
}

TEST(LintHotAlloc, ColdFunctionsAreNotChecked) {
    const auto fs = scan("src/x.cpp",
                         "void setup() {\n"
                         "  int* p = new int(3);\n"
                         "  std::vector<int> v;\n"
                         "}\n");
    EXPECT_FALSE(has_rule(fs, Rule::kHotAlloc));
}

TEST(LintHotAlloc, AnnotationBindsToQualifiedDefinition) {
    const auto fs = scan("src/x.cpp",
                         "// geoanon: hot\n"
                         "void Channel::start_tx(Radio* r, const Frame& f) {\n"
                         "  auto c = std::make_unique<int>(1);\n"
                         "}\n");
    EXPECT_EQ(count_rule(fs, Rule::kHotAlloc), 1u);
}

TEST(LintHotAlloc, SuppressionApplies) {
    const auto fs = scan(
        "src/x.cpp",
        "// geoanon: hot\n"
        "void pump() {\n"
        "  // geoanon-lint: allow(hot-alloc) -- fixture reason\n"
        "  auto q = std::make_shared<Pkt>();\n"
        "}\n");
    EXPECT_FALSE(has_rule(fs, Rule::kHotAlloc));
}

// ---------------------------------------------------------------------------
// Suppressions (GL000 + application)
// ---------------------------------------------------------------------------

TEST(LintSuppression, SameLineAllowSuppresses) {
    const auto fs = scan(
        "src/x.cpp",
        "float q; // geoanon-lint: allow(float-accum) -- fixture reason\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintSuppression, PreviousLineAllowSuppresses) {
    const auto fs = scan(
        "src/x.cpp",
        "// geoanon-lint: allow(float-accum) -- fixture reason\n"
        "float q;\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintSuppression, AllowDoesNotReachTwoLinesDown) {
    const auto fs = scan(
        "src/x.cpp",
        "// geoanon-lint: allow(float-accum) -- fixture reason\n"
        "int ok;\n"
        "float q;\n");
    EXPECT_EQ(count_rule(fs, Rule::kFloatAccum), 1u);
}

TEST(LintSuppression, AllowOnlyCoversNamedRule) {
    const auto fs = scan(
        "src/x.cpp",
        "float q = rand(); // geoanon-lint: allow(float-accum) -- fixture reason\n");
    EXPECT_FALSE(has_rule(fs, Rule::kFloatAccum));
    EXPECT_TRUE(has_rule(fs, Rule::kAmbientRng));
}

TEST(LintSuppression, BlockAllowCoversRangeOnly) {
    const auto fs = scan(
        "src/x.cpp",
        "// geoanon-lint: begin-allow(wallclock) -- fixture timing block\n"
        "auto t0 = std::chrono::steady_clock::now();\n"
        "auto t1 = std::chrono::steady_clock::now();\n"
        "// geoanon-lint: end-allow(wallclock)\n"
        "auto t2 = std::chrono::steady_clock::now();\n");
    EXPECT_EQ(count_rule(fs, Rule::kWallClock), 1u);
    EXPECT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].line, 5u);
}

TEST(LintSuppression, ReasonIsMandatory) {
    const auto fs =
        scan("src/x.cpp", "float q; // geoanon-lint: allow(float-accum)\n");
    // The reason-less directive does not suppress, and is itself a finding.
    EXPECT_TRUE(has_rule(fs, Rule::kFloatAccum));
    EXPECT_TRUE(has_rule(fs, Rule::kSuppression));
}

TEST(LintSuppression, UnknownRuleAndUnclosedBlockAreFindings) {
    EXPECT_TRUE(has_rule(
        scan("src/x.cpp", "// geoanon-lint: allow(no-such-rule) -- why\n"),
        Rule::kSuppression));
    EXPECT_TRUE(has_rule(
        scan("src/x.cpp", "// geoanon-lint: begin-allow(wallclock) -- why\n"),
        Rule::kSuppression));
    EXPECT_TRUE(has_rule(
        scan("src/x.cpp", "// geoanon-lint: end-allow(wallclock)\n"),
        Rule::kSuppression));
}

// ---------------------------------------------------------------------------
// Output formats
// ---------------------------------------------------------------------------

TEST(LintOutput, TextFormat) {
    const auto fs = scan("src/x.cpp", "float q;\n");
    const std::string text = geoanon::lint::to_text(fs);
    EXPECT_NE(text.find("src/x.cpp:1: [GL006/float-accum]"), std::string::npos);
    EXPECT_NE(text.find("1 finding(s)"), std::string::npos);
}

TEST(LintOutput, JsonSchema) {
    const auto fs = scan("src/x.cpp", "float q;\n");
    const std::string json = geoanon::lint::to_json(fs);
    EXPECT_NE(json.find("\"tool\":\"geoanon_lint\""), std::string::npos);
    EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos);
    EXPECT_NE(json.find("\"version\":2"), std::string::npos);
    EXPECT_NE(json.find("\"count\":1"), std::string::npos);
    EXPECT_NE(json.find("\"rule_id\":\"GL006\""), std::string::npos);
    EXPECT_NE(json.find("\"rule\":\"float-accum\""), std::string::npos);
    EXPECT_NE(json.find("\"file\":\"src/x.cpp\""), std::string::npos);
    EXPECT_NE(json.find("\"line\":1"), std::string::npos);
    EXPECT_NE(json.find("\"message\":"), std::string::npos);
    // A plain determinism finding carries no taint/layer keys.
    EXPECT_EQ(json.find("\"taint_source\""), std::string::npos);
    EXPECT_EQ(json.find("\"layer_from\""), std::string::npos);
}

TEST(LintOutput, JsonCarriesTaintAndLayerFields) {
    const auto taint = scan(
        "src/x.cpp",
        taint_fixture("void f(Pkt& p) { p.uid = my_id(); }\n"));
    const std::string tj = geoanon::lint::to_json(taint);
    EXPECT_NE(tj.find("\"taint_source\":\"node-id:my_id\""), std::string::npos);
    EXPECT_NE(tj.find("\"taint_sink\":\"wire:uid\""), std::string::npos);
    EXPECT_NE(tj.find("\"taint_source_line\":"), std::string::npos);

    const auto layer =
        scan("src/util/helper.cpp", "#include \"core/agfw.hpp\"\n");
    const std::string lj = geoanon::lint::to_json(layer);
    EXPECT_NE(lj.find("\"layer_from\":\"util\""), std::string::npos);
    EXPECT_NE(lj.find("\"layer_to\":\"core\""), std::string::npos);
}

TEST(LintOutput, SelfValidationAcceptsOwnJson) {
    std::string error;
    // Empty report.
    EXPECT_TRUE(geoanon::lint::validate_findings_json(
        geoanon::lint::to_json({}), &error))
        << error;
    // One finding of every new shape.
    std::vector<FileInput> files;
    files.push_back({"src/util/helper.cpp", "#include \"core/agfw.hpp\"\n"});
    files.push_back({"src/x.cpp",
                     taint_fixture("void f(Pkt& p) { p.uid = my_id(); }\n")});
    EXPECT_TRUE(geoanon::lint::validate_findings_json(
        geoanon::lint::to_json(scan_files(files)), &error))
        << error;
}

TEST(LintOutput, SelfValidationRejectsSchemaDrift) {
    std::string error;
    EXPECT_FALSE(geoanon::lint::validate_findings_json("not json", &error));
    EXPECT_FALSE(geoanon::lint::validate_findings_json(
        "{\"tool\":\"geoanon_lint\",\"schema_version\":1,\"version\":1,"
        "\"count\":0,\"findings\":[]}",
        &error));
    EXPECT_NE(error.find("schema_version"), std::string::npos);
    // count must match findings length.
    EXPECT_FALSE(geoanon::lint::validate_findings_json(
        "{\"tool\":\"geoanon_lint\",\"schema_version\":2,\"version\":2,"
        "\"count\":1,\"findings\":[]}",
        &error));
    // Unknown per-finding keys are drift, not decoration.
    EXPECT_FALSE(geoanon::lint::validate_findings_json(
        "{\"tool\":\"geoanon_lint\",\"schema_version\":2,\"version\":2,"
        "\"count\":1,\"findings\":[{\"rule_id\":\"GL006\",\"rule\":"
        "\"float-accum\",\"file\":\"a\",\"line\":1,\"message\":\"m\","
        "\"surprise\":true}]}",
        &error));
}

TEST(LintOutput, ScanOptionsFilterRules) {
    std::vector<FileInput> files;
    files.push_back({"src/util/helper.cpp",
                     "#include \"core/agfw.hpp\"\n"
                     "float q;\n"});
    geoanon::lint::ScanOptions only_layers;
    only_layers.enabled.insert(Rule::kLayerDag);
    const auto fs = scan_files(files, only_layers);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, Rule::kLayerDag);
    // Empty set means every rule.
    EXPECT_EQ(scan_files(files, geoanon::lint::ScanOptions{}).size(), 2u);
}

TEST(LintOutput, FindingsAreSortedByFileLineRule) {
    std::vector<FileInput> files;
    files.push_back({"src/b.cpp", "float x;\n"});
    files.push_back({"src/a.cpp", "int i;\nfloat y;\nfloat z;\n"});
    const auto fs = scan_files(files);
    ASSERT_EQ(fs.size(), 3u);
    EXPECT_EQ(fs[0].file, "src/a.cpp");
    EXPECT_EQ(fs[0].line, 2u);
    EXPECT_EQ(fs[1].file, "src/a.cpp");
    EXPECT_EQ(fs[1].line, 3u);
    EXPECT_EQ(fs[2].file, "src/b.cpp");
}

TEST(LintOutput, RuleIdsAreStable) {
    using geoanon::lint::rule_id;
    using geoanon::lint::rule_name;
    EXPECT_STREQ(rule_id(Rule::kSuppression), "GL000");
    EXPECT_STREQ(rule_id(Rule::kWallClock), "GL001");
    EXPECT_STREQ(rule_id(Rule::kAmbientRng), "GL002");
    EXPECT_STREQ(rule_id(Rule::kUnseededEngine), "GL003");
    EXPECT_STREQ(rule_id(Rule::kUnorderedIter), "GL004");
    EXPECT_STREQ(rule_id(Rule::kPointerKey), "GL005");
    EXPECT_STREQ(rule_id(Rule::kFloatAccum), "GL006");
    EXPECT_STREQ(rule_id(Rule::kPrivacyTaint), "GL010");
    EXPECT_STREQ(rule_id(Rule::kLayerDag), "GL020");
    EXPECT_STREQ(rule_id(Rule::kHotAlloc), "GL030");
    EXPECT_STREQ(rule_name(Rule::kPrivacyTaint), "privacy-taint");
    EXPECT_STREQ(rule_name(Rule::kLayerDag), "layer-dag");
    EXPECT_STREQ(rule_name(Rule::kHotAlloc), "hot-alloc");
    Rule r;
    ASSERT_TRUE(geoanon::lint::rule_from_name("unordered-iter", r));
    EXPECT_EQ(r, Rule::kUnorderedIter);
    ASSERT_TRUE(geoanon::lint::rule_from_name("GL004", r));
    EXPECT_EQ(r, Rule::kUnorderedIter);
    EXPECT_FALSE(geoanon::lint::rule_from_name("nope", r));
    EXPECT_STREQ(rule_name(Rule::kWallClock), "wallclock");
}

// ---------------------------------------------------------------------------
// CLI exit codes (drives the real binary on temp fixture trees)
// ---------------------------------------------------------------------------

#ifdef GEOANON_LINT_BIN
namespace {

int run_lint(const std::string& args) {
    const int rc = std::system((std::string(GEOANON_LINT_BIN) + " " + args +
                                " > /dev/null 2>&1")
                                   .c_str());
    return WEXITSTATUS(rc);
}

}  // namespace

TEST(LintCli, ExitCodes) {
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "geoanon_lint_cli_fixture";
    fs::remove_all(dir);
    fs::create_directories(dir);
    {
        std::ofstream clean(dir / "clean.cpp");
        clean << "double ok = 0.0;\n";
    }
    EXPECT_EQ(run_lint("--root=" + dir.string() + " clean.cpp"), 0);
    {
        std::ofstream dirty(dir / "dirty.cpp");
        dirty << "float bad;\n";
    }
    EXPECT_EQ(run_lint("--root=" + dir.string() + " dirty.cpp"), 1);
    EXPECT_EQ(run_lint("--root=" + dir.string() + " no_such_file.cpp"), 2);
    EXPECT_EQ(run_lint("--no-such-flag"), 2);
    fs::remove_all(dir);
}

TEST(LintCli, RulesFlagFiltersAndRejectsUnknownNames) {
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "geoanon_lint_rules_fixture";
    fs::remove_all(dir);
    fs::create_directories(dir);
    {
        std::ofstream f(dir / "dirty.cpp");
        f << "float bad;\n";
    }
    // The only finding is GL006; narrowing to another rule reports clean.
    EXPECT_EQ(run_lint("--root=" + dir.string() + " --rules=float-accum dirty.cpp"), 1);
    EXPECT_EQ(run_lint("--root=" + dir.string() + " --rules=privacy-taint dirty.cpp"), 0);
    EXPECT_EQ(run_lint("--rules=no-such-rule"), 2);
    fs::remove_all(dir);
}

TEST(LintCli, DotFlagWritesLayerGraph) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "geoanon_lint_dot_fixture";
    fs::remove_all(dir);
    fs::create_directories(dir / "src" / "util");
    {
        std::ofstream f(dir / "src" / "util" / "a.cpp");
        f << "#include \"util/rng.hpp\"\nint x;\n";
    }
    const fs::path dot = dir / "layers.dot";
    EXPECT_EQ(run_lint("--root=" + dir.string() + " --dot=" + dot.string() + " src"), 0);
    std::ifstream in(dot);
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("digraph geoanon_layers"), std::string::npos);
    fs::remove_all(dir);
}

TEST(LintCli, CheckFlagValidatesJsonOutput) {
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "geoanon_lint_check_fixture";
    fs::remove_all(dir);
    fs::create_directories(dir);
    {
        std::ofstream f(dir / "clean.cpp");
        f << "double ok = 0.0;\n";
    }
    EXPECT_EQ(run_lint("--root=" + dir.string() + " --check clean.cpp"), 0);
    {
        std::ofstream f(dir / "dirty.cpp");
        f << "float bad;\n";
    }
    // Findings still exit 1 (validation passed; the findings decide).
    EXPECT_EQ(run_lint("--root=" + dir.string() + " --check dirty.cpp"), 1);
    fs::remove_all(dir);
}

TEST(LintCli, CanaryFixturesStillFire) {
    // The CI canaries: a deliberate GL010 leak and a deliberate GL020 upward
    // include must keep failing, proving the passes can't silently rot.
    const std::string repo = std::filesystem::path(GEOANON_LINT_SRC).string();
    EXPECT_EQ(run_lint("--root=" + repo +
                       " tools/lint/testdata/gl010_canary.cpp.in"),
              1);
    EXPECT_EQ(run_lint("--root=" + repo +
                       " tools/lint/testdata/gl010_adversary_canary.cpp.in"),
              1);
    EXPECT_EQ(run_lint("--root=" + repo + "/tools/lint/testdata/layers"
                       " --rules=layer-dag src"),
              1);
}
#endif  // GEOANON_LINT_BIN
