// Self-test suite for tools/geoanon_lint: one positive and one negative
// fixture per rule, suppression-comment handling, JSON output schema, and
// CLI exit codes. Fixtures are in-memory strings fed straight to the
// scanner; only the exit-code tests shell out to the real binary.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint.hpp"

using geoanon::lint::FileInput;
using geoanon::lint::Finding;
using geoanon::lint::Rule;
using geoanon::lint::scan_file;
using geoanon::lint::scan_files;

namespace {

std::vector<Finding> scan(const std::string& path, const std::string& content) {
    return scan_file(FileInput{path, content});
}

bool has_rule(const std::vector<Finding>& fs, Rule r) {
    for (const Finding& f : fs)
        if (f.rule == r) return true;
    return false;
}

std::size_t count_rule(const std::vector<Finding>& fs, Rule r) {
    std::size_t n = 0;
    for (const Finding& f : fs)
        if (f.rule == r) ++n;
    return n;
}

}  // namespace

// ---------------------------------------------------------------------------
// GL001 wallclock
// ---------------------------------------------------------------------------

TEST(LintWallClock, FlagsChronoClocks) {
    const auto fs = scan("src/x.cpp",
                         "void f() { auto t = std::chrono::steady_clock::now(); }\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, Rule::kWallClock);
    EXPECT_EQ(fs[0].line, 1u);
}

TEST(LintWallClock, SimTimeIsClean) {
    const auto fs = scan("src/x.cpp",
                         "SimTime t = sim.now(); auto s = t.to_seconds();\n");
    EXPECT_FALSE(has_rule(fs, Rule::kWallClock));
}

TEST(LintWallClock, CommentAndStringMentionsAreClean) {
    const auto fs = scan("src/x.cpp",
                         "// uses steady_clock? no.\n"
                         "const char* s = \"system_clock\";\n");
    EXPECT_FALSE(has_rule(fs, Rule::kWallClock));
}

// ---------------------------------------------------------------------------
// GL002 ambient-rng
// ---------------------------------------------------------------------------

TEST(LintAmbientRng, FlagsRandAndRandomDevice) {
    const auto fs = scan("src/x.cpp",
                         "int a = rand();\n"
                         "std::random_device rd;\n");
    EXPECT_EQ(count_rule(fs, Rule::kAmbientRng), 2u);
}

TEST(LintAmbientRng, UtilRngIsExemptAndMemberCallsClean) {
    EXPECT_TRUE(scan("src/util/rng.cpp", "int a = rand();\n").empty());
    // A project method named rand() on an object is not libc rand().
    const auto fs = scan("src/x.cpp", "auto v = gen.rand();\n");
    EXPECT_FALSE(has_rule(fs, Rule::kAmbientRng));
}

// ---------------------------------------------------------------------------
// GL003 unseeded-engine
// ---------------------------------------------------------------------------

TEST(LintUnseededEngine, FlagsDefaultConstructed) {
    EXPECT_TRUE(has_rule(scan("src/x.cpp", "std::mt19937 gen;\n"),
                         Rule::kUnseededEngine));
    EXPECT_TRUE(has_rule(scan("src/x.cpp", "std::mt19937 gen{};\n"),
                         Rule::kUnseededEngine));
    EXPECT_TRUE(has_rule(scan("src/x.cpp", "auto g = std::mt19937();\n"),
                         Rule::kUnseededEngine));
}

TEST(LintUnseededEngine, SeededIsClean) {
    const auto fs = scan("src/x.cpp", "std::mt19937 gen(seed);\n"
                                      "std::mt19937_64 g2{0x1234u};\n");
    EXPECT_FALSE(has_rule(fs, Rule::kUnseededEngine));
}

// ---------------------------------------------------------------------------
// GL004 unordered-iter
// ---------------------------------------------------------------------------

TEST(LintUnorderedIter, FlagsRangeForOverUnorderedMember) {
    const auto fs = scan("src/x.cpp",
                         "std::unordered_map<int, int> seen_;\n"
                         "void f() { for (const auto& [k, v] : seen_) emit(k); }\n");
    ASSERT_TRUE(has_rule(fs, Rule::kUnorderedIter));
}

TEST(LintUnorderedIter, FlagsIteratorWalk) {
    const auto fs = scan("src/x.cpp",
                         "std::unordered_set<int> ids_;\n"
                         "void f() { for (auto it = ids_.begin(); it != ids_.end(); ++it) {} }\n");
    EXPECT_TRUE(has_rule(fs, Rule::kUnorderedIter));
}

TEST(LintUnorderedIter, VectorIterationAndLookupsAreClean) {
    const auto fs = scan("src/x.cpp",
                         "std::unordered_map<int, int> seen_;\n"
                         "std::vector<int> v_;\n"
                         "void f() {\n"
                         "  for (int x : v_) use(x);\n"
                         "  auto it = seen_.find(3);\n"
                         "  seen_[4] = 5;\n"
                         "}\n");
    EXPECT_FALSE(has_rule(fs, Rule::kUnorderedIter));
}

TEST(LintUnorderedIter, SiblingHeaderDeclarationsCoverTheCpp) {
    // Member declared unordered in foo.hpp, iterated in foo.cpp: the
    // cross-file resolution in scan_files must connect the two.
    std::vector<FileInput> files;
    files.push_back({"src/a/foo.hpp",
                     "class C { std::unordered_map<int, int> table_; };\n"});
    files.push_back({"src/a/foo.cpp",
                     "void C::dump() { for (const auto& [k, v] : table_) emit(k); }\n"});
    const auto fs = scan_files(files);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, Rule::kUnorderedIter);
    EXPECT_EQ(fs[0].file, "src/a/foo.cpp");
}

// ---------------------------------------------------------------------------
// GL005 pointer-key
// ---------------------------------------------------------------------------

TEST(LintPointerKey, FlagsPointerKeyedOrderedContainers) {
    EXPECT_TRUE(has_rule(scan("src/x.cpp", "std::map<const Node*, int> m_;\n"),
                         Rule::kPointerKey));
    EXPECT_TRUE(has_rule(scan("src/x.cpp", "std::set<Event*> s_;\n"),
                         Rule::kPointerKey));
}

TEST(LintPointerKey, ValueKeysAndPointerValuesAreClean) {
    const auto fs = scan("src/x.cpp",
                         "std::map<std::string, Node*> by_name_;\n"
                         "std::set<std::uint64_t> ids_;\n");
    EXPECT_FALSE(has_rule(fs, Rule::kPointerKey));
}

// ---------------------------------------------------------------------------
// GL006 float-accum
// ---------------------------------------------------------------------------

TEST(LintFloatAccum, FlagsFloatUse) {
    const auto fs = scan("src/x.cpp", "float sum = 0.f;\n");
    EXPECT_TRUE(has_rule(fs, Rule::kFloatAccum));
}

TEST(LintFloatAccum, DoubleIsClean) {
    EXPECT_TRUE(scan("src/x.cpp", "double sum = 0.0; sum += x;\n").empty());
}

// ---------------------------------------------------------------------------
// Suppressions (GL000 + application)
// ---------------------------------------------------------------------------

TEST(LintSuppression, SameLineAllowSuppresses) {
    const auto fs = scan(
        "src/x.cpp",
        "float q; // geoanon-lint: allow(float-accum) -- fixture reason\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintSuppression, PreviousLineAllowSuppresses) {
    const auto fs = scan(
        "src/x.cpp",
        "// geoanon-lint: allow(float-accum) -- fixture reason\n"
        "float q;\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintSuppression, AllowDoesNotReachTwoLinesDown) {
    const auto fs = scan(
        "src/x.cpp",
        "// geoanon-lint: allow(float-accum) -- fixture reason\n"
        "int ok;\n"
        "float q;\n");
    EXPECT_EQ(count_rule(fs, Rule::kFloatAccum), 1u);
}

TEST(LintSuppression, AllowOnlyCoversNamedRule) {
    const auto fs = scan(
        "src/x.cpp",
        "float q = rand(); // geoanon-lint: allow(float-accum) -- fixture reason\n");
    EXPECT_FALSE(has_rule(fs, Rule::kFloatAccum));
    EXPECT_TRUE(has_rule(fs, Rule::kAmbientRng));
}

TEST(LintSuppression, BlockAllowCoversRangeOnly) {
    const auto fs = scan(
        "src/x.cpp",
        "// geoanon-lint: begin-allow(wallclock) -- fixture timing block\n"
        "auto t0 = std::chrono::steady_clock::now();\n"
        "auto t1 = std::chrono::steady_clock::now();\n"
        "// geoanon-lint: end-allow(wallclock)\n"
        "auto t2 = std::chrono::steady_clock::now();\n");
    EXPECT_EQ(count_rule(fs, Rule::kWallClock), 1u);
    EXPECT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].line, 5u);
}

TEST(LintSuppression, ReasonIsMandatory) {
    const auto fs =
        scan("src/x.cpp", "float q; // geoanon-lint: allow(float-accum)\n");
    // The reason-less directive does not suppress, and is itself a finding.
    EXPECT_TRUE(has_rule(fs, Rule::kFloatAccum));
    EXPECT_TRUE(has_rule(fs, Rule::kSuppression));
}

TEST(LintSuppression, UnknownRuleAndUnclosedBlockAreFindings) {
    EXPECT_TRUE(has_rule(
        scan("src/x.cpp", "// geoanon-lint: allow(no-such-rule) -- why\n"),
        Rule::kSuppression));
    EXPECT_TRUE(has_rule(
        scan("src/x.cpp", "// geoanon-lint: begin-allow(wallclock) -- why\n"),
        Rule::kSuppression));
    EXPECT_TRUE(has_rule(
        scan("src/x.cpp", "// geoanon-lint: end-allow(wallclock)\n"),
        Rule::kSuppression));
}

// ---------------------------------------------------------------------------
// Output formats
// ---------------------------------------------------------------------------

TEST(LintOutput, TextFormat) {
    const auto fs = scan("src/x.cpp", "float q;\n");
    const std::string text = geoanon::lint::to_text(fs);
    EXPECT_NE(text.find("src/x.cpp:1: [GL006/float-accum]"), std::string::npos);
    EXPECT_NE(text.find("1 finding(s)"), std::string::npos);
}

TEST(LintOutput, JsonSchema) {
    const auto fs = scan("src/x.cpp", "float q;\n");
    const std::string json = geoanon::lint::to_json(fs);
    EXPECT_NE(json.find("\"tool\":\"geoanon_lint\""), std::string::npos);
    EXPECT_NE(json.find("\"version\":1"), std::string::npos);
    EXPECT_NE(json.find("\"count\":1"), std::string::npos);
    EXPECT_NE(json.find("\"rule_id\":\"GL006\""), std::string::npos);
    EXPECT_NE(json.find("\"rule\":\"float-accum\""), std::string::npos);
    EXPECT_NE(json.find("\"file\":\"src/x.cpp\""), std::string::npos);
    EXPECT_NE(json.find("\"line\":1"), std::string::npos);
    EXPECT_NE(json.find("\"message\":"), std::string::npos);
}

TEST(LintOutput, FindingsAreSortedByFileLineRule) {
    std::vector<FileInput> files;
    files.push_back({"src/b.cpp", "float x;\n"});
    files.push_back({"src/a.cpp", "int i;\nfloat y;\nfloat z;\n"});
    const auto fs = scan_files(files);
    ASSERT_EQ(fs.size(), 3u);
    EXPECT_EQ(fs[0].file, "src/a.cpp");
    EXPECT_EQ(fs[0].line, 2u);
    EXPECT_EQ(fs[1].file, "src/a.cpp");
    EXPECT_EQ(fs[1].line, 3u);
    EXPECT_EQ(fs[2].file, "src/b.cpp");
}

TEST(LintOutput, RuleIdsAreStable) {
    using geoanon::lint::rule_id;
    using geoanon::lint::rule_name;
    EXPECT_STREQ(rule_id(Rule::kSuppression), "GL000");
    EXPECT_STREQ(rule_id(Rule::kWallClock), "GL001");
    EXPECT_STREQ(rule_id(Rule::kAmbientRng), "GL002");
    EXPECT_STREQ(rule_id(Rule::kUnseededEngine), "GL003");
    EXPECT_STREQ(rule_id(Rule::kUnorderedIter), "GL004");
    EXPECT_STREQ(rule_id(Rule::kPointerKey), "GL005");
    EXPECT_STREQ(rule_id(Rule::kFloatAccum), "GL006");
    Rule r;
    ASSERT_TRUE(geoanon::lint::rule_from_name("unordered-iter", r));
    EXPECT_EQ(r, Rule::kUnorderedIter);
    ASSERT_TRUE(geoanon::lint::rule_from_name("GL004", r));
    EXPECT_EQ(r, Rule::kUnorderedIter);
    EXPECT_FALSE(geoanon::lint::rule_from_name("nope", r));
    EXPECT_STREQ(rule_name(Rule::kWallClock), "wallclock");
}

// ---------------------------------------------------------------------------
// CLI exit codes (drives the real binary on temp fixture trees)
// ---------------------------------------------------------------------------

#ifdef GEOANON_LINT_BIN
namespace {

int run_lint(const std::string& args) {
    const int rc = std::system((std::string(GEOANON_LINT_BIN) + " " + args +
                                " > /dev/null 2>&1")
                                   .c_str());
    return WEXITSTATUS(rc);
}

}  // namespace

TEST(LintCli, ExitCodes) {
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "geoanon_lint_cli_fixture";
    fs::remove_all(dir);
    fs::create_directories(dir);
    {
        std::ofstream clean(dir / "clean.cpp");
        clean << "double ok = 0.0;\n";
    }
    EXPECT_EQ(run_lint("--root=" + dir.string() + " clean.cpp"), 0);
    {
        std::ofstream dirty(dir / "dirty.cpp");
        dirty << "float bad;\n";
    }
    EXPECT_EQ(run_lint("--root=" + dir.string() + " dirty.cpp"), 1);
    EXPECT_EQ(run_lint("--root=" + dir.string() + " no_such_file.cpp"), 2);
    EXPECT_EQ(run_lint("--no-such-flag"), 2);
    fs::remove_all(dir);
}
#endif  // GEOANON_LINT_BIN
