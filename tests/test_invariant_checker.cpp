// Tests for the runtime protocol invariant checker: clean scenarios must
// produce zero violations, deliberately broken traffic must be counted, and
// the checker must stay a passive observer (never changing run outcomes).

#include <gtest/gtest.h>

#include "analysis/invariant_checker.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace geoanon;
using analysis::InvariantChecker;
using workload::Scheme;
using workload::ScenarioConfig;
using workload::ScenarioResult;
using workload::ScenarioRunner;

ScenarioConfig small_config(Scheme scheme, std::uint64_t seed = 1) {
    ScenarioConfig cfg;
    cfg.scheme = scheme;
    cfg.num_nodes = 30;
    cfg.sim_seconds = 40.0;
    cfg.traffic_stop_s = 35.0;
    cfg.seed = seed;
    return cfg;
}

/// Broadcast one synthetic network packet from `node`'s radio so the
/// checker's channel tap observes it (the snoop fires synchronously).
void inject(net::Network& network, net::NodeId node, const net::Packet& pkt) {
    phy::Frame frame;
    frame.type = phy::Frame::Type::kData;
    frame.payload = std::make_shared<net::Packet>(pkt);
    frame.wire_bytes = 64;
    network.node(node).radio().start_tx(frame);
}

TEST(InvariantChecker, AgfwScenarioRunsClean) {
    ScenarioRunner runner(small_config(Scheme::kAgfwAck));
    const ScenarioResult r = runner.run();
    ASSERT_NE(runner.invariant_checker(), nullptr);
    EXPECT_GT(r.invariants.frames_checked, 0u);
    EXPECT_GT(r.invariants.packets_checked, 0u);
    EXPECT_GT(r.invariants.sweeps, 30u);
    EXPECT_GT(r.invariants.ant_entries_checked, 0u);
    EXPECT_EQ(r.invariants.violations(), 0u)
        << "cleartext_identity=" << r.invariants.cleartext_identity
        << " mac_address_exposed=" << r.invariants.mac_address_exposed
        << " missing_trapdoor=" << r.invariants.missing_trapdoor
        << " unknown_pseudonym=" << r.invariants.unknown_pseudonym
        << " stale_pseudonym_target=" << r.invariants.stale_pseudonym_target
        << " overlong_ant_ttl=" << r.invariants.overlong_ant_ttl
        << " stale_ant_entry=" << r.invariants.stale_ant_entry
        << " ack_without_delivery=" << r.invariants.ack_without_delivery
        << " codec_reject=" << r.invariants.codec_reject
        << " wire_size_mismatch=" << r.invariants.wire_size_mismatch;
}

TEST(InvariantChecker, GpsrScenarioRunsClean) {
    ScenarioRunner runner(small_config(Scheme::kGpsrGreedy));
    const ScenarioResult r = runner.run();
    // GPSR is the identity-bearing baseline: only the wire-discipline checks
    // apply, and those must still pass.
    EXPECT_GT(r.invariants.packets_checked, 0u);
    EXPECT_EQ(r.invariants.cleartext_identity, 0u);
    EXPECT_EQ(r.invariants.violations(), 0u);
}

TEST(InvariantChecker, DisabledScenarioHasNoChecker) {
    ScenarioConfig cfg = small_config(Scheme::kAgfwAck);
    cfg.sim_seconds = 10.0;
    cfg.check_invariants = false;
    ScenarioRunner runner(cfg);
    const ScenarioResult r = runner.run();
    EXPECT_EQ(runner.invariant_checker(), nullptr);
    EXPECT_EQ(r.invariants.frames_checked, 0u);
}

TEST(InvariantChecker, CheckerIsPassive) {
    // Enabling the checker must not perturb the simulation in any way.
    ScenarioConfig on = small_config(Scheme::kAgfwAck, 5);
    ScenarioConfig off = small_config(Scheme::kAgfwAck, 5);
    off.check_invariants = false;
    const ScenarioResult r_on = ScenarioRunner(on).run();
    const ScenarioResult r_off = ScenarioRunner(off).run();
    EXPECT_EQ(r_on.app_sent, r_off.app_sent);
    EXPECT_EQ(r_on.app_delivered, r_off.app_delivered);
    EXPECT_EQ(r_on.transmissions, r_off.transmissions);
    EXPECT_DOUBLE_EQ(r_on.avg_latency_ms, r_off.avg_latency_ms);
}

TEST(InvariantChecker, DeterministicAcrossRuns) {
    const ScenarioResult a = ScenarioRunner(small_config(Scheme::kAgfwAck, 9)).run();
    const ScenarioResult b = ScenarioRunner(small_config(Scheme::kAgfwAck, 9)).run();
    EXPECT_EQ(a.invariants.frames_checked, b.invariants.frames_checked);
    EXPECT_EQ(a.invariants.packets_checked, b.invariants.packets_checked);
    EXPECT_EQ(a.invariants.last_attempt_frames, b.invariants.last_attempt_frames);
    EXPECT_EQ(a.invariants.rotated_out_targets, b.invariants.rotated_out_targets);
}

TEST(InvariantChecker, StrictCheckerFlagsGpsrTraffic) {
    // The checker must *see* breakage when traffic genuinely is identifying:
    // hold the GPSR baseline to anonymous-run expectations.
    ScenarioConfig cfg = small_config(Scheme::kGpsrGreedy, 3);
    cfg.sim_seconds = 15.0;
    cfg.check_invariants = false;
    ScenarioRunner runner(cfg);
    runner.setup();
    InvariantChecker strict(runner.network(), {});
    strict.attach();
    runner.run();
    EXPECT_GT(strict.counters().cleartext_identity, 0u);
    EXPECT_GT(strict.counters().mac_address_exposed, 0u);
    EXPECT_GT(strict.counters().violations(), 0u);
}

TEST(InvariantChecker, StrictCheckerFlagsMacAblation) {
    // The §3.2 correlation-attack ablation leaks real MAC addresses. The
    // scenario's own checker follows the config (no violations), while a
    // second, strict checker on the same channel sees the exposure — both
    // taps observing one run exercises the multi-tap snoop path.
    ScenarioConfig cfg = small_config(Scheme::kAgfwAck, 4);
    cfg.sim_seconds = 15.0;
    cfg.anonymous_mac = false;
    ScenarioRunner runner(cfg);
    runner.setup();
    InvariantChecker::Params strict_params;
    strict_params.ant_ttl = cfg.agfw.ant.ttl;
    strict_params.hello_interval = cfg.agfw.hello_interval;
    InvariantChecker strict(runner.network(), strict_params);
    strict.attach();
    const ScenarioResult r = runner.run();
    EXPECT_EQ(r.invariants.violations(), 0u);
    EXPECT_GT(strict.counters().mac_address_exposed, 0u);
    EXPECT_EQ(strict.counters().cleartext_identity, 0u);
}

TEST(InvariantChecker, SyntheticViolationsAreCounted) {
    ScenarioConfig cfg = small_config(Scheme::kAgfwAck, 7);
    cfg.num_nodes = 10;
    cfg.check_invariants = false;
    ScenarioRunner runner(cfg);
    runner.setup();
    InvariantChecker checker(runner.network(), {});
    checker.attach();
    auto& network = runner.network();

    // An ACK for a uid that never travelled as data.
    net::Packet ack;
    ack.type = net::PacketType::kAgfwAck;
    ack.ack_uids = {12345};
    inject(network, 0, ack);

    // Data addressed to a never-announced pseudonym, with no trapdoor.
    net::Packet bogus;
    bogus.type = net::PacketType::kAgfwData;
    bogus.uid = 1;
    bogus.next_hop_pseudonym = 0xBADF00D;
    inject(network, 1, bogus);

    // Cleartext source identity on an anonymous data packet.
    net::Packet leaky;
    leaky.type = net::PacketType::kAgfwData;
    leaky.uid = 2;
    leaky.src_id = 7;
    leaky.trapdoor = {0x01, 0x02, 0x03};
    inject(network, 2, leaky);

    // Acking uid 1 is now fine: it was on the air above.
    net::Packet ok_ack;
    ok_ack.type = net::PacketType::kAgfwAck;
    ok_ack.ack_uids = {1};
    inject(network, 3, ok_ack);

    const auto& c = checker.counters();
    EXPECT_EQ(c.packets_checked, 4u);
    EXPECT_EQ(c.ack_without_delivery, 1u);
    EXPECT_EQ(c.unknown_pseudonym, 1u);
    EXPECT_EQ(c.missing_trapdoor, 1u);
    EXPECT_EQ(c.cleartext_identity, 1u);
    EXPECT_EQ(c.violations(), 4u);
}

TEST(InvariantChecker, LastAttemptAndFreshTargetsAreNotViolations) {
    ScenarioConfig cfg = small_config(Scheme::kAgfwAck, 8);
    cfg.num_nodes = 10;
    cfg.check_invariants = false;
    ScenarioRunner runner(cfg);
    runner.setup();
    InvariantChecker checker(runner.network(), {});
    checker.attach();
    auto& network = runner.network();

    // §3.2 "last forwarding attempt": pseudonym 0 is legal, not a violation.
    net::Packet last;
    last.type = net::PacketType::kAgfwData;
    last.uid = 1;
    last.next_hop_pseudonym = 0;
    last.trapdoor = {0x0A};
    inject(network, 0, last);

    // A hello announcing a pseudonym, then data addressed to it in-window.
    net::Packet hello;
    hello.type = net::PacketType::kAgfwHello;
    hello.hello_pseudonym = 0x42;
    inject(network, 1, hello);
    net::Packet data;
    data.type = net::PacketType::kAgfwData;
    data.uid = 2;
    data.next_hop_pseudonym = 0x42;
    data.trapdoor = {0x0B};
    inject(network, 2, data);

    const auto& c = checker.counters();
    EXPECT_EQ(c.last_attempt_frames, 1u);
    EXPECT_EQ(c.unknown_pseudonym, 0u);
    EXPECT_EQ(c.violations(), 0u);
}

}  // namespace
