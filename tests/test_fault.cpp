#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>
#include <vector>

#include "core/agfw.hpp"
#include "crypto/engine.hpp"
#include "fault/fault.hpp"
#include "mobility/mobility.hpp"
#include "net/network.hpp"

namespace {

using namespace geoanon;
using namespace geoanon::util::literals;
using core::AgfwAgent;
using fault::FaultInjector;
using fault::FaultPlan;
using net::NodeId;
using net::Packet;
using util::SimTime;
using util::Vec2;

/// Static AGFW rig (modeled crypto, perfect oracle) for fault experiments.
struct FaultNet {
    explicit FaultNet(std::vector<Vec2> positions, AgfwAgent::Params params = {})
        : network(phy::PhyParams{}, 13) {
        engine = std::make_unique<crypto::ModeledCryptoEngine>(5, 512);
        std::vector<crypto::NodeIdNum> universe;
        for (std::size_t i = 0; i < positions.size(); ++i) {
            engine->register_node(i);
            universe.push_back(i);
        }
        mac::MacParams mp;
        mp.use_rtscts = false;
        mp.anonymous_source = true;
        for (const Vec2& pos : positions) {
            net::Node& node = network.add_node(
                std::make_unique<mobility::StationaryMobility>(pos), mp);
            auto agent = std::make_unique<AgfwAgent>(
                node, params, *engine, universe,
                [this](NodeId id) -> std::optional<Vec2> {
                    return network.true_position(id);
                },
                [this](NodeId at, const Packet& pkt) {
                    deliveries.emplace_back(at, pkt);
                });
            agents.push_back(agent.get());
            node.set_agent(std::move(agent));
        }
        network.start_agents();
    }

    void run_until(double seconds) {
        network.sim().run_until(SimTime::seconds(seconds));
    }

    net::Network network;
    std::unique_ptr<crypto::CryptoEngine> engine;
    std::vector<AgfwAgent*> agents;
    std::vector<std::pair<NodeId, Packet>> deliveries;
};

TEST(FaultPlanBasics, EmptyDetection) {
    FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    plan.jams.push_back({});
    EXPECT_FALSE(plan.empty());
    FaultPlan churny;
    churny.churn = FaultPlan::Churn{};
    EXPECT_FALSE(churny.empty());
    FaultPlan split;
    split.partitions.push_back({});
    EXPECT_FALSE(split.empty());
    FaultPlan flappy;
    flappy.server_flaps.push_back({});
    EXPECT_FALSE(flappy.empty());
}

/// Records which pseudonyms the crashed relay announced (attributed by its
/// transmit position — the rig is static) and which pseudonyms data frames
/// were addressed to afterwards.
struct TargetTap {
    explicit TargetTap(net::Network& network, Vec2 crashed_pos) {
        network.channel().add_snoop([this, crashed_pos](const phy::Frame& f,
                                                        const Vec2& tx_pos) {
            if (f.type != phy::Frame::Type::kData || !f.payload) return;
            if (f.payload->type == net::PacketType::kAgfwHello &&
                util::distance(tx_pos, crashed_pos) < 1.0)
                crashed_pseudonyms.insert(f.payload->hello_pseudonym);
            if (f.payload->type == net::PacketType::kAgfwData)
                data_targets.push_back(f.payload->next_hop_pseudonym);
        });
    }

    bool crashed_node_targeted() const {
        for (const std::uint64_t n : data_targets)
            if (crashed_pseudonyms.contains(n)) return true;
        return false;
    }

    std::unordered_set<std::uint64_t> crashed_pseudonyms;
    std::vector<std::uint64_t> data_targets;
};

TEST(Fault, SilencePurgeAvoidsCrashedNeighbor) {
    // Satellite regression: a crashed neighbor must stop being selected for
    // greedy forwarding once its hellos go silent, even though its announced
    // entry lifetime (30 s here) is nowhere near expiring. No data frame may
    // ever be addressed to one of the dead relay's pseudonyms.
    AgfwAgent::Params params;
    params.ant.ttl = 30_s;                 // announced lifetime outlives the test
    params.ant.staleness_penalty_mps = 0;  // isolate the silence mechanism
    FaultNet net({{0, 0}, {200, 0}, {180, 80}, {400, 0}}, params);
    TargetTap tap(net.network, {200, 0});
    net.run_until(5.0);
    net.network.node(1).set_up(false);  // the geometrically-best relay dies
    net.run_until(10.0);                // > ant_silence_hellos * hello_interval

    net.agents[0]->send_data(3, 0, 0, {});
    net.run_until(20.0);
    ASSERT_EQ(net.deliveries.size(), 1u);
    EXPECT_EQ(net.deliveries[0].first, 3u);
    EXPECT_GE(tap.crashed_pseudonyms.size(), 2u);  // the tap saw it beacon
    EXPECT_FALSE(tap.crashed_node_targeted());
}

TEST(Fault, WithoutSilencePurgeCrashedNeighborStillTried) {
    // Ablation twin: silence purge off, so the dead relay's 30 s entries keep
    // winning and the first copies are addressed to its pseudonyms; delivery
    // only happens through the NL-ACK blacklist/reroute machinery (given a
    // budget large enough to walk past every dead entry).
    AgfwAgent::Params params;
    params.ant.ttl = 30_s;
    params.ant.staleness_penalty_mps = 0;
    params.ant_silence_hellos = 0;  // disable the purge
    params.ack_retries = 0;         // reroute immediately on each miss
    params.reroute_limit = 32;
    FaultNet net({{0, 0}, {200, 0}, {180, 80}, {400, 0}}, params);
    TargetTap tap(net.network, {200, 0});
    net.run_until(5.0);
    net.network.node(1).set_up(false);
    net.run_until(10.0);

    net.agents[0]->send_data(3, 0, 0, {});
    net.run_until(20.0);
    EXPECT_TRUE(tap.crashed_node_targeted());
    ASSERT_EQ(net.deliveries.size(), 1u);
    // The reroute walk burned through several dead pseudonyms before the
    // live detour: strictly more data transmissions than the 2-hop path.
    EXPECT_GT(tap.data_targets.size(), 2u);
}

TEST(Fault, ScheduledCrashSilencesRadioAndRecoveryWipesState) {
    FaultNet net({{0, 0}, {150, 0}});
    FaultPlan plan;
    plan.crashes.push_back({1, SimTime::seconds(5.0), SimTime::seconds(5.0)});
    FaultInjector injector(net.network, plan);
    injector.set_recovered_probe(
        [&](NodeId id) { return net.agents[id]->ant().size() > 0; });
    injector.arm();

    net.run_until(4.9);
    const auto ant_before = net.agents[1]->ant().size();
    EXPECT_GE(ant_before, 1u);

    net.run_until(9.9);  // down window: node 0 keeps beaconing at a dead radio
    EXPECT_TRUE(injector.is_down(1));
    EXPECT_GT(net.network.node(1).radio().stats().frames_missed_down, 0u);

    net.run_until(10.05);  // just after recovery: state wiped, not yet warm
    EXPECT_FALSE(injector.is_down(1));

    net.run_until(20.0);  // hellos re-populate the table
    EXPECT_GE(net.agents[1]->ant().size(), 1u);
    const auto& s = injector.stats();
    EXPECT_EQ(s.node_crashes, 1u);
    EXPECT_EQ(s.node_recoveries, 1u);
    EXPECT_EQ(s.faults_injected, 1u);
    ASSERT_EQ(s.recovery_s.count(), 1u);
    EXPECT_GT(s.recovery_s.percentile(50), 0.0);
    EXPECT_LT(s.recovery_s.percentile(95), 10.0);
}

TEST(Fault, GilbertElliottBurstsDropFrames) {
    FaultNet net({{0, 0}, {150, 0}});
    FaultPlan plan;
    plan.seed = 7;
    FaultPlan::GilbertElliott ge;
    ge.mean_good_s = 0.5;
    ge.mean_bad_s = 0.5;
    ge.loss_good = 0.0;
    ge.loss_bad = 1.0;
    plan.gilbert_elliott = ge;
    FaultInjector injector(net.network, plan);
    injector.arm();

    net.run_until(30.0);  // hellos every 1.5 s → plenty of decode decisions
    EXPECT_GT(injector.stats().frames_lost_loss_burst, 0u);
    EXPECT_GT(net.network.channel().stats().impaired, 0u);
    // Bursty, not total: plenty of good-state frames still decode.
    EXPECT_GE(net.agents[0]->ant().size(), 1u);
}

TEST(Fault, JamRegionStarvesReceiversInside) {
    // Relay at (200,0) sits inside the jam circle: it still transmits (its
    // hellos populate everyone's tables) but can never receive, so the
    // source's data dies at it and the 0→2 path (400 m apart) stays broken.
    FaultNet net({{0, 0}, {200, 0}, {400, 0}});
    FaultPlan plan;
    plan.jams.push_back({Vec2{200, 0}, 100.0, SimTime{}, SimTime{}});
    FaultInjector injector(net.network, plan);
    injector.arm();

    net.run_until(5.0);
    EXPECT_GE(net.agents[0]->ant().size(), 1u);  // jammed relay still beacons
    EXPECT_EQ(net.agents[1]->ant().size(), 0u);  // ...but hears nothing
    net.agents[0]->send_data(2, 0, 0, {});
    net.run_until(15.0);
    EXPECT_TRUE(net.deliveries.empty());
    EXPECT_GT(injector.stats().frames_lost_jam, 0u);
}

TEST(Fault, GpsNoiseOffsetsReportedPositionDeterministically) {
    FaultNet net({{500, 150}, {650, 150}});
    FaultPlan plan;
    plan.seed = 11;
    FaultPlan::GpsNoise noise;
    noise.sigma_m = 20.0;
    plan.gps_noise = noise;
    FaultInjector injector(net.network, plan);
    injector.arm();

    const Vec2 reported = net.network.node(0).position();
    const Vec2 truth = net.network.node(0).true_position();
    EXPECT_NE(reported.x, truth.x);  // N(0,20) draw: exactly 0 is measure-zero
    EXPECT_LT(util::distance(reported, truth), 200.0);
    // Same sim time → same epoch → identical offset (pure function of seed,
    // node, epoch — no hidden RNG stream is consumed).
    const Vec2 again = net.network.node(0).position();
    EXPECT_EQ(reported.x, again.x);
    EXPECT_EQ(reported.y, again.y);
    // Different node at the same instant gets an independent offset.
    const Vec2 other_err = net.network.node(1).position() -
                           net.network.node(1).true_position();
    const Vec2 this_err = reported - truth;
    EXPECT_NE(this_err.x, other_err.x);
}

TEST(Fault, PartitionDropsCrossBoundaryFramesUntilHeal) {
    // Chain 0—1—2 straddling x=300: while the split is active nothing
    // crosses, so node 2 never hears node 1 and end-to-end data dies at the
    // boundary. After heal the same flow delivers.
    FaultNet net({{0, 0}, {200, 0}, {400, 0}});
    FaultPlan plan;
    plan.partitions.push_back(
        {/*boundary_x_m=*/300.0, SimTime{}, /*heal=*/SimTime::seconds(20.0)});
    FaultInjector injector(net.network, plan);
    injector.arm();

    net.run_until(5.0);
    EXPECT_GE(net.agents[0]->ant().size(), 1u);  // same-side hellos decode
    EXPECT_EQ(net.agents[2]->ant().size(), 0u);  // cross-boundary ones do not
    net.agents[0]->send_data(2, 0, 0, {});
    net.run_until(15.0);
    EXPECT_TRUE(net.deliveries.empty());
    EXPECT_GT(injector.stats().frames_lost_partition, 0u);
    EXPECT_EQ(injector.stats().faults_injected, 1u);

    net.run_until(25.0);  // healed: hellos cross again
    EXPECT_GE(net.agents[2]->ant().size(), 1u);
    net.agents[0]->send_data(2, 0, 1, {});
    net.run_until(35.0);
    ASSERT_EQ(net.deliveries.size(), 1u);
    EXPECT_EQ(net.deliveries[0].first, 2u);
}

TEST(Fault, PartitionNeverHealsWhenHealUnset) {
    FaultNet net({{0, 0}, {200, 0}});
    FaultPlan plan;
    plan.partitions.push_back({100.0, SimTime{}, SimTime{}});
    FaultInjector injector(net.network, plan);
    injector.arm();
    net.run_until(30.0);
    EXPECT_EQ(net.agents[0]->ant().size(), 0u);
    EXPECT_EQ(net.agents[1]->ant().size(), 0u);
    EXPECT_GT(injector.stats().frames_lost_partition, 0u);
}

TEST(Fault, ServerFlapCyclesInRadiusNodesUpAndDown) {
    // Nodes 1 and 2 sit within 100 m of node 1's position; node 0 is far
    // outside. Flapping around node 1 must cycle exactly the near pair.
    FaultNet net({{0, 0}, {600, 0}, {650, 0}});
    FaultPlan plan;
    FaultPlan::ServerFlap flap;
    flap.target = 1;
    flap.start = SimTime::seconds(2.0);
    flap.stop = SimTime::seconds(14.0);
    flap.period = SimTime::seconds(4.0);
    flap.down_time = SimTime::seconds(2.0);
    flap.radius_m = 100.0;
    plan.server_flaps.push_back(flap);
    FaultInjector injector(net.network, plan);
    injector.set_home_center(
        [&](NodeId id) { return net.network.true_position(id); });
    injector.arm();

    net.run_until(3.0);  // first cycle: both near nodes down, far node up
    EXPECT_TRUE(injector.is_down(1));
    EXPECT_TRUE(injector.is_down(2));
    EXPECT_FALSE(injector.is_down(0));
    net.run_until(5.0);  // down_time over, period not yet
    EXPECT_FALSE(injector.is_down(1));
    net.run_until(30.0);  // stop passed: everyone stays up
    EXPECT_FALSE(injector.is_down(1));
    EXPECT_FALSE(injector.is_down(2));

    const auto& s = injector.stats();
    EXPECT_EQ(s.server_flap_cycles, 3u);  // cycles at t=2, 6, 10 (14 = stop)
    EXPECT_EQ(s.node_crashes, 6u);
    EXPECT_EQ(s.node_recoveries, 6u);
}

TEST(Fault, RecoveryLatencyIsBrokenOutByCause) {
    // One scheduled crash and one flap cycle, same probe: the per-class
    // samplers must attribute each recovery to the fault class that caused
    // the crash, and the combined sampler must hold both.
    FaultNet net({{0, 0}, {150, 0}});
    FaultPlan plan;
    plan.crashes.push_back({1, SimTime::seconds(2.0), SimTime::seconds(3.0)});
    FaultPlan::ServerFlap flap;
    flap.target = 0;
    flap.start = SimTime::seconds(10.0);
    flap.stop = SimTime::seconds(11.0);  // exactly one cycle
    flap.period = SimTime::seconds(4.0);
    flap.down_time = SimTime::seconds(2.0);
    flap.radius_m = 50.0;
    plan.server_flaps.push_back(flap);
    FaultInjector injector(net.network, plan);
    injector.set_home_center(
        [&](NodeId id) { return net.network.true_position(id); });
    injector.set_recovered_probe(
        [&](NodeId id) { return net.agents[id]->ant().size() > 0; });
    injector.arm();

    net.run_until(40.0);
    const auto& s = injector.stats();
    EXPECT_EQ(s.recovery_crash_s.count(), 1u);
    EXPECT_EQ(s.recovery_flap_s.count(), 1u);
    EXPECT_EQ(s.recovery_churn_s.count(), 0u);
    EXPECT_EQ(s.recovery_outage_s.count(), 0u);
    EXPECT_EQ(s.recovery_s.count(), 2u);
}

TEST(Fault, GpsNoiseDoesNotBreakDelivery) {
    // Moderate GPS error perturbs greedy choices but the static chain still
    // delivers; the radio keeps using true positions.
    FaultNet net({{0, 0}, {200, 0}, {400, 0}});
    FaultPlan plan;
    plan.seed = 3;
    FaultPlan::GpsNoise noise;
    noise.sigma_m = 10.0;
    plan.gps_noise = noise;
    FaultInjector injector(net.network, plan);
    injector.arm();
    net.run_until(5.0);
    net.agents[0]->send_data(2, 0, 0, {});
    net.run_until(15.0);
    ASSERT_EQ(net.deliveries.size(), 1u);
}

}  // namespace
