#include <gtest/gtest.h>

#include <set>

#include "util/cli.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace geoanon;
using workload::Scheme;
using workload::ScenarioConfig;
using workload::ScenarioRunner;

// ----------------------------------------------------------------- CLI

TEST(Cli, ParsesKeyValueAndFlags) {
    const char* argv[] = {"prog", "--nodes=50", "--verbose", "--rate=2.5",
                          "positional", "--name=abc"};
    util::CliArgs args(6, const_cast<char**>(argv));
    EXPECT_EQ(args.get("nodes", std::int64_t{0}), 50);
    EXPECT_TRUE(args.get("verbose", false));
    EXPECT_DOUBLE_EQ(args.get("rate", 0.0), 2.5);
    EXPECT_EQ(args.get("name", std::string{}), "abc");
    ASSERT_EQ(args.positionals().size(), 1u);
    EXPECT_EQ(args.positionals()[0], "positional");
    EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, DefaultsWhenMissing) {
    const char* argv[] = {"prog"};
    util::CliArgs args(1, const_cast<char**>(argv));
    EXPECT_EQ(args.get("nodes", std::int64_t{7}), 7);
    EXPECT_FALSE(args.has("nodes"));
    EXPECT_DOUBLE_EQ(args.get("rate", 1.5), 1.5);
}

TEST(Cli, BooleanSpellings) {
    const char* argv[] = {"prog", "--a=false", "--b=0", "--c=no", "--d=yes", "--e"};
    util::CliArgs args(6, const_cast<char**>(argv));
    EXPECT_FALSE(args.get("a", true));
    EXPECT_FALSE(args.get("b", true));
    EXPECT_FALSE(args.get("c", true));
    EXPECT_TRUE(args.get("d", false));
    EXPECT_TRUE(args.get("e", false));
}

// ----------------------------------------------------------- workload wiring

ScenarioConfig tiny(Scheme scheme) {
    ScenarioConfig cfg;
    cfg.scheme = scheme;
    cfg.num_nodes = 25;
    cfg.sim_seconds = 40.0;
    cfg.traffic_start_s = 5.0;
    cfg.traffic_stop_s = 35.0;
    cfg.seed = 5;
    return cfg;
}

TEST(Workload, CbrPacketCountMatchesRateAndDuration) {
    ScenarioConfig cfg = tiny(Scheme::kGpsrGreedy);
    cfg.num_flows = 10;
    cfg.cbr_pps = 2.0;
    ScenarioRunner runner(cfg);
    const auto r = runner.run();
    // Each flow starts in [5,15] s and stops at 35 s: 40-60 packets each.
    EXPECT_GE(r.app_sent, 10u * 40u);
    EXPECT_LE(r.app_sent, 10u * 62u);
}

TEST(Workload, SenderCountRespected) {
    ScenarioConfig cfg = tiny(Scheme::kGpsrGreedy);
    cfg.num_flows = 30;
    cfg.num_senders = 5;
    ScenarioRunner runner(cfg);
    runner.setup();
    // Count distinct sources among agents with app_sent > 0 after a run.
    runner.network().start_agents();
    runner.network().sim().run_until(util::SimTime::seconds(cfg.sim_seconds));
    std::set<net::NodeId> sources;
    for (std::size_t i = 0; i < cfg.num_nodes; ++i) {
        auto* g = runner.gpsr_agent(static_cast<net::NodeId>(i));
        if (g && g->stats().app_sent > 0) sources.insert(static_cast<net::NodeId>(i));
    }
    EXPECT_LE(sources.size(), 5u);
    EXPECT_GE(sources.size(), 3u);  // all five should usually fire
}

TEST(Workload, DeliveryFractionNeverExceedsOne) {
    for (Scheme s : {Scheme::kGpsrGreedy, Scheme::kAgfwAck, Scheme::kAgfwNoAck}) {
        const auto r = ScenarioRunner(tiny(s)).run();
        EXPECT_LE(r.delivery_fraction, 1.0) << workload::scheme_name(s);
        EXPECT_GE(r.delivery_fraction, 0.0);
        EXPECT_LE(r.app_delivered, r.app_sent);
    }
}

TEST(Workload, LatencyPercentilesOrdered) {
    const auto r = ScenarioRunner(tiny(Scheme::kAgfwAck)).run();
    EXPECT_LE(r.p50_latency_ms, r.p95_latency_ms);
    EXPECT_GT(r.avg_latency_ms, 0.0);
    EXPECT_GE(r.avg_hops, 1.0);
}

TEST(Workload, SchemeSelectsMacMode) {
    // GPSR uses RTS/CTS unicast; AGFW never does.
    const auto gpsr = ScenarioRunner(tiny(Scheme::kGpsrGreedy)).run();
    EXPECT_GT(gpsr.rts_sent, 0u);
    const auto agfw = ScenarioRunner(tiny(Scheme::kAgfwAck)).run();
    EXPECT_EQ(agfw.rts_sent, 0u);
    EXPECT_GT(agfw.data_frames, 0u);
}

TEST(Workload, TrafficStopsAtConfiguredTime) {
    ScenarioConfig cfg = tiny(Scheme::kGpsrGreedy);
    cfg.num_flows = 5;
    cfg.cbr_pps = 1.0;
    cfg.traffic_stop_s = 10.0;  // flows start in [5,15]: some never fire
    const auto r = ScenarioRunner(cfg).run();
    // At most ~5 s of traffic per flow.
    EXPECT_LE(r.app_sent, 5u * 7u);
}

TEST(Workload, PerimeterStatsFlowThrough) {
    ScenarioConfig cfg = tiny(Scheme::kAgfwAck);
    cfg.num_nodes = 20;  // sparse: greedy failures happen
    cfg.agfw.enable_perimeter = true;
    const auto r = ScenarioRunner(cfg).run();
    // No crash, and the counters are wired (>= 0 trivially; exercise read).
    EXPECT_GE(r.perimeter_entries + r.perimeter_forwards + r.perimeter_recoveries, 0u);
}

TEST(Workload, EventsProcessedScalesWithDensity) {
    ScenarioConfig small = tiny(Scheme::kAgfwAck);
    ScenarioConfig large = tiny(Scheme::kAgfwAck);
    large.num_nodes = 60;
    const auto a = ScenarioRunner(small).run();
    const auto b = ScenarioRunner(large).run();
    EXPECT_GT(b.events_processed, a.events_processed);
}

}  // namespace
