#include <gtest/gtest.h>

#include "crypto/rsa.hpp"
#include "util/rng.hpp"

namespace {

using namespace geoanon::crypto;
using geoanon::util::Bytes;
using geoanon::util::ByteReader;
using geoanon::util::Rng;

class RsaTest : public ::testing::Test {
  protected:
    // 256-bit keys keep the suite fast; the constructions are size-agnostic
    // and the paper's 512-bit size is exercised in test_cert_engine.
    static constexpr std::size_t kBits = 256;
    Rng rng_{20260706};
    RsaKeyPair kp_ = rsa_generate(rng_, kBits);
};

TEST_F(RsaTest, KeyShape) {
    EXPECT_EQ(kp_.pub.modulus_bits(), kBits);
    EXPECT_EQ(kp_.pub.modulus_bytes(), kBits / 8);
    EXPECT_EQ(kp_.pub.e.low_u64(), 65537u);
    EXPECT_EQ(Bignum::mul(kp_.priv.p, kp_.priv.q), kp_.pub.n);
}

TEST_F(RsaTest, RawOpsAreInverse) {
    const Bignum x = Bignum::random_below(rng_, kp_.pub.n);
    const Bignum y = rsa_public_op(kp_.pub, x);
    EXPECT_EQ(rsa_private_op(kp_.priv, y), x);
    // And the other direction (sign then verify at the raw level).
    const Bignum s = rsa_private_op(kp_.priv, x);
    EXPECT_EQ(rsa_public_op(kp_.pub, s), x);
}

TEST_F(RsaTest, EncryptDecryptRoundTrip) {
    const Bytes msg{'h', 'e', 'l', 'l', 'o', 0x00, 0xFF};
    const auto ct = rsa_encrypt(kp_.pub, rng_, msg);
    ASSERT_TRUE(ct.has_value());
    EXPECT_EQ(ct->size(), kBits / 8);
    EXPECT_EQ(rsa_decrypt(kp_.priv, *ct), msg);
}

TEST_F(RsaTest, EncryptionIsRandomized) {
    const Bytes msg{'x'};
    const auto c1 = rsa_encrypt(kp_.pub, rng_, msg);
    const auto c2 = rsa_encrypt(kp_.pub, rng_, msg);
    ASSERT_TRUE(c1 && c2);
    EXPECT_NE(*c1, *c2);
    EXPECT_EQ(rsa_decrypt(kp_.priv, *c1), rsa_decrypt(kp_.priv, *c2));
}

TEST_F(RsaTest, MessageTooLongRejected) {
    const Bytes msg(kBits / 8 - 10, 0x5A);  // one byte over the k-11 limit
    EXPECT_FALSE(rsa_encrypt(kp_.pub, rng_, msg).has_value());
    const Bytes max_msg(kBits / 8 - 11, 0x5A);
    EXPECT_TRUE(rsa_encrypt(kp_.pub, rng_, max_msg).has_value());
}

TEST_F(RsaTest, EmptyMessageRoundTrip) {
    const auto ct = rsa_encrypt(kp_.pub, rng_, Bytes{});
    ASSERT_TRUE(ct.has_value());
    EXPECT_EQ(rsa_decrypt(kp_.priv, *ct), Bytes{});
}

TEST_F(RsaTest, WrongKeyFailsCleanly) {
    RsaKeyPair other = rsa_generate(rng_, kBits);
    const Bytes msg{'s', 'e', 'c', 'r', 'e', 't'};
    const auto ct = rsa_encrypt(kp_.pub, rng_, msg);
    ASSERT_TRUE(ct.has_value());
    // Decrypting with the wrong private key must fail the padding check —
    // the trapdoor property AGFW's destination detection relies on (§3.2).
    EXPECT_FALSE(rsa_decrypt(other.priv, *ct).has_value());
}

TEST_F(RsaTest, CorruptedCiphertextRejected) {
    const auto ct = rsa_encrypt(kp_.pub, rng_, Bytes{'a', 'b'});
    ASSERT_TRUE(ct.has_value());
    Bytes bad = *ct;
    bad[bad.size() / 2] ^= 0x01;
    // Either padding fails or (absurdly unlikely) decodes to something else.
    const auto pt = rsa_decrypt(kp_.priv, bad);
    if (pt) {
        EXPECT_NE(*pt, (Bytes{'a', 'b'}));
    }
    Bytes truncated(ct->begin(), ct->end() - 1);
    EXPECT_FALSE(rsa_decrypt(kp_.priv, truncated).has_value());
}

TEST_F(RsaTest, SignVerify) {
    const Bytes msg{'m', 's', 'g'};
    const Bytes sig = rsa_sign(kp_.priv, msg);
    EXPECT_EQ(sig.size(), kBits / 8);
    EXPECT_TRUE(rsa_verify(kp_.pub, msg, sig));
}

TEST_F(RsaTest, VerifyRejectsTamperedMessage) {
    const Bytes msg{'m', 's', 'g'};
    const Bytes sig = rsa_sign(kp_.priv, msg);
    EXPECT_FALSE(rsa_verify(kp_.pub, Bytes{'m', 's', 'G'}, sig));
}

TEST_F(RsaTest, VerifyRejectsTamperedSignature) {
    const Bytes msg{'m'};
    Bytes sig = rsa_sign(kp_.priv, msg);
    sig[0] ^= 0x80;
    EXPECT_FALSE(rsa_verify(kp_.pub, msg, sig));
    EXPECT_FALSE(rsa_verify(kp_.pub, msg, Bytes{}));
}

TEST_F(RsaTest, VerifyRejectsWrongKey) {
    RsaKeyPair other = rsa_generate(rng_, kBits);
    const Bytes msg{'m'};
    const Bytes sig = rsa_sign(kp_.priv, msg);
    EXPECT_FALSE(rsa_verify(other.pub, msg, sig));
}

TEST_F(RsaTest, PublicKeySerializeRoundTrip) {
    const Bytes ser = kp_.pub.serialize();
    ByteReader r(ser);
    const auto back = RsaPublicKey::deserialize(r);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, kp_.pub);
    EXPECT_EQ(back->fingerprint(), kp_.pub.fingerprint());
}

TEST_F(RsaTest, FingerprintDistinguishesKeys) {
    RsaKeyPair other = rsa_generate(rng_, kBits);
    EXPECT_NE(kp_.pub.fingerprint(), other.pub.fingerprint());
}

TEST(RsaKeygen, DeterministicGivenRngState) {
    Rng a(42), b(42);
    const RsaKeyPair ka = rsa_generate(a, 128);
    const RsaKeyPair kb = rsa_generate(b, 128);
    EXPECT_EQ(ka.pub, kb.pub);
}

TEST(RsaKeygen, DistinctKeysFromOneStream) {
    Rng rng(43);
    const RsaKeyPair a = rsa_generate(rng, 128);
    const RsaKeyPair b = rsa_generate(rng, 128);
    EXPECT_FALSE(a.pub == b.pub);
}

}  // namespace
