#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mobility/mobility.hpp"
#include "net/network.hpp"
#include "routing/gpsr.hpp"

namespace {

using namespace geoanon;
using namespace geoanon::util::literals;
using net::NodeId;
using net::Packet;
using routing::GpsrGreedyAgent;
using util::SimTime;
using util::Vec2;

/// Static GPSR network rig: nodes at fixed positions, perfect oracle.
struct GpsrNet {
    explicit GpsrNet(std::vector<Vec2> positions, GpsrGreedyAgent::Params params = {})
        : network(phy::PhyParams{}, 7) {
        for (const Vec2& pos : positions) {
            net::Node& node = network.add_node(
                std::make_unique<mobility::StationaryMobility>(pos), mac::MacParams{});
            auto agent = std::make_unique<GpsrGreedyAgent>(
                node, params,
                [this](NodeId id) -> std::optional<Vec2> {
                    return network.true_position(id);
                },
                [this](NodeId at, const Packet& pkt) {
                    deliveries.emplace_back(at, pkt);
                });
            agents.push_back(agent.get());
            node.set_agent(std::move(agent));
        }
        network.start_agents();
    }

    void warm_up(double seconds = 5.0) {
        network.sim().run_until(SimTime::seconds(seconds));
    }

    net::Network network;
    std::vector<GpsrGreedyAgent*> agents;
    std::vector<std::pair<NodeId, Packet>> deliveries;
};

TEST(Gpsr, HelloBuildsNeighborTables) {
    GpsrNet net({{0, 0}, {200, 0}, {400, 0}});
    net.warm_up();
    EXPECT_EQ(net.agents[0]->neighbor_count(), 1u);  // only node 1 in range
    EXPECT_EQ(net.agents[1]->neighbor_count(), 2u);
    EXPECT_EQ(net.agents[2]->neighbor_count(), 1u);
}

TEST(Gpsr, DeliversOverMultipleHops) {
    GpsrNet net({{0, 0}, {200, 0}, {400, 0}, {600, 0}});
    net.warm_up();
    net.agents[0]->send_data(3, 0, 0, {1, 2, 3});
    net.network.sim().run_until(6_s);
    ASSERT_EQ(net.deliveries.size(), 1u);
    EXPECT_EQ(net.deliveries[0].first, 3u);
    EXPECT_EQ(net.deliveries[0].second.hops, 3u);
    EXPECT_EQ(net.deliveries[0].second.body, (net::Bytes{1, 2, 3}));
    EXPECT_EQ(net.agents[0]->stats().app_sent, 1u);
    EXPECT_EQ(net.agents[3]->stats().delivered, 1u);
}

TEST(Gpsr, SingleHopDirectDelivery) {
    GpsrNet net({{0, 0}, {100, 0}});
    net.warm_up();
    net.agents[0]->send_data(1, 0, 0, {9});
    net.network.sim().run_until(6_s);
    ASSERT_EQ(net.deliveries.size(), 1u);
    EXPECT_EQ(net.deliveries[0].second.hops, 1u);
}

TEST(Gpsr, GreedyPicksGeographicProgress) {
    // Node 0 can reach 1 (at 150) and 2 (at 240); dest is node 3 at 480.
    // Greedy must relay through 2 (closest to dest), not 1.
    GpsrNet net({{0, 0}, {150, 0}, {240, 0}, {480, 0}});
    net.warm_up();
    net.agents[0]->send_data(3, 0, 0, {});
    net.network.sim().run_until(6_s);
    ASSERT_EQ(net.deliveries.size(), 1u);
    EXPECT_EQ(net.agents[2]->stats().forwarded, 1u);
    EXPECT_EQ(net.agents[1]->stats().forwarded, 0u);
}

TEST(Gpsr, LocalMaximumDropsPacket) {
    // Gap between 200 and 600 exceeds radio range: greedy dead-ends at 1.
    GpsrNet net({{0, 0}, {200, 0}, {600, 0}});
    net.warm_up();
    net.agents[0]->send_data(2, 0, 0, {});
    net.network.sim().run_until(6_s);
    EXPECT_TRUE(net.deliveries.empty());
    EXPECT_EQ(net.agents[1]->stats().drop_no_route, 1u);
}

TEST(Gpsr, SourceAtLocalMaximumDropsImmediately) {
    GpsrNet net({{0, 0}, {600, 0}});
    net.warm_up();
    net.agents[0]->send_data(1, 0, 0, {});
    net.network.sim().run_until(6_s);
    EXPECT_TRUE(net.deliveries.empty());
    EXPECT_EQ(net.agents[0]->stats().drop_no_route, 1u);
}

TEST(Gpsr, NeighborExpiryAfterSilence) {
    GpsrNet net({{0, 0}, {200, 0}});
    net.warm_up(3.0);
    EXPECT_EQ(net.agents[0]->neighbor_count(), 1u);
    // Silence node 1 by stopping its agent's beacons: simplest is to just
    // run long past the TTL with node 1 removed from the air — emulate by
    // moving time forward without hellos using a fresh rig where node 1
    // never existed. Instead, verify purge logic directly: after TTL with
    // no refresh the table entry is gone on the next purge tick.
    // (Hellos keep refreshing here, so check the negative: it stays.)
    net.warm_up(20.0);
    EXPECT_EQ(net.agents[0]->neighbor_count(), 1u);
}

TEST(Gpsr, MacFailureTriggersRerouteViaAlternate) {
    // Diamond: 0 -> {1 up, 2 down} -> 3. Node 0 prefers whichever is closer
    // to 3; if that neighbor vanishes mid-run, MAC failure reroutes via the
    // other. We emulate vanishing by a node whose mobility jumps away.
    class Jumper final : public mobility::MobilityModel {
      public:
        explicit Jumper(Vec2 home) : home_(home) {}
        Vec2 position_at(SimTime t) override {
            return t > SimTime::seconds(6) ? Vec2{home_.x, 5000.0} : home_;
        }
        Vec2 velocity_at(SimTime) override { return {}; }
        Vec2 home_;
    };

    GpsrGreedyAgent::Params params;
    net::Network network(phy::PhyParams{}, 11);
    std::vector<GpsrGreedyAgent*> agents;
    std::vector<std::pair<NodeId, Packet>> deliveries;

    auto add = [&](std::unique_ptr<mobility::MobilityModel> mob) {
        net::Node& node = network.add_node(std::move(mob), mac::MacParams{});
        auto agent = std::make_unique<GpsrGreedyAgent>(
            node, params,
            [&network](NodeId id) -> std::optional<Vec2> {
                return network.true_position(id);
            },
            [&deliveries](NodeId at, const Packet& pkt) {
                deliveries.emplace_back(at, pkt);
            });
        agents.push_back(agent.get());
        node.set_agent(std::move(agent));
    };

    add(std::make_unique<mobility::StationaryMobility>(Vec2{0, 0}));      // 0
    add(std::make_unique<Jumper>(Vec2{200, 60}));                          // 1: better
    add(std::make_unique<mobility::StationaryMobility>(Vec2{180, -60}));  // 2: fallback
    add(std::make_unique<mobility::StationaryMobility>(Vec2{380, 0}));    // 3
    network.start_agents();
    network.sim().run_until(SimTime::seconds(6));

    // Node 1 jumps away; its beacons stop reaching us but the table entry is
    // still fresh, so the first forward goes to 1, fails at MAC, reroutes.
    network.sim().at(SimTime::seconds(6.2), [&] { agents[0]->send_data(3, 0, 0, {}); });
    network.sim().run_until(SimTime::seconds(12));
    ASSERT_EQ(deliveries.size(), 1u);
    EXPECT_EQ(deliveries[0].first, 3u);
    EXPECT_GE(agents[0]->stats().drop_mac + agents[0]->stats().forwarded, 1u);
}

TEST(Gpsr, ControlBytesAccounted) {
    GpsrNet net({{0, 0}, {100, 0}});
    net.warm_up(10.0);
    // ~6-7 hellos each at kGpsrHelloBytes.
    EXPECT_GT(net.agents[0]->stats().hello_sent, 4u);
    EXPECT_EQ(net.agents[0]->stats().control_bytes,
              net.agents[0]->stats().hello_sent * routing::kGpsrHelloBytes);
}

TEST(Gpsr, DuplicateSequencesDeliverOncePerSend) {
    GpsrNet net({{0, 0}, {150, 0}});
    net.warm_up();
    for (std::uint32_t i = 0; i < 20; ++i) net.agents[0]->send_data(1, 0, i, {});
    net.network.sim().run_until(8_s);
    EXPECT_EQ(net.deliveries.size(), 20u);
}

}  // namespace
