#include <gtest/gtest.h>

#include "workload/scenario.hpp"

namespace {

using namespace geoanon;
using fault::FaultPlan;
using util::SimTime;
using util::Vec2;
using workload::ScenarioConfig;
using workload::ScenarioResult;
using workload::ScenarioRunner;
using workload::Scheme;

/// 40-node AGFW-ACK scenario sized so churn tests finish in seconds.
ScenarioConfig churn_base() {
    ScenarioConfig cfg;
    cfg.scheme = Scheme::kAgfwAck;
    cfg.seed = 9;
    cfg.num_nodes = 40;
    cfg.sim_seconds = 120.0;
    cfg.num_flows = 15;
    cfg.num_senders = 10;
    cfg.cbr_pps = 2.0;
    cfg.traffic_start_s = 10.0;
    cfg.traffic_stop_s = 100.0;
    return cfg;
}

/// Sustained churn keeping ~20% of the network down at any time.
FaultPlan churn_plan_20pct(std::size_t num_nodes) {
    FaultPlan plan;
    plan.seed = 21;
    FaultPlan::Churn churn;
    churn.crash_rate_per_s = 0.6;
    churn.start = SimTime::seconds(15.0);
    churn.stop = SimTime::seconds(100.0);
    churn.min_down = SimTime::seconds(5.0);
    churn.max_down = SimTime::seconds(20.0);
    churn.max_concurrent_down = static_cast<int>(num_nodes / 5);  // 20%
    plan.churn = churn;
    return plan;
}

TEST(ChurnStress, BoundedDeliveryUnder20PercentChurn) {
    ScenarioConfig cfg = churn_base();
    cfg.faults = churn_plan_20pct(cfg.num_nodes);
    ScenarioResult r = ScenarioRunner(cfg).run();

    // Churn genuinely ran: many crash/recovery cycles, cap respected.
    EXPECT_GE(r.resilience.node_crashes, 8u);
    EXPECT_GE(r.resilience.node_recoveries, 4u);
    EXPECT_GE(r.resilience.recoveries_measured, 1u);
    EXPECT_GT(r.resilience.recovery_latency_p95_s, 0.0);
    EXPECT_GT(r.resilience.frames_lost_node_down, 0u);

    // Delivery degrades but stays bounded away from zero: ANT silence purge
    // plus NL-ACK rerouting route around the holes.
    EXPECT_GT(r.app_sent, 0u);
    EXPECT_GT(r.delivery_fraction, 0.1);
    EXPECT_LT(r.delivery_fraction, 1.0);

    // Faults never produce protocol-invariant violations.
    EXPECT_EQ(r.invariants.violations(), 0u);
    EXPECT_GT(r.invariants.frames_checked, 0u);
}

TEST(ChurnStress, DeterministicUnderChurn) {
    ScenarioConfig cfg = churn_base();
    cfg.faults = churn_plan_20pct(cfg.num_nodes);
    ScenarioResult a = ScenarioRunner(cfg).run();
    ScenarioResult b = ScenarioRunner(cfg).run();
    EXPECT_EQ(a.app_sent, b.app_sent);
    EXPECT_EQ(a.app_delivered, b.app_delivered);
    EXPECT_EQ(a.resilience.node_crashes, b.resilience.node_crashes);
    EXPECT_EQ(a.resilience.frames_lost_node_down, b.resilience.frames_lost_node_down);
    EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(ChurnStress, AllFaultClassesKeepInvariantsClean) {
    // Every fault class, one at a time, on a smaller run: none of them may
    // produce a single invariant violation — faults degrade delivery, never
    // correctness or anonymity.
    auto small = [] {
        ScenarioConfig cfg = churn_base();
        cfg.num_nodes = 25;
        cfg.sim_seconds = 60.0;
        cfg.traffic_stop_s = 50.0;
        cfg.num_flows = 8;
        cfg.num_senders = 6;
        return cfg;
    };

    std::vector<std::pair<const char*, ScenarioConfig>> cases;

    {
        ScenarioConfig cfg = small();
        cfg.faults.crashes.push_back({3, SimTime::seconds(20.0), SimTime::seconds(15.0)});
        cfg.faults.crashes.push_back({7, SimTime::seconds(25.0), SimTime{}});
        cases.emplace_back("scheduled-crashes", cfg);
    }
    {
        ScenarioConfig cfg = small();
        FaultPlan::Churn churn;
        churn.crash_rate_per_s = 0.4;
        churn.start = SimTime::seconds(10.0);
        churn.max_concurrent_down = 5;
        cfg.faults.churn = churn;
        cases.emplace_back("churn", cfg);
    }
    {
        ScenarioConfig cfg = small();
        FaultPlan::GilbertElliott ge;
        ge.mean_good_s = 1.0;
        ge.mean_bad_s = 0.5;
        ge.loss_bad = 0.9;
        cfg.faults.gilbert_elliott = ge;
        cases.emplace_back("loss-bursts", cfg);
    }
    {
        ScenarioConfig cfg = small();
        cfg.faults.jams.push_back(
            {Vec2{750, 150}, 200.0, SimTime::seconds(15.0), SimTime::seconds(45.0)});
        cases.emplace_back("jam-region", cfg);
    }
    {
        ScenarioConfig cfg = small();
        FaultPlan::GpsNoise noise;
        noise.sigma_m = 15.0;
        cfg.faults.gps_noise = noise;
        cases.emplace_back("gps-noise", cfg);
    }
    {
        ScenarioConfig cfg = small();
        cfg.location_service = routing::LocationService::Mode::kAnonymous;
        FaultPlan::AlsOutage outage;
        outage.target = 3;
        outage.at = SimTime::seconds(25.0);
        outage.duration = SimTime::seconds(20.0);
        cfg.faults.als_outages.push_back(outage);
        cases.emplace_back("als-outage", cfg);
    }
    {
        ScenarioConfig cfg = small();
        cfg.location_service = routing::LocationService::Mode::kAnonymous;
        FaultPlan::Partition split;
        split.boundary_x_m = 750.0;  // mid-area vertical split
        split.start = SimTime::seconds(15.0);
        split.heal = SimTime::seconds(40.0);
        cfg.faults.partitions.push_back(split);
        cases.emplace_back("partition", cfg);
    }
    {
        ScenarioConfig cfg = small();
        cfg.location_service = routing::LocationService::Mode::kAnonymous;
        FaultPlan::ServerFlap flap;
        flap.target = 3;
        flap.start = SimTime::seconds(15.0);
        flap.stop = SimTime::seconds(45.0);
        cfg.faults.server_flaps.push_back(flap);
        cases.emplace_back("server-flap", cfg);
    }

    for (auto& [name, cfg] : cases) {
        SCOPED_TRACE(name);
        ScenarioResult r = ScenarioRunner(cfg).run();
        EXPECT_GT(r.resilience.faults_injected, 0u);
        EXPECT_EQ(r.invariants.violations(), 0u);
        EXPECT_GT(r.invariants.frames_checked, 0u);
    }
}

TEST(ChurnStress, ResilienceCountersSurfaceInResult) {
    ScenarioConfig cfg = churn_base();
    cfg.num_nodes = 25;
    cfg.sim_seconds = 60.0;
    cfg.traffic_stop_s = 50.0;
    cfg.faults.crashes.push_back({5, SimTime::seconds(20.0), SimTime::seconds(10.0)});
    cfg.faults.crashes.push_back({9, SimTime::seconds(22.0), SimTime::seconds(10.0)});
    cfg.faults.jams.push_back(
        {Vec2{400, 150}, 150.0, SimTime::seconds(10.0), SimTime::seconds(40.0)});
    ScenarioResult r = ScenarioRunner(cfg).run();

    EXPECT_EQ(r.resilience.node_crashes, 2u);
    EXPECT_EQ(r.resilience.node_recoveries, 2u);
    EXPECT_GE(r.resilience.faults_injected, 3u);
    EXPECT_GT(r.resilience.frames_lost_jam, 0u);
    EXPECT_EQ(r.invariants.violations(), 0u);
}

TEST(ChurnStress, AlsOutageDegradesResolutionGracefully) {
    // With the anonymous location service under a server-grid outage the run
    // must complete with some failed resolutions at most — never a crash,
    // never an invariant violation — and the outage is visible in the
    // resilience counters.
    ScenarioConfig cfg = churn_base();
    cfg.num_nodes = 30;
    cfg.sim_seconds = 90.0;
    cfg.traffic_stop_s = 80.0;
    cfg.location_service = routing::LocationService::Mode::kAnonymous;
    FaultPlan::AlsOutage outage;
    outage.target = 2;
    outage.at = SimTime::seconds(30.0);
    outage.duration = SimTime::seconds(25.0);
    cfg.faults.als_outages.push_back(outage);
    ScenarioResult r = ScenarioRunner(cfg).run();

    EXPECT_GE(r.resilience.als_outages, 1u);
    EXPECT_GT(r.resilience.node_crashes, 0u);
    EXPECT_GT(r.ls.queries_sent, 0u);
    EXPECT_EQ(r.invariants.violations(), 0u);
}

}  // namespace
