#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bytes.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"
#include "util/vec2.hpp"

namespace {

using namespace geoanon::util;
using namespace geoanon::util::literals;

// ---------------------------------------------------------------- Vec2

TEST(Vec2, ArithmeticBasics) {
    const Vec2 a{3.0, 4.0};
    const Vec2 b{1.0, -2.0};
    EXPECT_EQ((a + b), (Vec2{4.0, 2.0}));
    EXPECT_EQ((a - b), (Vec2{2.0, 6.0}));
    EXPECT_EQ((a * 2.0), (Vec2{6.0, 8.0}));
    EXPECT_EQ((2.0 * a), (Vec2{6.0, 8.0}));
    EXPECT_EQ((a / 2.0), (Vec2{1.5, 2.0}));
}

TEST(Vec2, LengthAndDistance) {
    const Vec2 a{3.0, 4.0};
    EXPECT_DOUBLE_EQ(a.length(), 5.0);
    EXPECT_DOUBLE_EQ(a.length_sq(), 25.0);
    EXPECT_DOUBLE_EQ(distance({0, 0}, a), 5.0);
    EXPECT_DOUBLE_EQ(distance_sq({1, 1}, {4, 5}), 25.0);
}

TEST(Vec2, NormalizedUnitLength) {
    const Vec2 v = Vec2{10.0, -5.0}.normalized();
    EXPECT_NEAR(v.length(), 1.0, 1e-12);
}

TEST(Vec2, NormalizedZeroIsZero) {
    const Vec2 v = Vec2{}.normalized();
    EXPECT_EQ(v, Vec2{});
}

TEST(Vec2, CompoundAssignment) {
    Vec2 a{1, 2};
    a += {2, 3};
    EXPECT_EQ(a, (Vec2{3, 5}));
    a -= {1, 1};
    EXPECT_EQ(a, (Vec2{2, 4}));
}

// ---------------------------------------------------------------- SimTime

TEST(SimTime, Factories) {
    EXPECT_EQ(SimTime::seconds(1.5).ns(), 1'500'000'000);
    EXPECT_EQ(SimTime::millis(3).ns(), 3'000'000);
    EXPECT_EQ(SimTime::micros(7).ns(), 7'000);
    EXPECT_EQ(SimTime::nanos(42).ns(), 42);
}

TEST(SimTime, Literals) {
    EXPECT_EQ((2_s).ns(), 2'000'000'000);
    EXPECT_EQ((5_ms).ns(), 5'000'000);
    EXPECT_EQ((9_us).ns(), 9'000);
    EXPECT_EQ((13_ns).ns(), 13);
}

TEST(SimTime, ArithmeticAndComparison) {
    const SimTime a = 1_s;
    const SimTime b = 250_ms;
    EXPECT_EQ((a + b).ns(), 1'250'000'000);
    EXPECT_EQ((a - b).ns(), 750'000'000);
    EXPECT_EQ((b * 4).ns(), 1'000'000'000);
    EXPECT_LT(b, a);
    EXPECT_GE(a, b);
    EXPECT_EQ(a, 1000_ms);
}

TEST(SimTime, Conversions) {
    EXPECT_DOUBLE_EQ((1500_ms).to_seconds(), 1.5);
    EXPECT_DOUBLE_EQ((1500_us).to_millis(), 1.5);
}

TEST(SimTime, MaxActsAsInfinity) {
    EXPECT_GT(SimTime::max(), SimTime::seconds(1e9));
}

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSeed) {
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next_u64() == b.next_u64()) ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01InRange) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntBoundsInclusive) {
    Rng rng(7);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, UniformIntSingleton) {
    Rng rng(9);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntNoModuloBias) {
    // Chi-squared-ish sanity: counts should be near-uniform over 10 buckets.
    Rng rng(1234);
    int counts[10] = {};
    const int n = 100000;
    for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(0, 9)];
    for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, ExponentialMean) {
    Rng rng(5);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
    EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, BernoulliProbability) {
    Rng rng(11);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.3)) ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIndependentStreams) {
    Rng parent(42);
    Rng child = parent.fork();
    // Child stream should not replay the parent stream.
    Rng parent2(42);
    parent2.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (child.next_u64() == parent.next_u64()) ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, SplitMix64KnownSequence) {
    // Reference values for seed 0 from the SplitMix64 reference code.
    SplitMix64 sm(0);
    EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
    EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ULL);
    EXPECT_EQ(sm.next(), 0x06C45D188009454FULL);
}

// ---------------------------------------------------------------- stats

TEST(RunningStat, Empty) {
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanVarianceMinMax) {
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential) {
    RunningStat all, a, b;
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-5, 5);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
    RunningStat a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Sampler, Percentiles) {
    Sampler s;
    for (int i = 1; i <= 100; ++i) s.add(i);
    EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
    EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Sampler, EmptyReturnsZero) {
    Sampler s;
    EXPECT_EQ(s.percentile(50), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Sampler, SingleSampleEveryPercentile) {
    Sampler s;
    s.add(7.25);
    // Nearest-rank on one sample: every p maps to that sample.
    for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(s.percentile(p), 7.25) << "p=" << p;
    EXPECT_DOUBLE_EQ(s.min(), 7.25);
    EXPECT_DOUBLE_EQ(s.max(), 7.25);
}

TEST(Sampler, PercentileBoundsHitMinAndMax) {
    Sampler s;
    // Unsorted insertion order; p=0 must return the min, p=100 the max.
    for (const double x : {42.0, -3.0, 17.0, 0.5, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.percentile(0), -3.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
}

TEST(RunningStat, MergeSkewedSplitsMatchSinglePass) {
    // Ground truth: one single-pass accumulator over 500 values. Merging any
    // partition of the same values — including a 1-vs-499 split — must agree
    // on every moment.
    Rng rng(11);
    std::vector<double> xs;
    for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform(-1000.0, 1000.0));
    RunningStat all;
    for (const double x : xs) all.add(x);

    for (const std::size_t split : {std::size_t{1}, std::size_t{250}, std::size_t{499}}) {
        RunningStat a, b;
        for (std::size_t i = 0; i < xs.size(); ++i) (i < split ? a : b).add(xs[i]);
        a.merge(b);
        EXPECT_EQ(a.count(), all.count());
        EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
        EXPECT_NEAR(a.stddev(), all.stddev(), 1e-6);
        EXPECT_NEAR(a.sum(), all.sum(), 1e-6);
        EXPECT_DOUBLE_EQ(a.min(), all.min());
        EXPECT_DOUBLE_EQ(a.max(), all.max());
    }
}

TEST(Sampler, PercentileAfterMoreSamples) {
    Sampler s;
    s.add(10);
    EXPECT_DOUBLE_EQ(s.percentile(50), 10.0);
    s.add(20);
    s.add(30);
    EXPECT_DOUBLE_EQ(s.percentile(100), 30.0);  // re-sorts after mutation
}

// ---------------------------------------------------------------- bytes

TEST(Bytes, WriterReaderRoundTrip) {
    ByteWriter w;
    w.u8(0xAB);
    w.u16(0x1234);
    w.u32(0xDEADBEEF);
    w.u64(0x0123456789ABCDEFULL);
    w.f64(-1234.5678);
    w.str("hello");
    ByteReader r(w.data());
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u16(), 0x1234);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
    EXPECT_EQ(r.f64(), -1234.5678);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, ReaderUnderflowReturnsNullopt) {
    const Bytes buf{0x01, 0x02};
    ByteReader r(buf);
    EXPECT_TRUE(r.u16().has_value());
    EXPECT_FALSE(r.u16().has_value());
    EXPECT_FALSE(r.u8().has_value());
}

TEST(Bytes, LengthPrefixedBytes) {
    ByteWriter w;
    const Bytes payload{1, 2, 3, 4, 5};
    w.bytes(payload);
    ByteReader r(w.data());
    EXPECT_EQ(r.bytes(), payload);
}

TEST(Bytes, BigEndianLayout) {
    ByteWriter w;
    w.u32(0x01020304);
    EXPECT_EQ(w.data(), (Bytes{0x01, 0x02, 0x03, 0x04}));
}

TEST(Bytes, HexRoundTrip) {
    const Bytes data{0x00, 0xFF, 0x1a, 0x2B};
    EXPECT_EQ(to_hex(data), "00ff1a2b");
    EXPECT_EQ(from_hex("00ff1a2b"), data);
    EXPECT_EQ(from_hex("00FF1A2B"), data);
}

TEST(Bytes, FromHexRejectsBadInput) {
    EXPECT_FALSE(from_hex("abc").has_value());   // odd length
    EXPECT_FALSE(from_hex("zz").has_value());    // bad digit
    EXPECT_TRUE(from_hex("").has_value());       // empty is fine
}

TEST(Bytes, ConstantTimeEqual) {
    const Bytes a{1, 2, 3};
    const Bytes b{1, 2, 3};
    const Bytes c{1, 2, 4};
    const Bytes d{1, 2};
    EXPECT_TRUE(bytes_equal(a, b));
    EXPECT_FALSE(bytes_equal(a, c));
    EXPECT_FALSE(bytes_equal(a, d));
}

// ---------------------------------------------------------------- table

TEST(Table, RendersAlignedRows) {
    TablePrinter t({"name", "value"});
    t.row().cell("x").cell(42LL);
    t.row().cell("long-name").cell(3.5, 1);
    const std::string out = t.to_string();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    EXPECT_NE(out.find("3.5"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(Table, FmtDouble) {
    EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
    EXPECT_EQ(fmt_double(-0.5, 3), "-0.500");
}

// ---------------------------------------------------------------- retry

TEST(RetryPolicy, GrowsGeometricallyWithoutJitter) {
    Rng rng(1);
    const RetryPolicy::Params p{.initial = SimTime::seconds(2.0),
                                .multiplier = 2.0,
                                .cap = SimTime{},
                                .jitter = 0.0};
    EXPECT_EQ(RetryPolicy::delay(p, 1, rng), SimTime::seconds(2.0));
    EXPECT_EQ(RetryPolicy::delay(p, 2, rng), SimTime::seconds(4.0));
    EXPECT_EQ(RetryPolicy::delay(p, 3, rng), SimTime::seconds(8.0));
    EXPECT_EQ(RetryPolicy::delay(p, 4, rng), SimTime::seconds(16.0));
}

TEST(RetryPolicy, CapBoundsTheSchedule) {
    Rng rng(1);
    const RetryPolicy::Params p{.initial = SimTime::seconds(2.0),
                                .multiplier = 2.0,
                                .cap = SimTime::seconds(5.0),
                                .jitter = 0.0};
    EXPECT_EQ(RetryPolicy::delay(p, 1, rng), SimTime::seconds(2.0));
    EXPECT_EQ(RetryPolicy::delay(p, 2, rng), SimTime::seconds(4.0));
    EXPECT_EQ(RetryPolicy::delay(p, 3, rng), SimTime::seconds(5.0));
    EXPECT_EQ(RetryPolicy::delay(p, 10, rng), SimTime::seconds(5.0));
}

TEST(RetryPolicy, JitterStaysWithinFractionAndIsSeeded) {
    const RetryPolicy::Params p{.initial = SimTime::seconds(1.0),
                                .multiplier = 2.0,
                                .cap = SimTime::seconds(8.0),
                                .jitter = 0.25};
    Rng a(42), b(42), c(43);
    bool varied = false;
    for (int attempt = 1; attempt <= 8; ++attempt) {
        const SimTime da = RetryPolicy::delay(p, attempt, a);
        const SimTime db = RetryPolicy::delay(p, attempt, b);
        const SimTime base = RetryPolicy::delay(
            {.initial = p.initial, .multiplier = p.multiplier, .cap = p.cap,
             .jitter = 0.0},
            attempt, c);
        EXPECT_EQ(da, db);  // same seed, same schedule
        EXPECT_GE(da, base);
        EXPECT_LT(da.ns(), static_cast<std::int64_t>(1.25 * base.ns()) + 1);
        if (da != base) varied = true;
    }
    EXPECT_TRUE(varied);
}

TEST(RetryPolicy, ZeroJitterConsumesNoRandomness) {
    // Callers porting a legacy fixed schedule (AGFW ack backoff) must be able
    // to adopt the policy without perturbing their Rng stream.
    Rng used(7), untouched(7);
    const RetryPolicy::Params p{.initial = SimTime::millis(40),
                                .multiplier = 2.0,
                                .cap = SimTime::millis(640),
                                .jitter = 0.0};
    for (int attempt = 1; attempt <= 6; ++attempt)
        (void)RetryPolicy::delay(p, attempt, used);
    EXPECT_EQ(used.next_u64(), untouched.next_u64());
}

TEST(RetryPolicy, MatchesLegacyAgfwShiftSchedule) {
    // The AGFW ack timer used ack_timeout * 2^min(attempts, 4); the policy
    // with cap = 16 * initial reproduces it bit-exactly.
    Rng rng(1);
    const SimTime ack = SimTime::millis(40);
    const RetryPolicy::Params p{.initial = ack,
                                .multiplier = 2.0,
                                .cap = ack * 16,
                                .jitter = 0.0};
    for (int attempts = 0; attempts <= 8; ++attempts) {
        const SimTime legacy = ack * (1LL << std::min(attempts, 4));
        EXPECT_EQ(RetryPolicy::delay(p, attempts + 1, rng), legacy) << attempts;
    }
}

}  // namespace
