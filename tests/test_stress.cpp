// Stress and failure-injection tests: these check invariants under load and
// pathological configurations rather than specific behaviors.

#include <gtest/gtest.h>

#include "mac/mac80211.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace geoanon;
using namespace geoanon::util::literals;
using util::SimTime;

// ------------------------------------------------------------------- logging

TEST(Log, LevelGetSet) {
    const auto prev = util::log_level();
    util::set_log_level(util::LogLevel::kError);
    EXPECT_EQ(util::log_level(), util::LogLevel::kError);
    // Below-threshold calls are cheap no-ops; above-threshold calls must not
    // crash with varied format arguments.
    util::log_debug("dropped %d", 42);
    util::log_error("kept %s %f", "x", 1.5);
    util::set_log_level(util::LogLevel::kOff);
    util::log_error("also dropped");
    util::set_log_level(prev);
}

// ------------------------------------------------------ simulator under load

TEST(Stress, SimulatorRandomScheduleMaintainsTimeOrder) {
    sim::Simulator sim;
    util::Rng rng(99);
    SimTime last = SimTime::zero();
    bool ordered = true;
    std::function<void(int)> spawn = [&](int depth) {
        if (sim.now() < last) ordered = false;
        last = sim.now();
        if (depth <= 0) return;
        const int fanout = static_cast<int>(rng.uniform_int(0, 3));
        for (int i = 0; i < fanout; ++i) {
            sim.after(SimTime::micros(rng.uniform_int(0, 5000)),
                      [&, depth] { spawn(depth - 1); });
        }
    };
    for (int i = 0; i < 50; ++i)
        sim.at(SimTime::micros(rng.uniform_int(0, 1000)), [&] { spawn(6); });
    sim.run_until(SimTime::seconds(10));
    EXPECT_TRUE(ordered);
    EXPECT_GT(sim.events_processed(), 100u);
}

TEST(Stress, CancelStormIsHarmless) {
    sim::Simulator sim;
    std::vector<sim::EventId> ids;
    int fired = 0;
    for (int i = 0; i < 1000; ++i)
        ids.push_back(sim.at(SimTime::millis(i), [&] { ++fired; }));
    for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
    for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);  // double
    sim.run();
    EXPECT_EQ(fired, 500);
}

// ----------------------------------------------------------- broadcast storm

TEST(Stress, BroadcastStormCountersStayConsistent) {
    sim::Simulator sim;
    phy::Channel channel(sim, {});
    struct St {
        std::unique_ptr<phy::Radio> radio;
        std::unique_ptr<mac::Mac80211> mac;
    };
    std::vector<St> stations;
    util::Rng rng(3);
    for (int i = 0; i < 20; ++i) {
        St st;
        const util::Vec2 pos{rng.uniform(0, 200), rng.uniform(0, 200)};
        st.radio = std::make_unique<phy::Radio>(sim, channel, [pos] { return pos; });
        st.mac = std::make_unique<mac::Mac80211>(sim, *st.radio, i + 1,
                                                 mac::MacParams{}, util::Rng(i));
        stations.push_back(std::move(st));
    }
    // Everyone floods 20 broadcasts at t=0.
    for (auto& st : stations) {
        for (int i = 0; i < 20; ++i) {
            auto pkt = std::make_shared<net::Packet>();
            pkt->wire_bytes = 100;
            st.mac->send_broadcast(pkt);
        }
    }
    sim.run_until(SimTime::seconds(30));

    std::uint64_t sent = 0;
    for (auto& st : stations) {
        sent += st.mac->stats().data_sent;
        EXPECT_EQ(st.mac->queue_length(), 0u);  // everything drained
    }
    EXPECT_EQ(sent, 400u);  // broadcasts are never retransmitted by the MAC
    EXPECT_EQ(channel.stats().transmissions, 400u);
    // Deliveries: at most (stations-1) per transmission.
    EXPECT_LE(channel.stats().deliveries, 400u * 19u);
}

// --------------------------------------------------- pathological scenarios

TEST(Stress, ZeroFlowScenarioRuns) {
    workload::ScenarioConfig cfg;
    cfg.scheme = workload::Scheme::kAgfwAck;
    cfg.num_nodes = 10;
    cfg.num_flows = 0;  // hello traffic only
    cfg.num_senders = 1;
    cfg.sim_seconds = 30.0;
    const auto r = workload::ScenarioRunner(cfg).run();
    EXPECT_EQ(r.app_sent, 0u);
    EXPECT_EQ(r.app_delivered, 0u);
    EXPECT_GT(r.hello_sent, 0u);
}

TEST(Stress, TwoNodeScenarioRuns) {
    workload::ScenarioConfig cfg;
    cfg.scheme = workload::Scheme::kAgfwAck;
    cfg.num_nodes = 2;
    cfg.num_flows = 1;
    cfg.num_senders = 1;
    cfg.sim_seconds = 60.0;
    cfg.traffic_stop_s = 50.0;
    const auto r = workload::ScenarioRunner(cfg).run();
    EXPECT_GT(r.app_sent, 0u);
    // Two RWP nodes on a 1500x300 strip are often out of range: just demand
    // consistency, not delivery.
    EXPECT_LE(r.app_delivered, r.app_sent);
}

TEST(Stress, SaturatingTrafficDoesNotWedge) {
    workload::ScenarioConfig cfg;
    cfg.scheme = workload::Scheme::kAgfwAck;
    cfg.num_nodes = 30;
    cfg.num_flows = 30;
    cfg.cbr_pps = 50.0;  // ~12x the paper's rate: deliberate overload
    cfg.sim_seconds = 20.0;
    cfg.traffic_start_s = 2.0;  // flows begin in [2,12] s
    cfg.traffic_stop_s = 15.0;
    const auto r = workload::ScenarioRunner(cfg).run();
    EXPECT_GT(r.app_sent, 5000u);
    EXPECT_GT(r.delivery_fraction, 0.0);  // something still gets through
    EXPECT_LT(r.delivery_fraction, 1.0);  // and the overload is visible
    // Even under 12x overload the protocol never violates its invariants.
    EXPECT_EQ(r.invariants.violations(), 0u);
}

TEST(Stress, HighMobilityNoPauseRuns) {
    workload::ScenarioConfig cfg;
    cfg.scheme = workload::Scheme::kAgfwAck;
    cfg.num_nodes = 40;
    cfg.min_speed_mps = 15.0;
    cfg.max_speed_mps = 30.0;
    cfg.pause_s = 0.001;
    cfg.sim_seconds = 40.0;
    cfg.traffic_stop_s = 35.0;
    const auto r = workload::ScenarioRunner(cfg).run();
    EXPECT_GT(r.app_sent, 0u);
    // Extreme churn hurts but must not zero out delivery entirely.
    EXPECT_GT(r.delivery_fraction, 0.2);
    // Mobility churn stresses ANT freshness; the invariants must still hold.
    EXPECT_EQ(r.invariants.violations(), 0u);
}

TEST(Stress, TinyRadioRangeMostlyPartitions) {
    workload::ScenarioConfig cfg;
    cfg.scheme = workload::Scheme::kAgfwAck;
    cfg.num_nodes = 30;
    cfg.phy.range_m = 60.0;  // sparse coverage: frequent local maxima
    cfg.phy.cs_range_m = 130.0;
    cfg.sim_seconds = 30.0;
    cfg.traffic_stop_s = 25.0;
    const auto r = workload::ScenarioRunner(cfg).run();
    EXPECT_LT(r.delivery_fraction, 0.5);
    EXPECT_GT(r.drop_no_route + r.drop_unreachable, 0u);
    EXPECT_EQ(r.invariants.violations(), 0u);
}

}  // namespace
