#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/agfw.hpp"
#include "crypto/engine.hpp"
#include "mobility/mobility.hpp"
#include "net/network.hpp"

namespace {

using namespace geoanon;
using namespace geoanon::util::literals;
using core::AgfwAgent;
using net::NodeId;
using net::Packet;
using util::SimTime;
using util::Vec2;

/// Static AGFW network rig with a modeled crypto engine and perfect oracle.
struct AgfwNet {
    explicit AgfwNet(std::vector<Vec2> positions, AgfwAgent::Params params = {},
                     bool real_crypto = false)
        : network(phy::PhyParams{}, 13) {
        // Real crypto uses the paper's 512-bit keys: the AGFW trapdoor
        // payload (src, loc_s, tag_d) needs one full RSA block.
        if (real_crypto)
            engine = std::make_unique<crypto::RealCryptoEngine>(5, 512);
        else
            engine = std::make_unique<crypto::ModeledCryptoEngine>(5, 512);

        std::vector<crypto::NodeIdNum> universe;
        for (std::size_t i = 0; i < positions.size(); ++i) {
            engine->register_node(i);
            universe.push_back(i);
        }

        mac::MacParams mac_params;
        mac_params.use_rtscts = false;
        mac_params.anonymous_source = true;

        for (const Vec2& pos : positions) {
            net::Node& node = network.add_node(
                std::make_unique<mobility::StationaryMobility>(pos), mac_params);
            auto agent = std::make_unique<AgfwAgent>(
                node, params, *engine, universe,
                [this](NodeId id) -> std::optional<Vec2> {
                    return network.true_position(id);
                },
                [this](NodeId at, const Packet& pkt) {
                    deliveries.emplace_back(at, pkt);
                });
            agents.push_back(agent.get());
            node.set_agent(std::move(agent));
        }
        network.start_agents();
    }

    void warm_up(double seconds = 5.0) {
        network.sim().run_until(SimTime::seconds(seconds));
    }
    void run_until(double seconds) { network.sim().run_until(SimTime::seconds(seconds)); }

    net::Network network;
    std::unique_ptr<crypto::CryptoEngine> engine;
    std::vector<AgfwAgent*> agents;
    std::vector<std::pair<NodeId, Packet>> deliveries;
};

TEST(Agfw, HellosBuildAnonymousNeighborTable) {
    AgfwNet net({{0, 0}, {200, 0}, {400, 0}});
    net.warm_up();
    EXPECT_GE(net.agents[0]->ant().size(), 1u);
    EXPECT_GE(net.agents[1]->ant().size(), 2u);
    // Entries are pseudonymous: none of them equals a node id.
    for (const auto& e : net.agents[1]->ant().entries()) {
        EXPECT_NE(e.n, 0u);
        EXPECT_LT(e.n, 1ULL << 48);
    }
}

TEST(Agfw, DeliversOverMultipleHops) {
    AgfwNet net({{0, 0}, {200, 0}, {400, 0}, {600, 0}});
    net.warm_up();
    net.agents[0]->send_data(3, 0, 0, {4, 5, 6});
    net.run_until(8);
    ASSERT_EQ(net.deliveries.size(), 1u);
    EXPECT_EQ(net.deliveries[0].first, 3u);
    EXPECT_EQ(net.deliveries[0].second.body, (net::Bytes{4, 5, 6}));
    // Destination opened the trapdoor exactly where expected.
    EXPECT_EQ(net.agents[3]->stats().trapdoor_opens, 1u);
}

TEST(Agfw, OnlyDestinationOpensTrapdoor) {
    AgfwNet net({{0, 0}, {200, 0}, {400, 0}, {600, 0}});
    net.warm_up();
    net.agents[0]->send_data(3, 0, 0, {});
    net.run_until(8);
    ASSERT_EQ(net.deliveries.size(), 1u);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(net.agents[i]->stats().trapdoor_opens, 0u);
}

TEST(Agfw, TrapdoorAttemptsOnlyInLastHopRegion) {
    // The relay at 200 is 400 m from the destination location: it must relay
    // without attempting the trapdoor (§3.2's efficiency argument).
    AgfwNet net({{0, 0}, {200, 0}, {400, 0}, {600, 0}});
    net.warm_up();
    net.agents[0]->send_data(3, 0, 0, {});
    net.run_until(8);
    EXPECT_EQ(net.agents[1]->stats().trapdoor_attempts, 0u);
    // Node 2 is 200 m from the destination: inside the last-hop region, it
    // legitimately tries (and fails) before forwarding on.
    EXPECT_GE(net.agents[2]->stats().trapdoor_attempts, 1u);
}

TEST(Agfw, RealCryptoEndToEnd) {
    // Full integration with genuine RSA trapdoors (256-bit for speed).
    AgfwAgent::Params params;
    AgfwNet net({{0, 0}, {200, 0}, {400, 0}}, params, /*real_crypto=*/true);
    net.warm_up();
    net.agents[0]->send_data(2, 0, 0, {7, 7, 7});
    net.run_until(8);
    ASSERT_EQ(net.deliveries.size(), 1u);
    EXPECT_EQ(net.deliveries[0].first, 2u);
}

TEST(Agfw, NetworkAckRetransmitsUntilDelivered) {
    AgfwAgent::Params params;
    params.use_net_ack = true;
    AgfwNet net({{0, 0}, {200, 0}, {400, 0}}, params);
    net.warm_up();
    net.agents[0]->send_data(2, 0, 0, {});
    net.run_until(8);
    ASSERT_EQ(net.deliveries.size(), 1u);
    // In a quiet static network the first copy gets through: pending ACKs
    // resolved via the implicit (overheard forwarding) or explicit path.
    const auto& s0 = net.agents[0]->stats();
    EXPECT_EQ(s0.drop_unreachable, 0u);
}

TEST(Agfw, NoAckModeSendsNoAcks) {
    AgfwAgent::Params params;
    params.use_net_ack = false;
    AgfwNet net({{0, 0}, {200, 0}, {400, 0}}, params);
    net.warm_up();
    net.agents[0]->send_data(2, 0, 0, {});
    net.run_until(8);
    ASSERT_EQ(net.deliveries.size(), 1u);
    for (auto* a : net.agents) {
        EXPECT_EQ(a->stats().acks_sent, 0u);
        EXPECT_EQ(a->stats().retransmissions, 0u);
    }
}

TEST(Agfw, UnreachableNextHopFallsBackToAlternate) {
    // 0 hears a "ghost" neighbor whose hellos come from a node that then
    // leaves: NL-ACK failure must blacklist it and reroute via the other.
    class Jumper final : public mobility::MobilityModel {
      public:
        explicit Jumper(Vec2 home) : home_(home) {}
        Vec2 position_at(SimTime t) override {
            return t > SimTime::seconds(5) ? Vec2{home_.x, 9000.0} : home_;
        }
        Vec2 velocity_at(SimTime) override { return {}; }
        Vec2 home_;
    };

    AgfwAgent::Params params;
    params.ant.ttl = 30_s;  // keep the ghost's entries alive artificially
    params.ant.staleness_penalty_mps = 0.0;
    // The ghost accumulates several pseudonym entries before jumping; give
    // the source enough reroute budget to burn through all of them.
    params.reroute_limit = 8;

    net::Network network(phy::PhyParams{}, 17);
    crypto::ModeledCryptoEngine engine(5, 512);
    std::vector<crypto::NodeIdNum> universe{0, 1, 2, 3};
    for (auto id : universe) engine.register_node(id);
    mac::MacParams mp;
    mp.use_rtscts = false;
    mp.anonymous_source = true;
    std::vector<AgfwAgent*> agents;
    std::vector<std::pair<NodeId, Packet>> deliveries;
    auto add = [&](std::unique_ptr<mobility::MobilityModel> mob) {
        net::Node& node = network.add_node(std::move(mob), mp);
        auto agent = std::make_unique<AgfwAgent>(
            node, params, engine, universe,
            [&network](NodeId id) -> std::optional<Vec2> {
                // Oracle pinned to t=0 positions so the destination location
                // stays stable even after the ghost jumps.
                return network.node(id).mobility().position_at(SimTime::zero());
            },
            [&deliveries](NodeId at, const Packet& pkt) {
                deliveries.emplace_back(at, pkt);
            });
        agents.push_back(agent.get());
        node.set_agent(std::move(agent));
    };
    add(std::make_unique<mobility::StationaryMobility>(Vec2{0, 0}));     // 0 src
    add(std::make_unique<Jumper>(Vec2{220, 30}));                         // 1 ghost (best)
    add(std::make_unique<mobility::StationaryMobility>(Vec2{200, -40})); // 2 fallback
    add(std::make_unique<mobility::StationaryMobility>(Vec2{420, 0}));   // 3 dst
    network.start_agents();
    network.sim().run_until(SimTime::seconds(5));

    network.sim().at(SimTime::seconds(5.5), [&] { agents[0]->send_data(3, 0, 0, {}); });
    network.sim().run_until(SimTime::seconds(15));
    ASSERT_EQ(deliveries.size(), 1u);
    EXPECT_EQ(deliveries[0].first, 3u);
    EXPECT_GE(agents[0]->stats().retransmissions, 1u);
}

TEST(Agfw, LastAttemptReachesDestinationWithStaleAnt) {
    // Destination in range of the last forwarder but its ANT entry expired:
    // the "last forwarding attempt" broadcast with n = 0 must still deliver.
    AgfwAgent::Params params;
    params.hello_interval = 100_s;  // effectively no hellos after the first
    params.ant.ttl = 3_s;           // entries die quickly
    AgfwNet net({{0, 0}, {150, 0}}, params);
    net.warm_up(6.0);  // initial hellos expired by now
    EXPECT_EQ(net.agents[0]->ant().best_next_hop({0, 0}, {150, 0},
                                                 net.network.sim().now()),
              std::nullopt);
    net.agents[0]->send_data(1, 0, 0, {});
    net.run_until(12);
    ASSERT_EQ(net.deliveries.size(), 1u);
    EXPECT_EQ(net.agents[0]->stats().last_attempts, 1u);
}

TEST(Agfw, StuckOutsideLastHopRegionDrops) {
    // Next hop gap: 0 -> (nothing within range of 700-away destination).
    AgfwAgent::Params params;
    AgfwNet net({{0, 0}, {700, 0}}, params);
    net.warm_up();
    net.agents[0]->send_data(1, 0, 0, {});
    net.run_until(8);
    EXPECT_TRUE(net.deliveries.empty());
    EXPECT_EQ(net.agents[0]->stats().drop_no_route, 1u);
}

TEST(Agfw, PseudonymRotationStillAcceptsPreviousName) {
    // A forwarder that picked the pre-rotation pseudonym must still reach
    // the neighbor (the two-latest rule, §3.1.1). With a 1.5 s hello period
    // and multi-second traffic this is exercised continuously.
    AgfwNet net({{0, 0}, {200, 0}, {400, 0}});
    net.warm_up(10.0);
    for (std::uint32_t i = 0; i < 10; ++i) {
        net.agents[0]->send_data(2, 0, i, {});
        net.run_until(10.5 + i);
    }
    EXPECT_EQ(net.deliveries.size(), 10u);
}

TEST(Agfw, AuthenticatedHellosVerifyAndBuildTable) {
    AgfwAgent::Params params;
    params.authenticated_hello = true;
    params.ring_k = 2;
    AgfwNet net({{0, 0}, {200, 0}}, params);
    net.warm_up(6.0);
    EXPECT_GE(net.agents[0]->stats().hello_verified, 1u);
    EXPECT_EQ(net.agents[0]->stats().hello_rejected, 0u);
    EXPECT_GE(net.agents[0]->ant().size(), 1u);
    // Ring-signed hellos are much bigger than plain ones.
    EXPECT_GT(net.agents[0]->stats().control_bytes,
              net.agents[0]->stats().hello_sent * 100);
}

TEST(Agfw, AuthenticatedHellosWithRealRingSignatures) {
    AgfwAgent::Params params;
    params.authenticated_hello = true;
    params.ring_k = 1;
    params.hello_interval = 2_s;
    AgfwNet net({{0, 0}, {150, 0}}, params, /*real_crypto=*/true);
    net.warm_up(5.0);
    EXPECT_GE(net.agents[0]->stats().hello_verified, 1u);
    EXPECT_EQ(net.agents[0]->stats().hello_rejected, 0u);
}

TEST(Agfw, CertByReferenceFetchesDeclineOverTime) {
    AgfwAgent::Params params;
    params.authenticated_hello = true;
    params.ring_k = 2;
    params.certs_by_reference = true;
    AgfwNet net({{0, 0}, {150, 0}, {80, 100}}, params);
    net.warm_up(20.0);
    // §4: explicit cert requests decline after boot — the cache can never
    // fetch more than the universe size per node.
    for (auto* a : net.agents) EXPECT_LE(a->stats().cert_fetches, 3u);
}

TEST(Agfw, NoIdentityEverOnTheAir) {
    // Sniff every frame: AGFW traffic must never carry a cleartext node id
    // or a real MAC address.
    AgfwNet net({{0, 0}, {200, 0}, {400, 0}});
    bool leaked = false;
    net.network.channel().set_snoop([&](const phy::Frame& f, const Vec2&) {
        if (f.src != net::kBroadcastAddr && f.dst != net::kBroadcastAddr) leaked = true;
        if (f.payload) {
            if (f.payload->src_id != net::kInvalidNode) leaked = true;
            if (f.payload->dst_id != net::kInvalidNode) leaked = true;
        }
    });
    net.warm_up();
    net.agents[0]->send_data(2, 0, 0, {});
    net.run_until(8);
    ASSERT_EQ(net.deliveries.size(), 1u);
    EXPECT_FALSE(leaked);
}

TEST(Agfw, UidsOnTheAirDoNotEmbedTheSourceId) {
    // Regression for the GL010 headline leak: fresh_uid() used to build
    // uids as (source id << 32 | counter), so every data frame — and every
    // ACK echoing the uid back — named the data source in cleartext. After
    // the anonymize_uid PRP, no on-air uid may carry the source id in its
    // top 32 bits, and consecutive uids from one source must not share a
    // recognizable prefix.
    AgfwNet net({{0, 0}, {150, 0}});
    std::vector<std::uint64_t> air_uids;
    net.network.channel().set_snoop([&](const phy::Frame& f, const Vec2&) {
        if (!f.payload) return;
        if (f.payload->type == net::PacketType::kAgfwData && f.payload->uid != 0)
            air_uids.push_back(f.payload->uid);
        if (f.payload->type == net::PacketType::kAgfwAck)
            for (const std::uint64_t uid : f.payload->ack_uids)
                air_uids.push_back(uid);
    });
    net.warm_up();
    for (std::uint32_t i = 0; i < 4; ++i) net.agents[0]->send_data(1, 0, i, {});
    net.run_until(10);
    EXPECT_EQ(net.deliveries.size(), 4u);
    ASSERT_GE(air_uids.size(), 8u);  // data frames + their ACKs
    std::set<std::uint64_t> tops;
    for (const std::uint64_t uid : air_uids) {
        // Pre-fix shape: uid >> 32 == source node id (0 here, with small
        // counters below). Neither half may reveal the raw layout.
        EXPECT_NE(uid >> 32, 0u) << "uid still carries source id 0 on top";
        tops.insert(uid >> 32);
    }
    // All uids from this single source used to collapse onto one top half.
    EXPECT_GT(tops.size(), 1u);
}

TEST(Agfw, DuplicateDataDeliveredOnce) {
    AgfwNet net({{0, 0}, {150, 0}});
    net.warm_up();
    net.agents[0]->send_data(1, 0, 0, {});
    net.agents[0]->send_data(1, 0, 1, {});
    net.run_until(8);
    EXPECT_EQ(net.deliveries.size(), 2u);
    EXPECT_EQ(net.agents[1]->stats().delivered, 2u);
}

TEST(Agfw, AggregatedAcksBatchMultipleUids) {
    // §3.2: one ACK may cover several received packets. Give the receiver a
    // 30 ms aggregation window and push several packets within it.
    AgfwAgent::Params params;
    params.ack_aggregation = 30_ms;
    params.piggyback_acks = false;  // force explicit ACKs so batching shows
    AgfwNet net({{0, 0}, {150, 0}}, params);
    net.warm_up();
    std::size_t ack_packets = 0;
    std::size_t acked_uids = 0;
    net.network.channel().set_snoop([&](const phy::Frame& f, const util::Vec2&) {
        if (f.payload && f.payload->type == net::PacketType::kAgfwAck) {
            ++ack_packets;
            acked_uids += f.payload->ack_uids.size();
        }
    });
    for (std::uint32_t i = 0; i < 5; ++i) net.agents[0]->send_data(1, 0, i, {});
    net.run_until(10);
    EXPECT_EQ(net.deliveries.size(), 5u);
    EXPECT_GE(acked_uids, 5u);        // every packet acknowledged
    EXPECT_LT(ack_packets, acked_uids);  // ...in fewer ACK packets
}

TEST(Agfw, ImmediateAcksAreOnePerUid) {
    AgfwAgent::Params params;
    params.piggyback_acks = false;
    AgfwNet net({{0, 0}, {150, 0}}, params);
    net.warm_up();
    std::size_t ack_packets = 0, acked_uids = 0;
    net.network.channel().set_snoop([&](const phy::Frame& f, const util::Vec2&) {
        if (f.payload && f.payload->type == net::PacketType::kAgfwAck) {
            ++ack_packets;
            acked_uids += f.payload->ack_uids.size();
        }
    });
    for (std::uint32_t i = 0; i < 5; ++i) net.agents[0]->send_data(1, 0, i, {});
    net.run_until(10);
    EXPECT_EQ(ack_packets, acked_uids);
}

TEST(Agfw, AckBackoffDoublesRetransmitGaps) {
    // Source at 0, relay at 200 (the only forward option), destination at
    // 500 — out of everyone's range, so crashing the relay starves the
    // source of ACKs and its retransmit timer runs the full schedule.
    AgfwAgent::Params params;
    params.ack_backoff = true;
    params.ack_timeout = 100_ms;
    params.ack_retries = 3;
    params.reroute_limit = 0;
    AgfwNet net({{0, 0}, {200, 0}, {500, 0}}, params);
    net.warm_up();

    std::vector<double> tx_s;
    net.network.channel().set_snoop([&](const phy::Frame& f, const Vec2&) {
        if (f.payload && f.payload->type == net::PacketType::kAgfwData)
            tx_s.push_back(net.network.sim().now().to_seconds());
    });
    net.network.node(1).set_up(false);  // silent crash: no ACK will ever come
    net.network.sim().at(SimTime::seconds(5.5),
                         [&] { net.agents[0]->send_data(2, 0, 0, {}); });
    net.run_until(12);

    // Initial copy + ack_retries rebroadcasts, then the reroute budget (0)
    // is exhausted and the packet is dropped as unreachable.
    ASSERT_EQ(tx_s.size(), 4u);
    EXPECT_EQ(net.agents[0]->stats().retransmissions, 3u);
    EXPECT_EQ(net.agents[0]->stats().drop_unreachable, 1u);
    const double g1 = tx_s[1] - tx_s[0];
    const double g2 = tx_s[2] - tx_s[1];
    const double g3 = tx_s[3] - tx_s[2];
    // Gaps follow ack_timeout * 2^attempts (plus sub-ms MAC access delay).
    EXPECT_NEAR(g1, 0.1, 0.02);
    EXPECT_NEAR(g2 / g1, 2.0, 0.3);
    EXPECT_NEAR(g3 / g2, 2.0, 0.3);
}

TEST(Agfw, FixedTimeoutKeepsRetransmitGapsFlat) {
    // Ablation twin of AckBackoffDoublesRetransmitGaps: with ack_backoff off
    // every gap equals ack_timeout.
    AgfwAgent::Params params;
    params.ack_backoff = false;
    params.ack_timeout = 100_ms;
    params.ack_retries = 3;
    params.reroute_limit = 0;
    AgfwNet net({{0, 0}, {200, 0}, {500, 0}}, params);
    net.warm_up();

    std::vector<double> tx_s;
    net.network.channel().set_snoop([&](const phy::Frame& f, const Vec2&) {
        if (f.payload && f.payload->type == net::PacketType::kAgfwData)
            tx_s.push_back(net.network.sim().now().to_seconds());
    });
    net.network.node(1).set_up(false);
    net.network.sim().at(SimTime::seconds(5.5),
                         [&] { net.agents[0]->send_data(2, 0, 0, {}); });
    net.run_until(12);

    ASSERT_EQ(tx_s.size(), 4u);
    for (std::size_t i = 1; i < tx_s.size(); ++i)
        EXPECT_NEAR(tx_s[i] - tx_s[i - 1], 0.1, 0.02);
}

TEST(Agfw, RerouteLimitExhaustionDropsUnreachable) {
    // Three parallel relays all make progress toward the far destination;
    // crash them all and the source must walk distinct next-hop pseudonyms
    // until the reroute budget runs out.
    AgfwAgent::Params params;
    params.ack_retries = 0;       // every timeout goes straight to reroute
    params.ack_timeout = 50_ms;
    params.reroute_limit = 2;
    AgfwNet net({{0, 0}, {200, 0}, {190, 60}, {190, -60}, {600, 0}}, params);
    net.warm_up();

    std::vector<std::uint64_t> next_hops;
    net.network.channel().set_snoop([&](const phy::Frame& f, const Vec2&) {
        if (f.payload && f.payload->type == net::PacketType::kAgfwData)
            next_hops.push_back(f.payload->next_hop_pseudonym);
    });
    for (NodeId relay : {1u, 2u, 3u}) net.network.node(relay).set_up(false);
    net.network.sim().at(SimTime::seconds(5.5),
                         [&] { net.agents[0]->send_data(4, 0, 0, {}); });
    net.run_until(12);

    // Initial attempt + reroute_limit alternates, each to a fresh pseudonym.
    ASSERT_EQ(next_hops.size(), 3u);
    EXPECT_NE(next_hops[0], next_hops[1]);
    EXPECT_NE(next_hops[1], next_hops[2]);
    EXPECT_NE(next_hops[0], next_hops[2]);
    EXPECT_EQ(net.agents[0]->stats().drop_unreachable, 1u);
    EXPECT_TRUE(net.deliveries.empty());
}

TEST(Agfw, HopCountReflectsPath) {
    AgfwNet net({{0, 0}, {200, 0}, {400, 0}, {600, 0}, {800, 0}});
    net.warm_up();
    net.agents[0]->send_data(4, 0, 0, {});
    net.run_until(8);
    ASSERT_EQ(net.deliveries.size(), 1u);
    EXPECT_GE(net.deliveries[0].second.hops, 4u);
}

}  // namespace
