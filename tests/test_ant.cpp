#include <gtest/gtest.h>

#include "core/ant.hpp"
#include "core/pseudonym.hpp"
#include "crypto/engine.hpp"

namespace {

using namespace geoanon;
using core::AnonymousNeighborTable;
using core::PseudonymManager;
using util::SimTime;
using util::Vec2;

AnonymousNeighborTable::Entry entry(std::uint64_t n, Vec2 loc, double ts_s,
                                    double expires_s, Vec2 vel = {}) {
    AnonymousNeighborTable::Entry e;
    e.n = n;
    e.loc = loc;
    e.velocity = vel;
    e.ts = SimTime::seconds(ts_s);
    e.expires = SimTime::seconds(expires_s);
    return e;
}

AnonymousNeighborTable::Params no_penalty() {
    AnonymousNeighborTable::Params p;
    p.staleness_penalty_mps = 0.0;
    p.use_velocity = false;
    return p;
}

TEST(Ant, InsertAndSize) {
    AnonymousNeighborTable ant(no_penalty());
    ant.insert(entry(1, {10, 0}, 0, 10));
    ant.insert(entry(2, {20, 0}, 0, 10));
    EXPECT_EQ(ant.size(), 2u);
}

TEST(Ant, SamePseudonymRefreshesInPlace) {
    AnonymousNeighborTable ant(no_penalty());
    ant.insert(entry(1, {10, 0}, 0, 10));
    ant.insert(entry(1, {30, 0}, 5, 15));
    EXPECT_EQ(ant.size(), 1u);
    EXPECT_EQ(ant.entries()[0].loc, (Vec2{30, 0}));
}

TEST(Ant, StaleUpdateForSamePseudonymIgnored) {
    AnonymousNeighborTable ant(no_penalty());
    ant.insert(entry(1, {30, 0}, 5, 15));
    ant.insert(entry(1, {10, 0}, 2, 12));  // older timestamp
    EXPECT_EQ(ant.entries()[0].loc, (Vec2{30, 0}));
}

TEST(Ant, MultipleEntriesForOnePhysicalNeighbor) {
    // §3.1.1: the same neighbor appears under several pseudonyms and the
    // receiver cannot (and does not) merge them.
    AnonymousNeighborTable ant(no_penalty());
    ant.insert(entry(101, {10, 0}, 0, 10));
    ant.insert(entry(102, {11, 0}, 1, 11));  // same node, next hello
    EXPECT_EQ(ant.size(), 2u);
}

TEST(Ant, PurgeDropsExpired) {
    AnonymousNeighborTable ant(no_penalty());
    ant.insert(entry(1, {10, 0}, 0, 5));
    ant.insert(entry(2, {20, 0}, 0, 15));
    ant.purge(SimTime::seconds(10));
    EXPECT_EQ(ant.size(), 1u);
    EXPECT_EQ(ant.entries()[0].n, 2u);
}

TEST(Ant, EraseByPseudonym) {
    AnonymousNeighborTable ant(no_penalty());
    ant.insert(entry(1, {10, 0}, 0, 10));
    ant.insert(entry(2, {20, 0}, 0, 10));
    ant.erase(1);
    EXPECT_EQ(ant.size(), 1u);
    EXPECT_EQ(ant.entries()[0].n, 2u);
}

TEST(Ant, BestNextHopPicksClosestToDestination) {
    AnonymousNeighborTable ant(no_penalty());
    ant.insert(entry(1, {100, 0}, 0, 10));
    ant.insert(entry(2, {200, 0}, 0, 10));
    const auto best = ant.best_next_hop({0, 0}, {500, 0}, SimTime::seconds(1));
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->n, 2u);
}

TEST(Ant, RequiresPositiveProgress) {
    AnonymousNeighborTable ant(no_penalty());
    ant.insert(entry(1, {-100, 0}, 0, 10));  // behind us
    EXPECT_FALSE(ant.best_next_hop({0, 0}, {500, 0}, SimTime::seconds(1)).has_value());
}

TEST(Ant, ExcludeListSkipsEntries) {
    AnonymousNeighborTable ant(no_penalty());
    ant.insert(entry(1, {100, 0}, 0, 10));
    ant.insert(entry(2, {200, 0}, 0, 10));
    const auto best = ant.best_next_hop({0, 0}, {500, 0}, SimTime::seconds(1), {2});
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->n, 1u);
    EXPECT_FALSE(ant.best_next_hop({0, 0}, {500, 0}, SimTime::seconds(1), {1, 2}));
}

TEST(Ant, ExpiredEntriesNeverChosen) {
    AnonymousNeighborTable ant(no_penalty());
    ant.insert(entry(1, {100, 0}, 0, 2));
    EXPECT_FALSE(ant.best_next_hop({0, 0}, {500, 0}, SimTime::seconds(3)).has_value());
}

TEST(Ant, FreshnessBeatsRawProgressWhenPenalized) {
    // §3.1.1: "preferable to choose a fresher position rather than the best
    // one". Entry 1 looks better but is 4 s stale; with a 20 m/s penalty the
    // fresh entry 2 wins.
    AnonymousNeighborTable::Params p;
    p.staleness_penalty_mps = 20.0;
    p.use_velocity = false;
    AnonymousNeighborTable ant(p);
    ant.insert(entry(1, {250, 0}, 0, 10));  // dist to dest 250, age 4 -> score 330
    ant.insert(entry(2, {200, 0}, 4, 14));  // dist to dest 300, age 0 -> score 300
    const auto best = ant.best_next_hop({0, 0}, {500, 0}, SimTime::seconds(4));
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->n, 2u);
}

TEST(Ant, ZeroPenaltyPrefersRawProgress) {
    AnonymousNeighborTable ant(no_penalty());
    ant.insert(entry(1, {250, 0}, 0, 10));
    ant.insert(entry(2, {200, 0}, 4, 14));
    const auto best = ant.best_next_hop({0, 0}, {500, 0}, SimTime::seconds(4));
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->n, 1u);
}

TEST(Ant, VelocityDeadReckoning) {
    AnonymousNeighborTable::Params p;
    p.staleness_penalty_mps = 0.0;
    p.use_velocity = true;
    AnonymousNeighborTable ant(p);
    // Entry moving toward the destination at 20 m/s, reported 5 s ago.
    ant.insert(entry(1, {100, 0}, 0, 10, {20, 0}));
    const Vec2 predicted = ant.predicted_position(ant.entries()[0], SimTime::seconds(5));
    EXPECT_EQ(predicted, (Vec2{200, 0}));
    // Stationary-looking entry at 150 loses to the dead-reckoned one at 200.
    ant.insert(entry(2, {150, 0}, 5, 15));
    const auto best = ant.best_next_hop({0, 0}, {500, 0}, SimTime::seconds(5));
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->n, 1u);
}

TEST(Ant, CapacityEvictsStalest) {
    AnonymousNeighborTable::Params p = no_penalty();
    p.max_entries = 3;
    AnonymousNeighborTable ant(p);
    ant.insert(entry(1, {1, 0}, 1, 10));
    ant.insert(entry(2, {2, 0}, 0, 10));  // stalest
    ant.insert(entry(3, {3, 0}, 2, 10));
    ant.insert(entry(4, {4, 0}, 3, 10));  // evicts n=2
    EXPECT_EQ(ant.size(), 3u);
    for (const auto& e : ant.entries()) EXPECT_NE(e.n, 2u);
}

// ------------------------------------------------------------- pseudonyms

TEST(PseudonymManager, RotationKeepsTwoLatest) {
    crypto::ModeledCryptoEngine engine(1, 256);
    engine.register_node(5);
    util::Rng rng(2);
    PseudonymManager pm(engine, 5, rng);
    const auto first = pm.current();
    EXPECT_TRUE(pm.is_mine(first));

    const auto second = pm.rotate();
    EXPECT_TRUE(pm.is_mine(first));   // previous still accepted (§3.1.1)
    EXPECT_TRUE(pm.is_mine(second));

    const auto third = pm.rotate();
    EXPECT_FALSE(pm.is_mine(first));  // only two latest are remembered
    EXPECT_TRUE(pm.is_mine(second));
    EXPECT_TRUE(pm.is_mine(third));
}

TEST(PseudonymManager, NeverClaimsLastAttemptMarker) {
    crypto::ModeledCryptoEngine engine(1, 256);
    engine.register_node(5);
    util::Rng rng(3);
    PseudonymManager pm(engine, 5, rng);
    for (int i = 0; i < 100; ++i) {
        EXPECT_NE(pm.rotate(), crypto::kLastAttemptPseudonym);
        EXPECT_FALSE(pm.is_mine(crypto::kLastAttemptPseudonym));
    }
}

TEST(Ant, SilentEntryNotSelectedBeforeAnnouncedExpiry) {
    // A neighbor that stops beaconing must not be chosen for its full
    // advertised lifetime: the silence window cuts it off early.
    AnonymousNeighborTable::Params p = no_penalty();
    p.silence_timeout = SimTime::seconds(3.5);
    AnonymousNeighborTable ant(p);
    ant.insert(entry(1, {100, 0}, 0, /*expires_s=*/30));  // long announced ttl
    // Inside the silence window the entry is usable...
    EXPECT_TRUE(ant.best_next_hop({0, 0}, {300, 0}, SimTime::seconds(3)).has_value());
    // ...past it the entry is dead even though expires is far away.
    EXPECT_EQ(ant.best_next_hop({0, 0}, {300, 0}, SimTime::seconds(4)), std::nullopt);
    ant.purge(SimTime::seconds(4));
    EXPECT_EQ(ant.size(), 0u);
}

TEST(Ant, SilenceWindowRefreshedByNewerHello) {
    AnonymousNeighborTable::Params p = no_penalty();
    p.silence_timeout = SimTime::seconds(3.5);
    AnonymousNeighborTable ant(p);
    ant.insert(entry(1, {100, 0}, 0, 30));
    ant.insert(entry(1, {110, 0}, 3, 30));  // fresh hello, same pseudonym
    EXPECT_TRUE(ant.best_next_hop({0, 0}, {300, 0}, SimTime::seconds(5)).has_value());
}

TEST(Ant, ZeroSilenceTimeoutDisablesPurge) {
    AnonymousNeighborTable ant(no_penalty());  // silence_timeout defaults to 0
    ant.insert(entry(1, {100, 0}, 0, 30));
    EXPECT_TRUE(ant.best_next_hop({0, 0}, {300, 0}, SimTime::seconds(29)).has_value());
}

TEST(Ant, ClearDropsEverything) {
    AnonymousNeighborTable ant(no_penalty());
    ant.insert(entry(1, {10, 0}, 0, 10));
    ant.insert(entry(2, {20, 0}, 0, 10));
    ant.clear();
    EXPECT_EQ(ant.size(), 0u);
}

TEST(PseudonymManager, PseudonymsChangePerRotation) {
    crypto::ModeledCryptoEngine engine(1, 256);
    engine.register_node(5);
    util::Rng rng(4);
    PseudonymManager pm(engine, 5, rng);
    const auto a = pm.current();
    const auto b = pm.rotate();
    EXPECT_NE(a, b);
}

}  // namespace
