#include <gtest/gtest.h>

#include "workload/scenario.hpp"

namespace {

using namespace geoanon;
using workload::Scheme;
using workload::ScenarioConfig;
using workload::ScenarioResult;
using workload::ScenarioRunner;

ScenarioConfig small_config(Scheme scheme, std::uint64_t seed = 1) {
    ScenarioConfig cfg;
    cfg.scheme = scheme;
    cfg.num_nodes = 40;
    cfg.sim_seconds = 60.0;
    cfg.traffic_stop_s = 50.0;
    cfg.seed = seed;
    return cfg;
}

TEST(Scenario, SchemeNames) {
    EXPECT_EQ(workload::scheme_name(Scheme::kGpsrGreedy), "gpsr-greedy");
    EXPECT_EQ(workload::scheme_name(Scheme::kAgfwAck), "agfw-ack");
    EXPECT_EQ(workload::scheme_name(Scheme::kAgfwNoAck), "agfw-noack");
}

TEST(Scenario, GpsrBaselineDeliversWell) {
    ScenarioRunner runner(small_config(Scheme::kGpsrGreedy));
    const ScenarioResult r = runner.run();
    EXPECT_GT(r.app_sent, 3000u);
    // 40 nodes on the 1500x300 strip is on the sparse side: greedy local
    // maxima cost a few percent even for the baseline.
    EXPECT_GT(r.delivery_fraction, 0.8);
    EXPECT_GT(r.avg_latency_ms, 0.0);
    EXPECT_GT(r.avg_hops, 1.0);
    EXPECT_GT(r.rts_sent, 0u);       // RTS/CTS in use
    EXPECT_EQ(r.acks_sent, 0u);      // no NL acks in GPSR
    // Wire discipline holds for the baseline too.
    EXPECT_GT(r.invariants.packets_checked, 0u);
    EXPECT_EQ(r.invariants.violations(), 0u);
}

TEST(Scenario, AgfwAckMatchesGpsrDelivery) {
    const ScenarioResult gpsr = ScenarioRunner(small_config(Scheme::kGpsrGreedy)).run();
    const ScenarioResult agfw = ScenarioRunner(small_config(Scheme::kAgfwAck)).run();
    // Figure 1(a): AGFW with ACK has "almost same performance" as GPSR.
    EXPECT_NEAR(agfw.delivery_fraction, gpsr.delivery_fraction, 0.05);
    EXPECT_EQ(agfw.rts_sent, 0u);    // anonymous broadcasts: no handshake
    EXPECT_GT(agfw.acks_sent, 0u);
    EXPECT_GT(agfw.trapdoor_opens, 0u);
    // The anonymity/addressing/reliability invariants hold throughout.
    EXPECT_GT(agfw.invariants.frames_checked, 0u);
    EXPECT_EQ(agfw.invariants.violations(), 0u);
}

TEST(Scenario, AgfwNoAckDeliversWorse) {
    const ScenarioResult ack = ScenarioRunner(small_config(Scheme::kAgfwAck)).run();
    const ScenarioResult noack = ScenarioRunner(small_config(Scheme::kAgfwNoAck)).run();
    // Figure 1(a): the unacknowledged variant is "not satisfactory".
    EXPECT_LT(noack.delivery_fraction, ack.delivery_fraction - 0.1);
    EXPECT_EQ(noack.acks_sent, 0u);
    EXPECT_EQ(noack.nl_retransmissions, 0u);
}

TEST(Scenario, DeterministicForSeed) {
    const ScenarioResult a = ScenarioRunner(small_config(Scheme::kAgfwAck, 9)).run();
    const ScenarioResult b = ScenarioRunner(small_config(Scheme::kAgfwAck, 9)).run();
    EXPECT_EQ(a.app_sent, b.app_sent);
    EXPECT_EQ(a.app_delivered, b.app_delivered);
    EXPECT_EQ(a.events_processed, b.events_processed);
    EXPECT_DOUBLE_EQ(a.avg_latency_ms, b.avg_latency_ms);
    EXPECT_EQ(a.mac_collisions, b.mac_collisions);
}

TEST(Scenario, DifferentSeedsDiffer) {
    const ScenarioResult a = ScenarioRunner(small_config(Scheme::kAgfwAck, 1)).run();
    const ScenarioResult b = ScenarioRunner(small_config(Scheme::kAgfwAck, 2)).run();
    EXPECT_NE(a.events_processed, b.events_processed);
}

TEST(Scenario, CryptoCostsRaiseLatency) {
    ScenarioConfig with = small_config(Scheme::kAgfwAck, 4);
    ScenarioConfig without = small_config(Scheme::kAgfwAck, 4);
    without.charge_crypto_costs = false;
    const ScenarioResult r_with = ScenarioRunner(with).run();
    const ScenarioResult r_without = ScenarioRunner(without).run();
    // The 8.5 ms trapdoor decryption at the last hop must be visible.
    EXPECT_GT(r_with.avg_latency_ms, r_without.avg_latency_ms + 4.0);
}

TEST(Scenario, AuthenticatedHellosCostControlBytes) {
    ScenarioConfig plain_cfg = small_config(Scheme::kAgfwAck, 6);
    ScenarioConfig auth_cfg = small_config(Scheme::kAgfwAck, 6);
    auth_cfg.authenticated_hello = true;
    auth_cfg.ring_k = 4;
    const ScenarioResult plain = ScenarioRunner(plain_cfg).run();
    const ScenarioResult auth = ScenarioRunner(auth_cfg).run();
    EXPECT_GT(auth.control_bytes, plain.control_bytes * 3);
    EXPECT_GT(auth.cert_fetches, 0u);
}

TEST(Scenario, LocationServiceModeRuns) {
    ScenarioConfig cfg = small_config(Scheme::kAgfwAck, 8);
    cfg.location_service = routing::LocationService::Mode::kAnonymous;
    cfg.traffic_start_s = 20.0;  // let updates propagate first
    const ScenarioResult r = ScenarioRunner(cfg).run();
    EXPECT_GT(r.ls.updates_sent, 0u);
    EXPECT_GT(r.ls.queries_sent, 0u);
    EXPECT_GT(r.ls.resolved_ok, 0u);
    // Some packets deliver through the full anonymous stack.
    EXPECT_GT(r.delivery_fraction, 0.3);
    // ALS traffic also stays identity-free on the air.
    EXPECT_EQ(r.invariants.violations(), 0u);
}

TEST(Scenario, RealCryptoScenarioEndToEnd) {
    // The whole runner with genuine RSA-512 trapdoors (small and short).
    ScenarioConfig cfg = small_config(Scheme::kAgfwAck, 12);
    cfg.num_nodes = 15;
    cfg.num_flows = 4;
    cfg.num_senders = 4;
    cfg.sim_seconds = 30.0;
    cfg.traffic_stop_s = 25.0;
    cfg.use_real_crypto = true;
    const ScenarioResult r = ScenarioRunner(cfg).run();
    EXPECT_GT(r.app_sent, 0u);
    EXPECT_GT(r.trapdoor_attempts, 0u);
    EXPECT_EQ(r.trapdoor_opens, r.app_delivered);  // only destinations open
}

TEST(Scenario, RunnerExposesNetworkAndAgents) {
    ScenarioRunner runner(small_config(Scheme::kAgfwAck));
    runner.setup();
    EXPECT_EQ(runner.network().size(), 40u);
    EXPECT_NE(runner.agfw_agent(0), nullptr);
    EXPECT_EQ(runner.gpsr_agent(0), nullptr);
}

TEST(Scenario, HigherDensityDegradesGpsrLatencyNotAgfw) {
    // The Figure 1(b) crossover, in miniature (shorter run, two densities).
    ScenarioConfig gpsr_low = small_config(Scheme::kGpsrGreedy, 10);
    ScenarioConfig gpsr_high = small_config(Scheme::kGpsrGreedy, 10);
    gpsr_high.num_nodes = 150;
    ScenarioConfig agfw_high = small_config(Scheme::kAgfwAck, 10);
    agfw_high.num_nodes = 150;
    const ScenarioResult g_low = ScenarioRunner(gpsr_low).run();
    const ScenarioResult g_high = ScenarioRunner(gpsr_high).run();
    const ScenarioResult a_high = ScenarioRunner(agfw_high).run();
    EXPECT_GT(g_high.avg_latency_ms, g_low.avg_latency_ms * 2);
    EXPECT_LT(a_high.avg_latency_ms, g_high.avg_latency_ms);
}

}  // namespace
