// PseudonymPolicy semantics (DESIGN.md §16): zone geometry, rotation
// cadence per kind, and hello suppression wired through AgfwAgent.

#include <gtest/gtest.h>

#include "core/pseudonym_policy.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace geoanon;
using core::MixZone;
using core::PseudonymPolicy;

TEST(PseudonymPolicy, GridLayoutSpacesZonesOnTheMidline) {
    const mobility::Area area{1500.0, 300.0};
    const auto zones = PseudonymPolicy::grid_layout(area, 3, 100.0);
    ASSERT_EQ(zones.size(), 3u);
    EXPECT_DOUBLE_EQ(zones[0].center.x, 250.0);
    EXPECT_DOUBLE_EQ(zones[1].center.x, 750.0);
    EXPECT_DOUBLE_EQ(zones[2].center.x, 1250.0);
    for (const MixZone& z : zones) {
        EXPECT_DOUBLE_EQ(z.center.y, 150.0);
        EXPECT_DOUBLE_EQ(z.radius_m, 100.0);
    }
}

TEST(PseudonymPolicy, InZoneIsAnyZoneMembership) {
    PseudonymPolicy pol;
    pol.zones = {{{100.0, 100.0}, 50.0}, {{500.0, 100.0}, 50.0}};
    EXPECT_TRUE(pol.in_zone({120.0, 100.0}));
    EXPECT_TRUE(pol.in_zone({500.0, 140.0}));
    EXPECT_FALSE(pol.in_zone({300.0, 100.0}));
    // Boundary is inclusive.
    EXPECT_TRUE(pol.in_zone({150.0, 100.0}));
}

TEST(PseudonymPolicy, KindNamesAreStable) {
    EXPECT_STREQ(PseudonymPolicy::kind_name(PseudonymPolicy::Kind::kPerHello),
                 "per-hello");
    EXPECT_STREQ(PseudonymPolicy::kind_name(PseudonymPolicy::Kind::kTimed),
                 "timed");
    EXPECT_STREQ(PseudonymPolicy::kind_name(PseudonymPolicy::Kind::kMixZone),
                 "mix-zone");
    EXPECT_STREQ(
        PseudonymPolicy::kind_name(PseudonymPolicy::Kind::kVirtualMixZone),
        "virtual-pc");
}

// ---------------------------------------------------------------------------
// Policy behavior through AgfwAgent in a small scenario.
// ---------------------------------------------------------------------------

workload::ScenarioResult run_policy(const PseudonymPolicy& pol,
                                    double seconds = 60.0) {
    workload::ScenarioConfig cfg;
    cfg.scheme = workload::Scheme::kAgfwAck;
    cfg.num_nodes = 20;
    cfg.sim_seconds = seconds;
    cfg.traffic_stop_s = seconds - 5.0;
    cfg.num_flows = 6;
    cfg.num_senders = 6;
    cfg.seed = 23;
    cfg.agfw.pseudonym_policy = pol;
    workload::ScenarioRunner runner(cfg);
    return runner.run();
}

TEST(PseudonymPolicyScenario, PerHelloRotatesEveryHello) {
    const auto r = run_policy(PseudonymPolicy{});
    EXPECT_GT(r.hello_sent, 0u);
    EXPECT_EQ(r.hello_suppressed, 0u);
    EXPECT_EQ(r.pseudonym_rotations, r.hello_sent);
}

TEST(PseudonymPolicyScenario, TimedReusesThePseudonym) {
    PseudonymPolicy pol;
    pol.kind = PseudonymPolicy::Kind::kTimed;
    pol.rotate_interval = util::SimTime::seconds(30.0);
    const auto r = run_policy(pol);
    EXPECT_GT(r.hello_sent, 0u);
    EXPECT_EQ(r.hello_suppressed, 0u);
    // ~1 rotation per node per 30 s vs a hello every beacon interval.
    EXPECT_LT(r.pseudonym_rotations, r.hello_sent / 4);
    EXPECT_GT(r.pseudonym_rotations, 0u);
}

TEST(PseudonymPolicyScenario, WholeAreaMixZoneSilencesAllHellos) {
    PseudonymPolicy pol;
    pol.kind = PseudonymPolicy::Kind::kMixZone;
    pol.zones = {{{750.0, 150.0}, 1.0e9}};  // covers everything
    const auto r = run_policy(pol, 30.0);
    EXPECT_EQ(r.hello_sent, 0u);
    EXPECT_GT(r.hello_suppressed, 0u);
}

TEST(PseudonymPolicyScenario, MixZoneSuppressesOnlyInsideZones) {
    PseudonymPolicy pol;
    pol.kind = PseudonymPolicy::Kind::kMixZone;
    pol.zones = PseudonymPolicy::grid_layout({1500.0, 300.0}, 3, 150.0);
    const auto r = run_policy(pol);
    EXPECT_GT(r.hello_sent, 0u);
    EXPECT_GT(r.hello_suppressed, 0u);
    // Zones cover a minority of the strip: most beacons still go out.
    EXPECT_GT(r.hello_sent, r.hello_suppressed);
}

TEST(PseudonymPolicyScenario, VirtualPcSuppressesTheDutyCycleFraction) {
    PseudonymPolicy pol;
    pol.kind = PseudonymPolicy::Kind::kVirtualMixZone;
    pol.vpc_period = util::SimTime::seconds(10.0);
    pol.vpc_silence = util::SimTime::seconds(2.0);
    const auto r = run_policy(pol);
    const double total =
        static_cast<double>(r.hello_sent + r.hello_suppressed);
    ASSERT_GT(total, 0.0);
    const double suppressed_frac =
        static_cast<double>(r.hello_suppressed) / total;
    // Silent 2 s of every 10 s, phases uniform per node: ~20% of beacon
    // slots fall in a silent window.
    EXPECT_NEAR(suppressed_frac, 0.2, 0.08);
}

}  // namespace
