#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/mac80211.hpp"
#include "net/packet.hpp"
#include "phy/channel.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace geoanon;
using namespace geoanon::util::literals;
using mac::Mac80211;
using mac::MacParams;
using net::MacAddr;
using net::Packet;
using net::PacketPtr;
using util::SimTime;
using util::Vec2;

struct Station {
    std::unique_ptr<phy::Radio> radio;
    std::unique_ptr<Mac80211> mac;
    std::vector<PacketPtr> received;
    std::vector<bool> tx_results;
};

struct Rig {
    explicit Rig(phy::PhyParams phy_params = {}) : channel(sim, phy_params) {}

    Station& add(Vec2 pos, MacParams params = {}) {
        auto st = std::make_unique<Station>();
        st->radio = std::make_unique<phy::Radio>(sim, channel, [pos] { return pos; });
        const MacAddr addr = stations.size() + 1;
        st->mac = std::make_unique<Mac80211>(sim, *st->radio, addr, params,
                                             util::Rng(addr * 7919));
        Station* raw = st.get();
        st->mac->set_rx_handler(
            [raw](const PacketPtr& p, MacAddr) { raw->received.push_back(p); });
        st->mac->set_tx_done_handler(
            [raw](const PacketPtr&, MacAddr, bool ok) { raw->tx_results.push_back(ok); });
        stations.push_back(std::move(st));
        return *stations.back();
    }

    static PacketPtr packet(std::uint32_t bytes = 64, std::uint32_t seq = 0) {
        auto p = std::make_shared<Packet>();
        p->wire_bytes = bytes;
        p->seq = seq;
        return p;
    }

    sim::Simulator sim;
    phy::Channel channel;
    std::vector<std::unique_ptr<Station>> stations;
};

TEST(Mac, UnicastDeliversWithRtsCts) {
    Rig rig;
    Station& a = rig.add({0, 0});
    Station& b = rig.add({100, 0});
    a.mac->send_unicast(Rig::packet(), b.mac->address());
    rig.sim.run_until(1_s);
    ASSERT_EQ(b.received.size(), 1u);
    ASSERT_EQ(a.tx_results.size(), 1u);
    EXPECT_TRUE(a.tx_results[0]);
    // Full RTS/CTS/DATA/ACK exchange on the air.
    EXPECT_EQ(a.mac->stats().rts_sent, 1u);
    EXPECT_EQ(b.mac->stats().cts_sent, 1u);
    EXPECT_EQ(a.mac->stats().data_sent, 1u);
    EXPECT_EQ(b.mac->stats().ack_sent, 1u);
    EXPECT_EQ(a.mac->stats().unicast_delivered, 1u);
}

TEST(Mac, UnicastWithoutRtsCts) {
    MacParams params;
    params.use_rtscts = false;
    Rig rig;
    Station& a = rig.add({0, 0}, params);
    Station& b = rig.add({100, 0}, params);
    a.mac->send_unicast(Rig::packet(), b.mac->address());
    rig.sim.run_until(1_s);
    ASSERT_EQ(b.received.size(), 1u);
    EXPECT_EQ(a.mac->stats().rts_sent, 0u);
    EXPECT_EQ(b.mac->stats().ack_sent, 1u);
    EXPECT_TRUE(a.tx_results[0]);
}

TEST(Mac, BroadcastReachesAllNeighbors) {
    Rig rig;
    Station& a = rig.add({0, 0});
    Station& b = rig.add({100, 0});
    Station& c = rig.add({0, 100});
    Station& d = rig.add({1000, 0});  // out of range
    a.mac->send_broadcast(Rig::packet());
    rig.sim.run_until(1_s);
    EXPECT_EQ(b.received.size(), 1u);
    EXPECT_EQ(c.received.size(), 1u);
    EXPECT_TRUE(d.received.empty());
    // Broadcast: no handshake frames at all.
    EXPECT_EQ(a.mac->stats().rts_sent, 0u);
    EXPECT_EQ(b.mac->stats().cts_sent, 0u);
    EXPECT_EQ(b.mac->stats().ack_sent, 0u);
    ASSERT_EQ(a.tx_results.size(), 1u);
    EXPECT_TRUE(a.tx_results[0]);  // broadcast "success" = went on air
}

TEST(Mac, UnreachableUnicastFailsAfterRetries) {
    Rig rig;
    Station& a = rig.add({0, 0});
    rig.add({1000, 0});  // addressee exists but out of range
    a.mac->send_unicast(Rig::packet(), 2);
    rig.sim.run_until(2_s);
    ASSERT_EQ(a.tx_results.size(), 1u);
    EXPECT_FALSE(a.tx_results[0]);
    EXPECT_EQ(a.mac->stats().unicast_drop_retry, 1u);
    // Short retry limit 7 => 8 RTS attempts total.
    EXPECT_EQ(a.mac->stats().rts_sent, 8u);
    EXPECT_EQ(a.mac->stats().retries, 8u);
}

TEST(Mac, BroadcastLatencyIsLowerThanUnicast) {
    // §5's core mechanism: no RTS/CTS handshake for broadcast.
    SimTime bcast_done, ucast_done;
    {
        Rig rig;
        Station& a = rig.add({0, 0});
        Station& b = rig.add({100, 0});
        rig.sim.at(SimTime::zero(), [&] { a.mac->send_broadcast(Rig::packet()); });
        b.mac->set_rx_handler([&](const PacketPtr&, MacAddr) { bcast_done = rig.sim.now(); });
        rig.sim.run_until(1_s);
    }
    {
        Rig rig;
        Station& a = rig.add({0, 0});
        Station& b = rig.add({100, 0});
        rig.sim.at(SimTime::zero(), [&] { a.mac->send_unicast(Rig::packet(), 2); });
        b.mac->set_rx_handler([&](const PacketPtr&, MacAddr) { ucast_done = rig.sim.now(); });
        rig.sim.run_until(1_s);
    }
    EXPECT_GT(bcast_done, SimTime::zero());
    EXPECT_GT(ucast_done, SimTime::zero());
    EXPECT_LT(bcast_done, ucast_done);
}

TEST(Mac, QueueOverflowDropsTail) {
    MacParams params;
    params.queue_limit = 2;
    Rig rig;
    Station& a = rig.add({0, 0}, params);
    rig.add({100, 0});
    EXPECT_TRUE(a.mac->send_unicast(Rig::packet(), 2));
    EXPECT_TRUE(a.mac->send_unicast(Rig::packet(), 2));
    EXPECT_FALSE(a.mac->send_unicast(Rig::packet(), 2));  // full
    EXPECT_EQ(a.mac->stats().drop_queue_full, 1u);
    rig.sim.run_until(1_s);
    EXPECT_EQ(a.mac->stats().unicast_delivered, 2u);
}

TEST(Mac, QueuedPacketsAllDeliverInOrder) {
    Rig rig;
    Station& a = rig.add({0, 0});
    Station& b = rig.add({100, 0});
    for (std::uint32_t i = 0; i < 10; ++i)
        a.mac->send_unicast(Rig::packet(64, i), b.mac->address());
    rig.sim.run_until(2_s);
    ASSERT_EQ(b.received.size(), 10u);
    for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(b.received[i]->seq, i);
}

TEST(Mac, ContendersShareTheChannel) {
    Rig rig;
    Station& a = rig.add({0, 0});
    Station& b = rig.add({50, 0});
    Station& c = rig.add({25, 50});
    for (int i = 0; i < 5; ++i) {
        a.mac->send_unicast(Rig::packet(), c.mac->address());
        b.mac->send_unicast(Rig::packet(), c.mac->address());
    }
    rig.sim.run_until(5_s);
    EXPECT_EQ(c.received.size(), 10u);
}

TEST(Mac, NavDefersThirdParty) {
    // c overhears a's RTS to b and must defer its own transmission (NAV)
    // until the whole exchange completes. The DATA frame is made large so
    // c's send lands squarely inside the exchange window.
    Rig rig;
    Station& a = rig.add({0, 0});
    Station& b = rig.add({100, 0});
    Station& c = rig.add({50, 50});
    Station& d = rig.add({50, 120});
    a.mac->send_unicast(Rig::packet(10000), b.mac->address());  // ~40 ms DATA
    // Queue c's broadcast once the RTS/CTS handshake is surely done and the
    // long DATA frame is in flight (access delay is < 1 ms here).
    rig.sim.at(5_ms, [&] { c.mac->send_broadcast(Rig::packet(100, /*seq=*/777)); });
    rig.sim.run_until(1_s);
    // b hears a's DATA exactly once, intact (c deferred), plus c's broadcast.
    int from_a = 0;
    for (const auto& p : b.received)
        if (p->seq != 777) ++from_a;
    EXPECT_EQ(from_a, 1);
    ASSERT_FALSE(d.received.empty());   // c's broadcast went out afterwards
    EXPECT_TRUE(a.tx_results[0]);
    EXPECT_EQ(a.mac->stats().retries, 0u);  // the exchange was never disturbed
}

TEST(Mac, ReceiverDedupsMacRetransmissions) {
    // Force an ACK loss so the sender retransmits: receiver must deliver the
    // packet upstream exactly once. We emulate by a heavily loaded channel
    // with an interferer near the sender (outside receiver's range).
    MacParams params;
    params.use_rtscts = false;
    Rig rig;
    Station& a = rig.add({0, 0}, params);
    Station& b = rig.add({240, 0}, params);
    // Interferer close to a, far from b: can kill ACKs at a while b decodes
    // DATA fine. Fire it right where the ACK would be.
    Station& jam = rig.add({-200, 0}, params);
    bool jammed = false;
    b.mac->set_rx_handler([&](const PacketPtr& p, MacAddr) {
        b.received.push_back(p);
        if (!jammed) {
            jammed = true;
            // b is about to ACK after SIFS; jam a's reception of it.
            jam.radio->start_tx([] {
                phy::Frame f;
                f.type = phy::Frame::Type::kData;
                f.wire_bytes = 50;
                return f;
            }());
        }
    });
    a.mac->send_unicast(Rig::packet(), b.mac->address());
    rig.sim.run_until(2_s);
    // The MAC retransmitted at least once...
    EXPECT_GE(a.mac->stats().retries, 1u);
    // ...but upstream saw the packet once.
    EXPECT_EQ(b.received.size(), 1u);
    EXPECT_GE(b.mac->stats().rx_duplicates, 1u);
}

TEST(Mac, AnonymousSourceHidesMacAddress) {
    MacParams params;
    params.anonymous_source = true;
    Rig rig;
    Station& a = rig.add({0, 0}, params);
    rig.add({100, 0}, params);
    MacAddr seen_src = 0;
    rig.channel.set_snoop([&](const phy::Frame& f, const Vec2&) { seen_src = f.src; });
    a.mac->send_broadcast(Rig::packet());
    rig.sim.run_until(1_s);
    EXPECT_EQ(seen_src, net::kBroadcastAddr);
}

TEST(Mac, NormalSourceExposesMacAddress) {
    Rig rig;
    Station& a = rig.add({0, 0});
    rig.add({100, 0});
    MacAddr seen_src = 0;
    rig.channel.set_snoop([&](const phy::Frame& f, const Vec2&) {
        if (f.type == phy::Frame::Type::kData) seen_src = f.src;
    });
    a.mac->send_broadcast(Rig::packet());
    rig.sim.run_until(1_s);
    EXPECT_EQ(seen_src, a.mac->address());
}

TEST(Mac, BackoffSpreadsSimultaneousSenders) {
    // All stations queue a broadcast at t=0; random backoff must serialize
    // most of them (some residual collisions are expected and fine).
    Rig rig;
    std::vector<Station*> senders;
    for (int i = 0; i < 6; ++i) senders.push_back(&rig.add({i * 10.0, 0}));
    Station& rx = rig.add({25, 60});
    for (auto* s : senders) s->mac->send_broadcast(Rig::packet());
    rig.sim.run_until(1_s);
    EXPECT_GE(rx.received.size(), 4u);
}

}  // namespace
